// Package quantum provides the standard gate library: names, arities,
// unitary matrices (including parameterized rotations), and helpers for
// embedding gate unitaries into multi-qubit Hilbert spaces. Qubit 0 is the
// most significant bit of the computational-basis index, matching the
// little-endian-on-wires convention used throughout the circuit IR.
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"

	"paqoc/internal/linalg"
)

// Common fixed 2x2 unitaries.
var (
	sqrt1_2 = complex(1/math.Sqrt2, 0)

	// MatI is the single-qubit identity.
	MatI = linalg.FromRows([][]complex128{{1, 0}, {0, 1}})
	// MatX is the Pauli-X (NOT) gate.
	MatX = linalg.FromRows([][]complex128{{0, 1}, {1, 0}})
	// MatY is the Pauli-Y gate.
	MatY = linalg.FromRows([][]complex128{{0, -1i}, {1i, 0}})
	// MatZ is the Pauli-Z gate.
	MatZ = linalg.FromRows([][]complex128{{1, 0}, {0, -1}})
	// MatH is the Hadamard gate.
	MatH = linalg.FromRows([][]complex128{{sqrt1_2, sqrt1_2}, {sqrt1_2, -sqrt1_2}})
	// MatS is the phase gate S = sqrt(Z).
	MatS = linalg.FromRows([][]complex128{{1, 0}, {0, 1i}})
	// MatSdg is S†.
	MatSdg = linalg.FromRows([][]complex128{{1, 0}, {0, -1i}})
	// MatT is the T gate (π/8).
	MatT = linalg.FromRows([][]complex128{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}})
	// MatTdg is T†.
	MatTdg = linalg.FromRows([][]complex128{{1, 0}, {0, cmplx.Exp(-1i * math.Pi / 4)}})
	// MatSX is sqrt(X), a native IBM basis gate.
	MatSX = linalg.FromRows([][]complex128{
		{0.5 + 0.5i, 0.5 - 0.5i},
		{0.5 - 0.5i, 0.5 + 0.5i},
	})
)

// RX returns the rotation e^{-i θ X/2}.
func RX(theta float64) *linalg.Matrix {
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	return linalg.FromRows([][]complex128{
		{complex(c, 0), complex(0, -s)},
		{complex(0, -s), complex(c, 0)},
	})
}

// RY returns the rotation e^{-i θ Y/2}.
func RY(theta float64) *linalg.Matrix {
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	return linalg.FromRows([][]complex128{
		{complex(c, 0), complex(-s, 0)},
		{complex(s, 0), complex(c, 0)},
	})
}

// RZ returns the rotation e^{-i θ Z/2}.
func RZ(theta float64) *linalg.Matrix {
	return linalg.FromRows([][]complex128{
		{cmplx.Exp(complex(0, -theta/2)), 0},
		{0, cmplx.Exp(complex(0, theta/2))},
	})
}

// U1 returns the phase gate diag(1, e^{iλ}) (equal to RZ up to global phase).
func U1(lambda float64) *linalg.Matrix {
	return linalg.FromRows([][]complex128{{1, 0}, {0, cmplx.Exp(complex(0, lambda))}})
}

// U2 returns the IBM U2(φ, λ) gate.
func U2(phi, lambda float64) *linalg.Matrix {
	return U3(math.Pi/2, phi, lambda)
}

// U3 returns the general single-qubit gate U3(θ, φ, λ).
func U3(theta, phi, lambda float64) *linalg.Matrix {
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	return linalg.FromRows([][]complex128{
		{complex(c, 0), -cmplx.Exp(complex(0, lambda)) * complex(s, 0)},
		{cmplx.Exp(complex(0, phi)) * complex(s, 0), cmplx.Exp(complex(0, phi+lambda)) * complex(c, 0)},
	})
}

// Two-qubit fixed unitaries, qubit order (control, target) = (q0, q1) with
// q0 the most significant index bit.
var (
	// MatCX is the controlled-NOT with control on the first qubit.
	MatCX = linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	})
	// MatCZ is the controlled-Z gate (symmetric in its qubits).
	MatCZ = linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, -1},
	})
	// MatSWAP exchanges two qubits.
	MatSWAP = linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
	})
	// MatISWAP is the iSWAP gate, native to XY-coupled hardware.
	MatISWAP = linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 0, 1i, 0},
		{0, 1i, 0, 0},
		{0, 0, 0, 1},
	})
)

// CPhase returns the controlled-phase gate diag(1,1,1,e^{iλ}).
func CPhase(lambda float64) *linalg.Matrix {
	m := linalg.Identity(4)
	m.Set(3, 3, cmplx.Exp(complex(0, lambda)))
	return m
}

// CRZ returns the controlled-RZ gate.
func CRZ(theta float64) *linalg.Matrix {
	m := linalg.Identity(4)
	m.Set(2, 2, cmplx.Exp(complex(0, -theta/2)))
	m.Set(3, 3, cmplx.Exp(complex(0, theta/2)))
	return m
}

// MatCCX is the Toffoli gate (controls on qubits 0 and 1, target qubit 2).
var MatCCX = func() *linalg.Matrix {
	m := linalg.Identity(8)
	m.Set(6, 6, 0)
	m.Set(7, 7, 0)
	m.Set(6, 7, 1)
	m.Set(7, 6, 1)
	return m
}()

// MatCCZ is the doubly-controlled Z gate.
var MatCCZ = func() *linalg.Matrix {
	m := linalg.Identity(8)
	m.Set(7, 7, -1)
	return m
}()

// MatCSWAP is the Fredkin (controlled-SWAP) gate, control on qubit 0.
var MatCSWAP = func() *linalg.Matrix {
	m := linalg.Identity(8)
	m.Set(5, 5, 0)
	m.Set(6, 6, 0)
	m.Set(5, 6, 1)
	m.Set(6, 5, 1)
	return m
}()

// GateUnitary returns the unitary for a named gate with the given
// parameters. It returns an error for unknown names or wrong parameter
// counts. Names are lowercase, matching the circuit IR.
func GateUnitary(name string, params []float64) (*linalg.Matrix, error) {
	need := func(n int) error {
		if len(params) != n {
			return fmt.Errorf("quantum: gate %q wants %d params, got %d", name, n, len(params))
		}
		return nil
	}
	switch name {
	case "id":
		return MatI.Clone(), need(0)
	case "x":
		return MatX.Clone(), need(0)
	case "y":
		return MatY.Clone(), need(0)
	case "z":
		return MatZ.Clone(), need(0)
	case "h":
		return MatH.Clone(), need(0)
	case "s":
		return MatS.Clone(), need(0)
	case "sdg":
		return MatSdg.Clone(), need(0)
	case "t":
		return MatT.Clone(), need(0)
	case "tdg":
		return MatTdg.Clone(), need(0)
	case "sx":
		return MatSX.Clone(), need(0)
	case "rx":
		if err := need(1); err != nil {
			return nil, err
		}
		return RX(params[0]), nil
	case "ry":
		if err := need(1); err != nil {
			return nil, err
		}
		return RY(params[0]), nil
	case "rz":
		if err := need(1); err != nil {
			return nil, err
		}
		return RZ(params[0]), nil
	case "u1":
		if err := need(1); err != nil {
			return nil, err
		}
		return U1(params[0]), nil
	case "u2":
		if err := need(2); err != nil {
			return nil, err
		}
		return U2(params[0], params[1]), nil
	case "u3":
		if err := need(3); err != nil {
			return nil, err
		}
		return U3(params[0], params[1], params[2]), nil
	case "cx":
		return MatCX.Clone(), need(0)
	case "cz":
		return MatCZ.Clone(), need(0)
	case "swap":
		return MatSWAP.Clone(), need(0)
	case "iswap":
		return MatISWAP.Clone(), need(0)
	case "cp", "cphase":
		if err := need(1); err != nil {
			return nil, err
		}
		return CPhase(params[0]), nil
	case "cu1":
		if err := need(1); err != nil {
			return nil, err
		}
		return CPhase(params[0]), nil
	case "crz":
		if err := need(1); err != nil {
			return nil, err
		}
		return CRZ(params[0]), nil
	case "ccx", "toffoli":
		return MatCCX.Clone(), need(0)
	case "ccz":
		return MatCCZ.Clone(), need(0)
	case "cswap":
		return MatCSWAP.Clone(), need(0)
	}
	return nil, fmt.Errorf("quantum: unknown gate %q", name)
}

// GateArity returns the number of qubits a named gate acts on, or 0 if the
// gate is unknown.
func GateArity(name string) int {
	switch name {
	case "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "rx", "ry", "rz", "u1", "u2", "u3":
		return 1
	case "cx", "cz", "swap", "iswap", "cp", "cphase", "cu1", "crz":
		return 2
	case "ccx", "toffoli", "ccz", "cswap":
		return 3
	}
	return 0
}

// IsControlled reports whether the named gate has control qubit(s) leading
// its operand list; used by the miner's edge labelling (§III-A).
func IsControlled(name string) bool {
	switch name {
	case "cx", "cz", "cp", "cphase", "cu1", "crz", "ccx", "toffoli", "ccz", "cswap":
		return true
	}
	return false
}
