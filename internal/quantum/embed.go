package quantum

import (
	"fmt"

	"paqoc/internal/linalg"
)

// Embed lifts a k-qubit unitary u onto an n-qubit Hilbert space, acting on
// the given wires (wires[i] is the circuit qubit playing the role of u's
// i-th qubit). Qubit 0 is the most significant bit of the basis index.
func Embed(u *linalg.Matrix, wires []int, n int) *linalg.Matrix {
	k := len(wires)
	if u.Rows != 1<<k || u.Cols != 1<<k {
		panic(fmt.Sprintf("quantum: Embed unitary dim %d does not match %d wires", u.Rows, k))
	}
	seen := make(map[int]bool, k)
	for _, w := range wires {
		if w < 0 || w >= n {
			panic(fmt.Sprintf("quantum: wire %d out of range [0,%d)", w, n))
		}
		if seen[w] {
			panic(fmt.Sprintf("quantum: duplicate wire %d", w))
		}
		seen[w] = true
	}

	dim := 1 << n
	out := linalg.New(dim, dim)
	// bitOf extracts qubit q's bit from basis index idx (qubit 0 = MSB).
	bitOf := func(idx, q int) int { return (idx >> (n - 1 - q)) & 1 }

	for col := 0; col < dim; col++ {
		// Sub-index of the wires within this basis column.
		sub := 0
		for i, w := range wires {
			sub |= bitOf(col, w) << (k - 1 - i)
		}
		for subRow := 0; subRow < (1 << k); subRow++ {
			amp := u.At(subRow, sub)
			if amp == 0 {
				continue
			}
			// Row index: col with the wire bits replaced by subRow's bits.
			row := col
			for i, w := range wires {
				bit := (subRow >> (k - 1 - i)) & 1
				mask := 1 << (n - 1 - w)
				if bit == 1 {
					row |= mask
				} else {
					row &^= mask
				}
			}
			out.Set(row, col, amp)
		}
	}
	return out
}

// PermuteQubits returns the unitary obtained by relabelling u's qubits:
// qubit i of the result corresponds to qubit perm[i] of u. perm must be a
// permutation of 0..k-1 where u acts on k qubits.
func PermuteQubits(u *linalg.Matrix, perm []int) *linalg.Matrix {
	k := qubitCount(u)
	if len(perm) != k {
		panic("quantum: PermuteQubits wrong perm length")
	}
	wires := make([]int, k)
	copy(wires, perm)
	return Embed(u, wires, k)
}

// SequenceUnitary composes a sequence of (gate unitary, wires) pairs acting
// on n qubits, in program order (earliest first), returning the overall
// unitary. The composition is U_total = U_last · … · U_first.
func SequenceUnitary(n int, ops []EmbeddedOp) *linalg.Matrix {
	total := linalg.Identity(1 << n)
	for _, op := range ops {
		total = Embed(op.U, op.Wires, n).Mul(total)
	}
	return total
}

// EmbeddedOp is one gate application inside SequenceUnitary.
type EmbeddedOp struct {
	U     *linalg.Matrix
	Wires []int
}

func qubitCount(u *linalg.Matrix) int {
	k := 0
	for d := u.Rows; d > 1; d >>= 1 {
		if d&1 == 1 {
			panic("quantum: unitary dimension not a power of two")
		}
		k++
	}
	return k
}

// QubitCount returns the number of qubits a square power-of-two-dimension
// unitary acts on.
func QubitCount(u *linalg.Matrix) int { return qubitCount(u) }
