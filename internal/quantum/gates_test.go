package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"paqoc/internal/linalg"
)

var allFixedGates = []string{
	"id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
	"cx", "cz", "swap", "iswap", "ccx", "ccz", "cswap",
}

func TestAllFixedGatesUnitary(t *testing.T) {
	for _, name := range allFixedGates {
		u, err := GateUnitary(name, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !u.IsUnitary(1e-12) {
			t.Errorf("%s is not unitary", name)
		}
		if got := QubitCount(u); got != GateArity(name) {
			t.Errorf("%s: dim implies %d qubits, arity says %d", name, got, GateArity(name))
		}
	}
}

func TestParameterizedGatesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		theta := rng.Float64()*4*math.Pi - 2*math.Pi
		for _, g := range []struct {
			name   string
			params []float64
		}{
			{"rx", []float64{theta}},
			{"ry", []float64{theta}},
			{"rz", []float64{theta}},
			{"u1", []float64{theta}},
			{"u2", []float64{theta, theta / 2}},
			{"u3", []float64{theta, theta / 2, theta / 3}},
			{"cp", []float64{theta}},
			{"crz", []float64{theta}},
		} {
			u, err := GateUnitary(g.name, g.params)
			if err != nil {
				t.Fatal(err)
			}
			if !u.IsUnitary(1e-12) {
				t.Errorf("%s(%v) not unitary", g.name, g.params)
			}
		}
	}
}

func TestUnknownGate(t *testing.T) {
	if _, err := GateUnitary("frobnicate", nil); err == nil {
		t.Error("expected error for unknown gate")
	}
	if GateArity("frobnicate") != 0 {
		t.Error("unknown arity should be 0")
	}
}

func TestWrongParamCount(t *testing.T) {
	if _, err := GateUnitary("rx", nil); err == nil {
		t.Error("rx with no params should error")
	}
	if _, err := GateUnitary("h", []float64{1}); err == nil {
		t.Error("h with a param should error")
	}
}

func TestPauliAlgebra(t *testing.T) {
	// X² = Y² = Z² = I, XY = iZ, HXH = Z.
	id := linalg.Identity(2)
	if !MatX.Mul(MatX).Equal(id, 1e-12) {
		t.Error("X² != I")
	}
	if !MatY.Mul(MatY).Equal(id, 1e-12) {
		t.Error("Y² != I")
	}
	if !MatX.Mul(MatY).Equal(MatZ.Scale(1i), 1e-12) {
		t.Error("XY != iZ")
	}
	if !MatH.Mul(MatX).Mul(MatH).Equal(MatZ, 1e-12) {
		t.Error("HXH != Z")
	}
}

func TestSqrtGates(t *testing.T) {
	if !MatS.Mul(MatS).Equal(MatZ, 1e-12) {
		t.Error("S² != Z")
	}
	if !MatT.Mul(MatT).Equal(MatS, 1e-12) {
		t.Error("T² != S")
	}
	if !MatSX.Mul(MatSX).Equal(MatX, 1e-12) {
		t.Error("SX² != X")
	}
}

func TestRotationComposition(t *testing.T) {
	// RZ(a)·RZ(b) = RZ(a+b)
	a, b := 0.6, 1.7
	if !RZ(a).Mul(RZ(b)).Equal(RZ(a+b), 1e-12) {
		t.Error("RZ additivity fails")
	}
	// RX(2π) = -I
	if !RX(2*math.Pi).Equal(linalg.Identity(2).Scale(-1), 1e-12) {
		t.Error("RX(2π) != -I")
	}
}

func TestU3Specialisations(t *testing.T) {
	// U3(π/2, 0, π) = H.
	if linalg.GlobalPhaseDistance(U3(math.Pi/2, 0, math.Pi), MatH) > 1e-12 {
		t.Error("U3(π/2,0,π) != H")
	}
	// U1(λ) matches RZ(λ) up to a global phase.
	if linalg.GlobalPhaseDistance(U1(0.83), RZ(0.83)) > 1e-12 {
		t.Error("U1 != RZ up to phase")
	}
}

func TestCXConstruction(t *testing.T) {
	// CX = |0><0| ⊗ I + |1><1| ⊗ X
	p0 := linalg.FromRows([][]complex128{{1, 0}, {0, 0}})
	p1 := linalg.FromRows([][]complex128{{0, 0}, {0, 1}})
	want := p0.Kron(MatI).Add(p1.Kron(MatX))
	if !MatCX.Equal(want, 1e-12) {
		t.Error("CX projector decomposition mismatch")
	}
}

func TestSWAPFromThreeCX(t *testing.T) {
	// SWAP = CX(0,1)·CX(1,0)·CX(0,1)
	cxRev := PermuteQubits(MatCX, []int{1, 0})
	got := MatCX.Mul(cxRev).Mul(MatCX)
	if !got.Equal(MatSWAP, 1e-12) {
		t.Error("three CXs do not make a SWAP")
	}
}

func TestCZSymmetric(t *testing.T) {
	if !PermuteQubits(MatCZ, []int{1, 0}).Equal(MatCZ, 1e-12) {
		t.Error("CZ should be symmetric under qubit exchange")
	}
	if PermuteQubits(MatCX, []int{1, 0}).Equal(MatCX, 1e-12) {
		t.Error("CX should NOT be symmetric under qubit exchange")
	}
}

func TestCZFromHCXH(t *testing.T) {
	// CZ = (I⊗H)·CX·(I⊗H)
	ih := MatI.Kron(MatH)
	if !ih.Mul(MatCX).Mul(ih).Equal(MatCZ, 1e-12) {
		t.Error("CZ != (I⊗H)CX(I⊗H)")
	}
}

func TestToffoli(t *testing.T) {
	// CCX flips the target only when both controls are 1.
	for in := 0; in < 8; in++ {
		vec := make([]complex128, 8)
		vec[in] = 1
		out := MatCCX.MulVec(vec)
		want := in
		if in>>2&1 == 1 && in>>1&1 == 1 {
			want = in ^ 1
		}
		for i, v := range out {
			expect := complex128(0)
			if i == want {
				expect = 1
			}
			if v != expect {
				t.Fatalf("CCX|%03b> wrong at %d: %v", in, i, v)
			}
		}
	}
}

func TestEmbedSingleOnTwo(t *testing.T) {
	// X on wire 1 of 2 qubits = I ⊗ X.
	got := Embed(MatX, []int{1}, 2)
	if !got.Equal(MatI.Kron(MatX), 1e-12) {
		t.Error("Embed(X, wire 1) != I⊗X")
	}
	// X on wire 0 = X ⊗ I.
	got = Embed(MatX, []int{0}, 2)
	if !got.Equal(MatX.Kron(MatI), 1e-12) {
		t.Error("Embed(X, wire 0) != X⊗I")
	}
}

func TestEmbedAdjacentMatchesKron(t *testing.T) {
	got := Embed(MatCX, []int{0, 1}, 3)
	if !got.Equal(MatCX.Kron(MatI), 1e-12) {
		t.Error("Embed(CX, 0,1 of 3) != CX⊗I")
	}
	got = Embed(MatCX, []int{1, 2}, 3)
	if !got.Equal(MatI.Kron(MatCX), 1e-12) {
		t.Error("Embed(CX, 1,2 of 3) != I⊗CX")
	}
}

func TestEmbedNonAdjacent(t *testing.T) {
	// CX with control 0, target 2 on 3 qubits: check action on basis states.
	u := Embed(MatCX, []int{0, 2}, 3)
	for in := 0; in < 8; in++ {
		vec := make([]complex128, 8)
		vec[in] = 1
		out := u.MulVec(vec)
		want := in
		if in>>2&1 == 1 { // control (qubit 0, MSB) set → flip target (qubit 2, LSB)
			want = in ^ 1
		}
		if out[want] != 1 {
			t.Fatalf("CX(0→2)|%03b>: expected |%03b>", in, want)
		}
	}
}

func TestEmbedReversedWires(t *testing.T) {
	// CX with control 1, target 0 on 2 qubits.
	u := Embed(MatCX, []int{1, 0}, 2)
	want := PermuteQubits(MatCX, []int{1, 0})
	if !u.Equal(want, 1e-12) {
		t.Error("Embed with reversed wires mismatch")
	}
}

func TestEmbedPreservesUnitarity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := RX(rng.Float64() * math.Pi)
		w := rng.Intn(4)
		return Embed(u, []int{w}, 4).IsUnitary(1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSequenceUnitaryOrder(t *testing.T) {
	// H then CX on |00> gives a Bell state.
	total := SequenceUnitary(2, []EmbeddedOp{
		{U: MatH, Wires: []int{0}},
		{U: MatCX, Wires: []int{0, 1}},
	})
	vec := total.MulVec([]complex128{1, 0, 0, 0})
	s := 1 / math.Sqrt2
	if math.Abs(real(vec[0])-s) > 1e-12 || math.Abs(real(vec[3])-s) > 1e-12 {
		t.Errorf("Bell state wrong: %v", vec)
	}
}

func TestPermuteQubitsIdentityPerm(t *testing.T) {
	if !PermuteQubits(MatCX, []int{0, 1}).Equal(MatCX, 1e-12) {
		t.Error("identity permutation changed the unitary")
	}
}

func TestPermuteQubitsInvolution(t *testing.T) {
	u := MatCX.Clone()
	p := PermuteQubits(PermuteQubits(u, []int{1, 0}), []int{1, 0})
	if !p.Equal(u, 1e-12) {
		t.Error("double swap-permute is not identity")
	}
}

func TestIsControlled(t *testing.T) {
	if !IsControlled("cx") || !IsControlled("ccx") || IsControlled("swap") || IsControlled("h") {
		t.Error("IsControlled misclassifies")
	}
}
