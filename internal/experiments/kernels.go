package experiments

import (
	"context"
	"fmt"
	"io"
	"testing"

	"paqoc/internal/bench"
	"paqoc/internal/grape"
	"paqoc/internal/hamiltonian"
	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
)

// KernelRecord is one measured kernel variant in the destination-passing
// benchmark suite (BENCH_003.json): the value-returning ("before") and
// Into ("after") form of each hot operation, plus whole-GRAPE-iteration
// figures for the reference and arena paths. BENCH_010.json extends the
// suite with the specialized matmul dispatch (mul.generic vs mul.blocked),
// the parallel gradient pass (gradpass.*), and the end-to-end 17-benchmark
// sweep with the specialized kernels off vs on (e2e.sweep17.*).
type KernelRecord struct {
	Name        string  `json:"name"`
	N           int     `json:"n"` // matrix dimension (or slice count context, see name)
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

func record(name string, n int, r testing.BenchmarkResult) KernelRecord {
	return KernelRecord{
		Name:        name,
		N:           n,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
}

// Kernels benchmarks the destination-passing linalg kernels against their
// value-returning wrappers, and the arena-based GRAPE iteration against
// the pre-arena reference loop. testing.Benchmark self-calibrates the
// iteration counts, so this runs in a few seconds.
func Kernels() []KernelRecord {
	const n = 8 // 3-qubit dimension, the largest customized-gate space
	a := randomKernelMatrix(n, 101)
	b := randomKernelMatrix(n, 102)
	h := a.Add(a.Dagger()).Scale(0.5)
	dst := linalg.New(n, n)
	daggerDst := linalg.New(n, n)
	ws := linalg.NewWorkspace(n)

	sys3 := hamiltonian.XYTransmon(3, hamiltonian.LinearChain(3))
	amps3 := make([]float64, len(sys3.Controls))
	for k := range amps3 {
		amps3[k] = 0.3 * sys3.Controls[k].Bound
	}
	propDst := linalg.New(sys3.Dim, sys3.Dim)
	propWs := linalg.NewWorkspace(sys3.Dim)

	var out []KernelRecord
	out = append(out,
		record("mul.value", n, testing.Benchmark(func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				_ = a.Mul(b)
			}
		})),
		record("mul.into", n, testing.Benchmark(func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				linalg.MulInto(dst, a, b)
			}
		})),
		record("dagger.value", n, testing.Benchmark(func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				_ = a.Dagger()
			}
		})),
		record("dagger.into", n, testing.Benchmark(func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				linalg.DaggerInto(daggerDst, a)
			}
		})),
		record("expmhermitian.value", n, testing.Benchmark(func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				_ = linalg.ExpmHermitian(h, 0.3)
			}
		})),
		record("expmhermitian.into", n, testing.Benchmark(func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				linalg.ExpmHermitianInto(dst, h, 0.3, ws)
			}
		})),
		record("propagator3q.value", sys3.Dim, testing.Benchmark(func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				_ = sys3.Propagator(amps3, 4)
			}
		})),
		record("propagator3q.into", sys3.Dim, testing.Benchmark(func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				sys3.PropagatorInto(propDst, amps3, 4, propWs)
			}
		})),
	)

	// Specialized-dispatch comparison (BENCH_010.json): the portable
	// scalar kernel against the blocked/unrolled MulInto dispatch at the
	// dimensions the compiler actually produces (2/3/4-qubit unitary
	// spaces). Both paths are bit-identical; only the schedule of the
	// arithmetic differs (see internal/linalg/kernels_amd64.s).
	for _, n := range []int{4, 8, 16} {
		ga := randomKernelMatrix(n, 201)
		gb := randomKernelMatrix(n, 202)
		gd := linalg.New(n, n)
		out = append(out,
			record("mul.generic", n, testing.Benchmark(func(bb *testing.B) {
				for i := 0; i < bb.N; i++ {
					linalg.MulIntoGeneric(gd, ga, gb)
				}
			})),
			record("mul.blocked", n, testing.Benchmark(func(bb *testing.B) {
				for i := 0; i < bb.N; i++ {
					linalg.MulInto(gd, ga, gb)
				}
			})),
		)
	}

	// Whole-iteration comparison on a CX problem: TargetFidelity 2 is
	// unreachable, so each Optimize call runs exactly MaxIter iterations
	// and the per-op figures normalize to per-iteration cost.
	sys2 := hamiltonian.XYTransmon(2, [][2]int{{0, 1}})
	const iters, slices = 40, 12
	opts := grape.Options{MaxIter: iters, Seed: 3, TargetFidelity: 2}
	refRes := testing.Benchmark(func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			grape.OptimizeReference(sys2, quantum.MatCX, slices, opts)
		}
	})
	arenaRes := testing.Benchmark(func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			grape.OptimizeCtx(context.Background(), sys2, quantum.MatCX, slices, opts)
		}
	})
	out = append(out,
		perIteration(record("grapeiter.reference", slices, refRes), iters),
		perIteration(record("grapeiter.arena", slices, arenaRes), iters),
	)

	// Parallel forward/gradient pass: per-iteration cost of the same
	// optimization with the worker pool on. On a single-core host this
	// only measures coordination overhead; rerun on a multi-core host for
	// the wall-clock win (results are bit-identical either way).
	const parSlices = 16
	for _, workers := range []int{1, 4} {
		wopts := opts
		wopts.Workers = workers
		name := "gradpass.serial"
		if workers > 1 {
			name = "gradpass.parallel4"
		}
		res := testing.Benchmark(func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				grape.OptimizeCtx(context.Background(), sys2, quantum.MatCX, parSlices, wopts)
			}
		})
		out = append(out, perIteration(record(name, parSlices, res), iters))
	}

	// End-to-end compile seconds: the full 17-benchmark analytical sweep
	// (the fig10/fig12 workload) with the specialized kernels disabled
	// ("before") and enabled ("after"). The sweep's hot path is Weyl
	// coordinates and unitary consolidation — 4- and 8-dim MulInto.
	specs := bench.All()
	for _, fast := range []bool{false, true} {
		name := "e2e.sweep17.generic"
		if fast {
			name = "e2e.sweep17.blocked"
		}
		prev := linalg.SetFastKernels(fast)
		res := testing.Benchmark(func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				if _, err := DefaultPlatform().RunAll(specs); err != nil {
					panic(err)
				}
			}
		})
		linalg.SetFastKernels(prev)
		out = append(out, record(name, len(specs), res))
	}
	return out
}

// perIteration rescales a whole-Optimize record to a single-iteration one.
func perIteration(r KernelRecord, iters int) KernelRecord {
	r.NsPerOp /= float64(iters)
	r.AllocsPerOp /= float64(iters)
	r.BytesPerOp /= float64(iters)
	return r
}

// PrintKernels renders the kernel records as a before/after table.
func PrintKernels(w io.Writer, recs []KernelRecord) {
	fmt.Fprintln(w, "Destination-passing kernel benchmarks (value API vs Into kernels)")
	fmt.Fprintf(w, "%-22s %4s %14s %12s %12s\n", "kernel", "n", "ns/op", "allocs/op", "B/op")
	for _, r := range recs {
		fmt.Fprintf(w, "%-22s %4d %14.1f %12.2f %12.1f\n", r.Name, r.N, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
}

func randomKernelMatrix(n int, seed int64) *linalg.Matrix {
	// Deterministic pseudo-random fill without pulling math/rand into the
	// benchmark loop: a xorshift over the seed.
	m := linalg.New(n, n)
	s := uint64(seed)
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(int64(s%2000))/1000 - 1
	}
	for i := range m.Data {
		m.Data[i] = complex(next(), next())
	}
	return m
}
