package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"paqoc/internal/bench"
	"paqoc/internal/grape"
	"paqoc/internal/hamiltonian"
	"paqoc/internal/paqoc"
	"paqoc/internal/pulse"
	"paqoc/internal/pulsesim"
)

// TableIIFullRow is the full-simulation counterpart of TableIIRow: real
// GRAPE pulses, each block's schedule propagated through the device
// Hamiltonian, whole-circuit state fidelity via the statevector backend,
// and the dephasing factor of the critical path on top.
type TableIIFullRow struct {
	Bench         string
	Coherent      float64 // state fidelity of realized vs ideal gates
	WithDephasing float64
	Latency       float64
	Blocks        int
}

// TableIIFull runs the paper's actual Table II protocol (QuTiP-style pulse
// simulation of the compiled circuit) for paqoc(M=0) on the small
// benchmarks. It is compute-heavy (minutes); cmd/paqoc-bench exposes it as
// `table2full`. maxUsedQubits guards the statevector width after routing.
func TableIIFull(p *Platform, benches []string, maxUsedQubits int) ([]TableIIFullRow, error) {
	if maxUsedQubits == 0 {
		maxUsedQubits = 14
	}
	var rows []TableIIFullRow
	for _, name := range benches {
		spec, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %s", name)
		}
		phys, err := p.Physical(spec)
		if err != nil {
			return nil, err
		}
		gen := grape.NewGenerator(grape.DefaultOptions())
		gen.Topo = p.Topo
		if p.Profile != nil {
			gen.System = p.Profile.SystemBuilder()
		}
		cfg := paqoc.DefaultConfig()
		cfg.FidelityTarget = 0.999 // GRAPE-feasible target
		cfg.ProbeCaseII = false
		comp := p.newCompiler(gen, cfg)
		res, err := comp.CompileCtx(context.Background(), phys)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}

		// Compact the used physical qubits into a dense register.
		used := map[int]bool{}
		for _, b := range res.Blocks.Blocks {
			for _, q := range b.Qubits {
				used[q] = true
			}
		}
		remap := map[int]int{}
		var order []int
		for q := range used {
			order = append(order, q)
		}
		sort.Ints(order)
		for i, q := range order {
			remap[q] = i
		}
		if len(order) > maxUsedQubits {
			return nil, fmt.Errorf("%s: %d used qubits exceed the statevector budget %d",
				name, len(order), maxUsedQubits)
		}

		var ideal, realized []pulsesim.RealizedGate
		for _, b := range res.Blocks.Blocks {
			cg := b.Custom()
			wires := make([]int, len(cg.Qubits))
			for i, q := range cg.Qubits {
				wires[i] = remap[q]
			}
			want, err := cg.Unitary()
			if err != nil {
				return nil, err
			}
			sys := p.blockSystem(cg.NumQubits(), blockCouplings(p, cg))
			got, err := pulsesim.EvolveCtx(context.Background(), sys, b.Gen.Schedule)
			if err != nil {
				return nil, fmt.Errorf("%s: block %s: %v", name, cg.Describe(), err)
			}
			ideal = append(ideal, pulsesim.RealizedGate{U: want, Wires: wires})
			realized = append(realized, pulsesim.RealizedGate{U: got, Wires: wires})
		}
		coherent, err := pulsesim.StateFidelity(len(order), ideal, realized)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIIFullRow{
			Bench:         name,
			Coherent:      coherent,
			WithDephasing: coherent * pulsesim.DecoherenceFactor(res.Latency, pulsesim.DefaultT2),
			Latency:       res.Latency,
			Blocks:        res.NumBlocks,
		})
	}
	return rows, nil
}

// blockSystem builds a block Hamiltonian under the platform's backend (the
// paper's platform when no profile is set).
func (p *Platform) blockSystem(n int, pairs [][2]int) *hamiltonian.System {
	if p.Profile != nil {
		return p.Profile.System(n, pairs)
	}
	return hamiltonian.XYTransmon(n, pairs)
}

// blockCouplings mirrors grape.Generator's coupling selection.
func blockCouplings(p *Platform, cg *pulse.CustomGate) [][2]int {
	n := cg.NumQubits()
	var pairs [][2]int
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if p.Topo == nil || p.Topo.Connected(cg.Qubits[a], cg.Qubits[b]) {
				pairs = append(pairs, [2]int{a, b})
			}
		}
	}
	if len(pairs) == 0 && n > 1 {
		pairs = hamiltonian.LinearChain(n)
	}
	return pairs
}

// PrintTableIIFull renders the full-simulation rows.
func PrintTableIIFull(w io.Writer, rows []TableIIFullRow) {
	fmt.Fprintln(w, "Table II (full pulse simulation, paqoc M=0, real GRAPE)")
	fmt.Fprintf(w, "%-16s %10s %12s %10s %7s\n", "bench", "coherent", "w/dephasing", "latency", "blocks")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %9.2f%% %11.2f%% %10.0f %7d\n",
			r.Bench, r.Coherent*100, r.WithDephasing*100, r.Latency, r.Blocks)
	}
}
