package experiments

import (
	"context"
	"fmt"
	"io"

	"paqoc/internal/accqoc"
	"paqoc/internal/bench"
	"paqoc/internal/circuit"
	"paqoc/internal/mining"
	"paqoc/internal/pulsesim"
)

// ───────────────────────────── Table I ─────────────────────────────

// TableIRow compares the paper's benchmark inventory with this repo's
// generated circuits.
type TableIRow struct {
	Name, Description       string
	Qubits                  int
	Paper1Q, Paper2Q        int
	Measured1Q, Measured2Q  int
	Measured3Q, MeasuredAll int
}

// TableI builds every benchmark and counts gates.
func TableI() []TableIRow {
	var rows []TableIRow
	for _, s := range bench.All() {
		c := s.Build()
		one, two, three := c.CountByArity()
		rows = append(rows, TableIRow{
			Name: s.Name, Description: s.Description, Qubits: s.Qubits,
			Paper1Q: s.Paper1Q, Paper2Q: s.Paper2Q,
			Measured1Q: one, Measured2Q: two, Measured3Q: three,
			MeasuredAll: len(c.Gates),
		})
	}
	return rows
}

// PrintTableI renders the inventory.
func PrintTableI(w io.Writer, rows []TableIRow) {
	fmt.Fprintln(w, "Table I — benchmark inventory (paper vs generated)")
	fmt.Fprintf(w, "%-16s %-22s %6s %9s %9s %9s %9s %4s\n",
		"name", "description", "qubits", "paper 1q", "paper 2q", "ours 1q", "ours 2q", "3q")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-22s %6d %9d %9d %9d %9d %4d\n",
			r.Name, r.Description, r.Qubits, r.Paper1Q, r.Paper2Q, r.Measured1Q, r.Measured2Q, r.Measured3Q)
	}
}

// ───────────────────────────── Table II ─────────────────────────────

// TableIIBenches are the six pulse-simulated benchmarks of Table II.
var TableIIBenches = []string{"4gt10-v1_81", "decod24-v1_41", "hwb4_49", "rd32_270", "bb84", "simon"}

// TableIIRow holds per-method simulated whole-circuit fidelity.
type TableIIRow struct {
	Bench    string
	Fidelity map[string]float64 // method → fidelity
}

// TableII evaluates whole-circuit pulse fidelity for the five methods on
// the six small benchmarks using the quick coherent-ESP × dephasing model.
// Heavier protocols live alongside: TableIINoisy (density-matrix T1/T2
// channels, `paqoc-bench table2noisy`) and TableIIFull (real GRAPE
// schedules propagated through the Hamiltonian, `paqoc-bench table2full`).
func TableII(p *Platform) ([]TableIIRow, error) {
	var rows []TableIIRow
	for _, name := range TableIIBenches {
		spec, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %s", name)
		}
		phys, err := p.Physical(spec)
		if err != nil {
			return nil, err
		}
		results, err := p.RunMethods(phys)
		if err != nil {
			return nil, err
		}
		row := TableIIRow{Bench: name, Fidelity: map[string]float64{}}
		for _, m := range results {
			// Coherent part: the per-gate pulse errors are already folded
			// into ESP (Eq. 2); dephasing follows the critical-path latency.
			row.Fidelity[m.Method] = m.ESP * pulsesim.DecoherenceFactor(m.Latency, pulsesim.DefaultT2)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTableII renders the fidelity table.
func PrintTableII(w io.Writer, rows []TableIIRow) {
	fmt.Fprintln(w, "Table II — simulated whole-circuit fidelity (larger is better)")
	fmt.Fprintf(w, "%-16s", "bench")
	for _, m := range Methods {
		fmt.Fprintf(w, " %14s", m)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s", r.Bench)
		for _, m := range Methods {
			fmt.Fprintf(w, " %13.2f%%", r.Fidelity[m]*100)
		}
		fmt.Fprintln(w)
	}
}

// ───────────────────────────── Table III ─────────────────────────────

// TableIIIBenches are the five benchmarks whose mined patterns the paper
// showcases.
var TableIIIBenches = []string{"bv", "adder", "qft", "qaoa", "supre"}

// TableIIIRow reports the two most frequent subcircuits of a benchmark.
type TableIIIRow struct {
	Bench    string
	Patterns []mining.Pattern // at most two, by coverage
}

// TableIII mines the physical circuits of the showcase benchmarks.
func TableIII(p *Platform) ([]TableIIIRow, error) {
	var rows []TableIIIRow
	for _, name := range TableIIIBenches {
		spec, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %s", name)
		}
		phys, err := p.Physical(spec)
		if err != nil {
			return nil, err
		}
		patterns, err := mining.MineCtx(context.Background(), phys, mining.DefaultOptions())
		if err != nil {
			return nil, err
		}
		if len(patterns) > 2 {
			patterns = patterns[:2]
		}
		rows = append(rows, TableIIIRow{Bench: name, Patterns: patterns})
	}
	return rows, nil
}

// PrintTableIII renders the mined patterns.
func PrintTableIII(w io.Writer, rows []TableIIIRow) {
	fmt.Fprintln(w, "Table III — most frequent subcircuits found by the miner")
	for _, r := range rows {
		fmt.Fprintf(w, "%s:\n", r.Bench)
		for rank, pat := range r.Patterns {
			fmt.Fprintf(w, "  #%d  support %-3d gates %-2d qubits %d  %s\n",
				rank+1, pat.Support, pat.GateCount, pat.QubitCount, shorten(pat.Signature, 90))
		}
	}
}

func shorten(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// ───────────────────────────── Fig. 13 ─────────────────────────────

// Fig13Result compares how many CPHASE idioms (cx;rz;cx on one pair) each
// fixed-depth AccQOC partition captures intact on the qaoa benchmark.
type Fig13Result struct {
	TotalIdioms  int
	CapturedN3D3 int
	CapturedN3D5 int
}

// Fig13 reproduces the partitioning comparison of Fig. 13.
func Fig13(p *Platform) (*Fig13Result, error) {
	spec, _ := bench.ByName("qaoa")
	phys, err := p.Physical(spec)
	if err != nil {
		return nil, err
	}
	idioms := cphaseIdioms(phys)
	res := &Fig13Result{TotalIdioms: len(idioms)}
	res.CapturedN3D3 = captured(idioms, accqoc.Partition(phys, 3, 3))
	res.CapturedN3D5 = captured(idioms, accqoc.Partition(phys, 3, 5))
	return res, nil
}

// cphaseIdioms finds cx;rz;cx runs on a single qubit pair.
func cphaseIdioms(c *circuit.Circuit) [][]int {
	var out [][]int
	dag := circuit.BuildDAG(c)
	for i, g := range c.Gates {
		if g.Name != "cx" {
			continue
		}
		// successor rz on the target, then cx on the same pair.
		for _, j := range dag.Succs[i] {
			gj := c.Gates[j]
			if gj.Name != "rz" || gj.Qubits[0] != g.Qubits[1] {
				continue
			}
			for _, k := range dag.Succs[j] {
				gk := c.Gates[k]
				if gk.Name == "cx" && gk.Qubits[0] == g.Qubits[0] && gk.Qubits[1] == g.Qubits[1] {
					out = append(out, []int{i, j, k})
				}
			}
		}
	}
	return out
}

// captured counts idioms fully inside a single partition group.
func captured(idioms [][]int, groups [][]int) int {
	groupOf := map[int]int{}
	for gi, grp := range groups {
		for _, gate := range grp {
			groupOf[gate] = gi
		}
	}
	n := 0
	for _, idiom := range idioms {
		g0 := groupOf[idiom[0]]
		same := true
		for _, gate := range idiom[1:] {
			if groupOf[gate] != g0 {
				same = false
				break
			}
		}
		if same {
			n++
		}
	}
	return n
}

// Print renders the Fig. 13 comparison.
func (r *Fig13Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 13 — CPHASE idioms captured intact by fixed-depth partitioning (qaoa)\n")
	fmt.Fprintf(w, "  idioms in circuit: %d\n", r.TotalIdioms)
	fmt.Fprintf(w, "  accqoc_n3d3 captures %d, accqoc_n3d5 captures %d\n", r.CapturedN3D3, r.CapturedN3D5)
	fmt.Fprintf(w, "  paper: depth-3 happens to capture the CPHASE pattern, depth-5 does not\n")
}
