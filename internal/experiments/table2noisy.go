package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"paqoc/internal/accqoc"
	"paqoc/internal/bench"
	"paqoc/internal/circuit"
	"paqoc/internal/critical"
	"paqoc/internal/latency"
	"paqoc/internal/mining"
	"paqoc/internal/noise"
	"paqoc/internal/paqoc"
	"paqoc/internal/statevec"
)

// TableIINoisyRow holds per-method density-matrix fidelities (T1/T2 Kraus
// channels per pulse duration) for one benchmark. Methods whose compacted
// register exceeds the density-matrix budget report NaN.
type TableIINoisyRow struct {
	Bench    string
	Fidelity map[string]float64
}

// TableIINoisy is the noise-channel upgrade of TableII: instead of the
// scalar exp(-latency/T2) factor it plays every customized gate through
// the density-matrix simulator with amplitude-damping and dephasing scaled
// by the gate's pulse duration. Fidelity is ⟨ψ_ideal|ρ|ψ_ideal⟩.
func TableIINoisy(p *Platform, params noise.Params) ([]TableIINoisyRow, error) {
	var rows []TableIINoisyRow
	for _, name := range TableIIBenches {
		spec, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %s", name)
		}
		phys, err := p.Physical(spec)
		if err != nil {
			return nil, err
		}
		row := TableIINoisyRow{Bench: name, Fidelity: map[string]float64{}}
		blocks, err := p.methodBlocks(phys)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		for method, bc := range blocks {
			f, err := noisyFidelity(bc, params)
			if err != nil {
				row.Fidelity[method] = math.NaN()
				continue
			}
			row.Fidelity[method] = f
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// methodBlocks compiles the physical circuit under all five methods and
// returns the resulting block circuits.
func (p *Platform) methodBlocks(phys *circuit.Circuit) (map[string]*critical.BlockCircuit, error) {
	out := map[string]*critical.BlockCircuit{}
	for _, depth := range []int{3, 5} {
		gen := latency.NewModel()
		gen.Topo = p.Topo
		gen.Params = p.params()
		gen.DB.DetectPermutations = false
		res, err := accqoc.CompileCtx(context.Background(), phys, gen, accqoc.Options{MaxQubits: 3, Depth: depth, FidelityTarget: p.Fidelity})
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("accqoc_n3d%d", depth)] = res.Blocks
	}
	for _, m := range []int{0, mTunedSentinel, paqoc.MInf} {
		cfg := paqoc.DefaultConfig()
		cfg.FidelityTarget = p.Fidelity
		cfg.ProbeCaseII = false
		name := ""
		switch m {
		case 0:
			cfg.M = 0
			name = "paqoc_m0"
		case mTunedSentinel:
			patterns, err := mining.MineCtx(context.Background(), phys, mining.DefaultOptions())
			if err != nil {
				return nil, err
			}
			cfg.M = mining.TunedM(phys, patterns, cfg.MinSupport)
			name = "paqoc_mtuned"
		default:
			cfg.M = paqoc.MInf
			name = "paqoc_minf"
		}
		comp := p.newCompiler(nil, cfg)
		res, err := comp.CompileCtx(context.Background(), phys)
		if err != nil {
			return nil, err
		}
		out[name] = res.Blocks
	}
	return out, nil
}

// noisyFidelity plays a block circuit through the density-matrix channel
// model on the compacted register.
func noisyFidelity(bc *critical.BlockCircuit, params noise.Params) (float64, error) {
	used := map[int]bool{}
	for _, b := range bc.Blocks {
		for _, q := range b.Qubits {
			used[q] = true
		}
	}
	var order []int
	for q := range used {
		order = append(order, q)
	}
	sort.Ints(order)
	if len(order) > noise.MaxQubits {
		return 0, fmt.Errorf("register too wide: %d", len(order))
	}
	if len(order) == 0 {
		return 1, nil
	}
	remap := map[int]int{}
	for i, q := range order {
		remap[q] = i
	}

	ideal, err := statevec.NewState(len(order))
	if err != nil {
		return 0, err
	}
	var gates []noise.TimedGate
	for _, b := range bc.Blocks {
		cg := b.Custom()
		u, err := cg.Unitary()
		if err != nil {
			return 0, err
		}
		wires := make([]int, len(cg.Qubits))
		for i, q := range cg.Qubits {
			wires[i] = remap[q]
		}
		if err := ideal.ApplyUnitary(u, wires); err != nil {
			return 0, err
		}
		gates = append(gates, noise.TimedGate{U: u, Wires: wires, Duration: b.Latency})
	}
	rho, err := noise.RunSequential(len(order), gates, params)
	if err != nil {
		return 0, err
	}
	return rho.StateFidelity(ideal.Amps)
}

// PrintTableIINoisy renders the noise-channel fidelity table.
func PrintTableIINoisy(w io.Writer, rows []TableIINoisyRow) {
	fmt.Fprintln(w, "Table II (density-matrix T1/T2 channels, larger is better)")
	fmt.Fprintf(w, "%-16s", "bench")
	for _, m := range Methods {
		fmt.Fprintf(w, " %14s", m)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s", r.Bench)
		for _, m := range Methods {
			v := r.Fidelity[m]
			if math.IsNaN(v) {
				fmt.Fprintf(w, " %14s", "n/a")
			} else {
				fmt.Fprintf(w, " %13.2f%%", v*100)
			}
		}
		fmt.Fprintln(w)
	}
}
