// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): one runner per artifact, each returning structured rows
// and able to print the paper-style series. cmd/paqoc-bench exposes them on
// the command line; bench_test.go at the repository root wraps each in a
// testing.B benchmark.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"paqoc/internal/accqoc"
	"paqoc/internal/bench"
	"paqoc/internal/circuit"
	"paqoc/internal/device"
	"paqoc/internal/engine"
	"paqoc/internal/hamiltonian"
	"paqoc/internal/latency"
	"paqoc/internal/mining"
	"paqoc/internal/obs"
	"paqoc/internal/paqoc"
	"paqoc/internal/pulse"
	"paqoc/internal/route"
	"paqoc/internal/topology"
	"paqoc/internal/transpile"
)

// Platform is the evaluation platform of §VI-c: a 5×5 grid with XY
// interaction, Sabre routing, and fidelity target 0.999.
type Platform struct {
	Topo      *topology.Topology
	RouteOpts route.Options
	Fidelity  float64
	// Profile identifies the device backend the platform targets. Nil
	// (tests constructing a Platform by hand) behaves as the paper's
	// platform on whatever Topo is set.
	Profile *device.Profile
	// Obs optionally threads observability (internal/obs) through every
	// compiled method; nil keeps the sweeps uninstrumented.
	Obs *obs.Obs
	// Workers bounds the per-benchmark worker pool in RunAll: each
	// benchmark's route-and-compile-all-methods unit runs as one task.
	// 0 or 1 sweeps serially in spec order. Within-benchmark compilation
	// stays serial either way, so per-method compile costs remain
	// comparable across worker counts.
	Workers int
}

// DefaultPlatform mirrors the paper's setup. The fidelity target of 0.99
// reproduces the per-gate error regime behind Table II's absolute
// success probabilities (the paper tunes fidelity so circuit ESP beats the
// baseline rather than pinning a single value).
func DefaultPlatform() *Platform {
	return PlatformFor(device.Default())
}

// PlatformFor targets the evaluation harness at an arbitrary device
// profile: its topology drives routing and every compiled method estimates
// under its control bounds. PlatformFor(device.Default()) reproduces the
// paper's setup bit for bit.
func PlatformFor(prof *device.Profile) *Platform {
	return &Platform{
		Topo:      prof.Topology(),
		RouteOpts: route.DefaultOptions(),
		Fidelity:  0.99,
		Profile:   prof,
	}
}

// params returns the profile's control parameters, or the zero value (the
// paper's defaults) for profile-less platforms.
func (p *Platform) params() hamiltonian.Params {
	if p.Profile == nil {
		return hamiltonian.Params{}
	}
	return p.Profile.Params()
}

// Physical lowers a logical benchmark onto the platform: decompose to the
// universal basis, Sabre-route, decompose inserted SWAPs.
func (p *Platform) Physical(spec bench.Spec) (*circuit.Circuit, error) {
	phys, _, err := transpile.ToPhysical(spec.Build(), p.Topo, p.RouteOpts)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", spec.Name, err)
	}
	return phys, nil
}

// Methods in presentation order (Figs. 10–12).
var Methods = []string{"accqoc_n3d3", "accqoc_n3d5", "paqoc_m0", "paqoc_mtuned", "paqoc_minf"}

// MethodResult carries one method's metrics on one benchmark.
type MethodResult struct {
	Method       string
	Latency      float64 // critical-path latency, dt
	TotalLatency float64
	CompileCost  float64 // modelled pulse-generation seconds
	ESP          float64
	NumBlocks    int
	WallTime     time.Duration // measured end-to-end compile time
}

// RunMethods executes all five compared methods on a physical circuit.
// Every method gets a fresh pulse database so compile costs are
// independent, exactly as separate compiler invocations would be.
func (p *Platform) RunMethods(phys *circuit.Circuit) ([]MethodResult, error) {
	var out []MethodResult
	ctx := p.Obs.Attach(context.Background())

	for _, depth := range []int{3, 5} {
		gen := latency.NewModel()
		gen.Topo = p.Topo
		gen.Params = p.params()
		// Permuted-qubit pulse reuse is a PAQOC contribution (§V-B); the
		// AccQOC baseline relies on exact and similarity matches only.
		gen.DB.DetectPermutations = false
		opts := accqoc.Options{MaxQubits: 3, Depth: depth, FidelityTarget: p.Fidelity}
		res, err := accqoc.CompileCtx(ctx, phys, gen, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, MethodResult{
			Method:       fmt.Sprintf("accqoc_n3d%d", depth),
			Latency:      res.Latency,
			TotalLatency: res.TotalLatency,
			CompileCost:  res.CompileCost,
			ESP:          res.ESP,
			NumBlocks:    res.NumBlocks,
			WallTime:     res.WallTime,
		})
	}

	for _, m := range []int{0, mTunedSentinel, paqoc.MInf} {
		cfg := paqoc.DefaultConfig()
		cfg.FidelityTarget = p.Fidelity
		// Rank analytically throughout (§III-B's observations exist to
		// avoid pulse generation during the search); pulses are emitted
		// once for the final customized gates. Probing is covered by the
		// ablation benchmarks.
		cfg.ProbeCaseII = false
		name := ""
		switch m {
		case 0:
			cfg.M = 0
			name = "paqoc_m0"
		case mTunedSentinel:
			patterns, err := mining.MineCtx(ctx, phys, mining.DefaultOptions())
			if err != nil {
				return nil, err
			}
			cfg.M = mining.TunedM(phys, patterns, cfg.MinSupport)
			name = "paqoc_mtuned"
		default:
			cfg.M = paqoc.MInf
			name = "paqoc_minf"
		}
		comp := p.newCompiler(nil, cfg)
		res, err := comp.CompileCtx(ctx, phys)
		if err != nil {
			return nil, err
		}
		out = append(out, MethodResult{
			Method:       name,
			Latency:      res.Latency,
			TotalLatency: res.TotalLatency,
			CompileCost:  res.CompileCost,
			ESP:          res.ESP,
			NumBlocks:    res.NumBlocks,
			WallTime:     res.WallTime,
		})
	}
	return out, nil
}

const mTunedSentinel = -2

// newCompiler builds a paqoc compiler aimed at the platform's backend.
func (p *Platform) newCompiler(gen pulse.Generator, cfg paqoc.Config) *paqoc.Compiler {
	if p.Profile != nil {
		return paqoc.NewForProfile(gen, p.Profile, cfg)
	}
	return paqoc.New(gen, p.Topo, cfg)
}

// BenchRow pairs a benchmark with its per-method results.
type BenchRow struct {
	Bench   string
	Results []MethodResult
}

// RunAll evaluates all given benchmarks under all methods. Benchmarks fan
// out on the worker pool (Platform.Workers); rows are collected by spec
// index, so the output order matches the input order for any worker count.
func (p *Platform) RunAll(specs []bench.Spec) ([]BenchRow, error) {
	rows := make([]BenchRow, len(specs))
	err := engine.ForEach(context.Background(), p.Workers, len(specs), func(ctx context.Context, i int) error {
		s := specs[i]
		phys, err := p.Physical(s)
		if err != nil {
			return err
		}
		res, err := p.RunMethods(phys)
		if err != nil {
			return fmt.Errorf("%s: %v", s.Name, err)
		}
		rows[i] = BenchRow{Bench: s.Name, Results: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// find returns the result for a method within a row.
func (r BenchRow) find(method string) MethodResult {
	for _, m := range r.Results {
		if m.Method == method {
			return m
		}
	}
	return MethodResult{}
}

// printNormalized renders a metric table normalized to accqoc_n3d3.
func printNormalized(w io.Writer, rows []BenchRow, metric func(MethodResult) float64, title string, higherBetter bool) {
	fmt.Fprintf(w, "%s (normalized to accqoc_n3d3)\n", title)
	fmt.Fprintf(w, "%-16s", "bench")
	for _, m := range Methods {
		fmt.Fprintf(w, " %14s", m)
	}
	fmt.Fprintln(w)
	sums := make([]float64, len(Methods))
	for _, row := range rows {
		base := metric(row.find("accqoc_n3d3"))
		fmt.Fprintf(w, "%-16s", row.Bench)
		for mi, m := range Methods {
			v := metric(row.find(m))
			norm := 0.0
			if base > 0 {
				norm = v / base
			}
			sums[mi] += norm
			fmt.Fprintf(w, " %14.3f", norm)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-16s", "mean")
	for mi := range Methods {
		fmt.Fprintf(w, " %14.3f", sums[mi]/float64(len(rows)))
	}
	fmt.Fprintln(w)
	_ = higherBetter // direction is annotated by the caller's title
}
