package experiments

import (
	"context"
	"fmt"
	"io"

	"paqoc/internal/bench"
	"paqoc/internal/circuit"
	"paqoc/internal/mining"
)

// MiningRecord is one round of the offline-mining replay experiment
// (BENCH_009.json): a fixed mix of benchmark circuits arrives round after
// round, the cross-request pattern table folds each request, and after
// every round an idle window pre-generates the top-coverage patterns not
// yet covered. PregenHits counts this round's pattern instances whose
// signature was pre-generated in an earlier round — the APA blocks a live
// server would serve from the warm store without a GRAPE cold start.
type MiningRecord struct {
	Round            int     `json:"round"`
	Requests         int     `json:"requests"`
	CorpusCircuits   int     `json:"corpus_circuits"`
	PatternsTracked  int     `json:"patterns_tracked"`
	Pregenerated     int     `json:"pregenerated"`
	PatternInstances int     `json:"pattern_instances"`
	PregenHits       int     `json:"pregen_hits"`
	HitRatePct       float64 `json:"hit_rate_pct"`
	// OfflineGates accumulates the gate count of every pre-generated
	// pattern — the modeled offline optimization investment (§V-C pays it
	// during idle capacity; AccQOC pays it ahead of time).
	OfflineGates int `json:"offline_gates"`
}

// miningWorkload is the replayed request mix: small Table I benchmarks
// with recurring structure, the traffic shape the offline miner exists
// for.
var miningWorkload = []string{
	"rd32_270", "decod24-v1_41", "hwb4_49", "simon", "qpe", "qaoa",
}

// MiningReplay replays `rounds` rounds of the workload through the
// incremental cross-request table, pre-generating up to `budget` patterns
// per idle window. Deterministic: same inputs, same records.
func MiningReplay(rounds, budget int) ([]MiningRecord, error) {
	if rounds <= 0 {
		rounds = 6
	}
	if budget <= 0 {
		budget = 64
	}
	ctx := context.Background()
	opts := mining.DefaultOptions() // cross-request MinSupport 2

	var workload []*circuit.Circuit
	for _, name := range miningWorkload {
		spec, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("mining replay: unknown benchmark %q", name)
		}
		workload = append(workload, spec.Build())
	}

	tbl, err := mining.NewTable(opts)
	if err != nil {
		return nil, err
	}
	// Per-request scan: disjoint pattern instances within one circuit,
	// unfiltered (MinSupport 1) — the instance universe a warm store could
	// serve.
	scanOpts := opts
	scanOpts.MinSupport = 1

	pregen := map[string]bool{}
	offlineGates := 0
	nextID := 0
	var out []MiningRecord

	for round := 1; round <= rounds; round++ {
		rec := MiningRecord{Round: round, Requests: len(workload)}
		for _, c := range workload {
			// The request's own pattern instances, judged against the
			// pre-generated set from earlier idle windows.
			pats, err := mining.MineCtx(ctx, c, scanOpts)
			if err != nil {
				return nil, err
			}
			for _, p := range pats {
				rec.PatternInstances += p.Support
				if pregen[p.Signature] {
					rec.PregenHits += p.Support
				}
			}
			if err := tbl.Fold(ctx, nextID, c); err != nil {
				return nil, err
			}
			nextID++
		}
		if rec.PatternInstances > 0 {
			rec.HitRatePct = 100 * float64(rec.PregenHits) / float64(rec.PatternInstances)
		}

		// Idle window after the round: pre-generate the top-coverage
		// uncovered patterns, budget-bounded like the live miner.
		generated := 0
		for _, p := range tbl.Patterns() {
			if generated >= budget {
				break
			}
			if pregen[p.Signature] {
				continue
			}
			pregen[p.Signature] = true
			offlineGates += p.GateCount
			generated++
		}

		rec.CorpusCircuits = tbl.Circuits()
		rec.PatternsTracked = len(tbl.Patterns())
		rec.Pregenerated = len(pregen)
		rec.OfflineGates = offlineGates
		out = append(out, rec)
	}
	return out, nil
}

// PrintMiningReplay renders the replay rounds as a table.
func PrintMiningReplay(w io.Writer, recs []MiningRecord) {
	fmt.Fprintln(w, "Offline mining replay: cross-request pattern table + idle pre-generation")
	fmt.Fprintf(w, "workload: %v\n", miningWorkload)
	fmt.Fprintf(w, "%-6s %9s %8s %9s %7s %10s %6s %8s %9s\n",
		"round", "requests", "corpus", "patterns", "pregen", "instances", "hits", "hit%", "off.gates")
	for _, r := range recs {
		fmt.Fprintf(w, "%-6d %9d %8d %9d %7d %10d %6d %7.1f%% %9d\n",
			r.Round, r.Requests, r.CorpusCircuits, r.PatternsTracked, r.Pregenerated,
			r.PatternInstances, r.PregenHits, r.HitRatePct, r.OfflineGates)
	}
}
