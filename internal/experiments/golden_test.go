package experiments

import (
	"testing"

	"paqoc/internal/bench"
	"paqoc/internal/device"
)

// goldenFastFive pins the default platform's sweep results on the
// fast-five subset, captured from the pre-profile code. Latency,
// TotalLatency, ESP, and NumBlocks are pure functions of the circuit and
// the analytical model, so they must match bit for bit: any drift means
// the device-profile plumbing changed the physics of the default backend.
// (CompileCost carries a measured wall-clock component and is not pinned.)
var goldenFastFive = []struct {
	bench, method         string
	latency, totalLatency float64
	esp                   float64
	blocks                int
}{
	{"rd32_270", "accqoc_n3d3", 3482.0635062657684, 4003.620654663222, 0.75635909262046574, 48},
	{"rd32_270", "accqoc_n3d5", 2707.3419607886935, 3087.351758403167, 0.84141555732122453, 30},
	{"rd32_270", "paqoc_m0", 1936.1621078735498, 1936.1621078735498, 0.9295762048973496, 12},
	{"rd32_270", "paqoc_mtuned", 1931.0451306268419, 1931.0451306268419, 0.93538299824372606, 12},
	{"rd32_270", "paqoc_minf", 1931.0451306268419, 1931.0451306268419, 0.93538299824372606, 12},
	{"decod24-v1_41", "accqoc_n3d3", 3290.3338312246242, 3751.7920759219414, 0.76644923387359798, 48},
	{"decod24-v1_41", "accqoc_n3d5", 2967.9872711646694, 3360.7752960711678, 0.84972061998779669, 30},
	{"decod24-v1_41", "paqoc_m0", 1541.9968595162759, 1548.8587031275429, 0.93279626009521022, 11},
	{"decod24-v1_41", "paqoc_mtuned", 1541.9968595162759, 1548.8587031275429, 0.93279626009521022, 11},
	{"decod24-v1_41", "paqoc_minf", 1541.9968595162759, 1548.8587031275429, 0.93279626009521022, 11},
	{"4gt10-v1_81", "accqoc_n3d3", 6645.6391282194727, 7271.721978427061, 0.6088938985763146, 84},
	{"4gt10-v1_81", "accqoc_n3d5", 5379.7671949382384, 5786.5343216660867, 0.72177335119994379, 55},
	{"4gt10-v1_81", "paqoc_m0", 2463.7835033981432, 2638.8814777789003, 0.89149253796433736, 19},
	{"4gt10-v1_81", "paqoc_mtuned", 2463.7835033981432, 2638.8814777789003, 0.89149253796433736, 19},
	{"4gt10-v1_81", "paqoc_minf", 2415.9666616591508, 2504.7960283573202, 0.9025408016095896, 17},
	{"qaoa", "accqoc_n3d3", 3035.9094558691213, 5943.2116984593276, 0.57439953680069011, 96},
	{"qaoa", "accqoc_n3d5", 4604.2630572224225, 7545.2692863631892, 0.67069127614910495, 74},
	{"qaoa", "paqoc_m0", 2353.718650882955, 4553.5430991754693, 0.65570964793331399, 69},
	{"qaoa", "paqoc_mtuned", 2353.718650882955, 4553.5430991754693, 0.65570964793331399, 69},
	{"qaoa", "paqoc_minf", 2353.718650882955, 4553.5430991754693, 0.65570964793331399, 69},
	{"simon", "accqoc_n3d3", 1246.8787606258275, 1699.8967447715677, 0.89475266475413318, 22},
	{"simon", "accqoc_n3d5", 1092.3827170728025, 1361.717983501406, 0.93104527278084126, 14},
	{"simon", "paqoc_m0", 505.97377459254574, 665.95341167062122, 0.94431978041872988, 8},
	{"simon", "paqoc_mtuned", 691.53924926266939, 848.77195944864991, 0.95152952934315826, 8},
	{"simon", "paqoc_minf", 691.53924926266939, 848.77195944864991, 0.95152952934315826, 8},
}

func TestDefaultProfileReproducesSeedResults(t *testing.T) {
	if testing.Short() {
		t.Skip("fast-five sweep takes tens of seconds")
	}
	var names []string
	for _, g := range goldenFastFive {
		if len(names) == 0 || names[len(names)-1] != g.bench {
			names = append(names, g.bench)
		}
	}
	var specs []bench.Spec
	for _, n := range names {
		s, ok := bench.ByName(n)
		if !ok {
			t.Fatalf("unknown bench %s", n)
		}
		specs = append(specs, s)
	}

	p := DefaultPlatform()
	if p.Profile == nil || p.Profile.Name != device.DefaultName {
		t.Fatalf("default platform profile = %+v", p.Profile)
	}
	rows, err := p.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]string]MethodResult{}
	for _, row := range rows {
		for _, r := range row.Results {
			got[[2]string{row.Bench, r.Method}] = r
		}
	}
	for _, g := range goldenFastFive {
		r, ok := got[[2]string{g.bench, g.method}]
		if !ok {
			t.Errorf("%s/%s: missing result", g.bench, g.method)
			continue
		}
		if r.Latency != g.latency {
			t.Errorf("%s/%s: latency %.17g, want %.17g", g.bench, g.method, r.Latency, g.latency)
		}
		if r.TotalLatency != g.totalLatency {
			t.Errorf("%s/%s: total latency %.17g, want %.17g", g.bench, g.method, r.TotalLatency, g.totalLatency)
		}
		if r.ESP != g.esp {
			t.Errorf("%s/%s: ESP %.17g, want %.17g", g.bench, g.method, r.ESP, g.esp)
		}
		if r.NumBlocks != g.blocks {
			t.Errorf("%s/%s: blocks %d, want %d", g.bench, g.method, r.NumBlocks, g.blocks)
		}
	}
}
