package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"paqoc/internal/bench"
	"paqoc/internal/circuit"
	"paqoc/internal/grape"
	"paqoc/internal/hamiltonian"
	"paqoc/internal/latency"
	paqocpkg "paqoc/internal/paqoc"
	"paqoc/internal/pulse"
	"paqoc/internal/quantum"
)

// ───────────────────────────── Fig. 2 ─────────────────────────────

// Fig2Result compares pulse latencies for H and CX generated separately
// versus the consolidated H;CX unitary (the paper reports 170 dt vs
// 110 dt; absolute values differ on our platform, the ordering must not).
type Fig2Result struct {
	HLatency      float64
	CXLatency     float64
	MergedLatency float64
}

// Fig2 runs real GRAPE for the motivating example.
func Fig2() (*Fig2Result, error) {
	opts := grape.DefaultOptions()
	sys1 := hamiltonian.XYTransmon(1, nil)
	_, hLat, _, err := grape.MinimumTimeCtx(context.Background(), sys1, quantum.MatH.Clone(), opts)
	if err != nil {
		return nil, err
	}
	sys2 := hamiltonian.XYTransmon(2, hamiltonian.LinearChain(2))
	_, cxLat, _, err := grape.MinimumTimeCtx(context.Background(), sys2, quantum.MatCX.Clone(), opts)
	if err != nil {
		return nil, err
	}
	merged := quantum.MatCX.Mul(quantum.MatH.Kron(quantum.MatI))
	_, mLat, _, err := grape.MinimumTimeCtx(context.Background(), sys2, merged, opts)
	if err != nil {
		return nil, err
	}
	return &Fig2Result{HLatency: hLat, CXLatency: cxLat, MergedLatency: mLat}, nil
}

// Print renders the figure-2 comparison.
func (r *Fig2Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 2 — merged vs stitched pulse latency (GRAPE, dt)\n")
	fmt.Fprintf(w, "  separate: H = %.0f, CX = %.0f, stitched = %.0f\n", r.HLatency, r.CXLatency, r.HLatency+r.CXLatency)
	fmt.Fprintf(w, "  merged H+CX unitary   = %.0f\n", r.MergedLatency)
	fmt.Fprintf(w, "  paper: 170 dt stitched vs 110 dt merged\n")
}

// ───────────────────────────── Fig. 6 ─────────────────────────────

// Fig6Point is one subcircuit sample: the sum of individual gate pulse
// latencies (X axis) against the merged-group latency (Y axis).
type Fig6Point struct {
	SumLatency    float64
	MergedLatency float64
	Qubits        int
	Gates         int
}

// Fig6Result aggregates the §III-B study over the 150-benchmark suite.
type Fig6Result struct {
	Points []Fig6Point
	// BelowDiagonal counts points with merged ≤ sum (Observation 1).
	BelowDiagonal int
	// MeanLatencyByQubits supports Observation 2.
	MeanLatencyByQubits map[int]float64
}

// Fig6 extracts maximal same-qubit-set runs of 1–3 qubit gates from the
// 150-circuit suite and compares merged vs summed pulse latencies using
// the calibrated model.
func Fig6(limit int) (*Fig6Result, error) {
	model := latency.NewModel()
	suite := bench.Suite150()
	if limit > 0 && limit < len(suite) {
		suite = suite[:limit]
	}
	res := &Fig6Result{MeanLatencyByQubits: map[int]float64{}}
	counts := map[int]int{}

	for _, c := range suite {
		for _, run := range maximalRuns(c) {
			if len(run) < 2 {
				continue
			}
			var sum float64
			ok := true
			for _, g := range run {
				gen, err := model.GenerateCtx(context.Background(), pulse.NewCustomGate([]circuit.Gate{g}), 0.999)
				if err != nil {
					ok = false
					break
				}
				sum += gen.Latency
			}
			if !ok {
				continue
			}
			cg := pulse.NewCustomGate(run)
			gen, err := model.GenerateCtx(context.Background(), cg, 0.999)
			if err != nil {
				continue
			}
			pt := Fig6Point{SumLatency: sum, MergedLatency: gen.Latency, Qubits: cg.NumQubits(), Gates: len(run)}
			res.Points = append(res.Points, pt)
			if pt.MergedLatency <= pt.SumLatency+1e-9 {
				res.BelowDiagonal++
			}
			res.MeanLatencyByQubits[pt.Qubits] += pt.MergedLatency
			counts[pt.Qubits]++
		}
	}
	for q, total := range res.MeanLatencyByQubits {
		res.MeanLatencyByQubits[q] = total / float64(counts[q])
	}
	return res, nil
}

// maximalRuns extracts the paper's §III-B subcircuits: maximal consecutive
// gate sequences whose gates share qubit(s) with the group, capped at
// three qubits total.
func maximalRuns(c *circuit.Circuit) [][]circuit.Gate {
	var runs [][]circuit.Gate
	var cur []circuit.Gate
	qubits := map[int]bool{}

	flush := func() {
		if len(cur) > 0 {
			runs = append(runs, cur)
		}
		cur = nil
		qubits = map[int]bool{}
	}
	for _, g := range c.Gates {
		shares := len(cur) == 0
		grown := 0
		for _, q := range g.Qubits {
			if qubits[q] {
				shares = true
			} else {
				grown++
			}
		}
		if !shares || len(qubits)+grown > 3 {
			flush()
		}
		cur = append(cur, g)
		for _, q := range g.Qubits {
			qubits[q] = true
		}
	}
	flush()
	return runs
}

// Print renders the Fig. 6 summary (the scatter itself is the Points
// slice; cmd/paqoc-bench can dump it as CSV).
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 6 — merged vs summed subcircuit latency (%d samples)\n", len(r.Points))
	fmt.Fprintf(w, "  below diagonal (Observation 1): %d / %d\n", r.BelowDiagonal, len(r.Points))
	for q := 1; q <= 3; q++ {
		if v, ok := r.MeanLatencyByQubits[q]; ok {
			fmt.Fprintf(w, "  mean merged latency, %dq groups: %.1f dt\n", q, v)
		}
	}
}

// CSV writes the scatter points.
func (r *Fig6Result) CSV(w io.Writer) {
	fmt.Fprintln(w, "sum_latency_dt,merged_latency_dt,qubits,gates")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%.2f,%.2f,%d,%d\n", p.SumLatency, p.MergedLatency, p.Qubits, p.Gates)
	}
}

// ─────────────────────────── Figs. 10–12 ───────────────────────────

// Fig10 prints circuit latency normalized to accqoc_n3d3 (lower is
// better; the paper's paqoc(M=0) averages a 54% reduction).
func Fig10(w io.Writer, rows []BenchRow) {
	printNormalized(w, rows, func(m MethodResult) float64 { return m.Latency },
		"Fig. 10 — circuit latency", false)
}

// Fig11 prints compilation time normalized to accqoc_n3d3 (lower is
// better; the paper's paqoc(M=inf) is fastest, ~43% average reduction).
func Fig11(w io.Writer, rows []BenchRow) {
	printNormalized(w, rows, func(m MethodResult) float64 { return m.CompileCost },
		"Fig. 11 — compilation time", false)
}

// Fig12 prints ESP normalized to accqoc_n3d3 (higher is better; the
// paper's paqoc(M=0) averages +27%).
func Fig12(w io.Writer, rows []BenchRow) {
	printNormalized(w, rows, func(m MethodResult) float64 { return m.ESP },
		"Fig. 12 — estimated success probability", true)
}

// ───────────────────────────── Fig. 14 ─────────────────────────────

// Fig14Point is one (gate count, compile time) sample for paqoc(M=inf).
type Fig14Point struct {
	Bench       string
	Gates       int
	CompileCost float64
}

// Fig14Result carries the scalability study with its linear fit.
type Fig14Result struct {
	Points           []Fig14Point
	Slope, Intercept float64 // compile seconds per gate
	R2               float64
}

// Fig14 measures paqoc(M=inf) compile cost against circuit size.
func Fig14(p *Platform, specs []bench.Spec) (*Fig14Result, error) {
	res := &Fig14Result{}
	for _, s := range specs {
		phys, err := p.Physical(s)
		if err != nil {
			return nil, err
		}
		cfg := paqocpkg.DefaultConfig()
		cfg.M = paqocpkg.MInf
		cfg.FidelityTarget = p.Fidelity
		comp := paqocpkg.New(nil, p.Topo, cfg)
		out, err := comp.CompileCtx(context.Background(), phys)
		if err != nil {
			return nil, err
		}
		// Fig. 14 charts total compilation time, so the offline APA pulse
		// generation is included here.
		res.Points = append(res.Points, Fig14Point{
			Bench: s.Name, Gates: len(phys.Gates),
			CompileCost: out.CompileCost + out.OfflineCost,
		})
	}
	res.Slope, res.Intercept, res.R2 = linearFit(res.Points)
	return res, nil
}

func linearFit(pts []Fig14Point) (slope, intercept, r2 float64) {
	n := float64(len(pts))
	if n < 2 {
		return 0, 0, 0
	}
	var sx, sy, sxx, sxy, syy float64
	for _, p := range pts {
		x, y := float64(p.Gates), p.CompileCost
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	ssRes := 0.0
	for _, p := range pts {
		pred := slope*float64(p.Gates) + intercept
		d := p.CompileCost - pred
		ssRes += d * d
	}
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return slope, intercept, r2
}

// Print renders the Fig. 14 series.
func (r *Fig14Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 14 — paqoc(M=inf) compile time vs circuit size\n")
	fmt.Fprintf(w, "%-16s %8s %14s\n", "bench", "gates", "compile (s)")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-16s %8d %14.2f\n", p.Bench, p.Gates, p.CompileCost)
	}
	fmt.Fprintf(w, "linear fit: t = %.4f·gates %+.2f  (R² = %.3f)\n", r.Slope, r.Intercept, r.R2)
	fmt.Fprintf(w, "paper: <25 min at ~1200 gates, near-linear scaling\n")
}

var _ = math.Sqrt
