package experiments

import (
	"bytes"
	"strings"
	"testing"

	"paqoc/internal/bench"
)

// subset is a fast, representative slice of Table I used by the shape
// tests; the full sweep runs in cmd/paqoc-bench and the root benchmarks.
func subset(t testing.TB) []bench.Spec {
	t.Helper()
	var specs []bench.Spec
	for _, n := range []string{"rd32_270", "bv", "qaoa", "simon", "qft"} {
		s, ok := bench.ByName(n)
		if !ok {
			t.Fatalf("missing benchmark %s", n)
		}
		specs = append(specs, s)
	}
	return specs
}

// sweep runs the subset once per test binary invocation.
var sweepCache []BenchRow

func sweep(t *testing.T) []BenchRow {
	t.Helper()
	if sweepCache != nil {
		return sweepCache
	}
	rows, err := DefaultPlatform().RunAll(subset(t))
	if err != nil {
		t.Fatal(err)
	}
	sweepCache = rows
	return rows
}

func TestFig2Shape(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if r.MergedLatency >= r.HLatency+r.CXLatency {
		t.Errorf("merged %g not below stitched %g", r.MergedLatency, r.HLatency+r.CXLatency)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "merged") {
		t.Error("Print output malformed")
	}
}

func TestFig6Observations(t *testing.T) {
	r, err := Fig6(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 50 {
		t.Fatalf("only %d samples", len(r.Points))
	}
	// Observation 1: every point at or below the diagonal (the paper's
	// Fig. 6 shows all points below).
	if r.BelowDiagonal < len(r.Points)*99/100 {
		t.Errorf("only %d/%d samples below the diagonal", r.BelowDiagonal, len(r.Points))
	}
	// Observation 2: mean latency grows with qubit count.
	m1, ok1 := r.MeanLatencyByQubits[1]
	m2, ok2 := r.MeanLatencyByQubits[2]
	if ok1 && ok2 && m1 >= m2 {
		t.Errorf("Obs 2 violated: 1q mean %.1f ≥ 2q mean %.1f", m1, m2)
	}
	if m3, ok := r.MeanLatencyByQubits[3]; ok && ok2 && m2 >= m3 {
		t.Errorf("Obs 2 violated: 2q mean %.1f ≥ 3q mean %.1f", m2, m3)
	}
	var buf bytes.Buffer
	r.CSV(&buf)
	if !strings.HasPrefix(buf.String(), "sum_latency_dt,") {
		t.Error("CSV header missing")
	}
}

func TestFig10LatencyShape(t *testing.T) {
	rows := sweep(t)
	wins := 0
	var sumNorm float64
	for _, row := range rows {
		base := row.find("accqoc_n3d3").Latency
		m0 := row.find("paqoc_m0").Latency
		if m0 <= base {
			wins++
		}
		sumNorm += m0 / base
	}
	if wins < len(rows)-1 {
		t.Errorf("paqoc_m0 beats accqoc_n3d3 on only %d/%d benchmarks", wins, len(rows))
	}
	if mean := sumNorm / float64(len(rows)); mean > 0.9 {
		t.Errorf("mean normalized latency %.3f, expected a clear reduction (paper: 0.46)", mean)
	}
	var buf bytes.Buffer
	Fig10(&buf, rows)
	if !strings.Contains(buf.String(), "circuit latency") {
		t.Error("Fig10 print malformed")
	}
}

func TestFig11CompileShape(t *testing.T) {
	rows := sweep(t)
	// paqoc(M=inf) must be cheaper than accqoc_n3d3 on average, and never
	// slower than accqoc_n3d5 on average (the paper's ordering).
	var infSum, d5Sum float64
	for _, row := range rows {
		base := row.find("accqoc_n3d3").CompileCost
		infSum += row.find("paqoc_minf").CompileCost / base
		d5Sum += row.find("accqoc_n3d5").CompileCost / base
	}
	n := float64(len(rows))
	if infSum/n > 1.05 {
		t.Errorf("paqoc_minf mean compile %.3f, expected below accqoc_n3d3", infSum/n)
	}
	if infSum/n > d5Sum/n {
		t.Errorf("paqoc_minf (%.3f) should be cheaper than accqoc_n3d5 (%.3f)", infSum/n, d5Sum/n)
	}
	var buf bytes.Buffer
	Fig11(&buf, rows)
	if !strings.Contains(buf.String(), "compilation time") {
		t.Error("Fig11 print malformed")
	}
}

func TestFig12ESPShape(t *testing.T) {
	rows := sweep(t)
	var sum float64
	for _, row := range rows {
		base := row.find("accqoc_n3d3").ESP
		m0 := row.find("paqoc_m0").ESP
		if m0 < base*0.999 {
			t.Errorf("%s: paqoc_m0 ESP %.4f below baseline %.4f", row.Bench, m0, base)
		}
		sum += m0 / base
	}
	if mean := sum / float64(len(rows)); mean < 1.01 {
		t.Errorf("mean ESP improvement %.3f, expected > 1 (paper: 1.27)", mean)
	}
}

func TestFig13DepthLuck(t *testing.T) {
	r, err := Fig13(DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalIdioms == 0 {
		t.Fatal("no CPHASE idioms in qaoa")
	}
	if r.CapturedN3D3 <= r.CapturedN3D5 {
		t.Errorf("depth-3 captured %d, depth-5 %d; paper says depth-3 wins on qaoa",
			r.CapturedN3D3, r.CapturedN3D5)
	}
}

func TestFig14Scaling(t *testing.T) {
	// A size-spread family (RevLib-style circuits dedup little, so cost
	// tracks size) exposes the near-linear scaling of Fig. 14.
	var specs []bench.Spec
	for _, n := range []string{"rd32_270", "4gt10-v1_81", "hwb4_49", "ham7_104", "majority_239"} {
		s, _ := bench.ByName(n)
		specs = append(specs, s)
	}
	r, err := Fig14(DefaultPlatform(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 5 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.Slope <= 0 {
		t.Errorf("compile time should grow with circuit size, slope %g", r.Slope)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "linear fit") {
		t.Error("Fig14 print malformed")
	}
}

func TestTableIInventory(t *testing.T) {
	rows := TableI()
	if len(rows) != 17 {
		t.Fatalf("Table I has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.MeasuredAll == 0 {
			t.Errorf("%s: empty circuit", r.Name)
		}
	}
	var buf bytes.Buffer
	PrintTableI(&buf, rows)
	if !strings.Contains(buf.String(), "qft") {
		t.Error("TableI print malformed")
	}
}

func TestTableIIFidelityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table II sweep in -short mode")
	}
	rows, err := TableII(DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(TableIIBenches) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		best := ""
		bestF := -1.0
		for m, f := range r.Fidelity {
			if f <= 0 || f > 1 {
				t.Errorf("%s/%s: fidelity %g out of range", r.Bench, m, f)
			}
			if f > bestF {
				best, bestF = m, f
			}
		}
		// Table II: a paqoc variant wins on every benchmark.
		if !strings.HasPrefix(best, "paqoc") {
			t.Errorf("%s: best method %s (%.4f); paper has paqoc best everywhere", r.Bench, best, bestF)
		}
	}
	var buf bytes.Buffer
	PrintTableII(&buf, rows)
	if !strings.Contains(buf.String(), "%") {
		t.Error("TableII print malformed")
	}
}

func TestTableIIIMinedPatterns(t *testing.T) {
	rows, err := TableIII(DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]TableIIIRow{}
	for _, r := range rows {
		got[r.Bench] = r
	}
	// bv and qft: the SWAP idiom (three concatenated CXs on one pair) must
	// be the top pattern (Table III).
	for _, name := range []string{"bv", "qft"} {
		r := got[name]
		if len(r.Patterns) == 0 {
			t.Fatalf("%s: no patterns", name)
		}
		top := r.Patterns[0]
		if top.Signature != "cx:0,1|cx:1,0|cx:0,1" {
			t.Errorf("%s: top pattern %q, want the 3-CX SWAP idiom", name, top.Signature)
		}
	}
	// qaoa: the CPHASE idiom (cx; rz; cx) must be the top pattern.
	qaoa := got["qaoa"]
	if len(qaoa.Patterns) == 0 || !strings.Contains(qaoa.Patterns[0].Signature, "rz(") ||
		qaoa.Patterns[0].GateCount != 3 {
		t.Errorf("qaoa top pattern should be the CPHASE idiom, got %+v", qaoa.Patterns)
	}
	// adder and supre have frequent patterns too.
	for _, name := range []string{"adder", "supre"} {
		if len(got[name].Patterns) == 0 {
			t.Errorf("%s: no patterns mined", name)
		}
	}
}

func TestAblationRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep skipped in -short mode")
	}
	rows, err := DefaultPlatform().Ablation("simon")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 7 {
		t.Fatalf("only %d ablation rows", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Config] = r
		if r.Latency <= 0 || r.ESP <= 0 || r.Blocks <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Config, r)
		}
	}
	def := byName["default (M=0,k=1,maxN=3)"]
	n2 := byName["maxN=2"]
	if n2.Latency < def.Latency {
		t.Errorf("maxN=2 latency %.0f should not beat maxN=3 %.0f", n2.Latency, def.Latency)
	}
	if n2.Blocks < def.Blocks {
		t.Errorf("maxN=2 should leave at least as many blocks")
	}
}

// TestMiningReplay: the offline-mining replay is deterministic, hits stay
// zero in the cold first round, and the hit rate grows monotonically as
// idle windows pre-generate more of the recurring patterns.
func TestMiningReplay(t *testing.T) {
	recs, err := MiningReplay(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d rounds, want 3", len(recs))
	}
	if recs[0].PregenHits != 0 {
		t.Errorf("round 1 hit a pre-generated pattern before any idle window: %+v", recs[0])
	}
	if recs[2].PregenHits == 0 {
		t.Error("no pregen hits by round 3 despite a recurring workload")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].HitRatePct < recs[i-1].HitRatePct {
			t.Errorf("hit rate fell: round %d %.1f%% -> round %d %.1f%%",
				i, recs[i-1].HitRatePct, i+1, recs[i].HitRatePct)
		}
		if recs[i].Pregenerated < recs[i-1].Pregenerated {
			t.Errorf("pregen set shrank between rounds %d and %d", i, i+1)
		}
	}
	// Determinism: a second run reproduces the records exactly.
	again, err := MiningReplay(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if recs[i] != again[i] {
			t.Fatalf("round %d not deterministic:\n  %+v\n  %+v", i+1, recs[i], again[i])
		}
	}
}
