package experiments

import "testing"

// TestTableIIFullSmall runs the real-GRAPE, full-pulse-simulation Table II
// protocol on the two fastest benchmarks. It doubles as the regression
// test for §V-B permuted-schedule reuse: before channel remapping, simon's
// coherent fidelity collapsed to ~0.04%.
func TestTableIIFullSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full pulse simulation is slow")
	}
	rows, err := TableIIFull(DefaultPlatform(), []string{"simon", "bb84"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Coherent < 0.98 {
			t.Errorf("%s: coherent fidelity %.4f below the per-gate target product", r.Bench, r.Coherent)
		}
		if r.WithDephasing >= r.Coherent {
			t.Errorf("%s: dephasing should reduce fidelity", r.Bench)
		}
	}
}
