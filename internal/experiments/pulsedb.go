package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"paqoc/internal/linalg"
	"paqoc/internal/pulse"
)

// PulseDBRecord is one measured operation in the pulse-store benchmark
// suite (BENCH_005.json): warm-hit Lookup throughput serial vs parallel
// on the sharded store, indexed Nearest vs the seed-era linear scan at
// growing populations, and Store cost at capacity with ranked eviction
// active.
type PulseDBRecord struct {
	Name        string  `json:"name"`
	Entries     int     `json:"entries"`
	Goroutines  int     `json:"goroutines,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

func pulseDBRecord(name string, entries, goroutines int, r testing.BenchmarkResult) PulseDBRecord {
	return PulseDBRecord{
		Name:        name,
		Entries:     entries,
		Goroutines:  goroutines,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
}

// pulseDBRotation mirrors the RZ-like customized-gate unitaries a warm
// store accumulates: 2×2 rotations over random angles.
func pulseDBRotation(theta float64) *linalg.Matrix {
	u := linalg.New(2, 2)
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	u.Data[0] = complex(c, 0)
	u.Data[1] = complex(0, -s)
	u.Data[2] = complex(0, -s)
	u.Data[3] = complex(c, 0)
	return u
}

// pulseDBPopulate builds a DB holding n rotation entries and returns the
// stored unitaries (for hit probes) plus fresh probe unitaries that miss
// the exact-key path and exercise Nearest.
func pulseDBPopulate(n int, rng *rand.Rand) (*pulse.DB, []*linalg.Matrix, []*linalg.Matrix) {
	db := pulse.NewDB()
	stored := make([]*linalg.Matrix, n)
	for i := range stored {
		stored[i] = pulseDBRotation(rng.Float64() * 2 * math.Pi)
		db.Store(stored[i], &pulse.Generated{Latency: float64(i), Fidelity: 0.999, Error: 0.001})
	}
	probes := make([]*linalg.Matrix, 256)
	for i := range probes {
		probes[i] = pulseDBRotation(rng.Float64() * 2 * math.Pi)
	}
	return db, stored, probes
}

// PulseDB benchmarks the sharded pulse store. The Nearest pair at each
// population compares the norm-cached, triangle-inequality-pruned index
// against NearestLinear, the retained seed-era full scan over
// linalg.GlobalPhaseDistance — the same oracle the equivalence property
// test pins the index to, so the speedup is between provably identical
// results.
func PulseDB() []PulseDBRecord {
	rng := rand.New(rand.NewSource(42))
	procs := runtime.GOMAXPROCS(0)
	var out []PulseDBRecord

	// Warm-hit Lookup throughput, serial vs one goroutine per processor.
	// Shard-level RWMutexes mean parallel readers contend only when their
	// keys hash to the same shard; on a single-core host the parallel
	// figure degenerates to the serial one plus scheduler overhead.
	{
		const n = 10_000
		db, stored, _ := pulseDBPopulate(n, rng)
		out = append(out,
			pulseDBRecord("lookup.serial", n, 1, testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					db.Lookup(stored[i%len(stored)])
				}
			})),
			pulseDBRecord("lookup.parallel", n, procs, testing.Benchmark(func(b *testing.B) {
				b.RunParallel(func(pb *testing.PB) {
					i := rng.Int()
					for pb.Next() {
						db.Lookup(stored[i%len(stored)])
						i++
					}
				})
			})),
		)
	}

	// Nearest: pruned index vs linear scan at growing populations.
	for _, n := range []int{1_000, 10_000, 100_000} {
		db, _, probes := pulseDBPopulate(n, rng)
		out = append(out,
			pulseDBRecord("nearest.indexed", n, 1, testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					db.Nearest(probes[i%len(probes)], 10)
				}
			})),
		)
		// The linear oracle at 10⁵ entries allocates two matrices per
		// candidate; cap it at 10⁴ to keep the suite under a minute.
		if n <= 10_000 {
			out = append(out,
				pulseDBRecord("nearest.linear", n, 1, testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						db.NearestLinear(probes[i%len(probes)], 10)
					}
				})),
			)
		}
	}

	// Store at capacity: the bound forces a ranked-eviction sweep every
	// max/32 inserts, so the per-op figure includes amortized eviction.
	{
		const max = 4_096
		db, _, _ := pulseDBPopulate(max, rng)
		db.SetMaxEntries(max)
		gen := &pulse.Generated{Latency: 1, Fidelity: 0.999, Error: 0.001}
		out = append(out,
			pulseDBRecord("store.bounded", max, 1, testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					db.Store(pulseDBRotation(rng.Float64()*2*math.Pi), gen)
				}
			})),
		)
	}
	return out
}

// PrintPulseDB renders the pulse-store records, pairing each indexed
// Nearest figure with its linear baseline to show the speedup.
func PrintPulseDB(w io.Writer, recs []PulseDBRecord) {
	fmt.Fprintln(w, "Sharded pulse-store benchmarks (warm-hit Lookup, indexed vs linear Nearest, bounded Store)")
	fmt.Fprintf(w, "%-18s %8s %4s %14s %12s %12s\n", "op", "entries", "G", "ns/op", "allocs/op", "B/op")
	linear := map[int]float64{}
	for _, r := range recs {
		if r.Name == "nearest.linear" {
			linear[r.Entries] = r.NsPerOp
		}
	}
	for _, r := range recs {
		fmt.Fprintf(w, "%-18s %8d %4d %14.1f %12.2f %12.1f\n",
			r.Name, r.Entries, r.Goroutines, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		if r.Name == "nearest.indexed" {
			if base, ok := linear[r.Entries]; ok && r.NsPerOp > 0 {
				fmt.Fprintf(w, "%-18s %8d %4s %13.1fx\n", "  └ vs linear", r.Entries, "", base/r.NsPerOp)
			}
		}
	}
}
