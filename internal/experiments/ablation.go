package experiments

import (
	"context"
	"fmt"
	"io"

	"paqoc/internal/bench"
	"paqoc/internal/paqoc"
)

// AblationRow is one configuration's outcome on one benchmark.
type AblationRow struct {
	Config      string
	Latency     float64
	CompileCost float64
	ESP         float64
	Blocks      int
	Iterations  int
}

// Ablation sweeps the design knobs DESIGN.md calls out — the APA budget M,
// top-k, the width cap maxN, Case III pruning, and the commutativity
// extension — on one benchmark, holding everything else at the evaluation
// defaults.
func (p *Platform) Ablation(benchName string) ([]AblationRow, error) {
	spec, ok := bench.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", benchName)
	}
	phys, err := p.Physical(spec)
	if err != nil {
		return nil, err
	}

	base := func() paqoc.Config {
		cfg := paqoc.DefaultConfig()
		cfg.FidelityTarget = p.Fidelity
		cfg.ProbeCaseII = false
		return cfg
	}
	configs := []struct {
		name   string
		mutate func(*paqoc.Config)
	}{
		{"default (M=0,k=1,maxN=3)", func(*paqoc.Config) {}},
		{"M=inf", func(c *paqoc.Config) { c.M = paqoc.MInf }},
		{"topK=4", func(c *paqoc.Config) { c.TopK = 4 }},
		{"topK=16", func(c *paqoc.Config) { c.TopK = 16 }},
		{"maxN=2", func(c *paqoc.Config) { c.MaxN = 2 }},
		{"no CaseIII pruning", func(c *paqoc.Config) { c.PruneCaseIII = false }},
		{"commute extension", func(c *paqoc.Config) { c.Commute = true }},
		{"probe CaseII", func(c *paqoc.Config) { c.ProbeCaseII = true }},
	}

	var rows []AblationRow
	for _, cc := range configs {
		cfg := base()
		cc.mutate(&cfg)
		comp := p.newCompiler(nil, cfg)
		res, err := comp.CompileCtx(context.Background(), phys)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", cc.name, err)
		}
		rows = append(rows, AblationRow{
			Config:      cc.name,
			Latency:     res.Latency,
			CompileCost: res.CompileCost + res.OfflineCost,
			ESP:         res.ESP,
			Blocks:      res.NumBlocks,
			Iterations:  res.Iterations,
		})
	}
	return rows, nil
}

// PrintAblation renders the knob sweep.
func PrintAblation(w io.Writer, benchName string, rows []AblationRow) {
	fmt.Fprintf(w, "Ablation — %s\n", benchName)
	fmt.Fprintf(w, "%-26s %10s %12s %8s %7s %6s\n", "config", "latency", "compile (s)", "ESP", "blocks", "iters")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %10.0f %12.2f %8.4f %7d %6d\n",
			r.Config, r.Latency, r.CompileCost, r.ESP, r.Blocks, r.Iterations)
	}
}
