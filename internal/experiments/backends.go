package experiments

import (
	"fmt"
	"io"

	"paqoc/internal/bench"
	"paqoc/internal/device"
)

// BackendRow is one (backend, benchmark) cell of the cross-backend
// comparison: the per-method sweep results plus the backend identity.
type BackendRow struct {
	Backend     string
	Fingerprint string
	Qubits      int
	Rows        []BenchRow
}

// BackendBenches is the fast subset used by the `backends` experiment:
// small enough to route onto every built-in profile (the 16-qubit linear
// chain bounds the register) and quick under the analytical model.
var BackendBenches = []string{"rd32_270", "simon", "qaoa"}

// Backends sweeps the given benchmarks across device profiles, showing how
// topology and control bounds move latency and ESP: the same circuit pays
// more SWAPs on a sparse heavy-hex or chain, and a crosstalk-heavy grid
// erodes ESP. Empty arguments select the built-in registry and
// BackendBenches.
func Backends(backendNames, benches []string, workers int) ([]BackendRow, error) {
	if len(backendNames) == 0 {
		backendNames = device.Names()
	}
	if len(benches) == 0 {
		benches = BackendBenches
	}
	var specs []bench.Spec
	for _, b := range benches {
		s, ok := bench.ByName(b)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %s", b)
		}
		specs = append(specs, s)
	}
	var out []BackendRow
	for _, name := range backendNames {
		prof, err := device.Lookup(name)
		if err != nil {
			return nil, err
		}
		p := PlatformFor(prof)
		p.Workers = workers
		rows, err := p.RunAll(specs)
		if err != nil {
			return nil, fmt.Errorf("backend %s: %v", name, err)
		}
		out = append(out, BackendRow{
			Backend:     name,
			Fingerprint: prof.Fingerprint(),
			Qubits:      prof.Topology().NumQubits,
			Rows:        rows,
		})
	}
	return out, nil
}

// PrintBackends renders the cross-backend table: latency and ESP of
// paqoc(M=0) and the accqoc(n=3,d=3) baseline per backend and benchmark.
func PrintBackends(w io.Writer, rows []BackendRow) {
	fmt.Fprintln(w, "Cross-backend comparison (latency dt / ESP)")
	fmt.Fprintf(w, "%-16s %7s %-16s %10s %8s %10s %8s\n",
		"backend", "qubits", "bench", "paqoc lat", "esp", "accqoc lat", "esp")
	for _, br := range rows {
		for _, row := range br.Rows {
			pq := row.find("paqoc_m0")
			ac := row.find("accqoc_n3d3")
			fmt.Fprintf(w, "%-16s %7d %-16s %10.0f %8.4f %10.0f %8.4f\n",
				br.Backend, br.Qubits, row.Bench, pq.Latency, pq.ESP, ac.Latency, ac.ESP)
		}
	}
}
