package experiments

import (
	"math"
	"testing"

	"paqoc/internal/noise"
)

// TestTableIINoisyShape runs the density-matrix T1/T2 Table II and asserts
// the paper's ranking: a paqoc variant is best on every benchmark.
func TestTableIINoisyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("density-matrix sweep skipped in -short mode")
	}
	rows, err := TableIINoisy(DefaultPlatform(), noise.NISQDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(TableIIBenches) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		base := r.Fidelity["accqoc_n3d3"]
		best := ""
		bestF := -1.0
		for m, f := range r.Fidelity {
			if math.IsNaN(f) {
				continue
			}
			if f <= 0 || f > 1 {
				t.Errorf("%s/%s: fidelity %g out of range", r.Bench, m, f)
			}
			if f > bestF {
				best, bestF = m, f
			}
		}
		if best == "" {
			t.Fatalf("%s: no method fit the density-matrix budget", r.Bench)
		}
		if best == "accqoc_n3d3" || best == "accqoc_n3d5" {
			t.Errorf("%s: baseline %s won (%.4f vs paqoc_m0 %.4f); paper has paqoc best everywhere",
				r.Bench, best, bestF, r.Fidelity["paqoc_m0"])
		}
		if !math.IsNaN(base) && r.Fidelity["paqoc_m0"] < base {
			t.Errorf("%s: paqoc_m0 below accqoc_n3d3", r.Bench)
		}
	}
}
