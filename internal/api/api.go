// Package api defines the versioned wire types of the paqoc-server HTTP
// surface: the public v1 compile API (POST /v1/compile, GET /v1/jobs/{id},
// the SSE job stream), the uniform error envelope every handler speaks,
// and the entry encoding of the internal v1 replication RPC. Server
// handlers, the cluster client, CLIs, and tests all share these named
// types — a client no longer reverse-engineers handler-local structs.
//
// Compatibility contract: types here describe wire version 1 (the /v1 and
// /internal/v1 path prefixes). Fields are only added, never renamed or
// repurposed; a breaking change mints /v2 types alongside these.
package api

import (
	"paqoc/internal/obs"
	"paqoc/internal/pulse"
)

// CompileRequest is the POST /v1/compile body. Exactly one circuit source
// (QASM, Circuit, Bench) must be set; the remaining knobs mirror the CLI's
// APA / GRAPE / fidelity / deadline surface.
type CompileRequest struct {
	// QASM is OpenQASM 2.0 source.
	QASM string `json:"qasm,omitempty"`
	// Circuit is the native text circuit format (circuit.Parse).
	Circuit string `json:"circuit,omitempty"`
	// Bench names a built-in Table I benchmark.
	Bench string `json:"bench,omitempty"`

	// Backend names the device profile to compile against (a registered
	// profile or a dynamic name like "xy-grid-3x4"); empty selects the
	// server's default backend. Unknown names are rejected with 400 and
	// error code "unknown_backend".
	Backend string `json:"backend,omitempty"`

	// Tenant identifies the submitting principal for per-tenant quota
	// accounting: when the server configures TenantMaxInflight, a tenant
	// at its in-flight cap is rejected with 429 and error code
	// "tenant_quota" instead of starving the fleet. Empty is a tenant of
	// its own (anonymous traffic shares one bucket).
	Tenant string `json:"tenant,omitempty"`
	// Priority selects the queue lane: "high" jobs are preferred by idle
	// workers over "normal" (the default). Unknown values are rejected
	// with 400.
	Priority string `json:"priority,omitempty"`

	// APA enables the frequent-subcircuit miner (paqoc(M=inf)); off
	// compiles with customized gates only (paqoc(M=0)).
	APA bool `json:"apa,omitempty"`
	// Grape emits final pulses with the real optimizer against the
	// server's shared warm pulse database; off uses the calibrated
	// analytical model.
	Grape bool `json:"grape,omitempty"`
	// Fidelity is the per-gate target (default 0.999).
	Fidelity float64 `json:"fidelity,omitempty"`
	// TimeoutMs bounds the job's run time; 0 selects the server default.
	// The deadline is threaded as a context deadline into the GRAPE and
	// simulator hot loops, so an expired job releases its worker promptly.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Mode forces "sync" or "async"; "" / "auto" picks sync for circuits at
	// or under the server's sync gate limit.
	Mode string `json:"mode,omitempty"`
	// MaxN caps customized-gate width (default 3).
	MaxN int `json:"max_n,omitempty"`
	// MinSupport overrides the APA miner's recurrence threshold for this
	// request (default 2). Negative values are rejected with 400 and error
	// code "invalid_argument".
	MinSupport int `json:"min_support,omitempty"`
	// Workers is the intra-job pulse-generation pool width (default 1:
	// cross-request parallelism comes from the server's own worker pool).
	Workers int `json:"workers,omitempty"`
	// IncludeSchedules attaches per-gate pulse schedules (ScheduleJSON) to
	// the result. Off by default: schedules dominate response size.
	IncludeSchedules bool `json:"include_schedules,omitempty"`
}

// JobState is the lifecycle of a compilation job. Transitions are strictly
// queued → running → {done, failed}; a failed job records whether the
// failure was its deadline expiring (timeout) or the server draining
// (canceled) so clients can map it onto 504/503 semantics.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// JobStatus is the wire representation of a job, served by
// GET /v1/jobs/{id} and embedded in synchronous compile responses.
type JobStatus struct {
	JobID    string   `json:"job_id"`
	State    JobState `json:"status"`
	Backend  string   `json:"backend,omitempty"`
	Tenant   string   `json:"tenant,omitempty"`
	Priority string   `json:"priority,omitempty"`
	Error    string   `json:"error,omitempty"`
	TimedOut bool     `json:"timed_out,omitempty"`
	Canceled bool     `json:"canceled,omitempty"`
	QueuedMs float64  `json:"queued_ms"`
	RunMs    float64  `json:"run_ms,omitempty"`
	Result   *Result  `json:"result,omitempty"`
}

// CompileResponse is the POST /v1/compile body on success: the job status
// (terminal for sync requests, queued for async ones) plus, for async
// submissions, the URL to poll.
type CompileResponse struct {
	JobStatus
	Poll string `json:"poll,omitempty"`
}

// Result is a finished compilation: the latency/fidelity summary, the
// per-customized-gate breakdown (with schedule payloads on request), and
// the job's request-scoped per-stage timing.
type Result struct {
	Qubits           int     `json:"qubits"`
	LogicalGates     int     `json:"logical_gates"`
	PhysicalGates    int     `json:"physical_gates"`
	Swaps            int     `json:"swaps"`
	Blocks           int     `json:"blocks"`
	APAPatterns      int     `json:"apa_patterns,omitempty"`
	LatencyDt        float64 `json:"latency_dt"`
	InitialLatencyDt float64 `json:"initial_latency_dt"`
	ReductionPct     float64 `json:"reduction_pct"`
	ESP              float64 `json:"esp"`
	CompileCostSec   float64 `json:"compile_cost_sec"`
	OfflineCostSec   float64 `json:"offline_cost_sec,omitempty"`
	WallMs           float64 `json:"wall_ms"`
	// DBEntries is the shared pulse database size after this job — the
	// warmth the next request inherits.
	DBEntries int `json:"db_entries"`

	Gates  []GateResult `json:"gates,omitempty"`
	Stages []Stage      `json:"stages,omitempty"`
}

// GateResult is one customized gate of the output.
type GateResult struct {
	Gate      string          `json:"gate"`
	Qubits    []int           `json:"qubits"`
	APA       bool            `json:"apa,omitempty"`
	LatencyDt float64         `json:"latency_dt"`
	Fidelity  float64         `json:"fidelity"`
	CacheHit  bool            `json:"cache_hit,omitempty"`
	Schedule  *pulse.Schedule `json:"schedule,omitempty"`
}

// Stage is one aggregated span path from the job's request-scoped tracer.
type Stage struct {
	Stage string  `json:"stage"`
	Count int     `json:"count"`
	Ms    float64 `json:"ms"`
}

// MiningStatus is the GET /v1/mining/status body: the offline APA miner's
// configuration and live cross-request statistics. When the miner is
// disabled the endpoint returns 404 with the standard error envelope
// instead of this type.
type MiningStatus struct {
	Enabled    bool  `json:"enabled"`
	IntervalMs int64 `json:"interval_ms,omitempty"`
	MinSupport int   `json:"min_support,omitempty"`
	CorpusMax  int   `json:"corpus_max,omitempty"`
	Budget     int   `json:"budget,omitempty"`

	// Aggregates across every backend the miner tracks.
	CorpusCircuits  int   `json:"corpus_circuits"`
	PatternsTracked int   `json:"patterns_tracked"`
	Pregenerated    int64 `json:"pregenerated"`
	PregenHits      int64 `json:"pregen_hits"`
	IdleRuns        int64 `json:"idle_runs"`
	Yields          int64 `json:"yields"`

	Backends []MiningBackendStatus `json:"backends,omitempty"`
}

// MiningBackendStatus is one backend fingerprint's slice of the miner.
type MiningBackendStatus struct {
	Backend         string          `json:"backend"`
	Fingerprint     string          `json:"fingerprint"`
	CorpusCircuits  int             `json:"corpus_circuits"`
	PatternsTracked int             `json:"patterns_tracked"`
	Pregenerated    int             `json:"pregenerated"`
	TopPatterns     []MiningPattern `json:"top_patterns,omitempty"`
}

// MiningPattern is one cross-request frequent subcircuit as reported by
// the mining status resource, ranked by Coverage.
type MiningPattern struct {
	Signature    string `json:"signature"`
	GateCount    int    `json:"gate_count"`
	QubitCount   int    `json:"qubit_count"`
	Support      int    `json:"support"`
	Circuits     int    `json:"circuits"`
	Coverage     int    `json:"coverage"`
	Pregenerated bool   `json:"pregenerated,omitempty"`
}

// Event is the payload of one Server-Sent Event on the live job stream
// (GET /v1/jobs/{id}/events): a pipeline stage transition, a sampled GRAPE
// convergence point, or a job state change, discriminated by Type
// ("stage" | "convergence" | "state"). Each SSE frame carries Seq as its
// id and Type as its event name; the stream ends with an "event: done"
// sentinel after the terminal state event.
type Event = obs.Event

// PulseEntry is the entry encoding of the internal replication RPC
// (GET/PUT /internal/v1/pulse/{fingerprint}/{key}) and of snapshot
// shipping (PUT /internal/v1/snapshot/{fingerprint}) — one pulse-database
// entry as it crosses a process boundary, identical to the on-disk
// snapshot entry format.
type PulseEntry = pulse.WireEntry

// MergeReport is the PUT /internal/v1/snapshot/{fingerprint} response
// body: how the shipped snapshot merged against the receiver's store under
// the keep-higher-fidelity conflict rule.
type MergeReport = pulse.MergeReport
