package api

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// TestWriteErrorEnvelope pins the wire shape of the error envelope: the
// exact {"error":{"code","message"}} nesting, the status code, and the
// content type.
func TestWriteErrorEnvelope(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, 429, CodeQueueFull, "job queue is full")
	if rec.Code != 429 {
		t.Errorf("status = %d, want 429", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q, want application/json", ct)
	}
	var env ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("body %q: %v", rec.Body.String(), err)
	}
	if env.Error.Code != CodeQueueFull || env.Error.Message != "job queue is full" {
		t.Errorf("envelope = %+v", env)
	}
}

// TestJobStatusWireNames pins the JSON field names clients depend on —
// renaming one is a wire break that must be deliberate.
func TestJobStatusWireNames(t *testing.T) {
	raw, err := json.Marshal(CompileResponse{
		JobStatus: JobStatus{JobID: "job-1", State: StateQueued, Backend: "b"},
		Poll:      "/v1/jobs/job-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"job_id", "status", "backend", "poll"} {
		if _, ok := m[key]; !ok {
			t.Errorf("wire field %q missing from %s", key, raw)
		}
	}
	if m["status"] != "queued" {
		t.Errorf("status = %v, want \"queued\"", m["status"])
	}
}
