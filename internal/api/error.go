package api

import (
	"encoding/json"
	"net/http"
)

// Error codes. Machine-readable, stable across releases: clients branch on
// Code, never on Message text. Each code documents the HTTP status it
// rides on.
const (
	// CodeBadRequest (400): malformed JSON, no circuit source, conflicting
	// sources, or an out-of-range knob.
	CodeBadRequest = "bad_request"
	// CodeUnknownBackend (400): the requested backend names no registered
	// or dynamic device profile.
	CodeUnknownBackend = "unknown_backend"
	// CodeInvalidArgument (400): a request knob has an invalid value (for
	// example a negative mining min_support) — distinct from CodeBadRequest
	// so clients can tell a bad knob from a malformed body.
	CodeInvalidArgument = "invalid_argument"
	// CodeJobNotFound (404): no live or retained job has that id.
	CodeJobNotFound = "job_not_found"
	// CodeNotFound (404): the path names no resource on this API.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed (405): wrong HTTP method for the path.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeQueueFull (429): the job queue is at capacity; retry after the
	// Retry-After header.
	CodeQueueFull = "queue_full"
	// CodeTenantQuota (429): the request's tenant is at its in-flight job
	// cap; retry after the Retry-After header.
	CodeTenantQuota = "tenant_quota"
	// CodeDraining (503): the server is shutting down and accepts no new
	// work.
	CodeDraining = "draining"
	// CodeStreamUnsupported (500): the connection cannot stream SSE
	// (no http.Flusher).
	CodeStreamUnsupported = "stream_unsupported"
	// CodeUnknownKey (404, internal RPC): the replication peer has no entry
	// for the requested pulse key.
	CodeUnknownKey = "unknown_key"
	// CodeBadEntry (400, internal RPC): a published pulse entry failed
	// decode-side validation (shape, finiteness, unitarity).
	CodeBadEntry = "bad_entry"
	// CodeWrongFingerprint (409, internal RPC): the entry or snapshot is
	// namespaced to a different backend fingerprint than the receiver
	// serves.
	CodeWrongFingerprint = "wrong_fingerprint"
	// CodeInternal (500): unexpected server-side failure.
	CodeInternal = "internal"
)

// Error is the machine-readable error detail inside ErrorResponse.
type Error struct {
	// Code is one of the Code… constants.
	Code string `json:"code"`
	// Message is a human-readable explanation. Free text; not for
	// programmatic matching.
	Message string `json:"message"`
}

// ErrorResponse is the uniform envelope of every non-2xx response on the
// public and internal APIs: {"error":{"code":"…","message":"…"}}. The one
// exception is a synchronous compile whose job reached a terminal failure
// (504 deadline, 422 compile error): those bodies are the job's JobStatus —
// a resource representation that carries the failure detail — not this
// envelope.
type ErrorResponse struct {
	Error Error `json:"error"`
}

// WriteError writes the envelope with the given status. Headers that must
// accompany the status (Retry-After on 429/503, Allow on 405) are the
// caller's to set beforehand.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: Error{Code: code, Message: message}})
}
