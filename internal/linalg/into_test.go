package linalg

import (
	"math/rand"
	"testing"
)

// TestIntoKernelsMatchValueAPI pins the wrapper contract: every value-
// returning method and its Into kernel produce bit-identical results.
func TestIntoKernelsMatchValueAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 4, 8} {
		a := randomMatrix(n, n, rng.Int63())
		b := randomMatrix(n, n, rng.Int63())
		v := make([]complex128, n)
		for i := range v {
			v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}

		check := func(name string, want, got *Matrix) {
			t.Helper()
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("n=%d %s: element %d differs: %v vs %v", n, name, i, want.Data[i], got.Data[i])
				}
			}
		}

		dst := New(n, n)
		MulInto(dst, a, b)
		check("Mul", a.Mul(b), dst)
		DaggerInto(dst, a)
		check("Dagger", a.Dagger(), dst)
		AddInto(dst, a, b)
		check("Add", a.Add(b), dst)
		SubInto(dst, a, b)
		check("Sub", a.Sub(b), dst)
		ScaleInto(dst, a, 2-3i)
		check("Scale", a.Scale(2-3i), dst)
		AddScaledInto(dst, a, b, 2-3i)
		check("AddScaled", a.Add(b.Scale(2-3i)), dst)
		IdentityInto(dst)
		check("Identity", Identity(n), dst)

		ws := NewWorkspace(n)
		ExpmInto(dst, a.Scale(0.05), ws)
		check("Expm", Expm(a.Scale(0.05)), dst)
		h := a.Add(a.Dagger()).Scale(0.5) // Hermitian
		ExpmHermitianInto(dst, h, 0.3, ws)
		check("ExpmHermitian", ExpmHermitian(h, 0.3), dst)

		vdst := make([]complex128, n)
		MulVecInto(vdst, a, v)
		want := a.MulVec(v)
		for i := range want {
			if want[i] != vdst[i] {
				t.Fatalf("n=%d MulVec: element %d differs", n, i)
			}
		}
	}
}

// TestAliasingAllowed exercises the documented aliasing guarantee of the
// element-wise kernels: dst may be a source operand.
func TestAliasingAllowed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(4, 4, rng.Int63())
	b := randomMatrix(4, 4, rng.Int63())

	want := a.Add(b)
	got := a.Clone()
	AddInto(got, got, b)
	if !want.Equal(got, 0) {
		t.Error("AddInto with dst aliasing a diverged")
	}

	want = a.Scale(1 + 2i)
	got = a.Clone()
	ScaleInto(got, got, 1+2i)
	if !want.Equal(got, 0) {
		t.Error("ScaleInto with dst aliasing m diverged")
	}

	want = a.Add(b.Scale(-0.5))
	got = a.Clone()
	AddScaledInto(got, got, b, -0.5)
	if !want.Equal(got, 0) {
		t.Error("AddScaledInto with dst aliasing a diverged")
	}
}

// TestIntoKernelShapePanics checks the strict-shape contract: kernels
// panic on a mis-sized destination instead of resizing it.
func TestIntoKernelShapePanics(t *testing.T) {
	a := New(2, 2)
	bad := New(3, 3)
	for name, fn := range map[string]func(){
		"MulInto":    func() { MulInto(bad, a, a) },
		"DaggerInto": func() { DaggerInto(bad, a) },
		"AddInto":    func() { AddInto(bad, a, a) },
		"ScaleInto":  func() { ScaleInto(bad, a, 1) },
		"MulVecInto": func() { MulVecInto(make([]complex128, 3), a, make([]complex128, 2)) },
		"ExpmInto":   func() { ExpmInto(bad, a, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on bad destination shape", name)
				}
			}()
			fn()
		}()
	}
}

// TestIntoKernelsZeroAlloc is the allocation-regression gate for the
// destination-passing API: with warm destinations and workspace, the hot
// kernels must not allocate at all.
func TestIntoKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 8
	a := randomMatrix(n, n, rng.Int63())
	b := randomMatrix(n, n, rng.Int63())
	h := a.Add(a.Dagger()).Scale(0.5)
	v := make([]complex128, n)
	dst := New(n, n)
	vdst := make([]complex128, n)
	ws := NewWorkspace(n)

	for name, fn := range map[string]func(){
		"MulInto":           func() { MulInto(dst, a, b) },
		"MulVecInto":        func() { MulVecInto(vdst, a, v) },
		"DaggerInto":        func() { DaggerInto(dst, a) },
		"AddInto":           func() { AddInto(dst, a, b) },
		"SubInto":           func() { SubInto(dst, a, b) },
		"ScaleInto":         func() { ScaleInto(dst, a, 0.5) },
		"AddScaledInto":     func() { AddScaledInto(dst, a, b, 0.5) },
		"IdentityInto":      func() { IdentityInto(dst) },
		"ExpmHermitianInto": func() { ExpmHermitianInto(dst, h, 0.3, ws) },
	} {
		if allocs := testing.AllocsPerRun(20, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op with warm buffers, want 0", name, allocs)
		}
	}
}

// TestWorkspaceServesSmallerDims checks the sized() reslicing path: a
// workspace grown for 8×8 must serve 4×4 exponentials correctly.
func TestWorkspaceServesSmallerDims(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ws := NewWorkspace(8)
	for _, n := range []int{8, 4, 2, 8} {
		a := randomMatrix(n, n, rng.Int63())
		h := a.Add(a.Dagger()).Scale(0.5)
		dst := New(n, n)
		ExpmHermitianInto(dst, h, 0.2, ws)
		want := ExpmHermitian(h, 0.2)
		if !want.Equal(dst, 0) {
			t.Fatalf("n=%d: workspace reuse across dims diverged", n)
		}
	}
}

func BenchmarkMulValue(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomMatrix(8, 8, rng.Int63())
	y := randomMatrix(8, 8, rng.Int63())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}

func BenchmarkMulInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomMatrix(8, 8, rng.Int63())
	y := randomMatrix(8, 8, rng.Int63())
	dst := New(8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}

func BenchmarkExpmHermitianValue(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := randomMatrix(8, 8, rng.Int63())
	h := x.Add(x.Dagger()).Scale(0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ExpmHermitian(h, 0.3)
	}
}

func BenchmarkExpmHermitianInto(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := randomMatrix(8, 8, rng.Int63())
	h := x.Add(x.Dagger()).Scale(0.5)
	dst := New(8, 8)
	ws := NewWorkspace(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExpmHermitianInto(dst, h, 0.3, ws)
	}
}
