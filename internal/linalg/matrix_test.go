package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := complex128(0)
			if r == c {
				want = 1
			}
			if id.At(r, c) != want {
				t.Fatalf("Identity(4)[%d][%d] = %v, want %v", r, c, id.At(r, c), want)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	m := randomMatrix(5, 5, 1)
	if got := m.Mul(Identity(5)); !got.Equal(m, 1e-12) {
		t.Error("m·I != m")
	}
	if got := Identity(5).Mul(m); !got.Equal(m, 1e-12) {
		t.Error("I·m != m")
	}
}

func TestMulAssociativity(t *testing.T) {
	a := randomMatrix(3, 4, 2)
	b := randomMatrix(4, 5, 3)
	c := randomMatrix(5, 2, 4)
	left := a.Mul(b).Mul(c)
	right := a.Mul(b.Mul(c))
	if !left.Equal(right, 1e-10) {
		t.Error("(ab)c != a(bc)")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := FromRows([][]complex128{{19, 22}, {43, 50}})
	if !got.Equal(want, 0) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	got := a.MulVec([]complex128{1, 1i})
	if cmplx.Abs(got[0]-(1+2i)) > 1e-15 || cmplx.Abs(got[1]-(3+4i)) > 1e-15 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestDaggerInvolution(t *testing.T) {
	m := randomMatrix(4, 6, 5)
	if !m.Dagger().Dagger().Equal(m, 0) {
		t.Error("(m†)† != m")
	}
}

func TestDaggerOfProduct(t *testing.T) {
	a := randomMatrix(3, 3, 6)
	b := randomMatrix(3, 3, 7)
	left := a.Mul(b).Dagger()
	right := b.Dagger().Mul(a.Dagger())
	if !left.Equal(right, 1e-10) {
		t.Error("(ab)† != b†a†")
	}
}

func TestKronShapeAndValues(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}})
	b := FromRows([][]complex128{{3}, {4}})
	k := a.Kron(b)
	if k.Rows != 2 || k.Cols != 2 {
		t.Fatalf("Kron shape %dx%d", k.Rows, k.Cols)
	}
	want := FromRows([][]complex128{{3, 6}, {4, 8}})
	if !k.Equal(want, 0) {
		t.Errorf("Kron values wrong: %v", k)
	}
}

func TestKronMixedProduct(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD)
	a := randomMatrix(2, 2, 8)
	b := randomMatrix(3, 3, 9)
	c := randomMatrix(2, 2, 10)
	d := randomMatrix(3, 3, 11)
	left := a.Kron(b).Mul(c.Kron(d))
	right := a.Mul(c).Kron(b.Mul(d))
	if !left.Equal(right, 1e-9) {
		t.Error("mixed-product property fails")
	}
}

func TestTrace(t *testing.T) {
	m := FromRows([][]complex128{{1 + 1i, 9}, {9, 2 - 1i}})
	if got := m.Trace(); got != 3 {
		t.Errorf("Trace = %v, want 3", got)
	}
}

func TestTraceCyclic(t *testing.T) {
	a := randomMatrix(4, 4, 12)
	b := randomMatrix(4, 4, 13)
	if d := cmplx.Abs(a.Mul(b).Trace() - b.Mul(a).Trace()); d > 1e-10 {
		t.Errorf("tr(ab) != tr(ba), delta %g", d)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromRows([][]complex128{{3, 0}, {0, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("‖m‖_F = %g, want 5", got)
	}
}

func TestOneNorm(t *testing.T) {
	m := FromRows([][]complex128{{1, -2}, {3, 4i}})
	if got := m.OneNorm(); math.Abs(got-6) > 1e-12 {
		t.Errorf("OneNorm = %g, want 6", got)
	}
}

func TestIsHermitianAndUnitary(t *testing.T) {
	h := FromRows([][]complex128{{2, 1 - 1i}, {1 + 1i, 3}})
	if !h.IsHermitian(1e-12) {
		t.Error("h should be Hermitian")
	}
	if h.IsUnitary(1e-12) {
		t.Error("h should not be unitary")
	}
	s := complex(1/math.Sqrt2, 0)
	u := FromRows([][]complex128{{s, s}, {s, -s}})
	if !u.IsUnitary(1e-12) {
		t.Error("Hadamard should be unitary")
	}
}

func TestExpmZero(t *testing.T) {
	z := New(4, 4)
	if !Expm(z).Equal(Identity(4), 1e-14) {
		t.Error("expm(0) != I")
	}
}

func TestExpmDiagonal(t *testing.T) {
	// expm(diag(a,b)) = diag(e^a, e^b)
	m := FromRows([][]complex128{{1i * math.Pi, 0}, {0, 2}})
	e := Expm(m)
	if cmplx.Abs(e.At(0, 0)-cmplx.Exp(1i*math.Pi)) > 1e-12 {
		t.Errorf("e[0][0] = %v", e.At(0, 0))
	}
	if cmplx.Abs(e.At(1, 1)-cmplx.Exp(2)) > 1e-10 {
		t.Errorf("e[1][1] = %v", e.At(1, 1))
	}
}

func TestExpmPauliX(t *testing.T) {
	// e^{-i θ X/2} = cos(θ/2) I - i sin(θ/2) X
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	theta := 1.234
	got := ExpmHermitian(x.Scale(0.5), theta)
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	want := FromRows([][]complex128{
		{complex(c, 0), complex(0, -s)},
		{complex(0, -s), complex(c, 0)},
	})
	if !got.Equal(want, 1e-12) {
		t.Errorf("rotation mismatch:\n%v\nwant\n%v", got, want)
	}
}

func TestExpmHermitianIsUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		h := randomHermitian(8, rng)
		u := ExpmHermitian(h, rng.Float64()*10)
		if !u.IsUnitary(1e-9) {
			t.Fatalf("trial %d: expm(-iHt) not unitary", trial)
		}
	}
}

func TestExpmAdditivityCommuting(t *testing.T) {
	// For commuting A (same H, different times): e^{-iH(s+t)} = e^{-iHs}·e^{-iHt}
	rng := rand.New(rand.NewSource(7))
	h := randomHermitian(6, rng)
	a := ExpmHermitian(h, 0.7)
	b := ExpmHermitian(h, 1.9)
	ab := ExpmHermitian(h, 2.6)
	if !a.Mul(b).Equal(ab, 1e-9) {
		t.Error("propagator additivity fails")
	}
}

func TestTraceFidelitySelf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := ExpmHermitian(randomHermitian(4, rng), 1.0)
	if f := TraceFidelity(u, u); math.Abs(f-1) > 1e-10 {
		t.Errorf("self fidelity %g", f)
	}
	// Global phase invariance.
	v := u.Scale(cmplx.Exp(0.321i))
	if f := TraceFidelity(u, v); math.Abs(f-1) > 1e-10 {
		t.Errorf("phase-shifted fidelity %g", f)
	}
}

func TestGlobalPhaseDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := ExpmHermitian(randomHermitian(4, rng), 1.0)
	v := u.Scale(cmplx.Exp(1.0i))
	if d := GlobalPhaseDistance(u, v); d > 1e-9 {
		t.Errorf("distance to phase-shifted self = %g", d)
	}
	w := ExpmHermitian(randomHermitian(4, rng), 2.0)
	if d := GlobalPhaseDistance(u, w); d < 1e-3 {
		t.Errorf("distance between unrelated unitaries suspiciously small: %g", d)
	}
}

func TestQuickKronDimensions(t *testing.T) {
	f := func(a, b uint8) bool {
		ra, rb := int(a%4)+1, int(b%4)+1
		m := Identity(ra).Kron(Identity(rb))
		return m.Rows == ra*rb && m.Equal(Identity(ra*rb), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickExpmUnitary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHermitian(4, rng)
		return ExpmHermitian(h, rng.Float64()*5).IsUnitary(1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on Mul shape mismatch")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func randomMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func randomHermitian(n int, rng *rand.Rand) *Matrix {
	m := New(n, n)
	for r := 0; r < n; r++ {
		m.Data[r*n+r] = complex(rng.NormFloat64(), 0)
		for c := r + 1; c < n; c++ {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			m.Data[r*n+c] = v
			m.Data[c*n+r] = cmplx.Conj(v)
		}
	}
	return m
}

func BenchmarkMul8x8(b *testing.B) {
	m := randomMatrix(8, 8, 1)
	o := randomMatrix(8, 8, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Mul(o)
	}
}

func BenchmarkExpm8x8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := randomHermitian(8, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExpmHermitian(h, 0.1)
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]complex128{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Errorf("Transpose wrong: %v", tr)
	}
	// Transpose does not conjugate.
	c := FromRows([][]complex128{{1i}})
	if c.Transpose().At(0, 0) != 1i {
		t.Error("Transpose must not conjugate")
	}
}

func TestMaxAbsAndSub(t *testing.T) {
	a := FromRows([][]complex128{{3, -4i}})
	if a.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %g", a.MaxAbs())
	}
	b := FromRows([][]complex128{{1, -4i}})
	d := a.Sub(b)
	if d.At(0, 0) != 2 || d.At(0, 1) != 0 {
		t.Errorf("Sub wrong: %v", d)
	}
}

func TestAddInPlace(t *testing.T) {
	a := FromRows([][]complex128{{1, 0}, {0, 1}})
	b := FromRows([][]complex128{{0, 1}, {1, 0}})
	a.AddInPlace(b, 2)
	want := FromRows([][]complex128{{1, 2}, {2, 1}})
	if !a.Equal(want, 0) {
		t.Errorf("AddInPlace wrong: %v", a)
	}
}

func TestStringRendering(t *testing.T) {
	m := FromRows([][]complex128{{1 + 2i}})
	s := m.String()
	if !strings.Contains(s, "1") || !strings.Contains(s, "2") {
		t.Errorf("String output %q", s)
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if New(2, 2).Equal(New(2, 3), 1) {
		t.Error("different shapes must not be equal")
	}
}

func TestIsUnitaryNonSquare(t *testing.T) {
	if New(2, 3).IsUnitary(1e-9) {
		t.Error("non-square cannot be unitary")
	}
	if New(2, 3).IsHermitian(1e-9) {
		t.Error("non-square cannot be Hermitian")
	}
}

func TestTracePanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(2, 3).Trace()
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 1) },
		func() { FromRows(nil) },
		func() { FromRows([][]complex128{{1}, {1, 2}}) },
		func() { Expm(New(2, 3)) },
		func() { New(2, 2).MulVec([]complex128{1}) },
		func() { TraceFidelity(New(2, 2), New(3, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
