package linalg

import (
	"math"
	"math/cmplx"
)

// Expm returns the matrix exponential e^m computed by scaling-and-squaring
// with a Taylor series on the scaled matrix. For the anti-Hermitian
// arguments that arise from -i·H·t propagators this is accurate to near
// machine precision at the dimensions used here (≤16).
func Expm(m *Matrix) *Matrix {
	if !m.IsSquare() {
		panic("linalg: Expm of non-square matrix")
	}
	n := m.Rows

	// Scale so the one-norm of the argument is ≤ 0.5, then square back.
	norm := m.OneNorm()
	squarings := 0
	if norm > 0.5 {
		squarings = int(math.Ceil(math.Log2(norm / 0.5)))
	}
	scaled := m.Scale(complex(math.Ldexp(1, -squarings), 0))

	// Taylor series: I + A + A²/2! + …; with ‖A‖ ≤ 0.5 convergence is fast.
	sum := Identity(n)
	term := Identity(n)
	for k := 1; k <= 24; k++ {
		term = term.Mul(scaled).Scale(complex(1/float64(k), 0))
		sum.AddInPlace(term, 1)
		if term.MaxAbs() < 1e-18 {
			break
		}
	}
	for s := 0; s < squarings; s++ {
		sum = sum.Mul(sum)
	}
	return sum
}

// ExpmHermitian returns e^(-i·H·t) for Hermitian H: the unitary propagator
// for evolution time t. It is a convenience wrapper around Expm.
func ExpmHermitian(h *Matrix, t float64) *Matrix {
	return Expm(h.Scale(complex(0, -t)))
}

// TraceFidelity returns |tr(A†·B)|² / d², the standard gate fidelity between
// two unitaries of dimension d (1 when A = B up to global phase).
func TraceFidelity(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols || !a.IsSquare() {
		panic("linalg: TraceFidelity shape mismatch")
	}
	tr := a.Dagger().Mul(b).Trace()
	d := float64(a.Rows)
	return (real(tr)*real(tr) + imag(tr)*imag(tr)) / (d * d)
}

// TraceOverlap returns tr(A†·B); the complex overlap used by GRAPE
// gradients.
func TraceOverlap(a, b *Matrix) complex128 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: TraceOverlap shape mismatch")
	}
	// tr(A†B) = Σ_ij conj(A_ij)·B_ij without forming the product.
	var t complex128
	for i := range a.Data {
		t += cmplx.Conj(a.Data[i]) * b.Data[i]
	}
	return t
}

// GlobalPhaseDistance returns min_φ ‖A - e^{iφ}B‖_F, the Frobenius distance
// between unitaries modulo global phase. The optimal phase aligns
// tr(B†·A) with the positive real axis.
func GlobalPhaseDistance(a, b *Matrix) float64 {
	tr := TraceOverlap(b, a)
	phase := complex(1, 0)
	if cmplx.Abs(tr) > 1e-15 {
		phase = tr / complex(cmplx.Abs(tr), 0)
	}
	return a.Sub(b.Scale(phase)).FrobeniusNorm()
}
