package linalg

import (
	"math"
	"math/cmplx"
)

// Workspace holds the scratch buffers of the matrix-exponential kernels
// (and one extra caller scratch) for one matrix dimension, so repeated
// exponentials — GRAPE slice propagators, pulse-simulation evolution —
// run without allocating. A Workspace is owned by a single goroutine;
// the zero value is not usable, construct with NewWorkspace. Kernels
// grow the buffers automatically when handed a larger dimension.
type Workspace struct {
	n                      int
	arg, scaled, term, tmp *Matrix
	scratch                *Matrix
}

// NewWorkspace returns a workspace sized for n×n exponentials.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.ensure(n)
	return w
}

// ensure (re)sizes the exponential buffers for dimension n.
func (w *Workspace) ensure(n int) {
	if w.n >= n {
		return
	}
	w.n = n
	w.arg = New(n, n)
	w.scaled = New(n, n)
	w.term = New(n, n)
	w.tmp = New(n, n)
}

// sized returns an n×n view of an n'×n' buffer (n' ≥ n), so one
// workspace serves every dimension up to its high-water mark.
func sized(m *Matrix, n int) *Matrix {
	if m.Rows == n {
		return m
	}
	return &Matrix{Rows: n, Cols: n, Data: m.Data[:n*n]}
}

// Scratch returns the workspace's caller scratch buffer, an n×n matrix
// untouched by the Expm kernels (they use their own internal buffers).
// Every call returns the same storage, so a caller must not hold two
// live Scratch results; contents are unspecified on entry.
func (w *Workspace) Scratch(n int) *Matrix {
	if w.scratch == nil || w.scratch.Rows < n {
		w.scratch = New(n, n)
	}
	return sized(w.scratch, n)
}

// Expm returns the matrix exponential e^m computed by scaling-and-squaring
// with a Taylor series on the scaled matrix. For the anti-Hermitian
// arguments that arise from -i·H·t propagators this is accurate to near
// machine precision at the dimensions used here (≤16). Allocates a fresh
// result and workspace; see ExpmInto for the destination-passing form.
func Expm(m *Matrix) *Matrix {
	if !m.IsSquare() {
		panic("linalg: Expm of non-square matrix")
	}
	out := New(m.Rows, m.Cols)
	ExpmInto(out, m, nil)
	return out
}

// ExpmInto computes e^m into dst, reusing ws's scaling-and-squaring
// buffers (a nil ws allocates a temporary one). dst must be m-shaped and
// must not alias m or any workspace buffer; m must not be a workspace
// buffer other than the one handed out by ExpmHermitianInto. The result
// is bit-identical to Expm — same operation order, only storage reuse.
func ExpmInto(dst, m *Matrix, ws *Workspace) {
	if !m.IsSquare() {
		panic("linalg: Expm of non-square matrix")
	}
	n := m.Rows
	mustSameShape(dst, m)
	if ws == nil {
		ws = NewWorkspace(n)
	}
	ws.ensure(n)
	scaled, term, tmp := sized(ws.scaled, n), sized(ws.term, n), sized(ws.tmp, n)

	// Scale so the one-norm of the argument is ≤ 0.5, then square back.
	norm := m.OneNorm()
	squarings := 0
	if norm > 0.5 {
		squarings = int(math.Ceil(math.Log2(norm / 0.5)))
	}
	ScaleInto(scaled, m, complex(math.Ldexp(1, -squarings), 0))

	// Taylor series: I + A + A²/2! + …; with ‖A‖ ≤ 0.5 convergence is fast.
	IdentityInto(dst)
	IdentityInto(term)
	for k := 1; k <= 24; k++ {
		MulInto(tmp, term, scaled)
		ScaleInto(term, tmp, complex(1/float64(k), 0))
		dst.AddInPlace(term, 1)
		if term.MaxAbs() < 1e-18 {
			break
		}
	}
	for s := 0; s < squarings; s++ {
		MulInto(tmp, dst, dst)
		copy(dst.Data, tmp.Data)
	}
}

// ExpmHermitian returns e^(-i·H·t) for Hermitian H: the unitary propagator
// for evolution time t. Allocates; see ExpmHermitianInto.
func ExpmHermitian(h *Matrix, t float64) *Matrix {
	out := New(h.Rows, h.Cols)
	ExpmHermitianInto(out, h, t, nil)
	return out
}

// ExpmHermitianInto computes e^(-i·H·t) into dst without allocating (ws
// supplies the argument and series buffers; nil allocates a temporary
// workspace). dst must not alias h; h may be ws.Scratch — the kernel
// reads it only while forming its internal -i·t·H argument.
func ExpmHermitianInto(dst, h *Matrix, t float64, ws *Workspace) {
	if ws == nil {
		ws = NewWorkspace(h.Rows)
	}
	ws.ensure(h.Rows)
	arg := sized(ws.arg, h.Rows)
	ScaleInto(arg, h, complex(0, -t))
	ExpmInto(dst, arg, ws)
}

// TraceFidelity returns |tr(A†·B)|² / d², the standard gate fidelity between
// two unitaries of dimension d (1 when A = B up to global phase).
func TraceFidelity(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols || !a.IsSquare() {
		panic("linalg: TraceFidelity shape mismatch")
	}
	tr := a.Dagger().Mul(b).Trace()
	d := float64(a.Rows)
	return (real(tr)*real(tr) + imag(tr)*imag(tr)) / (d * d)
}

// TraceOverlap returns tr(A†·B); the complex overlap used by GRAPE
// gradients.
func TraceOverlap(a, b *Matrix) complex128 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: TraceOverlap shape mismatch")
	}
	// tr(A†B) = Σ_ij conj(A_ij)·B_ij without forming the product.
	var t complex128
	for i := range a.Data {
		t += cmplx.Conj(a.Data[i]) * b.Data[i]
	}
	return t
}

// GlobalPhaseDistance returns min_φ ‖A - e^{iφ}B‖_F, the Frobenius distance
// between unitaries modulo global phase. The optimal phase aligns
// tr(B†·A) with the positive real axis.
func GlobalPhaseDistance(a, b *Matrix) float64 {
	tr := TraceOverlap(b, a)
	phase := complex(1, 0)
	if cmplx.Abs(tr) > 1e-15 {
		phase = tr / complex(cmplx.Abs(tr), 0)
	}
	return a.Sub(b.Scale(phase)).FrobeniusNorm()
}
