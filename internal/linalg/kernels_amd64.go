//go:build amd64

package linalg

// AVX2 matmul kernels for the square dimensions the compiler actually
// produces (4/8/16: 2/3/4-qubit unitary spaces). The assembly vectorizes
// across *columns* only: every dst element still accumulates av*bv in
// ascending k with a single accumulator, rows with av == 0 are skipped,
// and the complex product is the naive (ar·br−ai·bi, ar·bi+ai·br)
// formula via VMULPD+VADDSUBPD with no FMA contraction — so every
// intermediate rounding matches the scalar kernel and results are
// bit-identical to MulIntoGeneric. TestMulKernelsBitIdentical pins this.

var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// The OS must have enabled XMM and YMM state saving in XCR0.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

//go:noescape
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv() (eax, edx uint32)

//go:noescape
func mulInto4AVX2(dst, a, b *complex128)

//go:noescape
func mulInto8AVX2(dst, a, b *complex128)

//go:noescape
func mulInto16AVX2(dst, a, b *complex128)

// mulIntoFast dispatches to a specialized kernel when the shapes allow,
// reporting whether it handled the product. Shape checks already ran.
func mulIntoFast(dst, a, b *Matrix) bool {
	if !hasAVX2 || a.Rows != a.Cols || b.Cols != b.Rows {
		return false
	}
	switch a.Rows {
	case 4:
		mulInto4AVX2(&dst.Data[0], &a.Data[0], &b.Data[0])
	case 8:
		mulInto8AVX2(&dst.Data[0], &a.Data[0], &b.Data[0])
	case 16:
		mulInto16AVX2(&dst.Data[0], &a.Data[0], &b.Data[0])
	default:
		return false
	}
	return true
}
