//go:build !amd64

package linalg

// Non-amd64 builds fall back to the portable scalar kernels.

const hasAVX2 = false

func mulIntoFast(dst, a, b *Matrix) bool { return false }
