package linalg

import (
	"math"
	"testing"
)

// The specialized matmul/matvec kernels must be bit-identical to the
// generic scalar loops: the golden experiment tables pin latencies to
// the last ulp through 4- and 8-dim unitary products, so any FP
// reordering in MulInto would silently shift the physics. These tests
// compare the dispatched path against MulIntoGeneric bit-for-bit over
// random matrices salted with the edge cases the kernels special-case
// (±0 skip rows, NaN/Inf in skipped and unskipped positions).

func kernelRand(seed uint64) func() float64 {
	s := seed
	return func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(int64(s%2000))/1000 - 1
	}
}

func randomTestMatrix(rows, cols int, seed uint64) *Matrix {
	m := New(rows, cols)
	next := kernelRand(seed)
	for i := range m.Data {
		m.Data[i] = complex(next(), next())
	}
	return m
}

// saltEdgeCases plants zeros (skip rows), negative zeros, NaN, and Inf
// at deterministic positions.
func saltEdgeCases(a, b *Matrix) {
	nan := math.NaN()
	for i := 0; i < len(a.Data); i += 7 {
		a.Data[i] = 0
	}
	for i := 3; i < len(a.Data); i += 11 {
		a.Data[i] = complex(math.Copysign(0, -1), 0)
	}
	if len(b.Data) > 5 {
		b.Data[5] = complex(nan, 1)
	}
	if len(b.Data) > 9 {
		b.Data[9] = complex(math.Inf(1), -2)
	}
}

// sameBits treats all NaNs as equal (payload propagation through vector
// ops is not specified) but otherwise requires exact bit equality,
// including the sign of zero.
func sameBits(x, y complex128) bool {
	return sameFloatBits(real(x), real(y)) && sameFloatBits(imag(x), imag(y))
}

func sameFloatBits(x, y float64) bool {
	if math.IsNaN(x) || math.IsNaN(y) {
		return math.IsNaN(x) && math.IsNaN(y)
	}
	return math.Float64bits(x) == math.Float64bits(y)
}

func TestMulKernelsBitIdentical(t *testing.T) {
	for n := 1; n <= 20; n++ {
		for trial := uint64(0); trial < 4; trial++ {
			a := randomTestMatrix(n, n, 1+trial*31+uint64(n))
			b := randomTestMatrix(n, n, 2+trial*37+uint64(n))
			if trial%2 == 1 {
				saltEdgeCases(a, b)
			}
			want := New(n, n)
			got := New(n, n)
			MulIntoGeneric(want, a, b)
			MulInto(got, a, b)
			for i := range want.Data {
				if !sameBits(want.Data[i], got.Data[i]) {
					t.Fatalf("n=%d trial=%d: element %d differs: generic %v, dispatched %v",
						n, trial, i, want.Data[i], got.Data[i])
				}
			}
		}
	}
}

func TestMulKernelsBitIdenticalToggled(t *testing.T) {
	// The SetFastKernels escape hatch must route back to the generic
	// kernel (used by the e2e before/after benchmark).
	a := randomTestMatrix(8, 8, 5)
	b := randomTestMatrix(8, 8, 6)
	want := New(8, 8)
	got := New(8, 8)
	prev := SetFastKernels(false)
	MulInto(got, a, b)
	SetFastKernels(prev)
	MulIntoGeneric(want, a, b)
	for i := range want.Data {
		if !sameBits(want.Data[i], got.Data[i]) {
			t.Fatalf("element %d differs with kernels disabled", i)
		}
	}
}

func TestMulVecKernelsBitIdentical(t *testing.T) {
	for n := 1; n <= 20; n++ {
		for trial := uint64(0); trial < 4; trial++ {
			m := randomTestMatrix(n, n, 3+trial*41+uint64(n))
			vm := randomTestMatrix(1, n, 4+trial*43+uint64(n))
			if trial%2 == 1 {
				saltEdgeCases(m, vm)
			}
			v := vm.Data
			want := make([]complex128, n)
			got := make([]complex128, n)
			mulVecIntoGeneric(want, m, v)
			MulVecInto(got, m, v)
			for i := range want {
				if !sameBits(want[i], got[i]) {
					t.Fatalf("n=%d trial=%d: element %d differs: generic %v, dispatched %v",
						n, trial, i, want[i], got[i])
				}
			}
		}
	}
}

// Non-square products must still fall through to the generic kernel.
func TestMulKernelsNonSquareFallback(t *testing.T) {
	a := randomTestMatrix(8, 4, 7)
	b := randomTestMatrix(4, 8, 8)
	want := New(8, 8)
	got := New(8, 8)
	MulIntoGeneric(want, a, b)
	MulInto(got, a, b)
	for i := range want.Data {
		if !sameBits(want.Data[i], got.Data[i]) {
			t.Fatalf("element %d differs on non-square product", i)
		}
	}
}

func benchMulPair(b *testing.B, n int, generic bool) {
	x := randomTestMatrix(n, n, 101)
	y := randomTestMatrix(n, n, 102)
	dst := New(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if generic {
			MulIntoGeneric(dst, x, y)
		} else {
			MulInto(dst, x, y)
		}
	}
}

func BenchmarkMulIntoGeneric8(b *testing.B)    { benchMulPair(b, 8, true) }
func BenchmarkMulIntoDispatched8(b *testing.B) { benchMulPair(b, 8, false) }
func BenchmarkMulIntoGeneric16(b *testing.B)   { benchMulPair(b, 16, true) }
func BenchmarkMulIntoDispatched16(b *testing.B) {
	benchMulPair(b, 16, false)
}
