package linalg

// Destination-passing kernels. Every XxxInto function writes its result
// into a caller-owned destination instead of allocating, so hot loops
// (GRAPE iterations, pulse-simulation slice evolution) can reuse one set
// of buffers across millions of operations. The value-returning Matrix
// methods are thin wrappers over these kernels, so both APIs produce
// bit-identical results.
//
// Aliasing rules (see DESIGN.md "Destination-passing kernels"):
//
//   - MulInto, MulVecInto, DaggerInto: dst must NOT alias any source
//     operand (the kernel writes dst while still reading the sources).
//   - AddInto, SubInto, ScaleInto, AddScaledInto: dst MAY alias a source
//     (element i of dst depends only on element i of the sources).
//
// Shapes are strict: dst must already have the result shape; kernels
// panic on mismatch rather than resizing, so a buffer bug fails loudly.

// CopyFrom copies o's elements into m. Shapes must match.
func (m *Matrix) CopyFrom(o *Matrix) {
	mustSameShape(m, o)
	copy(m.Data, o.Data)
}

// IdentityInto overwrites dst with the identity matrix.
func IdentityInto(dst *Matrix) {
	if !dst.IsSquare() {
		panic("linalg: IdentityInto on non-square matrix")
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	n := dst.Rows
	for i := 0; i < n; i++ {
		dst.Data[i*n+i] = 1
	}
}

// MulInto computes the matrix product a·b into dst. dst must not alias
// a or b.
func MulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic("linalg: MulInto shape mismatch")
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("linalg: MulInto bad destination shape")
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for r := 0; r < a.Rows; r++ {
		arow := a.Data[r*a.Cols : (r+1)*a.Cols]
		drow := dst.Data[r*b.Cols : (r+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			krow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for c, bv := range krow {
				drow[c] += av * bv
			}
		}
	}
}

// MulVecInto computes the matrix-vector product m·v into dst. dst must
// not alias v and must have length m.Rows.
func MulVecInto(dst []complex128, m *Matrix, v []complex128) {
	if m.Cols != len(v) {
		panic("linalg: MulVec length mismatch")
	}
	if len(dst) != m.Rows {
		panic("linalg: MulVecInto bad destination length")
	}
	for r := 0; r < m.Rows; r++ {
		var s complex128
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, mv := range row {
			s += mv * v[c]
		}
		dst[r] = s
	}
}

// DaggerInto computes the conjugate transpose m† into dst. dst must not
// alias m.
func DaggerInto(dst, m *Matrix) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic("linalg: DaggerInto bad destination shape")
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			dst.Data[c*dst.Cols+r] = conj(m.Data[r*m.Cols+c])
		}
	}
}

// AddInto computes a + b into dst. dst may alias a or b.
func AddInto(dst, a, b *Matrix) {
	mustSameShape(a, b)
	mustSameShape(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// SubInto computes a - b into dst. dst may alias a or b.
func SubInto(dst, a, b *Matrix) {
	mustSameShape(a, b)
	mustSameShape(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// ScaleInto computes s·m into dst. dst may alias m.
func ScaleInto(dst, m *Matrix, s complex128) {
	mustSameShape(dst, m)
	for i := range dst.Data {
		dst.Data[i] = s * m.Data[i]
	}
}

// AddScaledInto computes a + s·b into dst. dst may alias a or b.
func AddScaledInto(dst, a, b *Matrix, s complex128) {
	mustSameShape(a, b)
	mustSameShape(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + s*b.Data[i]
	}
}

// conj avoids pulling cmplx into the inner loops' inlining budget.
func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }
