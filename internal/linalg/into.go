package linalg

// Destination-passing kernels. Every XxxInto function writes its result
// into a caller-owned destination instead of allocating, so hot loops
// (GRAPE iterations, pulse-simulation slice evolution) can reuse one set
// of buffers across millions of operations. The value-returning Matrix
// methods are thin wrappers over these kernels, so both APIs produce
// bit-identical results.
//
// Aliasing rules (see DESIGN.md "Destination-passing kernels"):
//
//   - MulInto, MulVecInto, DaggerInto: dst must NOT alias any source
//     operand (the kernel writes dst while still reading the sources).
//   - AddInto, SubInto, ScaleInto, AddScaledInto: dst MAY alias a source
//     (element i of dst depends only on element i of the sources).
//
// Shapes are strict: dst must already have the result shape; kernels
// panic on mismatch rather than resizing, so a buffer bug fails loudly.

// CopyFrom copies o's elements into m. Shapes must match.
func (m *Matrix) CopyFrom(o *Matrix) {
	mustSameShape(m, o)
	copy(m.Data, o.Data)
}

// IdentityInto overwrites dst with the identity matrix.
func IdentityInto(dst *Matrix) {
	if !dst.IsSquare() {
		panic("linalg: IdentityInto on non-square matrix")
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	n := dst.Rows
	for i := 0; i < n; i++ {
		dst.Data[i*n+i] = 1
	}
}

// MulInto computes the matrix product a·b into dst. dst must not alias
// a or b. Square products of dimension 4, 8, or 16 (the 2/3/4-qubit
// unitary spaces that dominate GRAPE and pulse simulation) dispatch to
// blocked kernels that are bit-identical to the generic loop; see
// kernels_amd64.go.
func MulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic("linalg: MulInto shape mismatch")
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("linalg: MulInto bad destination shape")
	}
	if useFastKernels && mulIntoFast(dst, a, b) {
		return
	}
	mulIntoGeneric(dst, a, b)
}

// useFastKernels gates the specialized-kernel dispatch. It exists only
// so SetFastKernels can measure generic-vs-blocked end-to-end; both
// paths produce bit-identical results.
var useFastKernels = true

// SetFastKernels enables or disables the specialized kernel dispatch and
// reports the previous setting. Benchmark-only: callers must not toggle
// it while other goroutines are inside linalg kernels.
func SetFastKernels(enabled bool) bool {
	prev := useFastKernels
	useFastKernels = enabled
	return prev
}

// MulIntoGeneric is the portable scalar kernel behind MulInto, exported
// so the paqoc-bench kernels experiment can benchmark the specialized
// dispatch against its baseline. Same contract as MulInto.
func MulIntoGeneric(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic("linalg: MulInto shape mismatch")
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("linalg: MulInto bad destination shape")
	}
	mulIntoGeneric(dst, a, b)
}

func mulIntoGeneric(dst, a, b *Matrix) {
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for r := 0; r < a.Rows; r++ {
		arow := a.Data[r*a.Cols : (r+1)*a.Cols]
		drow := dst.Data[r*b.Cols : (r+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			krow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for c, bv := range krow {
				drow[c] += av * bv
			}
		}
	}
}

// MulVecInto computes the matrix-vector product m·v into dst. dst must
// not alias v and must have length m.Rows. Square systems of dimension
// 4, 8, or 16 dispatch to unrolled kernels with the same accumulation
// order as the generic loop.
func MulVecInto(dst []complex128, m *Matrix, v []complex128) {
	if m.Cols != len(v) {
		panic("linalg: MulVec length mismatch")
	}
	if len(dst) != m.Rows {
		panic("linalg: MulVecInto bad destination length")
	}
	if useFastKernels && m.Rows == m.Cols {
		switch m.Rows {
		case 4:
			mulVecInto4(dst, m, v)
			return
		case 8:
			mulVecInto8(dst, m, v)
			return
		case 16:
			mulVecInto16(dst, m, v)
			return
		}
	}
	mulVecIntoGeneric(dst, m, v)
}

func mulVecIntoGeneric(dst []complex128, m *Matrix, v []complex128) {
	for r := 0; r < m.Rows; r++ {
		var s complex128
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, mv := range row {
			s += mv * v[c]
		}
		dst[r] = s
	}
}

// The unrolled matvec kernels keep the generic loop's exact FP order
// (ascending-c chained accumulation from a +0 start); the win is bounds
// -check elimination via array-pointer conversion plus 4-way unrolling.

func mulVecInto4(dst []complex128, m *Matrix, v []complex128) {
	md := (*[16]complex128)(m.Data)
	vv := (*[4]complex128)(v)
	dd := (*[4]complex128)(dst)
	for r := 0; r < 4; r++ {
		row := md[r*4 : r*4+4 : r*4+4]
		var s complex128
		s += row[0] * vv[0]
		s += row[1] * vv[1]
		s += row[2] * vv[2]
		s += row[3] * vv[3]
		dd[r] = s
	}
}

func mulVecInto8(dst []complex128, m *Matrix, v []complex128) {
	md := (*[64]complex128)(m.Data)
	vv := (*[8]complex128)(v)
	dd := (*[8]complex128)(dst)
	for r := 0; r < 8; r++ {
		row := md[r*8 : r*8+8 : r*8+8]
		var s complex128
		for c := 0; c < 8; c += 4 {
			s += row[c] * vv[c]
			s += row[c+1] * vv[c+1]
			s += row[c+2] * vv[c+2]
			s += row[c+3] * vv[c+3]
		}
		dd[r] = s
	}
}

func mulVecInto16(dst []complex128, m *Matrix, v []complex128) {
	md := (*[256]complex128)(m.Data)
	vv := (*[16]complex128)(v)
	dd := (*[16]complex128)(dst)
	for r := 0; r < 16; r++ {
		row := md[r*16 : r*16+16 : r*16+16]
		var s complex128
		for c := 0; c < 16; c += 4 {
			s += row[c] * vv[c]
			s += row[c+1] * vv[c+1]
			s += row[c+2] * vv[c+2]
			s += row[c+3] * vv[c+3]
		}
		dd[r] = s
	}
}

// DaggerInto computes the conjugate transpose m† into dst. dst must not
// alias m.
func DaggerInto(dst, m *Matrix) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic("linalg: DaggerInto bad destination shape")
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			dst.Data[c*dst.Cols+r] = conj(m.Data[r*m.Cols+c])
		}
	}
}

// AddInto computes a + b into dst. dst may alias a or b.
func AddInto(dst, a, b *Matrix) {
	mustSameShape(a, b)
	mustSameShape(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// SubInto computes a - b into dst. dst may alias a or b.
func SubInto(dst, a, b *Matrix) {
	mustSameShape(a, b)
	mustSameShape(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// ScaleInto computes s·m into dst. dst may alias m.
func ScaleInto(dst, m *Matrix, s complex128) {
	mustSameShape(dst, m)
	for i := range dst.Data {
		dst.Data[i] = s * m.Data[i]
	}
}

// AddScaledInto computes a + s·b into dst. dst may alias a or b.
func AddScaledInto(dst, a, b *Matrix, s complex128) {
	mustSameShape(a, b)
	mustSameShape(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + s*b.Data[i]
	}
}

// conj avoids pulling cmplx into the inner loops' inlining budget.
func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }
