// Package linalg provides dense complex-matrix algebra for the quantum
// stack: products, tensor (Kronecker) products, adjoints, norms, and the
// matrix exponential. Matrices in this codebase are small (dimension 2..16,
// i.e. 1..4 qubits), so the implementations favour clarity and numerical
// robustness over asymptotic cleverness.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, Data[r*Cols+c]
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 {
		panic("linalg: FromRows needs at least one row")
	}
	m := New(len(rows), len(rows[0]))
	for r, row := range rows {
		if len(row) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[r*m.Cols:(r+1)*m.Cols], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// IsSquare reports whether the matrix is square.
func (m *Matrix) IsSquare() bool { return m.Rows == m.Cols }

// Equal reports element-wise equality within tol (absolute).
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Data {
		if cmplx.Abs(m.Data[i]-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Add returns m + o. Allocates; see AddInto for the destination-passing
// form.
func (m *Matrix) Add(o *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	AddInto(out, m, o)
	return out
}

// Sub returns m - o. Allocates; see SubInto.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	SubInto(out, m, o)
	return out
}

// Scale returns s*m. Allocates; see ScaleInto.
func (m *Matrix) Scale(s complex128) *Matrix {
	out := New(m.Rows, m.Cols)
	ScaleInto(out, m, s)
	return out
}

// AddInPlace accumulates s*o into m.
func (m *Matrix) AddInPlace(o *Matrix, s complex128) {
	mustSameShape(m, o)
	for i := range m.Data {
		m.Data[i] += s * o.Data[i]
	}
}

// Mul returns the matrix product m·o. Allocates; see MulInto for the
// destination-passing form used on hot paths.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := New(m.Rows, o.Cols)
	MulInto(out, m, o)
	return out
}

// MulVec returns the matrix-vector product m·v. Allocates; see
// MulVecInto.
func (m *Matrix) MulVec(v []complex128) []complex128 {
	if m.Cols != len(v) {
		panic("linalg: MulVec length mismatch")
	}
	out := make([]complex128, m.Rows)
	MulVecInto(out, m, v)
	return out
}

// Dagger returns the conjugate transpose m†. Allocates; see DaggerInto.
func (m *Matrix) Dagger() *Matrix {
	out := New(m.Cols, m.Rows)
	DaggerInto(out, m)
	return out
}

// Transpose returns the (non-conjugated) transpose.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Data[c*out.Cols+r] = m.Data[r*m.Cols+c]
		}
	}
	return out
}

// Kron returns the Kronecker (tensor) product m ⊗ o.
func (m *Matrix) Kron(o *Matrix) *Matrix {
	out := New(m.Rows*o.Rows, m.Cols*o.Cols)
	for r1 := 0; r1 < m.Rows; r1++ {
		for c1 := 0; c1 < m.Cols; c1++ {
			a := m.Data[r1*m.Cols+c1]
			if a == 0 {
				continue
			}
			for r2 := 0; r2 < o.Rows; r2++ {
				base := (r1*o.Rows+r2)*out.Cols + c1*o.Cols
				orow := o.Data[r2*o.Cols : (r2+1)*o.Cols]
				for c2, b := range orow {
					out.Data[base+c2] = a * b
				}
			}
		}
	}
	return out
}

// Trace returns the trace of a square matrix.
func (m *Matrix) Trace() complex128 {
	if !m.IsSquare() {
		panic("linalg: Trace of non-square matrix")
	}
	var t complex128
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// FrobeniusNorm returns sqrt(Σ|a_ij|²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		re, im := real(v), imag(v)
		s += re*re + im*im
	}
	return math.Sqrt(s)
}

// MaxAbs returns max_ij |a_ij|.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// OneNorm returns the maximum absolute column sum.
func (m *Matrix) OneNorm() float64 {
	var mx float64
	for c := 0; c < m.Cols; c++ {
		var s float64
		for r := 0; r < m.Rows; r++ {
			s += cmplx.Abs(m.Data[r*m.Cols+c])
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// IsUnitary reports whether m†·m ≈ I within tol.
func (m *Matrix) IsUnitary(tol float64) bool {
	if !m.IsSquare() {
		return false
	}
	p := m.Dagger().Mul(m)
	return p.Equal(Identity(m.Rows), tol)
}

// IsHermitian reports whether m ≈ m† within tol.
func (m *Matrix) IsHermitian(tol float64) bool {
	if !m.IsSquare() {
		return false
	}
	return m.Equal(m.Dagger(), tol)
}

// String renders the matrix compactly for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		b.WriteString("[")
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				b.WriteString(", ")
			}
			v := m.Data[r*m.Cols+c]
			fmt.Fprintf(&b, "%.4g%+.4gi", real(v), imag(v))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func mustSameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
