#include "textflag.h"

// AVX2 complex128 matmul kernels. See kernels_amd64.go for the
// bit-identity contract: vectorization is across columns only, each
// destination element keeps the scalar ascending-k single-accumulator
// chain, av == 0 rows are skipped with the same ==0 semantics (NaN
// never skips, -0 does), and the complex product is VMULPD+VADDSUBPD
// (naive formula, no FMA).
//
// Register plan (shared by all three sizes):
//   Y0..Y7   column-block accumulators for the current output row
//   Y8/Y9    b row block / its re-im swap
//   Y10/Y11  broadcast real(av) / imag(av)
//   X12      zero (for the av == 0 test)
//   X13/X14  av / compare mask

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func mulInto4AVX2(dst, a, b *complex128)
TEXT ·mulInto4AVX2(SB), NOSPLIT, $0-24
	MOVQ   dst+0(FP), DI
	MOVQ   a+8(FP), SI
	MOVQ   b+16(FP), DX
	VXORPD X12, X12, X12
	MOVQ   $4, R8

row4:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	MOVQ   DX, BX
	MOVQ   SI, CX
	MOVQ   $4, R9

k4:
	VMOVUPD   (CX), X13
	VCMPPD    $0, X13, X12, X14
	VMOVMSKPD X14, AX
	CMPQ      AX, $3
	JE        skip4

	VBROADCASTSD (CX), Y10
	VBROADCASTSD 8(CX), Y11

	VMOVUPD   (BX), Y8
	VSHUFPD   $5, Y8, Y8, Y9
	VMULPD    Y8, Y10, Y8
	VMULPD    Y9, Y11, Y9
	VADDSUBPD Y9, Y8, Y8
	VADDPD    Y8, Y0, Y0

	VMOVUPD   32(BX), Y8
	VSHUFPD   $5, Y8, Y8, Y9
	VMULPD    Y8, Y10, Y8
	VMULPD    Y9, Y11, Y9
	VADDSUBPD Y9, Y8, Y8
	VADDPD    Y8, Y1, Y1

skip4:
	ADDQ $16, CX
	ADDQ $64, BX
	DECQ R9
	JNZ  k4

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    $64, DI
	ADDQ    $64, SI
	DECQ    R8
	JNZ     row4

	VZEROUPPER
	RET

// func mulInto8AVX2(dst, a, b *complex128)
TEXT ·mulInto8AVX2(SB), NOSPLIT, $0-24
	MOVQ   dst+0(FP), DI
	MOVQ   a+8(FP), SI
	MOVQ   b+16(FP), DX
	VXORPD X12, X12, X12
	MOVQ   $8, R8

row8:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ   DX, BX
	MOVQ   SI, CX
	MOVQ   $8, R9

k8:
	VMOVUPD   (CX), X13
	VCMPPD    $0, X13, X12, X14
	VMOVMSKPD X14, AX
	CMPQ      AX, $3
	JE        skip8

	VBROADCASTSD (CX), Y10
	VBROADCASTSD 8(CX), Y11

	VMOVUPD   (BX), Y8
	VSHUFPD   $5, Y8, Y8, Y9
	VMULPD    Y8, Y10, Y8
	VMULPD    Y9, Y11, Y9
	VADDSUBPD Y9, Y8, Y8
	VADDPD    Y8, Y0, Y0

	VMOVUPD   32(BX), Y8
	VSHUFPD   $5, Y8, Y8, Y9
	VMULPD    Y8, Y10, Y8
	VMULPD    Y9, Y11, Y9
	VADDSUBPD Y9, Y8, Y8
	VADDPD    Y8, Y1, Y1

	VMOVUPD   64(BX), Y8
	VSHUFPD   $5, Y8, Y8, Y9
	VMULPD    Y8, Y10, Y8
	VMULPD    Y9, Y11, Y9
	VADDSUBPD Y9, Y8, Y8
	VADDPD    Y8, Y2, Y2

	VMOVUPD   96(BX), Y8
	VSHUFPD   $5, Y8, Y8, Y9
	VMULPD    Y8, Y10, Y8
	VMULPD    Y9, Y11, Y9
	VADDSUBPD Y9, Y8, Y8
	VADDPD    Y8, Y3, Y3

skip8:
	ADDQ $16, CX
	ADDQ $128, BX
	DECQ R9
	JNZ  k8

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	ADDQ    $128, DI
	ADDQ    $128, SI
	DECQ    R8
	JNZ     row8

	VZEROUPPER
	RET

// func mulInto16AVX2(dst, a, b *complex128)
TEXT ·mulInto16AVX2(SB), NOSPLIT, $0-24
	MOVQ   dst+0(FP), DI
	MOVQ   a+8(FP), SI
	MOVQ   b+16(FP), DX
	VXORPD X12, X12, X12
	MOVQ   $16, R8

row16:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	MOVQ   DX, BX
	MOVQ   SI, CX
	MOVQ   $16, R9

k16:
	VMOVUPD   (CX), X13
	VCMPPD    $0, X13, X12, X14
	VMOVMSKPD X14, AX
	CMPQ      AX, $3
	JE        skip16

	VBROADCASTSD (CX), Y10
	VBROADCASTSD 8(CX), Y11

	VMOVUPD   (BX), Y8
	VSHUFPD   $5, Y8, Y8, Y9
	VMULPD    Y8, Y10, Y8
	VMULPD    Y9, Y11, Y9
	VADDSUBPD Y9, Y8, Y8
	VADDPD    Y8, Y0, Y0

	VMOVUPD   32(BX), Y8
	VSHUFPD   $5, Y8, Y8, Y9
	VMULPD    Y8, Y10, Y8
	VMULPD    Y9, Y11, Y9
	VADDSUBPD Y9, Y8, Y8
	VADDPD    Y8, Y1, Y1

	VMOVUPD   64(BX), Y8
	VSHUFPD   $5, Y8, Y8, Y9
	VMULPD    Y8, Y10, Y8
	VMULPD    Y9, Y11, Y9
	VADDSUBPD Y9, Y8, Y8
	VADDPD    Y8, Y2, Y2

	VMOVUPD   96(BX), Y8
	VSHUFPD   $5, Y8, Y8, Y9
	VMULPD    Y8, Y10, Y8
	VMULPD    Y9, Y11, Y9
	VADDSUBPD Y9, Y8, Y8
	VADDPD    Y8, Y3, Y3

	VMOVUPD   128(BX), Y8
	VSHUFPD   $5, Y8, Y8, Y9
	VMULPD    Y8, Y10, Y8
	VMULPD    Y9, Y11, Y9
	VADDSUBPD Y9, Y8, Y8
	VADDPD    Y8, Y4, Y4

	VMOVUPD   160(BX), Y8
	VSHUFPD   $5, Y8, Y8, Y9
	VMULPD    Y8, Y10, Y8
	VMULPD    Y9, Y11, Y9
	VADDSUBPD Y9, Y8, Y8
	VADDPD    Y8, Y5, Y5

	VMOVUPD   192(BX), Y8
	VSHUFPD   $5, Y8, Y8, Y9
	VMULPD    Y8, Y10, Y8
	VMULPD    Y9, Y11, Y9
	VADDSUBPD Y9, Y8, Y8
	VADDPD    Y8, Y6, Y6

	VMOVUPD   224(BX), Y8
	VSHUFPD   $5, Y8, Y8, Y9
	VMULPD    Y8, Y10, Y8
	VMULPD    Y9, Y11, Y9
	VADDSUBPD Y9, Y8, Y8
	VADDPD    Y8, Y7, Y7

skip16:
	ADDQ $16, CX
	ADDQ $256, BX
	DECQ R9
	JNZ  k16

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VMOVUPD Y4, 128(DI)
	VMOVUPD Y5, 160(DI)
	VMOVUPD Y6, 192(DI)
	VMOVUPD Y7, 224(DI)
	ADDQ    $256, DI
	ADDQ    $256, SI
	DECQ    R8
	JNZ     row16

	VZEROUPPER
	RET
