package latency

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/cmplx"
	"sync"

	"paqoc/internal/hamiltonian"
	"paqoc/internal/linalg"
	"paqoc/internal/obs"
	"paqoc/internal/pulse"
	"paqoc/internal/topology"
)

// Model is the analytical latency generator (§III-B): a deterministic,
// calibrated surrogate for GRAPE used when sweeping whole benchmark suites,
// where running the numerical optimizer for every ranking probe would be
// prohibitive (the paper itself ranks with an analytical model and only
// invokes GRAPE when §V-A requires an actual probe). Calibration constants
// come from internal/grape measurements on this repository's platform:
// X ≈ 24 dt, H ≈ 24 dt, CX ≈ 80 dt, iSWAP ≈ 60 dt, SWAP ≈ 96 dt,
// CCX ≈ 192 dt.
type Model struct {
	DB   *pulse.DB
	Topo *topology.Topology
	// SimilarityDist enables AccQOC-style warm-start cost discounts.
	SimilarityDist float64
	// Params carries the target backend's control parameters. The zero
	// value falls back to the paper's platform (hamiltonian.DefaultParams),
	// so existing call sites keep their exact behaviour.
	Params hamiltonian.Params

	mu        sync.Mutex
	weylCache map[string][3]float64
}

// driveBound returns the backend's single-qubit drive limit in rad/dt.
func (m *Model) driveBound() float64 {
	if m.Params.IsZero() {
		return hamiltonian.DriveBound
	}
	return m.Params.DriveBound()
}

// couplingBound returns the backend's two-qubit coupling limit in rad/dt.
func (m *Model) couplingBound() float64 {
	if m.Params.IsZero() {
		return hamiltonian.CouplingBound
	}
	return m.Params.CouplingBound()
}

// Calibration constants (dt units unless noted).
const (
	baseOverhead1Q = 3.0  // pulse ramp overhead, single-qubit gates
	baseOverhead2Q = 6.0  // two-qubit groups
	baseOverhead3Q = 10.0 // three-qubit groups
	echoLocalCost  = 24.0 // extra locals when c1 ≠ c2 forces echo (CX-like)
	residualLocal  = 0.15 // fraction of 1q rotation load not absorbed
	threeQSerial   = 0.65 // overlap factor for 3-qubit interaction loads
	relayFactor    = 1.8  // penalty for interactions across non-coupled pairs
	jitterSpan     = 0.06 // deterministic per-unitary scatter (±6%)
)

// NewModel returns a model generator with a fresh pulse database.
func NewModel() *Model {
	return &Model{DB: pulse.NewDB(), SimilarityDist: 0.8, weylCache: make(map[string][3]float64)}
}

var (
	_ pulse.Generator  = (*Model)(nil)
	_ pulse.DBProvider = (*Model)(nil)
)

// PulseDB exposes the backing pulse database (may be nil).
func (m *Model) PulseDB() *pulse.DB { return m.DB }

// GenerateCtx estimates the pulse for a customized gate without running
// QOC. The returned Generated carries no schedule; latency, error, and a
// synthetic compile cost (seconds a GRAPE run would have taken) are
// filled. Observability: it counts analytical probes
// and pulse-database hits on the context's metrics registry. Ranking
// probes are far too frequent for per-call spans, so the model emits
// counters only.
//
// Concurrent calls sharing one DB are safe: misses on the same canonical
// unitary are coalesced singleflight-style (pulse.DB.Do), matching the
// GRAPE generator's semantics so worker-pool emission can swap generators
// freely.
func (m *Model) GenerateCtx(ctx context.Context, cg *pulse.CustomGate, fidelityTarget float64) (*pulse.Generated, error) {
	reg := obs.MetricsFrom(ctx)
	reg.Counter("latency.model.probes").Inc()
	u, err := cg.Unitary()
	if err != nil {
		return nil, err
	}
	if m.DB == nil {
		return m.synthesize(cg, u, fidelityTarget, false)
	}
	gen, _, outcome, err := m.DB.Do(u, func() (*pulse.Generated, error) {
		return m.synthesize(cg, u, fidelityTarget, true)
	})
	if err != nil {
		return nil, err
	}
	if outcome == pulse.OutcomeGenerated {
		return gen, nil
	}
	if outcome == pulse.OutcomeDeduped {
		reg.Counter("pulse.db_dedups").Inc()
	} else {
		reg.Counter("latency.model.db_hits").Inc()
	}
	// Recompute the analytic estimate for this gate rather than echoing the
	// stored entry: entries carry the estimate of whichever block generated
	// the key first (a permuted twin, or a different decomposition of the
	// same canonical unitary), so returning them would make the reported
	// latency depend on generation order — nondeterministic under the
	// worker pool. The estimate is a pure function of the gate and cheap;
	// the reuse benefit is the zeroed cost.
	out, err := m.synthesize(cg, u, fidelityTarget, false)
	if err != nil {
		return nil, err
	}
	out.CacheHit = true
	out.Cost = 0
	return out, nil
}

// synthesize computes the analytical estimate for one unitary. useDB
// enables the AccQOC-style warm-start cost discount against the database.
func (m *Model) synthesize(cg *pulse.CustomGate, u *linalg.Matrix, fidelityTarget float64, useDB bool) (*pulse.Generated, error) {
	key := pulse.CanonicalKey(u)
	if fidelityTarget <= 0 {
		fidelityTarget = 0.999
	}
	lat, err := m.estimate(cg, u, key)
	if err != nil {
		return nil, err
	}
	eps := (1 - fidelityTarget) * (0.35 + 0.5*hash01(key+"/err"))
	if eps < 1e-7 {
		eps = 1e-7
	}
	cost := m.cost(cg.NumQubits(), lat)
	if useDB && m.SimilarityDist > 0 {
		if _, _, ok := m.DB.Nearest(u, m.SimilarityDist); ok {
			cost *= 0.35 // warm start à la AccQOC
		}
	}
	return &pulse.Generated{
		Latency:  lat,
		Fidelity: 1 - eps,
		Error:    eps,
		Cost:     cost,
	}, nil
}

// estimate dispatches on group width.
func (m *Model) estimate(cg *pulse.CustomGate, u *linalg.Matrix, key string) (float64, error) {
	jitter := 1 + jitterSpan*(hash01(key)-0.5)
	switch cg.NumQubits() {
	case 1:
		half := cmplx.Abs(u.Trace()) / 2
		if half > 1 {
			half = 1
		}
		angle := 2 * math.Acos(half)
		return baseOverhead1Q + jitter*angle/m.driveBound(), nil
	case 2:
		c, err := m.weyl(key, u)
		if err != nil {
			return 0, err
		}
		tInt := InteractionTime(c) / m.couplingBound()
		locals := echoLocalCost * LocalContent(c) / (math.Pi / 4)
		locals += residualLocal * m.rotationLoad(cg)
		return baseOverhead2Q + jitter*(tInt+locals), nil
	case 3:
		return m.estimate3Q(cg, key, jitter)
	default:
		return 0, fmt.Errorf("latency: %d-qubit groups unsupported (maxN is 3 in the evaluation)", cg.NumQubits())
	}
}

// estimate3Q serializes pair-interaction loads over the busiest qubit,
// mirroring how XY hardware must time-share couplings that meet at a qubit.
func (m *Model) estimate3Q(cg *pulse.CustomGate, key string, jitter float64) (float64, error) {
	// pairLoad[{a,b}] accumulates interaction time on each local pair.
	type pair [2]int
	load := map[pair]float64{}
	addLoad := func(a, b int, v float64) {
		if a > b {
			a, b = b, a
		}
		load[pair{a, b}] += v
	}

	// Interaction on one pair saturates like the two-qubit Weyl chamber:
	// no pair ever needs more than the SWAP-class time plus echo locals.
	pairCap := 3*math.Pi/4/m.couplingBound() + 2*echoLocalCost

	for _, g := range cg.LocalGates() {
		switch g.Arity() {
		case 1:
			// absorbed into residual local load below
		case 2:
			u, err := g.Unitary()
			if err != nil {
				return 0, err
			}
			c, err := m.weyl(pulse.CanonicalKey(u), u)
			if err != nil {
				return 0, err
			}
			t := InteractionTime(c)/m.couplingBound() +
				echoLocalCost*LocalContent(c)/(math.Pi/4)
			addLoad(g.Qubits[0], g.Qubits[1], t)
		case 3:
			// Pair profile of the standard decompositions: two CX on each
			// of the three pairs (Toffoli-family gates).
			cxT := math.Pi/2/m.couplingBound() + echoLocalCost
			for _, p := range [][2]int{{g.Qubits[0], g.Qubits[1]}, {g.Qubits[0], g.Qubits[2]}, {g.Qubits[1], g.Qubits[2]}} {
				addLoad(p[0], p[1], 2*cxT)
			}
		}
	}

	// Saturate each pair's load, then penalize non-device-coupled pairs.
	for p, v := range load {
		if v > pairCap {
			v = pairCap
		}
		if !m.coupled(cg, p[0], p[1]) {
			v *= relayFactor
		}
		load[p] = v
	}

	// Busiest-qubit serialization.
	var qubitLoad [3]float64
	for p, v := range load {
		qubitLoad[p[0]] += v
		qubitLoad[p[1]] += v
	}
	busiest := math.Max(qubitLoad[0], math.Max(qubitLoad[1], qubitLoad[2]))
	locals := residualLocal * m.rotationLoad(cg)
	return baseOverhead3Q + jitter*(threeQSerial*busiest+locals), nil
}

// rotationLoad sums single-qubit rotation angles per qubit and returns the
// maximum, converted to drive time (dt).
func (m *Model) rotationLoad(cg *pulse.CustomGate) float64 {
	loads := make(map[int]float64)
	for _, g := range cg.LocalGates() {
		if g.Arity() != 1 {
			continue
		}
		u, err := g.Unitary()
		if err != nil {
			continue
		}
		half := cmplx.Abs(u.Trace()) / 2
		if half > 1 {
			half = 1
		}
		loads[g.Qubits[0]] += 2 * math.Acos(half)
	}
	var mx float64
	for _, v := range loads {
		if v > mx {
			mx = v
		}
	}
	return mx / m.driveBound()
}

func (m *Model) coupled(cg *pulse.CustomGate, la, lb int) bool {
	if m.Topo == nil {
		return true
	}
	return m.Topo.Connected(cg.Qubits[la], cg.Qubits[lb])
}

// weyl memoizes Weyl coordinates by canonical key.
func (m *Model) weyl(key string, u *linalg.Matrix) ([3]float64, error) {
	m.mu.Lock()
	if m.weylCache == nil {
		m.weylCache = make(map[string][3]float64)
	}
	if c, ok := m.weylCache[key]; ok {
		m.mu.Unlock()
		return c, nil
	}
	m.mu.Unlock()
	c, err := WeylCoordinates(u)
	if err != nil {
		return c, err
	}
	m.mu.Lock()
	m.weylCache[key] = c
	m.mu.Unlock()
	return c, nil
}

// cost models the wall-clock seconds an equivalent GRAPE minimum-time
// search would take: slices × iterations × dim³ work, times a
// binary-search factor, matching measurements of internal/grape.
func (m *Model) cost(nq int, lat float64) float64 {
	slices := lat / 4
	iters := 40.0 * float64(int(1)<<nq)
	dim3 := math.Pow(math.Pow(2, float64(nq)), 3)
	return 1e-6 * slices * iters * dim3
}

// hash01 maps a string deterministically into [0, 1).
func hash01(s string) float64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return float64(h.Sum64()%1e9) / 1e9
}
