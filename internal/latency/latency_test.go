package latency

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"paqoc/internal/circuit"
	"paqoc/internal/pulse"
	"paqoc/internal/quantum"
	"paqoc/internal/topology"
)

const pi4 = math.Pi / 4

func wantCoords(t *testing.T, name string, params []float64, want [3]float64) {
	t.Helper()
	u, err := quantum.GateUnitary(name, params)
	if err != nil {
		t.Fatal(err)
	}
	got, err := WeylCoordinates(u)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.01 {
			t.Errorf("%s coords = %v, want ≈ %v", name, got, want)
			return
		}
	}
}

func TestWeylKnownClasses(t *testing.T) {
	wantCoords(t, "cx", nil, [3]float64{pi4, 0, 0})
	wantCoords(t, "cz", nil, [3]float64{pi4, 0, 0})
	wantCoords(t, "swap", nil, [3]float64{pi4, pi4, pi4})
	wantCoords(t, "iswap", nil, [3]float64{pi4, pi4, 0})
	wantCoords(t, "cp", []float64{math.Pi / 2}, [3]float64{math.Pi / 8, 0, 0})
	wantCoords(t, "cp", []float64{math.Pi}, [3]float64{pi4, 0, 0}) // CP(π)=CZ
}

func TestWeylLocalGatesAreZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		a := quantum.U3(rng.Float64()*math.Pi, rng.Float64(), rng.Float64())
		b := quantum.U3(rng.Float64()*math.Pi, rng.Float64(), rng.Float64())
		c, err := WeylCoordinates(a.Kron(b))
		if err != nil {
			t.Fatal(err)
		}
		if c[0] > 0.01 {
			t.Errorf("local unitary got coords %v", c)
		}
	}
}

func TestWeylLocalInvariance(t *testing.T) {
	// Conjugating CX by local gates must not change its class.
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 10; i++ {
		k1 := quantum.U3(rng.Float64()*math.Pi, rng.Float64(), rng.Float64()).
			Kron(quantum.U3(rng.Float64()*math.Pi, rng.Float64(), rng.Float64()))
		k2 := quantum.U3(rng.Float64()*math.Pi, rng.Float64(), rng.Float64()).
			Kron(quantum.U3(rng.Float64()*math.Pi, rng.Float64(), rng.Float64()))
		u := k1.Mul(quantum.MatCX).Mul(k2)
		c, err := WeylCoordinates(u)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c[0]-pi4) > 0.01 || c[1] > 0.01 || c[2] > 0.01 {
			t.Errorf("trial %d: locally-conjugated CX coords %v", i, c)
		}
	}
}

func TestWeylRejectsBadInput(t *testing.T) {
	if _, err := WeylCoordinates(quantum.MatH); err == nil {
		t.Error("2x2 input should be rejected")
	}
}

func TestInteractionTimeFormula(t *testing.T) {
	// CX and iSWAP both need π/2 coupling-time units; SWAP needs 3π/4.
	if got := InteractionTime([3]float64{pi4, 0, 0}); math.Abs(got-math.Pi/2) > 1e-9 {
		t.Errorf("CX time %g", got)
	}
	if got := InteractionTime([3]float64{pi4, pi4, 0}); math.Abs(got-math.Pi/2) > 1e-9 {
		t.Errorf("iSWAP time %g", got)
	}
	if got := InteractionTime([3]float64{pi4, pi4, pi4}); math.Abs(got-3*math.Pi/4) > 1e-9 {
		t.Errorf("SWAP time %g", got)
	}
}

func mkGroup(gates ...circuit.Gate) *pulse.CustomGate { return pulse.NewCustomGate(gates) }

func gen(t *testing.T, m *Model, cg *pulse.CustomGate) *pulse.Generated {
	t.Helper()
	g, err := m.GenerateCtx(context.Background(), cg, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestModelCalibrationAgainstGRAPE(t *testing.T) {
	// The model must land near the measured GRAPE latencies (±25%).
	m := NewModel()
	cases := []struct {
		cg   *pulse.CustomGate
		want float64
	}{
		{mkGroup(circuit.Gate{Name: "x", Qubits: []int{0}}), 24},
		{mkGroup(circuit.Gate{Name: "h", Qubits: []int{0}}), 24},
		{mkGroup(circuit.Gate{Name: "cx", Qubits: []int{0, 1}}), 80},
		{mkGroup(circuit.Gate{Name: "swap", Qubits: []int{0, 1}}), 96},
		{mkGroup(
			circuit.Gate{Name: "h", Qubits: []int{0}},
			circuit.Gate{Name: "cx", Qubits: []int{0, 1}},
		), 80},
		{mkGroup(circuit.Gate{Name: "ccx", Qubits: []int{0, 1, 2}}), 192},
	}
	for _, tc := range cases {
		got := gen(t, m, tc.cg).Latency
		if got < tc.want*0.75 || got > tc.want*1.25 {
			t.Errorf("%s: latency %.1f, want ≈ %.1f", tc.cg.Describe(), got, tc.want)
		}
	}
}

func TestModelObservation1EqualWidth(t *testing.T) {
	// Observation 1: merging same-width gate sequences never exceeds the
	// sum of the parts.
	m := NewModel()
	pairs := [][2]*pulse.CustomGate{
		{
			mkGroup(circuit.Gate{Name: "h", Qubits: []int{0}}),
			mkGroup(circuit.Gate{Name: "t", Qubits: []int{0}}),
		},
		{
			mkGroup(circuit.Gate{Name: "cx", Qubits: []int{0, 1}}),
			mkGroup(circuit.Gate{Name: "cx", Qubits: []int{1, 0}}),
		},
		{
			mkGroup(circuit.Gate{Name: "cx", Qubits: []int{0, 1}}),
			mkGroup(circuit.Gate{Name: "cz", Qubits: []int{0, 1}}),
		},
	}
	for _, p := range pairs {
		lx := gen(t, m, p[0]).Latency
		ly := gen(t, m, p[1]).Latency
		merged := mkGroup(append(append([]circuit.Gate{}, p[0].Gates...), p[1].Gates...)...)
		lm := gen(t, m, merged).Latency
		if lm > lx+ly {
			t.Errorf("Obs1 violated: L(%s)=%.1f > %.1f+%.1f", merged.Describe(), lm, lx, ly)
		}
	}
}

func TestModelThreeCXMakeCheapSwap(t *testing.T) {
	// The QOC super-power the paper leans on: 3 sequential CX on one pair
	// compose into a SWAP whose pulse is far below 3 CX pulses.
	m := NewModel()
	cx := gen(t, m, mkGroup(circuit.Gate{Name: "cx", Qubits: []int{0, 1}})).Latency
	three := mkGroup(
		circuit.Gate{Name: "cx", Qubits: []int{0, 1}},
		circuit.Gate{Name: "cx", Qubits: []int{1, 0}},
		circuit.Gate{Name: "cx", Qubits: []int{0, 1}},
	)
	merged := gen(t, m, three).Latency
	if merged > 1.6*cx {
		t.Errorf("merged 3xCX latency %.1f should be ≈ one SWAP (~1.2 CX), got vs CX=%.1f", merged, cx)
	}
	if merged > 3*cx*0.6 {
		t.Errorf("merged 3xCX latency %.1f not well below 3·CX=%.1f", merged, 3*cx)
	}
}

func TestModelObservation2WidthMonotone(t *testing.T) {
	// Observation 2: wider groups cost more (on representative gates).
	m := NewModel()
	l1 := gen(t, m, mkGroup(circuit.Gate{Name: "h", Qubits: []int{0}})).Latency
	l2 := gen(t, m, mkGroup(circuit.Gate{Name: "cx", Qubits: []int{0, 1}})).Latency
	l3 := gen(t, m, mkGroup(circuit.Gate{Name: "ccx", Qubits: []int{0, 1, 2}})).Latency
	if !(l1 < l2 && l2 < l3) {
		t.Errorf("width monotonicity broken: %g, %g, %g", l1, l2, l3)
	}
}

func TestModelDeterminism(t *testing.T) {
	a := NewModel()
	b := NewModel()
	g := mkGroup(
		circuit.Gate{Name: "h", Qubits: []int{0}},
		circuit.Gate{Name: "cx", Qubits: []int{0, 1}},
		circuit.Gate{Name: "rz", Params: []float64{0.3}, Qubits: []int{1}},
	)
	ga := gen(t, a, g)
	gb := gen(t, b, g)
	if ga.Latency != gb.Latency || ga.Error != gb.Error || ga.Cost != gb.Cost {
		t.Error("model is not deterministic across instances")
	}
}

func TestModelCacheAndCost(t *testing.T) {
	m := NewModel()
	g := mkGroup(circuit.Gate{Name: "cx", Qubits: []int{0, 1}})
	first := gen(t, m, g)
	if first.CacheHit || first.Cost <= 0 {
		t.Error("first generation should miss with positive cost")
	}
	second := gen(t, m, g)
	if !second.CacheHit || second.Cost != 0 {
		t.Error("second generation should be a free cache hit")
	}
}

func TestModelFidelityContract(t *testing.T) {
	m := NewModel()
	g := gen(t, m, mkGroup(circuit.Gate{Name: "cx", Qubits: []int{0, 1}}))
	if g.Fidelity < 0.999 {
		t.Errorf("fidelity %.6f below target", g.Fidelity)
	}
	if math.Abs(g.Error-(1-g.Fidelity)) > 1e-12 {
		t.Error("Error != 1 - Fidelity")
	}
}

func TestModelRelayPenalty(t *testing.T) {
	// A 3-qubit group whose heavy pair is not device-coupled should cost
	// more than the same group on a fully-coupled device.
	gates := []circuit.Gate{
		{Name: "cx", Qubits: []int{0, 2}},
		{Name: "cx", Qubits: []int{0, 1}},
		{Name: "cx", Qubits: []int{1, 2}},
	}
	full := NewModel() // nil topo → all coupled
	lFull := gen(t, full, mkGroup(gates...)).Latency

	line := NewModel()
	line.Topo = topology.Line(3) // 0-1-2: pair (0,2) uncoupled
	lLine := gen(t, line, mkGroup(gates...)).Latency
	if lLine <= lFull {
		t.Errorf("relay penalty missing: line %.1f <= full %.1f", lLine, lFull)
	}
}

func TestModelRejectsWideGroups(t *testing.T) {
	m := NewModel()
	g := mkGroup(
		circuit.Gate{Name: "cx", Qubits: []int{0, 1}},
		circuit.Gate{Name: "cx", Qubits: []int{2, 3}},
	)
	if _, err := m.GenerateCtx(context.Background(), g, 0.999); err == nil {
		t.Error("4-qubit group should be rejected")
	}
}

func TestModelIdentityGroupNearFree(t *testing.T) {
	m := NewModel()
	g := mkGroup(
		circuit.Gate{Name: "cx", Qubits: []int{0, 1}},
		circuit.Gate{Name: "cx", Qubits: []int{0, 1}},
	)
	if lat := gen(t, m, g).Latency; lat > 20 {
		t.Errorf("CX·CX = identity should be near-free, got %.1f dt", lat)
	}
}

func BenchmarkWeylCoordinatesCX(b *testing.B) {
	u := quantum.MatCX
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := WeylCoordinates(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelGenerate(b *testing.B) {
	g := mkGroup(
		circuit.Gate{Name: "h", Qubits: []int{0}},
		circuit.Gate{Name: "cx", Qubits: []int{0, 1}},
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewModel()
		if _, err := m.GenerateCtx(context.Background(), g, 0.999); err != nil {
			b.Fatal(err)
		}
	}
}

func TestModelPermutedHitLatencyIsGatePure(t *testing.T) {
	// cx(0,1) and cx(1,0) are permutation twins: generating one and then
	// requesting the other must return exactly what a fresh model computes
	// for the request, not the stored twin's estimate — otherwise the
	// reported latency would depend on generation order, which is
	// scheduling-dependent under the worker pool.
	shared := NewModel()
	gen(t, shared, mkGroup(circuit.Gate{Name: "cx", Qubits: []int{0, 1}}))
	hit := gen(t, shared, mkGroup(circuit.Gate{Name: "cx", Qubits: []int{1, 0}}))
	if !hit.CacheHit || hit.Cost != 0 {
		t.Fatal("expected a permuted cache hit")
	}
	fresh := gen(t, NewModel(), mkGroup(circuit.Gate{Name: "cx", Qubits: []int{1, 0}}))
	if hit.Latency != fresh.Latency || hit.Error != fresh.Error {
		t.Errorf("permuted hit echoed the stored twin: hit %v/%v, fresh %v/%v",
			hit.Latency, hit.Error, fresh.Latency, fresh.Error)
	}
}
