// Package latency provides the analytical pulse-latency model of §III-B:
// a fast, deterministic surrogate for GRAPE that obeys the paper's
// Observations 1 and 2 and is calibrated against the real optimizer in
// internal/grape. Its core is the Weyl-chamber (canonical) decomposition of
// two-qubit unitaries, from which the minimum XY-interaction time follows:
// under a bounded flip-flop coupling g(XX+YY)/2 with fast local drives, a
// class (c1 ≥ c2 ≥ c3) needs interaction time (2·c1 + c3)/g — π/(2g) for
// CX and iSWAP, 3π/(4g) for SWAP — which matches our GRAPE measurements.
package latency

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"paqoc/internal/linalg"
)

// magicBasis is the Bell ("magic") basis transform M: canonical two-qubit
// gates are diagonal in this basis, so the spectrum of (M†UM)ᵀ(M†UM) is a
// local-gate invariant that pins down the Weyl coordinates.
var magicBasis = func() *linalg.Matrix {
	s := complex(1/math.Sqrt2, 0)
	i := complex(0, 1/math.Sqrt2)
	return linalg.FromRows([][]complex128{
		{s, 0, 0, i},
		{0, i, s, 0},
		{0, i, -s, 0},
		{s, 0, 0, -i},
	})
}()

// WeylCoordinates returns the canonical-class coordinates (c1 ≥ c2 ≥ c3,
// each in [0, π/2]) of a 4×4 unitary: u is locally equivalent to
// exp(-i(c1·XX + c2·YY + c3·ZZ)). Among spectrum-consistent chamber points
// it returns the one with the smallest XY-interaction time, which is the
// quantity the latency model consumes.
func WeylCoordinates(u *linalg.Matrix) ([3]float64, error) {
	if u.Rows != 4 || u.Cols != 4 {
		return [3]float64{}, fmt.Errorf("latency: WeylCoordinates wants a 4x4 unitary, got %dx%d", u.Rows, u.Cols)
	}
	// Normalize to SU(4).
	det := det4(u)
	if cmplx.Abs(det) < 1e-9 {
		return [3]float64{}, fmt.Errorf("latency: matrix is singular")
	}
	su := u.Scale(1 / phaseRoot4(det))

	ub := magicBasis.Dagger().Mul(su).Mul(magicBasis)
	m := ub.Transpose().Mul(ub)
	eig, err := eigenvalues4(m)
	if err != nil {
		return [3]float64{}, err
	}
	want := sortedPhases(eig)

	// Search the Weyl chamber for coordinates whose canonical spectrum
	// {exp(-2iλ_k(c))} matches, where the λ's are the Bell-state
	// eigenvalues of c1·XX + c2·YY + c3·ZZ.
	best := [3]float64{}
	bestScore := math.Inf(1)
	bestTime := math.Inf(1)
	evaluate := func(c [3]float64) {
		score := spectrumDistance(c, want)
		t := 2*c[0] + c[2] // interaction-time objective, c sorted desc
		const tol = 1e-4
		if score < bestScore-tol || (score < bestScore+tol && t < bestTime) {
			if score < bestScore {
				bestScore = score
			}
			best, bestTime = c, t
		}
	}

	const steps = 24
	for i := 0; i <= steps; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= j; k++ {
				c := [3]float64{
					float64(i) * math.Pi / 2 / steps,
					float64(j) * math.Pi / 2 / steps,
					float64(k) * math.Pi / 2 / steps,
				}
				evaluate(c)
			}
		}
	}
	// Two refinement sweeps around the incumbent.
	span := math.Pi / 2 / steps
	for pass := 0; pass < 3; pass++ {
		base := best
		for di := -4; di <= 4; di++ {
			for dj := -4; dj <= 4; dj++ {
				for dk := -4; dk <= 4; dk++ {
					c := [3]float64{
						clampChamber(base[0] + float64(di)*span/4),
						clampChamber(base[1] + float64(dj)*span/4),
						clampChamber(base[2] + float64(dk)*span/4),
					}
					sort.Sort(sort.Reverse(sort.Float64Slice(c[:])))
					evaluate(c)
				}
			}
		}
		span /= 4
	}
	if bestScore > 0.05 {
		return best, fmt.Errorf("latency: Weyl search residual %.4f too large (non-unitary input?)", bestScore)
	}
	return best, nil
}

// InteractionTime returns the minimum XY-coupling time, in units of 1/g,
// needed to realize the canonical class c (sorted descending): 2·c1 + c3.
func InteractionTime(c [3]float64) float64 { return 2*c[0] + c[2] }

// LocalContent measures how unbalanced the class is between the two
// XY-native axes; classes with c1 ≠ c2 need echo sequences with extra
// local rotations (CX does, iSWAP does not).
func LocalContent(c [3]float64) float64 { return c[0] - c[1] }

func clampChamber(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > math.Pi/2 {
		return math.Pi / 2
	}
	return v
}

// spectrumDistance compares the canonical spectrum of c against the target
// phases, minimizing over the four global-phase rotations i^k.
func spectrumDistance(c [3]float64, want []float64) float64 {
	l1 := c[0] - c[1] + c[2]
	l2 := -c[0] + c[1] + c[2]
	l3 := c[0] + c[1] - c[2]
	l4 := -(c[0] + c[1] + c[2])
	base := []float64{-2 * l1, -2 * l2, -2 * l3, -2 * l4}
	bestD := math.Inf(1)
	// The SU(4) representative is fixed up to a factor i^k, so m is fixed
	// up to (i^k)² = ±1: allow only the two sign rotations (allowing all
	// four would conflate e.g. SWAP with the identity class).
	for k := 0; k < 2; k++ {
		shift := float64(k) * math.Pi
		got := make([]float64, 4)
		for i, p := range base {
			got[i] = normAngle(p + shift)
		}
		sort.Float64s(got)
		if d := phaseSetDistance(got, want); d < bestD {
			bestD = d
		}
	}
	return bestD
}

// phaseSetDistance sums squared chord distances between two sorted phase
// multisets, minimizing over cyclic alignment (phases wrap at ±π).
func phaseSetDistance(a, b []float64) float64 {
	best := math.Inf(1)
	n := len(a)
	for off := 0; off < n; off++ {
		var s float64
		for i := 0; i < n; i++ {
			d := 2 * math.Sin(normAngle(a[(i+off)%n]-b[i])/2)
			s += d * d
		}
		if s < best {
			best = s
		}
	}
	return best
}

func normAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

func sortedPhases(eig []complex128) []float64 {
	out := make([]float64, len(eig))
	for i, v := range eig {
		out[i] = cmplx.Phase(v)
	}
	sort.Float64s(out)
	return out
}

// phaseRoot4 returns a fourth root of z with |z| folded in, used for SU(4)
// normalization.
func phaseRoot4(z complex128) complex128 {
	r := math.Pow(cmplx.Abs(z), 0.25)
	return cmplx.Rect(r, cmplx.Phase(z)/4)
}

// det4 computes the determinant of a 4×4 matrix by cofactor expansion.
func det4(m *linalg.Matrix) complex128 {
	at := func(r, c int) complex128 { return m.At(r, c) }
	det3 := func(r0, r1, r2, c0, c1, c2 int) complex128 {
		return at(r0, c0)*(at(r1, c1)*at(r2, c2)-at(r1, c2)*at(r2, c1)) -
			at(r0, c1)*(at(r1, c0)*at(r2, c2)-at(r1, c2)*at(r2, c0)) +
			at(r0, c2)*(at(r1, c0)*at(r2, c1)-at(r1, c1)*at(r2, c0))
	}
	return at(0, 0)*det3(1, 2, 3, 1, 2, 3) -
		at(0, 1)*det3(1, 2, 3, 0, 2, 3) +
		at(0, 2)*det3(1, 2, 3, 0, 1, 3) -
		at(0, 3)*det3(1, 2, 3, 0, 1, 2)
}

// eigenvalues4 finds the eigenvalues of a 4×4 complex matrix via its
// characteristic polynomial (Faddeev–LeVerrier) and Durand–Kerner root
// iteration. Adequate for the unitary inputs used here.
func eigenvalues4(m *linalg.Matrix) ([]complex128, error) {
	// Faddeev–LeVerrier: p(x) = x⁴ + c3x³ + c2x² + c1x + c0.
	i4 := linalg.Identity(4)
	m1 := m.Clone()
	c3 := -m1.Trace()
	m2 := m.Mul(m1.Add(i4.Scale(c3)))
	c2 := -m2.Trace() / 2
	m3 := m.Mul(m2.Add(i4.Scale(c2)))
	c1 := -m3.Trace() / 3
	m4 := m.Mul(m3.Add(i4.Scale(c1)))
	c0 := -m4.Trace() / 4

	p := func(x complex128) complex128 {
		return (((x+c3)*x+c2)*x+c1)*x + c0
	}
	// Durand–Kerner with the standard (0.4+0.9i)^k seeds.
	roots := make([]complex128, 4)
	seed := complex(0.4, 0.9)
	roots[0] = seed
	for i := 1; i < 4; i++ {
		roots[i] = roots[i-1] * seed
	}
	for iter := 0; iter < 200; iter++ {
		maxStep := 0.0
		for i := range roots {
			den := complex(1, 0)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if cmplx.Abs(den) < 1e-18 {
				roots[i] += complex(1e-6, 1e-6)
				continue
			}
			step := p(roots[i]) / den
			roots[i] -= step
			if s := cmplx.Abs(step); s > maxStep {
				maxStep = s
			}
		}
		if maxStep < 1e-13 {
			return roots, nil
		}
	}
	// Verify residuals rather than failing on slow convergence.
	for _, r := range roots {
		if cmplx.Abs(p(r)) > 1e-6 {
			return nil, fmt.Errorf("latency: eigenvalue iteration did not converge")
		}
	}
	return roots, nil
}
