package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"paqoc/internal/api"
	"paqoc/internal/obs"
)

// handleJobEvents streams a job's event ring as Server-Sent Events:
//
//	id: <seq>
//	event: stage | convergence | state
//	data: <obs.Event as JSON>
//
// The retained history is replayed first (a subscriber joining mid-job
// sees every stage it missed, up to the ring's capacity), then live
// events as they happen. When the job reaches a terminal state the stream
// ends with an "event: done" sentinel and a clean close — clients consume
// it with `curl -N` or EventSource. Jobs past retention return 404.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		api.WriteError(w, http.StatusNotFound, api.CodeJobNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		api.WriteError(w, http.StatusInternalServerError, api.CodeStreamUnsupported, "streaming unsupported")
		return
	}
	// Subscribe before writing headers: history and the live channel are
	// taken atomically, so no event falls between replay and stream.
	history, live, cancel := j.events.Subscribe(128)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	for _, ev := range history {
		if writeSSE(w, ev) != nil {
			return
		}
	}
	flusher.Flush()

	for {
		select {
		case ev, open := <-live:
			if !open {
				// The ring closed: the job is terminal and every event has
				// been delivered.
				fmt.Fprint(w, "event: done\ndata: {}\n\n")
				flusher.Flush()
				return
			}
			if writeSSE(w, ev) != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one event as an SSE frame.
func writeSSE(w io.Writer, ev obs.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}
