package server

import (
	"context"
	"fmt"
	"time"

	"paqoc/internal/api"
	"paqoc/internal/bench"
	"paqoc/internal/circuit"
	"paqoc/internal/grape"
	"paqoc/internal/miner"
	"paqoc/internal/obs"
	"paqoc/internal/paqoc"
	"paqoc/internal/pulse"
	"paqoc/internal/qasm"
	"paqoc/internal/route"
	"paqoc/internal/transpile"
)

// parseSource validates the request and parses its circuit source.
func parseSource(req *api.CompileRequest) (*circuit.Circuit, error) {
	n := 0
	for _, set := range []bool{req.QASM != "", req.Circuit != "", req.Bench != ""} {
		if set {
			n++
		}
	}
	if n != 1 {
		return nil, fmt.Errorf("exactly one of qasm, circuit, bench must be set")
	}
	switch {
	case req.QASM != "":
		return qasm.Parse(req.QASM)
	case req.Circuit != "":
		return circuit.Parse(req.Circuit)
	default:
		spec, ok := bench.ByName(req.Bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", req.Bench)
		}
		return spec.Build(), nil
	}
}

// compile runs the full pipeline for one job. The context carries the
// job's deadline and the server's shared metrics registry plus a fresh
// per-request tracer, whose per-stage summary lands in the result.
func (s *Server) compile(ctx context.Context, j *Job) (*api.Result, error) {
	tracer := obs.NewTracer()
	o := &obs.Obs{Metrics: s.reg, Tracer: tracer}
	ctx = o.Attach(ctx)
	// The job's event ring and a job-scoped logger ride the context into
	// the pipeline: paqoc stages and GRAPE convergence samples publish to
	// the ring (served live by GET /v1/jobs/{id}/events), and pipeline code
	// can log with the job_id field already bound.
	ctx = obs.WithEvents(ctx, j.events)
	ctx = obs.WithLogger(ctx, s.cfg.Logger.With("job_id", j.ID))
	ctx, span := obs.StartSpan(ctx, "server.job")
	span.SetAttr("job", j.ID)

	req := j.req
	logical := j.logical
	topo := j.profile.Topology()
	db := s.dbFor(j.profile)
	_, routeSpan := obs.StartSpan(ctx, "server.route")
	routeStart := time.Now()
	phys, routeRes, err := transpile.ToPhysical(logical, topo, route.DefaultOptions())
	j.events.PublishStage("route", time.Since(routeStart))
	routeSpan.End()
	if err != nil {
		span.End()
		return nil, err
	}
	if s.miner != nil {
		// Feed the offline miner the physical circuit — the same form the
		// compile-time APA pass mines, so cross-request patterns share
		// canonical signatures with per-request ones. Non-blocking.
		s.miner.Observe(miner.Backend{
			Profile: j.profile,
			DB:      db,
			Remote:  s.remoteFor(j.profile),
		}, phys)
	}

	cfg := paqoc.DefaultConfig()
	cfg.ProbeCaseII = false
	cfg.Workers = s.jobWorkers(req)
	if req.MaxN > 0 {
		cfg.MaxN = req.MaxN
	}
	if req.Fidelity > 0 {
		cfg.FidelityTarget = req.Fidelity
	}
	if req.APA {
		cfg.M = paqoc.MInf
	}
	if req.MinSupport > 0 {
		cfg.MinSupport = req.MinSupport
		cfg.Mining.MinSupport = req.MinSupport
	}

	var gen pulse.Generator
	if req.Grape {
		gopts := grape.DefaultOptions()
		gopts.Workers = s.cfg.GrapeWorkers
		g := grape.NewGenerator(gopts)
		g.Topo = topo
		g.DB = db // shared warm database: cross-request hits and dedups
		g.System = j.profile.SystemBuilder()
		// In a multi-replica deployment, true misses consult the key's
		// owner replica before optimizing, and fresh pulses are published
		// back to it (nil outside a cluster).
		g.Remote = s.remoteFor(j.profile)
		gen = g
	}
	comp := paqoc.NewForProfile(gen, j.profile, cfg)
	res, err := comp.CompileCtx(ctx, phys)
	span.End()
	if err != nil {
		return nil, err
	}

	out := &api.Result{
		Qubits:           logical.NumQubits,
		LogicalGates:     len(logical.Gates),
		PhysicalGates:    len(phys.Gates),
		Swaps:            routeRes.SwapCount,
		Blocks:           res.NumBlocks,
		APAPatterns:      len(res.APASelections),
		LatencyDt:        res.Latency,
		InitialLatencyDt: res.InitialLatency,
		ESP:              res.ESP,
		CompileCostSec:   res.CompileCost,
		OfflineCostSec:   res.OfflineCost,
		WallMs:           float64(res.WallTime) / float64(time.Millisecond),
		DBEntries:        db.Len(),
	}
	if res.InitialLatency > 0 {
		out.ReductionPct = 100 * (1 - res.Latency/res.InitialLatency)
	}
	for _, b := range res.Blocks.Blocks {
		gr := api.GateResult{
			Gate:   b.Custom().Describe(),
			Qubits: b.Qubits,
			APA:    b.APA,
		}
		if b.Gen != nil {
			gr.LatencyDt = b.Gen.Latency
			gr.Fidelity = b.Gen.Fidelity
			gr.CacheHit = b.Gen.CacheHit
			if req.IncludeSchedules {
				gr.Schedule = b.Gen.Schedule
			}
		}
		out.Gates = append(out.Gates, gr)
	}
	for _, st := range tracer.Summary() {
		out.Stages = append(out.Stages, api.Stage{
			Stage: st.Path,
			Count: st.Count,
			Ms:    float64(st.Total) / float64(time.Millisecond),
		})
	}
	return out, nil
}
