package server

import (
	"context"
	"fmt"
	"time"

	"paqoc/internal/bench"
	"paqoc/internal/circuit"
	"paqoc/internal/grape"
	"paqoc/internal/obs"
	"paqoc/internal/paqoc"
	"paqoc/internal/pulse"
	"paqoc/internal/qasm"
	"paqoc/internal/route"
	"paqoc/internal/transpile"
)

// Request is the POST /v1/compile body. Exactly one circuit source (qasm,
// circuit, bench) must be set; the remaining knobs mirror the CLI's APA /
// GRAPE / fidelity / deadline surface.
type Request struct {
	// QASM is OpenQASM 2.0 source.
	QASM string `json:"qasm,omitempty"`
	// Circuit is the native text circuit format (circuit.Parse).
	Circuit string `json:"circuit,omitempty"`
	// Bench names a built-in Table I benchmark.
	Bench string `json:"bench,omitempty"`

	// Backend names the device profile to compile against (a registered
	// profile or a dynamic name like "xy-grid-3x4"); empty selects the
	// server's default backend. Unknown names are rejected with 400.
	Backend string `json:"backend,omitempty"`

	// APA enables the frequent-subcircuit miner (paqoc(M=inf)); off
	// compiles with customized gates only (paqoc(M=0)).
	APA bool `json:"apa,omitempty"`
	// Grape emits final pulses with the real optimizer against the
	// server's shared warm pulse database; off uses the calibrated
	// analytical model.
	Grape bool `json:"grape,omitempty"`
	// Fidelity is the per-gate target (default 0.999).
	Fidelity float64 `json:"fidelity,omitempty"`
	// TimeoutMs bounds the job's run time; 0 selects the server default.
	// The deadline is threaded as a context deadline into the GRAPE and
	// simulator hot loops, so an expired job releases its worker promptly.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Mode forces "sync" or "async"; "" / "auto" picks sync for circuits at
	// or under the server's sync gate limit.
	Mode string `json:"mode,omitempty"`
	// MaxN caps customized-gate width (default 3).
	MaxN int `json:"max_n,omitempty"`
	// Workers is the intra-job pulse-generation pool width (default 1:
	// cross-request parallelism comes from the server's own worker pool).
	Workers int `json:"workers,omitempty"`
	// IncludeSchedules attaches per-gate pulse schedules (ScheduleJSON) to
	// the result. Off by default: schedules dominate response size.
	IncludeSchedules bool `json:"include_schedules,omitempty"`
}

// parseSource validates the request and parses its circuit source.
func parseSource(req *Request) (*circuit.Circuit, error) {
	n := 0
	for _, set := range []bool{req.QASM != "", req.Circuit != "", req.Bench != ""} {
		if set {
			n++
		}
	}
	if n != 1 {
		return nil, fmt.Errorf("exactly one of qasm, circuit, bench must be set")
	}
	switch {
	case req.QASM != "":
		return qasm.Parse(req.QASM)
	case req.Circuit != "":
		return circuit.Parse(req.Circuit)
	default:
		spec, ok := bench.ByName(req.Bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", req.Bench)
		}
		return spec.Build(), nil
	}
}

// Result is a finished compilation: the latency/fidelity summary, the
// per-customized-gate breakdown (with ScheduleJSON payloads on request),
// and the job's request-scoped per-stage timing.
type Result struct {
	Qubits           int     `json:"qubits"`
	LogicalGates     int     `json:"logical_gates"`
	PhysicalGates    int     `json:"physical_gates"`
	Swaps            int     `json:"swaps"`
	Blocks           int     `json:"blocks"`
	APAPatterns      int     `json:"apa_patterns,omitempty"`
	LatencyDt        float64 `json:"latency_dt"`
	InitialLatencyDt float64 `json:"initial_latency_dt"`
	ReductionPct     float64 `json:"reduction_pct"`
	ESP              float64 `json:"esp"`
	CompileCostSec   float64 `json:"compile_cost_sec"`
	OfflineCostSec   float64 `json:"offline_cost_sec,omitempty"`
	WallMs           float64 `json:"wall_ms"`
	// DBEntries is the shared pulse database size after this job — the
	// warmth the next request inherits.
	DBEntries int `json:"db_entries"`

	Gates  []GateResult `json:"gates,omitempty"`
	Stages []Stage      `json:"stages,omitempty"`
}

// GateResult is one customized gate of the output.
type GateResult struct {
	Gate      string          `json:"gate"`
	Qubits    []int           `json:"qubits"`
	APA       bool            `json:"apa,omitempty"`
	LatencyDt float64         `json:"latency_dt"`
	Fidelity  float64         `json:"fidelity"`
	CacheHit  bool            `json:"cache_hit,omitempty"`
	Schedule  *pulse.Schedule `json:"schedule,omitempty"`
}

// Stage is one aggregated span path from the job's request-scoped tracer.
type Stage struct {
	Stage string  `json:"stage"`
	Count int     `json:"count"`
	Ms    float64 `json:"ms"`
}

// compile runs the full pipeline for one job. The context carries the
// job's deadline and the server's shared metrics registry plus a fresh
// per-request tracer, whose per-stage summary lands in the result.
func (s *Server) compile(ctx context.Context, j *Job) (*Result, error) {
	tracer := obs.NewTracer()
	o := &obs.Obs{Metrics: s.reg, Tracer: tracer}
	ctx = o.Attach(ctx)
	// The job's event ring and a job-scoped logger ride the context into
	// the pipeline: paqoc stages and GRAPE convergence samples publish to
	// the ring (served live by GET /v1/jobs/{id}/events), and pipeline code
	// can log with the job_id field already bound.
	ctx = obs.WithEvents(ctx, j.events)
	ctx = obs.WithLogger(ctx, s.cfg.Logger.With("job_id", j.ID))
	ctx, span := obs.StartSpan(ctx, "server.job")
	span.SetAttr("job", j.ID)

	req := j.req
	logical := j.logical
	topo := j.profile.Topology()
	db := s.dbFor(j.profile)
	_, routeSpan := obs.StartSpan(ctx, "server.route")
	routeStart := time.Now()
	phys, routeRes, err := transpile.ToPhysical(logical, topo, route.DefaultOptions())
	j.events.PublishStage("route", time.Since(routeStart))
	routeSpan.End()
	if err != nil {
		span.End()
		return nil, err
	}

	cfg := paqoc.DefaultConfig()
	cfg.ProbeCaseII = false
	cfg.Workers = s.jobWorkers(req)
	if req.MaxN > 0 {
		cfg.MaxN = req.MaxN
	}
	if req.Fidelity > 0 {
		cfg.FidelityTarget = req.Fidelity
	}
	if req.APA {
		cfg.M = paqoc.MInf
	}

	var gen pulse.Generator
	if req.Grape {
		g := grape.NewGenerator(grape.DefaultOptions())
		g.Topo = topo
		g.DB = db // shared warm database: cross-request hits and dedups
		g.System = j.profile.SystemBuilder()
		gen = g
	}
	comp := paqoc.NewForProfile(gen, j.profile, cfg)
	res, err := comp.CompileCtx(ctx, phys)
	span.End()
	if err != nil {
		return nil, err
	}

	out := &Result{
		Qubits:           logical.NumQubits,
		LogicalGates:     len(logical.Gates),
		PhysicalGates:    len(phys.Gates),
		Swaps:            routeRes.SwapCount,
		Blocks:           res.NumBlocks,
		APAPatterns:      len(res.APASelections),
		LatencyDt:        res.Latency,
		InitialLatencyDt: res.InitialLatency,
		ESP:              res.ESP,
		CompileCostSec:   res.CompileCost,
		OfflineCostSec:   res.OfflineCost,
		WallMs:           float64(res.WallTime) / float64(time.Millisecond),
		DBEntries:        db.Len(),
	}
	if res.InitialLatency > 0 {
		out.ReductionPct = 100 * (1 - res.Latency/res.InitialLatency)
	}
	for _, b := range res.Blocks.Blocks {
		gr := GateResult{
			Gate:   b.Custom().Describe(),
			Qubits: b.Qubits,
			APA:    b.APA,
		}
		if b.Gen != nil {
			gr.LatencyDt = b.Gen.Latency
			gr.Fidelity = b.Gen.Fidelity
			gr.CacheHit = b.Gen.CacheHit
			if req.IncludeSchedules {
				gr.Schedule = b.Gen.Schedule
			}
		}
		out.Gates = append(out.Gates, gr)
	}
	for _, st := range tracer.Summary() {
		out.Stages = append(out.Stages, Stage{
			Stage: st.Path,
			Count: st.Count,
			Ms:    float64(st.Total) / float64(time.Millisecond),
		})
	}
	return out, nil
}
