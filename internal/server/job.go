package server

import (
	"fmt"
	"sync"
	"time"

	"paqoc/internal/api"
	"paqoc/internal/circuit"
	"paqoc/internal/device"
	"paqoc/internal/obs"
)

// Job is one compilation request moving through the bounded queue. The
// request is parsed and validated before the job is created, so everything
// past Submit works on well-formed input.
type Job struct {
	ID string

	req      *api.CompileRequest
	logical  *circuit.Circuit
	profile  *device.Profile
	timeout  time.Duration
	priority string // "high" or "normal", validated at the handler

	mu        sync.Mutex
	state     api.JobState
	errMsg    string
	timedOut  bool
	canceled  bool
	result    *api.Result
	submitted time.Time
	started   time.Time
	finished  time.Time

	// done is closed exactly once when the job reaches a terminal state;
	// synchronous requests and pollers block on it.
	done chan struct{}

	// events is the job's bounded live stream: stage transitions, sampled
	// GRAPE convergence points, and state changes, served by
	// GET /v1/jobs/{id}/events. Closed when the job reaches a terminal
	// state so subscribers see a clean end of stream.
	events *obs.EventRing
}

// tenant is the submitting principal from the job's request ("" for
// anonymous traffic and request-less unit-test jobs).
func (j *Job) tenant() string {
	if j.req == nil {
		return ""
	}
	return j.req.Tenant
}

// backendName is the job's device profile name ("" for jobs created
// without one, e.g. in unit tests that never run the pipeline).
func (j *Job) backendName() string {
	if j.profile == nil {
		return ""
	}
	return j.profile.Name
}

// publishState stamps lifecycle events with the job's backend so SSE
// consumers see which device profile the job compiles against.
func (j *Job) publishState(state, errMsg string) {
	j.events.Publish(obs.Event{Type: obs.EventState, State: state, Err: errMsg, Backend: j.backendName()})
}

func (j *Job) start() {
	j.mu.Lock()
	j.state = api.StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.publishState(string(api.StateRunning), "")
}

// finish moves the job to its terminal state and releases waiters.
func (j *Job) finish(res *api.Result, err error, timedOut, canceled bool) {
	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = api.StateFailed
		j.errMsg = err.Error()
		j.timedOut = timedOut
		j.canceled = canceled
	} else {
		j.state = api.StateDone
		j.result = res
	}
	state, errMsg := string(j.state), j.errMsg
	j.mu.Unlock()
	j.publishState(state, errMsg)
	j.events.Close()
	close(j.done)
}

// status snapshots the job under its lock as its api.JobStatus wire form.
func (j *Job) status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := api.JobStatus{
		JobID:    j.ID,
		State:    j.state,
		Backend:  j.backendName(),
		Tenant:   j.tenant(),
		Priority: j.priority,
		Error:    j.errMsg,
		TimedOut: j.timedOut,
		Canceled: j.canceled,
		Result:   j.result,
	}
	switch j.state {
	case api.StateQueued:
		st.QueuedMs = msSince(j.submitted, time.Now())
	case api.StateRunning:
		st.QueuedMs = msSince(j.submitted, j.started)
		st.RunMs = msSince(j.started, time.Now())
	default:
		st.QueuedMs = msSince(j.submitted, j.started)
		st.RunMs = msSince(j.started, j.finished)
	}
	return st
}

func msSince(from, to time.Time) float64 {
	if from.IsZero() {
		return 0
	}
	return float64(to.Sub(from)) / float64(time.Millisecond)
}

// jobStore indexes jobs by ID and bounds memory: terminal jobs beyond the
// retention cap are evicted oldest-first, so a long-running server does not
// accumulate every result it ever produced.
type jobStore struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	retire []string // terminal job IDs, oldest first
	seq    uint64
	retain int
}

func newJobStore(retain int) *jobStore {
	return &jobStore{jobs: make(map[string]*Job), retain: retain}
}

// jobEventCapacity bounds each job's event ring: enough for every stage
// transition plus a sampled convergence curve per customized gate; beyond
// it the oldest events roll off.
const jobEventCapacity = 512

// add creates and registers a queued job for an already-parsed request,
// bound to its resolved device profile.
func (s *jobStore) add(req *api.CompileRequest, logical *circuit.Circuit, prof *device.Profile, timeout time.Duration) *Job {
	s.mu.Lock()
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("job-%06d", s.seq),
		req:       req,
		logical:   logical,
		profile:   prof,
		timeout:   timeout,
		priority:  normalizePriority(req.Priority),
		state:     api.StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
		events:    obs.NewEventRing(jobEventCapacity),
	}
	s.jobs[j.ID] = j
	s.mu.Unlock()
	j.publishState(string(api.StateQueued), "")
	return j
}

func (s *jobStore) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// remove deletes a job that never entered the queue (Submit failed).
// Such a job never reaches a terminal state, so retention-based eviction
// would never reclaim its request body and parsed circuit — under
// sustained overload that leak would defeat the bounded-memory design.
func (s *jobStore) remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
}

// retired records a terminal job for eviction, drops the oldest terminal
// jobs beyond the retention cap, and returns the evicted job IDs so the
// caller can log each eviction once.
func (s *jobStore) retired(j *Job) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retire = append(s.retire, j.ID)
	var evicted []string
	for len(s.retire) > s.retain {
		evicted = append(evicted, s.retire[0])
		delete(s.jobs, s.retire[0])
		s.retire = s.retire[1:]
	}
	return evicted
}

// normalizePriority folds the request's validated priority field onto its
// queue lane name.
func normalizePriority(p string) string {
	if p == "high" {
		return "high"
	}
	return "normal"
}
