package server

import (
	"paqoc/internal/api"

	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"paqoc/internal/obs"
)

// quiet silences service logs in tests (writing to the test log is unsafe
// from job goroutines that may outlive a failing test).
var quiet = obs.NewLogger(io.Discard, obs.LevelError)

// newTestServer builds and starts a server with test-friendly defaults.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quiet
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

const tinyCircuit = "qubits 2\ncx 0 1\n"

// postCompile posts a compile request and decodes the response body.
// Error-envelope responses ({"error":{code,message}}) fold into the
// returned status: the code lands in out.Error so callers can assert on
// it uniformly.
func postCompile(t *testing.T, ts *httptest.Server, req api.CompileRequest) (int, api.CompileResponse) {
	t.Helper()
	code, raw := postCompileRaw(t, ts, req)
	var out api.CompileResponse
	var env api.ErrorResponse
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		out.Error = env.Error.Code + ": " + env.Error.Message
		return code, out
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding response (HTTP %d): %v\n%s", code, err, raw)
	}
	return code, out
}

// postCompileRaw posts a compile request and returns the raw body.
func postCompileRaw(t *testing.T, ts *httptest.Server, req api.CompileRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// errorEnvelope decodes raw as the versioned error envelope, failing the
// test if the body has any other shape.
func errorEnvelope(t *testing.T, raw []byte) api.Error {
	t.Helper()
	var env struct {
		Error *api.Error `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil || env.Error.Code == "" {
		t.Fatalf("body is not an error envelope: %s", raw)
	}
	return *env.Error
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []api.CompileRequest{
		{},                                   // no source
		{Circuit: tinyCircuit, Bench: "qft"}, // two sources
		{Circuit: "qubits two"},              // malformed circuit
		{QASM: "OPENQASM 2.0; frobnicate;"},  // malformed qasm
		{Bench: "no-such-benchmark"},
		{Circuit: tinyCircuit, Mode: "sometimes"},
	}
	for i, req := range cases {
		code, _ := postCompile(t, ts, req)
		if code != http.StatusBadRequest {
			t.Errorf("case %d: HTTP %d, want 400", i, code)
		}
	}
}

// TestQueueFullBackpressure: with one worker wedged and a one-slot queue,
// the third job is rejected with 429 and a Retry-After hint.
func TestQueueFullBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	running := make(chan struct{}, 8)
	release := make(chan struct{})
	s.compileFn = func(ctx context.Context, j *Job) (*api.Result, error) {
		running <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &api.Result{}, nil
	}

	async := api.CompileRequest{Circuit: tinyCircuit, Mode: "async"}
	code, _ := postCompile(t, ts, async) // occupies the worker
	if code != http.StatusAccepted {
		t.Fatalf("first job: HTTP %d, want 202", code)
	}
	<-running
	code, _ = postCompile(t, ts, async) // occupies the queue slot
	if code != http.StatusAccepted {
		t.Fatalf("second job: HTTP %d, want 202", code)
	}

	body, _ := json.Marshal(async)
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third job: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if v := s.reg.Counter("server.rejected_queue_full").Value(); v != 1 {
		t.Errorf("server.rejected_queue_full = %d, want 1", v)
	}
	// The rejected job must not linger in the store: it never reaches a
	// terminal state, so leaving it would leak its request forever.
	s.jobs.mu.Lock()
	stored := len(s.jobs.jobs)
	s.jobs.mu.Unlock()
	if stored != 2 {
		t.Errorf("job store holds %d jobs after the 429, want 2 (rejected job leaked)", stored)
	}
	close(release)
}

// TestPanicIsolation: a panicking compilation fails its own job and the
// server keeps serving.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	s.compileFn = func(ctx context.Context, j *Job) (*api.Result, error) {
		if strings.Contains(j.req.Circuit, "# boom") {
			panic("synthetic compiler bug")
		}
		return &api.Result{Blocks: 1}, nil
	}

	code, out := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit + "# boom\n", Mode: "sync"})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("panicking job: HTTP %d, want 422", code)
	}
	if out.State != api.StateFailed || !strings.Contains(out.Error, "panicked") {
		t.Fatalf("panicking job status = %+v", out.JobStatus)
	}

	code, out = postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "sync"})
	if code != http.StatusOK || out.State != api.StateDone {
		t.Fatalf("server wedged after panic: HTTP %d, status %+v", code, out.JobStatus)
	}
	if v := s.reg.Counter("server.jobs_panicked").Value(); v != 1 {
		t.Errorf("server.jobs_panicked = %d, want 1", v)
	}
}

// TestAsyncJobLifecycle: an async submission is pollable through queued/
// running to done, and unknown job IDs 404.
func TestAsyncJobLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	s.compileFn = func(ctx context.Context, j *Job) (*api.Result, error) {
		<-release
		return &api.Result{Blocks: 3}, nil
	}

	code, out := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "async"})
	if code != http.StatusAccepted || out.Poll == "" {
		t.Fatalf("async submit: HTTP %d, %+v", code, out)
	}
	close(release)

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + out.Poll)
		if err != nil {
			t.Fatal(err)
		}
		var st api.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == api.StateDone {
			if st.Result == nil || st.Result.Blocks != 3 {
				t.Fatalf("done status carries no result: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestHealthAndReady: healthz is always 200; readyz flips to 503 once the
// server drains, and new submissions are refused with 503.
func TestHealthAndReady(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}
}

// TestDrainRefusesNewWork: after Shutdown begins, readyz serves 503 and
// compile requests are refused with 503.
func TestDrainRefusesNewWork(t *testing.T) {
	cfg := Config{Workers: 1, Logger: quiet}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while drained: %d, want 503", resp.StatusCode)
	}
	code, _ := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "async"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("compile while drained: HTTP %d, want 503", code)
	}
	// Idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDrainDeadlineCancelsStragglers: a job that only exits on ctx
// cancellation is cancelled when the drain deadline passes, and Shutdown
// reports the missed deadline.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	cfg := Config{Workers: 1, Logger: quiet}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	running := make(chan struct{})
	s.compileFn = func(ctx context.Context, j *Job) (*api.Result, error) {
		close(running)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	j := s.jobs.add(&api.CompileRequest{Circuit: tinyCircuit}, nil, s.profile, time.Hour)
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	<-running

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown met an unmeetable drain deadline without error")
	}
	<-j.done
	st := j.status()
	if st.State != api.StateFailed || !st.Canceled {
		t.Fatalf("straggler status = %+v, want failed+canceled", st)
	}
}

// TestSubmitDirectQueueFull exercises Submit without HTTP.
func TestSubmitDirectQueueFull(t *testing.T) {
	cfg := Config{Workers: 1, QueueDepth: 1, Logger: quiet}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No Start: nothing consumes the queue, so the single slot fills.
	j1 := s.jobs.add(&api.CompileRequest{}, nil, s.profile, time.Second)
	if err := s.Submit(j1); err != nil {
		t.Fatal(err)
	}
	j2 := s.jobs.add(&api.CompileRequest{}, nil, s.profile, time.Second)
	if err := s.Submit(j2); err != ErrQueueFull {
		t.Fatalf("Submit on full queue = %v, want ErrQueueFull", err)
	}
}

// TestJobRetention: finished jobs beyond the cap are evicted oldest-first.
func TestJobRetention(t *testing.T) {
	store := newJobStore(2)
	var ids []string
	for i := 0; i < 4; i++ {
		j := store.add(&api.CompileRequest{}, nil, nil, time.Second)
		j.finish(&api.Result{}, nil, false, false)
		store.retired(j)
		ids = append(ids, j.ID)
	}
	for _, id := range ids[:2] {
		if _, ok := store.get(id); ok {
			t.Errorf("job %s not evicted", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := store.get(id); !ok {
			t.Errorf("job %s evicted too early", id)
		}
	}
}

func TestPickMode(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, SyncGateLimit: 10})
	for _, tc := range []struct {
		mode  string
		gates int
		sync  bool
	}{
		{"sync", 1000, true},
		{"async", 1, false},
		{"", 10, true},
		{"", 11, false},
		{"auto", 3, true},
	} {
		sync, err := s.pickMode(&api.CompileRequest{Mode: tc.mode}, tc.gates)
		if err != nil || sync != tc.sync {
			t.Errorf("pickMode(%q, %d) = %v, %v; want %v", tc.mode, tc.gates, sync, err, tc.sync)
		}
	}
	if _, err := s.pickMode(&api.CompileRequest{Mode: "nope"}, 1); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestJobTimeoutClamp(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, DefaultTimeout: 7 * time.Second, MaxTimeout: 30 * time.Second})
	if d := s.jobTimeout(&api.CompileRequest{}); d != 7*time.Second {
		t.Errorf("default timeout = %v", d)
	}
	if d := s.jobTimeout(&api.CompileRequest{TimeoutMs: 1000}); d != time.Second {
		t.Errorf("requested timeout = %v", d)
	}
	if d := s.jobTimeout(&api.CompileRequest{TimeoutMs: int64(time.Hour / time.Millisecond)}); d != 30*time.Second {
		t.Errorf("clamped timeout = %v", d)
	}
}

// TestJobWorkersClamp: the client's intra-job pool width is clamped to
// the configured maximum, like deadlines — no client-controlled
// resource amplification.
func TestJobWorkersClamp(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, MaxJobWorkers: 4})
	if n := s.jobWorkers(&api.CompileRequest{}); n != 0 {
		t.Errorf("default workers = %d, want 0 (pipeline default)", n)
	}
	if n := s.jobWorkers(&api.CompileRequest{Workers: 3}); n != 3 {
		t.Errorf("requested workers = %d, want 3", n)
	}
	if n := s.jobWorkers(&api.CompileRequest{Workers: 10000}); n != 4 {
		t.Errorf("clamped workers = %d, want 4", n)
	}
}

// TestFailureAtDeadlineIsFailure: a genuine compilation failure that
// returns only after the job deadline expired is classified from its own
// error chain — a 422 failure, not a 504 timeout.
func TestFailureAtDeadlineIsFailure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.compileFn = func(ctx context.Context, j *Job) (*api.Result, error) {
		<-ctx.Done() // let the deadline fire first
		return nil, errors.New("fidelity below target at max duration")
	}
	code, out := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "sync", TimeoutMs: 5})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("failure at deadline: HTTP %d (%+v), want 422", code, out.JobStatus)
	}
	if out.State != api.StateFailed || out.TimedOut || out.Canceled {
		t.Fatalf("status = %+v, want plain failure", out.JobStatus)
	}
}

// TestMetricsEndpoint: both formats serve, and preregistered names are
// present so the schema is stable from the first scrape.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"server.requests", "grape.db_hits", "pulse.db_dedups", "engine.completed"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q missing from /metrics", name)
		}
	}
	for _, name := range []string{"server.queue_len", "engine.active_workers"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %q missing from /metrics", name)
		}
	}

	resp2, err := http.Get(ts.URL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp2.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "server.requests") {
		t.Error("text metrics missing server.requests")
	}
}

// TestPprofGated: the unauthenticated profiling endpoints are off the
// public mux by default and mount only with EnablePprof.
func TestPprofGated(t *testing.T) {
	get := func(ts *httptest.Server) int {
		resp, err := http.Get(ts.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	_, off := newTestServer(t, Config{Workers: 1})
	if code := get(off); code != http.StatusNotFound {
		t.Fatalf("pprof on default mux: HTTP %d, want 404", code)
	}
	_, on := newTestServer(t, Config{Workers: 1, EnablePprof: true})
	if code := get(on); code != http.StatusOK {
		t.Fatalf("pprof with EnablePprof: HTTP %d, want 200", code)
	}
}
