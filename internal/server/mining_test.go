package server

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"paqoc/internal/api"
	"paqoc/internal/miner"
	"paqoc/internal/pulse"
)

// patternCircuit carries the same 2-gate pattern twice, so both the
// per-request APA pass (MinSupport 2 within one circuit) and the miner's
// cross-request table surface it.
const patternCircuit = "qubits 2\ncx 0 1\ncx 1 0\ncx 0 1\ncx 1 0\n"

// TestE2EMiningTwoPassReplay is the offline-mining payoff test: replaying
// yesterday's traffic (pass one, cold) trains the miner; after one idle
// mining run, the same traffic (pass two) hits pre-generated pulses —
// miner.pregen_hits goes positive and pass two pays strictly fewer GRAPE
// cold starts than pass one.
func TestE2EMiningTwoPassReplay(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 2, GridRows: 1, GridCols: 2,
		MineInterval:   time.Hour, // driven manually via RunOnce
		MineMinSupport: 2, MineBudget: 8,
	})
	if s.Miner() == nil {
		t.Fatal("MineInterval > 0 did not enable the miner")
	}
	req := api.CompileRequest{Circuit: patternCircuit, Grape: true, APA: true, Mode: "sync", TimeoutMs: 120_000}

	before := metricsSnapshot(t, ts.URL)
	for i := 0; i < 2; i++ {
		if code, out := postCompile(t, ts, req); code != http.StatusOK {
			t.Fatalf("pass one request %d: HTTP %d: %+v", i, code, out.JobStatus)
		}
	}
	afterPass1 := metricsSnapshot(t, ts.URL)
	pass1Cold := afterPass1["grape.generated"] - before["grape.generated"]
	if pass1Cold == 0 {
		t.Fatal("pass one paid no GRAPE cold starts — nothing for the miner to save")
	}

	// One idle mining run: the sync jobs are done, so the queue is idle and
	// the compile-path observations fold and pre-generate.
	s.Miner().RunOnce(context.Background())
	afterMine := metricsSnapshot(t, ts.URL)
	if afterMine["miner.pregenerated"] == 0 {
		t.Fatal("idle run pre-generated nothing despite a frequent pattern")
	}
	if afterMine["miner.idle_runs"] == 0 {
		t.Error("miner.idle_runs stayed 0")
	}

	for i := 0; i < 2; i++ {
		if code, out := postCompile(t, ts, req); code != http.StatusOK {
			t.Fatalf("pass two request %d: HTTP %d: %+v", i, code, out.JobStatus)
		}
	}
	afterPass2 := metricsSnapshot(t, ts.URL)
	pass2Cold := afterPass2["grape.generated"] - afterMine["grape.generated"]
	if pass2Cold >= pass1Cold {
		t.Errorf("pass two cold starts = %d, want strictly fewer than pass one's %d", pass2Cold, pass1Cold)
	}

	// Reconcile pre-generation hits (Status does it inline) and confirm the
	// replay traffic used the pre-generated entries.
	st := s.Miner().Status()
	if st.PregenHits == 0 {
		t.Errorf("miner.pregen_hits = 0 after replaying the mined traffic; status = %+v", st)
	}
	if st.CorpusCircuits == 0 || st.PatternsTracked == 0 {
		t.Errorf("status reports empty corpus/patterns after 4 requests: %+v", st)
	}
}

// TestE2EMiningStatusEndpoint: the status resource serves the wire type
// when mining is enabled and the standard 404 envelope when not.
func TestE2EMiningStatusEndpoint(t *testing.T) {
	_, off := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(off.URL + "/v1/mining/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled miner: HTTP %d, want 404", resp.StatusCode)
	}
	var env api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != api.CodeNotFound {
		t.Fatalf("disabled miner envelope = %+v (err %v), want code %q", env, err, api.CodeNotFound)
	}

	_, on := newTestServer(t, Config{Workers: 1, MineInterval: time.Hour})
	resp2, err := http.Get(on.URL + "/v1/mining/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("enabled miner: HTTP %d, want 200", resp2.StatusCode)
	}
	var st api.MiningStatus
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.IntervalMs != time.Hour.Milliseconds() {
		t.Errorf("status = %+v", st)
	}
}

// TestCompileMinSupportValidation pins the silent-clamp fix at the HTTP
// surface: a negative min_support is 400 invalid_argument, not quietly
// rewritten to the default.
func TestCompileMinSupportValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, raw := postCompileRaw(t, ts, api.CompileRequest{Circuit: tinyCircuit, MinSupport: -1, Mode: "sync"})
	if code != http.StatusBadRequest {
		t.Fatalf("negative min_support: HTTP %d, want 400\n%s", code, raw)
	}
	if env := errorEnvelope(t, raw); env.Code != api.CodeInvalidArgument {
		t.Errorf("error code = %q, want %q", env.Code, api.CodeInvalidArgument)
	}

	// A positive override is accepted and compiles.
	code, out := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, MinSupport: 3, Mode: "sync"})
	if code != http.StatusOK || out.State != api.StateDone {
		t.Fatalf("min_support 3: HTTP %d, %+v", code, out.JobStatus)
	}
}

// TestE2EShutdownDuringPregen: draining the server mid-pre-generation
// cancels the in-flight offline optimization promptly and still persists a
// valid pulse-database snapshot.
func TestE2EShutdownDuringPregen(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "pulses.db")
	cfg := Config{
		Workers: 2, GridRows: 1, GridCols: 2, DBPath: dbPath, Logger: quiet,
		MineInterval: 10 * time.Millisecond, MineMinSupport: 2,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 1)
	// The miner's generator hangs until its context is cancelled —
	// simulating a long GRAPE run caught by the drain.
	s.Miner().SetGeneratorFactory(func(b miner.Backend) pulse.Generator {
		return hangingGen{started: started}
	})
	s.Start()
	ts := newHTTPServer(t, s)

	code, out := postCompile(t, ts, api.CompileRequest{Circuit: patternCircuit, Grape: true, Mode: "sync", TimeoutMs: 120_000})
	if code != http.StatusOK {
		t.Fatalf("compile: HTTP %d: %+v", code, out.JobStatus)
	}
	entries := out.Result.DBEntries
	if entries == 0 {
		t.Fatal("compile stored nothing in the DB")
	}

	select {
	case <-started: // the mining loop entered pre-generation
	case <-time.After(10 * time.Second):
		t.Fatal("miner never started pre-generating")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownStart := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown during pre-generation: %v", err)
	}
	if d := time.Since(shutdownStart); d > 20*time.Second {
		t.Fatalf("drain took %v: pre-generation not cancelled promptly", d)
	}

	re, ok, err := pulse.LoadFile(dbPath)
	if err != nil || !ok {
		t.Fatalf("reloading persisted DB after mid-pregen drain: ok=%v err=%v", ok, err)
	}
	if re.Len() != entries {
		t.Fatalf("persisted DB holds %d entries, want %d", re.Len(), entries)
	}
	// The cancelled pre-generation must not have been recorded as done.
	if got := s.reg.Counter("miner.pregenerated").Value(); got != 0 {
		t.Errorf("miner.pregenerated = %d after a cancelled-only run", got)
	}
}

// hangingGen blocks until its context is cancelled.
type hangingGen struct{ started chan struct{} }

func (h hangingGen) GenerateCtx(ctx context.Context, cg *pulse.CustomGate, fid float64) (*pulse.Generated, error) {
	select {
	case h.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return nil, ctx.Err()
}
