package server

import (
	"paqoc/internal/api"

	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"paqoc/internal/obs"
	"paqoc/internal/pulse"
)

// newHTTPServer serves an already-built Server over httptest without the
// auto-shutdown cleanup of newTestServer (for tests that shut down
// explicitly).
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// metricsSnapshot scrapes and decodes GET /metrics.
func metricsSnapshot(t *testing.T, url string) (counters map[string]int64) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters
}

// TestE2ESyncCompile: a small circuit compiles synchronously through the
// real pipeline (analytical generator) and reports a sane summary.
func TestE2ESyncCompile(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, GridRows: 2, GridCols: 2})
	code, out := postCompile(t, ts, api.CompileRequest{Circuit: "qubits 2\nh 0\ncx 0 1\ncx 0 1\nh 0\n"})
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %+v", code, out)
	}
	if out.State != api.StateDone || out.Result == nil {
		t.Fatalf("status = %+v", out.JobStatus)
	}
	r := out.Result
	if r.Blocks < 1 || r.LatencyDt <= 0 || r.InitialLatencyDt < r.LatencyDt {
		t.Errorf("implausible result: %+v", r)
	}
	if r.ESP <= 0 || r.ESP > 1 {
		t.Errorf("ESP out of range: %v", r.ESP)
	}
	if len(r.Stages) == 0 {
		t.Error("result carries no per-stage summary")
	}
	for _, g := range r.Gates {
		if g.Schedule != nil {
			t.Error("schedules attached without include_schedules")
		}
	}
}

// TestE2EConcurrentCompiles: many concurrent synchronous requests all
// complete against the shared worker pool and pulse database.
func TestE2EConcurrentCompiles(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 32, GridRows: 2, GridCols: 2})
	circuits := []string{
		"qubits 2\nh 0\ncx 0 1\n",
		"qubits 3\nh 0\ncx 0 1\ncx 1 2\n",
		"qubits 2\ncx 0 1\ncx 1 0\n",
		"qubits 3\nx 0\ncx 0 2\nh 1\n",
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, out := postCompile(t, ts, api.CompileRequest{Circuit: circuits[i%len(circuits)], Mode: "sync"})
			if code != http.StatusOK || out.State != api.StateDone {
				errs <- out.Error
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("concurrent compile failed: %s", e)
	}
}

// TestE2EWarmDBSecondRequest is the warm-cache smoke test: the same small
// circuit compiled twice with real GRAPE must serve the second request
// from the shared pulse database (grape.db_hits or pulse.db_dedups > 0)
// and report the reuse as cache hits on the gates.
func TestE2EWarmDBSecondRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, GridRows: 1, GridCols: 2})
	req := api.CompileRequest{Circuit: tinyCircuit, Grape: true, Mode: "sync", TimeoutMs: 120_000}

	code, out := postCompile(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("first request: HTTP %d: %+v", code, out.JobStatus)
	}
	if out.Result.DBEntries == 0 {
		t.Fatal("first GRAPE compile stored nothing in the shared DB")
	}

	code, out = postCompile(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("second request: HTTP %d: %+v", code, out.JobStatus)
	}
	counters := metricsSnapshot(t, ts.URL)
	if counters["grape.db_hits"]+counters["pulse.db_dedups"] == 0 {
		t.Fatalf("second request not served from the warm DB: grape.db_hits=%d pulse.db_dedups=%d",
			counters["grape.db_hits"], counters["pulse.db_dedups"])
	}
	hit := false
	for _, g := range out.Result.Gates {
		hit = hit || g.CacheHit
	}
	if !hit {
		t.Error("no gate of the second compile reported cache_hit")
	}
}

// TestE2EDeadlineExceeded: a GRAPE job with a hopeless deadline fails with
// 504/timed_out — and the worker it ran on is free to serve the next
// request immediately.
func TestE2EDeadlineExceeded(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, GridRows: 1, GridCols: 2})
	code, out := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Grape: true, Mode: "sync", TimeoutMs: 1})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("hopeless deadline: HTTP %d (%+v), want 504", code, out.JobStatus)
	}
	if out.State != api.StateFailed || !out.TimedOut {
		t.Fatalf("status = %+v, want failed+timed_out", out.JobStatus)
	}

	// The single worker must not be wedged: an analytical compile succeeds.
	code, out = postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "sync"})
	if code != http.StatusOK || out.State != api.StateDone {
		t.Fatalf("worker wedged after timeout: HTTP %d, %+v", code, out.JobStatus)
	}
}

// TestE2ELiveCompileTelemetry drives a real GRAPE compile and checks the
// full telemetry surface: the SSE stream delivers at least one stage event
// and one convergence event before the terminal event, the shared
// registry's per-stage histograms report non-zero quantiles afterwards,
// and GET /metrics?format=prom serves the histogram triplets.
func TestE2ELiveCompileTelemetry(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, GridRows: 1, GridCols: 2})
	code, out := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Grape: true, Mode: "async", TimeoutMs: 120_000})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %+v", code, out.JobStatus)
	}
	frames := getSSE(t, ts, out.JobID)
	stages, convs := checkSSEStream(t, frames, string(api.StateDone))
	if stages == 0 || convs == 0 {
		t.Fatalf("live stream delivered %d stage and %d convergence events, want >= 1 of each", stages, convs)
	}

	// The pipeline populated the shared per-stage histogram family with
	// real wall times: quantiles must be non-zero wherever samples landed.
	snap := s.reg.Snapshot()
	fam, ok := snap.HistogramVecs[obs.StageMetric]
	if !ok {
		t.Fatalf("%s missing from the registry snapshot", obs.StageMetric)
	}
	seen := map[string]bool{}
	for _, se := range fam.Series {
		if se.Count == 0 {
			continue
		}
		seen[se.Values[0]] = true
		if se.P50 <= 0 || se.P99 <= 0 || se.P99 < se.P50 {
			t.Errorf("stage %q: p50=%g p99=%g (count=%d), want 0 < p50 <= p99", se.Values[0], se.P50, se.P99, se.Count)
		}
	}
	for _, stage := range []string{"optimize", "emit", "grape"} {
		if !seen[stage] {
			t.Errorf("no %q samples in %s after a GRAPE compile", stage, obs.StageMetric)
		}
	}
	if qw := snap.Histograms["server.queue_wait_ms"]; qw.Count == 0 {
		t.Error("server.queue_wait_ms recorded nothing")
	}
	if jm, ok := snap.HistogramVecs["server.job_ms"]; !ok || len(jm.Series) == 0 {
		t.Error("server.job_ms family empty")
	}

	// The same data must scrape in Prometheus text exposition format.
	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("prom Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE paqoc_stage_ms histogram",
		`paqoc_stage_ms_bucket{stage="grape",le="+Inf"}`,
		`paqoc_stage_ms_sum{stage="grape"}`,
		`paqoc_stage_ms_count{stage="grape"}`,
		"# TYPE server_job_ms histogram",
		"# TYPE runtime_goroutines gauge",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
}

// TestE2EShutdownPersistsDB: graceful shutdown saves the warm database
// crash-safely, and a new server starts warm from the file.
func TestE2EShutdownPersistsDB(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "pulses.db")
	cfg := Config{Workers: 2, GridRows: 1, GridCols: 2, DBPath: dbPath, Logger: quiet}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := newHTTPServer(t, s)

	code, out := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Grape: true, Mode: "sync", TimeoutMs: 120_000})
	if code != http.StatusOK {
		t.Fatalf("compile: HTTP %d: %+v", code, out.JobStatus)
	}
	entries := out.Result.DBEntries
	if entries == 0 {
		t.Fatal("nothing stored in the DB")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	re, ok, err := pulse.LoadFile(dbPath)
	if err != nil || !ok {
		t.Fatalf("reloading persisted DB: ok=%v err=%v", ok, err)
	}
	if re.Len() != entries {
		t.Fatalf("persisted DB holds %d entries, want %d", re.Len(), entries)
	}

	// A second server starts warm from the file.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s2.DB().Len() != entries {
		t.Fatalf("restarted server loaded %d entries, want %d", s2.DB().Len(), entries)
	}
}
