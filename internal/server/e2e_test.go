package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"paqoc/internal/pulse"
)

// newHTTPServer serves an already-built Server over httptest without the
// auto-shutdown cleanup of newTestServer (for tests that shut down
// explicitly).
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// metricsSnapshot scrapes and decodes GET /metrics.
func metricsSnapshot(t *testing.T, url string) (counters map[string]int64) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters
}

// TestE2ESyncCompile: a small circuit compiles synchronously through the
// real pipeline (analytical generator) and reports a sane summary.
func TestE2ESyncCompile(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, GridRows: 2, GridCols: 2})
	code, out := postCompile(t, ts, Request{Circuit: "qubits 2\nh 0\ncx 0 1\ncx 0 1\nh 0\n"})
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %+v", code, out)
	}
	if out.State != StateDone || out.Result == nil {
		t.Fatalf("status = %+v", out.Status)
	}
	r := out.Result
	if r.Blocks < 1 || r.LatencyDt <= 0 || r.InitialLatencyDt < r.LatencyDt {
		t.Errorf("implausible result: %+v", r)
	}
	if r.ESP <= 0 || r.ESP > 1 {
		t.Errorf("ESP out of range: %v", r.ESP)
	}
	if len(r.Stages) == 0 {
		t.Error("result carries no per-stage summary")
	}
	for _, g := range r.Gates {
		if g.Schedule != nil {
			t.Error("schedules attached without include_schedules")
		}
	}
}

// TestE2EConcurrentCompiles: many concurrent synchronous requests all
// complete against the shared worker pool and pulse database.
func TestE2EConcurrentCompiles(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 32, GridRows: 2, GridCols: 2})
	circuits := []string{
		"qubits 2\nh 0\ncx 0 1\n",
		"qubits 3\nh 0\ncx 0 1\ncx 1 2\n",
		"qubits 2\ncx 0 1\ncx 1 0\n",
		"qubits 3\nx 0\ncx 0 2\nh 1\n",
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, out := postCompile(t, ts, Request{Circuit: circuits[i%len(circuits)], Mode: "sync"})
			if code != http.StatusOK || out.State != StateDone {
				errs <- out.Error
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("concurrent compile failed: %s", e)
	}
}

// TestE2EWarmDBSecondRequest is the warm-cache smoke test: the same small
// circuit compiled twice with real GRAPE must serve the second request
// from the shared pulse database (grape.db_hits or pulse.db_dedups > 0)
// and report the reuse as cache hits on the gates.
func TestE2EWarmDBSecondRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, GridRows: 1, GridCols: 2})
	req := Request{Circuit: tinyCircuit, Grape: true, Mode: "sync", TimeoutMs: 120_000}

	code, out := postCompile(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("first request: HTTP %d: %+v", code, out.Status)
	}
	if out.Result.DBEntries == 0 {
		t.Fatal("first GRAPE compile stored nothing in the shared DB")
	}

	code, out = postCompile(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("second request: HTTP %d: %+v", code, out.Status)
	}
	counters := metricsSnapshot(t, ts.URL)
	if counters["grape.db_hits"]+counters["pulse.db_dedups"] == 0 {
		t.Fatalf("second request not served from the warm DB: grape.db_hits=%d pulse.db_dedups=%d",
			counters["grape.db_hits"], counters["pulse.db_dedups"])
	}
	hit := false
	for _, g := range out.Result.Gates {
		hit = hit || g.CacheHit
	}
	if !hit {
		t.Error("no gate of the second compile reported cache_hit")
	}
}

// TestE2EDeadlineExceeded: a GRAPE job with a hopeless deadline fails with
// 504/timed_out — and the worker it ran on is free to serve the next
// request immediately.
func TestE2EDeadlineExceeded(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, GridRows: 1, GridCols: 2})
	code, out := postCompile(t, ts, Request{Circuit: tinyCircuit, Grape: true, Mode: "sync", TimeoutMs: 1})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("hopeless deadline: HTTP %d (%+v), want 504", code, out.Status)
	}
	if out.State != StateFailed || !out.TimedOut {
		t.Fatalf("status = %+v, want failed+timed_out", out.Status)
	}

	// The single worker must not be wedged: an analytical compile succeeds.
	code, out = postCompile(t, ts, Request{Circuit: tinyCircuit, Mode: "sync"})
	if code != http.StatusOK || out.State != StateDone {
		t.Fatalf("worker wedged after timeout: HTTP %d, %+v", code, out.Status)
	}
}

// TestE2EShutdownPersistsDB: graceful shutdown saves the warm database
// crash-safely, and a new server starts warm from the file.
func TestE2EShutdownPersistsDB(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "pulses.db")
	cfg := Config{Workers: 2, GridRows: 1, GridCols: 2, DBPath: dbPath, Logf: quiet}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := newHTTPServer(t, s)

	code, out := postCompile(t, ts, Request{Circuit: tinyCircuit, Grape: true, Mode: "sync", TimeoutMs: 120_000})
	if code != http.StatusOK {
		t.Fatalf("compile: HTTP %d: %+v", code, out.Status)
	}
	entries := out.Result.DBEntries
	if entries == 0 {
		t.Fatal("nothing stored in the DB")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	re, ok, err := pulse.LoadFile(dbPath)
	if err != nil || !ok {
		t.Fatalf("reloading persisted DB: ok=%v err=%v", ok, err)
	}
	if re.Len() != entries {
		t.Fatalf("persisted DB holds %d entries, want %d", re.Len(), entries)
	}

	// A second server starts warm from the file.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s2.DB().Len() != entries {
		t.Fatalf("restarted server loaded %d entries, want %d", s2.DB().Len(), entries)
	}
}
