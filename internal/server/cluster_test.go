package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"paqoc/internal/api"
)

// swapHandler late-binds an http.Handler: the replication listeners must
// exist before the servers (their addresses are the peer list), but what
// they serve is each server's ClusterHandler. The mutex makes the bind
// race-safe.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) Set(h http.Handler) { s.mu.Lock(); s.h = h; s.mu.Unlock() }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// replicaPair is an in-process two-replica deployment: two full servers
// sharing a static peer list, each serving its replication RPC on its own
// (httptest) listener, exactly as two paqoc-server processes would with
// -peers/-cluster-listen.
type replicaPair struct {
	a, b       *Server
	apiA, apiB *httptest.Server
	rpcA, rpcB *httptest.Server
}

func newReplicaPair(t *testing.T) *replicaPair {
	t.Helper()
	hA, hB := &swapHandler{}, &swapHandler{}
	rpcA := httptest.NewServer(hA)
	rpcB := httptest.NewServer(hB)
	t.Cleanup(rpcA.Close)
	t.Cleanup(rpcB.Close)

	addrA := strings.TrimPrefix(rpcA.URL, "http://")
	addrB := strings.TrimPrefix(rpcB.URL, "http://")
	peers := []string{addrA, addrB}

	mk := func(self string) (*Server, *httptest.Server) {
		return newTestServer(t, Config{
			Workers:        2,
			ClusterSelf:    self,
			ClusterPeers:   peers,
			ClusterTimeout: 2 * time.Second,
		})
	}
	sA, apiA := mk(addrA)
	sB, apiB := mk(addrB)
	hA.Set(sA.ClusterHandler())
	hB.Set(sB.ClusterHandler())
	return &replicaPair{a: sA, b: sB, apiA: apiA, apiB: apiB, rpcA: rpcA, rpcB: rpcB}
}

// compileOwnedBy compiles controlled-phase circuits on replica A until one
// lands on a pulse key owned by the wanted replica, and returns that
// circuit. Rendezvous hashing splits the cp(θ) family roughly evenly, so
// a dozen candidates miss both sides with probability ~2⁻¹².
func (p *replicaPair) compileOwnedBy(t *testing.T, owner *Server) string {
	t.Helper()
	self := owner.Cluster().Self()
	for i := 0; i < 12; i++ {
		before := map[string]bool{}
		for _, e := range p.a.DB().Entries() {
			before[e.Key] = true
		}
		circ := fmt.Sprintf("qubits 2\ncp(%.3f) 0 1\n", 0.3+0.17*float64(i))
		code, out := postCompile(t, p.apiA, api.CompileRequest{Circuit: circ, Grape: true, Mode: "sync", TimeoutMs: 120_000})
		if code != http.StatusOK || out.State != api.StateDone {
			t.Fatalf("candidate compile %d: HTTP %d, status %+v", i, code, out.JobStatus)
		}
		for _, e := range p.a.DB().Entries() {
			if !before[e.Key] && p.a.Cluster().Owner(e.Key) == self {
				return circ
			}
		}
	}
	t.Fatal("no candidate circuit owned by the wanted replica (astronomically unlikely)")
	return ""
}

// TestClusterPeerWarmHit is the headline replication property: a gate
// compiled (and therefore generated) on its owner replica is a warm hit
// on the other replica — served over the peer RPC, with no second GRAPE
// run anywhere.
func TestClusterPeerWarmHit(t *testing.T) {
	p := newReplicaPair(t)
	circ := p.compileOwnedBy(t, p.a) // generated on A; A owns it, so nothing was published

	code, out := postCompile(t, p.apiB, api.CompileRequest{Circuit: circ, Grape: true, Mode: "sync", TimeoutMs: 120_000})
	if code != http.StatusOK || out.State != api.StateDone || out.Result == nil {
		t.Fatalf("compile on B: HTTP %d, status %+v", code, out.JobStatus)
	}
	regB := p.b.Registry()
	if got := regB.Counter("grape.generated").Value(); got != 0 {
		t.Errorf("B ran GRAPE %d times, want 0 (warm hit via peer)", got)
	}
	if got := regB.Counter("cluster.peer_hits").Value(); got < 1 {
		t.Errorf("cluster.peer_hits on B = %d, want ≥ 1", got)
	}
	if got := regB.Counter("grape.remote_hits").Value(); got < 1 {
		t.Errorf("grape.remote_hits on B = %d, want ≥ 1", got)
	}
}

// TestClusterWriteThroughPublish: a gate generated on a non-owner replica
// is write-through-published to its owner, so a later compile on the
// owner is a purely local warm hit — no generation, no peer fetch.
func TestClusterWriteThroughPublish(t *testing.T) {
	p := newReplicaPair(t)
	circ := p.compileOwnedBy(t, p.b) // generated on A, owned by B → published A→B

	regA, regB := p.a.Registry(), p.b.Registry()
	if got := regA.Counter("cluster.publishes").Value(); got < 1 {
		t.Fatalf("cluster.publishes on A = %d, want ≥ 1", got)
	}
	if got := regB.Counter("cluster.serve_merges").Value(); got < 1 {
		t.Fatalf("cluster.serve_merges on B = %d, want ≥ 1", got)
	}

	code, out := postCompile(t, p.apiB, api.CompileRequest{Circuit: circ, Grape: true, Mode: "sync", TimeoutMs: 120_000})
	if code != http.StatusOK || out.State != api.StateDone {
		t.Fatalf("compile on B: HTTP %d, status %+v", code, out.JobStatus)
	}
	if got := regB.Counter("grape.generated").Value(); got != 0 {
		t.Errorf("B ran GRAPE %d times, want 0 (published entry is a local hit)", got)
	}
	if got := regB.Counter("cluster.peer_hits").Value(); got != 0 {
		t.Errorf("cluster.peer_hits on B = %d, want 0 (hit is local, not remote)", got)
	}
}

// TestClusterPeerDownDegrades: with the owner's replication listener dead,
// compiles on the other replica still succeed — local generation, zero
// client-visible errors — and the failure shows up only in peer-error
// metrics and the circuit breaker.
func TestClusterPeerDownDegrades(t *testing.T) {
	p := newReplicaPair(t)
	p.rpcB.Close() // kill B's replication listener; B's API stays up

	self := p.b.Cluster().Self()
	sawRemote := false
	for i := 0; i < 12 && !sawRemote; i++ {
		circ := fmt.Sprintf("qubits 2\ncp(%.3f) 0 1\n", 0.3+0.17*float64(i))
		code, out := postCompile(t, p.apiA, api.CompileRequest{Circuit: circ, Grape: true, Mode: "sync", TimeoutMs: 120_000})
		if code != http.StatusOK || out.State != api.StateDone || out.Result == nil {
			t.Fatalf("compile %d with peer down: HTTP %d, status %+v (degradation must be invisible)", i, code, out.JobStatus)
		}
		for _, e := range p.a.DB().Entries() {
			if p.a.Cluster().Owner(e.Key) == self {
				sawRemote = true
			}
		}
	}
	if !sawRemote {
		t.Fatal("no compiled key owned by the dead peer (astronomically unlikely)")
	}
	regA := p.a.Registry()
	if got := regA.Counter("cluster.peer_errors").Value(); got < 1 {
		t.Errorf("cluster.peer_errors on A = %d, want ≥ 1", got)
	}
	if got := regA.Counter("grape.generated").Value(); got < 1 {
		t.Errorf("grape.generated on A = %d, want ≥ 1 (degraded to local generation)", got)
	}
}
