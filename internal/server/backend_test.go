package server

import (
	"paqoc/internal/api"

	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"paqoc/internal/device"
)

// TestBackendUnknownRejected: a request naming a backend outside the
// device registry (and not parseable as a dynamic name) is a 400, and no
// job is created for it.
func TestBackendUnknownRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, out := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Backend: "ion-trap-9000", Mode: "sync"})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown backend: HTTP %d (%+v), want 400", code, out.JobStatus)
	}
}

// TestBackendPerJobSelection: a job compiled against a non-default
// backend routes on that backend's topology and reports the backend name
// in its status.
func TestBackendPerJobSelection(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	if s.profile.Name != device.DefaultName {
		t.Fatalf("default backend = %q, want %q", s.profile.Name, device.DefaultName)
	}

	// Default backend: status carries the server's profile name.
	code, out := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "sync"})
	if code != http.StatusOK || out.State != api.StateDone {
		t.Fatalf("default compile: HTTP %d: %+v", code, out.JobStatus)
	}
	if out.Backend != device.DefaultName {
		t.Errorf("default job backend = %q, want %q", out.Backend, device.DefaultName)
	}

	// Explicit non-default backend, including a dynamic name.
	for _, backend := range []string{"linear-chain", "xy-grid-2x3"} {
		code, out := postCompile(t, ts, api.CompileRequest{Circuit: "qubits 3\nh 0\ncx 0 2\ncx 1 2\n", Backend: backend, Mode: "sync"})
		if code != http.StatusOK || out.State != api.StateDone {
			t.Fatalf("backend %s: HTTP %d: %+v", backend, code, out.JobStatus)
		}
		if out.Backend != backend {
			t.Errorf("job backend = %q, want %q", out.Backend, backend)
		}
		if out.Result == nil || out.Result.Blocks < 1 {
			t.Errorf("backend %s: implausible result %+v", backend, out.Result)
		}
	}
}

// TestBackendDBIsolation: jobs on different backends warm different pulse
// databases — a GRAPE schedule generated under one backend must not be
// served to another.
func TestBackendDBIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, GridRows: 1, GridCols: 2})
	req := api.CompileRequest{Circuit: tinyCircuit, Grape: true, Mode: "sync", TimeoutMs: 120_000}

	code, out := postCompile(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("default backend compile: HTTP %d: %+v", code, out.JobStatus)
	}
	if s.db.Len() == 0 {
		t.Fatal("default backend DB stayed cold")
	}

	req.Backend = "linear-chain-2"
	code, out = postCompile(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("linear-chain-2 compile: HTTP %d: %+v", code, out.JobStatus)
	}
	prof, err := device.Lookup("linear-chain-2")
	if err != nil {
		t.Fatal(err)
	}
	other := s.dbFor(prof)
	if other == s.db {
		t.Fatal("non-default backend shares the default DB")
	}
	if other.Len() == 0 {
		t.Fatal("non-default backend DB stayed cold after a GRAPE compile")
	}
	if got, want := other.Fingerprint(), prof.Fingerprint(); got != want {
		t.Fatalf("backend DB fingerprint = %q, want %q", got, want)
	}
}

// TestBackendSnapshotRefusedOnMismatch is the acceptance scenario at the
// server boundary: a pulse-DB snapshot persisted under one backend is
// refused when a server configured for a different backend starts on it.
func TestBackendSnapshotRefusedOnMismatch(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "pulses.db")
	cfg := Config{Workers: 2, GridRows: 1, GridCols: 2, DBPath: dbPath, Logger: quiet}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := newHTTPServer(t, s)
	code, out := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Grape: true, Mode: "sync", TimeoutMs: 120_000})
	if code != http.StatusOK || out.Result.DBEntries == 0 {
		t.Fatalf("warming compile: HTTP %d: %+v", code, out.JobStatus)
	}
	if err := s.saveDB(); err != nil {
		t.Fatal(err)
	}

	// Same path, different backend: startup must refuse the snapshot.
	_, err = New(Config{Workers: 2, Backend: "heavy-hex", DBPath: dbPath, Logger: quiet})
	if err == nil {
		t.Fatal("server started on a snapshot calibrated for another backend")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("error does not mention the fingerprint mismatch: %v", err)
	}

	// The matching backend still starts warm from it.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s2.DB().Len() == 0 {
		t.Fatal("matching backend did not start warm")
	}
}
