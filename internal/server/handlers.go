package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"paqoc/internal/api"
	"paqoc/internal/mining"
)

// maxBodyBytes bounds a compile request body (QASM sources are text; 8 MiB
// is far beyond any benchmark in the suite).
const maxBodyBytes = 8 << 20

// Handler returns the service's HTTP API:
//
//	POST /v1/compile          compile a circuit (sync for small circuits, else 202 + job ID)
//	GET  /v1/jobs/{id}        job status and result
//	GET  /v1/jobs/{id}/events live job stream (Server-Sent Events): stage
//	                          transitions, sampled GRAPE convergence, state changes
//	GET  /v1/mining/status    offline APA miner state (404 when mining is disabled)
//	GET  /healthz             liveness
//	GET  /readyz              readiness (503 while draining)
//	GET  /metrics             metrics snapshot (?format=text for a table,
//	                          ?format=prom for Prometheus text exposition)
//	     /debug/pprof         the standard profiling endpoints (Config.EnablePprof)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/mining/status", s.handleMiningStatus)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		mux.Handle("/debug/pprof/", PprofHandler())
	}
	return mux
}

// PprofHandler returns the standard net/http/pprof endpoints rooted at
// /debug/pprof/. They are unauthenticated and can trigger CPU-profile
// load, so Handler mounts them only when Config.EnablePprof is set;
// cmd/paqoc-server instead serves them on a separate loopback-only
// listener via its -pprof flag.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.requests").Inc()
	var req api.CompileRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.badRequest(w, fmt.Errorf("decoding request: %v", err))
		return
	}
	logical, err := parseSource(&req)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	prof, err := s.profileFor(req.Backend)
	if err != nil {
		s.reg.Counter("server.bad_requests").Inc()
		api.WriteError(w, http.StatusBadRequest, api.CodeUnknownBackend, err.Error())
		return
	}
	sync, err := s.pickMode(&req, len(logical.Gates))
	if err != nil {
		s.badRequest(w, err)
		return
	}
	switch req.Priority {
	case "", "normal", "high":
	default:
		s.badRequest(w, fmt.Errorf("bad priority %q (want normal or high)", req.Priority))
		return
	}
	if req.MinSupport != 0 {
		// Validate the mining knob against the same rules the miner itself
		// enforces: an invalid value is a distinct "invalid_argument", not
		// silently clamped to the default (that clamp was a bug).
		mopts := mining.DefaultOptions()
		mopts.MinSupport = req.MinSupport
		if err := mopts.Validate(); err != nil {
			s.reg.Counter("server.bad_requests").Inc()
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidArgument, err.Error())
			return
		}
	}

	j := s.jobs.add(&req, logical, prof, s.jobTimeout(&req))
	if err := s.Submit(j); err != nil {
		// The job never entered the queue: drop it from the store now, or
		// its request body and circuit would be retained forever (no
		// terminal state means retention-based eviction never fires).
		s.jobs.remove(j.ID)
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter/time.Second)))
			api.WriteError(w, http.StatusTooManyRequests, api.CodeQueueFull, err.Error())
		case errors.Is(err, ErrTenantQuota):
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter/time.Second)))
			api.WriteError(w, http.StatusTooManyRequests, api.CodeTenantQuota, err.Error())
		case errors.Is(err, ErrDraining):
			api.WriteError(w, http.StatusServiceUnavailable, api.CodeDraining, err.Error())
		default:
			api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		}
		return
	}
	s.cfg.Logger.Info("job queued", "job_id", j.ID, "backend", prof.Name, "gates", len(logical.Gates), "sync", sync, "priority", j.priority)

	if !sync {
		s.reg.Counter("server.requests_async").Inc()
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, api.CompileResponse{JobStatus: j.status(), Poll: "/v1/jobs/" + j.ID})
		return
	}

	s.reg.Counter("server.requests_sync").Inc()
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client gone; the job keeps running and stays pollable.
		writeJSON(w, http.StatusAccepted, api.CompileResponse{JobStatus: j.status(), Poll: "/v1/jobs/" + j.ID})
		return
	}
	st := j.status()
	writeJSON(w, statusCodeFor(st), api.CompileResponse{JobStatus: st})
}

// handleMiningStatus serves the offline miner's live state. A server
// without mining enabled has no such resource: 404 with the standard
// envelope, so clients can distinguish "disabled" from a transport error.
func (s *Server) handleMiningStatus(w http.ResponseWriter, r *http.Request) {
	if s.miner == nil {
		api.WriteError(w, http.StatusNotFound, api.CodeNotFound,
			"mining is disabled on this server (start with -mine-interval > 0)")
		return
	}
	writeJSON(w, http.StatusOK, s.miner.Status())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		api.WriteError(w, http.StatusNotFound, api.CodeJobNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	switch r.URL.Query().Get("format") {
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteText(w)
	case "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snap.WritePrometheus(w); err != nil {
			s.cfg.Logger.Error("metrics exposition failed", "error", err)
		}
	default:
		w.Header().Set("Content-Type", "application/json")
		if err := snap.WriteJSON(w); err != nil {
			s.cfg.Logger.Error("metrics encoding failed", "error", err)
		}
	}
}

// pickMode resolves the request's sync/async choice; auto selects sync for
// circuits at or under the configured gate limit.
func (s *Server) pickMode(req *api.CompileRequest, gates int) (sync bool, err error) {
	switch req.Mode {
	case "sync":
		return true, nil
	case "async":
		return false, nil
	case "", "auto":
		return gates <= s.cfg.SyncGateLimit, nil
	default:
		return false, fmt.Errorf("bad mode %q (want sync, async, or auto)", req.Mode)
	}
}

// jobTimeout resolves the job deadline: the client's request clamped to
// the configured maximum, or the server default.
func (s *Server) jobTimeout(req *api.CompileRequest) time.Duration {
	if req.TimeoutMs <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(req.TimeoutMs) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}

// jobWorkers resolves the job's intra-job pulse-generation pool width:
// the client's request clamped to the configured maximum, mirroring how
// jobTimeout clamps deadlines — a request cannot demand an arbitrarily
// wide engine pool on top of the server's own worker pool.
func (s *Server) jobWorkers(req *api.CompileRequest) int {
	if req.Workers > s.cfg.MaxJobWorkers {
		return s.cfg.MaxJobWorkers
	}
	return req.Workers
}

// statusCodeFor maps a terminal job status onto the synchronous response
// code: 200 done, 504 deadline exceeded, 503 cancelled by shutdown, 422
// compilation failure. Non-2xx synchronous bodies are deliberately the
// job's JobStatus, not the error envelope: the job is a resource that
// exists and carries its own failure detail.
func statusCodeFor(st api.JobStatus) int {
	switch {
	case st.State == api.StateDone:
		return http.StatusOK
	case st.TimedOut:
		return http.StatusGatewayTimeout
	case st.Canceled:
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.reg.Counter("server.bad_requests").Inc()
	api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
