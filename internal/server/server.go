// Package server is the long-running pulse-compilation service: an HTTP
// front end over the PAQOC pipeline with a bounded job queue, a pool of
// compilation workers, and one shared race-safe pulse database that stays
// warm across requests — PR 2's singleflight dedup and the §V-B pulse
// reuse become cross-request wins instead of per-process ones.
//
// Robustness properties:
//
//   - Backpressure: the queue is bounded; a full queue rejects with
//     ErrQueueFull, which the HTTP layer maps to 429 + Retry-After.
//   - Deadlines: every job runs under a context deadline threaded into the
//     ctx-aware GRAPE/pulsesim hot loops, so an expired job releases its
//     worker instead of wedging it.
//   - Panic isolation: a panicking compilation fails its own job only.
//   - Graceful drain: Shutdown stops intake, lets queued and running jobs
//     finish within a deadline (cancelling stragglers), then persists the
//     pulse database crash-safely.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"paqoc/internal/api"
	"paqoc/internal/cluster"
	"paqoc/internal/device"
	"paqoc/internal/miner"
	"paqoc/internal/mining"
	"paqoc/internal/obs"
	"paqoc/internal/pulse"
)

// Sentinel errors returned by Submit.
var (
	// ErrQueueFull: the bounded job queue is at capacity (HTTP 429).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining: the server is shutting down and refuses new work (503).
	ErrDraining = errors.New("server: draining")
	// ErrTenantQuota: the submitting tenant is at its in-flight job cap
	// (HTTP 429 with error code "tenant_quota").
	ErrTenantQuota = errors.New("server: tenant at in-flight quota")
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Workers is the number of concurrent compilation jobs (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs queued beyond the running ones (default 64).
	// A full queue is backpressure: Submit fails fast with ErrQueueFull.
	QueueDepth int
	// SyncGateLimit is the auto-mode threshold: circuits with at most this
	// many logical gates compile synchronously in the request (default 48).
	SyncGateLimit int
	// DefaultTimeout bounds jobs that do not request a deadline (default
	// 120s); MaxTimeout caps client-requested deadlines (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxJobWorkers caps the client-requested intra-job pulse-generation
	// pool width (the request's "workers" field; default GOMAXPROCS) —
	// without a cap one request could demand an arbitrarily wide engine
	// pool multiplied across the server's own workers.
	MaxJobWorkers int
	// GrapeWorkers sets the per-optimization inner-loop goroutine count
	// for GRAPE jobs (grape.Options.Workers; 0 or 1 = serial). Results
	// are bit-identical across worker counts, so this is purely a
	// throughput knob — but it multiplies against Workers, so size the
	// product to the machine.
	GrapeWorkers int
	// EnablePprof mounts /debug/pprof on the public API mux. Off by
	// default: the profiling endpoints are unauthenticated, so they belong
	// on a loopback-only listener (cmd/paqoc-server's -pprof flag) unless
	// the API address itself is private.
	EnablePprof bool
	// DBPath is the pulse-database file: loaded at startup when present,
	// snapshotted periodically and on shutdown. Empty disables persistence.
	DBPath string
	// DBMaxEntries bounds the warm pulse database: past this many entries
	// a ranked eviction drops cold ones (APA-basis and high-hit entries
	// go last), keeping a long-running server's memory bounded. 0 means
	// unbounded.
	DBMaxEntries int
	// SnapshotInterval is the warm-DB persistence cadence (default 5m when
	// DBPath is set; negative disables periodic snapshots).
	SnapshotInterval time.Duration
	// Backend names the default device profile (internal/device registry
	// or a dynamic name like "xy-grid-3x4"; default "xy-grid-5x5").
	// Requests may override it per job with their own "backend" field;
	// each backend gets its own fingerprint-namespaced pulse database, so
	// schedules never leak across devices. Only the default backend's
	// database is persisted to DBPath.
	Backend string
	// GridRows/GridCols are the deprecated way to pick a grid device:
	// when Backend is empty they map to the dynamic profile
	// "xy-grid-<rows>x<cols>" (default 5×5).
	GridRows, GridCols int
	// JobRetention is how many finished jobs stay queryable (default 512).
	JobRetention int
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// TenantMaxInflight caps how many jobs one tenant (the request's
	// "tenant" field; empty is a tenant of its own) may have queued or
	// running at once. Past the cap Submit fails with ErrTenantQuota
	// (429 + "tenant_quota"), so one chatty client cannot monopolize the
	// worker pool. 0 disables per-tenant quotas.
	TenantMaxInflight int
	// ClusterSelf and ClusterPeers configure multi-replica warm-store
	// replication (internal/cluster): ClusterPeers is the full static
	// membership of advertised -cluster-listen addresses and ClusterSelf
	// is this replica's own entry. Empty peers means standalone — every
	// pulse key is owned locally and no RPCs fire.
	ClusterSelf  string
	ClusterPeers []string
	// ClusterTimeout bounds each peer RPC (default 2s).
	ClusterTimeout time.Duration
	// MineInterval enables the offline APA mining service (internal/miner)
	// and sets its run cadence: the miner folds the circuits this server
	// compiles into per-backend cross-request pattern tables and, while
	// the job queue is idle, pre-generates top-coverage patterns' pulses
	// into the shared database. Zero or negative disables mining (the
	// default).
	MineInterval time.Duration
	// MineMinSupport is the miner's cross-request recurrence threshold
	// (default 2). Negative values are a construction error.
	MineMinSupport int
	// MineCorpusMax bounds the miner's per-backend circuit corpus
	// (default 256).
	MineCorpusMax int
	// MineBudget caps pulses pre-generated per idle mining run (default 4).
	MineBudget int
	// Logger receives structured service logs (default: JSON lines on
	// stderr at info level; tests pass obs.NewLogger(io.Discard, ...)).
	// Every job lifecycle transition — queued, running, done/failed,
	// evicted — is logged exactly once with a job_id field.
	Logger *obs.Logger
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SyncGateLimit <= 0 {
		c.SyncGateLimit = 48
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 120 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxJobWorkers <= 0 {
		c.MaxJobWorkers = runtime.GOMAXPROCS(0)
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = 5 * time.Minute
	}
	if c.GridRows <= 0 {
		c.GridRows = 5
	}
	if c.GridCols <= 0 {
		c.GridCols = 5
	}
	if c.Backend == "" {
		c.Backend = fmt.Sprintf("xy-grid-%dx%d", c.GridRows, c.GridCols)
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 512
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Logger == nil {
		c.Logger = obs.NewStderrLogger(obs.LevelInfo)
	}
}

// Server is the resident compilation service. Create with New, launch the
// workers with Start, serve Handler over HTTP, and stop with Shutdown.
type Server struct {
	cfg     Config
	profile *device.Profile // default backend
	db      *pulse.DB       // default backend's database (the persisted one)
	reg     *obs.Registry
	jobs    *jobStore

	// dbs holds the lazily-created pulse databases of non-default
	// backends, keyed by profile name. Each is namespaced by its
	// profile's fingerprint; none of them is persisted.
	dbmu sync.Mutex
	dbs  map[string]*pulse.DB

	queue     chan *Job
	queueHigh chan *Job    // the priority lane: idle workers prefer it
	qmu       sync.RWMutex // guards queue-send vs close, and draining
	drain     bool

	// tenantInflight counts queued+running jobs per tenant for
	// Config.TenantMaxInflight admission.
	tmu            sync.Mutex
	tenantInflight map[string]int

	// cluster is this replica's membership view (standalone when no peers
	// are configured); dbsByFP resolves replication RPCs by backend
	// fingerprint.
	cluster *cluster.Cluster
	fpmu    sync.Mutex
	dbsByFP map[string]*pulse.DB

	// miner is the offline APA mining service (nil unless
	// Config.MineInterval is positive). It observes every compiled
	// circuit and pre-generates frequent patterns' pulses during idle
	// capacity.
	miner *miner.Miner

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workerWG   sync.WaitGroup
	snapWG     sync.WaitGroup
	snapStop   chan struct{}
	started    atomic.Bool
	ready      atomic.Bool

	// compileFn runs one job; tests swap it to simulate slow, stuck, or
	// panicking compilations deterministically.
	compileFn func(ctx context.Context, j *Job) (*api.Result, error)
}

// New builds a server and loads the default backend's pulse database from
// cfg.DBPath (a missing file starts cold; a snapshot calibrated for a
// different backend is refused). No goroutines run until Start.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	prof, err := device.Lookup(cfg.Backend)
	if err != nil {
		return nil, fmt.Errorf("server: %v", err)
	}
	db := pulse.NewDB()
	db.SetFingerprint(prof.Fingerprint())
	if cfg.DBPath != "" {
		loaded, ok, err := pulse.LoadFileFor(cfg.DBPath, prof.Fingerprint())
		if err != nil {
			return nil, fmt.Errorf("server: loading pulse DB: %v", err)
		}
		db = loaded
		if ok {
			cfg.Logger.Info("pulse DB loaded", "entries", db.Len(), "path", cfg.DBPath, "backend", prof.Name)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:            cfg,
		profile:        prof,
		db:             db,
		dbs:            make(map[string]*pulse.DB),
		dbsByFP:        map[string]*pulse.DB{prof.Fingerprint(): db},
		reg:            obs.NewRegistry(),
		jobs:           newJobStore(cfg.JobRetention),
		queue:          make(chan *Job, cfg.QueueDepth),
		queueHigh:      make(chan *Job, cfg.QueueDepth),
		tenantInflight: map[string]int{},
		baseCtx:        ctx,
		baseCancel:     cancel,
		snapStop:       make(chan struct{}),
	}
	s.compileFn = s.compile
	s.cluster, err = cluster.New(cluster.Config{
		Self:     cfg.ClusterSelf,
		Peers:    cfg.ClusterPeers,
		Timeout:  cfg.ClusterTimeout,
		Registry: s.reg,
		Logger:   cfg.Logger,
	})
	if err != nil {
		cancel()
		return nil, fmt.Errorf("server: %v", err)
	}
	if cfg.MineInterval > 0 {
		mopts := mining.DefaultOptions()
		mopts.MinSupport = cfg.MineMinSupport
		s.miner, err = miner.New(miner.Config{
			Interval:  cfg.MineInterval,
			Mining:    mopts,
			CorpusMax: cfg.MineCorpusMax,
			Budget:    cfg.MineBudget,
			// Idle means no client work anywhere: nothing queued and no
			// worker busy. Pre-generation re-checks this before every
			// pulse and yields as soon as a request arrives.
			Idle: func() bool {
				return s.reg.Gauge("server.queue_len").Value() == 0 &&
					s.reg.Gauge("server.jobs_running").Value() == 0
			},
			Registry: s.reg,
			Logger:   cfg.Logger,
		})
		if err != nil {
			cancel()
			return nil, fmt.Errorf("server: %v", err)
		}
	}
	preregisterMetrics(s.reg)
	obs.RegisterRuntimeCollector(s.reg)
	// The shared DB reports its own counters (nearest scan/prune split,
	// evictions, snapshot skips) into the server registry.
	db.SetMetrics(s.reg)
	if cfg.DBMaxEntries > 0 {
		db.SetMaxEntries(cfg.DBMaxEntries)
	}
	s.reg.Gauge("server.queue_capacity").Set(float64(cfg.QueueDepth))
	s.reg.Gauge("server.workers").Set(float64(cfg.Workers))
	// cluster.owned_keys is recomputed at scrape time: the share of warm
	// entries this replica owns under the current membership.
	s.reg.AddCollector(func() {
		owned := 0
		for _, db := range s.allDBs() {
			for _, e := range db.Entries() {
				if s.cluster.OwnsLocally(e.Key) {
					owned++
				}
			}
		}
		s.reg.Gauge("cluster.owned_keys").Set(float64(owned))
	})
	return s, nil
}

// Cluster exposes the replica's membership view (standalone when no peers
// were configured).
func (s *Server) Cluster() *cluster.Cluster { return s.cluster }

// ClusterHandler returns the internal v1 replication RPC, to be served on
// a private listener (cmd/paqoc-server's -cluster-listen), never on the
// public API address.
func (s *Server) ClusterHandler() http.Handler {
	return s.cluster.Handler(s.dbByFingerprint)
}

// remoteFor returns the cross-replica pulse source for a backend, or nil
// outside a multi-replica deployment.
func (s *Server) remoteFor(prof *device.Profile) pulse.Remote {
	if !s.cluster.Enabled() {
		return nil
	}
	return s.cluster.RemoteFor(prof.Fingerprint())
}

// dbByFingerprint resolves a replication RPC's backend fingerprint to the
// live database serving it. Only backends this replica has opened (the
// default one, plus any a request compiled for) resolve; an unknown
// fingerprint is refused — a fingerprint is a hash, so the profile it
// names cannot be reconstructed from it.
func (s *Server) dbByFingerprint(fp string) (*pulse.DB, bool) {
	s.fpmu.Lock()
	defer s.fpmu.Unlock()
	db, ok := s.dbsByFP[fp]
	return db, ok
}

// allDBs snapshots every live database (default backend first).
func (s *Server) allDBs() []*pulse.DB {
	out := []*pulse.DB{s.db}
	s.dbmu.Lock()
	for _, db := range s.dbs {
		out = append(out, db)
	}
	s.dbmu.Unlock()
	return out
}

// Registry exposes the shared metrics registry (served by GET /metrics).
func (s *Server) Registry() *obs.Registry { return s.reg }

// DB exposes the default backend's shared pulse database.
func (s *Server) DB() *pulse.DB { return s.db }

// profileFor resolves a request's backend name: empty selects the server
// default, anything else must name a registered or dynamic device profile.
func (s *Server) profileFor(name string) (*device.Profile, error) {
	if name == "" || name == s.profile.Name {
		return s.profile, nil
	}
	return device.Lookup(name)
}

// dbFor returns the pulse database for a job's backend, lazily creating a
// fingerprint-namespaced one for non-default backends. Those stay
// in-memory only: persistence (DBPath) is reserved for the default
// backend's database, which is also the one most requests warm.
func (s *Server) dbFor(prof *device.Profile) *pulse.DB {
	if prof.Name == s.profile.Name {
		return s.db
	}
	s.dbmu.Lock()
	defer s.dbmu.Unlock()
	db, ok := s.dbs[prof.Name]
	if !ok {
		db = pulse.NewDB()
		db.SetFingerprint(prof.Fingerprint())
		db.SetMetrics(s.reg)
		if s.cfg.DBMaxEntries > 0 {
			db.SetMaxEntries(s.cfg.DBMaxEntries)
		}
		s.dbs[prof.Name] = db
		s.fpmu.Lock()
		s.dbsByFP[prof.Fingerprint()] = db
		s.fpmu.Unlock()
		s.cfg.Logger.Info("pulse DB created", "backend", prof.Name, "fingerprint", prof.Fingerprint())
	}
	return db
}

// Start launches the worker pool and the periodic DB snapshotter, then
// marks the server ready.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	if s.cfg.DBPath != "" && s.cfg.SnapshotInterval > 0 {
		s.snapWG.Add(1)
		go s.snapshotter()
	}
	if s.miner != nil {
		s.miner.Start()
	}
	s.ready.Store(true)
}

// Miner exposes the offline APA mining service (nil when disabled).
func (s *Server) Miner() *miner.Miner { return s.miner }

// Submit enqueues a job on its priority lane, failing fast when the
// server is draining, the lane is full, or the job's tenant is at its
// in-flight quota — the caller translates those into 503 and 429.
func (s *Server) Submit(j *Job) error {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.drain {
		return ErrDraining
	}
	if err := s.tenantAcquire(j.tenant()); err != nil {
		return err
	}
	lane := s.queue
	if j.priority == "high" {
		lane = s.queueHigh
	}
	select {
	case lane <- j:
		s.reg.Gauge("server.queue_len").Add(1)
		return nil
	default:
		s.tenantRelease(j.tenant())
		s.reg.Counter("server.rejected_queue_full").Inc()
		return ErrQueueFull
	}
}

// tenantAcquire admits one job against its tenant's in-flight cap.
func (s *Server) tenantAcquire(tenant string) error {
	if s.cfg.TenantMaxInflight <= 0 {
		return nil
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if s.tenantInflight[tenant] >= s.cfg.TenantMaxInflight {
		s.reg.Counter("server.rejected_tenant_quota").Inc()
		return ErrTenantQuota
	}
	s.tenantInflight[tenant]++
	return nil
}

func (s *Server) tenantRelease(tenant string) {
	if s.cfg.TenantMaxInflight <= 0 {
		return
	}
	s.tmu.Lock()
	if s.tenantInflight[tenant] <= 1 {
		delete(s.tenantInflight, tenant)
	} else {
		s.tenantInflight[tenant]--
	}
	s.tmu.Unlock()
}

// worker consumes jobs until both lanes are closed and drained.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		j, ok := s.nextJob()
		if !ok {
			return
		}
		s.reg.Gauge("server.queue_len").Add(-1)
		s.runJob(j)
	}
}

// nextJob takes the next job, preferring the high-priority lane: a
// non-blocking probe of the high lane first, then a fair blocking select
// over both. A closed, drained lane falls through to blocking on the
// other, so shutdown still drains every queued job before workers exit.
func (s *Server) nextJob() (*Job, bool) {
	select {
	case j, ok := <-s.queueHigh:
		if ok {
			return j, true
		}
		j, ok = <-s.queue
		return j, ok
	default:
	}
	select {
	case j, ok := <-s.queueHigh:
		if ok {
			return j, true
		}
		j, ok = <-s.queue
		return j, ok
	case j, ok := <-s.queue:
		if ok {
			return j, true
		}
		j, ok = <-s.queueHigh
		return j, ok
	}
}

// runJob executes one job under its deadline with panic isolation.
func (s *Server) runJob(j *Job) {
	running := s.reg.Gauge("server.jobs_running")
	running.Add(1)
	defer running.Add(-1)

	ctx, cancel := context.WithTimeout(s.baseCtx, j.timeout)
	defer cancel()
	j.start()
	queueWait := msSince(j.submitted, j.started)
	s.reg.Histogram("server.queue_wait_ms", obs.LatencyBuckets).Observe(queueWait)
	s.cfg.Logger.Info("job running", "job_id", j.ID, "queue_wait_ms", queueWait)
	res, err := s.safeCompile(ctx, j)

	// Classify from the returned error chain, not ctx.Err(): the pipeline
	// propagates context errors (bare or %w-wrapped), and a genuine
	// compilation failure that returns just as the deadline expires must
	// surface as a failure (422), not be misread as a timeout or drain.
	timedOut := errors.Is(err, context.DeadlineExceeded)
	canceled := !timedOut && errors.Is(err, context.Canceled)
	outcome := "ok"
	switch {
	case err == nil:
		s.reg.Counter("server.jobs_completed").Inc()
	case timedOut:
		outcome = "timeout"
		s.reg.Counter("server.jobs_timeout").Inc()
	case canceled:
		outcome = "canceled"
		s.reg.Counter("server.jobs_failed").Inc()
	default:
		outcome = "failed"
		s.reg.Counter("server.jobs_failed").Inc()
	}
	j.finish(res, err, timedOut, canceled)
	s.tenantRelease(j.tenant())
	// End-to-end latency (submit → terminal) by outcome; run time alone is
	// the job status's run_ms.
	runMs := msSince(j.started, j.finished)
	s.reg.HistogramVec("server.job_ms", obs.LatencyBuckets, "outcome").
		WithLabelValues(outcome).
		Observe(msSince(j.submitted, j.finished))
	if err != nil {
		s.cfg.Logger.Error("job failed", "job_id", j.ID, "outcome", outcome, "run_ms", runMs, "error", err)
	} else {
		s.cfg.Logger.Info("job done", "job_id", j.ID, "run_ms", runMs)
	}
	for _, id := range s.jobs.retired(j) {
		s.cfg.Logger.Info("job evicted", "job_id", id)
	}
}

// safeCompile isolates panics: one bad circuit must not take down the
// process, only its own job.
func (s *Server) safeCompile(ctx context.Context, j *Job) (res *api.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.reg.Counter("server.jobs_panicked").Inc()
			err = fmt.Errorf("server: job %s panicked: %v\n%s", j.ID, r, debug.Stack())
			res = nil
		}
	}()
	return s.compileFn(ctx, j)
}

// snapshotter persists the warm pulse database on a timer so a crash loses
// at most one interval of generated pulses.
func (s *Server) snapshotter() {
	defer s.snapWG.Done()
	tick := time.NewTicker(s.cfg.SnapshotInterval)
	defer tick.Stop()
	lastSaved := s.db.Len()
	for {
		select {
		case <-tick.C:
			if n := s.db.Len(); n != lastSaved {
				if err := s.saveDB(); err != nil {
					s.cfg.Logger.Error("pulse DB snapshot failed", "error", err)
					continue
				}
				lastSaved = n
			}
		case <-s.snapStop:
			return
		}
	}
}

// saveDB persists the shared database crash-safely (temp file + rename).
// Non-finite entries (diverged GRAPE runs) are skipped and logged rather
// than failing the snapshot — one poisoned entry must not wedge periodic
// persistence forever.
func (s *Server) saveDB() error {
	if s.cfg.DBPath == "" {
		return nil
	}
	rep, err := s.db.SaveFileWithReport(s.cfg.DBPath)
	if err != nil {
		return err
	}
	s.reg.Counter("server.db_snapshots").Inc()
	if rep.SkippedNonFinite > 0 {
		s.cfg.Logger.Warn("pulse DB snapshot skipped non-finite entries", "skipped", rep.SkippedNonFinite)
	}
	s.cfg.Logger.Info("pulse DB saved", "entries", rep.Entries, "path", s.cfg.DBPath)
	return nil
}

// Shutdown drains the server: intake stops immediately (readyz flips to
// 503, Submit returns ErrDraining), queued and running jobs get until
// ctx's deadline to finish, stragglers are cancelled through their job
// contexts, and the pulse database is persisted before returning. The
// returned error reports a missed drain deadline or a failed final save.
func (s *Server) Shutdown(ctx context.Context) error {
	s.qmu.Lock()
	if s.drain {
		s.qmu.Unlock()
		return nil
	}
	s.drain = true
	close(s.queue) // workers finish the backlog on both lanes, then exit
	close(s.queueHigh)
	s.qmu.Unlock()
	s.ready.Store(false)

	// Stop the miner first: its pre-generation lane is the lowest-priority
	// work in the process, and its generators are ctx-aware, so an
	// in-flight offline optimization is cancelled promptly and never
	// delays the drain or the final snapshot.
	if s.miner != nil {
		s.miner.Stop()
	}
	if s.started.Load() {
		close(s.snapStop)
		s.snapWG.Wait()
	}

	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("server: drain deadline exceeded, cancelling in-flight jobs")
		s.baseCancel() // jobs are ctx-aware and exit promptly
		<-done
	}
	s.baseCancel()

	if err := s.saveDB(); err != nil {
		if drainErr != nil {
			return fmt.Errorf("%v; final save: %v", drainErr, err)
		}
		return fmt.Errorf("server: final save: %v", err)
	}
	return drainErr
}

// preregisterMetrics creates the canonical instrument set up front so
// GET /metrics always serves a stable schema, zero-valued until touched.
func preregisterMetrics(r *obs.Registry) {
	for _, name := range []string{
		"server.requests", "server.requests_sync", "server.requests_async",
		"server.rejected_queue_full", "server.bad_requests",
		"server.jobs_completed", "server.jobs_failed", "server.jobs_timeout",
		"server.jobs_panicked", "server.db_snapshots",
		"paqoc.merge.rounds", "paqoc.merge.candidates", "paqoc.merge.cache_hits",
		"paqoc.merge.applied", "paqoc.merge.rejected", "paqoc.merge.preprocessed",
		"paqoc.emit.blocks",
		"grape.iterations", "grape.binsearch.probes", "grape.generated",
		"grape.db_hits", "grape.db_permuted_hits", "grape.warm_starts", "grape.expm",
		"grape.probe_prop_reuse",
		"pulsesim.slices", "pulsesim.expm", "pulsesim.esp_evals", "pulsesim.esp_gates",
		"mining.subcircuits_enumerated", "mining.pruned_qubit_cap", "mining.patterns",
		"latency.model.probes", "latency.model.db_hits",
		"engine.tasks", "engine.completed", "pulse.db_dedups",
		"server.rejected_tenant_quota",
		"cluster.peer_hits", "cluster.peer_misses", "cluster.peer_errors",
		"cluster.publishes", "cluster.breaker_opens", "cluster.breaker_skips",
		"cluster.serve_hits", "cluster.serve_merges", "grape.remote_hits",
		"pulse.nearest_scanned", "pulse.nearest_pruned",
		"pulse.evictions", "pulse.save_skipped_nonfinite",
		"miner.pregenerated", "miner.pregen_hits", "miner.idle_runs",
		"miner.yields", "miner.ingest_dropped",
	} {
		r.Counter(name)
	}
	r.Counter("obs.convergence_dropped")
	for _, name := range []string{
		"server.queue_len", "server.queue_capacity", "server.workers",
		"server.jobs_running", "cluster.owned_keys",
		"engine.inflight", "engine.active_workers", "engine.active_workers.peak",
		"engine.queued", "engine.queued.peak",
		"miner.patterns_tracked", "miner.corpus_circuits",
	} {
		r.Gauge(name)
	}
	// Latency distributions: stable schema from the first scrape, and one
	// place that fixes each family's label set and bucket layout.
	r.Histogram("server.queue_wait_ms", obs.LatencyBuckets)
	r.Histogram("engine.task_ms", obs.LatencyBuckets)
	r.Histogram("miner.pregen_ms", obs.LatencyBuckets)
	r.HistogramVec("server.job_ms", obs.LatencyBuckets, "outcome")
	r.HistogramVec(obs.StageMetric, obs.LatencyBuckets, "stage")

	for name, help := range map[string]string{
		"server.queue_wait_ms":         "Time jobs spent queued before a worker picked them up, milliseconds.",
		"server.job_ms":                "End-to-end job latency (submit to terminal state) by outcome, milliseconds.",
		obs.StageMetric:                "Per-pipeline-stage wall clock by stage, milliseconds.",
		"engine.task_ms":               "Worker-pool task wall clock, milliseconds.",
		"server.jobs_completed":        "Jobs that reached the done state.",
		"server.jobs_failed":           "Jobs that failed (including cancellations).",
		"server.jobs_timeout":          "Jobs that exceeded their deadline.",
		"server.rejected_queue_full":   "Compile requests rejected because the job queue was full.",
		"server.rejected_tenant_quota": "Compile requests rejected because the tenant was at its in-flight cap.",
		"cluster.peer_hits":            "Pulse-DB misses served by a peer replica's warm store.",
		"cluster.peer_errors":          "Peer RPCs that failed (transport error, timeout, or bad response).",
		"cluster.owned_keys":           "Warm-store entries whose rendezvous owner is this replica (recomputed per scrape).",
		"server.queue_len":             "Jobs currently queued.",
		"server.jobs_running":          "Jobs currently executing.",
		"obs.convergence_dropped":      "GRAPE convergence-trace points discarded by the per-optimization cap.",
		"grape.iterations":             "GRAPE optimizer iterations executed.",
		"pulse.db_dedups":              "Generator runs avoided by singleflight coalescing on the pulse DB.",
		"miner.pregenerated":           "APA-basis pulses pre-generated by the offline miner during idle capacity.",
		"miner.pregen_hits":            "Uses of pre-generated pulse entries by later compile requests.",
		"miner.idle_runs":              "Mining runs that found the job queue idle and entered the pre-generation lane.",
		"miner.yields":                 "Pre-generation lanes abandoned mid-run because client work arrived.",
		"miner.ingest_dropped":         "Compile-path observations dropped because the miner ingest queue was full.",
		"miner.patterns_tracked":       "Cross-request frequent patterns currently at or above the support threshold.",
		"miner.corpus_circuits":        "Circuits currently in the miner's bounded corpus across backends.",
		"miner.pregen_ms":              "Per-pulse offline pre-generation wall clock, milliseconds.",
	} {
		r.SetHelp(name, help)
	}
}
