package server

import (
	"context"
	"io"
	"net/http"
	"sync"
	"testing"

	"paqoc/internal/api"
)

// TestErrorEnvelopeShape pins the versioned wire contract for failures:
// every client-addressable error is {"error":{"code","message"}} with a
// machine-readable code, and the transport status matches the code.
func TestErrorEnvelopeShape(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	cases := []struct {
		name     string
		req      api.CompileRequest
		wantCode int
		wantErr  string
	}{
		{"no source", api.CompileRequest{}, http.StatusBadRequest, api.CodeBadRequest},
		{"unknown backend", api.CompileRequest{Circuit: tinyCircuit, Backend: "ion-trap-9000"}, http.StatusBadRequest, api.CodeUnknownBackend},
		{"bad priority", api.CompileRequest{Circuit: tinyCircuit, Priority: "urgent"}, http.StatusBadRequest, api.CodeBadRequest},
	}
	for _, tc := range cases {
		code, raw := postCompileRaw(t, ts, tc.req)
		if code != tc.wantCode {
			t.Errorf("%s: HTTP %d, want %d", tc.name, code, tc.wantCode)
		}
		if e := errorEnvelope(t, raw); e.Code != tc.wantErr || e.Message == "" {
			t.Errorf("%s: envelope %+v, want code %q with a message", tc.name, e, tc.wantErr)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
	if e := errorEnvelope(t, raw); e.Code != api.CodeJobNotFound {
		t.Errorf("unknown job envelope = %+v, want code %q", e, api.CodeJobNotFound)
	}
}

// TestTenantQuota: with a per-tenant inflight cap of one, a tenant's
// second concurrent job is rejected 429/tenant_quota (with Retry-After)
// while other tenants are unaffected, and finishing a job frees the slot.
func TestTenantQuota(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, TenantMaxInflight: 1})
	running := make(chan struct{}, 8)
	release := make(chan struct{})
	s.compileFn = func(ctx context.Context, j *Job) (*api.Result, error) {
		running <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &api.Result{}, nil
	}

	code, _ := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "async", Tenant: "alice"})
	if code != http.StatusAccepted {
		t.Fatalf("alice #1: HTTP %d, want 202", code)
	}
	<-running

	code, raw := postCompileRaw(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "async", Tenant: "alice"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("alice #2: HTTP %d, want 429", code)
	}
	if e := errorEnvelope(t, raw); e.Code != api.CodeTenantQuota {
		t.Errorf("alice #2 envelope = %+v, want code %q", e, api.CodeTenantQuota)
	}

	code, _ = postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "async", Tenant: "bob"})
	if code != http.StatusAccepted {
		t.Fatalf("bob while alice is capped: HTTP %d, want 202", code)
	}

	close(release)
	waitIdle(t, s)
	code, _ = postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "sync", Tenant: "alice"})
	if code != http.StatusOK {
		t.Fatalf("alice after quota freed: HTTP %d, want 200", code)
	}
}

// TestPriorityLane: with the single worker wedged, a high-priority job
// submitted after a normal one still runs first — the worker drains the
// high lane before the normal lane.
func TestPriorityLane(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	var mu sync.Mutex
	var order []string
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	first := make(chan struct{})
	s.compileFn = func(ctx context.Context, j *Job) (*api.Result, error) {
		mu.Lock()
		order = append(order, j.priority+":"+j.req.Circuit)
		n := len(order)
		mu.Unlock()
		started <- struct{}{}
		if n == 1 {
			<-first // hold the worker until both queued jobs are in their lanes
		}
		select {
		case <-release:
		default:
		}
		return &api.Result{}, nil
	}

	submit := func(prio string) {
		t.Helper()
		code, _ := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "async", Priority: prio})
		if code != http.StatusAccepted {
			t.Fatalf("submit %q: HTTP %d, want 202", prio, code)
		}
	}
	submit("normal") // occupies the worker
	<-started
	submit("normal") // waits in the normal lane
	submit("high")   // jumps it via the high lane
	close(first)
	close(release)
	<-started
	<-started
	waitIdle(t, s)

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[1] != "high:"+tinyCircuit {
		t.Fatalf("execution order = %v, want the high-priority job second", order)
	}
}

// waitIdle blocks until every submitted job has finished.
func waitIdle(t *testing.T, s *Server) {
	t.Helper()
	s.jobs.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs.jobs))
	for _, j := range s.jobs.jobs {
		jobs = append(jobs, j)
	}
	s.jobs.mu.Unlock()
	for _, j := range jobs {
		<-j.done
	}
}
