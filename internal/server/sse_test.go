package server

import (
	"paqoc/internal/api"

	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"paqoc/internal/obs"
)

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	id    string
	event string
	data  string
}

// readSSE parses frames off an event stream until the terminal "done"
// sentinel (or EOF / read error, returning what was seen).
func readSSE(t *testing.T, rc io.Reader) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(rc)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			frames = append(frames, cur)
			if cur.event == "done" {
				return frames
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return frames
}

// getSSE opens the event stream for a job and parses it to completion.
func getSSE(t *testing.T, ts *httptest.Server, jobID string) []sseFrame {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	return readSSE(t, resp.Body)
}

// checkSSEStream asserts the invariants every complete job stream must
// satisfy: strictly increasing ids, at least one stage event, a terminal
// state event, and the done sentinel last. Returns the count of stage and
// convergence events seen before the terminal state event.
func checkSSEStream(t *testing.T, frames []sseFrame, wantState string) (stages, convs int) {
	t.Helper()
	if len(frames) == 0 {
		t.Fatal("empty stream")
	}
	if last := frames[len(frames)-1]; last.event != "done" {
		t.Fatalf("stream must end with the done sentinel, got %+v", last)
	}
	lastSeq := uint64(0)
	terminalSeen := false
	for _, f := range frames[:len(frames)-1] {
		seq, err := strconv.ParseUint(f.id, 10, 64)
		if err != nil || seq <= lastSeq {
			t.Fatalf("ids not strictly increasing: %q after %d", f.id, lastSeq)
		}
		lastSeq = seq
		var ev obs.Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame data is not an obs.Event: %v\n%s", err, f.data)
		}
		if ev.Type != f.event {
			t.Errorf("frame event %q disagrees with payload type %q", f.event, ev.Type)
		}
		if terminalSeen {
			t.Errorf("event after terminal state: %+v", f)
		}
		switch f.event {
		case obs.EventStage:
			stages++
		case obs.EventConvergence:
			convs++
		case obs.EventState:
			if ev.State == wantState || ev.State == string(api.StateFailed) {
				terminalSeen = true
				if ev.State != wantState {
					t.Fatalf("job ended %q (%s), want %q", ev.State, ev.Err, wantState)
				}
			}
		}
	}
	if !terminalSeen {
		t.Error("no terminal state event before done sentinel")
	}
	return stages, convs
}

// TestSSESubscribeMidJob subscribes while the job is still running and
// checks the replay + live split delivers every event exactly once, in
// order, with a clean close.
func TestSSESubscribeMidJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	s.compileFn = func(ctx context.Context, j *Job) (*api.Result, error) {
		j.events.PublishStage("route", time.Millisecond)
		close(started)
		<-release
		j.events.PublishConvergence("CZ q0 q1", obs.ConvergencePoint{Iter: 25, Fidelity: 0.995, GradNorm: 1e-3})
		j.events.PublishStage("optimize", 2*time.Millisecond)
		return &api.Result{}, nil
	}

	code, out := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "async"})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	<-started // job mid-flight: route already published, optimize pending

	framesCh := make(chan []sseFrame, 1)
	go func() { framesCh <- getSSE(t, ts, out.JobID) }()
	// Give the subscriber a moment to attach mid-job, then let the job end.
	time.Sleep(20 * time.Millisecond)
	close(release)

	frames := <-framesCh
	stages, convs := checkSSEStream(t, frames, string(api.StateDone))
	if stages != 2 {
		t.Errorf("stage events = %d, want 2 (route replayed, optimize live)", stages)
	}
	if convs != 1 {
		t.Errorf("convergence events = %d, want 1", convs)
	}
}

// TestSSEAfterCompletion: a subscriber arriving after the job finished
// still gets the full history followed by an immediate clean close.
func TestSSEAfterCompletion(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.compileFn = func(ctx context.Context, j *Job) (*api.Result, error) {
		j.events.PublishStage("emit", time.Millisecond)
		return &api.Result{}, nil
	}
	code, out := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "sync"})
	if code != http.StatusOK {
		t.Fatalf("sync compile = %d, want 200", code)
	}
	frames := getSSE(t, ts, out.JobID)
	stages, _ := checkSSEStream(t, frames, string(api.StateDone))
	if stages != 1 {
		t.Errorf("replayed stage events = %d, want 1", stages)
	}
}

func TestSSEUnknownAndEvictedJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, JobRetention: 1})
	s.compileFn = func(ctx context.Context, j *Job) (*api.Result, error) {
		return &api.Result{}, nil
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events = %d, want 404", resp.StatusCode)
	}

	// Retention 1: finishing a second job evicts the first.
	_, first := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "sync"})
	_, _ = postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "sync"})
	resp, err = http.Get(ts.URL + "/v1/jobs/" + first.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job events = %d, want 404", resp.StatusCode)
	}
}

// TestSSEFailedJobCarriesError: the terminal state event of a failed job
// carries the failure message.
func TestSSEFailedJobCarriesError(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.compileFn = func(ctx context.Context, j *Job) (*api.Result, error) {
		return nil, context.DeadlineExceeded
	}
	code, out := postCompile(t, ts, api.CompileRequest{Circuit: tinyCircuit, Mode: "sync"})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("failed compile = %d, want 504", code)
	}
	frames := getSSE(t, ts, out.JobID)
	var sawFailure bool
	for _, f := range frames {
		if f.event != obs.EventState {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.State == string(api.StateFailed) && ev.Err != "" {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Errorf("no failed state event with error message in %+v", frames)
	}
}
