package statevec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"paqoc/internal/bench"
	"paqoc/internal/circuit"
	"paqoc/internal/quantum"
)

func TestNewStateBounds(t *testing.T) {
	if _, err := NewState(0); err == nil {
		t.Error("0 qubits should fail")
	}
	if _, err := NewState(MaxQubits + 1); err == nil {
		t.Error("too many qubits should fail")
	}
	s, err := NewState(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Probability(0) != 1 {
		t.Error("initial state should be |000>")
	}
}

func TestBasisState(t *testing.T) {
	s, err := NewBasisState(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Probability(5) != 1 {
		t.Error("basis state wrong")
	}
	if _, err := NewBasisState(2, 4); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestBellState(t *testing.T) {
	c := circuit.New(2)
	c.Add("h", 0)
	c.Add("cx", 0, 1)
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(0)-0.5) > 1e-12 || math.Abs(s.Probability(3)-0.5) > 1e-12 {
		t.Errorf("Bell probabilities wrong: %v", s.Amps)
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Error("norm drift")
	}
}

func TestAgainstDenseUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	names := []string{"h", "t", "s", "x", "sx"}
	for trial := 0; trial < 10; trial++ {
		c := circuit.New(4)
		for i := 0; i < 25; i++ {
			switch rng.Intn(3) {
			case 0:
				c.Add(names[rng.Intn(len(names))], rng.Intn(4))
			case 1:
				c.AddParam("rz", []float64{rng.Float64() * 2 * math.Pi}, rng.Intn(4))
			default:
				a, b := rng.Intn(4), rng.Intn(4)
				for b == a {
					b = rng.Intn(4)
				}
				c.Add("cx", a, b)
			}
		}
		s, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		u, err := c.Unitary(5)
		if err != nil {
			t.Fatal(err)
		}
		vec := make([]complex128, 16)
		vec[0] = 1
		want := u.MulVec(vec)
		for i := range want {
			if d := cmAbs(want[i] - s.Amps[i]); d > 1e-9 {
				t.Fatalf("trial %d: amp %d differs by %g", trial, i, d)
			}
		}
	}
}

func TestThreeQubitGateApplication(t *testing.T) {
	// CCX via statevector on non-adjacent wires.
	s, _ := NewBasisState(4, 0b1011) // q0=1, q1=0, q2=1, q3=1
	if err := s.ApplyUnitary(quantum.MatCCX, []int{0, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// controls q0=1, q2=1 → flip q3: 1011 → 1010.
	if s.Probability(0b1010) != 1 {
		t.Errorf("CCX application wrong: %v", s.Amps)
	}
}

func TestApplyErrors(t *testing.T) {
	s, _ := NewState(2)
	if err := s.ApplyUnitary(quantum.MatCX, []int{0}); err == nil {
		t.Error("dim mismatch should fail")
	}
	if err := s.ApplyUnitary(quantum.MatCX, []int{0, 0}); err == nil {
		t.Error("duplicate wires should fail")
	}
	if err := s.ApplyUnitary(quantum.MatCX, []int{0, 5}); err == nil {
		t.Error("out-of-range wire should fail")
	}
	c := circuit.New(3)
	if err := s.ApplyCircuit(c); err == nil {
		t.Error("qubit-count mismatch should fail")
	}
	sym := circuit.New(2)
	sym.AddSymbolic("rz", "a", 0)
	if err := s.ApplyCircuit(sym); err == nil {
		t.Error("symbolic gate should fail")
	}
}

func TestNormPreservedQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.New(5)
		for i := 0; i < 15; i++ {
			a, b := rng.Intn(5), rng.Intn(5)
			for b == a {
				b = rng.Intn(5)
			}
			c.Add("cx", a, b)
			c.Add("h", rng.Intn(5))
		}
		s, err := Run(c)
		if err != nil {
			return false
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSampleDistribution(t *testing.T) {
	c := circuit.New(1)
	c.Add("h", 0)
	s, _ := Run(c)
	rng := rand.New(rand.NewSource(1))
	counts := Counts(s.Sample(rng, 10000), 1)
	if counts["0"] < 4500 || counts["0"] > 5500 {
		t.Errorf("H sampling skewed: %v", counts)
	}
}

func TestExpectationZ(t *testing.T) {
	s, _ := NewState(2) // |00>
	if math.Abs(s.ExpectationZ(0)-1) > 1e-12 {
		t.Error("<Z> of |0> should be 1")
	}
	s.ApplyUnitary(quantum.MatX, []int{1})
	if math.Abs(s.ExpectationZ(1)+1) > 1e-12 {
		t.Error("<Z> of |1> should be -1")
	}
	s.ApplyUnitary(quantum.MatH, []int{0})
	if math.Abs(s.ExpectationZ(0)) > 1e-12 {
		t.Error("<Z> of |+> should be 0")
	}
}

func TestFidelityAndOverlap(t *testing.T) {
	a, _ := NewState(2)
	b, _ := NewState(2)
	f, err := Fidelity(a, b)
	if err != nil || math.Abs(f-1) > 1e-12 {
		t.Errorf("identical states fidelity %g (%v)", f, err)
	}
	c, _ := NewBasisState(2, 3)
	f, _ = Fidelity(a, c)
	if f != 0 {
		t.Error("orthogonal states fidelity should be 0")
	}
	d, _ := NewState(3)
	if _, err := Fidelity(a, d); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestBVOnStatevector(t *testing.T) {
	// Full 21-qubit BV run — far beyond the dense-unitary limit.
	spec, _ := bench.ByName("bv")
	c := spec.Build()
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// The data register must measure the secret (all ones) with certainty;
	// marginalize over the ancilla (last qubit).
	secretIdx := 0
	for q := 0; q < 20; q++ {
		secretIdx |= 1 << (c.NumQubits - 1 - q)
	}
	p := s.Probability(secretIdx) + s.Probability(secretIdx|1)
	if math.Abs(p-1) > 1e-9 {
		t.Errorf("BV secret probability %g", p)
	}
}

func cmAbs(v complex128) float64 {
	return math.Hypot(real(v), imag(v))
}

func BenchmarkApplyCX16Qubits(b *testing.B) {
	s, _ := NewState(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.ApplyUnitary(quantum.MatCX, []int{3, 11}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunQFT12(b *testing.B) {
	c := bench.QFT(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c); err != nil {
			b.Fatal(err)
		}
	}
}
