// Package statevec is a statevector simulator: it applies gates directly
// to a 2^n amplitude vector without materializing circuit unitaries, which
// extends exact whole-circuit checks and fidelity estimates well past the
// dense-matrix limit of internal/pulsesim (n ≲ 12 → n ≲ 24), and supports
// measurement sampling for end-to-end demos.
package statevec

import (
	"fmt"
	"math/cmplx"
	"math/rand"

	"paqoc/internal/circuit"
	"paqoc/internal/linalg"
)

// State is an n-qubit pure state. Qubit 0 is the most significant bit of
// the amplitude index, matching the convention of internal/quantum.
type State struct {
	NumQubits int
	Amps      []complex128
}

// MaxQubits bounds allocations (2^24 amplitudes ≈ 256 MiB).
const MaxQubits = 24

// NewState returns |0…0⟩ on n qubits.
func NewState(n int) (*State, error) {
	if n <= 0 || n > MaxQubits {
		return nil, fmt.Errorf("statevec: %d qubits outside 1..%d", n, MaxQubits)
	}
	s := &State{NumQubits: n, Amps: make([]complex128, 1<<n)}
	s.Amps[0] = 1
	return s, nil
}

// NewBasisState returns |index⟩.
func NewBasisState(n, index int) (*State, error) {
	s, err := NewState(n)
	if err != nil {
		return nil, err
	}
	if index < 0 || index >= len(s.Amps) {
		return nil, fmt.Errorf("statevec: basis index %d out of range", index)
	}
	s.Amps[0] = 0
	s.Amps[index] = 1
	return s, nil
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	return &State{NumQubits: s.NumQubits, Amps: append([]complex128(nil), s.Amps...)}
}

// Norm returns ⟨ψ|ψ⟩ (should stay 1 under unitary gates).
func (s *State) Norm() float64 {
	var t float64
	for _, a := range s.Amps {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return t
}

// ApplyUnitary applies a k-qubit unitary to the given wires in place.
func (s *State) ApplyUnitary(u *linalg.Matrix, wires []int) error {
	k := len(wires)
	if u.Rows != 1<<k || u.Cols != 1<<k {
		return fmt.Errorf("statevec: unitary dim %d does not match %d wires", u.Rows, k)
	}
	seen := map[int]bool{}
	shift := make([]int, k) // bit position (from LSB) of each wire
	for i, w := range wires {
		if w < 0 || w >= s.NumQubits || seen[w] {
			return fmt.Errorf("statevec: bad wire list %v", wires)
		}
		seen[w] = true
		shift[i] = s.NumQubits - 1 - w
	}

	dim := 1 << k
	scratchIdx := make([]int, dim)
	scratchAmp := make([]complex128, dim)

	// Enumerate all assignments of the non-wire bits: iterate every basis
	// index whose wire bits are all zero, then fan out the 2^k sub-block.
	wireMask := 0
	for _, sh := range shift {
		wireMask |= 1 << sh
	}
	n := len(s.Amps)
	for base := 0; base < n; base++ {
		if base&wireMask != 0 {
			continue
		}
		for sub := 0; sub < dim; sub++ {
			idx := base
			for b := 0; b < k; b++ {
				if sub>>(k-1-b)&1 == 1 {
					idx |= 1 << shift[b]
				}
			}
			scratchIdx[sub] = idx
			scratchAmp[sub] = s.Amps[idx]
		}
		for row := 0; row < dim; row++ {
			var acc complex128
			urow := u.Data[row*dim : (row+1)*dim]
			for col, a := range scratchAmp {
				if a != 0 {
					acc += urow[col] * a
				}
			}
			s.Amps[scratchIdx[row]] = acc
		}
	}
	return nil
}

// ApplyGate applies one circuit gate.
func (s *State) ApplyGate(g circuit.Gate) error {
	u, err := g.Unitary()
	if err != nil {
		return err
	}
	return s.ApplyUnitary(u, g.Qubits)
}

// ApplyCircuit runs all gates of a circuit in order.
func (s *State) ApplyCircuit(c *circuit.Circuit) error {
	if c.NumQubits != s.NumQubits {
		return fmt.Errorf("statevec: circuit has %d qubits, state has %d", c.NumQubits, s.NumQubits)
	}
	for _, g := range c.Gates {
		if err := s.ApplyGate(g); err != nil {
			return err
		}
	}
	return nil
}

// Run simulates a circuit from |0…0⟩.
func Run(c *circuit.Circuit) (*State, error) {
	s, err := NewState(c.NumQubits)
	if err != nil {
		return nil, err
	}
	if err := s.ApplyCircuit(c); err != nil {
		return nil, err
	}
	return s, nil
}

// Probability returns |⟨index|ψ⟩|².
func (s *State) Probability(index int) float64 {
	a := s.Amps[index]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Overlap returns ⟨a|b⟩.
func Overlap(a, b *State) (complex128, error) {
	if a.NumQubits != b.NumQubits {
		return 0, fmt.Errorf("statevec: qubit mismatch")
	}
	var t complex128
	for i := range a.Amps {
		t += cmplx.Conj(a.Amps[i]) * b.Amps[i]
	}
	return t, nil
}

// Fidelity returns |⟨a|b⟩|².
func Fidelity(a, b *State) (float64, error) {
	ov, err := Overlap(a, b)
	if err != nil {
		return 0, err
	}
	return real(ov)*real(ov) + imag(ov)*imag(ov), nil
}

// Sample draws shot computational-basis measurement outcomes.
func (s *State) Sample(rng *rand.Rand, shots int) []int {
	out := make([]int, shots)
	for i := 0; i < shots; i++ {
		r := rng.Float64()
		acc := 0.0
		idx := len(s.Amps) - 1
		for j, a := range s.Amps {
			acc += real(a)*real(a) + imag(a)*imag(a)
			if r < acc {
				idx = j
				break
			}
		}
		out[i] = idx
	}
	return out
}

// Counts aggregates samples into a histogram keyed by bitstring.
func Counts(samples []int, n int) map[string]int {
	out := map[string]int{}
	for _, s := range samples {
		out[bitstring(s, n)]++
	}
	return out
}

func bitstring(v, n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		if v>>(n-1-i)&1 == 1 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// ExpectationZ returns ⟨Z_q⟩ for one qubit.
func (s *State) ExpectationZ(q int) float64 {
	sh := s.NumQubits - 1 - q
	var e float64
	for i, a := range s.Amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if i>>sh&1 == 0 {
			e += p
		} else {
			e -= p
		}
	}
	return e
}
