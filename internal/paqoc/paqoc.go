// Package paqoc is the top of the stack: the Program-Aware QOC pulse
// generation framework (Fig. 7). It wires together the frequent-subcircuits
// miner (APA-basis gates, §III-A), the criticality-aware customized gates
// generator (Algorithm 1, §V-A), and a control-pulse generator (GRAPE or
// the calibrated analytical model) with its pulse database (§V-B).
package paqoc

import (
	"context"
	"fmt"
	"time"

	"paqoc/internal/circuit"
	"paqoc/internal/commute"
	"paqoc/internal/critical"
	"paqoc/internal/device"
	"paqoc/internal/engine"
	"paqoc/internal/latency"
	"paqoc/internal/mining"
	"paqoc/internal/obs"
	"paqoc/internal/pulse"
	"paqoc/internal/pulsesim"
	"paqoc/internal/topology"
)

// MInf requests unlimited APA-basis gates (the paper's paqoc(M=inf)).
const MInf = -1

// Config holds the user-facing knobs of §V-C.
type Config struct {
	// MaxN caps customized-gate width; the evaluation uses 3 (§VI-c).
	MaxN int
	// TopK is the number of merges applied per iteration (§V-A2).
	TopK int
	// M caps the number of APA-basis gates: 0 disables the miner
	// (paqoc(M=0)), MInf removes the limit (paqoc(M=inf)), positive values
	// select the top-M patterns by coverage.
	M int
	// MinSupport is the miner's recurrence threshold (default 2).
	MinSupport int
	// FidelityTarget is the per-customized-gate GRAPE fidelity (§VI-d sets
	// it "as high as possible" so the circuit ESP beats the baseline);
	// default 0.999.
	FidelityTarget float64
	// PruneCaseIII drops merges of two non-critical blocks (§V-A1).
	// Enabled by default via New.
	PruneCaseIII bool
	// ProbeCaseII asks the real generator (not just the analytical model)
	// for Case II candidates, as §V-A prescribes.
	ProbeCaseII bool
	// MaxIterations bounds Algorithm 1's outer loop (safety; the loop
	// normally stops when no merge improves the critical path).
	MaxIterations int
	// Mining bounds the pattern search.
	Mining mining.Options
	// Preselected supplies offline-mined APA selections for the
	// online/offline split on parameterized circuits (§I contribution 5).
	Preselected []mining.Selection
	// Commute enables the commutativity-aware canonicalization pass
	// (internal/commute) before mining and merging — the CLS-inspired
	// extension the paper lists as future work (§VII). Off by default to
	// match the paper's evaluated configuration.
	Commute bool
	// Workers bounds the pulse-generation worker pool (internal/engine)
	// used by the emit stage and the ranking probes. 0 or 1 runs serially,
	// reproducing the single-threaded pipeline exactly; higher values fan
	// out across independent customized gates, with the shared pulse
	// database deduplicating concurrent GRAPE runs on the same unitary.
	Workers int
}

// DefaultConfig mirrors the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{
		MaxN:           3,
		TopK:           1,
		M:              0,
		MinSupport:     2,
		FidelityTarget: 0.999,
		PruneCaseIII:   true,
		ProbeCaseII:    true,
		MaxIterations:  10000,
		Mining:         mining.DefaultOptions(),
	}
}

// Result is the output of a compilation.
type Result struct {
	Blocks *critical.BlockCircuit
	// Latency is the final circuit latency: the weighted critical path of
	// the block DAG with generated pulse durations (dt).
	Latency float64
	// InitialLatency is the fixed-gate baseline: per-basis-gate pulses
	// stitched along the dependence DAG.
	InitialLatency float64
	// TotalLatency is the sequential sum of block pulse durations.
	TotalLatency float64
	// ESP is Eq. (2)'s estimated success probability.
	ESP float64
	// CompileCost sums online pulse-generation costs in (modelled)
	// seconds — the ~95% component of compilation time (§VI-B) — plus the
	// measured search time.
	CompileCost float64
	// OfflineCost is the pulse-generation cost of APA-basis gates, which
	// the offline component precomputes (§V-C, §I contribution 5): APA
	// pulses "only need to be calculated once" and are excluded from the
	// online compile time.
	OfflineCost float64
	// WallTime is the measured end-to-end compilation time.
	WallTime time.Duration
	// Iterations is the number of Algorithm 1 outer iterations executed.
	Iterations int
	// APASelections are the APA-basis gates used (empty when M = 0).
	APASelections []mining.Selection
	// NumBlocks is the number of customized gates in the output.
	NumBlocks int
}

// Compiler compiles physical circuits into pulses. A Compiler runs one
// Compile at a time (build one per goroutine for concurrent compilations —
// pulse databases are safe to share between them), and parallelizes inside
// a compilation when Config.Workers > 1.
type Compiler struct {
	// Gen generates the final (and Case II probe) pulses.
	Gen pulse.Generator
	// Ranker is the fast analytical estimator used by the search.
	Ranker *latency.Model
	Cfg    Config

	probeCost float64 // Case II probe costs accumulated during optimize
}

// New builds a compiler around a pulse generator. If gen is nil, the
// analytical model serves as both ranker and generator (the configuration
// used for the paper-scale sweeps).
func New(gen pulse.Generator, topo *topology.Topology, cfg Config) *Compiler {
	ranker := latency.NewModel()
	ranker.Topo = topo
	if gen == nil {
		// A separate model instance with its own pulse database: ranking
		// probes must not pre-populate the generator's DB, or compile-cost
		// accounting (Fig. 11) would see every final pulse as a free hit.
		m := latency.NewModel()
		m.Topo = topo
		gen = m
	}
	if cfg.MaxN == 0 {
		cfg.MaxN = 3
	}
	if cfg.TopK == 0 {
		cfg.TopK = 1
	}
	if cfg.FidelityTarget == 0 {
		cfg.FidelityTarget = 0.999
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = 10000
	}
	return &Compiler{Gen: gen, Ranker: ranker, Cfg: cfg}
}

// NewForProfile builds a compiler targeting a device profile: the ranker
// (and, when gen is nil, the model generator) estimates against the
// profile's control bounds instead of the paper's constants. With the
// default profile it is equivalent to New(gen, prof.Topology(), cfg).
func NewForProfile(gen pulse.Generator, prof *device.Profile, cfg Config) *Compiler {
	cp := New(gen, prof.Topology(), cfg)
	cp.Ranker.Params = prof.Params()
	if m, ok := cp.Gen.(*latency.Model); ok {
		m.Params = prof.Params()
	}
	return cp
}

// workers returns the effective pool width: Config.Workers clamped to at
// least 1 (serial).
func (cp *Compiler) workers() int {
	if cp.Cfg.Workers > 1 {
		return cp.Cfg.Workers
	}
	return 1
}

// rank estimates a merged block's latency with the analytical model.
func (cp *Compiler) rank(ctx context.Context, b *critical.Block) (float64, error) {
	g, err := cp.Ranker.GenerateCtx(ctx, b.Custom(), cp.Cfg.FidelityTarget)
	if err != nil {
		return 0, err
	}
	return g.Latency, nil
}

// CompileCtx runs the full pipeline on a physical circuit, with
// observability: when the context carries an
// obs tracer and/or metrics registry (internal/obs), every pipeline stage
// opens a span (paqoc.mine, paqoc.initial_blocks, paqoc.apply_apa,
// paqoc.optimize, paqoc.emit) and the merge loop, the pulse generators,
// and the simulator update counters. With a bare context the behaviour
// and cost match Compile.
func (cp *Compiler) CompileCtx(ctx context.Context, phys *circuit.Circuit) (*Result, error) {
	start := time.Now()
	res := &Result{}
	ctx, root := obs.StartSpan(ctx, "paqoc.compile")
	root.SetAttr("gates", len(phys.Gates))
	root.SetAttr("qubits", phys.NumQubits)
	defer root.End()

	// Per-stage wall-clock distribution (ms) and live stage events. Both
	// are nil-safe no-ops with a bare context; stageDone fires once per
	// pipeline stage, so its cost is negligible against the stage itself.
	stageMs := obs.MetricsFrom(ctx).HistogramVec(obs.StageMetric, obs.LatencyBuckets, "stage")
	events := obs.EventsFrom(ctx)
	stageDone := func(stage string, began time.Time) {
		d := time.Since(began)
		stageMs.WithLabelValues(stage).Observe(float64(d) / float64(time.Millisecond))
		events.PublishStage(stage, d)
	}

	if cp.Cfg.Commute {
		_, span := obs.StartSpan(ctx, "paqoc.commute")
		t0 := time.Now()
		phys = commute.Canonicalize(phys)
		stageDone("commute", t0)
		span.End()
	}

	// ── Frequent subcircuits miner → APA-basis gates ──────────────────
	selections := cp.Cfg.Preselected
	if selections == nil && cp.Cfg.M != 0 {
		mctx, span := obs.StartSpan(ctx, "paqoc.mine")
		t0 := time.Now()
		patterns, err := mining.MineCtx(mctx, phys, cp.miningOpts())
		if err != nil {
			span.End()
			return nil, fmt.Errorf("paqoc: %w", err)
		}
		selections = mining.Select(phys, patterns, cp.Cfg.M, cp.Cfg.MinSupport)
		stageDone("mine", t0)
		span.SetAttr("patterns", len(patterns))
		span.SetAttr("selections", len(selections))
		span.End()
	}
	res.APASelections = selections

	// ── Initial block circuit with analytical latencies ───────────────
	ibctx, ibSpan := obs.StartSpan(ctx, "paqoc.initial_blocks")
	t0 := time.Now()
	bc, err := critical.FromCircuit(phys, func(cg *pulse.CustomGate) (float64, error) {
		g, err := cp.Ranker.GenerateCtx(ibctx, cg, cp.Cfg.FidelityTarget)
		if err != nil {
			return 0, err
		}
		return g.Latency, nil
	})
	stageDone("initial_blocks", t0)
	ibSpan.End()
	if err != nil {
		return nil, err
	}
	res.InitialLatency = bc.CriticalPath()

	apaCtx, apaSpan := obs.StartSpan(ctx, "paqoc.apply_apa")
	t0 = time.Now()
	err = cp.applyAPA(apaCtx, bc, selections)
	stageDone("apply_apa", t0)
	apaSpan.End()
	if err != nil {
		return nil, err
	}

	// ── Criticality-aware customized gates generator (Algorithm 1) ────
	octx, optSpan := obs.StartSpan(ctx, "paqoc.optimize")
	t0 = time.Now()
	iters, err := cp.optimize(octx, bc)
	stageDone("optimize", t0)
	optSpan.SetAttr("iterations", iters)
	optSpan.End()
	if err != nil {
		return nil, err
	}
	res.Iterations = iters

	// ── Control pulses generator: emit final pulses per block on the
	// worker pool. APA blocks first (with a barrier), so their (offline)
	// pulses are in the database before the online pass runs. Each task
	// writes only its own block; the shared pulse database deduplicates
	// concurrent generations of the same unitary. ──────────────────────
	ectx, emitSpan := obs.StartSpan(ctx, "paqoc.emit")
	t0 = time.Now()
	emitted := obs.MetricsFrom(ctx).Counter("paqoc.emit.blocks")
	emitSpan.SetAttr("workers", cp.workers())
	// APA-basis pulses are the offline investment of §V-C: when the
	// generator shares a capacity-bounded pulse DB (a long-running
	// server), protect their entries so ranked eviction drops cold online
	// pulses first.
	var pulseDB *pulse.DB
	if p, ok := cp.Gen.(pulse.DBProvider); ok {
		pulseDB = p.PulseDB()
	}
	emit := func(ctx context.Context, b *critical.Block) error {
		gen, err := cp.Gen.GenerateCtx(ctx, b.Custom(), cp.Cfg.FidelityTarget)
		if err != nil {
			// %w: callers classify deadline/cancel from the error chain.
			return fmt.Errorf("paqoc: generating pulses for %s: %w", b.Custom().Describe(), err)
		}
		if b.APA && pulseDB != nil {
			if u, uerr := b.Custom().Unitary(); uerr == nil {
				pulseDB.Protect(u)
			}
		}
		emitted.Inc()
		b.Gen = gen
		b.Latency = gen.Latency
		return nil
	}
	emitPhase := func(apa bool) error {
		g, _ := engine.WithContext(ectx, cp.workers())
		for _, b := range bc.Blocks {
			if b.APA == apa {
				b := b
				g.Go(func(ctx context.Context) error { return emit(ctx, b) })
			}
		}
		return g.Wait()
	}
	for _, apa := range []bool{true, false} {
		if err := emitPhase(apa); err != nil {
			emitSpan.End()
			return nil, err
		}
	}
	stageDone("emit", t0)
	emitSpan.End()
	// Cost accounting in block order — the same order the serial loops
	// summed in, so totals are bit-identical at workers=1 and
	// deterministic for any worker count.
	var cost, offline float64
	for _, b := range bc.Blocks {
		if b.Gen == nil {
			continue
		}
		if b.APA {
			offline += b.Gen.Cost
		} else {
			cost += b.Gen.Cost
		}
	}
	res.OfflineCost = offline
	// Probe costs already accumulated inside optimize().
	cost += cp.probeCost
	cp.probeCost = 0

	res.Blocks = bc
	res.Latency = bc.CriticalPath()
	res.TotalLatency = bc.TotalLatency()
	res.ESP = pulsesim.ESPCtx(ctx, bc.Generated())
	res.WallTime = time.Since(start)
	// Total compilation overhead: pulse generation (the ~95% component,
	// §VI-B) plus the measured search/mining time.
	res.CompileCost = cost + res.WallTime.Seconds()
	res.NumBlocks = len(bc.Blocks)
	return res, nil
}

func (cp *Compiler) miningOpts() mining.Options {
	o := cp.Cfg.Mining
	if o.MaxQubits == 0 || o.MaxQubits > cp.Cfg.MaxN {
		o.MaxQubits = cp.Cfg.MaxN
	}
	if o.MinSupport == 0 {
		o.MinSupport = cp.Cfg.MinSupport
	}
	return o
}

// applyAPA replaces the selected embeddings with single blocks.
func (cp *Compiler) applyAPA(ctx context.Context, bc *critical.BlockCircuit, selections []mining.Selection) error {
	if len(selections) == 0 {
		return nil
	}
	// Collect gate-index → embedding assignments. Initial blocks map 1:1
	// to gate indices, so embeddings translate directly.
	for _, sel := range selections {
		for _, emb := range sel.Chosen {
			if err := cp.mergeRun(ctx, bc, emb); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergeRun fuses the blocks holding the given original gate indices into a
// single APA block by repeated pairwise merging. Blocks are tracked through
// index shifts via their Origin tags.
func (cp *Compiler) mergeRun(ctx context.Context, bc *critical.BlockCircuit, gateIdx []int) error {
	gset := make(map[int]bool, len(gateIdx))
	for _, gi := range gateIdx {
		gset[gi] = true
	}
	for {
		members := memberBlocks(bc, gset)
		if len(members) <= 1 {
			if len(members) == 1 {
				bc.Blocks[members[0]].APA = true
			}
			return nil
		}
		merged := false
	search:
		for _, i := range members {
			for _, j := range members {
				if i >= j || !bc.ValidMerge(i, j, cp.Cfg.MaxN) {
					continue
				}
				m := critical.Merge(bc.Blocks[i], bc.Blocks[j])
				lat, err := cp.rank(ctx, m)
				if err != nil {
					return err
				}
				m.APA = true
				bc.ReplaceMerge(i, j, m, lat, nil)
				merged = true
				break search
			}
		}
		if !merged {
			// Remaining members cannot legally fuse (the selection's
			// convexity held on the original circuit but an earlier APA
			// replacement intervened); leave them as separate blocks.
			return nil
		}
	}
}

// memberBlocks returns indices of blocks consisting entirely of gates from
// the given original-index set.
func memberBlocks(bc *critical.BlockCircuit, gset map[int]bool) []int {
	var out []int
	for bi, b := range bc.Blocks {
		if len(b.Origin) == 0 {
			continue
		}
		all := true
		for _, o := range b.Origin {
			if !gset[o] {
				all = false
				break
			}
		}
		if all {
			out = append(out, bi)
		}
	}
	return out
}
