package paqoc

import (
	"context"
	"math/rand"
	"testing"

	"paqoc/internal/circuit"
	"paqoc/internal/linalg"
	"paqoc/internal/mining"
	"paqoc/internal/topology"
)

// swapHeavy builds a bv-like circuit: long CX chains with SWAP idioms.
func swapHeavy(nq, reps int) *circuit.Circuit {
	c := circuit.New(nq)
	for r := 0; r < reps; r++ {
		for i := 0; i+1 < nq; i++ {
			c.Add("cx", i, i+1)
			c.Add("cx", i+1, i)
			c.Add("cx", i, i+1)
		}
	}
	return c
}

func compile(t *testing.T, c *circuit.Circuit, cfg Config) *Result {
	t.Helper()
	comp := New(nil, topology.Line(c.NumQubits), cfg)
	res, err := comp.CompileCtx(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCompileReducesLatency(t *testing.T) {
	c := swapHeavy(4, 3)
	res := compile(t, c, DefaultConfig())
	if res.Latency >= res.InitialLatency {
		t.Errorf("no improvement: %.1f vs initial %.1f", res.Latency, res.InitialLatency)
	}
	// SWAP idioms should shrink dramatically: expect well under 60%.
	if res.Latency > 0.6*res.InitialLatency {
		t.Errorf("latency %.1f > 60%% of initial %.1f", res.Latency, res.InitialLatency)
	}
	if res.NumBlocks >= len(c.Gates) {
		t.Error("no gates were merged")
	}
}

func TestCompilePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	names := []string{"h", "t", "s", "x"}
	for trial := 0; trial < 5; trial++ {
		c := circuit.New(3)
		for i := 0; i < 15; i++ {
			if rng.Intn(2) == 0 {
				c.Add(names[rng.Intn(len(names))], rng.Intn(3))
			} else {
				a, b := rng.Intn(3), rng.Intn(3)
				for b == a {
					b = rng.Intn(3)
				}
				c.Add("cx", a, b)
			}
		}
		want, err := c.Unitary(4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.M = MInf
		res := compile(t, c, cfg)
		got, err := res.Blocks.Flatten().Unitary(4)
		if err != nil {
			t.Fatal(err)
		}
		if linalg.GlobalPhaseDistance(want, got) > 1e-8 {
			t.Fatalf("trial %d: compilation changed the circuit unitary", trial)
		}
	}
}

func TestAPAReducesCompileCost(t *testing.T) {
	// Fig. 11's shape: with recurring patterns, paqoc(M=inf) compiles
	// cheaper than paqoc(M=0); Fig. 10's shape: M=0 achieves latency at
	// least as good as M=inf.
	c := swapHeavy(5, 4)

	m0 := compile(t, c, DefaultConfig())
	cfgInf := DefaultConfig()
	cfgInf.M = MInf
	mInf := compile(t, c, cfgInf)

	if mInf.CompileCost > m0.CompileCost {
		t.Errorf("M=inf cost %.3f should not exceed M=0 cost %.3f", mInf.CompileCost, m0.CompileCost)
	}
	if m0.Latency > mInf.Latency*1.05 {
		t.Errorf("M=0 latency %.1f should be ≤ M=inf latency %.1f (small tolerance)", m0.Latency, mInf.Latency)
	}
	if len(mInf.APASelections) == 0 {
		t.Error("M=inf found no APA gates on a recurring circuit")
	}
	if len(m0.APASelections) != 0 {
		t.Error("M=0 must not select APA gates")
	}
}

func TestTunedMBetweenExtremes(t *testing.T) {
	c := swapHeavy(5, 4)
	patterns, err := mining.MineCtx(context.Background(), c, mining.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := mining.TunedM(c, patterns, 2)
	if m <= 0 {
		t.Skip("no tuned M on this circuit")
	}
	cfg := DefaultConfig()
	cfg.M = m
	tuned := compile(t, c, cfg)

	cfgInf := DefaultConfig()
	cfgInf.M = MInf
	inf := compile(t, c, cfgInf)
	m0 := compile(t, c, DefaultConfig())

	// Tuned sits between the extremes on compile cost (within tolerance).
	if tuned.CompileCost > m0.CompileCost*1.1 {
		t.Errorf("tuned cost %.3f should be ≤ M=0 cost %.3f", tuned.CompileCost, m0.CompileCost)
	}
	if tuned.Latency > inf.Latency*1.3 {
		t.Errorf("tuned latency %.1f way above M=inf %.1f", tuned.Latency, inf.Latency)
	}
}

func TestMonotonicLatencyContract(t *testing.T) {
	// Algorithm 1's contract: every accepted merge decreases the critical
	// path, so the final latency never exceeds the initial one (with
	// model-based generation, final == search estimates).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		c := circuit.New(5)
		for i := 0; i < 40; i++ {
			if rng.Intn(3) == 0 {
				c.Add("h", rng.Intn(5))
			} else {
				a, b := rng.Intn(5), rng.Intn(5)
				for b == a {
					b = rng.Intn(5)
				}
				c.Add("cx", a, b)
			}
		}
		res := compile(t, c, DefaultConfig())
		if res.Latency > res.InitialLatency+1e-6 {
			t.Fatalf("trial %d: latency grew %.2f → %.2f", trial, res.InitialLatency, res.Latency)
		}
	}
}

func TestESPInRange(t *testing.T) {
	res := compile(t, swapHeavy(4, 2), DefaultConfig())
	if res.ESP <= 0 || res.ESP > 1 {
		t.Errorf("ESP = %g out of range", res.ESP)
	}
	// Fewer customized gates than original gates → ESP above the fixed
	// per-gate floor (1-ε)^len(gates).
	if res.NumBlocks >= 18 {
		t.Errorf("blocks = %d, expected heavy merging", res.NumBlocks)
	}
}

func TestTopKVariants(t *testing.T) {
	c := swapHeavy(5, 3)
	cfg1 := DefaultConfig()
	res1 := compile(t, c, cfg1)
	cfg4 := DefaultConfig()
	cfg4.TopK = 4
	res4 := compile(t, c, cfg4)
	// Larger k converges in fewer iterations.
	if res4.Iterations > res1.Iterations {
		t.Errorf("topK=4 took more iterations (%d) than topK=1 (%d)", res4.Iterations, res1.Iterations)
	}
	// §V-A2: larger k may end less optimal, never dramatically better.
	if res4.Latency < res1.Latency*0.8 {
		t.Errorf("unexpected: topK=4 latency %.1f far below topK=1 %.1f", res4.Latency, res1.Latency)
	}
}

func TestCaseIIIPruningAblation(t *testing.T) {
	c := swapHeavy(5, 3)
	pruned := compile(t, c, DefaultConfig())
	cfg := DefaultConfig()
	cfg.PruneCaseIII = false
	unpruned := compile(t, c, cfg)
	// Pruning must not lose latency quality (Case III merges cannot shrink
	// the critical path).
	if pruned.Latency > unpruned.Latency+1e-6 {
		t.Errorf("pruned latency %.1f worse than unpruned %.1f", pruned.Latency, unpruned.Latency)
	}
}

func TestParameterizedOfflineOnline(t *testing.T) {
	// Offline: mine the symbolic circuit. Online: bind and compile reusing
	// the offline selections (§I contribution 5).
	sym := circuit.New(4)
	for i := 0; i+1 < 4; i++ {
		sym.Add("cx", i, i+1)
		sym.AddSymbolic("rz", "gamma", i+1)
		sym.Add("cx", i, i+1)
	}
	patterns, err := mining.MineCtx(context.Background(), sym, mining.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) == 0 {
		t.Fatal("offline mining found nothing on the symbolic circuit")
	}
	selections := mining.Select(sym, patterns, -1, 2)
	if len(selections) == 0 {
		t.Fatal("no selections")
	}

	bound := sym.Bind(map[string]float64{"gamma": 0.731})
	cfg := DefaultConfig()
	cfg.Preselected = selections
	res := compile(t, bound, cfg)
	hasAPA := false
	for _, b := range res.Blocks.Blocks {
		if b.APA {
			hasAPA = true
		}
	}
	if !hasAPA {
		t.Error("offline selections were not applied online")
	}
}

func TestCompileEmptyCircuit(t *testing.T) {
	res := compile(t, circuit.New(3), DefaultConfig())
	if res.Latency != 0 || res.NumBlocks != 0 || res.ESP != 1 {
		t.Errorf("empty circuit: %+v", res)
	}
}

func TestCompileSingleGate(t *testing.T) {
	c := circuit.New(2)
	c.Add("cx", 0, 1)
	res := compile(t, c, DefaultConfig())
	if res.NumBlocks != 1 {
		t.Errorf("blocks = %d", res.NumBlocks)
	}
	if res.Latency <= 0 {
		t.Error("latency should be positive")
	}
}

func TestCompileSymbolicFails(t *testing.T) {
	c := circuit.New(1)
	c.AddSymbolic("rz", "theta", 0)
	comp := New(nil, topology.Line(1), DefaultConfig())
	if _, err := comp.CompileCtx(context.Background(), c); err == nil {
		t.Error("unbound symbolic circuit must fail pulse generation")
	}
}

func BenchmarkCompileSwapHeavyM0(b *testing.B) {
	c := swapHeavy(5, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		comp := New(nil, topology.Line(5), DefaultConfig())
		if _, err := comp.CompileCtx(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileSwapHeavyMInf(b *testing.B) {
	c := swapHeavy(5, 3)
	cfg := DefaultConfig()
	cfg.M = MInf
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		comp := New(nil, topology.Line(5), cfg)
		if _, err := comp.CompileCtx(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCommuteExtensionHelps(t *testing.T) {
	// cx; rz-on-control; cx repeated: adjacency-based merging alone cannot
	// fuse the CX pair, the commutativity pass can (the §VII extension).
	c := circuit.New(3)
	for q := 0; q < 2; q++ {
		c.Add("cx", q, q+1)
		c.AddParam("rz", []float64{0.8}, q) // on the control: commutes
		c.Add("cx", q, q+1)
	}
	base := compile(t, c, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Commute = true
	withCommute := compile(t, c, cfg)
	if withCommute.Latency >= base.Latency {
		t.Errorf("commutativity pass did not help: %.1f vs %.1f", withCommute.Latency, base.Latency)
	}
}

// TestWorkerCountDeterminism asserts the parallel emit/rank pipeline is
// observably identical to the serial one: every deterministic Result field
// and every per-block latency must match exactly between workers=1 and
// workers=8. (CompileCost and WallTime include measured wall-clock time and
// are excluded; GRAPE warm starts are timing-dependent under parallelism,
// but with the analytic model latencies are pure functions of the unitary.)
func TestWorkerCountDeterminism(t *testing.T) {
	c := swapHeavy(5, 4)
	run := func(workers int) *Result {
		cfg := DefaultConfig()
		cfg.M = MInf
		cfg.Workers = workers
		return compile(t, c, cfg)
	}
	serial := run(1)
	parallel := run(8)

	if serial.Latency != parallel.Latency {
		t.Errorf("Latency: %v vs %v", serial.Latency, parallel.Latency)
	}
	if serial.InitialLatency != parallel.InitialLatency {
		t.Errorf("InitialLatency: %v vs %v", serial.InitialLatency, parallel.InitialLatency)
	}
	if serial.TotalLatency != parallel.TotalLatency {
		t.Errorf("TotalLatency: %v vs %v", serial.TotalLatency, parallel.TotalLatency)
	}
	if serial.ESP != parallel.ESP {
		t.Errorf("ESP: %v vs %v", serial.ESP, parallel.ESP)
	}
	if serial.NumBlocks != parallel.NumBlocks {
		t.Errorf("NumBlocks: %d vs %d", serial.NumBlocks, parallel.NumBlocks)
	}
	if serial.Iterations != parallel.Iterations {
		t.Errorf("Iterations: %d vs %d", serial.Iterations, parallel.Iterations)
	}
	if serial.OfflineCost != parallel.OfflineCost {
		t.Errorf("OfflineCost: %v vs %v", serial.OfflineCost, parallel.OfflineCost)
	}
	if len(serial.APASelections) != len(parallel.APASelections) {
		t.Errorf("APASelections: %d vs %d", len(serial.APASelections), len(parallel.APASelections))
	}
	sb, pb := serial.Blocks.Blocks, parallel.Blocks.Blocks
	if len(sb) != len(pb) {
		t.Fatalf("block count: %d vs %d", len(sb), len(pb))
	}
	for i := range sb {
		if sb[i].Latency != pb[i].Latency {
			t.Errorf("block %d latency: %v vs %v", i, sb[i].Latency, pb[i].Latency)
		}
	}
}

// TestWorkersDefaultSerialMatchesZero ensures Workers=0 and Workers=1 run
// the same serial pipeline.
func TestWorkersDefaultSerialMatchesZero(t *testing.T) {
	c := swapHeavy(4, 2)
	cfg0 := DefaultConfig()
	r0 := compile(t, c, cfg0)
	cfg1 := DefaultConfig()
	cfg1.Workers = 1
	r1 := compile(t, c, cfg1)
	if r0.Latency != r1.Latency || r0.NumBlocks != r1.NumBlocks || r0.Iterations != r1.Iterations {
		t.Errorf("workers=0 vs 1 diverged: %+v vs %+v", r0, r1)
	}
}
