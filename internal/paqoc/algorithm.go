package paqoc

import (
	"context"
	"sort"

	"paqoc/internal/critical"
	"paqoc/internal/engine"
	"paqoc/internal/obs"
)

// optimize runs Algorithm 1: iteratively rank two-block merge candidates by
// their critical-path reduction and apply the top-k, preceded each round by
// the Observation-1 pre-processing merges, until no merge improves the
// circuit latency.
//
// Ranking uses the paper's O(1) path formulas (§V-A): the old path through
// the pair is to[i] + from[j]; the new one threads every predecessor and
// successor of the merged block, to_in + L(merged) + from_out. The merged
// latency comes from the analytical model (or a generator probe for
// Case II) and is cached per block pair, so an iteration costs O(V + E).
// Uncached merged-latency probes fan out on the shared worker pool
// (Config.Workers) into per-candidate slots, then scoring runs serially
// over the filled slots — so the ranking is identical for any worker
// count. Each applied merge is re-validated with an exact what-if
// critical path, enforcing the monotonic-decrease contract.
//
// Per-round observability (all no-ops without a registry in ctx):
// paqoc.merge.rounds, .candidates (scored), .cache_hits (labCache),
// .applied, .rejected (ranked above the cut but failed the exact
// monotonicity or validity re-check), and the paqoc.merge.score histogram
// of predicted critical-path reductions.
func (cp *Compiler) optimize(ctx context.Context, bc *critical.BlockCircuit) (int, error) {
	const eps = 1e-9
	reg := obs.MetricsFrom(ctx)
	roundCtr := reg.Counter("paqoc.merge.rounds")
	candCtr := reg.Counter("paqoc.merge.candidates")
	cacheCtr := reg.Counter("paqoc.merge.cache_hits")
	appliedCtr := reg.Counter("paqoc.merge.applied")
	rejectedCtr := reg.Counter("paqoc.merge.rejected")
	scoreHist := reg.Histogram("paqoc.merge.score", nil)

	labCache := map[[2]*critical.Block]float64{}
	iters := 0

	for iters < cp.Cfg.MaxIterations {
		iters++
		roundCtr.Inc()

		if err := cp.preprocess(ctx, bc); err != nil {
			return iters, err
		}

		cands := bc.Candidates(cp.Cfg.MaxN, cp.Cfg.PruneCaseIII)
		if len(cands) == 0 {
			break
		}
		dag := bc.DAG()
		w := bc.Weights()
		to := dag.LongestPathTo(w)
		from := dag.LongestPathFrom(w)

		type scoredCand struct {
			a, b  *critical.Block
			score float64
		}
		var scored []scoredCand
		candCtr.Add(int64(len(cands)))
		// Rank uncached candidates on the worker pool: each probe is an
		// independent analytical-model call, and each task writes only its
		// own slot of labs, so collection is order-stable and the scored
		// list below is identical for any worker count.
		labs := make([]float64, len(cands))
		var uncached []int
		for ci := range cands {
			cand := &cands[ci]
			key := [2]*critical.Block{bc.Blocks[cand.I], bc.Blocks[cand.J]}
			if lab, ok := labCache[key]; ok {
				cacheCtr.Inc()
				labs[ci] = lab
			} else {
				uncached = append(uncached, ci)
			}
		}
		if len(uncached) > 0 {
			g, _ := engine.WithContext(ctx, cp.workers())
			for _, ci := range uncached {
				ci := ci
				g.Go(func(ctx context.Context) error {
					lab, err := cp.candidateLatency(ctx, &cands[ci])
					labs[ci] = lab
					return err
				})
			}
			if err := g.Wait(); err != nil {
				return iters, err
			}
			for _, ci := range uncached {
				cand := &cands[ci]
				labCache[[2]*critical.Block{bc.Blocks[cand.I], bc.Blocks[cand.J]}] = labs[ci]
			}
		}
		for ci := range cands {
			cand := cands[ci]
			lab := labs[ci]
			pathOld := to[cand.I] + from[cand.J]
			var toIn, fromOut float64
			for _, p := range dag.Preds[cand.I] {
				if to[p] > toIn {
					toIn = to[p]
				}
			}
			for _, p := range dag.Preds[cand.J] {
				if p != cand.I && to[p] > toIn {
					toIn = to[p]
				}
			}
			for _, s := range dag.Succs[cand.J] {
				if from[s] > fromOut {
					fromOut = from[s]
				}
			}
			for _, s := range dag.Succs[cand.I] {
				if s != cand.J && from[s] > fromOut {
					fromOut = from[s]
				}
			}
			score := pathOld - (toIn + lab + fromOut)
			if score > eps {
				scoreHist.Observe(score)
				scored = append(scored, scoredCand{a: bc.Blocks[cand.I], b: bc.Blocks[cand.J], score: score})
			}
		}
		if len(scored) == 0 {
			break
		}
		sort.SliceStable(scored, func(i, j int) bool { return scored[i].score > scored[j].score })

		// Walk the ranked list and apply up to top-k merges that survive
		// the exact monotonicity check ("if customized_gate is no longer
		// valid then continue", Algorithm 1 line 16). Indices shift after
		// each merge, so candidates are tracked by block identity.
		applied := 0
		usedBlocks := map[*critical.Block]bool{}
		curCP := bc.CriticalPath()
		for _, cand := range scored {
			if applied >= cp.Cfg.TopK {
				break
			}
			if usedBlocks[cand.a] || usedBlocks[cand.b] {
				continue
			}
			i, j := blockIndex(bc, cand.a), blockIndex(bc, cand.b)
			if i < 0 || j < 0 {
				continue
			}
			if i > j {
				i, j = j, i
			}
			if !bc.ValidMerge(i, j, cp.Cfg.MaxN) {
				rejectedCtr.Inc()
				continue
			}
			m := critical.Merge(bc.Blocks[i], bc.Blocks[j])
			lab, err := cp.applyLatency(ctx, m)
			if err != nil {
				return iters, err
			}
			if bc.CPIfMerged(i, j, lab) >= curCP-eps {
				rejectedCtr.Inc()
				continue // the estimate was optimistic; skip this merge
			}
			usedBlocks[bc.Blocks[i]] = true
			usedBlocks[bc.Blocks[j]] = true
			bc.ReplaceMerge(i, j, m, lab, nil)
			curCP = bc.CriticalPath()
			applied++
			appliedCtr.Inc()
		}
		if applied == 0 {
			break
		}
	}
	return iters, nil
}

// preprocess applies all Observation-1 merges (nested qubit sets) to a
// fixed point. Merges applied here count toward paqoc.merge.preprocessed,
// separate from the ranked loop's paqoc.merge.applied.
func (cp *Compiler) preprocess(ctx context.Context, bc *critical.BlockCircuit) error {
	preCtr := obs.MetricsFrom(ctx).Counter("paqoc.merge.preprocessed")
	for {
		pre := bc.PreprocessCandidates(cp.Cfg.MaxN)
		if len(pre) == 0 {
			return nil
		}
		cand := pre[0]
		if !bc.ValidMerge(cand.I, cand.J, cp.Cfg.MaxN) {
			// Structural conditions should guarantee validity; fail safe.
			return nil
		}
		lat, err := cp.rank(ctx, cand.Merged)
		if err != nil {
			return err
		}
		bc.ReplaceMerge(cand.I, cand.J, cand.Merged, lat, nil)
		preCtr.Inc()
	}
}

// candidateLatency estimates the merged latency for ranking, always via
// the analytical model — the observations of §III-B exist precisely so
// the search can rank without generating pulses.
func (cp *Compiler) candidateLatency(ctx context.Context, cand *critical.Candidate) (float64, error) {
	return cp.rank(ctx, cand.Merged)
}

// applyLatency supplies the latency used when a merge is actually applied.
// With ProbeCaseII (the paper's §V-A probe: "We need to perform the
// merging of A and C to get L(AC)"), the real generator produces the pulse
// now; the result lands in its database, so the final emission pass serves
// it as a free hit. Probing only applied merges keeps probe cost
// proportional to merges performed rather than candidates ranked.
func (cp *Compiler) applyLatency(ctx context.Context, m *critical.Block) (float64, error) {
	if cp.Cfg.ProbeCaseII && cp.Gen != cp.Ranker {
		g, err := cp.Gen.GenerateCtx(ctx, m.Custom(), cp.Cfg.FidelityTarget)
		if err != nil {
			return 0, err
		}
		cp.probeCost += g.Cost
		return g.Latency, nil
	}
	return cp.rank(ctx, m)
}

func blockIndex(bc *critical.BlockCircuit, b *critical.Block) int {
	for i, x := range bc.Blocks {
		if x == b {
			return i
		}
	}
	return -1
}
