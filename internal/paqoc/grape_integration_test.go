package paqoc

import (
	"context"
	"testing"

	"paqoc/internal/circuit"
	"paqoc/internal/grape"
	"paqoc/internal/hamiltonian"
	"paqoc/internal/linalg"
	"paqoc/internal/pulsesim"
	"paqoc/internal/topology"
)

// TestCompileWithRealGRAPE is the full-stack integration check: compile a
// circuit with the real optimizer as the pulse generator, then replay every
// emitted schedule through the device Hamiltonian and verify it realizes
// its customized gate's unitary at the reported fidelity. This exercises
// miner → criticality engine → GRAPE → pulse DB → simulator end to end.
func TestCompileWithRealGRAPE(t *testing.T) {
	if testing.Short() {
		t.Skip("GRAPE integration is slow")
	}
	topo := topology.Line(3)
	c := circuit.New(3)
	c.Add("h", 0)
	c.Add("cx", 0, 1)
	c.Add("cx", 1, 2)
	c.AddParam("rz", []float64{0.7}, 2)
	c.Add("cx", 1, 2)
	c.Add("cx", 0, 1)

	gen := grape.NewGenerator(grape.DefaultOptions())
	gen.Topo = topo
	cfg := DefaultConfig()
	cfg.ProbeCaseII = false // keep the probe count down; emission still runs GRAPE
	comp := New(gen, topo, cfg)
	res, err := comp.CompileCtx(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency >= res.InitialLatency {
		t.Errorf("GRAPE-backed compile did not reduce latency: %.0f vs %.0f",
			res.Latency, res.InitialLatency)
	}

	for _, b := range res.Blocks.Blocks {
		if b.Gen == nil || b.Gen.Schedule == nil {
			t.Fatalf("block %s missing a real schedule", b.Custom().Describe())
		}
		want, err := b.Custom().Unitary()
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild the system GRAPE used for this block.
		n := b.Custom().NumQubits()
		var pairs [][2]int
		for a := 0; a < n; a++ {
			for bq := a + 1; bq < n; bq++ {
				if topo.Connected(b.Custom().Qubits[a], b.Custom().Qubits[bq]) {
					pairs = append(pairs, [2]int{a, bq})
				}
			}
		}
		if len(pairs) == 0 && n > 1 {
			pairs = hamiltonian.LinearChain(n)
		}
		sys := hamiltonian.XYTransmon(n, pairs)
		got, err := pulsesim.EvolveCtx(context.Background(), sys, b.Gen.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		fid := linalg.TraceFidelity(want, got)
		if fid < b.Gen.Fidelity-1e-6 {
			t.Errorf("block %s: simulated fidelity %.6f below reported %.6f",
				b.Custom().Describe(), fid, b.Gen.Fidelity)
		}
		if fid < 0.999 {
			t.Errorf("block %s: fidelity %.6f below target", b.Custom().Describe(), fid)
		}
	}

	// The flattened circuit must still implement the original unitary.
	want, err := c.Unitary(4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Blocks.Flatten().Unitary(4)
	if err != nil {
		t.Fatal(err)
	}
	if linalg.GlobalPhaseDistance(want, got) > 1e-8 {
		t.Error("compilation changed the circuit unitary")
	}
}

// TestGRAPEMatchesModelOrdering cross-validates the analytical model
// against the real optimizer: on a set of representative customized gates,
// the model's latency ordering must match GRAPE's.
func TestGRAPEMatchesModelOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("GRAPE cross-validation is slow")
	}
	topo := topology.Line(2)
	mk := func(build func(c *circuit.Circuit)) *circuit.Circuit {
		c := circuit.New(2)
		build(c)
		return c
	}
	cases := []*circuit.Circuit{
		mk(func(c *circuit.Circuit) { c.Add("h", 0) }),
		mk(func(c *circuit.Circuit) { c.Add("cx", 0, 1) }),
		mk(func(c *circuit.Circuit) {
			c.Add("cx", 0, 1)
			c.Add("cx", 1, 0)
			c.Add("cx", 0, 1)
		}),
	}
	gGen := grape.NewGenerator(grape.DefaultOptions())
	gGen.Topo = topo
	cfgG := DefaultConfig()
	var grapeLat, modelLat []float64
	for _, c := range cases {
		compG := New(gGen, topo, cfgG)
		rg, err := compG.CompileCtx(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		compM := New(nil, topo, DefaultConfig())
		rm, err := compM.CompileCtx(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		grapeLat = append(grapeLat, rg.Latency)
		modelLat = append(modelLat, rm.Latency)
	}
	for i := 0; i < len(cases); i++ {
		for j := i + 1; j < len(cases); j++ {
			if (grapeLat[i] < grapeLat[j]) != (modelLat[i] < modelLat[j]) {
				t.Errorf("ordering disagreement between GRAPE (%v) and model (%v)", grapeLat, modelLat)
			}
		}
	}
}
