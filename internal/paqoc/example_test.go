package paqoc_test

import (
	"context"
	"fmt"
	"log"

	"paqoc/internal/circuit"
	"paqoc/internal/paqoc"
	"paqoc/internal/topology"
)

// Example compiles a three-gate circuit and reports the customized gates —
// the minimal end-to-end use of the framework.
func Example() {
	c := circuit.New(2)
	c.Add("h", 0)
	c.Add("cx", 0, 1)
	c.Add("cx", 0, 1)

	compiler := paqoc.New(nil, topology.Line(2), paqoc.DefaultConfig())
	res, err := compiler.CompileCtx(context.Background(), c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customized gates: %d\n", res.NumBlocks)
	fmt.Printf("latency improved: %v\n", res.Latency < res.InitialLatency)
	// Output:
	// customized gates: 1
	// latency improved: true
}

// ExampleConfig_m shows the APA knob: M=0 disables the miner, MInf lets it
// promote every recurring pattern.
func ExampleConfig() {
	c := circuit.New(3)
	for i := 0; i < 2; i++ {
		c.Add("cx", 0, 1)
		c.AddParam("rz", []float64{0.5}, 1)
		c.Add("cx", 0, 1)
		c.Add("cx", 1, 2)
		c.AddParam("rz", []float64{0.5}, 2)
		c.Add("cx", 1, 2)
	}
	cfg := paqoc.DefaultConfig()
	cfg.M = paqoc.MInf
	compiler := paqoc.New(nil, topology.Line(3), cfg)
	res, err := compiler.CompileCtx(context.Background(), c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("APA patterns used: %d\n", len(res.APASelections))
	// Output:
	// APA patterns used: 1
}
