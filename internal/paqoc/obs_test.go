package paqoc

import (
	"context"
	"testing"

	"paqoc/internal/circuit"
	"paqoc/internal/obs"
	"paqoc/internal/topology"
)

// TestCompileCtxInstrumentation compiles a merge-heavy circuit with full
// observability attached and checks the pipeline actually reports through
// it: the stage spans of CompileCtx nest under paqoc.compile, and the
// Algorithm-1 merge loop populates its counters. The cx+h layer structure
// drives both merge paths — Observation-1 preprocessing (h gates folded
// into the cx blocks) and the ranked top-k loop (overlapping cx pairs).
func TestCompileCtxInstrumentation(t *testing.T) {
	c := circuit.New(5)
	for r := 0; r < 4; r++ {
		for i := 0; i+1 < 5; i++ {
			c.Add("cx", i, i+1)
		}
		for i := 0; i < 5; i++ {
			c.Add("h", i)
		}
	}
	o := obs.New()
	comp := New(nil, topology.Line(c.NumQubits), DefaultConfig())
	res, err := comp.CompileCtx(o.Attach(context.Background()), c)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBlocks == 0 {
		t.Fatal("empty result")
	}

	spans := o.Tracer.Spans()
	names := map[string]bool{}
	for _, s := range spans {
		names[s.Name] = true
		if s.Name != "paqoc.compile" && len(s.Path) < len("paqoc.compile/") {
			t.Errorf("span %q has non-nested path %q", s.Name, s.Path)
		}
	}
	for _, want := range []string{"paqoc.compile", "paqoc.initial_blocks", "paqoc.optimize", "paqoc.emit"} {
		if !names[want] {
			t.Errorf("missing span %q (got %v)", want, names)
		}
	}
	if len(names) < 4 {
		t.Errorf("only %d distinct spans, want >= 4", len(names))
	}

	snap := o.Metrics.Snapshot()
	for _, want := range []string{
		"paqoc.merge.rounds", "paqoc.merge.candidates", "paqoc.merge.cache_hits",
		"paqoc.merge.applied", "paqoc.merge.preprocessed",
		"paqoc.emit.blocks", "pulsesim.esp_evals",
	} {
		if snap.Counters[want] == 0 {
			t.Errorf("counter %s = 0, want > 0 (counters: %v)", want, snap.Counters)
		}
	}
	// Cross-check counters against the compile result: one round per
	// Algorithm-1 outer iteration, one emitted block per final block.
	if got := snap.Counters["paqoc.merge.rounds"]; int(got) != res.Iterations {
		t.Errorf("paqoc.merge.rounds = %d, want %d (res.Iterations)", got, res.Iterations)
	}
	if got := snap.Counters["paqoc.emit.blocks"]; int(got) != res.NumBlocks {
		t.Errorf("paqoc.emit.blocks = %d, want %d (res.NumBlocks)", got, res.NumBlocks)
	}
	if snap.Histograms["paqoc.merge.score"].Count == 0 {
		t.Error("merge-score histogram is empty")
	}
}

// TestCompileCtxNoObs ensures the instrumented path runs unchanged with a
// bare context: same circuit, no tracer or registry, no panic.
func TestCompileCtxNoObs(t *testing.T) {
	c := swapHeavy(4, 2)
	comp := New(nil, topology.Line(c.NumQubits), DefaultConfig())
	res, err := comp.CompileCtx(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBlocks == 0 {
		t.Fatal("empty result")
	}
}
