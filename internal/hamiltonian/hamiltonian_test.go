package hamiltonian

import (
	"math"
	"testing"

	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
)

func TestXYTransmonControlCount(t *testing.T) {
	sys := XYTransmon(3, LinearChain(3))
	// 3 qubits × (X,Y) + 2 couplings.
	if got := len(sys.Controls); got != 8 {
		t.Errorf("controls = %d, want 8", got)
	}
	if sys.Dim != 8 {
		t.Errorf("dim = %d", sys.Dim)
	}
}

func TestControlsAreHermitian(t *testing.T) {
	sys := XYTransmon(2, AllPairs(2))
	for _, c := range sys.Controls {
		if !c.H.IsHermitian(1e-12) {
			t.Errorf("control %s is not Hermitian", c.Name)
		}
	}
	if !sys.Drift.IsHermitian(1e-12) {
		t.Error("drift is not Hermitian")
	}
}

func TestBounds(t *testing.T) {
	sys := XYTransmon(2, AllPairs(2))
	for _, c := range sys.Controls {
		switch c.Name[0] {
		case 'd':
			if math.Abs(c.Bound-DriveBound) > 1e-15 {
				t.Errorf("%s bound %g", c.Name, c.Bound)
			}
		case 'c':
			if math.Abs(c.Bound-CouplingBound) > 1e-15 {
				t.Errorf("%s bound %g", c.Name, c.Bound)
			}
		}
	}
	// 5× relationship per §VI-c.
	if math.Abs(DriveBound/CouplingBound-5) > 1e-12 {
		t.Error("drive bound is not 5× coupling bound")
	}
}

func TestPropagatorUnitary(t *testing.T) {
	sys := XYTransmon(2, LinearChain(2))
	amps := make([]float64, len(sys.Controls))
	for i := range amps {
		amps[i] = sys.Controls[i].Bound * 0.7
	}
	u := sys.Propagator(amps, 3.0)
	if !u.IsUnitary(1e-9) {
		t.Error("propagator not unitary")
	}
}

func TestXDriveRealizesXRotation(t *testing.T) {
	// Driving only σx/2 at amplitude a for time t gives RX(a·t).
	sys := XYTransmon(1, nil)
	amps := []float64{DriveBound, 0}
	tTot := math.Pi / DriveBound // rotation angle π → X gate up to phase
	u := sys.Propagator(amps, tTot)
	if d := linalg.GlobalPhaseDistance(u, quantum.MatX); d > 1e-9 {
		t.Errorf("max-rate X drive does not produce X: distance %g", d)
	}
	// The paper-scale sanity check: a π rotation takes ≈ 22.5 dt.
	if tTot < 20 || tTot > 25 {
		t.Errorf("π rotation time %g dt outside expected range", tTot)
	}
}

func TestXYCouplingRealizesISwap(t *testing.T) {
	// Driving only the XY coupling at g for time t = (π/2)/g yields iSWAP
	// up to phase conventions: e^{-i (π/4)(XX+YY)} maps 01↔10 with -i.
	sys := XYTransmon(2, LinearChain(2))
	amps := make([]float64, len(sys.Controls))
	amps[len(amps)-1] = CouplingBound
	tTot := (math.Pi / 2) / CouplingBound
	u := sys.Propagator(amps, tTot)
	// e^{-iπ/4(XX+YY)} = diag-block [[1], [[0,-i],[-i,0]], [1]]
	want := linalg.New(4, 4)
	want.Set(0, 0, 1)
	want.Set(3, 3, 1)
	want.Set(1, 2, complex(0, -1))
	want.Set(2, 1, complex(0, -1))
	if d := linalg.GlobalPhaseDistance(u, want); d > 1e-9 {
		t.Errorf("XY evolution mismatch: %g\n%v", d, u)
	}
	// iSWAP interaction time ≈ 56 dt on this platform.
	if tTot < 50 || tTot > 62 {
		t.Errorf("iSWAP time %g dt outside expected range", tTot)
	}
}

func TestClipAmps(t *testing.T) {
	sys := XYTransmon(1, nil)
	amps := []float64{10, -10}
	sys.ClipAmps(amps)
	if amps[0] != DriveBound || amps[1] != -DriveBound {
		t.Errorf("clip failed: %v", amps)
	}
}

func TestHamiltonianValidation(t *testing.T) {
	sys := XYTransmon(1, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong amp count")
		}
	}()
	sys.Hamiltonian([]float64{1})
}

func TestBadCouplingPair(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad pair")
		}
	}()
	XYTransmon(2, [][2]int{{0, 2}})
}

func TestLinearChainAndAllPairs(t *testing.T) {
	if got := len(LinearChain(4)); got != 3 {
		t.Errorf("LinearChain(4) = %d pairs", got)
	}
	if got := len(AllPairs(4)); got != 6 {
		t.Errorf("AllPairs(4) = %d pairs", got)
	}
	if LinearChain(1) != nil {
		t.Error("LinearChain(1) should be empty")
	}
}

func TestDefaultParamsMatchConstants(t *testing.T) {
	p := DefaultParams()
	// Bit-identical, not approximately equal: the default device profile
	// must reproduce the seed platform exactly.
	if p.CouplingBound() != CouplingBound {
		t.Errorf("CouplingBound: %v != %v", p.CouplingBound(), CouplingBound)
	}
	if p.DriveBound() != DriveBound {
		t.Errorf("DriveBound: %v != %v", p.DriveBound(), DriveBound)
	}
	if p.IsZero() {
		t.Error("DefaultParams should not be zero")
	}
	if !(Params{}).IsZero() {
		t.Error("zero Params should report IsZero")
	}
}

func TestXYTransmonWithCustomBounds(t *testing.T) {
	p := Params{DtNanoseconds: 2.0 / 9.0, MuMaxGHz: 0.04, SingleQubitFactor: 3}
	sys := XYTransmonWith(p, 2, AllPairs(2))
	for _, c := range sys.Controls {
		switch c.Name[0] {
		case 'd':
			if c.Bound != p.DriveBound() {
				t.Errorf("%s bound %g, want %g", c.Name, c.Bound, p.DriveBound())
			}
		case 'c':
			if c.Bound != p.CouplingBound() {
				t.Errorf("%s bound %g, want %g", c.Name, c.Bound, p.CouplingBound())
			}
		}
	}
}

func TestWithZZCrosstalkRejectsBadPairs(t *testing.T) {
	base := XYTransmon(2, LinearChain(2))
	for _, bad := range [][2]int{{0, 0}, {-1, 1}, {0, 2}, {5, 1}} {
		if _, err := base.WithZZCrosstalk([][2]int{bad}, TypicalZZCrosstalk); err == nil {
			t.Errorf("pair %v should be rejected", bad)
		}
	}
}

func TestZZCrosstalkDrift(t *testing.T) {
	base := XYTransmon(2, LinearChain(2))
	noisy, err := base.WithZZCrosstalk(LinearChain(2), TypicalZZCrosstalk)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Drift.MaxAbs() == 0 {
		t.Fatal("crosstalk drift missing")
	}
	if !noisy.Drift.IsHermitian(1e-12) {
		t.Error("crosstalk drift not Hermitian")
	}
	if base.Drift.MaxAbs() != 0 {
		t.Error("WithZZCrosstalk mutated the base system")
	}
	ideal := noisy.IdealTwin()
	if ideal.Drift.MaxAbs() != 0 {
		t.Error("IdealTwin should have zero drift")
	}
	if len(ideal.Controls) != len(noisy.Controls) {
		t.Error("IdealTwin lost controls")
	}
}

func TestZZCrosstalkDephasesIdlePair(t *testing.T) {
	// With no drive, the noisy system drifts away from identity.
	noisy, err := XYTransmon(2, LinearChain(2)).WithZZCrosstalk(LinearChain(2), TypicalZZCrosstalk)
	if err != nil {
		t.Fatal(err)
	}
	amps := make([]float64, len(noisy.Controls))
	u := noisy.Propagator(amps, 200)
	if d := linalg.GlobalPhaseDistance(u, linalg.Identity(4)); d < 1e-3 {
		t.Errorf("idle crosstalk evolution suspiciously close to identity: %g", d)
	}
}
