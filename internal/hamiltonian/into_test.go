package hamiltonian

import (
	"math/rand"
	"testing"

	"paqoc/internal/linalg"
)

// TestPropagatorIntoMatchesPropagator pins the wrapper contract on the
// system level: the destination-passing propagator is bit-identical to
// the allocating one, with and without a shared workspace.
func TestPropagatorIntoMatchesPropagator(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sys := XYTransmon(2, [][2]int{{0, 1}})
	ws := linalg.NewWorkspace(sys.Dim)
	amps := make([]float64, len(sys.Controls))
	dst := linalg.New(sys.Dim, sys.Dim)
	for trial := 0; trial < 5; trial++ {
		for k := range amps {
			amps[k] = sys.Controls[k].Bound * (rng.Float64()*2 - 1)
		}
		want := sys.Propagator(amps, 4)
		sys.PropagatorInto(dst, amps, 4, ws)
		if !want.Equal(dst, 0) {
			t.Fatalf("trial %d: PropagatorInto diverged from Propagator", trial)
		}
		sys.PropagatorInto(dst, amps, 4, nil)
		if !want.Equal(dst, 0) {
			t.Fatalf("trial %d: PropagatorInto with nil workspace diverged", trial)
		}
	}
}

// TestPropagatorIntoZeroAlloc gates the hot-loop contract: with a warm
// workspace, assembling H and exponentiating allocates nothing.
func TestPropagatorIntoZeroAlloc(t *testing.T) {
	sys := XYTransmon(2, [][2]int{{0, 1}})
	ws := linalg.NewWorkspace(sys.Dim)
	amps := make([]float64, len(sys.Controls))
	for k := range amps {
		amps[k] = 0.01 * float64(k+1)
	}
	dst := linalg.New(sys.Dim, sys.Dim)
	sys.PropagatorInto(dst, amps, 4, ws) // warm the workspace
	if allocs := testing.AllocsPerRun(20, func() {
		sys.PropagatorInto(dst, amps, 4, ws)
	}); allocs != 0 {
		t.Errorf("PropagatorInto: %v allocs/op with warm workspace, want 0", allocs)
	}
}
