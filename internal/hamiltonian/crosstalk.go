package hamiltonian

import (
	"fmt"

	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
)

// WithZZCrosstalk returns a copy of the system whose drift Hamiltonian
// carries always-on ZZ crosstalk of strength zeta (rad/dt) on each given
// pair — the dominant error term of fixed-coupling transmons (§II-C cites
// Xie et al. [50]). The paper argues its method carries over once error
// terms enter Eq. (1): "we only have to update Equation (1) and apply the
// same method". GRAPE run against the updated system compensates the
// crosstalk; pulses generated for the ideal system degrade under it (see
// the package tests and internal/grape's crosstalk tests).
//
// Pairs are validated against the system's qubit count up front: an
// out-of-range or degenerate pair returns an error here, rather than a
// panic deep inside quantum.Embed.
func (s *System) WithZZCrosstalk(pairs [][2]int, zeta float64) (*System, error) {
	for _, p := range pairs {
		if p[0] == p[1] || p[0] < 0 || p[1] < 0 || p[0] >= s.NumQubits || p[1] >= s.NumQubits {
			return nil, fmt.Errorf("hamiltonian: crosstalk pair (%d,%d) invalid for %d-qubit system", p[0], p[1], s.NumQubits)
		}
	}
	out := &System{
		NumQubits: s.NumQubits,
		Dim:       s.Dim,
		Drift:     s.Drift.Clone(),
		Controls:  append([]Control(nil), s.Controls...),
	}
	half := complex(0.5, 0)
	for _, p := range pairs {
		zz := quantum.MatZ.Kron(quantum.MatZ).Scale(half)
		term := quantum.Embed(zz, []int{p[0], p[1]}, s.NumQubits)
		out.Drift.AddInPlace(term, complex(zeta, 0))
	}
	return out, nil
}

// TypicalZZCrosstalk is a strong-but-realistic always-on ZZ rate for
// fixed-coupling transmons (≈1 MHz), expressed in rad/dt.
var TypicalZZCrosstalk = 2 * 3.141592653589793 * 1e-3 * DtNanoseconds

// IdealTwin returns the crosstalk-free version of a system (zero drift,
// same controls) — the model a naive compiler would calibrate against.
func (s *System) IdealTwin() *System {
	return &System{
		NumQubits: s.NumQubits,
		Dim:       s.Dim,
		Drift:     linalg.New(s.Dim, s.Dim),
		Controls:  append([]Control(nil), s.Controls...),
	}
}
