// Package hamiltonian models the device per the paper's Eq. (1):
//
//	H(t) = H0 + Σ_k α_k(t)·H_k
//
// with a drift term H0 and time-dependent control Hamiltonians H_k whose
// amplitudes α_k(t) are bounded by the hardware. The evaluation platform
// (§VI-c) is a transmon architecture with XY interaction: per-qubit X and Y
// drives bounded at 5·μmax and per-pair XY couplings bounded at
// μmax = 0.02 GHz. Times are measured in the device sample unit dt
// (2/9 ns, the IBM convention), and amplitudes in rad/dt, so an amplitude
// of a rotates the Bloch vector at a rad per dt.
package hamiltonian

import (
	"fmt"
	"math"

	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
)

// Physical constants of the platform (§VI-c).
const (
	// DtNanoseconds is the duration of one dt sample (IBM convention).
	DtNanoseconds = 2.0 / 9.0
	// MuMaxGHz is the XY-interaction control-field limit, 0.02 GHz.
	MuMaxGHz = 0.02
	// SingleQubitFactor scales the single-qubit rotation field: 5·μmax.
	SingleQubitFactor = 5.0
)

// CouplingBound is μmax expressed in rad/dt: 2π·0.02 GHz · dt.
var CouplingBound = 2 * math.Pi * MuMaxGHz * DtNanoseconds

// DriveBound is the single-qubit drive limit in rad/dt: 5·μmax.
var DriveBound = SingleQubitFactor * CouplingBound

// Params bundles the physical control parameters of one device so they can
// vary per backend (internal/device builds a Params from each profile). The
// zero value is not meaningful; use DefaultParams for the paper's platform.
type Params struct {
	// DtNanoseconds is the duration of one dt sample.
	DtNanoseconds float64
	// MuMaxGHz is the two-qubit interaction control-field limit in GHz.
	MuMaxGHz float64
	// SingleQubitFactor scales the single-qubit drive bound relative to
	// the coupling bound.
	SingleQubitFactor float64
}

// DefaultParams returns the paper's §VI-c platform parameters — the values
// the package-level constants carry.
func DefaultParams() Params {
	return Params{
		DtNanoseconds:     DtNanoseconds,
		MuMaxGHz:          MuMaxGHz,
		SingleQubitFactor: SingleQubitFactor,
	}
}

// CouplingBound is μmax in rad/dt. The expression mirrors the package-level
// CouplingBound exactly so DefaultParams reproduces it bit for bit.
func (p Params) CouplingBound() float64 {
	return 2 * math.Pi * p.MuMaxGHz * p.DtNanoseconds
}

// DriveBound is the single-qubit drive limit in rad/dt.
func (p Params) DriveBound() float64 {
	return p.SingleQubitFactor * p.CouplingBound()
}

// IsZero reports whether p is the zero value (callers that take an optional
// Params fall back to DefaultParams).
func (p Params) IsZero() bool { return p == Params{} }

// Control is one controllable term α_k(t)·H_k.
type Control struct {
	Name  string
	H     *linalg.Matrix // Hermitian generator on the full system space
	Bound float64        // |α_k| ≤ Bound, in rad/dt
}

// System is a concrete instance of Eq. (1) for a (sub)set of qubits.
type System struct {
	NumQubits int
	Dim       int
	Drift     *linalg.Matrix
	Controls  []Control
}

// XYTransmon builds the paper's platform Hamiltonian for n qubits: X and Y
// drives on every qubit and an XY (flip-flop) interaction on every coupled
// pair. The rotating-frame drift is zero. pairs lists coupled qubit index
// pairs local to this system (0-based).
func XYTransmon(n int, pairs [][2]int) *System {
	return XYTransmonWith(DefaultParams(), n, pairs)
}

// XYTransmonWith is XYTransmon with explicit device parameters: the drive
// and coupling bounds come from params instead of the package constants.
// XYTransmon(n, pairs) ≡ XYTransmonWith(DefaultParams(), n, pairs).
func XYTransmonWith(params Params, n int, pairs [][2]int) *System {
	if n <= 0 {
		panic("hamiltonian: need at least one qubit")
	}
	driveBound := params.DriveBound()
	couplingBound := params.CouplingBound()
	dim := 1 << n
	sys := &System{NumQubits: n, Dim: dim, Drift: linalg.New(dim, dim)}

	half := complex(0.5, 0)
	for q := 0; q < n; q++ {
		sys.Controls = append(sys.Controls, Control{
			Name:  fmt.Sprintf("d%d.x", q),
			H:     quantum.Embed(quantum.MatX.Scale(half), []int{q}, n),
			Bound: driveBound,
		})
		sys.Controls = append(sys.Controls, Control{
			Name:  fmt.Sprintf("d%d.y", q),
			H:     quantum.Embed(quantum.MatY.Scale(half), []int{q}, n),
			Bound: driveBound,
		})
	}
	for _, p := range pairs {
		if p[0] == p[1] || p[0] < 0 || p[1] < 0 || p[0] >= n || p[1] >= n {
			panic(fmt.Sprintf("hamiltonian: bad coupling pair %v", p))
		}
		xx := quantum.MatX.Kron(quantum.MatX)
		yy := quantum.MatY.Kron(quantum.MatY)
		gen := xx.Add(yy).Scale(half)
		sys.Controls = append(sys.Controls, Control{
			Name:  fmt.Sprintf("c%d.%d.xy", p[0], p[1]),
			H:     quantum.Embed(gen, []int{p[0], p[1]}, n),
			Bound: couplingBound,
		})
	}
	return sys
}

// LinearChain returns the coupling pairs of a 1-D chain over n qubits —
// the interaction graph of a customized gate whose qubits sit on a line.
func LinearChain(n int) [][2]int {
	var pairs [][2]int
	for i := 0; i+1 < n; i++ {
		pairs = append(pairs, [2]int{i, i + 1})
	}
	return pairs
}

// AllPairs returns every qubit pair; used when the merged gate's qubits
// form a clique on the device.
func AllPairs(n int) [][2]int {
	var pairs [][2]int
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			pairs = append(pairs, [2]int{a, b})
		}
	}
	return pairs
}

// Hamiltonian assembles H(t) for one vector of control amplitudes.
// Allocates; see HamiltonianInto.
func (s *System) Hamiltonian(amps []float64) *linalg.Matrix {
	h := linalg.New(s.Dim, s.Dim)
	s.HamiltonianInto(h, amps)
	return h
}

// HamiltonianInto assembles H(t) into dst (Dim×Dim), without allocating.
func (s *System) HamiltonianInto(dst *linalg.Matrix, amps []float64) {
	if len(amps) != len(s.Controls) {
		panic(fmt.Sprintf("hamiltonian: %d amps for %d controls", len(amps), len(s.Controls)))
	}
	dst.CopyFrom(s.Drift)
	for k, c := range s.Controls {
		if amps[k] == 0 {
			continue
		}
		dst.AddInPlace(c.H, complex(amps[k], 0))
	}
}

// Propagator returns the unitary e^{-i·H(amps)·dt} for one slice of
// duration dt. Allocates; see PropagatorInto for the destination-passing
// form used by the GRAPE and pulse-simulation hot loops.
func (s *System) Propagator(amps []float64, dt float64) *linalg.Matrix {
	dst := linalg.New(s.Dim, s.Dim)
	s.PropagatorInto(dst, amps, dt, nil)
	return dst
}

// PropagatorInto computes e^{-i·H(amps)·dt} into dst (Dim×Dim) without
// allocating: the Hamiltonian is assembled in ws.Scratch and the
// exponential runs on ws's buffers. A nil ws allocates a temporary one.
// dst must not alias a workspace buffer. Results are bit-identical to
// Propagator.
func (s *System) PropagatorInto(dst *linalg.Matrix, amps []float64, dt float64, ws *linalg.Workspace) {
	if ws == nil {
		ws = linalg.NewWorkspace(s.Dim)
	}
	h := ws.Scratch(s.Dim)
	s.HamiltonianInto(h, amps)
	linalg.ExpmHermitianInto(dst, h, dt, ws)
}

// ClipAmps clamps each amplitude to its control's bound, in place.
func (s *System) ClipAmps(amps []float64) {
	for k := range amps {
		b := s.Controls[k].Bound
		if amps[k] > b {
			amps[k] = b
		} else if amps[k] < -b {
			amps[k] = -b
		}
	}
}
