package commute

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"paqoc/internal/circuit"
	"paqoc/internal/linalg"
)

func g(name string, params []float64, qubits ...int) circuit.Gate {
	return circuit.Gate{Name: name, Params: params, Qubits: qubits}
}

func TestCommuteKnownPairs(t *testing.T) {
	cases := []struct {
		a, b circuit.Gate
		want bool
	}{
		{g("rz", []float64{0.3}, 0), g("rz", []float64{0.7}, 0), true},
		{g("rz", []float64{0.3}, 0), g("x", nil, 0), false},
		{g("cx", nil, 0, 1), g("rz", []float64{0.3}, 0), true},  // control is diagonal
		{g("cx", nil, 0, 1), g("rz", []float64{0.3}, 1), false}, // target is not
		{g("cx", nil, 0, 1), g("x", nil, 1), true},              // X on target
		{g("cx", nil, 0, 1), g("x", nil, 0), false},
		{g("cx", nil, 0, 1), g("cx", nil, 0, 2), true}, // shared control
		{g("cx", nil, 0, 1), g("cx", nil, 2, 1), true}, // shared target
		{g("cx", nil, 0, 1), g("cx", nil, 1, 0), false},
		{g("cx", nil, 0, 1), g("cx", nil, 1, 2), false},
		{g("cz", nil, 0, 1), g("cz", nil, 1, 2), true}, // diagonal family
		{g("cz", nil, 0, 1), g("rz", []float64{1}, 1), true},
		{g("cx", nil, 0, 1), g("ccx", nil, 0, 2, 1), true},
		{g("cx", nil, 0, 1), g("ccx", nil, 0, 1, 2), false},
		{g("h", nil, 0), g("h", nil, 0), false}, // no rule: conservative
		{g("h", nil, 0), g("x", nil, 1), true},  // disjoint
		{g("cp", []float64{0.4}, 0, 1), g("cp", []float64{0.9}, 1, 2), true},
	}
	for _, tc := range cases {
		if got := Commutes(tc.a, tc.b); got != tc.want {
			t.Errorf("Commutes(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := Commutes(tc.b, tc.a); got != tc.want {
			t.Errorf("Commutes symmetric failure on (%v, %v)", tc.b, tc.a)
		}
	}
}

// TestRulesSoundAgainstExact: whenever the structural rules claim
// commutation, the unitaries must actually commute.
func TestRulesSoundAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	names1 := []string{"x", "sx", "h", "t", "s", "z"}
	randomGate := func() circuit.Gate {
		switch rng.Intn(5) {
		case 0:
			return g(names1[rng.Intn(len(names1))], nil, rng.Intn(4))
		case 1:
			return g("rz", []float64{rng.Float64() * 2 * math.Pi}, rng.Intn(4))
		case 2:
			a := rng.Intn(4)
			b := (a + 1 + rng.Intn(3)) % 4
			return g("cx", nil, a, b)
		case 3:
			a := rng.Intn(4)
			b := (a + 1 + rng.Intn(3)) % 4
			return g("cp", []float64{rng.Float64() * math.Pi}, a, b)
		default:
			a := rng.Intn(4)
			b := (a + 1) % 4
			c := (a + 2) % 4
			return g("ccx", nil, a, b, c)
		}
	}
	for trial := 0; trial < 400; trial++ {
		a, b := randomGate(), randomGate()
		if !Commutes(a, b) {
			continue // under-approximation is allowed
		}
		exact, err := CommutesExact(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !exact {
			t.Fatalf("rules claim %v and %v commute; the unitaries disagree", a, b)
		}
	}
}

func TestCommutesExactKnown(t *testing.T) {
	ok, err := CommutesExact(g("cx", nil, 0, 1), g("cx", nil, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("reversed CXs should not commute")
	}
	ok, err = CommutesExact(g("h", nil, 0), g("h", nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("a gate commutes with itself")
	}
}

func TestCommutesExactSymbolicError(t *testing.T) {
	if _, err := CommutesExact(circuit.Gate{Name: "rz", Symbol: "a", Qubits: []int{0}}, g("x", nil, 0)); err == nil {
		t.Error("expected error for symbolic exact check")
	}
}

func TestSymbolicRules(t *testing.T) {
	sym := circuit.Gate{Name: "rz", Symbol: "th", Qubits: []int{0}}
	if !Commutes(sym, g("cx", nil, 0, 1)) {
		t.Error("symbolic rz on a control should commute for every binding")
	}
	if Commutes(sym, g("x", nil, 0)) {
		t.Error("symbolic rz with x cannot be assumed commuting")
	}
}

func TestCanonicalizeExposesMerge(t *testing.T) {
	// cx(0,1); rz(0); cx(0,1) — the rz on the control blocks adjacency but
	// commutes with the first cx; canonicalization must make the two CXs
	// adjacent.
	c := circuit.New(2)
	c.Add("cx", 0, 1)
	c.AddParam("rz", []float64{0.8}, 0)
	c.Add("cx", 0, 1)
	canon := Canonicalize(c)
	// Expect rz first or last, CXs adjacent.
	adjacent := false
	for i := 0; i+1 < len(canon.Gates); i++ {
		if canon.Gates[i].Name == "cx" && canon.Gates[i+1].Name == "cx" {
			adjacent = true
		}
	}
	if !adjacent {
		t.Errorf("CXs not adjacent after canonicalization: %v", canon.Gates)
	}
	checkSame(t, c, canon)
}

func TestCanonicalizeKeepsBlockedOrder(t *testing.T) {
	// rz on the TARGET does not commute with cx: order must be unchanged.
	c := circuit.New(2)
	c.Add("cx", 0, 1)
	c.AddParam("rz", []float64{0.8}, 1)
	c.Add("cx", 0, 1)
	canon := Canonicalize(c)
	if canon.Gates[1].Name != "rz" {
		t.Errorf("illegal reorder: %v", canon.Gates)
	}
	checkSame(t, c, canon)
}

func TestCanonicalizePreservesUnitaryRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.New(3)
		names := []string{"h", "t", "x", "s"}
		for i := 0; i < 20; i++ {
			switch rng.Intn(3) {
			case 0:
				c.Add(names[rng.Intn(len(names))], rng.Intn(3))
			case 1:
				c.AddParam("rz", []float64{rng.Float64() * 2 * math.Pi}, rng.Intn(3))
			default:
				a := rng.Intn(3)
				b := (a + 1 + rng.Intn(2)) % 3
				c.Add("cx", a, b)
			}
		}
		canon := Canonicalize(c)
		u1, err := c.Unitary(4)
		if err != nil {
			return false
		}
		u2, err := canon.Unitary(4)
		if err != nil {
			return false
		}
		return linalg.GlobalPhaseDistance(u1, u2) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalizeDoesNotMutateInput(t *testing.T) {
	c := circuit.New(2)
	c.Add("cx", 0, 1)
	c.AddParam("rz", []float64{0.8}, 0)
	c.Add("cx", 0, 1)
	before := c.String()
	Canonicalize(c)
	if c.String() != before {
		t.Error("Canonicalize mutated its input")
	}
}

func checkSame(t *testing.T, a, b *circuit.Circuit) {
	t.Helper()
	ua, err := a.Unitary(4)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := b.Unitary(4)
	if err != nil {
		t.Fatal(err)
	}
	if linalg.GlobalPhaseDistance(ua, ub) > 1e-9 {
		t.Error("canonicalization changed the unitary")
	}
}

func BenchmarkCanonicalize(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	c := circuit.New(8)
	for i := 0; i < 300; i++ {
		switch rng.Intn(3) {
		case 0:
			c.AddParam("rz", []float64{rng.Float64()}, rng.Intn(8))
		default:
			a := rng.Intn(8)
			x := (a + 1 + rng.Intn(7)) % 8
			c.Add("cx", a, x)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Canonicalize(c)
	}
}
