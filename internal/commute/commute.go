// Package commute adds commutativity awareness to PAQOC — the extension
// the paper leaves as future work (§VII, citing Shi et al.'s CLS [43]).
// It provides sound structural commutation rules for the gate library, an
// exact unitary-level check used to validate them, and a canonicalization
// pass that reorders commuting gates to expose merge adjacency (e.g.
// letting a diagonal rotation slide past a CX control so two CPHASE halves
// become adjacent).
package commute

import (
	"fmt"

	"paqoc/internal/circuit"
	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
)

// diagonal gates are Z-basis diagonal: they commute with each other on any
// qubit overlap and with control roles of controlled gates.
var diagonal = map[string]bool{
	"id": true, "z": true, "s": true, "sdg": true, "t": true, "tdg": true,
	"rz": true, "u1": true, "cz": true, "cp": true, "cphase": true,
	"cu1": true, "crz": true, "ccz": true,
}

// xAxis gates are X-basis diagonal: they commute with CX targets.
var xAxis = map[string]bool{"x": true, "rx": true, "sx": true}

// Commutes reports whether two gates commute, using sound structural
// rules (validated against CommutesExact by the package tests). It returns
// false whenever no rule applies, so it may under-approximate.
func Commutes(a, b circuit.Gate) bool {
	shared := sharedQubits(a, b)
	if len(shared) == 0 {
		return true
	}
	if a.IsSymbolic() || b.IsSymbolic() {
		// Symbolic angles: diagonal-family rules hold for every binding.
		return symbolicSafe(a, b, shared)
	}
	if diagonal[a.Name] && diagonal[b.Name] {
		return true
	}
	// Role-based rules: every shared qubit must be commutation-compatible.
	for _, q := range shared {
		if !roleCompatible(a, b, q) {
			return false
		}
	}
	return true
}

// symbolicSafe applies only the rules that hold for all parameter values.
func symbolicSafe(a, b circuit.Gate, shared []int) bool {
	if diagonal[a.Name] && diagonal[b.Name] {
		return true
	}
	for _, q := range shared {
		if !roleCompatible(a, b, q) {
			return false
		}
	}
	return true
}

// roleCompatible checks one shared qubit: the pair commutes on q when both
// sides act diagonally on q (Z-like role) or both act X-like on q.
func roleCompatible(a, b circuit.Gate, q int) bool {
	za, xa := roles(a, q)
	zb, xb := roles(b, q)
	return (za && zb) || (xa && xb)
}

// roles classifies how gate g acts on qubit q: zLike means g's action on q
// is diagonal (a Z rotation or a control), xLike means it is an X-axis
// action (an X rotation or a CX target).
func roles(g circuit.Gate, q int) (zLike, xLike bool) {
	pos := -1
	for i, gq := range g.Qubits {
		if gq == q {
			pos = i
			break
		}
	}
	if pos < 0 {
		return true, true // not acting on q at all
	}
	switch {
	case diagonal[g.Name]:
		return true, false
	case xAxis[g.Name]:
		return false, true
	case g.Name == "cx", g.Name == "ccx", g.Name == "toffoli":
		// controls come first; the last operand is the target.
		if pos < len(g.Qubits)-1 {
			return true, false // control: diagonal role
		}
		return false, true // target: X role
	}
	return false, false
}

// CommutesExact multiplies the two gates' unitaries on the union space in
// both orders and compares — the ground truth used to validate the rules.
func CommutesExact(a, b circuit.Gate) (bool, error) {
	if a.IsSymbolic() || b.IsSymbolic() {
		return false, fmt.Errorf("commute: exact check needs bound parameters")
	}
	union := map[int]int{}
	order := []int{}
	for _, g := range []circuit.Gate{a, b} {
		for _, q := range g.Qubits {
			if _, ok := union[q]; !ok {
				union[q] = len(order)
				order = append(order, q)
			}
		}
	}
	n := len(order)
	local := func(g circuit.Gate) ([]int, error) {
		out := make([]int, len(g.Qubits))
		for i, q := range g.Qubits {
			out[i] = union[q]
		}
		return out, nil
	}
	ua, err := a.Unitary()
	if err != nil {
		return false, err
	}
	ub, err := b.Unitary()
	if err != nil {
		return false, err
	}
	wa, _ := local(a)
	wb, _ := local(b)
	ea := quantum.Embed(ua, wa, n)
	eb := quantum.Embed(ub, wb, n)
	ab := ea.Mul(eb)
	ba := eb.Mul(ea)
	return linalg.GlobalPhaseDistance(ab, ba) < 1e-9, nil
}

func sharedQubits(a, b circuit.Gate) []int {
	set := map[int]bool{}
	for _, q := range a.Qubits {
		set[q] = true
	}
	var out []int
	for _, q := range b.Qubits {
		if set[q] {
			out = append(out, q)
		}
	}
	return out
}

// Canonicalize reorders commuting gates so that gates with identical qubit
// sets become adjacent where legal, exposing merge opportunities to the
// adjacency-based search. The output is semantically equal to the input
// (equal unitary): every move is a sequence of adjacent transpositions of
// commuting gates.
func Canonicalize(c *circuit.Circuit) *circuit.Circuit {
	out := c.Clone()
	gates := out.Gates
	const maxPasses = 4
	for pass := 0; pass < maxPasses; pass++ {
		moved := false
		for i := 0; i < len(gates); i++ {
			j := nextSameSet(gates, i)
			if j < 0 || j == i+1 {
				continue
			}
			// Can gate i slide down to j-1 (equivalently, everything in
			// (i, j) slide up past it)?
			ok := true
			for k := i + 1; k < j; k++ {
				if !Commutes(gates[i], gates[k]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			g := gates[i]
			copy(gates[i:j-1], gates[i+1:j])
			gates[j-1] = g
			moved = true
		}
		if !moved {
			break
		}
	}
	out.Gates = gates
	return out
}

// nextSameSet finds the next gate with exactly the same qubit set as
// gates[i], or -1.
func nextSameSet(gates []circuit.Gate, i int) int {
	for j := i + 1; j < len(gates); j++ {
		if sameSet(gates[i].Qubits, gates[j].Qubits) {
			return j
		}
	}
	return -1
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[int]bool{}
	for _, q := range a {
		set[q] = true
	}
	for _, q := range b {
		if !set[q] {
			return false
		}
	}
	return true
}
