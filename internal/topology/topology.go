// Package topology models device coupling graphs: which physical qubit
// pairs support a two-qubit interaction. The paper's evaluation platform is
// a 5×5 grid with XY interaction (§VI-c); line, ring, and heavy-hex-like
// graphs are provided for tests and ablations.
package topology

import (
	"fmt"
	"sort"
)

// Topology is an undirected coupling graph over physical qubits 0..N-1.
type Topology struct {
	NumQubits int
	adj       map[int]map[int]bool
}

// New returns an edgeless topology over n qubits.
func New(n int) *Topology {
	if n <= 0 {
		panic("topology: need at least one qubit")
	}
	return &Topology{NumQubits: n, adj: make(map[int]map[int]bool)}
}

// AddEdge inserts an undirected coupling between a and b.
func (t *Topology) AddEdge(a, b int) {
	if a == b || a < 0 || b < 0 || a >= t.NumQubits || b >= t.NumQubits {
		panic(fmt.Sprintf("topology: bad edge (%d,%d)", a, b))
	}
	if t.adj[a] == nil {
		t.adj[a] = make(map[int]bool)
	}
	if t.adj[b] == nil {
		t.adj[b] = make(map[int]bool)
	}
	t.adj[a][b] = true
	t.adj[b][a] = true
}

// Connected reports whether a and b are directly coupled.
func (t *Topology) Connected(a, b int) bool { return t.adj[a][b] }

// Neighbors returns the neighbours of q in ascending order. The adjacency
// is a Go map, so the order must be imposed here: routing decisions and the
// device fingerprints built on top of this package need the same answer on
// every run.
func (t *Topology) Neighbors(q int) []int {
	out := make([]int, 0, len(t.adj[q]))
	for n := range t.adj[q] {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Edges returns all undirected edges once, with a < b, sorted
// lexicographically.
func (t *Topology) Edges() [][2]int {
	var out [][2]int
	for a, ns := range t.adj {
		for b := range ns {
			if a < b {
				out = append(out, [2]int{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Distances returns the all-pairs shortest-path distance matrix (hop
// counts) via BFS from every node. Unreachable pairs get NumQubits+1.
func (t *Topology) Distances() [][]int {
	n := t.NumQubits
	dist := make([][]int, n)
	for s := 0; s < n; s++ {
		row := make([]int, n)
		for i := range row {
			row[i] = n + 1
		}
		row[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for nb := range t.adj[v] {
				if row[nb] > row[v]+1 {
					row[nb] = row[v] + 1
					queue = append(queue, nb)
				}
			}
		}
		dist[s] = row
	}
	return dist
}

// Grid returns a rows×cols nearest-neighbour grid (the paper's 5×5
// platform is Grid(5, 5)).
func Grid(rows, cols int) *Topology {
	t := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				t.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				t.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return t
}

// Line returns a 1-D chain of n qubits.
func Line(n int) *Topology {
	t := New(n)
	for i := 0; i+1 < n; i++ {
		t.AddEdge(i, i+1)
	}
	return t
}

// Ring returns a cycle of n qubits.
func Ring(n int) *Topology {
	t := Line(n)
	if n > 2 {
		t.AddEdge(n-1, 0)
	}
	return t
}

// FullyConnected returns the complete coupling graph (useful to bypass
// routing in unit tests).
func FullyConnected(n int) *Topology {
	t := New(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			t.AddEdge(a, b)
		}
	}
	return t
}

// HeavyHex returns an IBM-style heavy-hexagon lattice built from unit
// cells: rows of degree-2/3 qubits where hexagon edges are subdivided by
// bridge qubits. The parameter cells controls how many hexagons tile the
// row; qubit count is 5·cells + 3. Used for topology
// ablations against the paper's 5×5 grid.
func HeavyHex(cells int) *Topology {
	if cells < 1 {
		panic("topology: HeavyHex needs at least one cell")
	}
	// A single row of hexagons: top rail, bottom rail, and bridge qubits.
	// Top rail: 2*cells+1 qubits; bottom rail: 2*cells+1; bridges: cells+1.
	top := 2*cells + 1
	bottom := 2*cells + 1
	bridges := cells + 1
	t := New(top + bottom + bridges)
	topAt := func(i int) int { return i }
	botAt := func(i int) int { return top + i }
	brAt := func(i int) int { return top + bottom + i }
	for i := 0; i+1 < top; i++ {
		t.AddEdge(topAt(i), topAt(i+1))
	}
	for i := 0; i+1 < bottom; i++ {
		t.AddEdge(botAt(i), botAt(i+1))
	}
	for i := 0; i < bridges; i++ {
		t.AddEdge(topAt(2*i), brAt(i))
		t.AddEdge(brAt(i), botAt(2*i))
	}
	return t
}
