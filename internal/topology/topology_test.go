package topology

import (
	"reflect"
	"sort"
	"testing"
)

func TestGridStructure(t *testing.T) {
	g := Grid(5, 5)
	if g.NumQubits != 25 {
		t.Fatalf("NumQubits = %d", g.NumQubits)
	}
	// 5x5 grid has 2*5*4 = 40 edges.
	if got := len(g.Edges()); got != 40 {
		t.Errorf("edges = %d, want 40", got)
	}
	if !g.Connected(0, 1) || !g.Connected(0, 5) {
		t.Error("corner adjacency wrong")
	}
	if g.Connected(4, 5) {
		t.Error("row wrap should not be connected")
	}
	if g.Connected(0, 6) {
		t.Error("diagonal should not be connected")
	}
}

func TestGridCornerAndCenterDegrees(t *testing.T) {
	g := Grid(3, 3)
	if len(g.Neighbors(0)) != 2 {
		t.Error("corner degree should be 2")
	}
	if len(g.Neighbors(4)) != 4 {
		t.Error("center degree should be 4")
	}
}

func TestLineAndRing(t *testing.T) {
	l := Line(4)
	if len(l.Edges()) != 3 {
		t.Errorf("line edges = %d", len(l.Edges()))
	}
	r := Ring(4)
	if len(r.Edges()) != 4 || !r.Connected(3, 0) {
		t.Error("ring closure missing")
	}
}

func TestFullyConnected(t *testing.T) {
	f := FullyConnected(5)
	if len(f.Edges()) != 10 {
		t.Errorf("K5 edges = %d", len(f.Edges()))
	}
}

func TestDistances(t *testing.T) {
	g := Grid(3, 3)
	d := g.Distances()
	if d[0][0] != 0 {
		t.Error("self distance")
	}
	if d[0][8] != 4 { // opposite corners of 3x3
		t.Errorf("corner-corner = %d, want 4", d[0][8])
	}
	if d[0][4] != 2 {
		t.Errorf("corner-center = %d, want 2", d[0][4])
	}
	// Symmetry.
	for a := 0; a < 9; a++ {
		for b := 0; b < 9; b++ {
			if d[a][b] != d[b][a] {
				t.Fatalf("asymmetric distance %d,%d", a, b)
			}
		}
	}
}

func TestDistancesDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	d := g.Distances()
	if d[0][2] <= 4 {
		t.Error("disconnected pair should have sentinel distance")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	for _, e := range [][2]int{{0, 0}, {-1, 1}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("edge %v should panic", e)
				}
			}()
			g.AddEdge(e[0], e[1])
		}()
	}
}

func TestHeavyHex(t *testing.T) {
	h := HeavyHex(2)
	// 2 cells: 5 top + 5 bottom + 3 bridges = 13 qubits.
	if h.NumQubits != 13 {
		t.Fatalf("qubits = %d", h.NumQubits)
	}
	// Edges: 4 top + 4 bottom + 2*3 bridges = 14.
	if got := len(h.Edges()); got != 14 {
		t.Errorf("edges = %d, want 14", got)
	}
	// Connectivity: everything reachable.
	d := h.Distances()
	for i := 0; i < h.NumQubits; i++ {
		for j := 0; j < h.NumQubits; j++ {
			if d[i][j] > h.NumQubits {
				t.Fatalf("disconnected pair %d,%d", i, j)
			}
		}
	}
	// Max degree 3 (the "heavy" property).
	for q := 0; q < h.NumQubits; q++ {
		if len(h.Neighbors(q)) > 3 {
			t.Errorf("qubit %d has degree %d > 3", q, len(h.Neighbors(q)))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("HeavyHex(0) should panic")
		}
	}()
	HeavyHex(0)
}

func TestHeavyHexInvariants(t *testing.T) {
	for cells := 1; cells <= 6; cells++ {
		h := HeavyHex(cells)
		if want := 5*cells + 3; h.NumQubits != want {
			t.Errorf("cells=%d: qubits = %d, want %d", cells, h.NumQubits, want)
		}
		// Rail edges: 2*cells per rail; bridge edges: 2*(cells+1).
		if want := 4*cells + 2*(cells+1); len(h.Edges()) != want {
			t.Errorf("cells=%d: edges = %d, want %d", cells, len(h.Edges()), want)
		}
		for q := 0; q < h.NumQubits; q++ {
			if deg := len(h.Neighbors(q)); deg > 3 {
				t.Errorf("cells=%d: qubit %d has degree %d > 3", cells, q, deg)
			}
		}
		d := h.Distances()
		for i := 0; i < h.NumQubits; i++ {
			for j := 0; j < h.NumQubits; j++ {
				if d[i][j] > h.NumQubits {
					t.Fatalf("cells=%d: disconnected pair %d,%d", cells, i, j)
				}
			}
		}
	}
}

// Neighbors and Edges are built from map iteration; the API promises a
// sorted, run-to-run stable order (routing and device fingerprints depend
// on it).
func TestNeighborsAndEdgesSorted(t *testing.T) {
	for name, topo := range map[string]*Topology{
		"grid":     Grid(4, 5),
		"heavyhex": HeavyHex(3),
		"ring":     Ring(7),
		"full":     FullyConnected(6),
	} {
		for q := 0; q < topo.NumQubits; q++ {
			ns := topo.Neighbors(q)
			if !sort.IntsAreSorted(ns) {
				t.Errorf("%s: Neighbors(%d) = %v not sorted", name, q, ns)
			}
		}
		edges := topo.Edges()
		sorted := sort.SliceIsSorted(edges, func(i, j int) bool {
			if edges[i][0] != edges[j][0] {
				return edges[i][0] < edges[j][0]
			}
			return edges[i][1] < edges[j][1]
		})
		if !sorted {
			t.Errorf("%s: Edges() not sorted: %v", name, edges)
		}
		// Stable across calls (the map behind it would not be).
		for i := 0; i < 5; i++ {
			if again := topo.Edges(); !reflect.DeepEqual(edges, again) {
				t.Fatalf("%s: Edges() changed between calls", name)
			}
		}
	}
}
