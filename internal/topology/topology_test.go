package topology

import "testing"

func TestGridStructure(t *testing.T) {
	g := Grid(5, 5)
	if g.NumQubits != 25 {
		t.Fatalf("NumQubits = %d", g.NumQubits)
	}
	// 5x5 grid has 2*5*4 = 40 edges.
	if got := len(g.Edges()); got != 40 {
		t.Errorf("edges = %d, want 40", got)
	}
	if !g.Connected(0, 1) || !g.Connected(0, 5) {
		t.Error("corner adjacency wrong")
	}
	if g.Connected(4, 5) {
		t.Error("row wrap should not be connected")
	}
	if g.Connected(0, 6) {
		t.Error("diagonal should not be connected")
	}
}

func TestGridCornerAndCenterDegrees(t *testing.T) {
	g := Grid(3, 3)
	if len(g.Neighbors(0)) != 2 {
		t.Error("corner degree should be 2")
	}
	if len(g.Neighbors(4)) != 4 {
		t.Error("center degree should be 4")
	}
}

func TestLineAndRing(t *testing.T) {
	l := Line(4)
	if len(l.Edges()) != 3 {
		t.Errorf("line edges = %d", len(l.Edges()))
	}
	r := Ring(4)
	if len(r.Edges()) != 4 || !r.Connected(3, 0) {
		t.Error("ring closure missing")
	}
}

func TestFullyConnected(t *testing.T) {
	f := FullyConnected(5)
	if len(f.Edges()) != 10 {
		t.Errorf("K5 edges = %d", len(f.Edges()))
	}
}

func TestDistances(t *testing.T) {
	g := Grid(3, 3)
	d := g.Distances()
	if d[0][0] != 0 {
		t.Error("self distance")
	}
	if d[0][8] != 4 { // opposite corners of 3x3
		t.Errorf("corner-corner = %d, want 4", d[0][8])
	}
	if d[0][4] != 2 {
		t.Errorf("corner-center = %d, want 2", d[0][4])
	}
	// Symmetry.
	for a := 0; a < 9; a++ {
		for b := 0; b < 9; b++ {
			if d[a][b] != d[b][a] {
				t.Fatalf("asymmetric distance %d,%d", a, b)
			}
		}
	}
}

func TestDistancesDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	d := g.Distances()
	if d[0][2] <= 4 {
		t.Error("disconnected pair should have sentinel distance")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	for _, e := range [][2]int{{0, 0}, {-1, 1}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("edge %v should panic", e)
				}
			}()
			g.AddEdge(e[0], e[1])
		}()
	}
}

func TestHeavyHex(t *testing.T) {
	h := HeavyHex(2)
	// 2 cells: 5 top + 5 bottom + 3 bridges = 13 qubits.
	if h.NumQubits != 13 {
		t.Fatalf("qubits = %d", h.NumQubits)
	}
	// Edges: 4 top + 4 bottom + 2*3 bridges = 14.
	if got := len(h.Edges()); got != 14 {
		t.Errorf("edges = %d, want 14", got)
	}
	// Connectivity: everything reachable.
	d := h.Distances()
	for i := 0; i < h.NumQubits; i++ {
		for j := 0; j < h.NumQubits; j++ {
			if d[i][j] > h.NumQubits {
				t.Fatalf("disconnected pair %d,%d", i, j)
			}
		}
	}
	// Max degree 3 (the "heavy" property).
	for q := 0; q < h.NumQubits; q++ {
		if len(h.Neighbors(q)) > 3 {
			t.Errorf("qubit %d has degree %d > 3", q, len(h.Neighbors(q)))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("HeavyHex(0) should panic")
		}
	}()
	HeavyHex(0)
}
