package critical

import "paqoc/internal/circuit"

// MergeCase classifies a candidate per §V-A1.
type MergeCase int

const (
	// CaseI: both blocks lie on the critical path.
	CaseI MergeCase = iota
	// CaseII: exactly one of the two blocks is critical.
	CaseII
	// CaseIII: neither block is critical — pruned, merging cannot shorten
	// the critical path and may create false dependences (Fig. 9-d).
	CaseIII
)

func (c MergeCase) String() string {
	switch c {
	case CaseI:
		return "I"
	case CaseII:
		return "II"
	default:
		return "III"
	}
}

// Candidate is a proposed two-block merge (the hierarchical search of
// §V-A1 considers pairs; multi-gate groups emerge across iterations).
type Candidate struct {
	I, J   int // block indices, J directly depends on I
	Merged *Block
	Case   MergeCase
	Score  float64 // critical-path reduction; filled by the ranking step
}

// ValidMerge reports whether blocks i and j can be fused: j must directly
// depend on i, the only i⇝j path must be the direct edge (otherwise
// contraction creates a cycle), and the union width must not exceed maxN.
func (bc *BlockCircuit) ValidMerge(i, j, maxN int) bool {
	if i < 0 || j <= i || j >= len(bc.Blocks) {
		return false
	}
	dag := bc.DAG()
	direct := false
	for _, s := range dag.Succs[i] {
		if s == j {
			direct = true
			break
		}
	}
	if !direct {
		return false
	}
	if unionWidth(bc.Blocks[i], bc.Blocks[j]) > maxN {
		return false
	}
	return !bc.hasIndirectPath(i, j)
}

// hasIndirectPath reports an i⇝j path of length ≥ 2.
func (bc *BlockCircuit) hasIndirectPath(i, j int) bool {
	dag := bc.DAG()
	seen := make([]bool, len(bc.Blocks))
	var stack []int
	for _, s := range dag.Succs[i] {
		if s != j && s < j { // successors beyond j can't reach back in a DAG ordered list
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		for _, s := range dag.Succs[v] {
			if s == j {
				return true
			}
			if s < j && !seen[s] {
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Candidates enumerates all valid two-block merges, classifying each by
// criticality; Case III candidates are dropped when pruneCaseIII is set
// (the paper's default).
func (bc *BlockCircuit) Candidates(maxN int, pruneCaseIII bool) []Candidate {
	dag := bc.DAG()
	on := bc.OnCriticalPath()
	var out []Candidate
	for i := range bc.Blocks {
		for _, j := range dag.Succs[i] {
			if !bc.ValidMerge(i, j, maxN) {
				continue
			}
			var mc MergeCase
			switch {
			case on[i] && on[j]:
				mc = CaseI
			case on[i] || on[j]:
				mc = CaseII
			default:
				mc = CaseIII
			}
			if pruneCaseIII && mc == CaseIII {
				continue
			}
			out = append(out, Candidate{I: i, J: j, Merged: Merge(bc.Blocks[i], bc.Blocks[j]), Case: mc})
		}
	}
	return out
}

// PreprocessCandidates returns the Observation-1 pre-processing merges of
// §V-A1 (Fig. 8-c): adjacent pairs where one block's qubit set contains the
// other's, so fusing cannot create false dependences and is "typically
// beneficial". The structural side conditions guarantee validity without a
// reachability check.
func (bc *BlockCircuit) PreprocessCandidates(maxN int) []Candidate {
	dag := bc.DAG()
	var out []Candidate
	for i := range bc.Blocks {
		for _, j := range dag.Succs[i] {
			a, b := bc.Blocks[i], bc.Blocks[j]
			if unionWidth(a, b) > maxN {
				continue
			}
			jSub := subset(b.Qubits, a.Qubits) && len(dag.Preds[j]) == 1
			iSub := subset(a.Qubits, b.Qubits) && len(dag.Succs[i]) == 1
			if jSub || iSub {
				out = append(out, Candidate{I: i, J: j, Merged: Merge(a, b), Case: CaseI})
			}
		}
	}
	return out
}

// CPIfMerged returns the exact whole-circuit critical path if blocks i and
// j were merged into one block of latency lab. It reconstructs the
// dependence structure from qubit sets, so the false dependences the merge
// introduces (§V-A's Case analysis, Fig. 9) are accounted for exactly.
func (bc *BlockCircuit) CPIfMerged(i, j int, lab float64) float64 {
	dag := bc.DAG()
	n := len(bc.Blocks)

	// Partition the window (i, j) exactly as ReplaceMerge will.
	reach := make([]bool, n)
	reach[i] = true
	for v := i + 1; v < j; v++ {
		for _, p := range dag.Preds[v] {
			if reach[p] {
				reach[v] = true
				break
			}
		}
	}
	sets := make([][]int, 0, n-1)
	weights := make([]float64, 0, n-1)
	add := func(qs []int, w float64) {
		sets = append(sets, qs)
		weights = append(weights, w)
	}
	for v := 0; v < i; v++ {
		add(bc.Blocks[v].Qubits, bc.Blocks[v].Latency)
	}
	for v := i + 1; v < j; v++ {
		if !reach[v] {
			add(bc.Blocks[v].Qubits, bc.Blocks[v].Latency)
		}
	}
	add(unionQubits(bc.Blocks[i], bc.Blocks[j]), lab)
	for v := i + 1; v < j; v++ {
		if reach[v] {
			add(bc.Blocks[v].Qubits, bc.Blocks[v].Latency)
		}
	}
	for v := j + 1; v < n; v++ {
		add(bc.Blocks[v].Qubits, bc.Blocks[v].Latency)
	}
	return circuit.BuildQubitDAG(bc.NumQubits, sets).CriticalPathLength(weights)
}

func unionWidth(a, b *Block) int { return len(unionQubits(a, b)) }

func unionQubits(a, b *Block) []int {
	set := map[int]bool{}
	for _, q := range a.Qubits {
		set[q] = true
	}
	for _, q := range b.Qubits {
		set[q] = true
	}
	out := make([]int, 0, len(set))
	for q := range set {
		out = append(out, q)
	}
	sortInts(out)
	return out
}

func subset(inner, outer []int) bool {
	set := map[int]bool{}
	for _, q := range outer {
		set[q] = true
	}
	for _, q := range inner {
		if !set[q] {
			return false
		}
	}
	return true
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}
