package critical

import (
	"math"
	"math/rand"
	"testing"

	"paqoc/internal/circuit"
	"paqoc/internal/linalg"
	"paqoc/internal/pulse"
)

// unitLatency gives every block latency 1, making critical path = depth.
func unitLatency(*pulse.CustomGate) (float64, error) { return 1, nil }

func fromGates(t *testing.T, nq int, build func(c *circuit.Circuit)) *BlockCircuit {
	t.Helper()
	c := circuit.New(nq)
	build(c)
	bc, err := FromCircuit(c, unitLatency)
	if err != nil {
		t.Fatal(err)
	}
	return bc
}

func TestCriticalPathMatchesDepth(t *testing.T) {
	bc := fromGates(t, 3, func(c *circuit.Circuit) {
		c.Add("h", 0)
		c.Add("cx", 0, 1)
		c.Add("cx", 1, 2)
		c.Add("h", 2)
	})
	if got := bc.CriticalPath(); got != 4 {
		t.Errorf("CP = %g, want 4", got)
	}
	if got := bc.TotalLatency(); got != 4 {
		t.Errorf("total = %g", got)
	}
}

func TestValidMergeBasics(t *testing.T) {
	bc := fromGates(t, 3, func(c *circuit.Circuit) {
		c.Add("h", 0)     // 0
		c.Add("cx", 0, 1) // 1
		c.Add("cx", 1, 2) // 2
	})
	if !bc.ValidMerge(0, 1, 3) {
		t.Error("adjacent merge should be valid")
	}
	if bc.ValidMerge(0, 2, 3) {
		t.Error("non-adjacent blocks must not merge")
	}
	if bc.ValidMerge(1, 2, 2) {
		t.Error("width-3 merge must respect maxN=2")
	}
	if bc.ValidMerge(1, 0, 3) {
		t.Error("reversed indices must be invalid")
	}
}

func TestValidMergeRejectsIndirectPath(t *testing.T) {
	// 0: cx(0,1); 1: h(1); 2: cx(1,0)? -> direct and indirect paths:
	// 0→1→2 and 0→2? Build: a=cx(0,1); w=h(0); b=cx(0,1).
	bc := fromGates(t, 2, func(c *circuit.Circuit) {
		c.Add("cx", 0, 1) // 0
		c.Add("h", 0)     // 1: depends on 0
		c.Add("cx", 0, 1) // 2: depends on 0 (qubit 1) and 1 (qubit 0)
	})
	dag := bc.DAG()
	if len(dag.Succs[0]) != 2 {
		t.Fatalf("expected 0 to have two successors, got %v", dag.Succs[0])
	}
	if bc.ValidMerge(0, 2, 3) {
		t.Error("merging around an intermediate dependence must be invalid")
	}
	if !bc.ValidMerge(0, 1, 3) || !bc.ValidMerge(1, 2, 3) {
		t.Error("chain merges should be valid")
	}
}

func TestCandidatesCaseClassification(t *testing.T) {
	// Heavy chain on qubits 0,1 is critical; light pair on 2,3 is not.
	c := circuit.New(4)
	c.Add("cx", 0, 1) // 0 critical
	c.Add("cx", 0, 1) // 1 critical
	c.Add("h", 2)     // 2 off-critical
	c.Add("h", 2)     // 3 off-critical
	bc, err := FromCircuit(c, func(cg *pulse.CustomGate) (float64, error) {
		if cg.NumQubits() == 2 {
			return 100, nil
		}
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	all := bc.Candidates(3, false)
	var gotI, gotIII int
	for _, cand := range all {
		switch cand.Case {
		case CaseI:
			gotI++
		case CaseIII:
			gotIII++
		}
	}
	if gotI != 1 || gotIII != 1 {
		t.Errorf("cases I=%d III=%d, want 1 and 1 (candidates %v)", gotI, gotIII, all)
	}
	pruned := bc.Candidates(3, true)
	for _, cand := range pruned {
		if cand.Case == CaseIII {
			t.Error("Case III survived pruning")
		}
	}
}

func TestCandidatesCaseII(t *testing.T) {
	// Fig. 9-c: A on the critical path, C a light non-critical successor,
	// while the critical path continues through a heavy chain on qubit 0.
	c := circuit.New(4)
	c.Add("cx", 0, 1) // 0: heavy, critical
	c.Add("cx", 0, 1) // 1: A — heavy, critical
	c.Add("cx", 1, 2) // 2: C — light successor of A, off-critical
	c.Add("cx", 0, 3) // 3: heavy critical continuation after A
	bc, err := FromCircuit(c, func(cg *pulse.CustomGate) (float64, error) {
		if cg.NumQubits() == 2 && cg.Qubits[0] == 0 {
			return 100, nil
		}
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	on := bc.OnCriticalPath()
	if !on[1] || on[2] {
		t.Fatalf("criticality setup wrong: %v", on)
	}
	found := false
	for _, cand := range bc.Candidates(3, true) {
		if cand.I == 1 && cand.J == 2 && cand.Case == CaseII {
			found = true
		}
	}
	if !found {
		t.Error("expected a Case II candidate (critical A with non-critical C)")
	}
}

func TestPreprocessCandidatesNestedQubits(t *testing.T) {
	bc := fromGates(t, 2, func(c *circuit.Circuit) {
		c.Add("h", 0)     // 0 ⊂ cx's qubits
		c.Add("cx", 0, 1) // 1
		c.Add("t", 1)     // 2 ⊂ cx's qubits
	})
	pre := bc.PreprocessCandidates(3)
	if len(pre) != 2 {
		t.Fatalf("preprocess candidates = %d, want 2 (%v)", len(pre), pre)
	}
}

func TestPreprocessCandidatesAlwaysValid(t *testing.T) {
	// Every structural preprocess candidate must also pass the general
	// validity check (no cycles on contraction).
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		bc := randomBlocks(t, rng)
		for _, cand := range bc.PreprocessCandidates(3) {
			if !bc.ValidMerge(cand.I, cand.J, 3) {
				t.Fatalf("trial %d: preprocess candidate (%d,%d) fails ValidMerge", trial, cand.I, cand.J)
			}
		}
	}
}

func TestPreprocessSkipsAmbiguousDirection(t *testing.T) {
	// cx(0,1) followed by a 1q gate whose wire was last written by a
	// different gate must not be paired with the wrong predecessor: the
	// jSub condition requires Preds(j) == {i}.
	bc := fromGates(t, 3, func(c *circuit.Circuit) {
		c.Add("cx", 0, 1) // 0
		c.Add("cx", 1, 2) // 1
		c.Add("h", 1)     // 2: pred is 1, not 0
	})
	for _, cand := range bc.PreprocessCandidates(3) {
		if cand.J == 2 && cand.I == 0 {
			t.Error("preprocess paired h(1) with a non-predecessor")
		}
	}
}

func TestCPIfMergedAccountsForFalseDependence(t *testing.T) {
	// Fig. 4: merging A and B creates a false dependence that elongates
	// the critical path; merging A and C does not.
	// A = cx(0,1), C = h(0) [A's successor off-CP], B = cx(1,2) then chain.
	c := circuit.New(3)
	c.Add("cx", 0, 1) // 0: A
	c.Add("h", 0)     // 1: C (off critical path)
	c.Add("cx", 1, 2) // 2: B (critical continuation)
	c.Add("cx", 1, 2) // 3: more critical work
	bc, err := FromCircuit(c, func(cg *pulse.CustomGate) (float64, error) {
		if cg.NumQubits() == 2 {
			return 10, nil
		}
		return 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	base := bc.CriticalPath() // 30 via A→B→chain
	if base != 30 {
		t.Fatalf("base CP = %g, want 30", base)
	}
	// Merge A+C with a latency barely better than sum: CP through B chain
	// unchanged → still 30 if Lac ≤ 10.
	if got := bc.CPIfMerged(0, 1, 10); got != 30 {
		t.Errorf("CP after A+C merge = %g, want 30", got)
	}
	// Merge A+B into latency 15 (< 20): CP = 15+10 = 25; and C now hangs
	// off the merged block: 15+2 < 25 fine.
	if got := bc.CPIfMerged(0, 2, 15); got != 25 {
		t.Errorf("CP after A+B merge = %g, want 25", got)
	}
}

func TestCPIfMergedMatchesReplaceMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		bc := randomBlocks(t, rng)
		cands := bc.Candidates(3, false)
		if len(cands) == 0 {
			continue
		}
		cand := cands[rng.Intn(len(cands))]
		lab := 1 + rng.Float64()*20
		predicted := bc.CPIfMerged(cand.I, cand.J, lab)
		bc.ReplaceMerge(cand.I, cand.J, cand.Merged, lab, nil)
		if got := bc.CriticalPath(); math.Abs(got-predicted) > 1e-9 {
			t.Fatalf("trial %d: predicted CP %g, actual %g", trial, predicted, got)
		}
	}
}

func TestReplaceMergePreservesSemantics(t *testing.T) {
	// Flattened circuit after merges must implement the same unitary.
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 10; trial++ {
		c := circuit.New(3)
		names := []string{"h", "t", "s"}
		for i := 0; i < 12; i++ {
			if rng.Intn(2) == 0 {
				c.Add(names[rng.Intn(3)], rng.Intn(3))
			} else {
				a, b := rng.Intn(3), rng.Intn(3)
				for b == a {
					b = rng.Intn(3)
				}
				c.Add("cx", a, b)
			}
		}
		want, err := c.Unitary(4)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := FromCircuit(c, unitLatency)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 5; round++ {
			cands := bc.Candidates(3, false)
			if len(cands) == 0 {
				break
			}
			cand := cands[rng.Intn(len(cands))]
			bc.ReplaceMerge(cand.I, cand.J, cand.Merged, 1, nil)
		}
		got, err := bc.Flatten().Unitary(4)
		if err != nil {
			t.Fatal(err)
		}
		if linalg.GlobalPhaseDistance(want, got) > 1e-9 {
			t.Fatalf("trial %d: merging changed the circuit unitary", trial)
		}
	}
}

func TestReplaceMergeKeepsLinearExtension(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 20; trial++ {
		bc := randomBlocks(t, rng)
		for round := 0; round < 6; round++ {
			cands := bc.Candidates(3, false)
			if len(cands) == 0 {
				break
			}
			cand := cands[rng.Intn(len(cands))]
			bc.ReplaceMerge(cand.I, cand.J, cand.Merged, 1, nil)
			// Every dependence edge must point forward in block order.
			dag := bc.DAG()
			for u, ss := range dag.Succs {
				for _, s := range ss {
					if s <= u {
						t.Fatalf("trial %d: edge %d→%d violates linear extension", trial, u, s)
					}
				}
			}
			dag.TopoOrder() // panics on cycles
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	bc := fromGates(t, 2, func(c *circuit.Circuit) {
		c.Add("h", 0)
		c.Add("cx", 0, 1)
	})
	cl := bc.Clone()
	cl.Blocks[0].Latency = 99
	cl.Blocks[0].Gates[0].Name = "x"
	if bc.Blocks[0].Latency == 99 || bc.Blocks[0].Gates[0].Name == "x" {
		t.Error("Clone shares mutable state")
	}
}

func TestGeneratedCollects(t *testing.T) {
	bc := fromGates(t, 2, func(c *circuit.Circuit) {
		c.Add("h", 0)
	})
	g := &pulse.Generated{Latency: 5}
	bc.Blocks[0].Gen = g
	if got := bc.Generated(); len(got) != 1 || got[0] != g {
		t.Error("Generated() mismatch")
	}
}

func randomBlocks(t *testing.T, rng *rand.Rand) *BlockCircuit {
	t.Helper()
	c := circuit.New(4)
	for i := 0; i < 15; i++ {
		if rng.Intn(2) == 0 {
			c.Add("h", rng.Intn(4))
		} else {
			a, b := rng.Intn(4), rng.Intn(4)
			for b == a {
				b = rng.Intn(4)
			}
			c.Add("cx", a, b)
		}
	}
	bc, err := FromCircuit(c, func(cg *pulse.CustomGate) (float64, error) {
		return 1 + rng.Float64()*9, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return bc
}

func BenchmarkCandidates(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	c := circuit.New(10)
	for i := 0; i < 300; i++ {
		if rng.Intn(2) == 0 {
			c.Add("h", rng.Intn(10))
		} else {
			x, y := rng.Intn(10), rng.Intn(10)
			for y == x {
				y = rng.Intn(10)
			}
			c.Add("cx", x, y)
		}
	}
	bc, _ := FromCircuit(c, unitLatency)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.Candidates(3, true)
	}
}

func BenchmarkCPIfMerged(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	bcSrc := circuit.New(10)
	for i := 0; i < 300; i++ {
		x, y := rng.Intn(10), rng.Intn(10)
		for y == x {
			y = rng.Intn(10)
		}
		bcSrc.Add("cx", x, y)
	}
	bc, _ := FromCircuit(bcSrc, unitLatency)
	cands := bc.Candidates(3, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cands[i%len(cands)]
		bc.CPIfMerged(c.I, c.J, 1.5)
	}
}

func TestTimelineMakespanEqualsCriticalPath(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		bc := randomBlocks(t, rng)
		// Apply a few merges so the timeline covers merged blocks too.
		for round := 0; round < 3; round++ {
			cands := bc.Candidates(3, false)
			if len(cands) == 0 {
				break
			}
			c := cands[rng.Intn(len(cands))]
			bc.ReplaceMerge(c.I, c.J, c.Merged, 1+rng.Float64()*9, nil)
		}
		tl, err := bc.Timeline()
		if err != nil {
			t.Fatal(err)
		}
		if err := tl.Validate(); err != nil {
			t.Fatal(err)
		}
		if math.Abs(tl.Makespan-bc.CriticalPath()) > 1e-9 {
			t.Fatalf("trial %d: makespan %g != critical path %g", trial, tl.Makespan, bc.CriticalPath())
		}
	}
}
