// Package critical implements the criticality-aware analysis of §V-A: the
// block circuit (a circuit whose nodes are customized-gate groups), the
// weighted critical path CP(X), the Case I/II/III classification of merge
// candidates, and the exact what-if critical path of a proposed merge.
package critical

import (
	"fmt"
	"sort"

	"paqoc/internal/circuit"
	"paqoc/internal/pulse"
)

// Block is one node of the block circuit: a group of consecutive basis
// gates scheduled as a single pulse.
type Block struct {
	Gates   []circuit.Gate
	Qubits  []int   // sorted
	Latency float64 // current pulse latency estimate in dt
	Gen     *pulse.Generated
	APA     bool  // true when the block came from an APA-basis replacement
	Origin  []int // original gate indices contained in this block
}

// NewBlock wraps one gate as a block.
func NewBlock(g circuit.Gate, lat float64) *Block {
	return &Block{
		Gates:   []circuit.Gate{g.Clone()},
		Qubits:  append([]int(nil), g.Qubits...),
		Latency: lat,
	}
}

// Custom returns the pulse-generation view of the block.
func (b *Block) Custom() *pulse.CustomGate { return pulse.NewCustomGate(b.Gates) }

// NumQubits returns N_Q(block).
func (b *Block) NumQubits() int { return len(b.Qubits) }

// Merge concatenates a followed by b into a new block (latency unset).
func Merge(a, b *Block) *Block {
	gates := make([]circuit.Gate, 0, len(a.Gates)+len(b.Gates))
	for _, g := range a.Gates {
		gates = append(gates, g.Clone())
	}
	for _, g := range b.Gates {
		gates = append(gates, g.Clone())
	}
	set := map[int]bool{}
	for _, q := range a.Qubits {
		set[q] = true
	}
	for _, q := range b.Qubits {
		set[q] = true
	}
	qs := make([]int, 0, len(set))
	for q := range set {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	origin := append(append([]int(nil), a.Origin...), b.Origin...)
	return &Block{Gates: gates, Qubits: qs, APA: a.APA && b.APA, Origin: origin}
}

// BlockCircuit is a circuit of blocks in program order (a valid linear
// extension of the block dependence DAG).
type BlockCircuit struct {
	NumQubits int
	Blocks    []*Block

	dag   *circuit.DAG // lazily rebuilt
	dirty bool
}

// FromCircuit builds the initial block circuit: one block per gate, with
// latencies from the generator-independent estimator est (may be nil,
// leaving latencies zero).
func FromCircuit(c *circuit.Circuit, est func(*pulse.CustomGate) (float64, error)) (*BlockCircuit, error) {
	bc := &BlockCircuit{NumQubits: c.NumQubits, dirty: true}
	for gi, g := range c.Gates {
		b := NewBlock(g, 0)
		b.Origin = []int{gi}
		if est != nil {
			lat, err := est(b.Custom())
			if err != nil {
				return nil, fmt.Errorf("critical: estimating %s: %v", g.String(), err)
			}
			b.Latency = lat
		}
		bc.Blocks = append(bc.Blocks, b)
	}
	return bc, nil
}

// DAG returns the block dependence DAG, rebuilding it after mutations.
func (bc *BlockCircuit) DAG() *circuit.DAG {
	if bc.dirty || bc.dag == nil {
		sets := make([][]int, len(bc.Blocks))
		for i, b := range bc.Blocks {
			sets[i] = b.Qubits
		}
		bc.dag = circuit.BuildQubitDAG(bc.NumQubits, sets)
		bc.dirty = false
	}
	return bc.dag
}

// Weights returns the per-block latency vector.
func (bc *BlockCircuit) Weights() []float64 {
	w := make([]float64, len(bc.Blocks))
	for i, b := range bc.Blocks {
		w[i] = b.Latency
	}
	return w
}

// CriticalPath returns the current weighted critical-path latency — the
// circuit latency PAQOC minimizes.
func (bc *BlockCircuit) CriticalPath() float64 {
	if len(bc.Blocks) == 0 {
		return 0
	}
	return bc.DAG().CriticalPathLength(bc.Weights())
}

// TotalLatency returns the sum of block latencies (the sequential-stitch
// bound, used for ESP-style accounting).
func (bc *BlockCircuit) TotalLatency() float64 {
	var t float64
	for _, b := range bc.Blocks {
		t += b.Latency
	}
	return t
}

// OnCriticalPath marks blocks lying on a critical path.
func (bc *BlockCircuit) OnCriticalPath() []bool {
	return bc.DAG().OnCriticalPath(bc.Weights())
}

// Generated collects the pulse results of all blocks (nil entries for
// blocks not yet generated).
func (bc *BlockCircuit) Generated() []*pulse.Generated {
	out := make([]*pulse.Generated, len(bc.Blocks))
	for i, b := range bc.Blocks {
		out[i] = b.Gen
	}
	return out
}

// ReplaceMerge replaces blocks i and j (i before j in program order, j
// directly depending on i, with no other i⇝j path — see ValidMerge) with
// their merged block. To keep the block list a linear extension of the new
// DAG, blocks strictly between i and j are partitioned: those reachable
// from i move after the merged block, the rest move before it.
func (bc *BlockCircuit) ReplaceMerge(i, j int, m *Block, lat float64, gen *pulse.Generated) {
	if i >= j || j >= len(bc.Blocks) {
		panic("critical: ReplaceMerge wants i < j within range")
	}
	m.Latency = lat
	m.Gen = gen

	dag := bc.DAG()
	reach := make([]bool, len(bc.Blocks))
	reach[i] = true
	// Forward reachability from i restricted to indices < j (successors
	// always have larger indices in a linear extension).
	for v := i + 1; v < j; v++ {
		for _, p := range dag.Preds[v] {
			if reach[p] {
				reach[v] = true
				break
			}
		}
	}

	var before, after []*Block
	for v := i + 1; v < j; v++ {
		if reach[v] {
			after = append(after, bc.Blocks[v])
		} else {
			before = append(before, bc.Blocks[v])
		}
	}
	rebuilt := make([]*Block, 0, len(bc.Blocks)-1)
	rebuilt = append(rebuilt, bc.Blocks[:i]...)
	rebuilt = append(rebuilt, before...)
	rebuilt = append(rebuilt, m)
	rebuilt = append(rebuilt, after...)
	rebuilt = append(rebuilt, bc.Blocks[j+1:]...)
	bc.Blocks = rebuilt
	bc.dirty = true
}

// Clone deep-copies the block circuit (generated pulses are shared).
func (bc *BlockCircuit) Clone() *BlockCircuit {
	out := &BlockCircuit{NumQubits: bc.NumQubits, dirty: true}
	out.Blocks = make([]*Block, len(bc.Blocks))
	for i, b := range bc.Blocks {
		nb := &Block{
			Qubits:  append([]int(nil), b.Qubits...),
			Latency: b.Latency,
			Gen:     b.Gen,
			APA:     b.APA,
			Origin:  append([]int(nil), b.Origin...),
		}
		nb.Gates = make([]circuit.Gate, len(b.Gates))
		for k, g := range b.Gates {
			nb.Gates[k] = g.Clone()
		}
		out.Blocks[i] = nb
	}
	return out
}

// Flatten reconstructs a plain circuit from the blocks in program order.
func (bc *BlockCircuit) Flatten() *circuit.Circuit {
	c := circuit.New(bc.NumQubits)
	for _, b := range bc.Blocks {
		for _, g := range b.Gates {
			c.AddGate(g.Clone())
		}
	}
	return c
}

// Timeline produces the whole-circuit ASAP pulse timeline of the current
// blocks. Its makespan is exactly the weighted critical path.
func (bc *BlockCircuit) Timeline() (*pulse.Timeline, error) {
	sets := make([][]int, len(bc.Blocks))
	lats := make([]float64, len(bc.Blocks))
	for i, b := range bc.Blocks {
		sets[i] = b.Qubits
		lats[i] = b.Latency
	}
	return pulse.BuildTimeline(sets, lats)
}
