package pulse

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"paqoc/internal/linalg"
)

// dbFile is the on-disk shape of a pulse database: the §V-C offline
// component persists APA-basis and customized-gate pulses here so the
// online component can start warm in a later process.
type dbFile struct {
	Version int           `json:"version"`
	Entries []dbFileEntry `json:"entries"`
}

type dbFileEntry struct {
	Dim      int          `json:"dim"`
	Unitary  [][2]float64 `json:"unitary"` // row-major (re, im)
	Latency  float64      `json:"latency_dt"`
	Fidelity float64      `json:"fidelity"`
	Error    float64      `json:"error"`
	Schedule *Schedule    `json:"schedule,omitempty"`
}

// Save serializes every stored pulse. It holds the read lock for the
// duration, so a concurrent snapshot is internally consistent.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := dbFile{Version: 1}
	for _, dimEntries := range db.byDim {
		for _, e := range dimEntries {
			fe := dbFileEntry{
				Dim:      e.U.Rows,
				Latency:  e.Generated.Latency,
				Fidelity: e.Generated.Fidelity,
				Error:    e.Generated.Error,
				Schedule: e.Generated.Schedule,
			}
			fe.Unitary = make([][2]float64, len(e.U.Data))
			for i, v := range e.U.Data {
				fe.Unitary[i] = [2]float64{real(v), imag(v)}
			}
			out.Entries = append(out.Entries, fe)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// SaveFile writes the database to path crash-safely: the snapshot goes to
// a temporary file in the same directory, is fsynced, and is renamed into
// place, so an interrupted save (crash, SIGKILL, full disk) can never
// corrupt an existing database — readers see either the old file or the
// new one, never a truncated mix.
func (db *DB) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("pulse: saving DB: %v", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = db.Save(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	// CreateTemp opens 0600; match the permissions a plain create would use.
	if err = tmp.Chmod(0o644); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Make the rename itself durable: without an fsync of the parent
	// directory, a crash shortly after a snapshot can resurrect the
	// previous file. Best-effort — not every platform supports syncing a
	// directory, and the file contents above are already fsynced.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile reads a database from path. A missing file is not an error: it
// returns an empty database and ok=false, matching the cold-start flow
// where the file appears after the first save.
func LoadFile(path string) (db *DB, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return NewDB(), false, nil
		}
		return nil, false, err
	}
	defer f.Close()
	db, err = LoadDB(f)
	if err != nil {
		return nil, false, err
	}
	return db, true, nil
}

// LoadDB reads a database written by Save. Cache statistics start fresh;
// permutation detection follows NewDB's default (on).
func LoadDB(r io.Reader) (*DB, error) {
	var in dbFile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("pulse: loading DB: %v", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("pulse: unsupported DB version %d", in.Version)
	}
	db := NewDB()
	for i, fe := range in.Entries {
		if fe.Dim <= 0 || len(fe.Unitary) != fe.Dim*fe.Dim {
			return nil, fmt.Errorf("pulse: entry %d has inconsistent dimensions", i)
		}
		u := linalg.New(fe.Dim, fe.Dim)
		for k, v := range fe.Unitary {
			u.Data[k] = complex(v[0], v[1])
		}
		db.Store(u, &Generated{
			Latency:  fe.Latency,
			Fidelity: fe.Fidelity,
			Error:    fe.Error,
			Schedule: fe.Schedule,
		})
	}
	return db, nil
}
