package pulse

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// dbFile is the on-disk shape of a pulse database: the §V-C offline
// component persists APA-basis and customized-gate pulses here so the
// online component can start warm in a later process.
type dbFile struct {
	Version int `json:"version"`
	// Fingerprint records which backend the pulses were calibrated for
	// (device.Profile.Fingerprint). Empty in snapshots from un-namespaced
	// DBs and in pre-fingerprint files.
	Fingerprint string      `json:"fingerprint,omitempty"`
	Entries     []WireEntry `json:"entries"`
}

// loadUnitaryTol bounds how far a loaded matrix may drift from exact
// unitarity (‖U†U − I‖ entrywise). JSON round-trips float64 exactly and
// stored targets are products of gate unitaries, so a healthy file sits
// orders of magnitude inside this; a corrupt or hand-edited one fails
// fast instead of poisoning warm starts.
const loadUnitaryTol = 1e-6

// SaveReport summarizes one snapshot.
type SaveReport struct {
	// Entries is the number of pulses written.
	Entries int
	// SkippedNonFinite counts entries dropped because a NaN or Inf crept
	// into their metadata or samples (a diverged GRAPE run): encoding them
	// would abort the whole snapshot (encoding/json rejects non-finite
	// floats), which previously wedged periodic snapshotting forever.
	SkippedNonFinite int
}

// Save serializes every stored pulse. The snapshot is copy-on-snapshot:
// entry pointers are cloned under the per-shard read locks (one shard at
// a time), then encoding and writing happen outside any lock — a slow or
// blocked writer never stalls concurrent Store/Do callers. Entries are
// sorted by canonical key, so two snapshots of the same population are
// byte-identical regardless of map iteration or insertion order.
func (db *DB) Save(w io.Writer) error {
	_, err := db.SaveWithReport(w)
	return err
}

// SaveWithReport is Save plus the skip accounting: non-finite entries are
// skipped and counted (pulse.save_skipped_nonfinite when a metrics
// registry is attached) rather than failing the snapshot.
func (db *DB) SaveWithReport(w io.Writer) (SaveReport, error) {
	entries := db.snapshotEntries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })

	var rep SaveReport
	out := dbFile{Version: 1, Fingerprint: db.fingerprint}
	for _, e := range entries {
		fe, ok := EncodeEntry(e)
		if !ok {
			rep.SkippedNonFinite++
			continue
		}
		out.Entries = append(out.Entries, fe)
	}
	rep.Entries = len(out.Entries)
	if rep.SkippedNonFinite > 0 {
		db.counter("pulse.save_skipped_nonfinite").Add(int64(rep.SkippedNonFinite))
	}
	enc := json.NewEncoder(w)
	return rep, enc.Encode(out)
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// SaveFile writes the database to path crash-safely: the snapshot goes to
// a temporary file in the same directory, is fsynced, and is renamed into
// place, so an interrupted save (crash, SIGKILL, full disk) can never
// corrupt an existing database — readers see either the old file or the
// new one, never a truncated mix.
func (db *DB) SaveFile(path string) error {
	_, err := db.SaveFileWithReport(path)
	return err
}

// SaveFileWithReport is SaveFile plus the SaveWithReport skip accounting.
func (db *DB) SaveFileWithReport(path string) (rep SaveReport, err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return rep, fmt.Errorf("pulse: saving DB: %v", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if rep, err = db.SaveWithReport(tmp); err != nil {
		return rep, err
	}
	if err = tmp.Sync(); err != nil {
		return rep, err
	}
	// CreateTemp opens 0600; match the permissions a plain create would use.
	if err = tmp.Chmod(0o644); err != nil {
		return rep, err
	}
	if err = tmp.Close(); err != nil {
		return rep, err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return rep, err
	}
	// Make the rename itself durable: without an fsync of the parent
	// directory, a crash shortly after a snapshot can resurrect the
	// previous file. Best-effort — not every platform supports syncing a
	// directory, and the file contents above are already fsynced.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return rep, nil
}

// LoadFile reads a database from path. A missing file is not an error: it
// returns an empty database and ok=false, matching the cold-start flow
// where the file appears after the first save.
func LoadFile(path string) (db *DB, ok bool, err error) {
	return loadFile(path, "", false)
}

// LoadFileFor is LoadFile pinned to a backend: the snapshot's fingerprint
// must match want (see LoadDBFor), and the returned DB — including the
// empty one for a missing file — is namespaced by want.
func LoadFileFor(path, want string) (db *DB, ok bool, err error) {
	return loadFile(path, want, true)
}

func loadFile(path, want string, pinned bool) (db *DB, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			db = NewDB()
			db.SetFingerprint(want)
			return db, false, nil
		}
		return nil, false, err
	}
	defer f.Close()
	db, err = loadDB(f, want, pinned)
	if err != nil {
		return nil, false, err
	}
	return db, true, nil
}

// LoadDB reads a database written by Save, validating every entry: the
// matrix must be the declared shape, every value (unitary, metadata,
// schedule samples) must be finite, and the matrix must be unitary within
// tolerance — a corrupt or hand-edited file fails fast with the offending
// entry's index instead of poisoning warm starts at compile time. Cache
// statistics start fresh; permutation detection follows NewDB's default
// (on). The loaded DB adopts the snapshot's fingerprint, if any.
func LoadDB(r io.Reader) (*DB, error) {
	return loadDB(r, "", false)
}

// LoadDBFor is LoadDB pinned to a serving backend: a snapshot whose
// fingerprint differs from want is refused, so pulses calibrated for one
// device are never warmed into another's cache. Legacy snapshots with no
// fingerprint are accepted and adopted under want (they predate
// namespacing and can only have come from the default platform).
func LoadDBFor(r io.Reader, want string) (*DB, error) {
	return loadDB(r, want, true)
}

func loadDB(r io.Reader, want string, pinned bool) (*DB, error) {
	var in dbFile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("pulse: loading DB: %v", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("pulse: unsupported DB version %d", in.Version)
	}
	db := NewDB()
	switch {
	case pinned:
		if in.Fingerprint != "" && in.Fingerprint != want {
			return nil, fmt.Errorf("pulse: DB snapshot was calibrated for backend fingerprint %q, serving backend is %q — refusing to load cross-device pulses",
				in.Fingerprint, want)
		}
		db.SetFingerprint(want)
	default:
		db.SetFingerprint(in.Fingerprint)
	}
	for i, fe := range in.Entries {
		u, g, err := fe.Decode()
		if err != nil {
			return nil, fmt.Errorf("%v (entry %d)", err, i)
		}
		db.store(u, g, fe.Protected)
	}
	return db, nil
}
