package pulse

import (
	"encoding/json"
	"fmt"
	"io"

	"paqoc/internal/linalg"
)

// dbFile is the on-disk shape of a pulse database: the §V-C offline
// component persists APA-basis and customized-gate pulses here so the
// online component can start warm in a later process.
type dbFile struct {
	Version int           `json:"version"`
	Entries []dbFileEntry `json:"entries"`
}

type dbFileEntry struct {
	Dim      int          `json:"dim"`
	Unitary  [][2]float64 `json:"unitary"` // row-major (re, im)
	Latency  float64      `json:"latency_dt"`
	Fidelity float64      `json:"fidelity"`
	Error    float64      `json:"error"`
	Schedule *Schedule    `json:"schedule,omitempty"`
}

// Save serializes every stored pulse. It holds the read lock for the
// duration, so a concurrent snapshot is internally consistent.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := dbFile{Version: 1}
	for _, dimEntries := range db.byDim {
		for _, e := range dimEntries {
			fe := dbFileEntry{
				Dim:      e.U.Rows,
				Latency:  e.Generated.Latency,
				Fidelity: e.Generated.Fidelity,
				Error:    e.Generated.Error,
				Schedule: e.Generated.Schedule,
			}
			fe.Unitary = make([][2]float64, len(e.U.Data))
			for i, v := range e.U.Data {
				fe.Unitary[i] = [2]float64{real(v), imag(v)}
			}
			out.Entries = append(out.Entries, fe)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// LoadDB reads a database written by Save. Cache statistics start fresh;
// permutation detection follows NewDB's default (on).
func LoadDB(r io.Reader) (*DB, error) {
	var in dbFile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("pulse: loading DB: %v", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("pulse: unsupported DB version %d", in.Version)
	}
	db := NewDB()
	for i, fe := range in.Entries {
		if fe.Dim <= 0 || len(fe.Unitary) != fe.Dim*fe.Dim {
			return nil, fmt.Errorf("pulse: entry %d has inconsistent dimensions", i)
		}
		u := linalg.New(fe.Dim, fe.Dim)
		for k, v := range fe.Unitary {
			u.Data[k] = complex(v[0], v[1])
		}
		db.Store(u, &Generated{
			Latency:  fe.Latency,
			Fidelity: fe.Fidelity,
			Error:    fe.Error,
			Schedule: fe.Schedule,
		})
	}
	return db, nil
}
