package pulse

import (
	"encoding/json"
	"fmt"
	"math"
)

// ScheduleJSON is the serialized form of a schedule, loosely following the
// OpenPulse convention of named channels with per-sample amplitudes. dt is
// the device sample time in nanoseconds so consumers can convert.
type ScheduleJSON struct {
	DtNanoseconds float64            `json:"dt_ns"`
	SliceDt       float64            `json:"slice_dt"`
	DurationDt    float64            `json:"duration_dt"`
	Channels      []ChannelJSON      `json:"channels"`
	Meta          map[string]float64 `json:"meta,omitempty"`
}

// ChannelJSON is one control channel's samples.
type ChannelJSON struct {
	Name    string    `json:"name"`
	Samples []float64 `json:"samples"`
}

// MarshalJSON serializes a schedule with optional metadata (latency,
// fidelity) merged in.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	out := ScheduleJSON{
		DtNanoseconds: 2.0 / 9.0,
		SliceDt:       s.SliceDt,
		DurationDt:    s.Duration(),
	}
	for k, name := range s.Channels {
		out.Channels = append(out.Channels, ChannelJSON{
			Name:    name,
			Samples: append([]float64(nil), s.Amps[k]...),
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a schedule.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var in ScheduleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.SliceDt <= 0 {
		return fmt.Errorf("pulse: non-positive slice_dt")
	}
	s.SliceDt = in.SliceDt
	s.Channels = nil
	s.Amps = nil
	n := -1
	for _, ch := range in.Channels {
		if n >= 0 && len(ch.Samples) != n {
			return fmt.Errorf("pulse: ragged channels")
		}
		n = len(ch.Samples)
		s.Channels = append(s.Channels, ch.Name)
		s.Amps = append(s.Amps, append([]float64(nil), ch.Samples...))
	}
	return nil
}

// RenderASCII draws the schedule as per-channel amplitude strips, one row
// per channel, using a small glyph ramp. Useful for eyeballing pulses in a
// terminal (the paper's Fig. 2 panels, roughly).
func (s *Schedule) RenderASCII() string {
	const ramp = " .:-=+*#%@"
	var peak float64
	for _, ch := range s.Amps {
		for _, v := range ch {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
	}
	if peak == 0 {
		peak = 1
	}
	out := ""
	for k, name := range s.Channels {
		row := make([]byte, len(s.Amps[k]))
		for j, v := range s.Amps[k] {
			idx := int(math.Abs(v) / peak * float64(len(ramp)-1))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			row[j] = ramp[idx]
		}
		sign := ""
		out += fmt.Sprintf("%-10s |%s|%s\n", name, string(row), sign)
	}
	return out
}
