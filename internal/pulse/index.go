package pulse

import (
	"math"
	"math/cmplx"
	"sort"
	"sync"

	"paqoc/internal/linalg"
)

// dimIndex is the per-dimension similarity index behind Nearest. The first
// entry stored in a dimension becomes the pivot; every entry caches its
// phase-invariant distance to that pivot, and the item list stays sorted
// by it. A query then computes its own pivot distance dq once and scans
// outward from dq: by the triangle inequality, an entry at pivot distance
// p can be no closer to the query than |dq − p|, so as soon as that lower
// bound exceeds the best distance found, the rest of that direction is
// pruned without ever touching the O(dim²) distance kernel.
type dimIndex struct {
	mu         sync.RWMutex
	pivot      *linalg.Matrix
	pivotNorm2 float64
	items      []indexItem // sorted ascending by dPivot
}

// indexItem pairs an entry with its cached distance to the dim pivot.
type indexItem struct {
	dPivot float64
	e      *Entry
}

// pruneSlack absorbs floating-point error in the triangle-inequality
// bound: distances are O(1)-magnitude, computed to ~1e-15, so 1e-9 of
// slack can never prune a true winner yet costs nothing in selectivity.
const pruneSlack = 1e-9

// dimIndex returns (creating on demand) the index for one dimension.
func (db *DB) dimIndex(dim int) *dimIndex {
	if v, ok := db.dims.Load(dim); ok {
		return v.(*dimIndex)
	}
	v, _ := db.dims.LoadOrStore(dim, &dimIndex{})
	return v.(*dimIndex)
}

// insert adds a freshly stored entry, keeping the list sorted by pivot
// distance. The first entry of a dimension seeds the pivot (and keeps it
// forever — a stable pivot keeps every cached dPivot valid, even if the
// pivot entry itself is later evicted).
func (ix *dimIndex) insert(e *Entry) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if e.evicted.Load() {
		return // lost the race with the capacity bound; never index it
	}
	if ix.pivot == nil {
		ix.pivot = e.U
		ix.pivotNorm2 = e.norm2
	}
	d := phaseDist(ix.pivot, e.U, ix.pivotNorm2, e.norm2)
	i := sort.Search(len(ix.items), func(i int) bool { return ix.items[i].dPivot >= d })
	ix.items = append(ix.items, indexItem{})
	copy(ix.items[i+1:], ix.items[i:])
	ix.items[i] = indexItem{dPivot: d, e: e}
}

// removeAll drops every victim in one pass (batch eviction support).
func (ix *dimIndex) removeAll(victims map[*Entry]bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	kept := ix.items[:0]
	for _, it := range ix.items {
		if !victims[it.e] {
			kept = append(kept, it)
		}
	}
	for i := len(kept); i < len(ix.items); i++ {
		ix.items[i] = indexItem{} // release evicted entries to the GC
	}
	ix.items = kept
}

// frobNorm2 is ‖m‖²_F.
func frobNorm2(m *linalg.Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		re, im := real(v), imag(v)
		s += re*re + im*im
	}
	return s
}

// phaseDist is the phase-invariant Frobenius distance via the one-pass
// identity min_φ ‖A − e^{iφ}B‖²_F = ‖A‖² + ‖B‖² − 2·|tr(B†A)| — the same
// metric as linalg.GlobalPhaseDistance without forming A − e^{iφ}B, so a
// candidate costs one O(dim²) pass and zero allocations.
func phaseDist(a, b *linalg.Matrix, na2, nb2 float64) float64 {
	d2 := na2 + nb2 - 2*cmplx.Abs(linalg.TraceOverlap(b, a))
	if d2 < 0 {
		d2 = 0 // fp noise on (near-)identical unitaries
	}
	return math.Sqrt(d2)
}

// Nearest returns the stored entry of matching dimension with the smallest
// phase-invariant Frobenius distance to u, provided it is below maxDist.
// Used as the GRAPE initial guess (§V-B, following AccQOC). Exact distance
// ties break on the canonical key, so the chosen warm start is stable for
// a given DB population even when stores raced with the scan — and
// identical to the seed-era linear scan (NearestLinear), which the
// equivalence property test pins.
//
// The scan starts at the query's own pivot distance and expands outward,
// pruning each direction as soon as the triangle-inequality lower bound
// exceeds the best candidate; pulse.nearest_scanned / pulse.nearest_pruned
// count the split when a metrics registry is attached.
func (db *DB) Nearest(u *linalg.Matrix, maxDist float64) (*Entry, float64, bool) {
	v, ok := db.dims.Load(u.Rows)
	if !ok {
		return nil, 0, false
	}
	ix := v.(*dimIndex)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.items) == 0 {
		return nil, 0, false
	}

	un2 := frobNorm2(u)
	dq := phaseDist(ix.pivot, u, ix.pivotNorm2, un2)
	items := ix.items

	var best *Entry
	bestDist := maxDist
	scanned := 0
	consider := func(e *Entry) {
		scanned++
		d := phaseDist(u, e.U, un2, e.norm2)
		switch {
		case d < bestDist:
			best, bestDist = e, d
		case d == bestDist && best != nil && e.Key < best.Key:
			best = e
		}
	}

	// Outward two-pointer walk from dq: left runs down the sorted pivot
	// distances, right runs up. Visiting near-dq candidates first shrinks
	// bestDist early, which tightens the bound that closes each side.
	right := sort.Search(len(items), func(i int) bool { return items[i].dPivot >= dq })
	left := right - 1
	for left >= 0 || right < len(items) {
		// Prefer the side whose candidate is closer to dq.
		useLeft := right >= len(items) ||
			(left >= 0 && dq-items[left].dPivot <= items[right].dPivot-dq)
		if useLeft {
			if dq-items[left].dPivot > bestDist+pruneSlack {
				left = -1 // everything further left is at least as far
				continue
			}
			consider(items[left].e)
			left--
		} else {
			if items[right].dPivot-dq > bestDist+pruneSlack {
				right = len(items) // everything further right is at least as far
				continue
			}
			consider(items[right].e)
			right++
		}
	}

	db.counter("pulse.nearest_scanned").Add(int64(scanned))
	db.counter("pulse.nearest_pruned").Add(int64(len(items) - scanned))
	if best == nil {
		return nil, 0, false
	}
	best.uses.Add(1)
	return best, bestDist, true
}

// NearestLinear is the seed-era reference: an unpruned linear scan with
// linalg.GlobalPhaseDistance over every same-dimension entry. Retained as
// the oracle for the Nearest equivalence property test and as the
// baseline for the paqoc-bench pulsedb benchmark; production callers use
// Nearest.
func (db *DB) NearestLinear(u *linalg.Matrix, maxDist float64) (*Entry, float64, bool) {
	v, ok := db.dims.Load(u.Rows)
	if !ok {
		return nil, 0, false
	}
	ix := v.(*dimIndex)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var best *Entry
	bestDist := maxDist
	for _, it := range ix.items {
		d := linalg.GlobalPhaseDistance(u, it.e.U)
		switch {
		case d < bestDist:
			best, bestDist = it.e, d
		case d == bestDist && best != nil && it.e.Key < best.Key:
			best = it.e
		}
	}
	if best == nil {
		return nil, 0, false
	}
	return best, bestDist, true
}
