package pulse

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
)

// rotation returns an RZ-like diagonal unitary — cheap, distinct per angle.
func rotation(theta float64) *linalg.Matrix {
	u := linalg.New(2, 2)
	u.Data[0] = complex(math.Cos(theta/2), -math.Sin(theta/2))
	u.Data[3] = complex(math.Cos(theta/2), math.Sin(theta/2))
	return u
}

func TestPermutationsMemoized(t *testing.T) {
	a := permutations(3)
	b := permutations(3)
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("permutations(3) = %d entries", len(a))
	}
	if &a[0] != &b[0] {
		t.Error("permutations(3) rebuilt instead of memoized")
	}
	lp := lookupPerms(3)
	if len(lp) != 5 {
		t.Fatalf("lookupPerms(3) = %d entries, want 5 (identity hoisted)", len(lp))
	}
	for _, p := range lp {
		if isIdentityPerm(p) {
			t.Error("identity permutation leaked into the lookup table")
		}
	}
	if lp2 := lookupPerms(3); &lp2[0] != &lp[0] {
		t.Error("lookupPerms(3) rebuilt instead of memoized")
	}
}

func TestDBConcurrentHammer(t *testing.T) {
	db := NewDB()
	unitaries := make([]*linalg.Matrix, 16)
	for i := range unitaries {
		unitaries[i] = rotation(float64(i) * 0.37)
	}
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				u := unitaries[(w+i)%len(unitaries)]
				switch i % 4 {
				case 0:
					db.Store(u, &Generated{Latency: float64(i)})
				case 1:
					db.Lookup(u)
				case 2:
					db.Nearest(u, 0.5)
				case 3:
					db.Len()
					db.Stats()
				}
			}
		}()
	}
	wg.Wait()
	if db.Len() != len(unitaries) {
		t.Errorf("Len = %d, want %d", db.Len(), len(unitaries))
	}
}

func TestDoSingleflightOneGeneratorCallPerKey(t *testing.T) {
	db := NewDB()
	u := quantum.MatCX.Clone()
	var calls, waiting atomic.Int64
	release := make(chan struct{})
	const workers = 8
	// Hold the leader inside the generator until every other worker has
	// joined its flight, so the dedup count is deterministic.
	db.onWait = func() {
		if waiting.Add(1) == workers-1 {
			close(release)
		}
	}
	var wg sync.WaitGroup
	results := make([]*Generated, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, _, _, err := db.Do(u, func() (*Generated, error) {
				calls.Add(1)
				<-release
				return &Generated{Latency: 80}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[w] = g
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("generator ran %d times, want 1", n)
	}
	for w, g := range results {
		if g == nil || g.Latency != 80 {
			t.Errorf("worker %d got %+v", w, results[w])
		}
	}
	if db.Dedups() != workers-1 {
		t.Errorf("dedups = %d, want %d", db.Dedups(), workers-1)
	}
}

func TestDoPermutedInflightCoalesces(t *testing.T) {
	db := NewDB()
	u := quantum.MatCX.Clone()
	perm := []int{1, 0}
	up := quantum.PermuteQubits(u, perm) // CX with control/target swapped
	if CanonicalKey(u) == CanonicalKey(up) {
		t.Fatal("test needs distinct canonical keys")
	}
	var calls atomic.Int64
	var joinOnce sync.Once
	started := make(chan struct{})
	release := make(chan struct{})
	// Hold the leader until the permuted worker has joined its flight.
	db.onWait = func() { joinOnce.Do(func() { close(release) }) }
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		db.Do(u, func() (*Generated, error) {
			calls.Add(1)
			close(started)
			<-release
			return &Generated{Latency: 80}, nil
		})
	}()
	<-started
	wg.Add(1)
	var gotPerm []int
	var outcome Outcome
	go func() {
		defer wg.Done()
		// The permuted worker must join the in-flight generation of u
		// rather than starting its own.
		_, gotPerm, outcome, _ = db.Do(up, func() (*Generated, error) {
			calls.Add(1)
			return &Generated{Latency: 999}, nil
		})
	}()
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("generator ran %d times, want 1 (permuted dedup)", n)
	}
	if outcome != OutcomeDeduped {
		t.Errorf("outcome = %v, want OutcomeDeduped", outcome)
	}
	if len(gotPerm) == 0 {
		t.Error("permuted dedup lost the permutation")
	}
}

func TestDoLeaderErrorPromotesWaiter(t *testing.T) {
	db := NewDB()
	u := quantum.MatH.Clone()
	var calls atomic.Int64
	var joinOnce sync.Once
	started := make(chan struct{})
	release := make(chan struct{})
	// Hold the failing leader until the waiter has joined its flight, so
	// the waiter is guaranteed to observe the error and retry as leader.
	db.onWait = func() { joinOnce.Do(func() { close(release) }) }
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _, err := db.Do(u, func() (*Generated, error) {
			calls.Add(1)
			close(started)
			<-release
			return nil, fmt.Errorf("leader failed")
		})
		if err == nil {
			t.Error("leader error lost")
		}
	}()
	<-started
	done := make(chan *Generated)
	go func() {
		g, _, _, err := db.Do(u, func() (*Generated, error) {
			calls.Add(1)
			return &Generated{Latency: 24}, nil
		})
		if err != nil {
			t.Error(err)
		}
		done <- g
	}()
	wg.Wait()
	if g := <-done; g == nil || g.Latency != 24 {
		t.Errorf("promoted waiter got %+v", g)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("calls = %d, want 2 (leader errored, waiter retried)", n)
	}
}

func TestDoGeneratorPanicReleasesWaiters(t *testing.T) {
	db := NewDB()
	u := quantum.MatX.Clone()
	_, _, _, err := db.Do(u, func() (*Generated, error) { panic("boom") })
	if err == nil {
		t.Fatal("panic not converted to error")
	}
	// The flight must have been cleaned up: a retry succeeds.
	g, _, oc, err := db.Do(u, func() (*Generated, error) { return &Generated{Latency: 1}, nil })
	if err != nil || g.Latency != 1 || oc != OutcomeGenerated {
		t.Errorf("retry after panic: g=%+v oc=%v err=%v", g, oc, err)
	}
}

func TestNearestTieBreaksOnCanonicalKey(t *testing.T) {
	// Two entries at identical distance from the probe: ±θ rotations are
	// equidistant from the identity under the phase-invariant metric.
	const theta = 0.4
	a, b := rotation(theta), rotation(-theta)
	probe := linalg.Identity(2)
	da := linalg.GlobalPhaseDistance(probe, a)
	if db := linalg.GlobalPhaseDistance(probe, b); math.Abs(da-db) > 1e-15 {
		t.Skipf("distances not exactly tied: %g vs %g", da, db)
	}
	want := CanonicalKey(a)
	if kb := CanonicalKey(b); kb < want {
		want = kb
	}
	// Whatever the insertion order, the tie must resolve to the smaller key.
	for trial := 0; trial < 2; trial++ {
		db := NewDB()
		if trial == 0 {
			db.Store(a, &Generated{Latency: 1})
			db.Store(b, &Generated{Latency: 2})
		} else {
			db.Store(b, &Generated{Latency: 2})
			db.Store(a, &Generated{Latency: 1})
		}
		e, _, ok := db.Nearest(probe, 10)
		if !ok {
			t.Fatal("no nearest entry")
		}
		if e.Key != want {
			t.Errorf("trial %d: tie broke to %q, want smallest key", trial, e.Key[:20])
		}
	}
}

func TestDoSerialMatchesLookupStoreSemantics(t *testing.T) {
	db := NewDB()
	u := quantum.MatH.Clone()
	g1, _, oc, err := db.Do(u, func() (*Generated, error) { return &Generated{Latency: 24}, nil })
	if err != nil || oc != OutcomeGenerated || g1.Latency != 24 {
		t.Fatalf("first Do: g=%+v oc=%v err=%v", g1, oc, err)
	}
	g2, perm, oc, err := db.Do(u, func() (*Generated, error) {
		t.Error("generator re-ran on a hit")
		return nil, nil
	})
	if err != nil || oc != OutcomeHit || perm != nil || g2.Latency != 24 {
		t.Fatalf("second Do: g=%+v oc=%v err=%v", g2, oc, err)
	}
	hits, misses := db.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d, want 1/1", hits, misses)
	}
	if db.Dedups() != 0 {
		t.Errorf("dedups = %d in serial use", db.Dedups())
	}
}
