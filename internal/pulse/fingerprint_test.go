package pulse

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paqoc/internal/quantum"
)

func TestFingerprintNamespacesKeys(t *testing.T) {
	a, b := NewDB(), NewDB()
	a.SetFingerprint("backend-a")
	b.SetFingerprint("backend-b")
	if a.Fingerprint() != "backend-a" {
		t.Fatalf("fingerprint = %q", a.Fingerprint())
	}

	cx, err := quantum.GateUnitary("cx", nil)
	if err != nil {
		t.Fatal(err)
	}
	g := &Generated{Latency: 75, Fidelity: 0.999, Error: 0.001}
	a.Store(cx, g)

	if _, _, ok := a.Lookup(cx); !ok {
		t.Error("same-backend lookup must hit")
	}
	if _, _, ok := b.Lookup(cx); ok {
		t.Error("cross-backend DB must not share entries")
	}
	// The namespaced and un-namespaced views of the same unitary are
	// distinct keys too.
	plain := NewDB()
	plain.Store(cx, g)
	if k1, k2 := a.key(CanonicalKey(cx)), plain.key(CanonicalKey(cx)); k1 == k2 {
		t.Error("fingerprinted key must differ from the bare canonical key")
	}
}

func TestSetFingerprintRejectsNonEmptyDB(t *testing.T) {
	db := NewDB()
	db.Store(rotation(0.2), &Generated{Latency: 10, Fidelity: 0.999, Error: 0.001})
	defer func() {
		if recover() == nil {
			t.Error("SetFingerprint on a populated DB should panic")
		}
	}()
	db.SetFingerprint("late")
}

// The acceptance scenario: a snapshot taken while serving one backend is
// refused when loaded for another, and accepted for the same one.
func TestLoadRefusesCrossBackendSnapshot(t *testing.T) {
	db := NewDB()
	db.SetFingerprint("backend-a")
	db.Store(rotation(0.9), &Generated{Schedule: testSchedule(3.0), Latency: 20, Fidelity: 0.9995, Error: 0.0005})

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	if _, err := LoadDBFor(bytes.NewReader(snap), "backend-b"); err == nil {
		t.Fatal("cross-backend load must be refused")
	} else if !strings.Contains(err.Error(), "backend-a") || !strings.Contains(err.Error(), "backend-b") {
		t.Errorf("error should name both fingerprints: %v", err)
	}

	re, err := LoadDBFor(bytes.NewReader(snap), "backend-a")
	if err != nil {
		t.Fatal(err)
	}
	if re.Fingerprint() != "backend-a" || re.Len() != 1 {
		t.Errorf("same-backend reload: fp=%q len=%d", re.Fingerprint(), re.Len())
	}
	if _, _, ok := re.Lookup(rotation(0.9)); !ok {
		t.Error("reloaded entry must resolve under the same fingerprint")
	}
}

// Pre-fingerprint snapshots (no fingerprint field) are adopted under the
// serving backend instead of being refused — they predate namespacing.
func TestLoadAdoptsLegacySnapshot(t *testing.T) {
	legacy := NewDB()
	legacy.Store(rotation(0.4), &Generated{Latency: 15, Fidelity: 0.999, Error: 0.001})
	var buf bytes.Buffer
	if err := legacy.Save(&buf); err != nil {
		t.Fatal(err)
	}

	re, err := LoadDBFor(&buf, "backend-c")
	if err != nil {
		t.Fatal(err)
	}
	if re.Fingerprint() != "backend-c" {
		t.Errorf("fingerprint = %q, want adopted backend-c", re.Fingerprint())
	}
	if _, _, ok := re.Lookup(rotation(0.4)); !ok {
		t.Error("legacy entry must resolve under the adopted fingerprint")
	}
}

func TestLoadDBPreservesSnapshotFingerprint(t *testing.T) {
	db := NewDB()
	db.SetFingerprint("backend-x")
	db.Store(rotation(1.1), &Generated{Latency: 9, Fidelity: 0.999, Error: 0.001})
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if re.Fingerprint() != "backend-x" {
		t.Errorf("unpinned load: fingerprint = %q", re.Fingerprint())
	}
	if _, _, ok := re.Lookup(rotation(1.1)); !ok {
		t.Error("entry must resolve after unpinned reload")
	}
}

func TestLoadFileForMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.json")
	db, ok, err := LoadFileFor(path, "backend-d")
	if err != nil || ok {
		t.Fatalf("missing file: ok=%v err=%v", ok, err)
	}
	if db.Fingerprint() != "backend-d" {
		t.Errorf("cold-start DB must carry the serving fingerprint, got %q", db.Fingerprint())
	}
}

func TestLoadFileForRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	db := NewDB()
	db.SetFingerprint("backend-e")
	db.Store(rotation(0.6), &Generated{Latency: 11, Fidelity: 0.999, Error: 0.001})
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFileFor(path, "backend-f"); err == nil {
		t.Error("cross-backend LoadFileFor must fail")
	}
	re, ok, err := LoadFileFor(path, "backend-e")
	if err != nil || !ok || re.Len() != 1 {
		t.Fatalf("same-backend LoadFileFor: ok=%v len=%d err=%v", ok, re.Len(), err)
	}
}
