package pulse

import (
	"encoding/json"
	"fmt"
	"io"

	"paqoc/internal/linalg"
)

// EntryByKey fetches the stored entry for a canonical unitary key (the
// un-namespaced CanonicalKey form; the DB's backend fingerprint prefix is
// applied internally). It is the lookup behind the replication RPC's
// GET /internal/v1/pulse/{fingerprint}/{key}: a peer asks the owner for a
// key it computed locally, so the exchange never ships a unitary just to
// ask about it.
func (db *DB) EntryByKey(canonical string) (*Entry, bool) {
	e := db.get(db.key(canonical))
	if e == nil {
		return nil, false
	}
	e.uses.Add(1)
	return e, true
}

// Entries snapshots the live entry pointers (copy-on-snapshot, one shard
// read lock at a time — see snapshotEntries). Entries are immutable apart
// from their ranking state, so callers may read Key/U/Generated freely.
func (db *DB) Entries() []*Entry { return db.snapshotEntries() }

// MergeOutcome says how Merge resolved one entry against the store.
type MergeOutcome int

const (
	// MergeAdded: the key was absent; the entry was inserted.
	MergeAdded MergeOutcome = iota
	// MergeReplaced: the key existed with lower fidelity; the incoming
	// entry replaced it.
	MergeReplaced
	// MergeKept: the key existed with at least the incoming fidelity; the
	// stored entry was kept (the incoming protection flag still sticks).
	MergeKept
)

// Merge stores a generated pulse under u's canonical key with the
// replication conflict rule: keep higher fidelity. An absent key inserts;
// an existing entry is replaced only when the incoming fidelity is
// strictly higher, so two replicas merging each other's stores converge on
// the best pulse either ever generated for a gate. A replaced entry keeps
// its accumulated use count and protection flag (the heat and the §V-C
// APA-basis investment belong to the key, not the samples).
func (db *DB) Merge(u *linalg.Matrix, g *Generated, protected bool) MergeOutcome {
	key := db.key(CanonicalKey(u))
	s := db.shard(key)
	s.mu.Lock()
	prev, ok := s.entries[key]
	if !ok {
		e := &Entry{Key: key, U: u.Clone(), Generated: g, norm2: frobNorm2(u)}
		e.protected.Store(protected)
		s.entries[key] = e
		s.mu.Unlock()
		db.dimIndex(u.Rows).insert(e)
		db.count.Add(1)
		db.maybeEvict()
		return MergeAdded
	}
	if prev.Generated.Fidelity >= g.Fidelity {
		s.mu.Unlock()
		if protected {
			prev.protected.Store(true)
		}
		return MergeKept
	}
	e := &Entry{Key: key, U: u.Clone(), Generated: g, norm2: frobNorm2(u)}
	e.protected.Store(protected || prev.protected.Load())
	e.uses.Store(prev.uses.Load())
	s.entries[key] = e
	s.mu.Unlock()
	// Swap the similarity-index item outside the shard lock (index locks
	// nest inside nothing). Marking prev evicted first closes the race with
	// a concurrent capacity sweep, exactly as eviction does.
	prev.evicted.Store(true)
	db.dimIndex(u.Rows).removeAll(map[*Entry]bool{prev: true})
	db.dimIndex(u.Rows).insert(e)
	return MergeReplaced
}

// MergeReport summarizes one snapshot merge.
type MergeReport struct {
	Added    int `json:"added"`
	Replaced int `json:"replaced"`
	Kept     int `json:"kept"`
}

// MergeSnapshot reads a snapshot written by Save and merges every entry
// into the live store under the keep-higher-fidelity rule — the
// replication layer's snapshot-shipping path, and the safe way to fold one
// replica's persisted warm store into another's without clobbering pulses
// the receiver already generated better. A snapshot fingerprinted for a
// different backend is refused; legacy un-fingerprinted snapshots are
// accepted (they predate namespacing).
func (db *DB) MergeSnapshot(r io.Reader) (MergeReport, error) {
	var rep MergeReport
	var in dbFile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return rep, fmt.Errorf("pulse: merging snapshot: %v", err)
	}
	if in.Version != 1 {
		return rep, fmt.Errorf("pulse: unsupported DB version %d", in.Version)
	}
	if in.Fingerprint != "" && in.Fingerprint != db.fingerprint {
		return rep, fmt.Errorf("pulse: snapshot was calibrated for backend fingerprint %q, this store is %q — refusing to merge cross-device pulses",
			in.Fingerprint, db.fingerprint)
	}
	for i, fe := range in.Entries {
		u, g, err := fe.Decode()
		if err != nil {
			return rep, fmt.Errorf("%v (entry %d)", err, i)
		}
		switch db.Merge(u, g, fe.Protected) {
		case MergeAdded:
			rep.Added++
		case MergeReplaced:
			rep.Replaced++
		default:
			rep.Kept++
		}
	}
	return rep, nil
}
