package pulse

import "sort"

// SetMaxEntries bounds the database to at most max live entries (0 or
// negative removes the bound). When a Store pushes the count over the
// bound, a ranked eviction sweep removes the coldest entries down to a
// low-watermark slightly below max, so a server at capacity amortizes the
// sweep instead of rescanning on every insert.
//
// Ranking (coldest first): unprotected before protected (APA-basis pulses
// are the offline investment of §V-C and go last), fewer recorded uses
// before more, larger canonical key as the deterministic tie-break.
// Evictions are counted on Evictions() and, when a metrics registry is
// attached, the pulse.evictions counter.
func (db *DB) SetMaxEntries(max int) {
	db.maxEntries.Store(int64(max))
	if max > 0 {
		db.maybeEvict()
	}
}

// MaxEntries returns the configured capacity bound (0 = unbounded).
func (db *DB) MaxEntries() int { return int(db.maxEntries.Load()) }

// maybeEvict applies the capacity bound after an insert. Cheap when under
// capacity: one atomic load and compare.
func (db *DB) maybeEvict() {
	max := db.maxEntries.Load()
	if max <= 0 || db.count.Load() <= max {
		return
	}
	db.evictMu.Lock()
	defer db.evictMu.Unlock()

	// Re-check under the eviction lock: a concurrent sweep may already
	// have brought the count down.
	max = db.maxEntries.Load()
	if max <= 0 || db.count.Load() <= max {
		return
	}
	// Low-watermark batching: clear max/32 extra slots (at least 1) so a
	// steady insert stream triggers one sweep per batch, not per Store.
	lowWater := max - max/32
	if lowWater < 1 {
		lowWater = 1
	}
	need := int(db.count.Load() - lowWater)
	if need <= 0 {
		return
	}

	// Rank a snapshot of the whole store. The snapshot walks one shard at
	// a time under its read lock; ranking and removal happen outside.
	type ranked struct {
		e         *Entry
		uses      int64
		protected bool
	}
	all := db.snapshotEntries()
	cands := make([]ranked, len(all))
	for i, e := range all {
		cands[i] = ranked{e: e, uses: e.uses.Load(), protected: e.protected.Load()}
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.protected != b.protected {
			return !a.protected // unprotected evict first
		}
		if a.uses != b.uses {
			return a.uses < b.uses // cold evict first
		}
		return a.e.Key > b.e.Key // deterministic tie-break
	})
	if need > len(cands) {
		need = len(cands)
	}

	victims := make(map[*Entry]bool, need)
	byDim := make(map[int]map[*Entry]bool)
	for _, c := range cands[:need] {
		e := c.e
		s := db.shard(e.Key)
		s.mu.Lock()
		cur, ok := s.entries[e.Key]
		if !ok || cur != e {
			s.mu.Unlock()
			continue // raced with another removal; nothing to do
		}
		delete(s.entries, e.Key)
		s.mu.Unlock()
		e.evicted.Store(true)
		victims[e] = true
		dim := e.U.Rows
		if byDim[dim] == nil {
			byDim[dim] = make(map[*Entry]bool)
		}
		byDim[dim][e] = true
		db.count.Add(-1)
	}
	for dim, set := range byDim {
		db.dimIndex(dim).removeAll(set)
	}
	if n := int64(len(victims)); n > 0 {
		db.evictions.Add(n)
		db.counter("pulse.evictions").Add(n)
	}
}
