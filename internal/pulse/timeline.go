package pulse

import (
	"fmt"
	"sort"
)

// TimelineEntry schedules one customized gate at an absolute start time.
type TimelineEntry struct {
	Index  int // block index in the compiled circuit
	Qubits []int
	Start  float64 // dt
	End    float64 // dt
}

// Timeline is the whole-circuit pulse schedule: every customized gate
// placed as-soon-as-possible subject to qubit availability. Its makespan
// equals the block circuit's weighted critical path, which is the latency
// figure PAQOC reports — the timeline is the constructive witness.
type Timeline struct {
	Entries  []TimelineEntry
	Makespan float64
}

// BuildTimeline computes ASAP start times for a sequence of blocks given
// their qubit sets and latencies (program order must be a linear extension
// of the dependence DAG, which critical.BlockCircuit maintains).
func BuildTimeline(qubitSets [][]int, latencies []float64) (*Timeline, error) {
	if len(qubitSets) != len(latencies) {
		return nil, fmt.Errorf("pulse: %d qubit sets vs %d latencies", len(qubitSets), len(latencies))
	}
	ready := map[int]float64{} // qubit → time it becomes free
	tl := &Timeline{}
	for i, qs := range qubitSets {
		if latencies[i] < 0 {
			return nil, fmt.Errorf("pulse: negative latency at block %d", i)
		}
		start := 0.0
		for _, q := range qs {
			if ready[q] > start {
				start = ready[q]
			}
		}
		end := start + latencies[i]
		for _, q := range qs {
			ready[q] = end
		}
		tl.Entries = append(tl.Entries, TimelineEntry{
			Index:  i,
			Qubits: append([]int(nil), qs...),
			Start:  start,
			End:    end,
		})
		if end > tl.Makespan {
			tl.Makespan = end
		}
	}
	return tl, nil
}

// Concurrency returns the maximum number of simultaneously active blocks —
// a measure of how much parallelism the grouping preserved.
func (tl *Timeline) Concurrency() int {
	type event struct {
		t     float64
		delta int
	}
	var events []event
	for _, e := range tl.Entries {
		if e.End <= e.Start {
			continue
		}
		events = append(events, event{e.Start, 1}, event{e.End, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta // ends before starts at ties
	})
	cur, mx := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > mx {
			mx = cur
		}
	}
	return mx
}

// Validate checks the structural invariants: no two entries overlap on a
// shared qubit, and the makespan matches the latest end.
func (tl *Timeline) Validate() error {
	var mx float64
	for i, a := range tl.Entries {
		if a.End < a.Start {
			return fmt.Errorf("pulse: entry %d ends before it starts", i)
		}
		if a.End > mx {
			mx = a.End
		}
		for j := i + 1; j < len(tl.Entries); j++ {
			b := tl.Entries[j]
			if a.End <= b.Start || b.End <= a.Start {
				continue
			}
			for _, qa := range a.Qubits {
				for _, qb := range b.Qubits {
					if qa == qb {
						return fmt.Errorf("pulse: entries %d and %d overlap on qubit %d", i, j, qa)
					}
				}
			}
		}
	}
	if mx != tl.Makespan {
		return fmt.Errorf("pulse: makespan %g, latest end %g", tl.Makespan, mx)
	}
	return nil
}

// RenderASCII draws the timeline as one row per qubit with block indices
// marking busy intervals, at the given dt-per-character resolution.
func (tl *Timeline) RenderASCII(numQubits int, dtPerChar float64) string {
	if dtPerChar <= 0 {
		dtPerChar = 16
	}
	cols := int(tl.Makespan/dtPerChar) + 1
	rows := make([][]byte, numQubits)
	for q := range rows {
		rows[q] = make([]byte, cols)
		for i := range rows[q] {
			rows[q][i] = '.'
		}
	}
	glyphs := "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	for _, e := range tl.Entries {
		g := glyphs[e.Index%len(glyphs)]
		from := int(e.Start / dtPerChar)
		to := int(e.End / dtPerChar)
		for _, q := range e.Qubits {
			if q >= numQubits {
				continue
			}
			for c := from; c <= to && c < cols; c++ {
				rows[q][c] = g
			}
		}
	}
	out := ""
	for q, row := range rows {
		out += fmt.Sprintf("q%-2d |%s|\n", q, string(row))
	}
	return out
}
