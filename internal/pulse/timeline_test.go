package pulse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildTimelineSequentialAndParallel(t *testing.T) {
	// Blocks: {0,1} then {2} (parallel) then {1,2} (joins both).
	tl, err := BuildTimeline([][]int{{0, 1}, {2}, {1, 2}}, []float64{10, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Entries[0].Start != 0 || tl.Entries[1].Start != 0 {
		t.Error("independent blocks should start together")
	}
	if tl.Entries[2].Start != 10 {
		t.Errorf("joining block starts at %g, want 10", tl.Entries[2].Start)
	}
	if tl.Makespan != 17 {
		t.Errorf("makespan %g, want 17", tl.Makespan)
	}
	if err := tl.Validate(); err != nil {
		t.Error(err)
	}
	if got := tl.Concurrency(); got != 2 {
		t.Errorf("concurrency %d, want 2", got)
	}
}

func TestBuildTimelineErrors(t *testing.T) {
	if _, err := BuildTimeline([][]int{{0}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := BuildTimeline([][]int{{0}}, []float64{-1}); err == nil {
		t.Error("negative latency should fail")
	}
}

func TestTimelineValidateCatchesOverlap(t *testing.T) {
	tl := &Timeline{
		Entries: []TimelineEntry{
			{Index: 0, Qubits: []int{0}, Start: 0, End: 5},
			{Index: 1, Qubits: []int{0}, Start: 3, End: 8},
		},
		Makespan: 8,
	}
	if err := tl.Validate(); err == nil {
		t.Error("overlap on qubit 0 should be rejected")
	}
}

func TestTimelineRender(t *testing.T) {
	tl, err := BuildTimeline([][]int{{0, 1}, {1}}, []float64{32, 16})
	if err != nil {
		t.Fatal(err)
	}
	out := tl.RenderASCII(2, 16)
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Errorf("render missing glyphs:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Errorf("expected 2 rows, got %d", len(lines))
	}
}

// Property: the timeline makespan equals the weighted critical path over
// the induced dependence DAG.
func TestQuickMakespanEqualsCriticalPath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		nq := 2 + rng.Intn(5)
		sets := make([][]int, n)
		lats := make([]float64, n)
		for i := range sets {
			a := rng.Intn(nq)
			if rng.Intn(2) == 0 {
				sets[i] = []int{a}
			} else {
				b := (a + 1 + rng.Intn(nq-1)) % nq
				sets[i] = []int{a, b}
			}
			lats[i] = rng.Float64() * 20
		}
		tl, err := BuildTimeline(sets, lats)
		if err != nil {
			return false
		}
		if tl.Validate() != nil {
			return false
		}
		// Independent critical-path computation via per-qubit dynamic
		// programming (same recurrence, different formulation).
		readyAt := map[int]float64{}
		var cp float64
		for i, qs := range sets {
			start := 0.0
			for _, q := range qs {
				if readyAt[q] > start {
					start = readyAt[q]
				}
			}
			end := start + lats[i]
			for _, q := range qs {
				readyAt[q] = end
			}
			if end > cp {
				cp = end
			}
		}
		return abs(cp-tl.Makespan) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
