// Package pulse defines the control-pulse representation shared by the
// GRAPE optimizer, the analytical latency model, and the PAQOC framework:
// piecewise-constant schedules, generated-pulse metadata, the customized
// gate (a group of consecutive basis gates), and the pulse database
// (§V-B) with canonical-unitary lookup, permutation detection, and
// similarity-based initial-guess reuse.
package pulse

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"sort"
	"strings"

	"paqoc/internal/circuit"
	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
)

// Schedule is a piecewise-constant multi-channel control schedule:
// Amps[k][j] is channel k's amplitude during slice j, each slice lasting
// SliceDt device dt units.
type Schedule struct {
	Channels []string
	Amps     [][]float64
	SliceDt  float64
}

// NumSlices returns the number of time slices.
func (s *Schedule) NumSlices() int {
	if len(s.Amps) == 0 {
		return 0
	}
	return len(s.Amps[0])
}

// Duration returns the schedule length in dt.
func (s *Schedule) Duration() float64 { return float64(s.NumSlices()) * s.SliceDt }

// Clone deep-copies the schedule.
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{Channels: append([]string(nil), s.Channels...), SliceDt: s.SliceDt}
	out.Amps = make([][]float64, len(s.Amps))
	for k := range s.Amps {
		out.Amps[k] = append([]float64(nil), s.Amps[k]...)
	}
	return out
}

// Generated is the result of pulse generation for one customized gate.
type Generated struct {
	Schedule *Schedule // nil for model-based generation
	Latency  float64   // pulse duration in dt
	Fidelity float64   // achieved gate fidelity
	Error    float64   // |U - H(t)| proxy: 1 - Fidelity, the ε of Eq. (2)
	CacheHit bool      // true when served from the pulse database
	Cost     float64   // synthetic compile-time cost units spent generating
}

// CustomGate is a group of consecutive basis gates treated as one unit for
// pulse generation (§V). Gates are in program order; Qubits is the sorted
// set of physical qubits the group touches.
type CustomGate struct {
	Gates  []circuit.Gate
	Qubits []int
}

// NewCustomGate builds a CustomGate from a gate sequence.
func NewCustomGate(gates []circuit.Gate) *CustomGate {
	set := map[int]bool{}
	for _, g := range gates {
		for _, q := range g.Qubits {
			set[q] = true
		}
	}
	qs := make([]int, 0, len(set))
	for q := range set {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	cp := make([]circuit.Gate, len(gates))
	for i, g := range gates {
		cp[i] = g.Clone()
	}
	return &CustomGate{Gates: cp, Qubits: qs}
}

// NumQubits returns the number of distinct qubits in the group — the
// paper's N_Q(X).
func (cg *CustomGate) NumQubits() int { return len(cg.Qubits) }

// LocalGates returns the gate sequence re-indexed onto local wires
// 0..NumQubits-1 (wire i = cg.Qubits[i]).
func (cg *CustomGate) LocalGates() []circuit.Gate {
	idx := make(map[int]int, len(cg.Qubits))
	for i, q := range cg.Qubits {
		idx[q] = i
	}
	out := make([]circuit.Gate, len(cg.Gates))
	for i, g := range cg.Gates {
		ng := g.Clone()
		for j, q := range ng.Qubits {
			ng.Qubits[j] = idx[q]
		}
		out[i] = ng
	}
	return out
}

// Unitary composes the group's unitary on its local wires.
func (cg *CustomGate) Unitary() (*linalg.Matrix, error) {
	ops := make([]quantum.EmbeddedOp, 0, len(cg.Gates))
	for _, g := range cg.LocalGates() {
		u, err := g.Unitary()
		if err != nil {
			return nil, err
		}
		ops = append(ops, quantum.EmbeddedOp{U: u, Wires: g.Qubits})
	}
	return quantum.SequenceUnitary(cg.NumQubits(), ops), nil
}

// Describe renders the group compactly, e.g. "[h 0; cx 0 1]".
func (cg *CustomGate) Describe() string {
	parts := make([]string, len(cg.Gates))
	for i, g := range cg.Gates {
		parts[i] = g.String()
	}
	return "[" + strings.Join(parts, "; ") + "]"
}

// Generator produces control pulses for a customized gate at a given
// fidelity target. The interface is context-first: the context carries
// cancellation and the observability backends (internal/obs spans and
// metrics), and implementations must behave identically when it carries
// nothing. Implementations: grape.Generator (real QOC) and latency.Model
// (the paper's analytical model, §III-B). Context-free legacy
// implementations satisfy LegacyGenerator and are lifted with Adapt.
type Generator interface {
	GenerateCtx(ctx context.Context, cg *CustomGate, fidelityTarget float64) (*Generated, error)
}

// DBProvider is implemented by generators backed by a pulse database
// (grape.Generator, latency.Model). The paqoc emitter uses it to reach
// the shared DB for policy decisions the generator cannot make itself —
// e.g. protecting APA-basis entries from capacity eviction.
type DBProvider interface {
	PulseDB() *DB
}

// LegacyGenerator is the pre-context generator shape, kept so existing
// context-free implementations (tests, third-party mocks) keep working
// via Adapt.
type LegacyGenerator interface {
	Generate(cg *CustomGate, fidelityTarget float64) (*Generated, error)
}

// Remote is a cross-replica pulse source consulted on local database
// misses, implemented by cluster.Remote. FetchPulse asks the key's owner
// replica for an already-generated pulse (false on miss, owner-is-self, or
// any peer failure — callers degrade to local generation, never error).
// PublishPulse write-through-ships a freshly generated pulse to its owner
// so the next replica to miss finds it there. Both are best-effort: a
// Remote must never fail a compilation.
type Remote interface {
	FetchPulse(ctx context.Context, u *linalg.Matrix) (*Generated, bool)
	PublishPulse(ctx context.Context, u *linalg.Matrix, g *Generated)
}

// Adapt lifts a context-free generator into the context-first Generator
// interface. If gen already implements Generator (the common case for
// types that kept a deprecated Generate alongside GenerateCtx), it is
// returned unchanged; otherwise the adapter ignores the context.
func Adapt(gen LegacyGenerator) Generator {
	if g, ok := gen.(Generator); ok {
		return g
	}
	return legacyAdapter{gen}
}

type legacyAdapter struct{ gen LegacyGenerator }

func (a legacyAdapter) GenerateCtx(_ context.Context, cg *CustomGate, fidelityTarget float64) (*Generated, error) {
	return a.gen.Generate(cg, fidelityTarget)
}

// CanonicalKey returns a hashable identifier of a unitary modulo global
// phase, for exact pulse-database lookup. Entries are quantized so that
// numerically equal unitaries from different gate decompositions collide.
func CanonicalKey(u *linalg.Matrix) string {
	// Normalize phase: rotate so the first entry with |v| > tol is real
	// positive.
	phase := complex(1, 0)
	for _, v := range u.Data {
		if cmplx.Abs(v) > 1e-7 {
			phase = cmplx.Conj(v / complex(cmplx.Abs(v), 0))
			break
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", u.Rows)
	for _, v := range u.Data {
		w := v * phase
		// Quantize to 5 decimals; fold -0 into +0.
		re := math.Round(real(w)*1e5) / 1e5
		im := math.Round(imag(w)*1e5) / 1e5
		if re == 0 {
			re = 0
		}
		if im == 0 {
			im = 0
		}
		fmt.Fprintf(&b, "%g,%g;", re, im)
	}
	return b.String()
}
