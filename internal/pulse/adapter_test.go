package pulse

import (
	"context"
	"testing"
)

// legacyOnly implements only the pre-context LegacyGenerator shape.
type legacyOnly struct{ calls int }

func (g *legacyOnly) Generate(cg *CustomGate, fidelityTarget float64) (*Generated, error) {
	g.calls++
	return &Generated{Latency: fidelityTarget * 100}, nil
}

// ctxGen implements the context-first Generator directly (and a legacy
// Generate so Adapt sees both).
type ctxGen struct{ ctxCalls, legacyCalls int }

func (g *ctxGen) GenerateCtx(_ context.Context, cg *CustomGate, fidelityTarget float64) (*Generated, error) {
	g.ctxCalls++
	return &Generated{Latency: 1}, nil
}

func (g *ctxGen) Generate(cg *CustomGate, fidelityTarget float64) (*Generated, error) {
	g.legacyCalls++
	return g.GenerateCtx(context.Background(), cg, fidelityTarget)
}

// TestAdaptLiftsLegacyGenerator checks the adapter path: a context-free
// generator becomes a context-first one that forwards calls (ignoring the
// context) without re-wrapping.
func TestAdaptLiftsLegacyGenerator(t *testing.T) {
	legacy := &legacyOnly{}
	gen := Adapt(legacy)
	g, err := gen.GenerateCtx(context.Background(), &CustomGate{}, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if g.Latency != 99.9 {
		t.Errorf("adapter did not forward arguments: latency %v", g.Latency)
	}
	if legacy.calls != 1 {
		t.Errorf("legacy Generate called %d times, want 1", legacy.calls)
	}
}

// TestAdaptPassesThroughContextFirst checks that Adapt does not wrap a
// generator that is already context-first — its GenerateCtx must be
// called, not its legacy Generate.
func TestAdaptPassesThroughContextFirst(t *testing.T) {
	native := &ctxGen{}
	gen := Adapt(native)
	if gen != Generator(native) {
		t.Error("Adapt wrapped a generator that already implements Generator")
	}
	if _, err := gen.GenerateCtx(context.Background(), &CustomGate{}, 0.999); err != nil {
		t.Fatal(err)
	}
	if native.ctxCalls != 1 || native.legacyCalls != 0 {
		t.Errorf("GenerateCtx/Generate called %d/%d times, want 1/0", native.ctxCalls, native.legacyCalls)
	}
}
