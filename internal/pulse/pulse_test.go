package pulse

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"paqoc/internal/circuit"
	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
)

func cg(gates ...circuit.Gate) *CustomGate { return NewCustomGate(gates) }

func TestCustomGateQubitsSortedAndDeduped(t *testing.T) {
	g := cg(
		circuit.Gate{Name: "cx", Qubits: []int{7, 2}},
		circuit.Gate{Name: "h", Qubits: []int{2}},
	)
	if g.NumQubits() != 2 || g.Qubits[0] != 2 || g.Qubits[1] != 7 {
		t.Errorf("Qubits = %v", g.Qubits)
	}
}

func TestCustomGateLocalGates(t *testing.T) {
	g := cg(
		circuit.Gate{Name: "cx", Qubits: []int{7, 2}},
		circuit.Gate{Name: "h", Qubits: []int{7}},
	)
	local := g.LocalGates()
	// Physical 2→local 0, physical 7→local 1.
	if local[0].Qubits[0] != 1 || local[0].Qubits[1] != 0 {
		t.Errorf("local cx qubits = %v", local[0].Qubits)
	}
	if local[1].Qubits[0] != 1 {
		t.Errorf("local h qubit = %v", local[1].Qubits)
	}
	// Original gate must be untouched.
	if g.Gates[0].Qubits[0] != 7 {
		t.Error("LocalGates mutated the stored gates")
	}
}

func TestCustomGateUnitaryMatchesCircuit(t *testing.T) {
	g := cg(
		circuit.Gate{Name: "h", Qubits: []int{0}},
		circuit.Gate{Name: "cx", Qubits: []int{0, 1}},
	)
	u, err := g.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	want := quantum.MatCX.Mul(quantum.MatH.Kron(quantum.MatI))
	if !u.Equal(want, 1e-12) {
		t.Error("unitary mismatch")
	}
}

func TestCustomGateDescribe(t *testing.T) {
	g := cg(
		circuit.Gate{Name: "h", Qubits: []int{0}},
		circuit.Gate{Name: "cx", Qubits: []int{0, 1}},
	)
	if got := g.Describe(); got != "[h 0; cx 0 1]" {
		t.Errorf("Describe = %q", got)
	}
}

func TestScheduleDurationAndClone(t *testing.T) {
	s := &Schedule{
		Channels: []string{"a", "b"},
		Amps:     [][]float64{{1, 2, 3}, {4, 5, 6}},
		SliceDt:  4,
	}
	if s.NumSlices() != 3 || s.Duration() != 12 {
		t.Errorf("slices=%d duration=%g", s.NumSlices(), s.Duration())
	}
	c := s.Clone()
	c.Amps[0][0] = 99
	if s.Amps[0][0] == 99 {
		t.Error("Clone shares amp storage")
	}
	empty := &Schedule{}
	if empty.NumSlices() != 0 || empty.Duration() != 0 {
		t.Error("empty schedule accounting wrong")
	}
}

func TestCanonicalKeyPhaseInvariance(t *testing.T) {
	u := quantum.MatH.Clone()
	v := u.Scale(complexExp(0.7))
	if CanonicalKey(u) != CanonicalKey(v) {
		t.Error("keys differ under global phase")
	}
	if CanonicalKey(quantum.MatH) == CanonicalKey(quantum.MatX) {
		t.Error("distinct gates collide")
	}
}

func TestCanonicalKeyQuantization(t *testing.T) {
	u := quantum.MatH.Clone()
	v := u.Clone()
	v.Data[0] += 1e-9 // below quantization
	if CanonicalKey(u) != CanonicalKey(v) {
		t.Error("tiny perturbation changed key")
	}
}

func TestDBLookupStore(t *testing.T) {
	db := NewDB()
	u := quantum.MatH.Clone()
	if _, _, ok := db.Lookup(u); ok {
		t.Error("empty DB should miss")
	}
	g := &Generated{Latency: 24, Fidelity: 0.999}
	db.Store(u, g)
	got, _, ok := db.Lookup(u)
	if !ok || got.Latency != 24 {
		t.Error("exact lookup failed")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	hits, misses := db.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestDBStoreIdempotent(t *testing.T) {
	db := NewDB()
	u := quantum.MatX.Clone()
	db.Store(u, &Generated{Latency: 1})
	db.Store(u, &Generated{Latency: 2})
	if db.Len() != 1 {
		t.Error("duplicate store created a new entry")
	}
	got, _, _ := db.Lookup(u)
	if got.Latency != 1 {
		t.Error("second store overwrote the first")
	}
}

func TestDBPermutationDetection(t *testing.T) {
	db := NewDB()
	db.Store(quantum.MatCX.Clone(), &Generated{Latency: 80})
	// CX with swapped qubits.
	rev := quantum.PermuteQubits(quantum.MatCX, []int{1, 0})
	if _, perm, ok := db.Lookup(rev); !ok || perm == nil {
		t.Error("permuted CX not detected")
	}
	// Three-qubit permutation: CCX with controls listed in the other order
	// is the same matrix; CCX with target moved is a real permutation.
	db2 := NewDB()
	db2.Store(quantum.MatCCX.Clone(), &Generated{Latency: 190})
	perm := quantum.PermuteQubits(quantum.MatCCX, []int{2, 0, 1})
	if _, p2, ok := db2.Lookup(perm); !ok || p2 == nil {
		t.Error("permuted CCX not detected")
	}
}

func TestDBPermutationDoesNotFalseHit(t *testing.T) {
	db := NewDB()
	db.Store(quantum.MatCX.Clone(), &Generated{Latency: 80})
	if _, _, ok := db.Lookup(quantum.MatCZ.Clone()); ok {
		t.Error("CZ should not hit a CX entry")
	}
}

func TestDBNearest(t *testing.T) {
	db := NewDB()
	db.Store(quantum.RX(1.0), &Generated{Latency: 10})
	db.Store(quantum.RX(2.0), &Generated{Latency: 20})
	e, d, ok := db.Nearest(quantum.RX(1.05), 1.0)
	if !ok {
		t.Fatal("nearest missed")
	}
	if e.Generated.Latency != 10 {
		t.Error("picked the wrong neighbour")
	}
	if d > 0.2 {
		t.Errorf("distance %g unexpectedly large", d)
	}
	if _, _, ok := db.Nearest(quantum.MatCX.Clone(), 1.0); ok {
		t.Error("dimension mismatch should miss")
	}
	if _, _, ok := db.Nearest(quantum.RX(1.05), 1e-9); ok {
		t.Error("tight threshold should miss")
	}
}

func TestPermutationsCount(t *testing.T) {
	if got := len(permutations(3)); got != 6 {
		t.Errorf("3! = %d", got)
	}
	if got := len(permutations(2)); got != 2 {
		t.Errorf("2! = %d", got)
	}
}

func complexExp(theta float64) complex128 {
	return complex(math.Cos(theta), math.Sin(theta))
}

var _ = linalg.Identity

func BenchmarkCanonicalKey8x8(b *testing.B) {
	u := quantum.MatCCX
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CanonicalKey(u)
	}
}

func BenchmarkDBLookupPermuted(b *testing.B) {
	db := NewDB()
	db.Store(quantum.MatCCX.Clone(), &Generated{})
	perm := quantum.PermuteQubits(quantum.MatCCX, []int{2, 0, 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Lookup(perm)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := &Schedule{
		Channels: []string{"d0.x", "d0.y"},
		Amps:     [][]float64{{0.1, -0.2, 0.3}, {0, 0.05, -0.1}},
		SliceDt:  4,
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.SliceDt != 4 || back.NumSlices() != 3 || back.Channels[1] != "d0.y" {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Amps[0][1] != -0.2 {
		t.Error("amplitude corrupted")
	}
}

func TestScheduleJSONErrors(t *testing.T) {
	var s Schedule
	if err := json.Unmarshal([]byte(`{"slice_dt":0}`), &s); err == nil {
		t.Error("zero slice_dt should fail")
	}
	if err := json.Unmarshal([]byte(`{"slice_dt":1,"channels":[{"name":"a","samples":[1]},{"name":"b","samples":[1,2]}]}`), &s); err == nil {
		t.Error("ragged channels should fail")
	}
	if err := json.Unmarshal([]byte(`{nope`), &s); err == nil {
		t.Error("bad json should fail")
	}
}

func TestScheduleRenderASCII(t *testing.T) {
	s := &Schedule{
		Channels: []string{"d0.x"},
		Amps:     [][]float64{{0, 0.5, 1.0, 0.5, 0}},
		SliceDt:  4,
	}
	out := s.RenderASCII()
	if !strings.Contains(out, "d0.x") || !strings.Contains(out, "@") {
		t.Errorf("render missing channel or peak glyph:\n%s", out)
	}
	zero := &Schedule{Channels: []string{"z"}, Amps: [][]float64{{0, 0}}, SliceDt: 1}
	if !strings.Contains(zero.RenderASCII(), "z") {
		t.Error("zero schedule render broken")
	}
}

func TestDBSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()
	db.Store(quantum.MatCX.Clone(), &Generated{
		Latency: 80, Fidelity: 0.999, Error: 0.001,
		Schedule: &Schedule{Channels: []string{"d0.x"}, Amps: [][]float64{{0.1, 0.2}}, SliceDt: 4},
	})
	db.Store(quantum.MatH.Clone(), &Generated{Latency: 24, Fidelity: 0.9995, Error: 0.0005})

	var buf strings.Builder
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDB(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d entries", back.Len())
	}
	g, _, ok := back.Lookup(quantum.MatCX.Clone())
	if !ok || g.Latency != 80 || g.Schedule == nil || g.Schedule.Amps[0][1] != 0.2 {
		t.Errorf("CX entry corrupted: %+v", g)
	}
	// Permuted lookups still work on the loaded DB.
	if _, perm, ok := back.Lookup(quantum.PermuteQubits(quantum.MatCX, []int{1, 0})); !ok || perm == nil {
		t.Error("permutation detection lost after reload")
	}
}

func TestLoadDBErrors(t *testing.T) {
	if _, err := LoadDB(strings.NewReader("{broken")); err == nil {
		t.Error("bad json should fail")
	}
	if _, err := LoadDB(strings.NewReader(`{"version":9}`)); err == nil {
		t.Error("unknown version should fail")
	}
	if _, err := LoadDB(strings.NewReader(`{"version":1,"entries":[{"dim":2,"unitary":[[1,0]]}]}`)); err == nil {
		t.Error("inconsistent dims should fail")
	}
}
