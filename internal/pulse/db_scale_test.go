package pulse

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paqoc/internal/linalg"
	"paqoc/internal/obs"
)

// phaseUnitary builds a diagonal unitary with the given phases — cheap to
// generate in bulk, distinct canonical keys, well-spread pairwise
// distances (the same family a warm pulse store accumulates from RZ-like
// customized gates).
func phaseUnitary(phases ...float64) *linalg.Matrix {
	u := linalg.New(len(phases), len(phases))
	for i, p := range phases {
		u.Data[i*len(phases)+i] = complex(math.Cos(p), math.Sin(p))
	}
	return u
}

func randomPhaseUnitary(dim int, rng *rand.Rand) *linalg.Matrix {
	phases := make([]float64, dim)
	for i := range phases {
		phases[i] = rng.Float64() * 2 * math.Pi
	}
	return phaseUnitary(phases...)
}

// blockingWriter blocks inside its first Write until released — the slow
// io.Writer seam for the snapshot-stall regression test.
type blockingWriter struct {
	entered chan struct{} // closed when the first Write begins
	release chan struct{} // the Write returns once this closes
	once    sync.Once
	buf     bytes.Buffer
}

func newBlockingWriter() *blockingWriter {
	return &blockingWriter{entered: make(chan struct{}), release: make(chan struct{})}
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	w.once.Do(func() {
		close(w.entered)
		<-w.release
	})
	return w.buf.Write(p)
}

// TestStoreNotBlockedBySlowSave is the snapshot-stall regression test: a
// Save stuck in disk I/O (here: a Write that never returns until
// released) must not block concurrent Store calls. The seed held the
// RWMutex read lock across encoding and writing, so any Store issued
// during a slow snapshot queued behind it — under a periodic snapshotter
// that stalled the whole compile fleet.
func TestStoreNotBlockedBySlowSave(t *testing.T) {
	db := NewDB()
	for i := 0; i < 32; i++ {
		db.Store(rotation(0.01+float64(i)*0.1), &Generated{Latency: float64(i)})
	}

	w := newBlockingWriter()
	saveDone := make(chan error, 1)
	go func() { saveDone <- db.Save(w) }()

	// Wait until Save is provably inside the blocked Write: the snapshot
	// has been taken and every lock released.
	select {
	case <-w.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("Save never reached its Write")
	}

	stored := make(chan struct{})
	go func() {
		db.Store(rotation(9.9), &Generated{Latency: 999})
		close(stored)
	}()
	select {
	case <-stored:
		// Store completed while the snapshot write is still blocked.
	case <-time.After(5 * time.Second):
		t.Fatal("Store blocked behind an in-progress Save")
	}

	close(w.release)
	if err := <-saveDone; err != nil {
		t.Fatalf("Save: %v", err)
	}
	// The snapshot predates the late Store and must not contain it.
	re, err := LoadDB(&w.buf)
	if err != nil {
		t.Fatalf("LoadDB: %v", err)
	}
	if re.Len() != 32 {
		t.Errorf("snapshot holds %d entries, want the 32 preceding Save", re.Len())
	}
}

// TestSaveDeterministic: two saves of one DB are byte-identical, and two
// DBs holding the same entries stored in different orders snapshot to the
// same bytes — entries are sorted by canonical key before encoding, so
// map iteration order never leaks into the file.
func TestSaveDeterministic(t *testing.T) {
	gens := make([]*Generated, 8)
	us := make([]*linalg.Matrix, 8)
	for i := range us {
		us[i] = rotation(0.2 + 0.31*float64(i))
		gens[i] = &Generated{Latency: float64(10 + i), Fidelity: 0.999, Error: 0.001, Schedule: testSchedule(float64(i))}
	}

	a, b := NewDB(), NewDB()
	for i := range us {
		a.Store(us[i], gens[i])
	}
	for i := len(us) - 1; i >= 0; i-- { // reverse insertion order
		b.Store(us[i], gens[i])
	}

	var a1, a2, b1 bytes.Buffer
	if err := a.Save(&a1); err != nil {
		t.Fatal(err)
	}
	if err := a.Save(&a2); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a1.Bytes(), a2.Bytes()) {
		t.Error("two saves of one DB differ byte-for-byte")
	}
	if !bytes.Equal(a1.Bytes(), b1.Bytes()) {
		t.Error("same population, different insertion order: snapshots differ")
	}
}

// TestSaveSkipsNonFinite: a NaN/Inf entry (a diverged GRAPE run) must not
// abort the snapshot — it is skipped, counted, and reported, and the
// remaining entries land on disk.
func TestSaveSkipsNonFinite(t *testing.T) {
	db := NewDB()
	reg := obs.NewRegistry()
	db.SetMetrics(reg)

	db.Store(rotation(0.3), &Generated{Latency: 12, Fidelity: 0.999, Error: 0.001})
	db.Store(rotation(0.6), &Generated{Latency: math.NaN(), Fidelity: 0.999, Error: 0.001})
	db.Store(rotation(0.9), &Generated{Latency: 14, Fidelity: math.Inf(1), Error: 0.001})
	bad := testSchedule(1.0)
	bad.Amps[0][2] = math.NaN()
	db.Store(rotation(1.2), &Generated{Latency: 15, Fidelity: 0.999, Error: 0.001, Schedule: bad})

	var buf bytes.Buffer
	rep, err := db.SaveWithReport(&buf)
	if err != nil {
		t.Fatalf("SaveWithReport: %v (the seed failed here with UnsupportedValueError)", err)
	}
	if rep.SkippedNonFinite != 3 || rep.Entries != 1 {
		t.Errorf("report = %+v, want 3 skipped / 1 written", rep)
	}
	if n := reg.Counter("pulse.save_skipped_nonfinite").Value(); n != 3 {
		t.Errorf("pulse.save_skipped_nonfinite = %d, want 3", n)
	}
	re, err := LoadDB(&buf)
	if err != nil {
		t.Fatalf("LoadDB of the filtered snapshot: %v", err)
	}
	if re.Len() != 1 {
		t.Errorf("reloaded %d entries, want 1", re.Len())
	}
	if _, _, ok := re.Lookup(rotation(0.3)); !ok {
		t.Error("the finite entry did not survive the snapshot")
	}
}

// TestLoadDBRejectsNonUnitary: arbitrary matrices must not enter the warm
// store — a corrupt or hand-edited file fails fast at load.
func TestLoadDBRejectsNonUnitary(t *testing.T) {
	const nonUnitary = `{"version":1,"entries":[{"dim":2,` +
		`"unitary":[[2,0],[0,0],[0,0],[2,0]],` +
		`"latency_dt":10,"fidelity":0.999,"error":0.001}]}`
	if _, err := LoadDB(bytes.NewReader([]byte(nonUnitary))); err == nil {
		t.Fatal("LoadDB accepted a matrix with singular values 2")
	}

	const shear = `{"version":1,"entries":[{"dim":2,` +
		`"unitary":[[1,0],[0.01,0],[0,0],[1,0]],` +
		`"latency_dt":10,"fidelity":0.999,"error":0.001}]}`
	if _, err := LoadDB(bytes.NewReader([]byte(shear))); err == nil {
		t.Fatal("LoadDB accepted a shear (non-unitary within tolerance)")
	}

	// A healthy unitary still loads.
	var buf bytes.Buffer
	db := NewDB()
	db.Store(rotation(0.4), &Generated{Latency: 11, Fidelity: 0.999, Error: 0.001})
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDB(&buf); err != nil {
		t.Fatalf("round trip rejected a valid unitary: %v", err)
	}
}

// TestProtectedRoundTrip: the eviction-protection flag survives
// persistence, so APA-basis entries stay protected after a restart.
func TestProtectedRoundTrip(t *testing.T) {
	db := NewDB()
	u := rotation(0.7)
	db.Store(u, &Generated{Latency: 10, Fidelity: 0.999, Error: 0.001})
	db.Protect(u)
	db.Store(rotation(1.4), &Generated{Latency: 11, Fidelity: 0.999, Error: 0.001})

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e := re.get(CanonicalKey(u))
	if e == nil || !e.Protected() {
		t.Error("protection flag lost in the save/load round trip")
	}
	if e2 := re.get(CanonicalKey(rotation(1.4))); e2 == nil || e2.Protected() {
		t.Error("unprotected entry came back protected")
	}
}

// TestEvictionBoundsAndRanking: the capacity bound holds, evictions are
// counted, and the ranking protects APA-basis and high-use entries while
// cold unprotected ones go first.
func TestEvictionBoundsAndRanking(t *testing.T) {
	db := NewDB()
	reg := obs.NewRegistry()
	db.SetMetrics(reg)

	const total, max = 64, 16
	us := make([]*linalg.Matrix, total)
	for i := range us {
		us[i] = rotation(0.01 + 0.09*float64(i))
		db.Store(us[i], &Generated{Latency: float64(i)})
	}
	// Protect 4, heat up 4 others with lookups.
	for i := 0; i < 4; i++ {
		db.Protect(us[i])
	}
	for i := 4; i < 8; i++ {
		for k := 0; k < 10; k++ {
			db.Lookup(us[i])
		}
	}

	db.SetMaxEntries(max)
	if n := db.Len(); n > max {
		t.Fatalf("Len = %d after SetMaxEntries(%d)", n, max)
	}
	if db.Evictions() == 0 {
		t.Error("no evictions recorded")
	}
	if reg.Counter("pulse.evictions").Value() != db.Evictions() {
		t.Errorf("pulse.evictions counter %d != Evictions() %d",
			reg.Counter("pulse.evictions").Value(), db.Evictions())
	}
	for i := 0; i < 8; i++ {
		if db.get(CanonicalKey(us[i])) == nil {
			t.Errorf("ranked eviction dropped protected/hot entry %d", i)
		}
	}

	// The bound keeps holding under continued stores.
	for i := 0; i < 3*max; i++ {
		db.Store(rotation(10+0.05*float64(i)), &Generated{Latency: 1})
	}
	if n := db.Len(); n > max {
		t.Errorf("Len = %d under continued stores, want ≤ %d", n, max)
	}
	// Protected entries outlive everything.
	for i := 0; i < 4; i++ {
		if db.get(CanonicalKey(us[i])) == nil {
			t.Errorf("protected entry %d evicted while unprotected ones existed", i)
		}
	}
}

// TestEvictionEvictsProtectedLast: when the bound is tighter than the
// protected population, protected entries are evicted too — capacity is a
// hard bound, protection only orders the ranking.
func TestEvictionEvictsProtectedLast(t *testing.T) {
	db := NewDB()
	for i := 0; i < 8; i++ {
		u := rotation(0.1 + 0.2*float64(i))
		db.Store(u, &Generated{Latency: float64(i)})
		db.Protect(u)
	}
	db.SetMaxEntries(4)
	if n := db.Len(); n > 4 {
		t.Errorf("Len = %d with every entry protected, want ≤ 4", n)
	}
}

// TestNearestMatchesLinearScan is the sharded-vs-seed equivalence
// property test: on randomized populations and probes, the indexed
// Nearest must return the identical entry — including the canonical-key
// tie-break — as the retained seed-era linear scan, across dimensions and
// cutoffs.
func TestNearestMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		dim := []int{2, 4}[trial%2]
		db := NewDB()
		n := 20 + rng.Intn(200)
		for i := 0; i < n; i++ {
			db.Store(randomPhaseUnitary(dim, rng), &Generated{Latency: float64(i)})
		}
		for probe := 0; probe < 25; probe++ {
			u := randomPhaseUnitary(dim, rng)
			maxDist := []float64{0.3, 0.8, 1.5, 10}[probe%4]
			eIdx, dIdx, okIdx := db.Nearest(u, maxDist)
			eLin, dLin, okLin := db.NearestLinear(u, maxDist)
			if okIdx != okLin {
				t.Fatalf("trial %d probe %d: indexed ok=%v, linear ok=%v (maxDist=%g)",
					trial, probe, okIdx, okLin, maxDist)
			}
			if !okIdx {
				continue
			}
			if eIdx.Key != eLin.Key {
				t.Fatalf("trial %d probe %d: indexed chose %q…, linear chose %q… (d=%g vs %g)",
					trial, probe, eIdx.Key[:16], eLin.Key[:16], dIdx, dLin)
			}
			if math.Abs(dIdx-dLin) > 1e-9 {
				t.Fatalf("trial %d probe %d: distance %g vs %g", trial, probe, dIdx, dLin)
			}
		}
	}
}

// TestNearestTieEquivalence pins the exact-tie case against the linear
// scan: ±θ rotations are equidistant from the identity, and both paths
// must resolve the tie to the smaller canonical key.
func TestNearestTieEquivalence(t *testing.T) {
	db := NewDB()
	db.Store(rotation(0.4), &Generated{Latency: 1})
	db.Store(rotation(-0.4), &Generated{Latency: 2})
	probe := linalg.Identity(2)
	eIdx, _, okIdx := db.Nearest(probe, 10)
	eLin, _, okLin := db.NearestLinear(probe, 10)
	if !okIdx || !okLin {
		t.Fatal("tie probe missed")
	}
	if eIdx.Key != eLin.Key {
		t.Errorf("tie resolved differently: indexed %q…, linear %q…", eIdx.Key[:16], eLin.Key[:16])
	}
}

// TestNearestPruneCounters: with a metrics registry attached, every
// candidate is accounted as either scanned or pruned, and at scale most
// are pruned.
func TestNearestPruneCounters(t *testing.T) {
	db := NewDB()
	reg := obs.NewRegistry()
	db.SetMetrics(reg)
	rng := rand.New(rand.NewSource(11))
	const n = 2000
	for i := 0; i < n; i++ {
		db.Store(randomPhaseUnitary(4, rng), &Generated{Latency: float64(i)})
	}
	if _, _, ok := db.Nearest(randomPhaseUnitary(4, rng), 0.8); !ok {
		t.Log("no entry under cutoff (fine; counters still accumulate)")
	}
	scanned := reg.Counter("pulse.nearest_scanned").Value()
	pruned := reg.Counter("pulse.nearest_pruned").Value()
	if scanned+pruned != n {
		t.Errorf("scanned %d + pruned %d != %d candidates", scanned, pruned, n)
	}
	if pruned == 0 {
		t.Errorf("no candidates pruned at %d entries (scanned=%d)", n, scanned)
	}
}

// TestDBConcurrentHammerSharded is the -race hammer for the sharded
// store: concurrent Do (with dedup), Store, Nearest, Lookup, and SaveFile
// against one DB with an active capacity bound.
func TestDBConcurrentHammerSharded(t *testing.T) {
	db := NewDB()
	db.SetMaxEntries(64)
	reg := obs.NewRegistry()
	db.SetMetrics(reg)
	path := filepath.Join(t.TempDir(), "pulses.db")

	unitaries := make([]*linalg.Matrix, 96)
	for i := range unitaries {
		unitaries[i] = rotation(0.02 + 0.07*float64(i))
	}
	var generated atomic.Int64
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				u := unitaries[(w*31+i)%len(unitaries)]
				switch i % 5 {
				case 0:
					_, _, _, err := db.Do(u, func() (*Generated, error) {
						generated.Add(1)
						return &Generated{Latency: float64(i)}, nil
					})
					if err != nil {
						t.Error(err)
					}
				case 1:
					db.Store(u, &Generated{Latency: float64(i)})
				case 2:
					db.Nearest(u, 0.5)
				case 3:
					db.Lookup(u)
				case 4:
					if err := db.SaveFile(path); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if n := db.Len(); n > 64 {
		t.Errorf("capacity bound violated under concurrency: Len = %d", n)
	}
	// The file left behind must be loadable and within the bound.
	re, ok, err := LoadFile(path)
	if err != nil || !ok {
		t.Fatalf("LoadFile after hammer: ok=%v err=%v", ok, err)
	}
	if re.Len() == 0 {
		t.Error("hammer snapshot is empty")
	}
}
