package pulse

import (
	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
)

// DB is the pulse database of §V-B: previously generated pulses keyed by
// the canonical unitary of the customized gate. Lookups also detect the
// same gate with permuted qubits, and a similarity search supplies a warm
// initial guess to GRAPE for near-miss unitaries (as in AccQOC).
type DB struct {
	// DetectPermutations enables the §V-B permuted-qubit lookup — a PAQOC
	// feature the AccQOC baseline does not have.
	DetectPermutations bool

	entries map[string]*Entry
	byDim   map[int][]*Entry
	hits    int
	misses  int
}

// Entry is one stored pulse.
type Entry struct {
	Key       string
	U         *linalg.Matrix
	Generated *Generated
}

// NewDB returns an empty pulse database with permutation detection on.
func NewDB() *DB {
	return &DB{
		DetectPermutations: true,
		entries:            make(map[string]*Entry),
		byDim:              make(map[int][]*Entry),
	}
}

// Len returns the number of stored pulses.
func (db *DB) Len() int { return len(db.entries) }

// Stats returns cache hit/miss counters.
func (db *DB) Stats() (hits, misses int) { return db.hits, db.misses }

// Lookup finds a stored pulse for u, trying first the exact canonical key
// and then every qubit permutation of u (§V-B: "for the same customized
// gate with permuted qubits, it will also be detected"). The permutation
// search is bounded: k! for k-qubit gates with k ≤ 3 is at most 6.
//
// On a permuted hit, perm is the non-nil permutation such that the stored
// entry's unitary equals PermuteQubits(u, perm): the stored entry's local
// qubit i plays the role of u's local qubit perm[i]. Consumers that reuse
// the stored *schedule* (not just its latency) must remap control channels
// accordingly — see grape.Generator. perm is nil on exact hits.
func (db *DB) Lookup(u *linalg.Matrix) (gen *Generated, perm []int, ok bool) {
	if e, hit := db.entries[CanonicalKey(u)]; hit {
		db.hits++
		return e.Generated, nil, true
	}
	k := quantum.QubitCount(u)
	if db.DetectPermutations && k >= 2 && k <= 3 {
		for _, p := range permutations(k) {
			if isIdentityPerm(p) {
				continue
			}
			if e, hit := db.entries[CanonicalKey(quantum.PermuteQubits(u, p))]; hit {
				db.hits++
				return e.Generated, p, true
			}
		}
	}
	db.misses++
	return nil, nil, false
}

// Store records a generated pulse for u.
func (db *DB) Store(u *linalg.Matrix, g *Generated) {
	key := CanonicalKey(u)
	if _, ok := db.entries[key]; ok {
		return
	}
	e := &Entry{Key: key, U: u.Clone(), Generated: g}
	db.entries[key] = e
	db.byDim[u.Rows] = append(db.byDim[u.Rows], e)
}

// Nearest returns the stored entry of matching dimension with the smallest
// phase-invariant Frobenius distance to u, provided it is below maxDist.
// Used as the GRAPE initial guess (§V-B, following AccQOC).
func (db *DB) Nearest(u *linalg.Matrix, maxDist float64) (*Entry, float64, bool) {
	var best *Entry
	bestDist := maxDist
	for _, e := range db.byDim[u.Rows] {
		if d := linalg.GlobalPhaseDistance(u, e.U); d < bestDist {
			best, bestDist = e, d
		}
	}
	if best == nil {
		return nil, 0, false
	}
	return best, bestDist, true
}

func permutations(k int) [][]int {
	base := make([]int, k)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(cur []int, rest []int)
	rec = func(cur, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, base)
	return out
}

func isIdentityPerm(p []int) bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}
