package pulse

import (
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"paqoc/internal/linalg"
	"paqoc/internal/obs"
	"paqoc/internal/quantum"
)

// DB is the pulse database of §V-B: previously generated pulses keyed by
// the canonical unitary of the customized gate. Lookups also detect the
// same gate with permuted qubits, and a similarity search supplies a warm
// initial guess to GRAPE for near-miss unitaries (as in AccQOC).
//
// A DB is safe for concurrent use and built to be shared by a whole
// compile fleet (engine workers, paqoc-server requests):
//
//   - Entries and in-flight generations are sharded by canonical-key hash
//     across power-of-two shards, each behind its own RWMutex, so
//     concurrent workers do not contend on one lock.
//   - Do deduplicates concurrent generation of the same canonical unitary
//     singleflight-style — N workers hitting the same customized gate
//     trigger exactly one generator run while the rest block on the result
//     (permuted-key in-flight generations included).
//   - Nearest runs against a per-dimension similarity index (see index.go)
//     that prunes most candidates before the O(dim²) distance.
//   - An optional capacity bound evicts cold entries so a long-running
//     server's memory stays bounded (see evict.go).
//   - Snapshots are copy-on-snapshot: Save clones the entry list under the
//     per-shard locks and encodes outside any lock, so a slow disk never
//     stalls Store/Do (see persist.go).
type DB struct {
	// DetectPermutations enables the §V-B permuted-qubit lookup — a PAQOC
	// feature the AccQOC baseline does not have. Set it before sharing the
	// DB across goroutines.
	DetectPermutations bool

	// fingerprint namespaces every key by the serving backend's physical
	// identity (device.Profile.Fingerprint): a pulse calibrated for one
	// device must never satisfy a lookup for another, even inside one
	// process holding several DBs. Empty means un-namespaced (single-device
	// deployments and legacy snapshots). Set via SetFingerprint before any
	// store.
	fingerprint string

	shards [numShards]shard

	// dims maps matrix dimension → *dimIndex (the Nearest similarity
	// index). sync.Map: a handful of keys, read-mostly.
	dims sync.Map

	// count is the live entry total, maintained by Store/eviction so Len
	// and the capacity check never need a full-DB lock sweep.
	count atomic.Int64

	// maxEntries is the optional capacity bound (0 = unbounded).
	maxEntries atomic.Int64
	evictMu    sync.Mutex

	// metrics optionally receives pulse.* counters (nearest_scanned,
	// nearest_pruned, evictions, save_skipped_nonfinite). Nil-safe.
	metrics atomic.Pointer[obs.Registry]

	// lookupMs/storeMs cache the db_lookup/db_store children of the shared
	// per-stage latency histogram (obs.StageMetric), resolved once in
	// SetMetrics so the hot paths skip the registry and family maps. Nil
	// (no-op, no timing) when no registry is attached.
	lookupMs atomic.Pointer[obs.Histogram]
	storeMs  atomic.Pointer[obs.Histogram]

	hits      atomic.Int64
	misses    atomic.Int64
	dedups    atomic.Int64
	evictions atomic.Int64

	// onWait, when non-nil, runs each time a caller joins an in-flight
	// generation, just before blocking on it. Test-only synchronization
	// seam; set it before sharing the DB across goroutines.
	onWait func()
}

// numShards spreads lock contention across independent key ranges. Power
// of two so the hash maps to a shard with a mask; 32 comfortably exceeds
// any worker-pool width this repo configures.
const numShards = 32

// shard is one lock domain: a slice of the entry map plus the in-flight
// generations whose canonical keys hash here.
type shard struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	flights map[string]*flight
}

// flight is one in-progress generation; waiters block on done.
type flight struct {
	done chan struct{}
	err  error
}

// Entry is one stored pulse. Entries are immutable once stored, except
// for the eviction-ranking state (hit count, protection flag).
type Entry struct {
	Key       string
	U         *linalg.Matrix
	Generated *Generated

	// norm2 caches ‖U‖²_F for the one-pass phase-invariant distance.
	norm2 float64
	// protected marks APA-basis (and other precious) entries: the ranked
	// eviction removes them only when nothing unprotected remains.
	protected atomic.Bool
	// uses counts how often this entry served a lookup, dedup, or warm
	// start — the "keep the hot ones" signal for eviction ranking.
	uses atomic.Int64
	// evicted closes the Store-vs-evict race: set (under the dim index
	// lock ordering) before the index drops the entry, checked by the
	// index insert, so a concurrent eviction can never leave a dangling
	// index item for an entry no longer in its shard map.
	evicted atomic.Bool
}

// Protected reports whether the entry is shielded from routine eviction.
func (e *Entry) Protected() bool { return e.protected.Load() }

// Uses returns how many lookups/warm starts this entry has served.
func (e *Entry) Uses() int64 { return e.uses.Load() }

// NewDB returns an empty pulse database with permutation detection on.
func NewDB() *DB {
	db := &DB{DetectPermutations: true}
	for i := range db.shards {
		db.shards[i].entries = make(map[string]*Entry)
		db.shards[i].flights = make(map[string]*flight)
	}
	return db
}

// SetFingerprint namespaces the DB's keys by a backend fingerprint. It
// must be called on an empty DB (keys embed the fingerprint, so flipping
// it later would orphan stored entries) and before the DB is shared across
// goroutines.
func (db *DB) SetFingerprint(fp string) {
	if db.Len() > 0 {
		panic("pulse: SetFingerprint on a non-empty DB")
	}
	db.fingerprint = fp
}

// Fingerprint returns the backend fingerprint the DB is namespaced by
// (empty when un-namespaced).
func (db *DB) Fingerprint() string { return db.fingerprint }

// key prefixes a canonical unitary key with the backend fingerprint. The
// prefix is constant per DB, so key ordering (Nearest tie-breaks, Save's
// sorted snapshots, eviction ranking) is preserved relative to the
// canonical keys.
func (db *DB) key(canonical string) string {
	if db.fingerprint == "" {
		return canonical
	}
	return db.fingerprint + "\x1f" + canonical
}

// dbSeed fixes the shard hash across all DBs so permuted keys map to
// stable shards for the ordered multi-shard locking in do().
var dbSeed = maphash.MakeSeed()

// shardIndex maps a canonical key to its shard.
func shardIndex(key string) int {
	return int(maphash.String(dbSeed, key) & (numShards - 1))
}

func (db *DB) shard(key string) *shard { return &db.shards[shardIndex(key)] }

// SetMetrics attaches a registry for the pulse.* counters and the
// db_lookup/db_store latency histograms. Safe to call concurrently; a nil
// registry detaches.
func (db *DB) SetMetrics(reg *obs.Registry) {
	db.metrics.Store(reg)
	if reg == nil {
		db.lookupMs.Store(nil)
		db.storeMs.Store(nil)
		return
	}
	stage := reg.HistogramVec(obs.StageMetric, obs.LatencyBuckets, "stage")
	db.lookupMs.Store(stage.WithLabelValues("db_lookup"))
	db.storeMs.Store(stage.WithLabelValues("db_store"))
}

// observeSince records elapsed wall time in milliseconds on a cached stage
// histogram child.
func observeSince(h *obs.Histogram, start time.Time) {
	h.Observe(float64(time.Since(start)) / float64(time.Millisecond))
}

// counter resolves a named counter on the attached registry (nil-safe:
// increments vanish when no registry is attached).
func (db *DB) counter(name string) *obs.Counter {
	return db.metrics.Load().Counter(name)
}

// Len returns the number of stored pulses.
func (db *DB) Len() int { return int(db.count.Load()) }

// Stats returns cache hit/miss counters.
func (db *DB) Stats() (hits, misses int) {
	return int(db.hits.Load()), int(db.misses.Load())
}

// Dedups returns the number of generator runs avoided by singleflight
// coalescing in Do: callers that found another worker already generating
// their canonical (or permuted) unitary and blocked on its result.
func (db *DB) Dedups() int64 { return db.dedups.Load() }

// Evictions returns how many entries the capacity bound has removed.
func (db *DB) Evictions() int64 { return db.evictions.Load() }

// permKey pairs a permuted canonical key with the permutation producing it.
type permKey struct {
	key  string
	perm []int
}

// permutedKeys returns the candidate permuted lookups for u: one canonical
// key per non-identity qubit permutation. Nil when detection is off or the
// gate width is outside the bounded 2..3-qubit range (k! ≤ 6).
func (db *DB) permutedKeys(u *linalg.Matrix, usePerms bool) []permKey {
	k := quantum.QubitCount(u)
	if !usePerms || k < 2 || k > 3 {
		return nil
	}
	perms := lookupPerms(k)
	out := make([]permKey, len(perms))
	for i, p := range perms {
		out[i] = permKey{key: db.key(CanonicalKey(quantum.PermuteQubits(u, p))), perm: p}
	}
	return out
}

// get fetches an entry under its shard's read lock.
func (db *DB) get(key string) *Entry {
	s := db.shard(key)
	s.mu.RLock()
	e := s.entries[key]
	s.mu.RUnlock()
	return e
}

// Peek returns the live entry stored under u's exact canonical key without
// recording a use or a miss — introspection for services that track an
// entry's lifecycle (the offline miner's pregen-hit accounting), not a
// lookup path. Permuted keys are not consulted.
func (db *DB) Peek(u *linalg.Matrix) (*Entry, bool) {
	e := db.get(db.key(CanonicalKey(u)))
	return e, e != nil
}

// Lookup finds a stored pulse for u, trying first the exact canonical key
// and then every qubit permutation of u (§V-B: "for the same customized
// gate with permuted qubits, it will also be detected"). The permutation
// search is bounded: k! for k-qubit gates with k ≤ 3 is at most 6.
//
// On a permuted hit, perm is the non-nil permutation such that the stored
// entry's unitary equals PermuteQubits(u, perm): the stored entry's local
// qubit i plays the role of u's local qubit perm[i]. Consumers that reuse
// the stored *schedule* (not just its latency) must remap control channels
// accordingly — see grape.Generator. perm is nil on exact hits.
func (db *DB) Lookup(u *linalg.Matrix) (gen *Generated, perm []int, ok bool) {
	if h := db.lookupMs.Load(); h != nil {
		defer observeSince(h, time.Now())
	}
	if e := db.get(db.key(CanonicalKey(u))); e != nil {
		db.hits.Add(1)
		e.uses.Add(1)
		return e.Generated, nil, true
	}
	for _, pk := range db.permutedKeys(u, db.DetectPermutations) {
		if e := db.get(pk.key); e != nil {
			db.hits.Add(1)
			e.uses.Add(1)
			return e.Generated, pk.perm, true
		}
	}
	db.misses.Add(1)
	return nil, nil, false
}

// Store records a generated pulse for u. The first store of a canonical
// key wins; duplicates are ignored.
func (db *DB) Store(u *linalg.Matrix, g *Generated) {
	db.store(u, g, false)
}

// store inserts an entry (optionally protected from eviction), indexes it
// for similarity search, and applies the capacity bound.
func (db *DB) store(u *linalg.Matrix, g *Generated, protected bool) {
	var start time.Time
	if db.storeMs.Load() != nil {
		start = time.Now()
	}
	key := db.key(CanonicalKey(u))
	s := db.shard(key)
	s.mu.Lock()
	if prev, ok := s.entries[key]; ok {
		s.mu.Unlock()
		if protected {
			prev.protected.Store(true)
		}
		return
	}
	e := &Entry{Key: key, U: u.Clone(), Generated: g, norm2: frobNorm2(u)}
	e.protected.Store(protected)
	s.entries[key] = e
	s.mu.Unlock()

	db.dimIndex(u.Rows).insert(e)
	db.count.Add(1)
	db.maybeEvict()
	if h := db.storeMs.Load(); h != nil {
		observeSince(h, start)
	}
}

// Protect marks the stored entry for u (if any) as precious: the ranked
// eviction removes protected entries only when nothing unprotected
// remains. The paqoc emitter protects APA-basis pulses — the offline
// investment the online component must keep warm (§V-C).
func (db *DB) Protect(u *linalg.Matrix) {
	if e := db.get(db.key(CanonicalKey(u))); e != nil {
		e.protected.Store(true)
	}
}

// Outcome says how Do satisfied a request.
type Outcome int

const (
	// OutcomeGenerated: this caller ran the generator (a fresh miss).
	OutcomeGenerated Outcome = iota
	// OutcomeHit: an already-stored entry matched the exact canonical key.
	OutcomeHit
	// OutcomePermuted: an already-stored entry matched a permuted key.
	OutcomePermuted
	// OutcomeDeduped: another worker was generating this unitary (or a
	// permutation of it); this caller blocked and reused its result. perm
	// is non-nil when the reused entry sits under a permuted key.
	OutcomeDeduped
)

// Do serves u from the database or, on a miss, runs generate exactly once
// across concurrent callers: the first caller to miss a canonical key
// becomes the leader and runs generate; callers arriving for the same key
// (or, with DetectPermutations, a permuted key) while the leader is in
// flight block until it finishes and reuse the stored result. A leader
// error releases the waiters, and the first of them retries as the new
// leader. On success the result is stored under u's canonical key.
//
// perm follows the Lookup contract: non-nil when the returned entry sits
// under a permuted key (outcome OutcomePermuted, or OutcomeDeduped after
// waiting on a permuted in-flight generation).
func (db *DB) Do(u *linalg.Matrix, generate func() (*Generated, error)) (*Generated, []int, Outcome, error) {
	return db.do(u, db.DetectPermutations, generate)
}

// DoExact is Do with permutation detection disabled for this call: only
// the exact canonical key is consulted for hits and in-flight coalescing.
// Callers use it to regenerate after rejecting a permuted hit (e.g. a
// stored schedule whose channels cannot be remapped onto this gate).
func (db *DB) DoExact(u *linalg.Matrix, generate func() (*Generated, error)) (*Generated, []int, Outcome, error) {
	return db.do(u, false, generate)
}

func (db *DB) do(u *linalg.Matrix, usePerms bool, generate func() (*Generated, error)) (*Generated, []int, Outcome, error) {
	key := db.key(CanonicalKey(u))
	permKeys := db.permutedKeys(u, usePerms)
	// The slow path must check entries and flights across the exact key
	// and every permuted key atomically (the seed did this under one
	// global lock). With shards, that means write-locking the distinct
	// shards those keys hash to — always in ascending index order, so
	// concurrent do() calls over overlapping shard sets cannot deadlock.
	lockSet := db.lockSet(key, permKeys)
	waited := false
	for {
		// Fast path: read-locked hit checks, one shard at a time. Timed as
		// db_lookup on the shared stage histogram when metrics are attached.
		var lookupStart time.Time
		h := db.lookupMs.Load()
		if h != nil {
			lookupStart = time.Now()
		}
		g, perm, oc, ok := db.tryHit(key, permKeys, waited)
		if h != nil {
			observeSince(h, lookupStart)
		}
		if ok {
			return g, perm, oc, nil
		}

		// Slow path: join an in-flight generation or become the leader.
		db.lockShards(lockSet)
		if e := db.shard(key).entries[key]; e != nil {
			db.unlockShards(lockSet)
			return db.hitResult(e, nil, waited)
		}
		var joined *flight
		if f := db.shard(key).flights[key]; f != nil {
			joined = f
		} else {
			for _, pk := range permKeys {
				sh := db.shard(pk.key)
				if e := sh.entries[pk.key]; e != nil {
					db.unlockShards(lockSet)
					return db.hitResult(e, pk.perm, waited)
				}
				if f := sh.flights[pk.key]; f != nil {
					joined = f
					break
				}
			}
		}
		if joined != nil {
			db.unlockShards(lockSet)
			if db.onWait != nil {
				db.onWait()
			}
			<-joined.done
			waited = true
			continue // the leader stored, errored, or panicked; re-check
		}
		f := &flight{done: make(chan struct{})}
		db.shard(key).flights[key] = f
		db.unlockShards(lockSet)

		db.misses.Add(1)
		g, err := runGenerate(generate)
		if err == nil && g != nil {
			db.Store(u, g)
		}
		s := db.shard(key)
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		f.err = err
		close(f.done)
		return g, nil, OutcomeGenerated, err
	}
}

// lockSet returns the ascending, de-duplicated shard indices covering the
// exact key and every permuted key. At most 1 + 5 keys (3-qubit lookups),
// so a small fixed-capacity slice suffices.
func (db *DB) lockSet(key string, permKeys []permKey) []int {
	set := make([]int, 0, 1+len(permKeys))
	add := func(i int) {
		for _, v := range set {
			if v == i {
				return
			}
		}
		set = append(set, i)
	}
	add(shardIndex(key))
	for _, pk := range permKeys {
		add(shardIndex(pk.key))
	}
	// Insertion sort: ≤ 6 elements.
	for i := 1; i < len(set); i++ {
		for j := i; j > 0 && set[j] < set[j-1]; j-- {
			set[j], set[j-1] = set[j-1], set[j]
		}
	}
	return set
}

func (db *DB) lockShards(set []int) {
	for _, i := range set {
		db.shards[i].mu.Lock()
	}
}

func (db *DB) unlockShards(set []int) {
	for i := len(set) - 1; i >= 0; i-- {
		db.shards[set[i]].mu.Unlock()
	}
}

// tryHit checks the stored entries under the per-shard read locks.
func (db *DB) tryHit(key string, permKeys []permKey, waited bool) (*Generated, []int, Outcome, bool) {
	if e := db.get(key); e != nil {
		g, perm, oc, _ := db.hitResult(e, nil, waited)
		return g, perm, oc, true
	}
	for _, pk := range permKeys {
		if e := db.get(pk.key); e != nil {
			g, perm, oc, _ := db.hitResult(e, pk.perm, waited)
			return g, perm, oc, true
		}
	}
	return nil, nil, 0, false
}

// hitResult classifies a hit: a plain cache hit when the entry predated
// this call, a dedup when this caller blocked on the generating worker.
func (db *DB) hitResult(e *Entry, perm []int, waited bool) (*Generated, []int, Outcome, error) {
	db.hits.Add(1)
	e.uses.Add(1)
	oc := OutcomeHit
	if perm != nil {
		oc = OutcomePermuted
	}
	if waited {
		db.dedups.Add(1)
		oc = OutcomeDeduped
	}
	return e.Generated, perm, oc, nil
}

// runGenerate converts a generator panic into an error so singleflight
// waiters are always released.
func runGenerate(generate func() (*Generated, error)) (g *Generated, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pulse: generator panic: %v", r)
		}
	}()
	return generate()
}

// snapshotEntries clones the entry pointer list shard by shard — the
// copy-on-snapshot half of Save. Each shard is read-locked only for the
// duration of its own copy; entries are immutable, so the returned slice
// is a consistent-enough snapshot that never blocks writers for longer
// than one shard's map walk.
func (db *DB) snapshotEntries() []*Entry {
	out := make([]*Entry, 0, db.Len())
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		for _, e := range s.entries {
			out = append(out, e)
		}
		s.mu.RUnlock()
	}
	return out
}

// permTables memoizes permutations by qubit count: the full k! table
// (permutations) and the identity-free table used by lookups
// (lookupPerms). Rebuilt never; callers must not mutate the returned
// slices.
var permTables sync.Map // k → [][]int, full table including identity

func permutations(k int) [][]int {
	if t, ok := permTables.Load(k); ok {
		return t.([][]int)
	}
	base := make([]int, k)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(cur []int, rest []int)
	rec = func(cur, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, base)
	t, _ := permTables.LoadOrStore(k, out)
	return t.([][]int)
}

var lookupPermTables sync.Map // k → [][]int, identity hoisted out

// lookupPerms returns permutations(k) minus the identity — the identity
// case is the exact-key lookup, so hoisting it here spares every miss one
// PermuteQubits + CanonicalKey round trip.
func lookupPerms(k int) [][]int {
	if t, ok := lookupPermTables.Load(k); ok {
		return t.([][]int)
	}
	var out [][]int
	for _, p := range permutations(k) {
		if !isIdentityPerm(p) {
			out = append(out, p)
		}
	}
	t, _ := lookupPermTables.LoadOrStore(k, out)
	return t.([][]int)
}

func isIdentityPerm(p []int) bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}
