package pulse

import (
	"fmt"
	"sync"
	"sync/atomic"

	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
)

// DB is the pulse database of §V-B: previously generated pulses keyed by
// the canonical unitary of the customized gate. Lookups also detect the
// same gate with permuted qubits, and a similarity search supplies a warm
// initial guess to GRAPE for near-miss unitaries (as in AccQOC).
//
// A DB is safe for concurrent use: the maps are RWMutex-guarded, the
// hit/miss counters are atomic, and Do deduplicates concurrent generation
// of the same canonical unitary singleflight-style — N workers hitting the
// same customized gate trigger exactly one generator run while the rest
// block on the result (permuted-key in-flight generations included).
type DB struct {
	// DetectPermutations enables the §V-B permuted-qubit lookup — a PAQOC
	// feature the AccQOC baseline does not have. Set it before sharing the
	// DB across goroutines.
	DetectPermutations bool

	mu      sync.RWMutex
	entries map[string]*Entry
	byDim   map[int][]*Entry
	flights map[string]*flight

	hits   atomic.Int64
	misses atomic.Int64
	dedups atomic.Int64

	// onWait, when non-nil, runs each time a caller joins an in-flight
	// generation, just before blocking on it. Test-only synchronization
	// seam; set it before sharing the DB across goroutines.
	onWait func()
}

// flight is one in-progress generation; waiters block on done.
type flight struct {
	done chan struct{}
	err  error
}

// Entry is one stored pulse. Entries are immutable once stored.
type Entry struct {
	Key       string
	U         *linalg.Matrix
	Generated *Generated
}

// NewDB returns an empty pulse database with permutation detection on.
func NewDB() *DB {
	return &DB{
		DetectPermutations: true,
		entries:            make(map[string]*Entry),
		byDim:              make(map[int][]*Entry),
		flights:            make(map[string]*flight),
	}
}

// Len returns the number of stored pulses.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// Stats returns cache hit/miss counters.
func (db *DB) Stats() (hits, misses int) {
	return int(db.hits.Load()), int(db.misses.Load())
}

// Dedups returns the number of generator runs avoided by singleflight
// coalescing in Do: callers that found another worker already generating
// their canonical (or permuted) unitary and blocked on its result.
func (db *DB) Dedups() int64 { return db.dedups.Load() }

// permKey pairs a permuted canonical key with the permutation producing it.
type permKey struct {
	key  string
	perm []int
}

// permutedKeys returns the candidate permuted lookups for u: one canonical
// key per non-identity qubit permutation. Nil when detection is off or the
// gate width is outside the bounded 2..3-qubit range (k! ≤ 6).
func (db *DB) permutedKeys(u *linalg.Matrix, usePerms bool) []permKey {
	k := quantum.QubitCount(u)
	if !usePerms || k < 2 || k > 3 {
		return nil
	}
	perms := lookupPerms(k)
	out := make([]permKey, len(perms))
	for i, p := range perms {
		out[i] = permKey{key: CanonicalKey(quantum.PermuteQubits(u, p)), perm: p}
	}
	return out
}

// Lookup finds a stored pulse for u, trying first the exact canonical key
// and then every qubit permutation of u (§V-B: "for the same customized
// gate with permuted qubits, it will also be detected"). The permutation
// search is bounded: k! for k-qubit gates with k ≤ 3 is at most 6.
//
// On a permuted hit, perm is the non-nil permutation such that the stored
// entry's unitary equals PermuteQubits(u, perm): the stored entry's local
// qubit i plays the role of u's local qubit perm[i]. Consumers that reuse
// the stored *schedule* (not just its latency) must remap control channels
// accordingly — see grape.Generator. perm is nil on exact hits.
func (db *DB) Lookup(u *linalg.Matrix) (gen *Generated, perm []int, ok bool) {
	db.mu.RLock()
	e := db.entries[CanonicalKey(u)]
	db.mu.RUnlock()
	if e != nil {
		db.hits.Add(1)
		return e.Generated, nil, true
	}
	for _, pk := range db.permutedKeys(u, db.DetectPermutations) {
		db.mu.RLock()
		e := db.entries[pk.key]
		db.mu.RUnlock()
		if e != nil {
			db.hits.Add(1)
			return e.Generated, pk.perm, true
		}
	}
	db.misses.Add(1)
	return nil, nil, false
}

// Store records a generated pulse for u. The first store of a canonical
// key wins; duplicates are ignored.
func (db *DB) Store(u *linalg.Matrix, g *Generated) {
	key := CanonicalKey(u)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.entries[key]; ok {
		return
	}
	e := &Entry{Key: key, U: u.Clone(), Generated: g}
	db.entries[key] = e
	db.byDim[u.Rows] = append(db.byDim[u.Rows], e)
}

// Nearest returns the stored entry of matching dimension with the smallest
// phase-invariant Frobenius distance to u, provided it is below maxDist.
// Used as the GRAPE initial guess (§V-B, following AccQOC). The candidate
// list is snapshotted under the read lock and exact distance ties break on
// the canonical key, so the chosen warm start is stable for a given DB
// population even when stores raced with the scan.
func (db *DB) Nearest(u *linalg.Matrix, maxDist float64) (*Entry, float64, bool) {
	db.mu.RLock()
	cands := db.byDim[u.Rows] // entries are append-only and immutable
	db.mu.RUnlock()
	var best *Entry
	bestDist := maxDist
	for _, e := range cands {
		d := linalg.GlobalPhaseDistance(u, e.U)
		switch {
		case d < bestDist:
			best, bestDist = e, d
		case d == bestDist && best != nil && e.Key < best.Key:
			best = e
		}
	}
	if best == nil {
		return nil, 0, false
	}
	return best, bestDist, true
}

// Outcome says how Do satisfied a request.
type Outcome int

const (
	// OutcomeGenerated: this caller ran the generator (a fresh miss).
	OutcomeGenerated Outcome = iota
	// OutcomeHit: an already-stored entry matched the exact canonical key.
	OutcomeHit
	// OutcomePermuted: an already-stored entry matched a permuted key.
	OutcomePermuted
	// OutcomeDeduped: another worker was generating this unitary (or a
	// permutation of it); this caller blocked and reused its result. perm
	// is non-nil when the reused entry sits under a permuted key.
	OutcomeDeduped
)

// Do serves u from the database or, on a miss, runs generate exactly once
// across concurrent callers: the first caller to miss a canonical key
// becomes the leader and runs generate; callers arriving for the same key
// (or, with DetectPermutations, a permuted key) while the leader is in
// flight block until it finishes and reuse the stored result. A leader
// error releases the waiters, and the first of them retries as the new
// leader. On success the result is stored under u's canonical key.
//
// perm follows the Lookup contract: non-nil when the returned entry sits
// under a permuted key (outcome OutcomePermuted, or OutcomeDeduped after
// waiting on a permuted in-flight generation).
func (db *DB) Do(u *linalg.Matrix, generate func() (*Generated, error)) (*Generated, []int, Outcome, error) {
	return db.do(u, db.DetectPermutations, generate)
}

// DoExact is Do with permutation detection disabled for this call: only
// the exact canonical key is consulted for hits and in-flight coalescing.
// Callers use it to regenerate after rejecting a permuted hit (e.g. a
// stored schedule whose channels cannot be remapped onto this gate).
func (db *DB) DoExact(u *linalg.Matrix, generate func() (*Generated, error)) (*Generated, []int, Outcome, error) {
	return db.do(u, false, generate)
}

func (db *DB) do(u *linalg.Matrix, usePerms bool, generate func() (*Generated, error)) (*Generated, []int, Outcome, error) {
	key := CanonicalKey(u)
	permKeys := db.permutedKeys(u, usePerms)
	waited := false
	for {
		// Fast path: read-locked hit checks.
		if g, perm, oc, ok := db.tryHit(key, permKeys, waited); ok {
			return g, perm, oc, nil
		}

		// Slow path: join an in-flight generation or become the leader.
		db.mu.Lock()
		if e := db.entries[key]; e != nil {
			db.mu.Unlock()
			return db.hitResult(e, nil, waited)
		}
		var joined *flight
		if f := db.flights[key]; f != nil {
			joined = f
		} else {
			for _, pk := range permKeys {
				if e := db.entries[pk.key]; e != nil {
					db.mu.Unlock()
					return db.hitResult(e, pk.perm, waited)
				}
				if f := db.flights[pk.key]; f != nil {
					joined = f
					break
				}
			}
		}
		if joined != nil {
			db.mu.Unlock()
			if db.onWait != nil {
				db.onWait()
			}
			<-joined.done
			waited = true
			continue // the leader stored, errored, or panicked; re-check
		}
		f := &flight{done: make(chan struct{})}
		db.flights[key] = f
		db.mu.Unlock()

		db.misses.Add(1)
		g, err := runGenerate(generate)
		if err == nil && g != nil {
			db.Store(u, g)
		}
		db.mu.Lock()
		delete(db.flights, key)
		db.mu.Unlock()
		f.err = err
		close(f.done)
		return g, nil, OutcomeGenerated, err
	}
}

// tryHit checks the stored entries under the read lock.
func (db *DB) tryHit(key string, permKeys []permKey, waited bool) (*Generated, []int, Outcome, bool) {
	db.mu.RLock()
	if e := db.entries[key]; e != nil {
		db.mu.RUnlock()
		g, perm, oc, _ := db.hitResult(e, nil, waited)
		return g, perm, oc, true
	}
	for _, pk := range permKeys {
		if e := db.entries[pk.key]; e != nil {
			db.mu.RUnlock()
			g, perm, oc, _ := db.hitResult(e, pk.perm, waited)
			return g, perm, oc, true
		}
	}
	db.mu.RUnlock()
	return nil, nil, 0, false
}

// hitResult classifies a hit: a plain cache hit when the entry predated
// this call, a dedup when this caller blocked on the generating worker.
func (db *DB) hitResult(e *Entry, perm []int, waited bool) (*Generated, []int, Outcome, error) {
	db.hits.Add(1)
	oc := OutcomeHit
	if perm != nil {
		oc = OutcomePermuted
	}
	if waited {
		db.dedups.Add(1)
		oc = OutcomeDeduped
	}
	return e.Generated, perm, oc, nil
}

// runGenerate converts a generator panic into an error so singleflight
// waiters are always released.
func runGenerate(generate func() (*Generated, error)) (g *Generated, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pulse: generator panic: %v", r)
		}
	}()
	return generate()
}

// permTables memoizes permutations by qubit count: the full k! table
// (permutations) and the identity-free table used by lookups
// (lookupPerms). Rebuilt never; callers must not mutate the returned
// slices.
var permTables sync.Map // k → [][]int, full table including identity

func permutations(k int) [][]int {
	if t, ok := permTables.Load(k); ok {
		return t.([][]int)
	}
	base := make([]int, k)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(cur []int, rest []int)
	rec = func(cur, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, base)
	t, _ := permTables.LoadOrStore(k, out)
	return t.([][]int)
}

var lookupPermTables sync.Map // k → [][]int, identity hoisted out

// lookupPerms returns permutations(k) minus the identity — the identity
// case is the exact-key lookup, so hoisting it here spares every miss one
// PermuteQubits + CanonicalKey round trip.
func lookupPerms(k int) [][]int {
	if t, ok := lookupPermTables.Load(k); ok {
		return t.([][]int)
	}
	var out [][]int
	for _, p := range permutations(k) {
		if !isIdentityPerm(p) {
			out = append(out, p)
		}
	}
	t, _ := lookupPermTables.LoadOrStore(k, out)
	return t.([][]int)
}

func isIdentityPerm(p []int) bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}
