package pulse

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"paqoc/internal/quantum"
)

// testSchedule builds a distinctive multi-channel schedule whose samples
// exercise the exact float64 round-trip (irrational values, negatives,
// denormals are all fair game for the JSON encoder).
func testSchedule(seed float64) *Schedule {
	s := &Schedule{Channels: []string{"d0.x", "d0.y"}, SliceDt: 4}
	for k := range s.Channels {
		amps := make([]float64, 6)
		for j := range amps {
			amps[j] = math.Sin(seed + float64(k) + 0.1*float64(j))
		}
		s.Amps = append(s.Amps, amps)
	}
	return s
}

// TestSaveLoadRoundTrip persists a database holding 1-, 2-, and 3-qubit
// entries and checks that after reload every entry resolves by exact key,
// the 2-qubit entry also resolves through a permuted-key lookup, and the
// schedule payload survives bit-exactly.
func TestSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()

	u1 := rotation(0.37)
	g1 := &Generated{Schedule: testSchedule(1.0), Latency: 12, Fidelity: 0.9991, Error: 0.0009}
	db.Store(u1, g1)

	cx, err := quantum.GateUnitary("cx", nil)
	if err != nil {
		t.Fatal(err)
	}
	g2 := &Generated{Schedule: testSchedule(2.0), Latency: 75, Fidelity: 0.9993, Error: 0.0007}
	db.Store(cx, g2)

	ccx, err := quantum.GateUnitary("ccx", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Analytical entry: no schedule, latency/fidelity only.
	g3 := &Generated{Latency: 230, Fidelity: 0.999, Error: 0.001}
	db.Store(ccx, g3)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 3 {
		t.Fatalf("reloaded Len = %d, want 3", re.Len())
	}

	got1, perm, ok := re.Lookup(u1)
	if !ok || perm != nil {
		t.Fatalf("1q lookup after reload: ok=%v perm=%v", ok, perm)
	}
	if got1.Latency != g1.Latency || got1.Fidelity != g1.Fidelity || got1.Error != g1.Error {
		t.Errorf("1q metadata changed: %+v vs %+v", got1, g1)
	}
	assertSchedulesEqual(t, "1q", g1.Schedule, got1.Schedule)

	got3, perm, ok := re.Lookup(ccx)
	if !ok || perm != nil {
		t.Fatalf("3q lookup after reload: ok=%v perm=%v", ok, perm)
	}
	if got3.Schedule != nil {
		t.Error("3q analytical entry grew a schedule through the round trip")
	}
	if got3.Latency != g3.Latency {
		t.Errorf("3q latency = %v, want %v", got3.Latency, g3.Latency)
	}

	// Permuted lookup: the reversed-wires CX is not stored, but the stored
	// CX under the [1,0] wire permutation matches it (§V-B detection).
	swapped := quantum.PermuteQubits(cx, []int{1, 0})
	got2, perm, ok := re.Lookup(swapped)
	if !ok {
		t.Fatal("permuted CX lookup missed after reload")
	}
	if len(perm) != 2 || perm[0] != 1 || perm[1] != 0 {
		t.Fatalf("permuted CX lookup perm = %v, want [1 0]", perm)
	}
	assertSchedulesEqual(t, "2q", g2.Schedule, got2.Schedule)
}

// assertSchedulesEqual compares amplitudes exactly: persistence must not
// perturb a single bit of the pulse payload.
func assertSchedulesEqual(t *testing.T, label string, want, got *Schedule) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: schedule lost in round trip", label)
	}
	if got.SliceDt != want.SliceDt {
		t.Errorf("%s: SliceDt %v vs %v", label, got.SliceDt, want.SliceDt)
	}
	if len(got.Channels) != len(want.Channels) {
		t.Fatalf("%s: %d channels, want %d", label, len(got.Channels), len(want.Channels))
	}
	for k := range want.Channels {
		if got.Channels[k] != want.Channels[k] {
			t.Errorf("%s: channel %d named %q, want %q", label, k, got.Channels[k], want.Channels[k])
		}
		if len(got.Amps[k]) != len(want.Amps[k]) {
			t.Fatalf("%s: channel %d has %d samples, want %d", label, k, len(got.Amps[k]), len(want.Amps[k]))
		}
		for j := range want.Amps[k] {
			if got.Amps[k][j] != want.Amps[k][j] {
				t.Errorf("%s: channel %d sample %d = %v, want exactly %v",
					label, k, j, got.Amps[k][j], want.Amps[k][j])
			}
		}
	}
}

// TestSaveFileAtomic covers the crash-safe file path: saves land complete,
// re-saves replace the old content, no temp files are left behind, and a
// failed save neither creates the target nor litters the directory.
func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pulses.db")

	db1 := NewDB()
	db1.Store(rotation(0.1), &Generated{Latency: 10, Fidelity: 0.999})
	if err := db1.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	re, ok, err := LoadFile(path)
	if err != nil || !ok {
		t.Fatalf("LoadFile after first save: ok=%v err=%v", ok, err)
	}
	if re.Len() != 1 {
		t.Fatalf("first save holds %d entries, want 1", re.Len())
	}

	db2 := NewDB()
	db2.Store(rotation(0.1), &Generated{Latency: 10, Fidelity: 0.999})
	db2.Store(rotation(0.2), &Generated{Latency: 11, Fidelity: 0.999})
	if err := db2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	re, ok, err = LoadFile(path)
	if err != nil || !ok {
		t.Fatalf("LoadFile after overwrite: ok=%v err=%v", ok, err)
	}
	if re.Len() != 2 {
		t.Fatalf("overwrite holds %d entries, want 2", re.Len())
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "pulses.db" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory litter after saves: %v", names)
	}

	// A save that cannot complete (missing directory) errors and leaves
	// nothing behind.
	bad := filepath.Join(dir, "no-such-dir", "pulses.db")
	if err := db2.SaveFile(bad); err == nil {
		t.Fatal("SaveFile into a missing directory succeeded")
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("failed save created the target: %v", err)
	}
}

// TestLoadFileMissing: a cold start gets an empty database, not an error.
func TestLoadFileMissing(t *testing.T) {
	db, ok, err := LoadFile(filepath.Join(t.TempDir(), "absent.db"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("LoadFile reported ok for a missing file")
	}
	if db == nil || db.Len() != 0 {
		t.Errorf("missing file did not yield an empty database: %v", db)
	}
}
