package pulse

import (
	"fmt"

	"paqoc/internal/linalg"
)

// WireEntry is the serialized form of one pulse-database entry. It is the
// unit of exchange everywhere an entry crosses a process boundary: the
// on-disk snapshot format (persist.go) and the cluster replication RPC
// (internal/cluster, re-exported as api.PulseEntry) share it, so a replica
// can ship exactly what a snapshot would hold.
type WireEntry struct {
	Dim       int          `json:"dim"`
	Unitary   [][2]float64 `json:"unitary"` // row-major (re, im)
	Latency   float64      `json:"latency_dt"`
	Fidelity  float64      `json:"fidelity"`
	Error     float64      `json:"error"`
	Schedule  *Schedule    `json:"schedule,omitempty"`
	Protected bool         `json:"protected,omitempty"`
}

// EncodeWire serializes one (unitary, generated) pair. ok is false when a
// NaN or Inf crept into the metadata or samples (a diverged GRAPE run):
// encoding/json rejects non-finite floats, so such entries must be skipped
// rather than poisoning a snapshot or a replication PUT.
func EncodeWire(u *linalg.Matrix, g *Generated, protected bool) (WireEntry, bool) {
	if !generatedFinite(u, g) {
		return WireEntry{}, false
	}
	we := WireEntry{
		Dim:       u.Rows,
		Latency:   g.Latency,
		Fidelity:  g.Fidelity,
		Error:     g.Error,
		Schedule:  g.Schedule,
		Protected: protected,
	}
	we.Unitary = make([][2]float64, len(u.Data))
	for i, v := range u.Data {
		we.Unitary[i] = [2]float64{real(v), imag(v)}
	}
	return we, true
}

// EncodeEntry serializes a stored entry (see EncodeWire for the ok=false
// contract).
func EncodeEntry(e *Entry) (WireEntry, bool) {
	return EncodeWire(e.U, e.Generated, e.protected.Load())
}

// Decode validates and reconstructs the entry: the matrix must be the
// declared shape, every value (unitary, metadata, schedule samples) must
// be finite, and the matrix must be unitary within tolerance — a corrupt
// snapshot or a malicious replication PUT fails fast instead of poisoning
// warm starts at compile time.
func (we WireEntry) Decode() (*linalg.Matrix, *Generated, error) {
	if we.Dim <= 0 || len(we.Unitary) != we.Dim*we.Dim {
		return nil, nil, fmt.Errorf("pulse: entry has inconsistent dimensions")
	}
	if !finite(we.Latency) || !finite(we.Fidelity) || !finite(we.Error) {
		return nil, nil, fmt.Errorf("pulse: entry has non-finite metadata (latency=%v fidelity=%v error=%v)",
			we.Latency, we.Fidelity, we.Error)
	}
	u := linalg.New(we.Dim, we.Dim)
	for k, v := range we.Unitary {
		if !finite(v[0]) || !finite(v[1]) {
			return nil, nil, fmt.Errorf("pulse: entry has a non-finite amplitude at element %d", k)
		}
		u.Data[k] = complex(v[0], v[1])
	}
	if !u.IsUnitary(loadUnitaryTol) {
		return nil, nil, fmt.Errorf("pulse: entry is not unitary within %g", loadUnitaryTol)
	}
	if s := we.Schedule; s != nil {
		if !finite(s.SliceDt) {
			return nil, nil, fmt.Errorf("pulse: entry has a non-finite slice_dt")
		}
		for c, ch := range s.Amps {
			for j, v := range ch {
				if !finite(v) {
					return nil, nil, fmt.Errorf("pulse: entry has a non-finite sample (channel %d, slice %d)", c, j)
				}
			}
		}
	}
	return u, &Generated{
		Latency:  we.Latency,
		Fidelity: we.Fidelity,
		Error:    we.Error,
		Schedule: we.Schedule,
	}, nil
}

// NamespacedKey joins a backend fingerprint and a canonical unitary key
// into the full store key (Entry.Key). The replication layer hashes this
// form for ownership, so two replicas serving different backends never
// contend for the same key space even when a gate's unitary coincides.
func NamespacedKey(fingerprint, canonical string) string {
	if fingerprint == "" {
		return canonical
	}
	return fingerprint + "\x1f" + canonical
}

// generatedFinite reports whether every float the encoder will see is
// finite.
func generatedFinite(u *linalg.Matrix, g *Generated) bool {
	if !finite(g.Latency) || !finite(g.Fidelity) || !finite(g.Error) {
		return false
	}
	if s := g.Schedule; s != nil {
		if !finite(s.SliceDt) {
			return false
		}
		for _, ch := range s.Amps {
			for _, v := range ch {
				if !finite(v) {
					return false
				}
			}
		}
	}
	for _, v := range u.Data {
		if !finite(real(v)) || !finite(imag(v)) {
			return false
		}
	}
	return true
}
