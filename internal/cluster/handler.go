package cluster

import (
	"encoding/json"
	"net/http"

	"paqoc/internal/api"
	"paqoc/internal/pulse"
)

// maxEntryBytes bounds one wire entry (and caps the decoder on both sides
// of the RPC). A 3-qubit entry with a long schedule is tens of kilobytes;
// anything near this limit is garbage, not a pulse.
const maxEntryBytes = 16 << 20

// maxSnapshotBytes bounds a shipped snapshot merge.
const maxSnapshotBytes = 256 << 20

// Handler serves the internal v1 replication RPC. resolve maps a backend
// fingerprint to that backend's live pulse database — fetching lazily is
// the server's choice (a replica may own keys for a backend it has not
// compiled for yet); ok=false refuses the fingerprint entirely.
//
// The handler is mounted on the private -cluster-listen address, never on
// the public API listener; like -pprof it trusts its network boundary.
//
//	GET /internal/v1/ping                          liveness, 204
//	GET /internal/v1/pulse/{fingerprint}/{key}     owner lookup, PulseEntry or 404
//	PUT /internal/v1/pulse/{fingerprint}/{key}     write-through publish, 204
//	PUT /internal/v1/snapshot/{fingerprint}        bulk merge, MergeReport
func (c *Cluster) Handler(resolve func(fingerprint string) (*pulse.DB, bool)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /internal/v1/ping", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /internal/v1/pulse/{fingerprint}/{key}", func(w http.ResponseWriter, r *http.Request) {
		db, ok := resolve(r.PathValue("fingerprint"))
		if !ok {
			api.WriteError(w, http.StatusConflict, api.CodeWrongFingerprint, "this replica does not serve that backend fingerprint")
			return
		}
		e, ok := db.EntryByKey(r.PathValue("key"))
		if !ok {
			api.WriteError(w, http.StatusNotFound, api.CodeUnknownKey, "no entry for key")
			return
		}
		we, ok := pulse.EncodeEntry(e)
		if !ok {
			// A non-finite entry cannot cross the wire; to the peer it does
			// not exist.
			api.WriteError(w, http.StatusNotFound, api.CodeUnknownKey, "no entry for key")
			return
		}
		c.counter("cluster.serve_hits").Inc()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(api.PulseEntry(we))
	})
	mux.HandleFunc("PUT /internal/v1/pulse/{fingerprint}/{key}", func(w http.ResponseWriter, r *http.Request) {
		db, ok := resolve(r.PathValue("fingerprint"))
		if !ok {
			api.WriteError(w, http.StatusConflict, api.CodeWrongFingerprint, "this replica does not serve that backend fingerprint")
			return
		}
		var we api.PulseEntry
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEntryBytes)).Decode(&we); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadEntry, err.Error())
			return
		}
		u, g, err := we.Decode()
		if err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadEntry, err.Error())
			return
		}
		if pulse.CanonicalKey(u) != r.PathValue("key") {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadEntry, "entry unitary does not match the key it was published under")
			return
		}
		db.Merge(u, g, we.Protected)
		c.counter("cluster.serve_merges").Inc()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("PUT /internal/v1/snapshot/{fingerprint}", func(w http.ResponseWriter, r *http.Request) {
		db, ok := resolve(r.PathValue("fingerprint"))
		if !ok {
			api.WriteError(w, http.StatusConflict, api.CodeWrongFingerprint, "this replica does not serve that backend fingerprint")
			return
		}
		rep, err := db.MergeSnapshot(http.MaxBytesReader(w, r.Body, maxSnapshotBytes))
		if err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadEntry, err.Error())
			return
		}
		c.counter("cluster.serve_merges").Inc()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(api.MergeReport(rep))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "unknown internal RPC path")
	})
	return mux
}
