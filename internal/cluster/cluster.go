// Package cluster replicates the warm pulse store across a static set of
// paqoc-server replicas. Every canonical pulse key (namespaced by backend
// fingerprint) has exactly one owner replica, chosen by rendezvous
// hashing over the peer list — no coordinator, no rebalancing protocol,
// and every replica computes the same answer from the same configuration.
// On a local database miss the compile path asks the key's owner over a
// small internal HTTP RPC before paying for generation, and freshly
// generated pulses are write-through-published to their owner so the next
// replica to miss finds them there.
//
// Everything here is best-effort: peer timeouts and failures degrade to
// local generation (guarded by a per-peer circuit breaker so a dead
// replica costs at most one timeout per cooldown window), and are never
// visible to compile clients as errors.
package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"paqoc/internal/obs"
)

// Config describes one replica's view of the cluster.
type Config struct {
	// Self is this replica's own advertised address (host:port of its
	// -cluster-listen). It is added to Peers if absent.
	Self string
	// Peers is the full static membership, one advertised address per
	// replica. Order does not matter: ownership depends only on the set.
	Peers []string
	// Timeout bounds each peer RPC (default 2s). It should be far below
	// the cost of a GRAPE run — a slow peer must never cost more than the
	// generation it might save.
	Timeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit skips a peer before
	// allowing a trial request (default 15s).
	BreakerCooldown time.Duration
	// Registry receives cluster.* metrics (may be nil).
	Registry *obs.Registry
	// Logger receives peer-failure logs (may be nil).
	Logger *obs.Logger
}

// Cluster is one replica's membership view plus the RPC client state.
type Cluster struct {
	self    string
	peers   []string // sorted, deduped, includes self
	timeout time.Duration
	client  *http.Client
	reg     *obs.Registry
	log     *obs.Logger

	brThreshold int
	brCooldown  time.Duration
	mu          sync.Mutex
	breakers    map[string]*breaker
}

// New validates the membership and returns the replica's cluster view. A
// single-member (or empty) peer list is valid and yields a cluster where
// every key is owned locally — the degenerate standalone configuration.
func New(cfg Config) (*Cluster, error) {
	set := map[string]bool{}
	var peers []string
	add := func(p string) error {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil
		}
		if strings.Contains(p, "/") && !strings.Contains(p, "://") {
			return fmt.Errorf("cluster: peer %q is not a host:port or URL", p)
		}
		if !set[p] {
			set[p] = true
			peers = append(peers, p)
		}
		return nil
	}
	if err := add(cfg.Self); err != nil {
		return nil, err
	}
	for _, p := range cfg.Peers {
		if err := add(p); err != nil {
			return nil, err
		}
	}
	if len(peers) > 1 && strings.TrimSpace(cfg.Self) == "" {
		return nil, fmt.Errorf("cluster: peers configured but no self address — this replica could not tell which keys it owns")
	}
	sort.Strings(peers)

	c := &Cluster{
		self:        strings.TrimSpace(cfg.Self),
		peers:       peers,
		timeout:     cfg.Timeout,
		reg:         cfg.Registry,
		log:         cfg.Logger,
		brThreshold: cfg.BreakerThreshold,
		brCooldown:  cfg.BreakerCooldown,
		breakers:    map[string]*breaker{},
	}
	if c.timeout <= 0 {
		c.timeout = 2 * time.Second
	}
	if c.brThreshold <= 0 {
		c.brThreshold = 3
	}
	if c.brCooldown <= 0 {
		c.brCooldown = 15 * time.Second
	}
	c.client = &http.Client{Timeout: c.timeout}
	return c, nil
}

// Enabled reports whether there is anyone to talk to: with fewer than two
// members every key is owned locally and the RPC client never fires.
func (c *Cluster) Enabled() bool { return c != nil && len(c.peers) > 1 }

// Self returns this replica's advertised address.
func (c *Cluster) Self() string { return c.self }

// Peers returns the full membership (sorted; includes self).
func (c *Cluster) Peers() []string { return append([]string(nil), c.peers...) }

// Owner returns the advertised address of the replica that owns key (the
// fingerprint-namespaced form, pulse.NamespacedKey). With fewer than two
// members it is always self.
func (c *Cluster) Owner(key string) string {
	if !c.Enabled() {
		if c == nil {
			return ""
		}
		return c.self
	}
	return Owner(c.peers, key)
}

// OwnsLocally reports whether this replica is key's owner.
func (c *Cluster) OwnsLocally(key string) bool {
	return !c.Enabled() || c.Owner(key) == c.self
}

// baseURL turns an advertised peer address into a request base.
func baseURL(peer string) string {
	if strings.Contains(peer, "://") {
		return strings.TrimSuffix(peer, "/")
	}
	return "http://" + peer
}

func (c *Cluster) counter(name string) *obs.Counter { return c.reg.Counter(name) }

// breaker is a per-peer circuit: consecutive failures open it for a
// cooldown window, after which one trial request is allowed through
// (success closes it, failure re-opens immediately).
type breaker struct {
	mu        sync.Mutex
	failures  int
	openUntil time.Time
}

func (c *Cluster) breakerFor(peer string) *breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[peer]
	if b == nil {
		b = &breaker{}
		c.breakers[peer] = b
	}
	return b
}

// allow reports whether a request to peer may proceed.
func (c *Cluster) allow(peer string) bool {
	b := c.breakerFor(peer)
	b.mu.Lock()
	defer b.mu.Unlock()
	if time.Now().Before(b.openUntil) {
		c.counter("cluster.breaker_skips").Inc()
		return false
	}
	return true
}

// success records a peer responding (any HTTP response, including a miss).
func (c *Cluster) success(peer string) {
	b := c.breakerFor(peer)
	b.mu.Lock()
	b.failures = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

// failure records a transport-level peer failure and opens the circuit at
// the threshold.
func (c *Cluster) failure(peer string, err error) {
	c.counter("cluster.peer_errors").Inc()
	b := c.breakerFor(peer)
	b.mu.Lock()
	b.failures++
	opened := b.failures >= c.brThreshold
	if opened {
		b.openUntil = time.Now().Add(c.brCooldown)
	}
	b.mu.Unlock()
	if c.log != nil {
		c.log.Warn("cluster peer failure", "peer", peer, "err", err, "breaker_open", opened)
	}
	if opened {
		c.counter("cluster.breaker_opens").Inc()
	}
}
