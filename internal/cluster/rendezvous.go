package cluster

import "hash/fnv"

// Owner picks key's owner from peers by rendezvous (highest-random-weight)
// hashing: every member scores every (peer, key) pair with the same
// deterministic hash and the highest score wins. All replicas agree
// without coordination, each key's load lands on exactly one member, and
// removing a peer reassigns only that peer's keys (the surviving peers'
// scores are unchanged — no global reshuffle, unlike modulo hashing).
//
// The score hash is FNV-1a, not the runtime's seeded maphash: ownership
// must be identical across processes and restarts, which a per-process
// seed would break.
func Owner(peers []string, key string) string {
	best, bestScore := "", uint64(0)
	for _, p := range peers {
		s := score(p, key)
		// Tie-break on the lexically smaller peer so the choice stays
		// total-ordered even in the (vanishing) event of a score collision.
		if best == "" || s > bestScore || (s == bestScore && p < best) {
			best, bestScore = p, s
		}
	}
	return best
}

// score hashes one (peer, key) pair. The NUL separator keeps ("ab","c")
// and ("a","bc") from colliding. The key goes first and the peer last —
// peers typically differ in one byte, and feeding that byte into an
// already well-mixed per-key state decorrelates the scores across keys —
// then a splitmix64-style finalizer avalanches the tail bytes' influence
// into the high bits the comparison is decided by (raw FNV leaves peers
// in near-identical relative order for every key, collapsing the
// "random" in highest-random-weight onto one peer).
func score(peer, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(peer))
	s := h.Sum64()
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	s ^= s >> 27
	s *= 0x94d049bb133111eb
	s ^= s >> 31
	return s
}
