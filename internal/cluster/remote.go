package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"paqoc/internal/api"
	"paqoc/internal/linalg"
	"paqoc/internal/pulse"
)

// Remote is the pulse.Remote implementation for one backend fingerprint:
// the hook the GRAPE generator consults on local database misses and
// publishes fresh pulses through. One Cluster serves many Remotes — one
// per backend a replica compiles for — and ownership is computed over the
// fingerprint-namespaced key, so backends partition independently.
type Remote struct {
	c           *Cluster
	fingerprint string
}

var _ pulse.Remote = (*Remote)(nil)

// RemoteFor returns the remote pulse source for one backend fingerprint.
func (c *Cluster) RemoteFor(fingerprint string) *Remote {
	return &Remote{c: c, fingerprint: fingerprint}
}

// pulseURL builds the replication RPC URL for a canonical key on a peer.
func (r *Remote) pulseURL(peer, canonical string) string {
	return fmt.Sprintf("%s/internal/v1/pulse/%s/%s",
		baseURL(peer), url.PathEscape(r.fingerprint), url.PathEscape(canonical))
}

// owner resolves the owning peer of u's key; ok is false when that is
// this replica itself (nothing to ask) or the cluster is standalone.
func (r *Remote) owner(u *linalg.Matrix) (peer, canonical string, ok bool) {
	if !r.c.Enabled() {
		return "", "", false
	}
	canonical = pulse.CanonicalKey(u)
	peer = r.c.Owner(pulse.NamespacedKey(r.fingerprint, canonical))
	return peer, canonical, peer != r.c.self
}

// FetchPulse asks u's owner replica for an already-generated pulse.
// It returns false on owner-is-self, open breaker, timeout, transport
// failure, peer miss, or an entry that fails validation — every failure
// mode means "generate locally", never an error.
func (r *Remote) FetchPulse(ctx context.Context, u *linalg.Matrix) (*pulse.Generated, bool) {
	peer, canonical, ok := r.owner(u)
	if !ok || !r.c.allow(peer) {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(ctx, r.c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.pulseURL(peer, canonical), nil)
	if err != nil {
		return nil, false
	}
	resp, err := r.c.client.Do(req)
	if err != nil {
		r.c.failure(peer, err)
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	r.c.success(peer)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		r.c.counter("cluster.peer_misses").Inc()
		return nil, false
	default:
		r.c.counter("cluster.peer_errors").Inc()
		return nil, false
	}
	var we api.PulseEntry
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxEntryBytes)).Decode(&we); err != nil {
		r.c.counter("cluster.peer_errors").Inc()
		return nil, false
	}
	ru, g, err := we.Decode()
	if err != nil || pulse.CanonicalKey(ru) != canonical {
		// A peer shipping a different unitary than asked for (corruption,
		// version skew) must not be warmed into the local store.
		r.c.counter("cluster.peer_errors").Inc()
		return nil, false
	}
	r.c.counter("cluster.peer_hits").Inc()
	return g, true
}

// PublishPulse write-through-ships a freshly generated pulse to u's owner
// replica so the next replica to miss on this key finds it warm there.
// Self-owned keys and all failures are silently dropped: the local store
// already has the pulse, and replication is an optimization.
func (r *Remote) PublishPulse(ctx context.Context, u *linalg.Matrix, g *pulse.Generated) {
	peer, canonical, ok := r.owner(u)
	if !ok || !r.c.allow(peer) {
		return
	}
	we, ok := pulse.EncodeWire(u, g, false)
	if !ok {
		return
	}
	body, err := json.Marshal(we)
	if err != nil {
		return
	}
	// Detach from the job's cancellation: the pulse is already generated
	// and the publish should survive the request that paid for it, bounded
	// by the RPC timeout alone.
	ctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), r.c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, r.pulseURL(peer, canonical), bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.c.client.Do(req)
	if err != nil {
		r.c.failure(peer, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	r.c.success(peer)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		r.c.counter("cluster.peer_errors").Inc()
		return
	}
	r.c.counter("cluster.publishes").Inc()
}
