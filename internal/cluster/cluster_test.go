package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math/cmplx"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"paqoc/internal/api"
	"paqoc/internal/linalg"
	"paqoc/internal/obs"
	"paqoc/internal/pulse"
)

// phaseGate returns diag(1, e^{iθ}) — a family of distinct single-qubit
// unitaries for steering keys onto chosen owners.
func phaseGate(theta float64) *linalg.Matrix {
	u := linalg.New(2, 2)
	u.Data[0] = 1
	u.Data[3] = cmplx.Exp(complex(0, theta))
	return u
}

// gateOwnedBy searches the phase-gate family for a unitary whose
// fingerprint-namespaced key is owned by peer.
func gateOwnedBy(t *testing.T, c *Cluster, fingerprint, peer string) *linalg.Matrix {
	t.Helper()
	for i := 1; i < 200; i++ {
		u := phaseGate(float64(i) / 40)
		if c.Owner(pulse.NamespacedKey(fingerprint, pulse.CanonicalKey(u))) == peer {
			return u
		}
	}
	t.Fatalf("no phase gate owned by %s", peer)
	return nil
}

func testGenerated() *pulse.Generated {
	return &pulse.Generated{
		Latency:  42,
		Fidelity: 0.9995,
		Error:    0.0005,
		Schedule: &pulse.Schedule{
			Channels: []string{"d0.x", "d0.y"},
			Amps:     [][]float64{{0.1, 0.2}, {0.3, 0.4}},
			SliceDt:  1,
		},
	}
}

func TestOwnerDeterministicAndBalanced(t *testing.T) {
	peers := []string{"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"}
	shuffled := []string{peers[2], peers[0], peers[1]}
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("fp\x1fkey-%d", i)
		o := Owner(peers, key)
		if got := Owner(shuffled, key); got != o {
			t.Fatalf("owner depends on peer order: %s vs %s", o, got)
		}
		counts[o]++
	}
	for _, p := range peers {
		if counts[p] < 200 {
			t.Errorf("peer %s owns only %d/1000 keys — distribution badly skewed", p, counts[p])
		}
	}
}

// TestOwnerStableUnderPeerRemoval is the rendezvous property the design
// leans on: removing one peer reassigns only the keys it owned.
func TestOwnerStableUnderPeerRemoval(t *testing.T) {
	peers := []string{"a:1", "b:1", "c:1"}
	without := []string{"a:1", "c:1"}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := Owner(peers, key)
		after := Owner(without, key)
		if before != "b:1" && after != before {
			t.Fatalf("key %q moved from %s to %s although its owner survived", key, before, after)
		}
	}
}

func TestStandaloneOwnsEverything(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Enabled() {
		t.Error("empty cluster reports Enabled")
	}
	if !c.OwnsLocally("any-key") {
		t.Error("standalone cluster does not own its keys")
	}
	if g, ok := c.RemoteFor("fp").FetchPulse(context.Background(), phaseGate(1)); ok || g != nil {
		t.Error("standalone FetchPulse returned a pulse")
	}
}

func TestNewRejectsPeersWithoutSelf(t *testing.T) {
	if _, err := New(Config{Peers: []string{"a:1", "b:1"}}); err == nil {
		t.Error("peers without a self address were accepted")
	}
}

// twoReplicas builds two clusters wired to each other through real HTTP
// listeners, each with its own DB (fingerprint "fp") and registry.
// swapHandler late-binds an http.Handler: the httptest listener must
// exist before the Cluster (peers are its URL), but the Cluster's Handler
// is what the listener must serve. The mutex makes the bind race-safe.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) Set(h http.Handler) { s.mu.Lock(); s.h = h; s.mu.Unlock() }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func twoReplicas(t *testing.T) (cA, cB *Cluster, dbA, dbB *pulse.DB, regA, regB *obs.Registry) {
	t.Helper()
	dbA, dbB = pulse.NewDB(), pulse.NewDB()
	dbA.SetFingerprint("fp")
	dbB.SetFingerprint("fp")
	regA, regB = obs.NewRegistry(), obs.NewRegistry()

	hA, hB := &swapHandler{}, &swapHandler{}
	srvA := httptest.NewServer(hA)
	srvB := httptest.NewServer(hB)
	t.Cleanup(srvA.Close)
	t.Cleanup(srvB.Close)

	peers := []string{srvA.URL, srvB.URL}
	var err error
	cA, err = New(Config{Self: srvA.URL, Peers: peers, Timeout: 2 * time.Second, Registry: regA})
	if err != nil {
		t.Fatal(err)
	}
	cB, err = New(Config{Self: srvB.URL, Peers: peers, Timeout: 2 * time.Second, Registry: regB})
	if err != nil {
		t.Fatal(err)
	}
	resolve := func(db *pulse.DB) func(string) (*pulse.DB, bool) {
		return func(fp string) (*pulse.DB, bool) {
			if fp != "fp" {
				return nil, false
			}
			return db, true
		}
	}
	hA.Set(cA.Handler(resolve(dbA)))
	hB.Set(cB.Handler(resolve(dbB)))
	return cA, cB, dbA, dbB, regA, regB
}

func TestPublishThenFetchRoundTrip(t *testing.T) {
	cA, cB, dbA, dbB, regA, _ := twoReplicas(t)
	ctx := context.Background()

	// A gate owned by B, seen from A: publish ships it to B's store.
	u := gateOwnedBy(t, cA, "fp", cB.Self())
	g := testGenerated()
	remA := cA.RemoteFor("fp")
	remA.PublishPulse(ctx, u, g)

	if regA.Counter("cluster.publishes").Value() != 1 {
		t.Fatalf("publishes = %d, want 1", regA.Counter("cluster.publishes").Value())
	}
	e, ok := dbB.EntryByKey(pulse.CanonicalKey(u))
	if !ok {
		t.Fatal("owner replica does not hold the published entry")
	}
	if e.Generated.Latency != g.Latency || e.Generated.Fidelity != g.Fidelity {
		t.Errorf("published entry mangled: latency %v fidelity %v", e.Generated.Latency, e.Generated.Fidelity)
	}

	// A misses locally and fetches from the owner.
	if _, ok := dbA.EntryByKey(pulse.CanonicalKey(u)); ok {
		t.Fatal("publisher stored the entry locally through the remote")
	}
	got, ok := remA.FetchPulse(ctx, u)
	if !ok {
		t.Fatal("FetchPulse missed an entry the owner holds")
	}
	if got.Latency != g.Latency || got.Fidelity != g.Fidelity {
		t.Errorf("fetched pulse mangled: latency %v fidelity %v", got.Latency, got.Fidelity)
	}
	if got.Schedule == nil || len(got.Schedule.Channels) != 2 || got.Schedule.Amps[1][0] != 0.3 {
		t.Errorf("fetched schedule did not round-trip: %+v", got.Schedule)
	}
	if regA.Counter("cluster.peer_hits").Value() != 1 {
		t.Errorf("peer_hits = %d, want 1", regA.Counter("cluster.peer_hits").Value())
	}

	// A different gate owned by B that B does not hold: a clean miss, not
	// an error.
	miss := gateOwnedBy(t, cA, "fp", cB.Self())
	for i := 2; pulse.CanonicalKey(miss) == pulse.CanonicalKey(u); i++ {
		miss = phaseGate(float64(i) + 0.5)
	}
	if _, ok := remA.FetchPulse(ctx, miss); ok && pulse.CanonicalKey(miss) != pulse.CanonicalKey(u) {
		t.Error("FetchPulse hit on a key nobody stored")
	}
	if regA.Counter("cluster.peer_errors").Value() != 0 {
		t.Errorf("peer_errors = %d after healthy exchanges, want 0", regA.Counter("cluster.peer_errors").Value())
	}
}

func TestFetchSelfOwnedIsLocalOnly(t *testing.T) {
	cA, _, _, _, regA, _ := twoReplicas(t)
	u := gateOwnedBy(t, cA, "fp", cA.Self())
	if _, ok := cA.RemoteFor("fp").FetchPulse(context.Background(), u); ok {
		t.Error("FetchPulse crossed the network for a self-owned key")
	}
	if n := regA.Counter("cluster.peer_misses").Value() + regA.Counter("cluster.peer_errors").Value(); n != 0 {
		t.Errorf("self-owned fetch touched a peer (%d RPC outcomes)", n)
	}
}

func TestMergeKeepsHigherFidelityOnRepublish(t *testing.T) {
	cA, cB, _, dbB, _, _ := twoReplicas(t)
	ctx := context.Background()
	u := gateOwnedBy(t, cA, "fp", cB.Self())
	remA := cA.RemoteFor("fp")

	good := testGenerated()
	remA.PublishPulse(ctx, u, good)
	worse := testGenerated()
	worse.Fidelity = 0.99
	worse.Latency = 7
	remA.PublishPulse(ctx, u, worse)

	e, ok := dbB.EntryByKey(pulse.CanonicalKey(u))
	if !ok {
		t.Fatal("entry missing after republish")
	}
	if e.Generated.Fidelity != good.Fidelity || e.Generated.Latency != good.Latency {
		t.Errorf("lower-fidelity republish clobbered the stored pulse: %+v", e.Generated)
	}
}

func TestPeerDownDegradesAndBreakerOpens(t *testing.T) {
	// Reserve a port and close it so dials fail fast.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	reg := obs.NewRegistry()
	c, err := New(Config{
		Self:             "127.0.0.1:1",
		Peers:            []string{"127.0.0.1:1", dead},
		Timeout:          300 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
		Registry:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := gateOwnedBy(t, c, "fp", dead)
	rem := c.RemoteFor("fp")
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, ok := rem.FetchPulse(ctx, u); ok {
			t.Fatal("fetch from a dead peer succeeded")
		}
	}
	if got := reg.Counter("cluster.peer_errors").Value(); got != 3 {
		t.Errorf("peer_errors = %d, want 3", got)
	}
	if got := reg.Counter("cluster.breaker_opens").Value(); got != 1 {
		t.Errorf("breaker_opens = %d, want 1", got)
	}
	// Circuit open: further calls skip the dial entirely.
	rem.PublishPulse(ctx, u, testGenerated())
	if _, ok := rem.FetchPulse(ctx, u); ok {
		t.Fatal("fetch through an open breaker succeeded")
	}
	if got := reg.Counter("cluster.breaker_skips").Value(); got < 2 {
		t.Errorf("breaker_skips = %d, want >= 2", got)
	}
	if got := reg.Counter("cluster.peer_errors").Value(); got != 3 {
		t.Errorf("peer_errors grew to %d while the breaker was open", got)
	}
}

func TestHandlerErrorEnvelope(t *testing.T) {
	cA, cB, _, _, _, _ := twoReplicas(t)
	_ = cA
	base := baseURL(cB.Self())

	decode := func(resp *http.Response) api.ErrorResponse {
		t.Helper()
		defer resp.Body.Close()
		var er api.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("error body is not the envelope: %v", err)
		}
		return er
	}

	resp, err := http.Get(base + "/internal/v1/pulse/fp/no-such-key")
	if err != nil {
		t.Fatal(err)
	}
	if er := decode(resp); resp.StatusCode != http.StatusNotFound || er.Error.Code != api.CodeUnknownKey {
		t.Errorf("unknown key: status %d code %q", resp.StatusCode, er.Error.Code)
	}

	resp, err = http.Get(base + "/internal/v1/pulse/other-fp/key")
	if err != nil {
		t.Fatal(err)
	}
	if er := decode(resp); resp.StatusCode != http.StatusConflict || er.Error.Code != api.CodeWrongFingerprint {
		t.Errorf("wrong fingerprint: status %d code %q", resp.StatusCode, er.Error.Code)
	}

	// A published entry must match the key it claims to be.
	u := phaseGate(1)
	we, _ := pulse.EncodeWire(u, testGenerated(), false)
	body, _ := json.Marshal(we)
	req, _ := http.NewRequest(http.MethodPut, base+"/internal/v1/pulse/fp/some-other-key", strings.NewReader(string(body)))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if er := decode(resp); resp.StatusCode != http.StatusBadRequest || er.Error.Code != api.CodeBadEntry {
		t.Errorf("mismatched entry: status %d code %q", resp.StatusCode, er.Error.Code)
	}
}

func TestSnapshotMergeRPC(t *testing.T) {
	cA, cB, dbA, dbB, _, _ := twoReplicas(t)
	_ = cA
	ctx := context.Background()
	_ = ctx

	// Seed A with two entries and ship its snapshot to B.
	for i := 1; i <= 2; i++ {
		u := phaseGate(float64(i))
		g := testGenerated()
		dbA.Merge(u, g, false)
	}
	var buf strings.Builder
	if err := dbA.Save(&buf); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, baseURL(cB.Self())+"/internal/v1/snapshot/fp", strings.NewReader(buf.String()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot merge status %d", resp.StatusCode)
	}
	var rep api.MergeReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Added != 2 || rep.Replaced != 0 || rep.Kept != 0 {
		t.Errorf("merge report %+v, want 2 added", rep)
	}
	if _, ok := dbB.EntryByKey(pulse.CanonicalKey(phaseGate(1))); !ok {
		t.Error("snapshot entry missing from receiver")
	}
}

func BenchmarkRendezvousOwner(b *testing.B) {
	peers := []string{"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000", "10.0.0.4:7000", "10.0.0.5:7000"}
	key := pulse.NamespacedKey("0123456789abcdef", pulse.CanonicalKey(phaseGate(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Owner(peers, key)
	}
}
