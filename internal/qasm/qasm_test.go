package qasm

import (
	"math"
	"strings"
	"testing"

	"paqoc/internal/bench"
	"paqoc/internal/linalg"
)

const sample = `
OPENQASM 2.0;
include "qelib1.inc";
// a bell pair plus phases
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
rz(pi/4) q[1];
u3(pi/2, 0, pi) q[0];
barrier q[0], q[1];
measure q[0] -> c[0];
`

func TestParseSample(t *testing.T) {
	c, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 2 {
		t.Fatalf("qubits = %d", c.NumQubits)
	}
	if len(c.Gates) != 4 {
		t.Fatalf("gates = %d: %v", len(c.Gates), c.Gates)
	}
	if c.Gates[2].Name != "rz" || math.Abs(c.Gates[2].Params[0]-math.Pi/4) > 1e-12 {
		t.Errorf("rz parse wrong: %+v", c.Gates[2])
	}
	if c.Gates[3].Name != "u3" || len(c.Gates[3].Params) != 3 {
		t.Errorf("u3 parse wrong: %+v", c.Gates[3])
	}
}

func TestParseMultipleRegisters(t *testing.T) {
	src := `OPENQASM 2.0; qreg a[2]; qreg b[3]; cx a[1],b[0]; h b[2];`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 5 {
		t.Fatalf("qubits = %d", c.NumQubits)
	}
	// a[1] → 1, b[0] → 2, b[2] → 4.
	if c.Gates[0].Qubits[0] != 1 || c.Gates[0].Qubits[1] != 2 {
		t.Errorf("register layout wrong: %v", c.Gates[0])
	}
	if c.Gates[1].Qubits[0] != 4 {
		t.Errorf("b[2] resolved to %d", c.Gates[1].Qubits[0])
	}
}

func TestParseExpressions(t *testing.T) {
	cases := map[string]float64{
		"pi":          math.Pi,
		"-pi/2":       -math.Pi / 2,
		"3*pi/4":      3 * math.Pi / 4,
		"0.5":         0.5,
		"-(pi+1)":     -(math.Pi + 1),
		"2e-3":        2e-3,
		"pi/2 + pi/4": 3 * math.Pi / 4,
		"(1+2)*3":     9,
	}
	for expr, want := range cases {
		v, sym, err := evalExpr(expr)
		if err != nil || sym != "" {
			t.Fatalf("%q: %v (sym %q)", expr, err, sym)
		}
		if math.Abs(v-want) > 1e-12 {
			t.Errorf("%q = %g, want %g", expr, v, want)
		}
	}
}

func TestParseSymbolicParameter(t *testing.T) {
	src := `OPENQASM 2.0; qreg q[1]; rz(theta) q[0];`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Symbol != "theta" {
		t.Errorf("symbol = %q", c.Gates[0].Symbol)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`h q[0];`,                                // gate before qreg
		`OPENQASM 2.0; qreg q[0];`,               // zero-size reg
		`OPENQASM 2.0; qreg q[2]; zap q[0];`,     // unknown gate
		`OPENQASM 2.0; qreg q[2]; cx q[0],q[5];`, // out of range
		`OPENQASM 2.0; qreg q[2]; cx q[0],r[1];`, // unknown register
		`OPENQASM 2.0; qreg q[2]; cx q,q;`,       // register-wide unsupported
		`OPENQASM 2.0; qreg q[2]; rz(pi// q[0];`, // broken expr
		`OPENQASM 2.0; qreg q[2]; qreg q[2];`,    // duplicate
		`OPENQASM 2.0; qreg q[2]; cx q[0],q[0];`, // duplicate operand
		`OPENQASM 2.0; qreg q[2]; rz(1/0) q[0];`, // division by zero
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestRoundTripSemantics(t *testing.T) {
	// Export → Parse must preserve the circuit unitary.
	for _, name := range []string{"qaoa", "simon"} {
		spec, _ := bench.ByName(name)
		orig := spec.Build()
		if orig.NumQubits > 10 {
			continue
		}
		back, err := Parse(Export(orig))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		uo, err := orig.Unitary(10)
		if err != nil {
			t.Fatal(err)
		}
		ub, err := back.Unitary(10)
		if err != nil {
			t.Fatal(err)
		}
		if linalg.GlobalPhaseDistance(uo, ub) > 1e-8 {
			t.Errorf("%s: round trip changed the unitary", name)
		}
	}
}

func TestRoundTripSymbolic(t *testing.T) {
	spec, _ := bench.ByName("qaoa")
	_ = spec
	sym := bench.QAOAMaxcutSymbolic(4)
	back, err := Parse(Export(sym))
	if err != nil {
		t.Fatal(err)
	}
	symbols := 0
	for _, g := range back.Gates {
		if g.IsSymbolic() {
			symbols++
		}
	}
	want := 0
	for _, g := range sym.Gates {
		if g.IsSymbolic() {
			want++
		}
	}
	if symbols != want {
		t.Errorf("symbolic gates %d, want %d", symbols, want)
	}
}

func TestExportReadable(t *testing.T) {
	spec, _ := bench.ByName("qft")
	out := Export(spec.Build())
	if !strings.Contains(out, "OPENQASM 2.0;") || !strings.Contains(out, "qreg q[16];") {
		t.Error("header missing")
	}
	if !strings.Contains(out, "pi/2") {
		t.Error("angles should render symbolically where possible")
	}
}

func TestGateNameMapping(t *testing.T) {
	src := `OPENQASM 2.0; qreg q[3]; CX q[0],q[1]; p(pi) q[0]; U(0,0,pi) q[2];`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Name != "cx" || c.Gates[1].Name != "u1" || c.Gates[2].Name != "u3" {
		t.Errorf("name mapping wrong: %v", c.Gates)
	}
}

func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add(`OPENQASM 2.0; qreg q[3]; ccx q[0],q[1],q[2];`)
	f.Add(`qreg a[1]; rz(-3*pi/4) a[0];`)
	f.Fuzz(func(t *testing.T, src string) {
		// Must never panic; errors are fine.
		c, err := Parse(src)
		if err == nil && c != nil {
			// Exported output of a successful parse must re-parse.
			if _, err2 := Parse(Export(c)); err2 != nil {
				t.Fatalf("export of valid circuit does not re-parse: %v", err2)
			}
		}
	})
}
