// Package qasm imports and exports a practical subset of OpenQASM 2.0 —
// the interchange format of the benchmark suites the paper draws on
// (RevLib exports, ScaffCC output, Qiskit dumps). Supported constructs:
//
//	OPENQASM 2.0; / include "qelib1.inc";   (header, ignored include)
//	qreg name[n]; creg name[n];
//	<gate>(<expr>,…) reg[i], reg[j], …;     (gate application)
//	barrier …; measure …;                   (accepted, dropped)
//	// comments
//
// Parameter expressions support pi, numeric literals, + - * / and unary
// minus (covering qelib-style angles like -3*pi/4). Gate names are mapped
// onto the library in internal/quantum; unknown gates are an error listing
// the offending line.
package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"paqoc/internal/circuit"
	"paqoc/internal/quantum"
)

// Parse reads OpenQASM 2.0 source into a circuit. Multiple quantum
// registers are laid out contiguously in declaration order.
func Parse(src string) (*circuit.Circuit, error) {
	p := &parser{regs: map[string]reg{}}
	// Strip comments, split on ';'.
	var clean strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		clean.WriteString(line)
		clean.WriteString(" ")
	}
	stmts := strings.Split(clean.String(), ";")
	for no, raw := range stmts {
		stmt := strings.TrimSpace(raw)
		if stmt == "" {
			continue
		}
		if err := p.statement(stmt); err != nil {
			return nil, fmt.Errorf("qasm: statement %d (%q): %v", no+1, shorten(stmt), err)
		}
	}
	if p.c == nil {
		return nil, fmt.Errorf("qasm: no qreg declared")
	}
	return p.c, nil
}

type reg struct {
	offset, size int
}

type parser struct {
	regs  map[string]reg
	total int
	c     *circuit.Circuit
	// pending gates seen before all qregs are declared (qasm requires
	// declaration before use, so this stays empty in valid programs).
}

func (p *parser) statement(stmt string) error {
	switch {
	case strings.HasPrefix(stmt, "OPENQASM"),
		strings.HasPrefix(stmt, "include"),
		strings.HasPrefix(stmt, "barrier"),
		strings.HasPrefix(stmt, "measure"),
		strings.HasPrefix(stmt, "creg"):
		return nil
	case strings.HasPrefix(stmt, "qreg"):
		return p.qreg(stmt)
	default:
		return p.gate(stmt)
	}
}

func (p *parser) qreg(stmt string) error {
	if p.c != nil {
		return fmt.Errorf("qreg after first gate is unsupported")
	}
	rest := strings.TrimSpace(strings.TrimPrefix(stmt, "qreg"))
	open := strings.IndexByte(rest, '[')
	close := strings.IndexByte(rest, ']')
	if open < 0 || close < open {
		return fmt.Errorf("malformed qreg")
	}
	name := strings.TrimSpace(rest[:open])
	n, err := strconv.Atoi(strings.TrimSpace(rest[open+1 : close]))
	if err != nil || n <= 0 {
		return fmt.Errorf("bad qreg size")
	}
	if _, dup := p.regs[name]; dup {
		return fmt.Errorf("duplicate qreg %q", name)
	}
	p.regs[name] = reg{offset: p.total, size: n}
	p.total += n
	return nil
}

func (p *parser) gate(stmt string) error {
	if p.c == nil {
		if p.total == 0 {
			return fmt.Errorf("gate before qreg")
		}
		p.c = circuit.New(p.total)
	}
	head := stmt
	var params []float64
	var symbol string
	if open := strings.IndexByte(stmt, '('); open >= 0 {
		close := matchParen(stmt, open)
		if close < 0 {
			return fmt.Errorf("unbalanced parentheses")
		}
		head = stmt[:open] + stmt[close+1:]
		for _, expr := range splitTop(stmt[open+1:close], ',') {
			v, sym, err := evalExpr(strings.TrimSpace(expr))
			if err != nil {
				return err
			}
			if sym != "" {
				symbol = sym
			} else {
				params = append(params, v)
			}
		}
	}
	fields := strings.Fields(head)
	if len(fields) < 2 {
		return fmt.Errorf("gate needs operands")
	}
	name := mapGateName(fields[0])
	if quantum.GateArity(name) == 0 {
		return fmt.Errorf("unsupported gate %q", fields[0])
	}
	operands := strings.Join(fields[1:], "")
	var qubits []int
	for _, op := range strings.Split(operands, ",") {
		q, err := p.resolve(strings.TrimSpace(op))
		if err != nil {
			return err
		}
		qubits = append(qubits, q)
	}
	g := circuit.Gate{Name: name, Qubits: qubits, Params: params, Symbol: symbol}
	return safeAdd(p.c, g)
}

func (p *parser) resolve(op string) (int, error) {
	open := strings.IndexByte(op, '[')
	close := strings.IndexByte(op, ']')
	if open < 0 || close < open {
		return 0, fmt.Errorf("operand %q needs an index (register-wide gates unsupported)", op)
	}
	r, ok := p.regs[strings.TrimSpace(op[:open])]
	if !ok {
		return 0, fmt.Errorf("unknown register in %q", op)
	}
	idx, err := strconv.Atoi(op[open+1 : close])
	if err != nil || idx < 0 || idx >= r.size {
		return 0, fmt.Errorf("index out of range in %q", op)
	}
	return r.offset + idx, nil
}

// mapGateName translates qelib names onto the internal library.
func mapGateName(name string) string {
	switch name {
	case "CX":
		return "cx"
	case "U", "u":
		return "u3"
	case "p", "phase":
		return "u1"
	case "toffoli":
		return "ccx"
	}
	return name
}

// evalExpr evaluates a qelib angle expression; a bare identifier (other
// than pi) is treated as a symbolic parameter.
func evalExpr(expr string) (float64, string, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, "", fmt.Errorf("empty parameter")
	}
	if isIdentifier(expr) && expr != "pi" {
		return 0, expr, nil
	}
	v, err := (&exprParser{src: expr}).parse()
	if err != nil {
		return 0, "", fmt.Errorf("bad expression %q: %v", expr, err)
	}
	return v, "", nil
}

func isIdentifier(s string) bool {
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

// exprParser is a tiny recursive-descent evaluator: expr := term (±term)*,
// term := factor (*/factor)*, factor := -factor | (expr) | pi | number.
type exprParser struct {
	src string
	pos int
}

func (e *exprParser) parse() (float64, error) {
	v, err := e.expr()
	if err != nil {
		return 0, err
	}
	e.skipSpace()
	if e.pos != len(e.src) {
		return 0, fmt.Errorf("trailing input at %d", e.pos)
	}
	return v, nil
}

func (e *exprParser) expr() (float64, error) {
	v, err := e.term()
	if err != nil {
		return 0, err
	}
	for {
		e.skipSpace()
		switch e.peek() {
		case '+':
			e.pos++
			t, err := e.term()
			if err != nil {
				return 0, err
			}
			v += t
		case '-':
			e.pos++
			t, err := e.term()
			if err != nil {
				return 0, err
			}
			v -= t
		default:
			return v, nil
		}
	}
}

func (e *exprParser) term() (float64, error) {
	v, err := e.factor()
	if err != nil {
		return 0, err
	}
	for {
		e.skipSpace()
		switch e.peek() {
		case '*':
			e.pos++
			f, err := e.factor()
			if err != nil {
				return 0, err
			}
			v *= f
		case '/':
			e.pos++
			f, err := e.factor()
			if err != nil {
				return 0, err
			}
			if f == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			v /= f
		default:
			return v, nil
		}
	}
}

func (e *exprParser) factor() (float64, error) {
	e.skipSpace()
	switch {
	case e.peek() == '-':
		e.pos++
		v, err := e.factor()
		return -v, err
	case e.peek() == '(':
		e.pos++
		v, err := e.expr()
		if err != nil {
			return 0, err
		}
		e.skipSpace()
		if e.peek() != ')' {
			return 0, fmt.Errorf("missing )")
		}
		e.pos++
		return v, nil
	case strings.HasPrefix(e.src[e.pos:], "pi"):
		e.pos += 2
		return math.Pi, nil
	default:
		start := e.pos
		for e.pos < len(e.src) {
			c := e.src[e.pos]
			if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
				((c == '+' || c == '-') && e.pos > start && (e.src[e.pos-1] == 'e' || e.src[e.pos-1] == 'E')) {
				e.pos++
			} else {
				break
			}
		}
		if start == e.pos {
			return 0, fmt.Errorf("expected number at %d", start)
		}
		return strconv.ParseFloat(e.src[start:e.pos], 64)
	}
}

func (e *exprParser) peek() byte {
	if e.pos >= len(e.src) {
		return 0
	}
	return e.src[e.pos]
}

func (e *exprParser) skipSpace() {
	for e.pos < len(e.src) && (e.src[e.pos] == ' ' || e.src[e.pos] == '\t') {
		e.pos++
	}
}

// Export renders a circuit as OpenQASM 2.0 with a single register q.
// Symbolic parameters export as bare identifiers (re-importable by Parse).
func Export(c *circuit.Circuit) string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	for _, g := range c.Gates {
		name := g.Name
		switch name {
		case "u1":
			name = "p"
		}
		b.WriteString(name)
		if g.Symbol != "" {
			fmt.Fprintf(&b, "(%s)", g.Symbol)
		} else if len(g.Params) > 0 {
			parts := make([]string, len(g.Params))
			for i, v := range g.Params {
				parts[i] = formatAngle(v)
			}
			fmt.Fprintf(&b, "(%s)", strings.Join(parts, ","))
		}
		b.WriteString(" ")
		qs := make([]string, len(g.Qubits))
		for i, q := range g.Qubits {
			qs[i] = fmt.Sprintf("q[%d]", q)
		}
		b.WriteString(strings.Join(qs, ","))
		b.WriteString(";\n")
	}
	return b.String()
}

// formatAngle renders common multiples of pi symbolically for readability.
func formatAngle(v float64) string {
	for _, cand := range []struct {
		val float64
		str string
	}{
		{math.Pi, "pi"}, {-math.Pi, "-pi"},
		{math.Pi / 2, "pi/2"}, {-math.Pi / 2, "-pi/2"},
		{math.Pi / 4, "pi/4"}, {-math.Pi / 4, "-pi/4"},
		{math.Pi / 8, "pi/8"}, {-math.Pi / 8, "-pi/8"},
	} {
		if math.Abs(v-cand.val) < 1e-12 {
			return cand.str
		}
	}
	return strconv.FormatFloat(v, 'g', 12, 64)
}

func matchParen(s string, open int) int {
	depth := 0
	for i := open; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// splitTop splits on sep at parenthesis depth zero.
func splitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func safeAdd(c *circuit.Circuit, g circuit.Gate) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	c.AddGate(g)
	return nil
}

func shorten(s string) string {
	if len(s) > 60 {
		return s[:60] + "…"
	}
	return s
}
