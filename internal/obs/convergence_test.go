package obs

import (
	"math"
	"testing"
)

func TestConvergenceTrace(t *testing.T) {
	tr := &ConvergenceTrace{}
	for i := 0; i < 5; i++ {
		tr.Record(ConvergencePoint{Iter: i, Fidelity: 0.9 + float64(i)*0.01, GradNorm: 1.0 / float64(i+1)})
	}
	if tr.Len() != 5 {
		t.Fatalf("len = %d, want 5", tr.Len())
	}
	if f := tr.Final(); f.Iter != 4 || math.Abs(f.Fidelity-0.94) > 1e-12 {
		t.Errorf("final = %+v", f)
	}
	// Fidelity still climbing 0.01/iter: not stalled at eps below that.
	if tr.Stalled(3, 0.001) {
		t.Error("improving trace reported as stalled")
	}
	// Plateau: three more iterations with no gain.
	last := tr.Final().Fidelity
	for i := 5; i < 8; i++ {
		tr.Record(ConvergencePoint{Iter: i, Fidelity: last})
	}
	if !tr.Stalled(3, 0.001) {
		t.Error("flat trace not reported as stalled")
	}
	// Window larger than the trace never reports stalled.
	if tr.Stalled(100, 0.001) || tr.Stalled(0, 0.001) {
		t.Error("degenerate windows must report not-stalled")
	}
}

func TestConvergenceTraceNil(t *testing.T) {
	var tr *ConvergenceTrace
	tr.Record(ConvergencePoint{Iter: 1})
	if tr.Len() != 0 {
		t.Error("nil trace must stay empty")
	}
	if f := tr.Final(); f != (ConvergencePoint{}) {
		t.Errorf("nil Final = %+v, want zero", f)
	}
	if tr.Stalled(1, 1) {
		t.Error("nil trace must not report stalled")
	}
}
