package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer collects finished spans. Safe for concurrent use; spans from
// concurrent goroutines interleave on the shared timeline.
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	spans []SpanRecord
}

// SpanRecord is one finished span on the tracer's timeline.
type SpanRecord struct {
	Name  string
	Path  string // slash-joined ancestry, e.g. "paqoc.compile/paqoc.optimize"
	Start time.Duration
	Dur   time.Duration
	Attrs []Attr
}

// Attr is a span attribute tag.
type Attr struct {
	Key string
	Val any
}

// Span is an in-flight span. A nil *Span is a valid no-op target, so
// callers never need to guard instrumentation sites.
type Span struct {
	tracer *Tracer
	name   string
	path   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// NewTracer returns a tracer whose timeline starts now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	metricsKey
	loggerKey
	eventsKey
)

// WithTracer installs the tracer into the context.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithMetrics installs the registry into the context.
func WithMetrics(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, metricsKey, r)
}

// MetricsFrom returns the context's registry, or nil — and a nil registry
// hands out nil (no-op) instruments, so call sites never branch.
func MetricsFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(metricsKey).(*Registry)
	return r
}

// StartSpan opens a span named name nested under the context's current
// span, returning a derived context carrying the new span. Without a
// tracer in the context it returns (ctx, nil) and costs two map lookups.
// End the returned span with Span.End (nil-safe).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	path := name
	if parent, _ := ctx.Value(spanKey).(*Span); parent != nil {
		path = parent.path + "/" + name
	}
	s := &Span{tracer: t, name: name, path: path, start: time.Now()}
	return context.WithValue(ctx, spanKey, s), s
}

// SetAttr tags the span with a key/value pair. No-op on nil.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
}

// End finishes the span and records it on the tracer. Ending twice (or
// ending a nil span) is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	rec := SpanRecord{
		Name:  s.name,
		Path:  s.path,
		Start: s.start.Sub(s.tracer.epoch),
		Dur:   end.Sub(s.start),
		Attrs: attrs,
	}
	s.tracer.mu.Lock()
	s.tracer.spans = append(s.tracer.spans, rec)
	s.tracer.mu.Unlock()
}

// Spans returns a copy of the finished spans in completion order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// chromeEvent is one Chrome trace-event-format "complete" event. The
// about:tracing and Perfetto viewers infer nesting from duration
// containment within a (pid, tid) track.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes all finished spans in the Chrome trace event
// format (load the file at chrome://tracing or ui.perfetto.dev).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "paqoc",
			Ph:   "X",
			Ts:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  1,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Val
			}
		}
		events = append(events, ev)
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// StageSummary aggregates spans sharing a path: how often the stage ran
// and how much wall time it consumed.
type StageSummary struct {
	Path  string
	Count int
	Total time.Duration
}

// Summary aggregates finished spans by path, ordered by first start time,
// for the per-stage breakdown the CLI prints on completion.
func (t *Tracer) Summary() []StageSummary {
	spans := t.Spans()
	first := map[string]time.Duration{}
	agg := map[string]*StageSummary{}
	for _, s := range spans {
		a := agg[s.Path]
		if a == nil {
			a = &StageSummary{Path: s.Path}
			agg[s.Path] = a
			first[s.Path] = s.Start
		}
		a.Count++
		a.Total += s.Dur
		if s.Start < first[s.Path] {
			first[s.Path] = s.Start
		}
	}
	out := make([]StageSummary, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if first[out[i].Path] != first[out[j].Path] {
			return first[out[i].Path] < first[out[j].Path]
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// WriteSummary renders the per-stage table: one line per span path,
// indented by nesting depth, with run counts and cumulative wall time.
func (t *Tracer) WriteSummary(w io.Writer) {
	for _, s := range t.Summary() {
		depth := 0
		for _, c := range s.Path {
			if c == '/' {
				depth++
			}
		}
		name := s.Path
		if i := lastSlash(s.Path); i >= 0 {
			name = s.Path[i+1:]
		}
		fmt.Fprintf(w, "  %-*s%-*s %6d× %12s\n", 2*depth, "", 36-2*depth, name, s.Count, s.Total.Round(time.Microsecond))
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
