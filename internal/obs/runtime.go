package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// RegisterRuntimeCollector wires Go runtime health gauges into the
// registry, sampled on every Snapshot (i.e. on every metrics scrape)
// rather than on a timer — idle servers do no sampling work, and scrapes
// always see fresh values. No-op on a nil registry.
//
// Gauges: runtime.goroutines, runtime.heap_bytes, runtime.heap_objects,
// runtime.gc_cycles, and runtime.gc_pause_p50_ms / runtime.gc_pause_max_ms
// from the runtime/metrics pause-latency distribution.
func RegisterRuntimeCollector(r *Registry) {
	if r == nil {
		return
	}
	r.SetHelp("runtime.goroutines", "Number of live goroutines at scrape time.")
	r.SetHelp("runtime.heap_bytes", "Bytes of allocated heap objects.")
	r.SetHelp("runtime.heap_objects", "Number of allocated heap objects.")
	r.SetHelp("runtime.gc_cycles", "Completed GC cycles since process start.")
	r.SetHelp("runtime.gc_pause_p50_ms", "Median stop-the-world GC pause, milliseconds.")
	r.SetHelp("runtime.gc_pause_max_ms", "Longest observed stop-the-world GC pause, milliseconds.")

	samples := []metrics.Sample{
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/heap/objects:objects"},
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/sched/pauses/total/gc:seconds"},
	}
	r.AddCollector(func() {
		r.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
		metrics.Read(samples)
		for _, s := range samples {
			switch s.Name {
			case "/memory/classes/heap/objects:bytes":
				if s.Value.Kind() == metrics.KindUint64 {
					r.Gauge("runtime.heap_bytes").Set(float64(s.Value.Uint64()))
				}
			case "/gc/heap/objects:objects":
				if s.Value.Kind() == metrics.KindUint64 {
					r.Gauge("runtime.heap_objects").Set(float64(s.Value.Uint64()))
				}
			case "/gc/cycles/total:gc-cycles":
				if s.Value.Kind() == metrics.KindUint64 {
					r.Gauge("runtime.gc_cycles").Set(float64(s.Value.Uint64()))
				}
			case "/sched/pauses/total/gc:seconds":
				if s.Value.Kind() != metrics.KindFloat64Histogram {
					continue
				}
				h := s.Value.Float64Histogram()
				if p50 := histQuantile(h, 0.5); p50 >= 0 {
					r.Gauge("runtime.gc_pause_p50_ms").Set(p50 * 1000)
				}
				if max := histMaxBucket(h); max >= 0 {
					r.Gauge("runtime.gc_pause_max_ms").Set(max * 1000)
				}
			}
		}
	})
}

// histQuantile estimates a quantile from a runtime/metrics histogram,
// returning the upper bound of the bucket holding the quantile. Returns -1
// when the histogram is empty.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return -1
	}
	target := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= target {
			// Buckets has len(Counts)+1 boundaries; bucket i spans
			// Buckets[i]..Buckets[i+1].
			return finiteBound(h.Buckets, i+1)
		}
	}
	return finiteBound(h.Buckets, len(h.Buckets)-1)
}

// finiteBound returns the boundary at i, stepping down past a +Inf tail
// (runtime histograms end in an open bucket).
func finiteBound(bounds []float64, i int) float64 {
	if i >= len(bounds) {
		i = len(bounds) - 1
	}
	for i > 0 && math.IsInf(bounds[i], 1) {
		i--
	}
	return bounds[i]
}

// histMaxBucket returns the upper bound of the highest non-empty bucket,
// or -1 when the histogram is empty.
func histMaxBucket(h *metrics.Float64Histogram) float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] == 0 {
			continue
		}
		return finiteBound(h.Buckets, i+1)
	}
	return -1
}
