package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Exercise both the fast read path and the create path by
			// fetching the counter inside the goroutine.
			c := r.Counter("test.count")
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("test.count").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGaugeMaxConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := r.Gauge("test.peak")
			for i := 0; i < 1000; i++ {
				g.Max(float64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Gauge("test.peak").Value(); got != 7999 {
		t.Errorf("gauge max = %g, want 7999", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{10, 100, 1000}
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Histogram("test.hist", bounds)
			for i := 0; i < perWorker; i++ {
				// Integer-valued samples keep the CAS-accumulated float
				// sum exact, so the total is checkable without tolerance.
				h.Observe(float64(i % 4 * 50)) // 0, 50, 100, 150
			}
		}(w)
	}
	wg.Wait()

	s := r.Snapshot().Histograms["test.hist"]
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	if want := float64(workers * perWorker / 4 * (0 + 50 + 100 + 150)); s.Sum != want {
		t.Errorf("sum = %g, want %g", s.Sum, want)
	}
	if s.Min != 0 || s.Max != 150 {
		t.Errorf("min/max = %g/%g, want 0/150", s.Min, s.Max)
	}
	// Buckets: le=10 gets the 0s; le=100 gets 50s and 100s (bounds are
	// inclusive upper limits); le=1000 gets the 150s; +Inf stays empty.
	wantCounts := []int64{workers * perWorker / 4, workers * perWorker / 2, workers * perWorker / 4, 0}
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d (le=%g): count = %d, want %d", i, b.Le, b.Count, wantCounts[i])
		}
	}
	if last := s.Buckets[len(s.Buckets)-1]; !math.IsInf(last.Le, 1) {
		t.Errorf("last bucket le = %g, want +Inf", last.Le)
	}
}

func TestHistogramDefaultBucketsAndEmpty(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty", nil)
	s := r.Snapshot().Histograms["empty"]
	if len(s.Buckets) != len(DefaultBuckets)+1 {
		t.Errorf("buckets = %d, want %d", len(s.Buckets), len(DefaultBuckets)+1)
	}
	// An untouched histogram must report zero (not NaN) min/max.
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean() != 0 {
		t.Errorf("empty histogram: count=%d min=%g max=%g mean=%g", s.Count, s.Min, s.Max, s.Mean())
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// None of these may panic.
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Max(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("grape.iterations").Add(42)
	r.Gauge("grape.best_fidelity").Set(0.9987)
	h := r.Histogram("merge.score", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(500) // lands in the +Inf bucket

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("round-trip unmarshal: %v\n%s", err, buf.String())
	}
	if got.Counters["grape.iterations"] != 42 {
		t.Errorf("counter = %d, want 42", got.Counters["grape.iterations"])
	}
	if got.Gauges["grape.best_fidelity"] != 0.9987 {
		t.Errorf("gauge = %g, want 0.9987", got.Gauges["grape.best_fidelity"])
	}
	hs, ok := got.Histograms["merge.score"]
	if !ok {
		t.Fatal("histogram missing after round trip")
	}
	if hs.Count != 3 || hs.Sum != 505.5 || hs.Min != 0.5 || hs.Max != 500 {
		t.Errorf("histogram = %+v", hs)
	}
	// The overflow bucket's "+Inf" string bound must decode back to +Inf.
	last := hs.Buckets[len(hs.Buckets)-1]
	if !math.IsInf(last.Le, 1) || last.Count != 1 {
		t.Errorf("overflow bucket = %+v, want le=+Inf count=1", last)
	}
}

func TestWriteTextSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.second").Inc()
	r.Counter("a.first").Add(2)
	var buf bytes.Buffer
	r.Snapshot().WriteText(&buf)
	out := buf.String()
	if ia, ib := bytes.Index(buf.Bytes(), []byte("a.first")), bytes.Index(buf.Bytes(), []byte("b.second")); ia < 0 || ib < 0 || ia > ib {
		t.Errorf("text output not sorted:\n%s", out)
	}
}

// BenchmarkDisabledCounter guards the claim that instrumentation is free
// when observability is off: a nil counter's Add must not allocate.
func BenchmarkDisabledCounter(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("x", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}
