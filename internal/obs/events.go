package obs

import (
	"context"
	"sync"
	"time"
)

// Event is one entry on a job's live event stream: a pipeline stage
// transition, a sampled GRAPE convergence point, or a job state change.
// Seq is assigned by the ring and strictly increases per job, so clients
// can detect drops.
type Event struct {
	Seq   uint64  `json:"seq"`
	Type  string  `json:"type"` // "stage" | "convergence" | "state"
	TsMs  float64 `json:"ts_ms"`
	Stage string  `json:"stage,omitempty"` // stage events: stage name
	State string  `json:"state,omitempty"` // state events: new job state
	Gate  string  `json:"gate,omitempty"`  // convergence events: gate label

	// Backend names the device profile a job compiles against (state
	// events published by the job lifecycle; empty elsewhere).
	Backend string `json:"backend,omitempty"`

	// Convergence payload (convergence events only).
	Iter     int     `json:"iter,omitempty"`
	Fidelity float64 `json:"fidelity,omitempty"`
	GradNorm float64 `json:"grad_norm,omitempty"`

	// Stage payload: duration of a completed stage (0 on entry events).
	DurMs float64 `json:"dur_ms,omitempty"`

	Err string `json:"error,omitempty"` // terminal failure message
}

// Event type tags.
const (
	EventStage       = "stage"
	EventConvergence = "convergence"
	EventState       = "state"
)

// EventRing is a bounded publish/subscribe buffer for one job's events.
// Publishers (pipeline stages, GRAPE iteration hooks) append without
// blocking; subscribers (SSE handlers) receive the retained history plus
// live events. When the ring is full the oldest events are dropped —
// Dropped() reports how many — and a subscriber whose channel is full
// misses events rather than stalling the compilation.
//
// All channel sends and closes happen under the ring's mutex, so Publish,
// Subscribe, cancel, and Close never race a send against a close.
type EventRing struct {
	epoch time.Time

	mu      sync.Mutex
	buf     []Event // ring storage, len == cap once full
	start   int     // index of oldest event
	count   int     // events currently retained
	seq     uint64
	dropped uint64
	closed  bool
	subs    map[*eventSub]struct{}

	// onPublish, when set, observes every event after it is assigned a
	// sequence number (used for lifecycle logging). Called under the ring
	// mutex — keep it cheap and never call back into the ring.
	onPublish func(Event)
}

type eventSub struct {
	ch chan Event
}

// NewEventRing returns a ring retaining at most capacity events (minimum
// 16). A nil *EventRing is a valid no-op publisher.
func NewEventRing(capacity int) *EventRing {
	if capacity < 16 {
		capacity = 16
	}
	return &EventRing{
		epoch: time.Now(),
		buf:   make([]Event, 0, capacity),
		subs:  make(map[*eventSub]struct{}),
	}
}

// OnPublish installs the per-event observer hook. Must be set before the
// ring is shared with publishers.
func (r *EventRing) OnPublish(fn func(Event)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onPublish = fn
	r.mu.Unlock()
}

// Publish appends an event, stamping Seq and TsMs, and fans it out to
// subscribers. No-op on a nil or closed ring.
func (r *EventRing) Publish(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.seq++
	ev.Seq = r.seq
	ev.TsMs = float64(time.Since(r.epoch)) / float64(time.Millisecond)

	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		r.count++
	} else {
		if r.count == len(r.buf) {
			// Full: overwrite the oldest slot.
			r.buf[r.start] = ev
			r.start = (r.start + 1) % len(r.buf)
			r.dropped++
		} else {
			r.buf[(r.start+r.count)%len(r.buf)] = ev
			r.count++
		}
	}
	if r.onPublish != nil {
		r.onPublish(ev)
	}
	for s := range r.subs {
		select {
		case s.ch <- ev:
		default:
			// Slow subscriber: skip rather than block the pipeline.
		}
	}
}

// Subscribe returns the retained history and a channel of subsequent live
// events, atomically — no event falls between the two. The channel is
// closed when the ring closes (job reaches a terminal state) and must be
// released with cancel when the subscriber leaves early. On a nil ring it
// returns (nil, nil, no-op).
func (r *EventRing) Subscribe(buffer int) (history []Event, live <-chan Event, cancel func()) {
	if r == nil {
		return nil, nil, func() {}
	}
	if buffer < 1 {
		buffer = 64
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	history = make([]Event, 0, r.count)
	for i := 0; i < r.count; i++ {
		history = append(history, r.buf[(r.start+i)%len(r.buf)])
	}
	if r.closed {
		ch := make(chan Event)
		close(ch)
		return history, ch, func() {}
	}
	s := &eventSub{ch: make(chan Event, buffer)}
	r.subs[s] = struct{}{}
	return history, s.ch, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.subs[s]; ok {
			delete(r.subs, s)
			close(s.ch)
		}
	}
}

// Close marks the stream complete and closes all subscriber channels.
// Publish after Close is a no-op; Close is idempotent.
func (r *EventRing) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for s := range r.subs {
		delete(r.subs, s)
		close(s.ch)
	}
}

// Dropped returns how many events were evicted from the ring's history.
func (r *EventRing) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// PublishStage records a completed pipeline stage with its wall time.
func (r *EventRing) PublishStage(stage string, dur time.Duration) {
	r.Publish(Event{Type: EventStage, Stage: stage, DurMs: float64(dur) / float64(time.Millisecond)})
}

// PublishConvergence records a sampled GRAPE iteration for one gate.
func (r *EventRing) PublishConvergence(gate string, p ConvergencePoint) {
	r.Publish(Event{Type: EventConvergence, Gate: gate, Iter: p.Iter, Fidelity: p.Fidelity, GradNorm: p.GradNorm})
}

// PublishState records a job lifecycle transition; errMsg accompanies the
// failed state.
func (r *EventRing) PublishState(state, errMsg string) {
	r.Publish(Event{Type: EventState, State: state, Err: errMsg})
}

// WithEvents returns a context carrying the event ring; EventsFrom
// retrieves it (nil when absent — and a nil ring is a no-op publisher, so
// pipeline code publishes unconditionally).
func WithEvents(ctx context.Context, r *EventRing) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, eventsKey, r)
}

// EventsFrom returns the event ring carried by ctx, or nil.
func EventsFrom(ctx context.Context) *EventRing {
	r, _ := ctx.Value(eventsKey).(*EventRing)
	return r
}
