// Package obs is the observability layer of the PAQOC pipeline: a
// zero-dependency metrics registry (atomic counters, gauges, bucketed
// histograms with snapshot/export), a tracing layer (nestable spans with a
// Chrome about:tracing JSON export), and a GRAPE convergence recorder.
//
// Everything is nil-safe: a nil *Registry hands out nil instruments, and
// every method on a nil instrument or nil *Span is a no-op, so instrumented
// hot paths pay only a nil check when observability is disabled. Context
// plumbing (WithMetrics/WithTracer, MetricsFrom/StartSpan) lets the
// pipeline thread instrumentation through without new required parameters.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 sample.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adjusts the gauge by delta and returns the new value, so
// several producers (e.g. concurrently live worker pools) can share one
// gauge without clobbering each other's Set calls. Returns 0 on nil.
func (g *Gauge) Add(delta float64) float64 {
	if g == nil {
		return 0
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return v
		}
	}
}

// Max raises the gauge to v if v exceeds the stored value.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current sample (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates float64 observations into fixed buckets. All
// updates are atomic; Observe is safe for concurrent use.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf bucket follows
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	min    atomic.Uint64
	max    atomic.Uint64
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.min.Load()
		if old != initSentinel && math.Float64frombits(old) <= v {
			break
		}
		if h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if old != initSentinel && math.Float64frombits(old) >= v {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// initSentinel marks min/max as unset (NaN bits never match a real sample).
var initSentinel = math.Float64bits(math.NaN())

// Registry owns named instruments. Lookup is guarded by a RWMutex; updates
// on the returned instruments are lock-free. A nil *Registry hands out nil
// instruments, making every downstream update a no-op.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	cvecs  map[string]*CounterVec
	gvecs  map[string]*GaugeVec
	hvecs  map[string]*HistogramVec
	help   map[string]string
	// collectors run at the top of Snapshot, before values are frozen —
	// the hook the runtime collector uses to sample on scrape rather than
	// on a timer. Collectors must not call Snapshot themselves.
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
		cvecs:  map[string]*CounterVec{},
		gvecs:  map[string]*GaugeVec{},
		hvecs:  map[string]*HistogramVec{},
		help:   map[string]string{},
	}
}

// SetHelp registers a help string for a metric family, emitted as the
// # HELP line of the Prometheus exposition. No-op on a nil registry.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// AddCollector registers a function invoked at the top of every Snapshot,
// before instrument values are frozen. Collectors sample external state
// (runtime stats, pool sizes) into gauges on scrape. No-op on nil.
func (r *Registry) AddCollector(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// DefaultBuckets suit dt-scale latencies and iteration counts.
var DefaultBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (DefaultBuckets when bounds is empty). Later
// calls ignore bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if len(bounds) == 0 {
			bounds = DefaultBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = newHistogram(bs)
		r.hists[name] = h
	}
	return h
}

// newHistogram builds a histogram over already-sorted bucket bounds.
func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	h.min.Store(initSentinel)
	h.max.Store(initSentinel)
	return h
}

// Bucket is one histogram bucket in a snapshot: the count of samples with
// value ≤ Le (Le is +Inf for the overflow bucket, serialized as "+Inf").
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is the frozen state of one histogram. P50/P90/P99 are
// interpolated streaming quantiles, precomputed at snapshot time.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	P50     float64  `json:"p50,omitempty"`
	P90     float64  `json:"p90,omitempty"`
	P99     float64  `json:"p99,omitempty"`
	Buckets []Bucket `json:"buckets"`
}

// Mean returns Sum/Count (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket where the cumulative count crosses q·Count, the
// standard fixed-bucket estimator. With log-spaced bounds (LogBuckets) the
// relative error is bounded by the bucket ratio. Samples beyond the last
// finite bound resolve to the observed Max; results are clamped to
// [Min, Max] so small-sample quantiles stay inside the observed range.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	target := q * float64(h.Count)
	var cum int64
	lower := 0.0
	for _, b := range h.Buckets {
		next := cum + b.Count
		if float64(next) >= target && b.Count > 0 {
			if math.IsInf(b.Le, 1) {
				break // mass beyond the last finite bound: report Max
			}
			v := lower + (b.Le-lower)*(target-float64(cum))/float64(b.Count)
			return h.clamp(v)
		}
		cum = next
		if !math.IsInf(b.Le, 1) {
			lower = b.Le
		}
	}
	return h.Max
}

func (h HistogramSnapshot) clamp(v float64) float64 {
	if v < h.Min {
		return h.Min
	}
	if v > h.Max {
		return h.Max
	}
	return v
}

// CounterSeries is one labeled counter sample.
type CounterSeries struct {
	Values []string `json:"values"`
	Value  int64    `json:"value"`
}

// GaugeSeries is one labeled gauge sample.
type GaugeSeries struct {
	Values []string `json:"values"`
	Value  float64  `json:"value"`
}

// HistogramSeries is one labeled histogram snapshot.
type HistogramSeries struct {
	Values []string `json:"values"`
	HistogramSnapshot
}

// LabeledCounterSnapshot is the frozen state of one counter family.
type LabeledCounterSnapshot struct {
	Labels []string        `json:"labels"`
	Series []CounterSeries `json:"series"`
}

// LabeledGaugeSnapshot is the frozen state of one gauge family.
type LabeledGaugeSnapshot struct {
	Labels []string      `json:"labels"`
	Series []GaugeSeries `json:"series"`
}

// LabeledHistogramSnapshot is the frozen state of one histogram family.
type LabeledHistogramSnapshot struct {
	Labels []string          `json:"labels"`
	Series []HistogramSeries `json:"series"`
}

// Snapshot is a consistent-enough point-in-time copy of a registry,
// serializable to JSON and renderable as a text table.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Labeled families; omitted from the JSON when no vecs are registered,
	// so snapshots of unlabeled registries serialize exactly as before.
	CounterVecs   map[string]LabeledCounterSnapshot   `json:"counter_vecs,omitempty"`
	GaugeVecs     map[string]LabeledGaugeSnapshot     `json:"gauge_vecs,omitempty"`
	HistogramVecs map[string]LabeledHistogramSnapshot `json:"histogram_vecs,omitempty"`
	// help carries the registered # HELP strings for WritePrometheus.
	help map[string]string
}

// snapshotHistogram freezes one histogram's state.
func snapshotHistogram(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.count.Load()}
	hs.Sum = math.Float64frombits(h.sum.Load())
	if mn := h.min.Load(); mn != initSentinel {
		hs.Min = math.Float64frombits(mn)
	}
	if mx := h.max.Load(); mx != initSentinel {
		hs.Max = math.Float64frombits(mx)
	}
	for i := range h.counts {
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		hs.Buckets = append(hs.Buckets, Bucket{Le: le, Count: h.counts[i].Load()})
	}
	if hs.Count > 0 {
		hs.P50 = hs.Quantile(0.50)
		hs.P90 = hs.Quantile(0.90)
		hs.P99 = hs.Quantile(0.99)
	}
	return hs
}

// Snapshot runs the registered collectors, then freezes the registry's
// current values. Returns an empty snapshot on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	collectors := append([]func(){}, r.collectors...)
	r.mu.RUnlock()
	for _, fn := range collectors {
		fn()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = snapshotHistogram(h)
	}
	if len(r.cvecs) > 0 {
		s.CounterVecs = map[string]LabeledCounterSnapshot{}
		for name, v := range r.cvecs {
			fam := LabeledCounterSnapshot{Labels: append([]string(nil), v.labels...)}
			v.mu.RLock()
			keys := sortedKeys(v.children)
			for _, k := range keys {
				ch := v.children[k]
				fam.Series = append(fam.Series, CounterSeries{Values: ch.values, Value: ch.c.Value()})
			}
			v.mu.RUnlock()
			s.CounterVecs[name] = fam
		}
	}
	if len(r.gvecs) > 0 {
		s.GaugeVecs = map[string]LabeledGaugeSnapshot{}
		for name, v := range r.gvecs {
			fam := LabeledGaugeSnapshot{Labels: append([]string(nil), v.labels...)}
			v.mu.RLock()
			keys := sortedKeys(v.children)
			for _, k := range keys {
				ch := v.children[k]
				fam.Series = append(fam.Series, GaugeSeries{Values: ch.values, Value: ch.g.Value()})
			}
			v.mu.RUnlock()
			s.GaugeVecs[name] = fam
		}
	}
	if len(r.hvecs) > 0 {
		s.HistogramVecs = map[string]LabeledHistogramSnapshot{}
		for name, v := range r.hvecs {
			fam := LabeledHistogramSnapshot{Labels: append([]string(nil), v.labels...)}
			v.mu.RLock()
			keys := sortedKeys(v.children)
			for _, k := range keys {
				ch := v.children[k]
				fam.Series = append(fam.Series, HistogramSeries{Values: ch.values, HistogramSnapshot: snapshotHistogram(ch.h)})
			}
			v.mu.RUnlock()
			s.HistogramVecs[name] = fam
		}
	}
	if len(r.help) > 0 {
		s.help = make(map[string]string, len(r.help))
		for k, v := range r.help {
			s.help[k] = v
		}
	}
	return s
}

// sortedKeys returns the map's keys in sorted order, so snapshot series
// (and therefore the Prometheus exposition) are deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MarshalJSON serializes the bucket, mapping the +Inf bound to the string
// "+Inf" so the output is valid JSON.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := any(b.Le)
	if math.IsInf(b.Le, 1) {
		le = "+Inf"
	}
	return json.Marshal(struct {
		Le    any   `json:"le"`
		Count int64 `json:"count"`
	}{le, b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    any   `json:"le"`
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	switch v := raw.Le.(type) {
	case float64:
		b.Le = v
	case string:
		b.Le = math.Inf(1)
	default:
		return fmt.Errorf("obs: bucket le has type %T", raw.Le)
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as a sorted, human-readable table.
func (s *Snapshot) WriteText(w io.Writer) {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-40s %12d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-40s %12.4g\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(w, "%-40s n=%-8d mean=%-10.4g min=%-10.4g max=%.4g\n",
			n, h.Count, h.Mean(), h.Min, h.Max)
	}
	for _, n := range sortedKeys(s.CounterVecs) {
		fam := s.CounterVecs[n]
		for _, se := range fam.Series {
			fmt.Fprintf(w, "%-40s %12d\n", seriesName(n, fam.Labels, se.Values), se.Value)
		}
	}
	for _, n := range sortedKeys(s.GaugeVecs) {
		fam := s.GaugeVecs[n]
		for _, se := range fam.Series {
			fmt.Fprintf(w, "%-40s %12.4g\n", seriesName(n, fam.Labels, se.Values), se.Value)
		}
	}
	for _, n := range sortedKeys(s.HistogramVecs) {
		fam := s.HistogramVecs[n]
		for _, se := range fam.Series {
			fmt.Fprintf(w, "%-40s n=%-8d p50=%-10.4g p90=%-10.4g p99=%.4g\n",
				seriesName(n, fam.Labels, se.Values), se.Count, se.P50, se.P90, se.P99)
		}
	}
}

// seriesName renders name{l1=v1,l2=v2} for the text table.
func seriesName(name string, labels, values []string) string {
	out := name + "{"
	for i, l := range labels {
		if i > 0 {
			out += ","
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		out += l + "=" + v
	}
	return out + "}"
}
