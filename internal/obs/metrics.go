// Package obs is the observability layer of the PAQOC pipeline: a
// zero-dependency metrics registry (atomic counters, gauges, bucketed
// histograms with snapshot/export), a tracing layer (nestable spans with a
// Chrome about:tracing JSON export), and a GRAPE convergence recorder.
//
// Everything is nil-safe: a nil *Registry hands out nil instruments, and
// every method on a nil instrument or nil *Span is a no-op, so instrumented
// hot paths pay only a nil check when observability is disabled. Context
// plumbing (WithMetrics/WithTracer, MetricsFrom/StartSpan) lets the
// pipeline thread instrumentation through without new required parameters.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 sample.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adjusts the gauge by delta and returns the new value, so
// several producers (e.g. concurrently live worker pools) can share one
// gauge without clobbering each other's Set calls. Returns 0 on nil.
func (g *Gauge) Add(delta float64) float64 {
	if g == nil {
		return 0
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return v
		}
	}
}

// Max raises the gauge to v if v exceeds the stored value.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current sample (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates float64 observations into fixed buckets. All
// updates are atomic; Observe is safe for concurrent use.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf bucket follows
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	min    atomic.Uint64
	max    atomic.Uint64
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.min.Load()
		if old != initSentinel && math.Float64frombits(old) <= v {
			break
		}
		if h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if old != initSentinel && math.Float64frombits(old) >= v {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// initSentinel marks min/max as unset (NaN bits never match a real sample).
var initSentinel = math.Float64bits(math.NaN())

// Registry owns named instruments. Lookup is guarded by a RWMutex; updates
// on the returned instruments are lock-free. A nil *Registry hands out nil
// instruments, making every downstream update a no-op.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// DefaultBuckets suit dt-scale latencies and iteration counts.
var DefaultBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (DefaultBuckets when bounds is empty). Later
// calls ignore bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if len(bounds) == 0 {
			bounds = DefaultBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
		h.min.Store(initSentinel)
		h.max.Store(initSentinel)
		r.hists[name] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot: the count of samples with
// value ≤ Le (Le is +Inf for the overflow bucket, serialized as "+Inf").
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []Bucket `json:"buckets"`
}

// Mean returns Sum/Count (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a consistent-enough point-in-time copy of a registry,
// serializable to JSON and renderable as a text table.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current values. Returns an empty
// snapshot on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.count.Load()}
		hs.Sum = math.Float64frombits(h.sum.Load())
		if mn := h.min.Load(); mn != initSentinel {
			hs.Min = math.Float64frombits(mn)
		}
		if mx := h.max.Load(); mx != initSentinel {
			hs.Max = math.Float64frombits(mx)
		}
		for i := range h.counts {
			le := math.Inf(1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, Bucket{Le: le, Count: h.counts[i].Load()})
		}
		s.Histograms[name] = hs
	}
	return s
}

// MarshalJSON serializes the bucket, mapping the +Inf bound to the string
// "+Inf" so the output is valid JSON.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := any(b.Le)
	if math.IsInf(b.Le, 1) {
		le = "+Inf"
	}
	return json.Marshal(struct {
		Le    any   `json:"le"`
		Count int64 `json:"count"`
	}{le, b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    any   `json:"le"`
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	switch v := raw.Le.(type) {
	case float64:
		b.Le = v
	case string:
		b.Le = math.Inf(1)
	default:
		return fmt.Errorf("obs: bucket le has type %T", raw.Le)
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as a sorted, human-readable table.
func (s *Snapshot) WriteText(w io.Writer) {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-40s %12d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-40s %12.4g\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(w, "%-40s n=%-8d mean=%-10.4g min=%-10.4g max=%.4g\n",
			n, h.Count, h.Mean(), h.Min, h.Max)
	}
}
