package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestEventRingPublishSubscribe(t *testing.T) {
	r := NewEventRing(32)
	r.PublishStage("route", 2*time.Millisecond)
	r.PublishStage("mine", 5*time.Millisecond)

	history, live, cancel := r.Subscribe(16)
	defer cancel()
	if len(history) != 2 || history[0].Stage != "route" || history[1].Stage != "mine" {
		t.Fatalf("history = %+v", history)
	}
	if history[0].Seq != 1 || history[1].Seq != 2 {
		t.Errorf("seqs = %d,%d, want 1,2", history[0].Seq, history[1].Seq)
	}

	r.PublishConvergence("CZ q0 q1", ConvergencePoint{Iter: 25, Fidelity: 0.99, GradNorm: 1e-3})
	select {
	case ev := <-live:
		if ev.Type != EventConvergence || ev.Gate != "CZ q0 q1" || ev.Iter != 25 || ev.Seq != 3 {
			t.Errorf("live event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("live event not delivered")
	}
}

func TestEventRingCloseSemantics(t *testing.T) {
	r := NewEventRing(16)
	r.PublishState("queued", "")
	_, live, cancel := r.Subscribe(4)
	defer cancel()

	r.Close()
	if _, open := <-live; open {
		t.Error("subscriber channel must close when the ring closes")
	}
	r.Publish(Event{Type: EventStage}) // no-op, must not panic
	r.Close()                          // idempotent

	// A late subscriber still gets history, plus an already-closed channel.
	history, late, lateCancel := r.Subscribe(4)
	defer lateCancel()
	if len(history) != 1 || history[0].State != "queued" {
		t.Errorf("late history = %+v", history)
	}
	if _, open := <-late; open {
		t.Error("late subscriber channel must be pre-closed")
	}
}

func TestEventRingBoundedHistory(t *testing.T) {
	r := NewEventRing(16)
	for i := 0; i < 40; i++ {
		r.PublishStage("s", time.Duration(i))
	}
	history, _, cancel := r.Subscribe(1)
	defer cancel()
	if len(history) != 16 {
		t.Fatalf("retained = %d, want capacity 16", len(history))
	}
	// Oldest evicted: the retained window is the last 16, in order.
	if history[0].Seq != 25 || history[15].Seq != 40 {
		t.Errorf("window = [%d, %d], want [25, 40]", history[0].Seq, history[15].Seq)
	}
	if got := r.Dropped(); got != 24 {
		t.Errorf("Dropped = %d, want 24", got)
	}
}

func TestEventRingSlowSubscriberDoesNotBlock(t *testing.T) {
	r := NewEventRing(16)
	_, live, cancel := r.Subscribe(1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			r.PublishStage("s", 0)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a full subscriber channel")
	}
	<-live // the one buffered event is still delivered
}

func TestEventRingConcurrent(t *testing.T) {
	r := NewEventRing(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churning subscribers racing publishers and Close exercises the
	// send-vs-close discipline; run under -race this is the real test.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, live, cancel := r.Subscribe(2)
				if live != nil {
					select {
					case <-live:
					default:
					}
				}
				cancel()
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.PublishStage("s", time.Duration(i))
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	r.Close()
	close(stop)
	wg.Wait()
}

func TestNilEventRingIsNoOp(t *testing.T) {
	var r *EventRing
	r.PublishStage("s", time.Millisecond)
	r.PublishConvergence("g", ConvergencePoint{})
	r.PublishState("done", "")
	r.Close()
	if r.Dropped() != 0 {
		t.Error("nil ring Dropped must be 0")
	}
	history, live, cancel := r.Subscribe(8)
	if history != nil || live != nil {
		t.Error("nil ring Subscribe must return nil history and channel")
	}
	cancel()
}

func TestEventRingContextPlumbing(t *testing.T) {
	r := NewEventRing(16)
	ctx := WithEvents(context.Background(), r)
	if EventsFrom(ctx) != r {
		t.Error("EventsFrom must return the carried ring")
	}
	if EventsFrom(context.Background()) != nil {
		t.Error("EventsFrom on a bare context must be nil")
	}
	if WithEvents(ctx, nil) != ctx {
		t.Error("WithEvents(nil) must return ctx unchanged")
	}
}

func TestEventRingOnPublish(t *testing.T) {
	r := NewEventRing(16)
	var seen []Event
	r.OnPublish(func(ev Event) { seen = append(seen, ev) })
	r.PublishStage("mine", time.Millisecond)
	r.PublishState("done", "")
	if len(seen) != 2 || seen[0].Stage != "mine" || seen[1].State != "done" {
		t.Errorf("observed events = %+v", seen)
	}
	if seen[0].Seq != 1 {
		t.Error("hook must observe events after Seq assignment")
	}
}

func TestConvergenceTraceBounded(t *testing.T) {
	tr := &ConvergenceTrace{MaxPoints: 8}
	for i := 1; i <= 100; i++ {
		tr.Record(ConvergencePoint{Iter: i})
	}
	if len(tr.Points) > 8 {
		t.Fatalf("points = %d, want <= 8", len(tr.Points))
	}
	if tr.DroppedCount == 0 {
		t.Error("thinning must account dropped points")
	}
	if got := len(tr.Points) + tr.DroppedCount; got != 100 {
		t.Errorf("kept+dropped = %d, want 100", got)
	}
	// The first and the most recent iterations survive thinning.
	if tr.Points[0].Iter != 1 {
		t.Errorf("first point iter = %d, want 1", tr.Points[0].Iter)
	}
	if last := tr.Points[len(tr.Points)-1].Iter; last != 100 {
		t.Errorf("last point iter = %d, want 100", last)
	}
	// Unbounded traces keep everything.
	un := &ConvergenceTrace{}
	for i := 1; i <= 100; i++ {
		un.Record(ConvergencePoint{Iter: i})
	}
	if len(un.Points) != 100 || un.DroppedCount != 0 {
		t.Errorf("unbounded trace = %d points, %d dropped", len(un.Points), un.DroppedCount)
	}
}
