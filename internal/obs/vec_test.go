package obs

import (
	"math"
	"sync"
	"testing"
)

func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("stage_ms", nil, "stage")
	a := v.WithLabelValues("mine")
	b := v.WithLabelValues("mine")
	if a != b {
		t.Error("same label values must resolve to the same child")
	}
	if v.WithLabelValues("emit") == a {
		t.Error("distinct label values must resolve to distinct children")
	}
	// The registry must also hand back the same family on re-lookup,
	// ignoring later label-name arguments per the documented contract.
	if r.HistogramVec("stage_ms", nil, "other") != v {
		t.Error("re-lookup must return the existing family")
	}
}

func TestVecLabelArityDegradesGracefully(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs", "method", "code")
	v.WithLabelValues("GET", "200").Inc()
	v.WithLabelValues("GET").Inc()             // missing value pads to ""
	v.WithLabelValues("GET", "200", "x").Inc() // extra value ignored

	snap := r.Snapshot()
	fam := snap.CounterVecs["reqs"]
	if len(fam.Series) != 2 {
		t.Fatalf("series = %d, want 2 (padded and full tuples)", len(fam.Series))
	}
	for _, se := range fam.Series {
		if len(se.Values) != 2 {
			t.Errorf("series values %v not normalized to label arity", se.Values)
		}
	}
}

func TestVecNilSafety(t *testing.T) {
	var r *Registry
	cv := r.CounterVec("x", "l")
	gv := r.GaugeVec("x", "l")
	hv := r.HistogramVec("x", nil, "l")
	if cv != nil || gv != nil || hv != nil {
		t.Fatal("nil registry must hand out nil vecs")
	}
	// Nil vec -> nil child -> no-op updates; none may panic.
	cv.WithLabelValues("a").Inc()
	gv.WithLabelValues("a").Set(1)
	hv.WithLabelValues("a").Observe(1)
	if cv.WithLabelValues("a").Value() != 0 {
		t.Error("nil child must read as zero")
	}
}

// TestDisabledPathAllocationFree pins the acceptance criterion that
// instrumented hot paths are allocation-clean when observability is off:
// the whole nil chain — registry → vec → child → update — must not
// allocate.
func TestDisabledPathAllocationFree(t *testing.T) {
	var r *Registry
	hv := r.HistogramVec(StageMetric, LatencyBuckets, "stage")
	cv := r.CounterVec("x", "l")
	if n := testing.AllocsPerRun(100, func() {
		hv.WithLabelValues("mine").Observe(1.5)
		cv.WithLabelValues("a").Add(1)
		r.Counter("y").Inc()
		r.Gauge("z").Set(1)
	}); n != 0 {
		t.Errorf("disabled path allocates %.1f per op, want 0", n)
	}
}

func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	stages := []string{"mine", "optimize", "emit", "grape"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := r.HistogramVec(StageMetric, LatencyBuckets, "stage")
			for i := 0; i < 1000; i++ {
				v.WithLabelValues(stages[i%len(stages)]).Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	fam := r.Snapshot().HistogramVecs[StageMetric]
	if len(fam.Series) != len(stages) {
		t.Fatalf("series = %d, want %d", len(fam.Series), len(stages))
	}
	var total int64
	for _, se := range fam.Series {
		total += se.Count
	}
	if total != 8*1000 {
		t.Errorf("total observations = %d, want 8000", total)
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(0.001, 60_000, 3)
	if b[0] != 0.001 {
		t.Errorf("first bound = %g, want 0.001", b[0])
	}
	if last := b[len(b)-1]; last < 60_000 {
		t.Errorf("last bound = %g, must cover max 60000", last)
	}
	ratio := math.Pow(10, 1.0/3)
	for i := 1; i < len(b); i++ {
		if got := b[i] / b[i-1]; math.Abs(got-ratio) > 1e-9 {
			t.Fatalf("bucket ratio at %d = %g, want %g", i, got, ratio)
		}
	}
	// Degenerate arguments fall back to the default layout.
	if got := LogBuckets(0, 10, 3); len(got) != len(DefaultBuckets) {
		t.Error("degenerate min must fall back to DefaultBuckets")
	}
	if got := LogBuckets(10, 1, 3); len(got) != len(DefaultBuckets) {
		t.Error("inverted range must fall back to DefaultBuckets")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{10, 20, 30, 40})
	// 100 uniform samples in (0, 40]: quantiles should track q*40 within
	// one bucket width, and exactly at bucket boundaries by construction.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	s := r.Snapshot().Histograms["q"]
	for _, tc := range []struct{ q, want float64 }{
		{0.25, 10}, {0.50, 20}, {0.75, 30}, {0.90, 36},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 0.5 {
			t.Errorf("Quantile(%g) = %g, want %g ± 0.5", tc.q, got, tc.want)
		}
	}
	// Precomputed snapshot quantiles must agree with on-demand ones.
	if s.P50 != s.Quantile(0.50) || s.P90 != s.Quantile(0.90) || s.P99 != s.Quantile(0.99) {
		t.Error("snapshot P50/P90/P99 disagree with Quantile")
	}
}

func TestQuantileClampAndEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{1000})
	h.Observe(5) // single sample deep inside a wide bucket
	s := r.Snapshot().Histograms["q"]
	// Interpolation would say ~500; the clamp pins it to the observed max.
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("clamped quantile = %g, want 5", got)
	}
	if s.Quantile(0) != s.Min || s.Quantile(1) != s.Max {
		t.Error("q<=0 / q>=1 must return Min / Max")
	}
	// Samples past the last finite bound resolve to Max, not +Inf.
	h.Observe(9999)
	s = r.Snapshot().Histograms["q"]
	if got := s.Quantile(0.99); got != 9999 {
		t.Errorf("overflow-bucket quantile = %g, want observed max 9999", got)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
}
