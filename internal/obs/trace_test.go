package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanNestingPaths(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "compile")
	ctx2, opt := StartSpan(ctx1, "optimize")
	_, round := StartSpan(ctx2, "round")
	round.End()
	opt.End()
	// A sibling opened from the root context nests under compile, not round.
	_, emit := StartSpan(ctx1, "emit")
	emit.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	// Completion order: innermost first.
	wantPaths := []string{
		"compile/optimize/round",
		"compile/optimize",
		"compile/emit",
		"compile",
	}
	for i, want := range wantPaths {
		if spans[i].Path != want {
			t.Errorf("span %d path = %q, want %q", i, spans[i].Path, want)
		}
	}
	// The child's interval must be contained in the parent's (that is what
	// the Chrome viewer uses to reconstruct nesting).
	child, parent := spans[0], spans[3]
	if child.Start < parent.Start || child.Start+child.Dur > parent.Start+parent.Dur {
		t.Errorf("child [%v,+%v] not contained in parent [%v,+%v]",
			child.Start, child.Dur, parent.Start, parent.Dur)
	}
}

func TestStartSpanWithoutTracer(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "anything")
	if s != nil {
		t.Fatal("StartSpan without tracer must return a nil span")
	}
	if ctx2 != ctx {
		t.Error("StartSpan without tracer must return the context unchanged")
	}
	// Nil-span methods must not panic.
	s.SetAttr("k", 1)
	s.End()
	s.End()
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer()
	_, s := StartSpan(WithTracer(context.Background(), tr), "once")
	s.End()
	s.End()
	if n := len(tr.Spans()); n != 1 {
		t.Errorf("double End recorded %d spans, want 1", n)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "paqoc.compile")
	root.SetAttr("gates", 12)
	_, inner := StartSpan(ctx, "paqoc.optimize")
	inner.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	// Events are sorted by start: the root opens first.
	ev := doc.TraceEvents[0]
	if ev.Name != "paqoc.compile" || ev.Ph != "X" || ev.Pid != 1 || ev.Tid != 1 {
		t.Errorf("root event = %+v", ev)
	}
	if got := ev.Args["gates"]; got != float64(12) {
		t.Errorf("root args[gates] = %v, want 12", got)
	}
	if ev.Dur < doc.TraceEvents[1].Dur {
		t.Error("root event shorter than its child")
	}
}

func TestSummaryAggregation(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "compile")
	for i := 0; i < 3; i++ {
		_, s := StartSpan(ctx, "round")
		s.End()
	}
	root.End()

	sum := tr.Summary()
	if len(sum) != 2 {
		t.Fatalf("got %d summary rows, want 2", len(sum))
	}
	// Ordered by first start: the root opened before any round.
	if sum[0].Path != "compile" || sum[0].Count != 1 {
		t.Errorf("row 0 = %+v, want compile ×1", sum[0])
	}
	if sum[1].Path != "compile/round" || sum[1].Count != 3 {
		t.Errorf("row 1 = %+v, want compile/round ×3", sum[1])
	}
	if sum[0].Total < sum[1].Total {
		t.Error("parent total wall time below the sum of its children")
	}

	var buf bytes.Buffer
	tr.WriteSummary(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("summary output has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[1], "round") || !strings.HasPrefix(lines[1], "    ") {
		t.Errorf("nested row not indented: %q", lines[1])
	}
}

func TestObsAttach(t *testing.T) {
	var o *Obs
	ctx := o.Attach(context.Background())
	if TracerFrom(ctx) != nil || MetricsFrom(ctx) != nil {
		t.Error("nil Obs must attach nothing")
	}
	o = New()
	ctx = o.Attach(context.Background())
	if TracerFrom(ctx) != o.Tracer || MetricsFrom(ctx) != o.Metrics {
		t.Error("Attach must install both backends")
	}
}

// BenchmarkDisabledStartSpan guards the overhead claim for the tracing
// side: with no tracer in the context, StartSpan + End must be two context
// lookups and zero allocations.
func BenchmarkDisabledStartSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "bench")
		s.End()
	}
}

func BenchmarkEnabledStartSpan(b *testing.B) {
	ctx := WithTracer(context.Background(), NewTracer())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "bench")
		s.End()
	}
}
