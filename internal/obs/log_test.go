package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// logLines decodes each JSON line the logger wrote.
func logLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not valid JSON: %v\n%s", err, line)
		}
		out = append(out, rec)
	}
	return out
}

func TestLoggerJSONShape(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Info("job queued", "job_id", "job-000001", "gates", 12, "sync", true)

	recs := logLines(t, &buf)
	if len(recs) != 1 {
		t.Fatalf("lines = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec["level"] != "info" || rec["msg"] != "job queued" {
		t.Errorf("level/msg = %v/%v", rec["level"], rec["msg"])
	}
	if rec["job_id"] != "job-000001" || rec["gates"] != float64(12) || rec["sync"] != true {
		t.Errorf("fields = %v", rec)
	}
	if _, err := time.Parse(time.RFC3339Nano, rec["ts"].(string)); err != nil {
		t.Errorf("ts not RFC3339Nano: %v", rec["ts"])
	}
	// Fixed fields lead the line so raw logs are scannable.
	if !strings.HasPrefix(buf.String(), `{"ts":`) {
		t.Errorf("record does not start with ts: %s", buf.String())
	}
	for _, k := range []string{`"level":`, `"msg":`} {
		if !strings.Contains(buf.String()[:60], k) {
			t.Errorf("%s not in record head: %s", k, buf.String())
		}
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	recs := logLines(t, &buf)
	if len(recs) != 2 || recs[0]["msg"] != "w" || recs[1]["msg"] != "e" {
		t.Errorf("filtered records = %v", recs)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelWarn) {
		t.Error("Enabled disagrees with filtering")
	}
}

func TestLoggerWithBindsFields(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo).With("job_id", "job-000007")
	l.Info("stage", "stage", "mine")
	rec := logLines(t, &buf)[0]
	if rec["job_id"] != "job-000007" || rec["stage"] != "mine" {
		t.Errorf("bound + per-call fields = %v", rec)
	}
}

func TestLoggerAwkwardValues(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Info("odd",
		"err", errors.New("boom"),
		"dur", 1500*time.Millisecond,
		"fn", func() {}, // unmarshalable: falls back to fmt.Sprint
		"dangling") // key with no value -> null
	rec := logLines(t, &buf)[0]
	if rec["err"] != "boom" {
		t.Errorf("error field = %v, want its Error() string", rec["err"])
	}
	if rec["dur"] != "1.5s" {
		t.Errorf("duration field = %v, want \"1.5s\"", rec["dur"])
	}
	if _, ok := rec["fn"].(string); !ok {
		t.Errorf("unmarshalable value = %v, want stringified", rec["fn"])
	}
	if v, present := rec["dangling"]; !present || v != nil {
		t.Errorf("dangling key = %v, want null", v)
	}
}

func TestNilLoggerIsNoOp(t *testing.T) {
	var l *Logger
	l.Info("x", "k", "v")
	l.Error("y")
	if l.With("a", 1) != nil {
		t.Error("With on nil logger must return nil")
	}
	if l.Enabled(LevelError) {
		t.Error("nil logger must report disabled")
	}
}

func TestLoggerConcurrentNoInterleaving(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := l.With("worker", w)
			for i := 0; i < 100; i++ {
				child.Info("tick", "i", i)
			}
		}(w)
	}
	wg.Wait()
	// Every line must decode cleanly; interleaved writes would not.
	if got := len(logLines(t, &buf)); got != 800 {
		t.Errorf("lines = %d, want 800", got)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "warn": LevelWarn,
		"Warning": LevelWarn, "error": LevelError, " info ": LevelInfo,
		"bogus": LevelInfo, "": LevelInfo,
	} {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLoggerContextPlumbing(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	ctx := WithLogger(context.Background(), l)
	if LoggerFrom(ctx) != l {
		t.Error("LoggerFrom must return the carried logger")
	}
	if LoggerFrom(context.Background()) != nil {
		t.Error("LoggerFrom on a bare context must be nil")
	}
	// WithLogger(nil) leaves the context untouched.
	if WithLogger(ctx, nil) != ctx {
		t.Error("WithLogger(nil) must return ctx unchanged")
	}
}
