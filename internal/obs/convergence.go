package obs

// ConvergencePoint is one iteration of a gradient-ascent optimization.
type ConvergencePoint struct {
	Iter     int     `json:"iter"`
	Fidelity float64 `json:"fidelity"`
	GradNorm float64 `json:"grad_norm"` // L2 norm over all controls/slices
	StepSize float64 `json:"step_size"` // largest |ADAM step| this iteration
}

// ConvergenceTrace records fidelity-vs-iteration and step-size curves for
// one GRAPE run. Not safe for concurrent writers (each optimization owns
// its trace); a nil *ConvergenceTrace is a no-op recorder.
//
// MaxPoints, when positive, bounds retained samples: once the trace would
// exceed the cap, Record thins the retained prefix to every other point
// and keeps appending — so the tail (where convergence is decided) stays
// dense, early iterations stay represented at halved resolution, and a
// long-running server cannot grow memory without limit. DroppedCount
// reports how many recorded points were thinned away.
type ConvergenceTrace struct {
	Points []ConvergencePoint `json:"points"`
	// MaxPoints caps len(Points); 0 means unbounded.
	MaxPoints int `json:"-"`
	// DroppedCount is how many points were discarded by the cap.
	DroppedCount int `json:"dropped,omitempty"`
}

// Record appends one iteration point. No-op on a nil receiver.
func (t *ConvergenceTrace) Record(p ConvergencePoint) {
	if t == nil {
		return
	}
	if t.MaxPoints > 0 && len(t.Points) >= t.MaxPoints {
		// Thin in place: keep every other retained point. Amortized O(1)
		// per Record — each thinning halves the slice, so successive caps
		// are hit half as often.
		keep := 0
		for i := 0; i < len(t.Points); i += 2 {
			t.Points[keep] = t.Points[i]
			keep++
		}
		t.DroppedCount += len(t.Points) - keep
		t.Points = t.Points[:keep]
	}
	t.Points = append(t.Points, p)
}

// Len returns the number of recorded iterations (0 for nil).
func (t *ConvergenceTrace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.Points)
}

// Final returns the last recorded point (zero value when empty).
func (t *ConvergenceTrace) Final() ConvergencePoint {
	if t.Len() == 0 {
		return ConvergencePoint{}
	}
	return t.Points[len(t.Points)-1]
}

// Stalled reports whether fidelity improved by less than eps over the last
// window iterations — the diagnostic for "why didn't this GRAPE run
// converge" (plateaued landscape vs. too few iterations).
func (t *ConvergenceTrace) Stalled(window int, eps float64) bool {
	if t.Len() < window || window <= 0 {
		return false
	}
	last := t.Points[len(t.Points)-1].Fidelity
	prev := t.Points[len(t.Points)-window].Fidelity
	return last-prev < eps
}
