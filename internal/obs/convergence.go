package obs

// ConvergencePoint is one iteration of a gradient-ascent optimization.
type ConvergencePoint struct {
	Iter     int     `json:"iter"`
	Fidelity float64 `json:"fidelity"`
	GradNorm float64 `json:"grad_norm"` // L2 norm over all controls/slices
	StepSize float64 `json:"step_size"` // largest |ADAM step| this iteration
}

// ConvergenceTrace records fidelity-vs-iteration and step-size curves for
// one GRAPE run. Not safe for concurrent writers (each optimization owns
// its trace); a nil *ConvergenceTrace is a no-op recorder.
type ConvergenceTrace struct {
	Points []ConvergencePoint `json:"points"`
}

// Record appends one iteration point. No-op on a nil receiver.
func (t *ConvergenceTrace) Record(p ConvergencePoint) {
	if t != nil {
		t.Points = append(t.Points, p)
	}
}

// Len returns the number of recorded iterations (0 for nil).
func (t *ConvergenceTrace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.Points)
}

// Final returns the last recorded point (zero value when empty).
func (t *ConvergenceTrace) Final() ConvergencePoint {
	if t.Len() == 0 {
		return ConvergencePoint{}
	}
	return t.Points[len(t.Points)-1]
}

// Stalled reports whether fidelity improved by less than eps over the last
// window iterations — the diagnostic for "why didn't this GRAPE run
// converge" (plateaued landscape vs. too few iterations).
func (t *ConvergenceTrace) Stalled(window int, eps float64) bool {
	if t.Len() < window || window <= 0 {
		return false
	}
	last := t.Points[len(t.Points)-1].Fidelity
	prev := t.Points[len(t.Points)-window].Fidelity
	return last-prev < eps
}
