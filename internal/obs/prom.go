package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one family per metric, sorted by exposition
// name, each preceded by its # HELP (when registered via Registry.SetHelp)
// and # TYPE lines. Histograms emit the standard _bucket/_sum/_count
// triplet with cumulative bucket counts and an explicit le="+Inf" bucket;
// labeled families render every series with escaped label values.
//
// Metric names are sanitized for Prometheus (every character outside
// [a-zA-Z0-9_:] becomes '_'), so "paqoc.stage_ms" is scraped as
// "paqoc_stage_ms".
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var fams []promFamily

	for name, v := range s.Counters {
		fams = append(fams, promFamily{
			name: promName(name), orig: name, typ: "counter",
			lines: []string{fmt.Sprintf("%s %d", promName(name), v)},
		})
	}
	for name, v := range s.Gauges {
		fams = append(fams, promFamily{
			name: promName(name), orig: name, typ: "gauge",
			lines: []string{fmt.Sprintf("%s %s", promName(name), promFloat(v))},
		})
	}
	for name, h := range s.Histograms {
		fams = append(fams, promFamily{
			name: promName(name), orig: name, typ: "histogram",
			lines: promHistogramLines(promName(name), nil, nil, h),
		})
	}
	for name, fam := range s.CounterVecs {
		pf := promFamily{name: promName(name), orig: name, typ: "counter"}
		for _, se := range fam.Series {
			pf.lines = append(pf.lines, fmt.Sprintf("%s%s %d",
				pf.name, promLabels(fam.Labels, se.Values, "", 0), se.Value))
		}
		fams = append(fams, pf)
	}
	for name, fam := range s.GaugeVecs {
		pf := promFamily{name: promName(name), orig: name, typ: "gauge"}
		for _, se := range fam.Series {
			pf.lines = append(pf.lines, fmt.Sprintf("%s%s %s",
				pf.name, promLabels(fam.Labels, se.Values, "", 0), promFloat(se.Value)))
		}
		fams = append(fams, pf)
	}
	for name, fam := range s.HistogramVecs {
		pf := promFamily{name: promName(name), orig: name, typ: "histogram"}
		for _, se := range fam.Series {
			pf.lines = append(pf.lines, promHistogramLines(pf.name, fam.Labels, se.Values, se.HistogramSnapshot)...)
		}
		fams = append(fams, pf)
	}

	sort.Slice(fams, func(i, j int) bool {
		if fams[i].name != fams[j].name {
			return fams[i].name < fams[j].name
		}
		return fams[i].orig < fams[j].orig
	})
	for _, f := range fams {
		if help := s.help[f.orig]; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, promHelp(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// promFamily is one metric family ready to print.
type promFamily struct {
	name  string // sanitized exposition name
	orig  string // registry name (help lookup, tie-break)
	typ   string
	lines []string
}

// promHistogramLines renders the _bucket/_sum/_count triplet for one
// (possibly labeled) histogram series. Bucket counts are cumulative, as
// the exposition format requires; the snapshot stores per-bucket counts.
func promHistogramLines(name string, labels, values []string, h HistogramSnapshot) []string {
	lines := make([]string, 0, len(h.Buckets)+2)
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		le := "+Inf"
		if !math.IsInf(b.Le, 1) {
			le = promFloat(b.Le)
		}
		lines = append(lines, fmt.Sprintf("%s_bucket%s %d", name, promLabels(labels, values, "le", le), cum))
	}
	lines = append(lines,
		fmt.Sprintf("%s_sum%s %s", name, promLabels(labels, values, "", 0), promFloat(h.Sum)),
		fmt.Sprintf("%s_count%s %d", name, promLabels(labels, values, "", 0), h.Count))
	return lines
}

// promLabels renders a {k="v",...} label block (plus an optional extra
// label such as le) or "" when there are no labels at all.
func promLabels(labels, values []string, extraKey string, extraVal any) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(promName(l))
		b.WriteString(`="`)
		b.WriteString(PromEscape(v))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(PromEscape(fmt.Sprint(extraVal)))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// PromEscape escapes a label value for the text exposition format:
// backslash, double quote, and newline get backslash escapes.
func PromEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// PromUnescape inverts PromEscape (used by tests to round-trip values).
func PromUnescape(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	var b strings.Builder
	b.Grow(len(v))
	esc := false
	for _, r := range v {
		if esc {
			switch r {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteRune(r)
			}
			esc = false
			continue
		}
		if r == '\\' {
			esc = true
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promHelp escapes a help string (backslash and newline only, per spec).
func promHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promName sanitizes a registry name into a valid Prometheus metric or
// label name: [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus clients do: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
