package obs

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with one of everything, deterministic
// values, names needing sanitization, and label values needing escaping.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("server.requests").Add(42)
	r.SetHelp("server.requests", "Total compile requests received.")
	r.Gauge("engine.active_workers").Set(3)
	r.Gauge("grape.best_fidelity").Set(0.9987)

	h := r.Histogram("server.queue_wait_ms", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5)
	h.Observe(5000) // +Inf bucket
	r.SetHelp("server.queue_wait_ms", "Queue wait in ms.\nSecond line.")

	cv := r.CounterVec("server.job_ms.outcomes", "outcome")
	cv.WithLabelValues("ok").Add(7)
	cv.WithLabelValues(`weird"va\lue` + "\n").Add(1)

	gv := r.GaugeVec("pool.depth", "pool")
	gv.WithLabelValues("emit").Set(2.5)

	hv := r.HistogramVec(StageMetric, []float64{1, 10}, "stage")
	hv.WithLabelValues("mine").Observe(3)
	hv.WithLabelValues("emit").Observe(0.2)
	hv.WithLabelValues("emit").Observe(20)
	r.SetHelp(StageMetric, "Per-stage wall clock (ms).")

	// The offline miner's families, as preregistered by the server.
	r.Counter("miner.pregenerated").Add(2)
	r.SetHelp("miner.pregenerated", "APA-basis pulses pre-generated during idle capacity.")
	r.Counter("miner.pregen_hits").Add(5)
	r.Counter("miner.idle_runs").Add(3)
	r.Counter("miner.yields").Add(1)
	r.Gauge("miner.patterns_tracked").Set(4)
	r.Gauge("miner.corpus_circuits").Set(12)
	mh := r.Histogram("miner.pregen_ms", []float64{10, 1000})
	mh.Observe(250)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prom_golden.txt")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden file (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// promLine matches a valid exposition sample line: name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (?:[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

func TestWritePrometheusParses(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var families []string
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			families = append(families, parts[2])
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("unknown family type in %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("sample line does not parse: %q", line)
		}
	}
	if !sort.StringsAreSorted(families) {
		t.Errorf("families not sorted by exposition name: %v", families)
	}
}

func TestPrometheusHistogramTriplet(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(500)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="10"} 2`, // cumulative, not per-bucket
		`lat_bucket{le="+Inf"} 3`,
		"lat_sum 505.5",
		"lat_count 3",
	}, "\n") + "\n"
	if buf.String() != want {
		t.Errorf("histogram triplet:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestPrometheusLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("stage_ms", []float64{1}, "stage")
	hv.WithLabelValues("mine").Observe(0.5)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`stage_ms_bucket{stage="mine",le="1"} 1`,
		`stage_ms_bucket{stage="mine",le="+Inf"} 1`,
		`stage_ms_sum{stage="mine"} 0.5`,
		`stage_ms_count{stage="mine"} 1`,
	} {
		if !strings.Contains(buf.String(), want+"\n") {
			t.Errorf("missing %q in:\n%s", want, buf.String())
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"paqoc.stage_ms": "paqoc_stage_ms",
		"9lives":         "_lives",
		"a-b c":          "a_b_c",
		"ok_name:x":      "ok_name:x",
		"":               "_",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromEscape(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := PromEscape(in); got != want {
		t.Errorf("PromEscape = %q, want %q", got, want)
	}
	if got := PromUnescape(want); got != in {
		t.Errorf("PromUnescape = %q, want %q", got, in)
	}
}

func TestPromFloat(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.5:          "0.5",
		3:            "3",
	} {
		if got := promFloat(v); got != want {
			t.Errorf("promFloat(%g) = %q, want %q", v, got, want)
		}
	}
	if got := promFloat(math.NaN()); got != "NaN" {
		t.Errorf("promFloat(NaN) = %q", got)
	}
	// Round trip: the shortest form must parse back to the same bits.
	for _, v := range []float64{0.1, 1e-9, 12345.6789, 6e22} {
		back, err := strconv.ParseFloat(promFloat(v), 64)
		if err != nil || back != v {
			t.Errorf("promFloat(%g) = %q does not round-trip (%v)", v, promFloat(v), err)
		}
	}
}

// FuzzPromEscape checks that escaping is reversible and that escaped
// values never contain a raw quote or newline (which would corrupt the
// exposition line structure).
func FuzzPromEscape(f *testing.F) {
	for _, seed := range []string{"", "plain", `back\slash`, `qu"ote`, "new\nline", `\\n`, "\\\"", "λ stage"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		esc := PromEscape(s)
		if strings.ContainsAny(esc, "\n\"") && !strings.Contains(esc, `\"`) {
			// Any quote must be escaped; a bare newline must never survive.
			t.Fatalf("escaped value %q leaks structural characters", esc)
		}
		if strings.Contains(esc, "\n") {
			t.Fatalf("escaped value %q contains a raw newline", esc)
		}
		if got := PromUnescape(esc); got != s {
			t.Fatalf("round trip: %q -> %q -> %q", s, esc, got)
		}
	})
}

// TestPromLabelsExtra pins the le-label composition used by histogram
// bucket lines, with and without series labels.
func TestPromLabelsExtra(t *testing.T) {
	if got := promLabels(nil, nil, "le", "+Inf"); got != `{le="+Inf"}` {
		t.Errorf("bare extra label = %q", got)
	}
	if got := promLabels([]string{"stage"}, []string{"mine"}, "le", 10); got != `{stage="mine",le="10"}` {
		t.Errorf("combined labels = %q", got)
	}
	if got := promLabels(nil, nil, "", 0); got != "" {
		t.Errorf("no labels = %q, want empty", got)
	}
	if got := fmt.Sprintf("m%s 1", promLabels([]string{"a"}, nil, "", 0)); got != `m{a=""} 1` {
		t.Errorf("missing value renders = %q", got)
	}
}
