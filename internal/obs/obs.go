package obs

import "context"

// Obs bundles the two observability backends so callers can enable either
// or both and attach them to a context in one call. A nil *Obs (or nil
// fields) disables the corresponding instrumentation.
type Obs struct {
	Metrics *Registry
	Tracer  *Tracer
}

// New returns an Obs with both a metrics registry and a tracer enabled.
func New() *Obs {
	return &Obs{Metrics: NewRegistry(), Tracer: NewTracer()}
}

// Attach installs the non-nil backends into the context.
func (o *Obs) Attach(ctx context.Context) context.Context {
	if o == nil {
		return ctx
	}
	if o.Metrics != nil {
		ctx = WithMetrics(ctx, o.Metrics)
	}
	if o.Tracer != nil {
		ctx = WithTracer(ctx, o.Tracer)
	}
	return ctx
}
