package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Level is a log severity. Records below the logger's level are dropped
// before any formatting work happens.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel maps a level name ("debug", "info", "warn", "error",
// case-insensitive) to its Level; unknown names default to info.
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	}
	return LevelInfo
}

// Logger writes structured JSON records: one object per line with fixed
// "ts", "level", and "msg" fields plus alternating key-value pairs. It is
// nil-safe — every method on a nil *Logger is a no-op — so call sites
// never guard, and a sink shared by With-derived loggers is serialized by
// one mutex so concurrent jobs never interleave partial lines.
type Logger struct {
	sink  *logSink
	level Level
	// fields bound by With, already rendered in order.
	fields []logField
}

type logField struct {
	key string
	val any
}

type logSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger returns a logger writing JSON lines at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	if w == nil {
		w = io.Discard
	}
	return &Logger{sink: &logSink{w: w}, level: level}
}

// NewStderrLogger is the default production logger: JSON lines on stderr.
func NewStderrLogger(level Level) *Logger {
	return NewLogger(os.Stderr, level)
}

// With returns a logger that includes the given key-value pairs on every
// record (a trailing key with no value gets null). Derived loggers share
// the parent's sink and level. Nil-safe.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	child := &Logger{sink: l.sink, level: l.level}
	child.fields = append(append([]logField(nil), l.fields...), pairFields(kv)...)
	return child
}

// Enabled reports whether records at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	rec := make(map[string]any, len(l.fields)+len(kv)/2+3)
	rec["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	rec["level"] = level.String()
	rec["msg"] = msg
	for _, f := range l.fields {
		rec[f.key] = jsonSafe(f.val)
	}
	for _, f := range pairFields(kv) {
		rec[f.key] = jsonSafe(f.val)
	}
	line, err := json.Marshal(orderedRecord(rec))
	if err != nil {
		// A value resisted even the fmt.Sprint fallback; drop the record
		// rather than corrupt the stream.
		return
	}
	l.sink.mu.Lock()
	l.sink.w.Write(append(line, '\n'))
	l.sink.mu.Unlock()
}

// pairFields folds a flat kv list into fields; non-string keys are
// stringified and a dangling value-less key maps to null.
func pairFields(kv []any) []logField {
	if len(kv) == 0 {
		return nil
	}
	out := make([]logField, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		var val any
		if i+1 < len(kv) {
			val = kv[i+1]
		}
		out = append(out, logField{key: key, val: val})
	}
	return out
}

// jsonSafe replaces values json.Marshal would reject (errors, channels,
// funcs) with printable forms so one bad field never drops a record.
func jsonSafe(v any) any {
	switch x := v.(type) {
	case nil, bool, string, int, int32, int64, uint, uint32, uint64,
		float32, float64, time.Duration:
		if d, ok := x.(time.Duration); ok {
			return d.String()
		}
		return x
	case error:
		return x.Error()
	case fmt.Stringer:
		return x.String()
	}
	if _, err := json.Marshal(v); err != nil {
		return fmt.Sprint(v)
	}
	return v
}

// orderedRecord renders ts/level/msg first and remaining keys sorted, so
// log lines are stable and diffable.
type orderedRecord map[string]any

func (r orderedRecord) MarshalJSON() ([]byte, error) {
	keys := make([]string, 0, len(r))
	for k := range r {
		if k == "ts" || k == "level" || k == "msg" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := append([]string{"ts", "level", "msg"}, keys...)

	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, k := range ordered {
		v, ok := r[k]
		if !ok {
			continue
		}
		vb, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		kb, _ := json.Marshal(k)
		b.Write(kb)
		b.WriteByte(':')
		b.Write(vb)
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// WithLogger returns a context carrying the logger; LoggerFrom retrieves
// it (nil when absent, which every Logger method tolerates).
func WithLogger(ctx context.Context, l *Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey, l)
}

// LoggerFrom returns the logger carried by ctx, or nil.
func LoggerFrom(ctx context.Context) *Logger {
	l, _ := ctx.Value(loggerKey).(*Logger)
	return l
}
