package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
)

// Labeled metric families. A *Vec is a family of instruments sharing one
// name and a small, fixed set of label names; WithLabelValues resolves (or
// creates) the child instrument for one combination of label values. The
// families follow the package's nil-safety contract end to end: a nil
// registry hands out nil vecs, a nil vec hands out nil children, and every
// update on a nil child is a no-op — so instrumented hot paths pay only
// nil checks when observability is disabled.
//
// Label cardinality is the caller's responsibility: label values must come
// from small closed sets (a stage name, an outcome, a dimension), never
// from unbounded inputs (job IDs, circuit text), or the registry grows
// without limit and the Prometheus exposition becomes unusable.

// labelSep joins label values into a child key. The separator is an ASCII
// control character that never appears in the closed label-value sets this
// codebase uses.
const labelSep = "\x1f"

// labelKey builds the child-map key for a value tuple, padding missing
// values with "" and ignoring extras so a miscounted call site degrades to
// a well-defined series instead of panicking in production telemetry.
func labelKey(labels, values []string) string {
	if len(labels) == 1 {
		if len(values) >= 1 {
			return values[0]
		}
		return ""
	}
	var b strings.Builder
	for i := range labels {
		if i > 0 {
			b.WriteString(labelSep)
		}
		if i < len(values) {
			b.WriteString(values[i])
		}
	}
	return b.String()
}

// normalizeValues copies values, padded/truncated to the label arity.
func normalizeValues(labels, values []string) []string {
	out := make([]string, len(labels))
	copy(out, values)
	return out
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*counterChild
}

type counterChild struct {
	values []string
	c      Counter
}

// WithLabelValues returns the counter for one label-value tuple, creating
// it on first use. Returns nil on a nil vec.
func (v *CounterVec) WithLabelValues(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := labelKey(v.labels, values)
	v.mu.RLock()
	ch := v.children[key]
	v.mu.RUnlock()
	if ch == nil {
		v.mu.Lock()
		if ch = v.children[key]; ch == nil {
			ch = &counterChild{values: normalizeValues(v.labels, values)}
			v.children[key] = ch
		}
		v.mu.Unlock()
	}
	return &ch.c
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*gaugeChild
}

type gaugeChild struct {
	values []string
	g      Gauge
}

// WithLabelValues returns the gauge for one label-value tuple, creating it
// on first use. Returns nil on a nil vec.
func (v *GaugeVec) WithLabelValues(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	key := labelKey(v.labels, values)
	v.mu.RLock()
	ch := v.children[key]
	v.mu.RUnlock()
	if ch == nil {
		v.mu.Lock()
		if ch = v.children[key]; ch == nil {
			ch = &gaugeChild{values: normalizeValues(v.labels, values)}
			v.children[key] = ch
		}
		v.mu.Unlock()
	}
	return &ch.g
}

// HistogramVec is a family of histograms sharing one bucket layout, keyed
// by label values.
type HistogramVec struct {
	labels   []string
	bounds   []float64
	mu       sync.RWMutex
	children map[string]*histChild
}

type histChild struct {
	values []string
	h      *Histogram
}

// WithLabelValues returns the histogram for one label-value tuple,
// creating it on first use. Returns nil on a nil vec.
func (v *HistogramVec) WithLabelValues(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key := labelKey(v.labels, values)
	v.mu.RLock()
	ch := v.children[key]
	v.mu.RUnlock()
	if ch == nil {
		v.mu.Lock()
		if ch = v.children[key]; ch == nil {
			ch = &histChild{values: normalizeValues(v.labels, values), h: newHistogram(v.bounds)}
			v.children[key] = ch
		}
		v.mu.Unlock()
	}
	return ch.h
}

// CounterVec returns the named counter family, creating it with the given
// label names on first use. Later calls ignore the label names. Returns
// nil on a nil registry.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.cvecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.cvecs[name]; v == nil {
		v = &CounterVec{labels: append([]string(nil), labels...), children: map[string]*counterChild{}}
		r.cvecs[name] = v
	}
	return v
}

// GaugeVec returns the named gauge family, creating it with the given
// label names on first use. Returns nil on a nil registry.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.gvecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.gvecs[name]; v == nil {
		v = &GaugeVec{labels: append([]string(nil), labels...), children: map[string]*gaugeChild{}}
		r.gvecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram family, creating it with the
// given bucket upper bounds (DefaultBuckets when empty) and label names on
// first use. Later calls ignore both. Returns nil on a nil registry.
func (r *Registry) HistogramVec(name string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.hvecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.hvecs[name]; v == nil {
		if len(bounds) == 0 {
			bounds = DefaultBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		v = &HistogramVec{labels: append([]string(nil), labels...), bounds: bs, children: map[string]*histChild{}}
		r.hvecs[name] = v
	}
	return v
}

// LogBuckets returns log-spaced histogram bucket bounds from min up to (at
// least) max, with perDecade bounds per factor of ten. Log spacing keeps
// the relative quantile-interpolation error flat across orders of
// magnitude — the right layout for latencies that span microseconds to
// minutes. Falls back to DefaultBuckets on degenerate arguments.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade <= 0 {
		return append([]float64(nil), DefaultBuckets...)
	}
	ratio := math.Pow(10, 1/float64(perDecade))
	var out []float64
	for b := min; ; b *= ratio {
		out = append(out, b)
		if b >= max {
			return out
		}
	}
}

// LatencyBuckets is the canonical wall-clock layout for the per-stage and
// per-job latency histograms: log-spaced milliseconds from 1 µs to 60 s,
// three buckets per decade.
var LatencyBuckets = LogBuckets(0.001, 60_000, 3)

// StageMetric is the shared per-stage wall-clock histogram family
// (milliseconds, LatencyBuckets) labeled by "stage". The compiler observes
// mine/initial_blocks/apply_apa/optimize/emit (plus commute when enabled);
// the GRAPE generator, the pulse simulator, and the pulse DB observe
// grape/pulsesim/db_lookup/db_store into the same family. Defined here so
// every layer of the pipeline shares one name without import cycles.
const StageMetric = "paqoc.stage_ms"
