// Package device makes the target hardware a value instead of a set of
// package constants. A Profile bundles everything the compiler stack needs
// to know about one backend — coupling topology, Hamiltonian control
// bounds, the sample time dt, always-on error terms, and per-qubit
// coherence times — so the same pipeline can serve a 5×5 XY grid, an
// IBM-style heavy-hex lattice, or a crosstalk-dominated device by swapping
// one pointer. The registry of built-in profiles backs the `-backend` CLI
// flags and the server's `backend` request field; Fingerprint namespaces
// the warm pulse DB so cached pulses never cross devices.
package device

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"paqoc/internal/hamiltonian"
	"paqoc/internal/noise"
	"paqoc/internal/topology"
)

// Profile describes one hardware backend. Fields are read-only after
// registration; the accessor methods memoize derived values, so a Profile
// is safe for concurrent use.
type Profile struct {
	// Name identifies the profile in the registry, CLI flags, and the
	// server API.
	Name string
	// Description is a one-line human-readable summary.
	Description string
	// NewTopology constructs the coupling graph. It is called once; the
	// result is memoized by Topology().
	NewTopology func() *topology.Topology

	// DtNanoseconds is the duration of one device sample.
	DtNanoseconds float64
	// MuMaxGHz bounds the two-qubit interaction control field.
	MuMaxGHz float64
	// SingleQubitFactor scales the single-qubit drive bound relative to
	// the coupling bound.
	SingleQubitFactor float64

	// ZZCrosstalk is an always-on ZZ drift rate in rad/dt applied to every
	// coupled pair of a compiled block; 0 disables it.
	ZZCrosstalk float64

	// T1Dt and T2Dt are per-qubit coherence times in dt units (amplitude
	// damping and total dephasing); 0 disables the corresponding channel.
	T1Dt float64
	T2Dt float64

	topoOnce sync.Once
	topo     *topology.Topology
	fpOnce   sync.Once
	fp       string
}

// Topology returns the memoized coupling graph.
func (p *Profile) Topology() *topology.Topology {
	p.topoOnce.Do(func() { p.topo = p.NewTopology() })
	return p.topo
}

// Params returns the Hamiltonian control parameters of this backend.
func (p *Profile) Params() hamiltonian.Params {
	return hamiltonian.Params{
		DtNanoseconds:     p.DtNanoseconds,
		MuMaxGHz:          p.MuMaxGHz,
		SingleQubitFactor: p.SingleQubitFactor,
	}
}

// Noise returns the per-qubit coherence parameters of this backend.
func (p *Profile) Noise() noise.Params {
	return noise.Params{T1: p.T1Dt, T2: p.T2Dt}
}

// System builds the Eq. (1) Hamiltonian for an n-qubit block with the
// given local coupling pairs under this backend's bounds, including its
// always-on ZZ crosstalk when configured. Like hamiltonian.XYTransmon it
// panics on invalid pairs — callers pass pairs derived from the topology.
func (p *Profile) System(n int, pairs [][2]int) *hamiltonian.System {
	sys := hamiltonian.XYTransmonWith(p.Params(), n, pairs)
	if p.ZZCrosstalk != 0 {
		noisy, err := sys.WithZZCrosstalk(pairs, p.ZZCrosstalk)
		if err != nil {
			panic(fmt.Sprintf("device: %s: %v", p.Name, err))
		}
		sys = noisy
	}
	return sys
}

// SystemBuilder returns System as a free function, the shape
// grape.Generator accepts without importing this package.
func (p *Profile) SystemBuilder() func(n int, pairs [][2]int) *hamiltonian.System {
	return p.System
}

// Fingerprint is a stable short hash over every physical parameter that
// affects generated pulses: qubit count, the sorted coupling edges, dt,
// control bounds, crosstalk, and coherence times. Two profiles with the
// same physics share a fingerprint regardless of name; any physical
// difference changes it. The pulse DB namespaces warm entries by this
// value so pulses calibrated for one device are never replayed on another.
func (p *Profile) Fingerprint() string {
	p.fpOnce.Do(func() {
		t := p.Topology()
		h := sha256.New()
		fmt.Fprintf(h, "v1|n=%d|dt=%.17g|mu=%.17g|f1q=%.17g|zz=%.17g|t1=%.17g|t2=%.17g|edges=",
			t.NumQubits, p.DtNanoseconds, p.MuMaxGHz, p.SingleQubitFactor,
			p.ZZCrosstalk, p.T1Dt, p.T2Dt)
		for _, e := range t.Edges() { // sorted, so the digest is stable
			fmt.Fprintf(h, "%d-%d;", e[0], e[1])
		}
		p.fp = hex.EncodeToString(h.Sum(nil))[:16]
	})
	return p.fp
}
