package device

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"sync"

	"paqoc/internal/hamiltonian"
	"paqoc/internal/topology"
)

// DefaultName is the paper's evaluation platform and the backend every
// entry point uses when none is requested.
const DefaultName = "xy-grid-5x5"

var (
	regMu    sync.RWMutex
	registry = map[string]*Profile{}
)

// Register adds a profile to the registry. It panics on an empty name or a
// duplicate — profiles are registered once at init time.
func Register(p *Profile) {
	if p.Name == "" {
		panic("device: profile needs a name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("device: duplicate profile %q", p.Name))
	}
	registry[p.Name] = p
}

// Names lists the registered profiles in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Default returns the paper's platform profile.
func Default() *Profile {
	p, err := Lookup(DefaultName)
	if err != nil {
		panic(err) // registered in init below
	}
	return p
}

// Dynamic family names: grids, chains, and heavy-hex lattices of any size
// stay expressible without pre-registering every geometry (the old CLI
// -rows/-cols flags map onto xy-grid-RxC).
var (
	gridName  = regexp.MustCompile(`^xy-grid-(\d+)x(\d+)$`)
	chainName = regexp.MustCompile(`^linear-chain-(\d+)$`)
	hexName   = regexp.MustCompile(`^heavy-hex-(\d+)$`)
)

// Lookup resolves a backend name: a registered profile, or a dynamic
// family name (xy-grid-RxC, linear-chain-N, heavy-hex-N) built with the
// paper's default control parameters. Dynamic profiles are memoized in the
// registry so repeated lookups return the same *Profile (and share its
// cached topology and fingerprint).
func Lookup(name string) (*Profile, error) {
	regMu.RLock()
	p, ok := registry[name]
	regMu.RUnlock()
	if ok {
		return p, nil
	}
	p, err := parseDynamic(name)
	if err != nil {
		return nil, err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if prior, ok := registry[name]; ok { // lost a race; keep the first
		return prior, nil
	}
	registry[name] = p
	return p, nil
}

func parseDynamic(name string) (*Profile, error) {
	if m := gridName.FindStringSubmatch(name); m != nil {
		rows, _ := strconv.Atoi(m[1])
		cols, _ := strconv.Atoi(m[2])
		if rows < 1 || cols < 1 {
			return nil, fmt.Errorf("device: bad grid size in %q", name)
		}
		return defaultControls(&Profile{
			Name:        name,
			Description: fmt.Sprintf("%d×%d XY-coupled transmon grid", rows, cols),
			NewTopology: func() *topology.Topology { return topology.Grid(rows, cols) },
		}), nil
	}
	if m := chainName.FindStringSubmatch(name); m != nil {
		n, _ := strconv.Atoi(m[1])
		if n < 1 {
			return nil, fmt.Errorf("device: bad chain length in %q", name)
		}
		return defaultControls(&Profile{
			Name:        name,
			Description: fmt.Sprintf("%d-qubit linear chain", n),
			NewTopology: func() *topology.Topology { return topology.Line(n) },
		}), nil
	}
	if m := hexName.FindStringSubmatch(name); m != nil {
		cells, _ := strconv.Atoi(m[1])
		if cells < 1 {
			return nil, fmt.Errorf("device: bad heavy-hex cell count in %q", name)
		}
		return defaultControls(&Profile{
			Name:        name,
			Description: fmt.Sprintf("heavy-hex lattice, %d cells (%d qubits)", cells, 5*cells+3),
			NewTopology: func() *topology.Topology { return topology.HeavyHex(cells) },
		}), nil
	}
	return nil, fmt.Errorf("device: unknown backend %q (known: %v)", name, Names())
}

// defaultControls fills in the paper's §VI-c control parameters and NISQ
// coherence times.
func defaultControls(p *Profile) *Profile {
	p.DtNanoseconds = hamiltonian.DtNanoseconds
	p.MuMaxGHz = hamiltonian.MuMaxGHz
	p.SingleQubitFactor = hamiltonian.SingleQubitFactor
	p.T1Dt = 40000
	p.T2Dt = 20000
	return p
}

func init() {
	Register(defaultControls(&Profile{
		Name:        DefaultName,
		Description: "paper §VI-c platform: 5×5 XY-coupled transmon grid, μmax = 0.02 GHz, dt = 2/9 ns",
		NewTopology: func() *topology.Topology { return topology.Grid(5, 5) },
	}))
	Register(defaultControls(&Profile{
		Name:        "heavy-hex",
		Description: "IBM-style heavy-hexagon lattice, 4 cells (23 qubits), degree ≤ 3",
		NewTopology: func() *topology.Topology { return topology.HeavyHex(4) },
	}))
	Register(defaultControls(&Profile{
		Name:        "linear-chain",
		Description: "16-qubit linear chain — worst-case routing diameter",
		NewTopology: func() *topology.Topology { return topology.Line(16) },
	}))
	zz := defaultControls(&Profile{
		Name:        "xy-grid-5x5-zz",
		Description: "5×5 XY grid with 3× typical always-on ZZ crosstalk on every coupling",
		NewTopology: func() *topology.Topology { return topology.Grid(5, 5) },
	})
	zz.ZZCrosstalk = 3 * hamiltonian.TypicalZZCrosstalk
	Register(zz)
}
