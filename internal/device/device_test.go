package device

import (
	"strings"
	"testing"

	"paqoc/internal/hamiltonian"
	"paqoc/internal/topology"
)

// Every registered profile must satisfy the compiler stack's assumptions.
func TestProfileConformance(t *testing.T) {
	for _, name := range Names() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("%s: Name = %q", name, p.Name)
		}
		topo := p.Topology()
		if topo == nil || topo.NumQubits < 1 {
			t.Fatalf("%s: bad topology", name)
		}
		if p.Topology() != topo {
			t.Errorf("%s: Topology() not memoized", name)
		}
		params := p.Params()
		if params.IsZero() || params.DriveBound() <= 0 || params.CouplingBound() <= 0 {
			t.Errorf("%s: degenerate control params %+v", name, params)
		}

		// A 2-qubit block system must carry the profile's bounds on every
		// control and keep the drift Hermitian (unitarity of the
		// propagators follows).
		sys := p.System(2, hamiltonian.LinearChain(2))
		for _, c := range sys.Controls {
			want := params.DriveBound()
			if strings.HasPrefix(c.Name, "c") {
				want = params.CouplingBound()
			}
			if c.Bound != want {
				t.Errorf("%s: control %s bound %g, want %g", name, c.Name, c.Bound, want)
			}
		}
		if !sys.Drift.IsHermitian(1e-12) {
			t.Errorf("%s: drift not Hermitian", name)
		}
		if (p.ZZCrosstalk != 0) != (sys.Drift.MaxAbs() > 0) {
			t.Errorf("%s: crosstalk drift mismatch (zz=%g, |drift|=%g)",
				name, p.ZZCrosstalk, sys.Drift.MaxAbs())
		}

		// Fingerprint: non-empty, memoized, and stable across fresh
		// instances (i.e. independent of map iteration order).
		fp := p.Fingerprint()
		if len(fp) != 16 {
			t.Fatalf("%s: fingerprint %q", name, fp)
		}
		clone := &Profile{
			Name: p.Name, NewTopology: p.NewTopology,
			DtNanoseconds: p.DtNanoseconds, MuMaxGHz: p.MuMaxGHz,
			SingleQubitFactor: p.SingleQubitFactor, ZZCrosstalk: p.ZZCrosstalk,
			T1Dt: p.T1Dt, T2Dt: p.T2Dt,
		}
		for i := 0; i < 3; i++ {
			if got := clone.Fingerprint(); got != fp {
				t.Errorf("%s: fingerprint unstable: %q vs %q", name, got, fp)
			}
		}
	}
}

func TestFingerprintsDistinguishPhysics(t *testing.T) {
	seen := map[string]string{}
	for _, name := range []string{DefaultName, "heavy-hex", "linear-chain", "xy-grid-5x5-zz"} {
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		fp := p.Fingerprint()
		if prior, dup := seen[fp]; dup {
			t.Errorf("%s and %s share fingerprint %s", name, prior, fp)
		}
		seen[fp] = name
	}
}

// The default profile must reproduce the seed platform exactly: same
// topology, bit-identical bounds, no extra drift.
func TestDefaultProfileMatchesSeedPlatform(t *testing.T) {
	p := Default()
	if p.Name != DefaultName {
		t.Fatalf("default = %q", p.Name)
	}
	if p.Params() != hamiltonian.DefaultParams() {
		t.Errorf("params %+v != DefaultParams", p.Params())
	}
	topo := p.Topology()
	want := topology.Grid(5, 5)
	if topo.NumQubits != want.NumQubits {
		t.Fatalf("qubits %d", topo.NumQubits)
	}
	we, ge := want.Edges(), topo.Edges()
	if len(we) != len(ge) {
		t.Fatalf("edges %d != %d", len(ge), len(we))
	}
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("edge %d: %v != %v", i, ge[i], we[i])
		}
	}
	pairs := hamiltonian.LinearChain(3)
	got := p.System(3, pairs)
	seed := hamiltonian.XYTransmon(3, pairs)
	if len(got.Controls) != len(seed.Controls) {
		t.Fatalf("controls %d != %d", len(got.Controls), len(seed.Controls))
	}
	for i := range got.Controls {
		if got.Controls[i].Name != seed.Controls[i].Name ||
			got.Controls[i].Bound != seed.Controls[i].Bound {
			t.Errorf("control %d: %s/%g vs %s/%g", i,
				got.Controls[i].Name, got.Controls[i].Bound,
				seed.Controls[i].Name, seed.Controls[i].Bound)
		}
	}
	if got.Drift.MaxAbs() != 0 {
		t.Error("default profile must not add drift")
	}
}

func TestLookupDynamicNames(t *testing.T) {
	cases := []struct {
		name   string
		qubits int
	}{
		{"xy-grid-2x3", 6},
		{"linear-chain-7", 7},
		{"heavy-hex-2", 13},
	}
	for _, c := range cases {
		p, err := Lookup(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := p.Topology().NumQubits; got != c.qubits {
			t.Errorf("%s: %d qubits, want %d", c.name, got, c.qubits)
		}
		again, err := Lookup(c.name)
		if err != nil || again != p {
			t.Errorf("%s: dynamic profile not memoized", c.name)
		}
	}
	for _, bad := range []string{"", "nope", "xy-grid-0x4", "linear-chain-0", "heavy-hex-0", "xy-grid-x", "XY-GRID-5x5"} {
		if _, err := Lookup(bad); err == nil {
			t.Errorf("Lookup(%q) should fail", bad)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	Register(Default())
}
