package accqoc

import (
	"context"
	"math/rand"
	"testing"

	"paqoc/internal/circuit"
	"paqoc/internal/latency"
	"paqoc/internal/linalg"
)

func randomCircuit(seed int64, nq, gates int) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(nq)
	names := []string{"h", "t", "s", "x"}
	for i := 0; i < gates; i++ {
		if rng.Intn(3) == 0 {
			c.Add(names[rng.Intn(len(names))], rng.Intn(nq))
		} else {
			a, b := rng.Intn(nq), rng.Intn(nq)
			for b == a {
				b = rng.Intn(nq)
			}
			c.Add("cx", a, b)
		}
	}
	return c
}

func TestPartitionCoversAllGatesOnce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := randomCircuit(seed, 6, 60)
		groups := Partition(c, 3, 3)
		seen := make([]bool, len(c.Gates))
		for _, grp := range groups {
			for _, gi := range grp {
				if seen[gi] {
					t.Fatalf("seed %d: gate %d in two groups", seed, gi)
				}
				seen[gi] = true
			}
		}
		for gi, ok := range seen {
			if !ok {
				t.Fatalf("seed %d: gate %d not covered", seed, gi)
			}
		}
	}
}

func TestPartitionRespectsCaps(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := randomCircuit(seed, 6, 60)
		for _, caps := range [][2]int{{3, 3}, {3, 5}, {2, 3}} {
			for _, grp := range Partition(c, caps[0], caps[1]) {
				qs := map[int]bool{}
				level := map[int]int{}
				depth := 0
				for _, gi := range grp {
					g := c.Gates[gi]
					mx := 0
					for _, q := range g.Qubits {
						qs[q] = true
						if level[q] > mx {
							mx = level[q]
						}
					}
					mx++
					for _, q := range g.Qubits {
						level[q] = mx
					}
					if mx > depth {
						depth = mx
					}
				}
				if len(qs) > caps[0] {
					t.Fatalf("group qubits %d > cap %d", len(qs), caps[0])
				}
				if depth > caps[1] {
					t.Fatalf("group depth %d > cap %d", depth, caps[1])
				}
			}
		}
	}
}

func TestPartitionBlockOrderIsLinearExtension(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := randomCircuit(seed, 6, 80)
		bc := blocksFromGroups(c, Partition(c, 3, 5))
		dag := bc.DAG()
		for u, ss := range dag.Succs {
			for _, s := range ss {
				if s <= u {
					t.Fatalf("seed %d: edge %d→%d violates linear extension", seed, u, s)
				}
			}
		}
		dag.TopoOrder()
	}
}

func TestCompilePreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := randomCircuit(seed, 3, 20)
		want, err := c.Unitary(4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CompileCtx(context.Background(), c, latency.NewModel(), N3D3())
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Blocks.Flatten().Unitary(4)
		if err != nil {
			t.Fatal(err)
		}
		if linalg.GlobalPhaseDistance(want, got) > 1e-8 {
			t.Fatalf("seed %d: partitioning changed the unitary", seed)
		}
	}
}

func TestDepth5MergesMoreThanDepth3(t *testing.T) {
	c := randomCircuit(3, 6, 80)
	g3 := Partition(c, 3, 3)
	g5 := Partition(c, 3, 5)
	if len(g5) > len(g3) {
		t.Errorf("depth 5 made more groups (%d) than depth 3 (%d)", len(g5), len(g3))
	}
}

func TestCompileProducesPulsesAndMetrics(t *testing.T) {
	c := randomCircuit(1, 5, 40)
	res, err := CompileCtx(context.Background(), c, latency.NewModel(), N3D5())
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 || res.NumBlocks == 0 {
		t.Errorf("degenerate result %+v", res)
	}
	if res.ESP <= 0 || res.ESP > 1 {
		t.Errorf("ESP %g", res.ESP)
	}
	for _, b := range res.Blocks.Blocks {
		if b.Gen == nil {
			t.Fatal("block missing pulses")
		}
	}
	if res.CompileCost <= 0 {
		t.Error("compile cost missing")
	}
}

func TestGroupingBeatsPerGateLatency(t *testing.T) {
	// The whole point of the customized-gate approach: grouped pulses
	// beat the fixed-gate (one pulse per gate) lower bound.
	c := randomCircuit(2, 5, 50)
	model := latency.NewModel()
	res, err := CompileCtx(context.Background(), c, model, N3D3())
	if err != nil {
		t.Fatal(err)
	}
	perGate, err := CompileCtx(context.Background(), c, latency.NewModel(), Options{MaxQubits: 3, Depth: 1, FidelityTarget: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency >= perGate.Latency {
		t.Errorf("grouped latency %.1f not below per-gate %.1f", res.Latency, perGate.Latency)
	}
}

func TestConstructionOrderVisitsAll(t *testing.T) {
	c := randomCircuit(4, 5, 40)
	bc := blocksFromGroups(c, Partition(c, 3, 3))
	order, _, err := constructionOrder(bc)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(bc.Blocks) {
		t.Fatalf("order covers %d of %d blocks", len(order), len(bc.Blocks))
	}
	seen := map[int]bool{}
	for _, i := range order {
		if seen[i] {
			t.Fatal("duplicate in construction order")
		}
		seen[i] = true
	}
}

func BenchmarkPartition(b *testing.B) {
	c := randomCircuit(9, 10, 400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Partition(c, 3, 3)
	}
}

func BenchmarkCompileN3D3(b *testing.B) {
	c := randomCircuit(9, 6, 80)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompileCtx(context.Background(), c, latency.NewModel(), N3D3()); err != nil {
			b.Fatal(err)
		}
	}
}
