// Package accqoc implements the paper's baseline, AccQOC (Cheng, Deng,
// Qian — ISCA 2020), in the extended form the evaluation uses (§VI-b):
// the circuit is divided into fixed-size subcircuits with at most
// MaxQubits qubits (3 in the evaluation) and a fixed depth limit (3 or 5),
// and pulses are generated per subcircuit. Compilation is accelerated by a
// similarity graph over the distinct subcircuit unitaries: a Prim MST
// determines the construction order so each pulse generation starts from
// the nearest previously generated pulse (§VII).
package accqoc

import (
	"context"
	"fmt"
	"time"

	"paqoc/internal/circuit"
	"paqoc/internal/critical"
	"paqoc/internal/engine"
	"paqoc/internal/linalg"
	"paqoc/internal/obs"
	"paqoc/internal/pulse"
	"paqoc/internal/pulsesim"
)

// Options configures the baseline partitioner.
type Options struct {
	MaxQubits      int     // per-group qubit cap (3 in accqoc_n3d*)
	Depth          int     // fixed depth limit (3 or 5)
	FidelityTarget float64 // per-group fidelity target
	// Workers bounds the emission worker pool (internal/engine), so
	// Fig. 10/11 comparisons against the parallel PAQOC pipeline stay
	// like for like. 0 or 1 emits serially in MST construction order;
	// higher values fan out (warm starts then depend on completion
	// timing, exactly as a parallel AccQOC would).
	Workers int
}

// N3D3 is the accqoc_n3d3 configuration.
func N3D3() Options { return Options{MaxQubits: 3, Depth: 3, FidelityTarget: 0.999} }

// N3D5 is the accqoc_n3d5 configuration.
func N3D5() Options { return Options{MaxQubits: 3, Depth: 5, FidelityTarget: 0.999} }

// Result mirrors the PAQOC result for side-by-side comparison.
type Result struct {
	Blocks       *critical.BlockCircuit
	Latency      float64
	TotalLatency float64
	ESP          float64
	CompileCost  float64
	WallTime     time.Duration
	NumBlocks    int
}

// CompileCtx partitions the circuit and generates pulses per group, with
// observability — the baseline carries the same
// instrumentation as the PAQOC path so per-stage latency breakdowns
// compare like for like: spans accqoc.partition, accqoc.order, and
// accqoc.emit under accqoc.compile, plus group counters.
func CompileCtx(ctx context.Context, c *circuit.Circuit, gen pulse.Generator, opts Options) (*Result, error) {
	if opts.MaxQubits == 0 {
		opts.MaxQubits = 3
	}
	if opts.Depth == 0 {
		opts.Depth = 3
	}
	if opts.FidelityTarget == 0 {
		opts.FidelityTarget = 0.999
	}
	start := time.Now()
	reg := obs.MetricsFrom(ctx)
	ctx, root := obs.StartSpan(ctx, "accqoc.compile")
	root.SetAttr("gates", len(c.Gates))
	defer root.End()

	_, pSpan := obs.StartSpan(ctx, "accqoc.partition")
	groups := Partition(c, opts.MaxQubits, opts.Depth)
	bc := blocksFromGroups(c, groups)
	pSpan.SetAttr("groups", len(groups))
	pSpan.End()
	reg.Counter("accqoc.groups").Add(int64(len(groups)))

	// Similarity-ordered pulse generation (MST over distinct unitaries).
	_, oSpan := obs.StartSpan(ctx, "accqoc.order")
	order, _, err := constructionOrder(bc)
	oSpan.End()
	if err != nil {
		return nil, err
	}
	// Emission on the worker pool, submitted in MST order so the serial
	// case (Workers ≤ 1) preserves the similarity-ordered warm starts
	// exactly. Each task writes only its own block; costs are reduced in
	// MST order afterwards so the total is deterministic per worker count.
	ectx, eSpan := obs.StartSpan(ctx, "accqoc.emit")
	emitted := reg.Counter("accqoc.emitted")
	eSpan.SetAttr("workers", opts.Workers)
	pool, _ := engine.WithContext(ectx, opts.Workers)
	for _, bi := range order {
		bi := bi
		pool.Go(func(ctx context.Context) error {
			g, err := gen.GenerateCtx(ctx, bc.Blocks[bi].Custom(), opts.FidelityTarget)
			if err != nil {
				return fmt.Errorf("accqoc: group %s: %v", bc.Blocks[bi].Custom().Describe(), err)
			}
			emitted.Inc()
			bc.Blocks[bi].Gen = g
			bc.Blocks[bi].Latency = g.Latency
			return nil
		})
	}
	if err := pool.Wait(); err != nil {
		eSpan.End()
		return nil, err
	}
	var cost float64
	for _, bi := range order {
		cost += bc.Blocks[bi].Gen.Cost
	}
	eSpan.End()

	wall := time.Since(start)
	return &Result{
		Blocks:       bc,
		Latency:      bc.CriticalPath(),
		TotalLatency: bc.TotalLatency(),
		ESP:          pulsesim.ESPCtx(ctx, bc.Generated()),
		CompileCost:  cost + wall.Seconds(),
		WallTime:     wall,
		NumBlocks:    len(bc.Blocks),
	}, nil
}

// Partition greedily groups consecutive gates into fixed-size subcircuits:
// a gate joins the open group holding all of its qubits' last writers when
// the qubit cap and depth cap allow; otherwise the conflicting groups close
// and a fresh group opens. Returned groups list gate indices in program
// order.
func Partition(c *circuit.Circuit, maxQubits, depth int) [][]int {
	type group struct {
		id     int
		gates  []int
		qubits map[int]bool
		qDepth map[int]int // per-qubit chain depth inside the group
		open   bool
	}
	var groups []*group
	owner := make(map[int]*group) // qubit → open group that last wrote it

	newGroup := func(gi int, g circuit.Gate) {
		ng := &group{id: len(groups), qubits: map[int]bool{}, qDepth: map[int]int{}, open: true}
		ng.gates = append(ng.gates, gi)
		for _, q := range g.Qubits {
			ng.qubits[q] = true
			ng.qDepth[q] = 1
			if prev := owner[q]; prev != nil && prev != ng {
				prev.open = false
			}
			owner[q] = ng
		}
		groups = append(groups, ng)
	}

	for gi, g := range c.Gates {
		// Identify the open group owning this gate's qubits. Joining is
		// only legal when every qubit's last writer is the host itself, an
		// earlier-created (already closed) group, or nothing — otherwise
		// the block order would stop being a linear extension of the
		// dependence DAG.
		var host *group
		joinable := true
		for _, q := range g.Qubits {
			og := owner[q]
			if og == nil || !og.open {
				continue
			}
			if host == nil {
				host = og
			} else if host != og {
				joinable = false // gate spans two open groups
			}
		}
		if host != nil && joinable {
			for _, q := range g.Qubits {
				if og := owner[q]; og != nil && og != host && og.id > host.id {
					joinable = false // depends on a group created after host
					break
				}
			}
		}
		if host == nil || !joinable {
			newGroup(gi, g)
			continue
		}
		// Capacity checks: qubit-union and depth.
		unionQ := len(host.qubits)
		for _, q := range g.Qubits {
			if !host.qubits[q] {
				unionQ++
			}
		}
		newDepth := 0
		for _, q := range g.Qubits {
			if d := host.qDepth[q]; d > newDepth {
				newDepth = d
			}
		}
		newDepth++
		if unionQ > maxQubits || newDepth > depth {
			newGroup(gi, g)
			continue
		}
		host.gates = append(host.gates, gi)
		for _, q := range g.Qubits {
			host.qubits[q] = true
			host.qDepth[q] = newDepth
			if prev := owner[q]; prev != nil && prev != host {
				prev.open = false
			}
			owner[q] = host
		}
	}

	out := make([][]int, len(groups))
	for i, g := range groups {
		out[i] = g.gates
	}
	return out
}

// blocksFromGroups builds the block circuit in program order of each
// group's first gate.
func blocksFromGroups(c *circuit.Circuit, groups [][]int) *critical.BlockCircuit {
	bc := &critical.BlockCircuit{NumQubits: c.NumQubits}
	for _, grp := range groups {
		var gates []circuit.Gate
		for _, gi := range grp {
			gates = append(gates, c.Gates[gi].Clone())
		}
		cg := pulse.NewCustomGate(gates)
		bc.Blocks = append(bc.Blocks, &critical.Block{
			Gates:  gates,
			Qubits: cg.Qubits,
			Origin: append([]int(nil), grp...),
		})
	}
	return bc
}

// constructionOrder returns block indices in MST order over unitary
// similarity, starting from the most "central" block, so warm starts in
// the pulse generator's database fire as often as possible.
func constructionOrder(bc *critical.BlockCircuit) ([]int, []*linalg.Matrix, error) {
	n := len(bc.Blocks)
	unitaries := make([]*linalg.Matrix, n)
	for i, b := range bc.Blocks {
		u, err := b.Custom().Unitary()
		if err != nil {
			return nil, nil, err
		}
		unitaries[i] = u
	}
	if n <= 2 {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order, unitaries, nil
	}
	// Prim's algorithm; distances only defined between same-dimension
	// unitaries, cross-dimension edges get a large constant.
	const crossDim = 1e6
	dist := func(a, b int) float64 {
		ua, ub := unitaries[a], unitaries[b]
		if ua.Rows != ub.Rows {
			return crossDim
		}
		return linalg.GlobalPhaseDistance(ua, ub)
	}
	inTree := make([]bool, n)
	best := make([]float64, n)
	for i := range best {
		best[i] = crossDim * 2
	}
	order := []int{0}
	inTree[0] = true
	for i := 1; i < n; i++ {
		best[i] = dist(0, i)
	}
	for len(order) < n {
		next, nextD := -1, crossDim*3
		for i := 0; i < n; i++ {
			if !inTree[i] && best[i] < nextD {
				next, nextD = i, best[i]
			}
		}
		if next < 0 {
			break
		}
		inTree[next] = true
		order = append(order, next)
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := dist(next, i); d < best[i] {
					best[i] = d
				}
			}
		}
	}
	return order, unitaries, nil
}
