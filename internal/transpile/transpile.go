// Package transpile lowers circuits to a universal basis-gate set:
// multi-qubit gates (Toffoli, Fredkin, CZ, CPHASE, SWAP, iSWAP, …) are
// rewritten into CX plus single-qubit gates, and runs of single-qubit gates
// can be fused into one u3. This is the front half of Fig. 1's pipeline —
// the input PAQOC expects is a physical circuit over universal basis gates.
package transpile

import (
	"fmt"
	"math"
	"math/cmplx"

	"paqoc/internal/circuit"
	"paqoc/internal/linalg"
	"paqoc/internal/route"
	"paqoc/internal/topology"
)

// UniversalBasis is the default basis-gate set: all library single-qubit
// gates plus CX. It matches the paper's setup where input circuits "are
// built upon universal basis gates" (§VI-a).
func UniversalBasis() map[string]bool {
	return map[string]bool{
		"id": true, "x": true, "y": true, "z": true, "h": true,
		"s": true, "sdg": true, "t": true, "tdg": true, "sx": true,
		"rx": true, "ry": true, "rz": true, "u1": true, "u2": true, "u3": true,
		"cx": true,
	}
}

// Decompose rewrites every gate not in the basis using the rule table,
// recursively, until the whole circuit is basis-only.
func Decompose(c *circuit.Circuit, basis map[string]bool) (*circuit.Circuit, error) {
	out := circuit.New(c.NumQubits)
	for _, g := range c.Gates {
		if err := lower(out, g, basis, 0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func lower(out *circuit.Circuit, g circuit.Gate, basis map[string]bool, depth int) error {
	if depth > 8 {
		return fmt.Errorf("transpile: decomposition recursion too deep at %s", g.Name)
	}
	if basis[g.Name] {
		out.AddGate(g.Clone())
		return nil
	}
	sub, err := rules(g)
	if err != nil {
		return err
	}
	for _, s := range sub {
		if err := lower(out, s, basis, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// rules returns the expansion of one non-basis gate into simpler gates.
func rules(g circuit.Gate) ([]circuit.Gate, error) {
	q := g.Qubits
	mk := func(name string, params []float64, qubits ...int) circuit.Gate {
		return circuit.Gate{Name: name, Params: params, Qubits: qubits}
	}
	switch g.Name {
	case "cz":
		return []circuit.Gate{
			mk("h", nil, q[1]),
			mk("cx", nil, q[0], q[1]),
			mk("h", nil, q[1]),
		}, nil
	case "swap":
		return []circuit.Gate{
			mk("cx", nil, q[0], q[1]),
			mk("cx", nil, q[1], q[0]),
			mk("cx", nil, q[0], q[1]),
		}, nil
	case "iswap":
		return []circuit.Gate{
			mk("s", nil, q[0]),
			mk("s", nil, q[1]),
			mk("h", nil, q[0]),
			mk("cx", nil, q[0], q[1]),
			mk("cx", nil, q[1], q[0]),
			mk("h", nil, q[1]),
		}, nil
	case "cp", "cphase", "cu1":
		if g.IsSymbolic() {
			return nil, fmt.Errorf("transpile: cannot decompose symbolic %s", g.Name)
		}
		l := g.Params[0]
		return []circuit.Gate{
			mk("rz", []float64{l / 2}, q[0]),
			mk("cx", nil, q[0], q[1]),
			mk("rz", []float64{-l / 2}, q[1]),
			mk("cx", nil, q[0], q[1]),
			mk("rz", []float64{l / 2}, q[1]),
		}, nil
	case "crz":
		if g.IsSymbolic() {
			return nil, fmt.Errorf("transpile: cannot decompose symbolic %s", g.Name)
		}
		th := g.Params[0]
		return []circuit.Gate{
			mk("rz", []float64{th / 2}, q[1]),
			mk("cx", nil, q[0], q[1]),
			mk("rz", []float64{-th / 2}, q[1]),
			mk("cx", nil, q[0], q[1]),
		}, nil
	case "ccx", "toffoli":
		a, b, c := q[0], q[1], q[2]
		return []circuit.Gate{
			mk("h", nil, c),
			mk("cx", nil, b, c),
			mk("tdg", nil, c),
			mk("cx", nil, a, c),
			mk("t", nil, c),
			mk("cx", nil, b, c),
			mk("tdg", nil, c),
			mk("cx", nil, a, c),
			mk("t", nil, b),
			mk("t", nil, c),
			mk("h", nil, c),
			mk("cx", nil, a, b),
			mk("t", nil, a),
			mk("tdg", nil, b),
			mk("cx", nil, a, b),
		}, nil
	case "ccz":
		return []circuit.Gate{
			mk("h", nil, q[2]),
			mk("ccx", nil, q[0], q[1], q[2]),
			mk("h", nil, q[2]),
		}, nil
	case "cswap":
		return []circuit.Gate{
			mk("cx", nil, q[2], q[1]),
			mk("ccx", nil, q[0], q[1], q[2]),
			mk("cx", nil, q[2], q[1]),
		}, nil
	case "y":
		// Y = S·X·Sdg up to global phase? Use exact rule Y = Z·X·(i) — emit
		// rz(π) then x then global phase (dropped): Sdg·X·S = Y.
		return []circuit.Gate{
			mk("sdg", nil, q[0]),
			mk("x", nil, q[0]),
			mk("s", nil, q[0]),
		}, nil
	case "z":
		return []circuit.Gate{mk("rz", []float64{math.Pi}, q[0])}, nil
	}
	return nil, fmt.Errorf("transpile: no decomposition rule for gate %q", g.Name)
}

// Fuse1Q merges maximal runs of consecutive single-qubit gates on the same
// wire into one u3 gate (computed via ZYZ decomposition), leaving
// multi-qubit and symbolic gates untouched. Identity-equivalent runs are
// dropped entirely.
func Fuse1Q(c *circuit.Circuit) (*circuit.Circuit, error) {
	out := circuit.New(c.NumQubits)
	pending := make(map[int]*linalg.Matrix) // wire → accumulated 2x2 unitary

	flush := func(q int) error {
		u, ok := pending[q]
		if !ok {
			return nil
		}
		delete(pending, q)
		theta, phi, lambda := ZYZ(u)
		if math.Abs(theta) < 1e-10 && math.Abs(math.Mod(phi+lambda, 2*math.Pi)) < 1e-10 {
			return nil // identity up to phase
		}
		out.AddParam("u3", []float64{theta, phi, lambda}, q)
		return nil
	}

	for _, g := range c.Gates {
		if g.Arity() == 1 && !g.IsSymbolic() {
			u, err := g.Unitary()
			if err != nil {
				return nil, err
			}
			q := g.Qubits[0]
			if acc, ok := pending[q]; ok {
				pending[q] = u.Mul(acc)
			} else {
				pending[q] = u
			}
			continue
		}
		for _, q := range g.Qubits {
			if err := flush(q); err != nil {
				return nil, err
			}
		}
		out.AddGate(g.Clone())
	}
	for q := 0; q < c.NumQubits; q++ {
		if err := flush(q); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ZYZ decomposes a 2×2 unitary as e^{iα}·Rz(φ)·Ry(θ)·Rz(λ) and returns
// (θ, φ, λ); the global phase α is discarded.
func ZYZ(u *linalg.Matrix) (theta, phi, lambda float64) {
	a := u.At(0, 0)
	b := u.At(0, 1)
	c := u.At(1, 0)
	d := u.At(1, 1)
	theta = 2 * math.Atan2(cmplx.Abs(c), cmplx.Abs(a))
	const eps = 1e-12
	switch {
	case cmplx.Abs(c) < eps: // diagonal
		phi = cmplx.Phase(d) - cmplx.Phase(a)
		lambda = 0
	case cmplx.Abs(a) < eps: // anti-diagonal
		phi = cmplx.Phase(c) - cmplx.Phase(-b)
		lambda = 0
	default:
		phi = cmplx.Phase(c) - cmplx.Phase(a)
		lambda = cmplx.Phase(-b) - cmplx.Phase(a)
	}
	return theta, phi, lambda
}

// ToPhysical runs the full lowering pipeline the paper assumes as input
// (Fig. 1): decompose to the universal basis, route onto the topology with
// SABRE, then decompose inserted SWAPs so the physical circuit is
// basis-only. It returns the physical circuit and the routing result.
func ToPhysical(logical *circuit.Circuit, topo *topology.Topology, opts route.Options) (*circuit.Circuit, *route.Result, error) {
	basis := UniversalBasis()
	lowered, err := Decompose(logical, basis)
	if err != nil {
		return nil, nil, err
	}
	res, err := route.Route(lowered, topo, opts)
	if err != nil {
		return nil, nil, err
	}
	phys, err := Decompose(res.Physical, basis)
	if err != nil {
		return nil, nil, err
	}
	return phys, res, nil
}
