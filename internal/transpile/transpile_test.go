package transpile

import (
	"math"
	"math/rand"
	"testing"

	"paqoc/internal/circuit"
	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
	"paqoc/internal/route"
	"paqoc/internal/topology"
)

// unitaryOf builds the circuit unitary or fails the test.
func unitaryOf(t *testing.T, c *circuit.Circuit) *linalg.Matrix {
	t.Helper()
	u, err := c.Unitary(8)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// checkEquivalent asserts two circuits implement the same unitary up to
// global phase.
func checkEquivalent(t *testing.T, a, b *circuit.Circuit, what string) {
	t.Helper()
	if d := linalg.GlobalPhaseDistance(unitaryOf(t, a), unitaryOf(t, b)); d > 1e-8 {
		t.Errorf("%s: circuits differ, phase distance %g", what, d)
	}
}

func single(n int, g circuit.Gate) *circuit.Circuit {
	c := circuit.New(n)
	c.AddGate(g)
	return c
}

func TestDecompositionRulesPreserveUnitary(t *testing.T) {
	cases := []struct {
		n int
		g circuit.Gate
	}{
		{2, circuit.Gate{Name: "cz", Qubits: []int{0, 1}}},
		{2, circuit.Gate{Name: "swap", Qubits: []int{0, 1}}},
		{2, circuit.Gate{Name: "iswap", Qubits: []int{0, 1}}},
		{2, circuit.Gate{Name: "cp", Params: []float64{0.7}, Qubits: []int{0, 1}}},
		{2, circuit.Gate{Name: "cu1", Params: []float64{-1.3}, Qubits: []int{0, 1}}},
		{2, circuit.Gate{Name: "crz", Params: []float64{2.1}, Qubits: []int{0, 1}}},
		{3, circuit.Gate{Name: "ccx", Qubits: []int{0, 1, 2}}},
		{3, circuit.Gate{Name: "ccx", Qubits: []int{2, 0, 1}}},
		{3, circuit.Gate{Name: "ccz", Qubits: []int{0, 1, 2}}},
		{3, circuit.Gate{Name: "cswap", Qubits: []int{0, 1, 2}}},
		{1, circuit.Gate{Name: "y", Qubits: []int{0}}},
		{1, circuit.Gate{Name: "z", Qubits: []int{0}}},
	}
	basis := UniversalBasis()
	for _, tc := range cases {
		orig := single(tc.n, tc.g)
		dec, err := Decompose(orig, basis)
		if err != nil {
			t.Fatalf("%s: %v", tc.g.Name, err)
		}
		for _, g := range dec.Gates {
			if !basis[g.Name] {
				t.Errorf("%s: non-basis gate %s survived", tc.g.Name, g.Name)
			}
		}
		checkEquivalent(t, orig, dec, tc.g.Name)
	}
}

func TestDecomposeRestrictedBasis(t *testing.T) {
	// With y removed from the basis, y gets rewritten; with it present it
	// passes through untouched.
	c := single(1, circuit.Gate{Name: "y", Qubits: []int{0}})
	basis := UniversalBasis()
	dec, err := Decompose(c, basis)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Gates) != 1 || dec.Gates[0].Name != "y" {
		t.Error("y should pass through the universal basis")
	}
	delete(basis, "y")
	dec, err = Decompose(c, basis)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range dec.Gates {
		if g.Name == "y" {
			t.Error("y not decomposed")
		}
	}
	checkEquivalent(t, c, dec, "restricted y")
}

func TestDecomposeUnknownGate(t *testing.T) {
	c := circuit.New(1)
	c.Gates = append(c.Gates, circuit.Gate{Name: "mystery", Qubits: []int{0}})
	if _, err := Decompose(c, UniversalBasis()); err == nil {
		t.Error("expected error for unknown gate")
	}
}

func TestDecomposeSymbolicCPFails(t *testing.T) {
	c := circuit.New(2)
	c.AddSymbolic("cp", "gamma", 0, 1)
	if _, err := Decompose(c, UniversalBasis()); err == nil {
		t.Error("expected error for symbolic cp")
	}
}

func TestZYZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		u := quantum.U3(rng.Float64()*math.Pi, rng.Float64()*2*math.Pi-math.Pi, rng.Float64()*2*math.Pi-math.Pi)
		th, ph, la := ZYZ(u)
		re := quantum.U3(th, ph, la)
		if d := linalg.GlobalPhaseDistance(u, re); d > 1e-9 {
			t.Fatalf("ZYZ round trip failed (trial %d): distance %g", i, d)
		}
	}
}

func TestZYZEdgeCases(t *testing.T) {
	for _, u := range []*linalg.Matrix{
		linalg.Identity(2),
		quantum.MatZ,
		quantum.MatX,
		quantum.MatH,
		quantum.MatS,
	} {
		th, ph, la := ZYZ(u)
		re := quantum.U3(th, ph, la)
		if d := linalg.GlobalPhaseDistance(u, re); d > 1e-9 {
			t.Errorf("ZYZ failed on fixed gate: %g", d)
		}
	}
}

func TestFuse1QMergesRuns(t *testing.T) {
	c := circuit.New(2)
	c.Add("h", 0)
	c.Add("t", 0)
	c.Add("h", 0)
	c.Add("x", 1)
	c.Add("cx", 0, 1)
	c.Add("s", 1)
	fused, err := Fuse1Q(c)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: u3(0), u3(1), cx, u3(1) = 4 gates.
	if len(fused.Gates) != 4 {
		t.Errorf("fused to %d gates: %v", len(fused.Gates), fused.Gates)
	}
	checkEquivalent(t, c, fused, "fuse")
}

func TestFuse1QDropsIdentity(t *testing.T) {
	c := circuit.New(1)
	c.Add("h", 0)
	c.Add("h", 0)
	fused, err := Fuse1Q(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused.Gates) != 0 {
		t.Errorf("H·H should fuse to nothing, got %v", fused.Gates)
	}
}

func TestFuse1QKeepsSymbolic(t *testing.T) {
	c := circuit.New(1)
	c.Add("h", 0)
	c.AddSymbolic("rz", "a", 0)
	c.Add("h", 0)
	fused, err := Fuse1Q(c)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range fused.Gates {
		if g.Symbol == "a" {
			found = true
		}
	}
	if !found {
		t.Error("symbolic gate was destroyed by fusion")
	}
}

func TestFuse1QRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	names := []string{"h", "t", "s", "x", "sdg", "sx"}
	for trial := 0; trial < 10; trial++ {
		c := circuit.New(3)
		for i := 0; i < 30; i++ {
			if rng.Intn(4) == 0 {
				a, b := rng.Intn(3), rng.Intn(3)
				for b == a {
					b = rng.Intn(3)
				}
				c.Add("cx", a, b)
			} else {
				c.Add(names[rng.Intn(len(names))], rng.Intn(3))
			}
		}
		fused, err := Fuse1Q(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(fused.Gates) > len(c.Gates) {
			t.Error("fusion increased gate count")
		}
		checkEquivalent(t, c, fused, "random fuse")
	}
}

func TestToPhysicalPipeline(t *testing.T) {
	logical := circuit.New(3)
	logical.Add("h", 0)
	logical.Add("ccx", 0, 1, 2)
	logical.Add("cx", 0, 2)
	phys, res, err := ToPhysical(logical, topology.Line(3), route.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	basis := UniversalBasis()
	topo := topology.Line(3)
	for _, g := range phys.Gates {
		if !basis[g.Name] {
			t.Errorf("non-basis gate %s in physical circuit", g.Name)
		}
		if g.Arity() == 2 && !topo.Connected(g.Qubits[0], g.Qubits[1]) {
			t.Errorf("gate %v violates topology", g)
		}
	}
	if res.Physical == nil {
		t.Error("missing routing result")
	}
}

func BenchmarkDecomposeToffoliChain(b *testing.B) {
	c := circuit.New(10)
	for i := 0; i+2 < 10; i++ {
		c.Add("ccx", i, i+1, i+2)
	}
	basis := UniversalBasis()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(c, basis); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFuse1Q(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := circuit.New(8)
	names := []string{"h", "t", "s", "x"}
	for i := 0; i < 400; i++ {
		if rng.Intn(3) == 0 {
			x, y := rng.Intn(8), rng.Intn(8)
			for y == x {
				y = rng.Intn(8)
			}
			c.Add("cx", x, y)
		} else {
			c.Add(names[rng.Intn(4)], rng.Intn(8))
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fuse1Q(c); err != nil {
			b.Fatal(err)
		}
	}
}
