package grape

import (
	"fmt"
	"math"
	"math/rand"

	"paqoc/internal/hamiltonian"
	"paqoc/internal/linalg"
)

// OptimizeReference is the pre-arena GRAPE loop, kept verbatim on the
// value-returning (allocating) linalg kernels with no instrumentation.
// It is the differential oracle for the zero-allocation path — for any
// fixed seed, optimize must reproduce its Fidelity, Iters, and Amps
// bit-for-bit (TestOptimizeMatchesReference) — and the "before" baseline
// for the kernel benchmarks (EXPERIMENTS.md, BENCH_003.json). Not for
// production use: call OptimizeCtx.
func OptimizeReference(sys *hamiltonian.System, target *linalg.Matrix, slices int, opts Options) *Result {
	opts.fill()
	if target.Rows != sys.Dim {
		panic(fmt.Sprintf("grape: target dim %d does not match system dim %d", target.Rows, sys.Dim))
	}
	nc := len(sys.Controls)
	rng := rand.New(rand.NewSource(opts.Seed + int64(slices)))

	amps := make([][]float64, nc)
	for k := range amps {
		amps[k] = make([]float64, slices)
		for j := range amps[k] {
			amps[k][j] = sys.Controls[k].Bound * 0.2 * (rng.Float64()*2 - 1)
		}
	}
	if guess := alignGuess(sys, opts.InitialGuess); guess != nil {
		for k := 0; k < nc; k++ {
			src := guess[k]
			srcN := len(src)
			for j := 0; j < slices; j++ {
				amps[k][j] = src[j*srcN/slices]
			}
		}
	}

	m := make([][]float64, nc)
	v := make([][]float64, nc)
	for k := range m {
		m[k] = make([]float64, slices)
		v[k] = make([]float64, slices)
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	best := &Result{Fidelity: -1}
	dim := float64(sys.Dim)
	dt := opts.SliceDt

	for iter := 1; iter <= opts.MaxIter; iter++ {
		// Forward pass: slice propagators and cumulative products.
		props := make([]*linalg.Matrix, slices)
		fwd := make([]*linalg.Matrix, slices+1)
		fwd[0] = linalg.Identity(sys.Dim)
		sliceAmps := make([]float64, nc)
		for j := 0; j < slices; j++ {
			for k := 0; k < nc; k++ {
				sliceAmps[k] = amps[k][j]
			}
			props[j] = sys.Propagator(sliceAmps, dt)
			fwd[j+1] = props[j].Mul(fwd[j])
		}
		overlap := linalg.TraceOverlap(target, fwd[slices])
		fid := (real(overlap)*real(overlap) + imag(overlap)*imag(overlap)) / (dim * dim)
		if fid > best.Fidelity {
			best.Fidelity = fid
			best.Iters = iter
			best.Amps = cloneAmps(amps)
			if fid >= opts.TargetFidelity {
				return best
			}
		}

		// Backward pass.
		c := target.Dagger()
		grads := make([][]float64, nc)
		for k := range grads {
			grads[k] = make([]float64, slices)
		}
		for j := slices - 1; j >= 0; j-- {
			d := fwd[j+1].Mul(c)
			for k := 0; k < nc; k++ {
				t := traceProduct(d, sys.Controls[k].H)
				val := complex(0, -dt) * t
				g := 2 / (dim * dim) * (real(overlap)*real(val) + imag(overlap)*imag(val))
				grads[k][j] = g
			}
			c = c.Mul(props[j])
		}

		// ADAM ascent step with clipping.
		bc1 := 1 - math.Pow(beta1, float64(iter))
		bc2 := 1 - math.Pow(beta2, float64(iter))
		for k := 0; k < nc; k++ {
			bound := sys.Controls[k].Bound
			for j := 0; j < slices; j++ {
				g := grads[k][j]
				m[k][j] = beta1*m[k][j] + (1-beta1)*g
				v[k][j] = beta2*v[k][j] + (1-beta2)*g*g
				step := opts.LearningRate * (m[k][j] / bc1) / (math.Sqrt(v[k][j]/bc2) + eps)
				amps[k][j] += step
				if amps[k][j] > bound {
					amps[k][j] = bound
				} else if amps[k][j] < -bound {
					amps[k][j] = -bound
				}
			}
		}
	}
	return best
}
