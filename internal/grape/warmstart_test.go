package grape

import (
	"context"
	"math/rand"
	"testing"

	"paqoc/internal/hamiltonian"
	"paqoc/internal/obs"
	"paqoc/internal/pulse"
	"paqoc/internal/quantum"
)

// TestAlignGuessProperty is the resampler property test: for random
// channel permutations and random (possibly ragged) per-channel sample
// counts, alignGuess must never panic, must seed each control from the
// channel with *its* name (not its index), and must reject schedules
// missing any control channel.
func TestAlignGuessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	systems := []*hamiltonian.System{
		hamiltonian.XYTransmon(1, nil),
		hamiltonian.XYTransmon(2, [][2]int{{0, 1}}),
		hamiltonian.XYTransmon(3, hamiltonian.LinearChain(3)),
	}
	for trial := 0; trial < 200; trial++ {
		sys := systems[rng.Intn(len(systems))]
		nc := len(sys.Controls)

		// Build a schedule over the system's channels in a random order,
		// with random per-channel sample counts, marking each sample with
		// its channel index so seeding provenance is checkable.
		perm := rng.Perm(nc)
		sched := &pulse.Schedule{SliceDt: 4}
		for _, k := range perm {
			n := 1 + rng.Intn(24)
			samples := make([]float64, n)
			for j := range samples {
				samples[j] = float64(k) + float64(j)/1000
			}
			sched.Channels = append(sched.Channels, sys.Controls[k].Name)
			sched.Amps = append(sched.Amps, samples)
		}

		guess := alignGuess(sys, sched)
		if guess == nil {
			t.Fatalf("trial %d: alignGuess rejected a complete schedule", trial)
		}
		for k := range guess {
			if len(guess[k]) == 0 {
				t.Fatalf("trial %d: control %d got empty samples", trial, k)
			}
			// Marker check: every sample of control k must come from the
			// channel *named* like control k, regardless of storage order.
			if got := int(guess[k][0]); got != k {
				t.Fatalf("trial %d: control %d seeded from channel %d", trial, k, got)
			}
		}

		// Dropping any one channel must reject the whole guess.
		i := rng.Intn(nc)
		incomplete := &pulse.Schedule{
			SliceDt:  4,
			Channels: append(append([]string(nil), sched.Channels[:i]...), sched.Channels[i+1:]...),
			Amps:     append(append([][]float64(nil), sched.Amps[:i]...), sched.Amps[i+1:]...),
		}
		if alignGuess(sys, incomplete) != nil {
			t.Fatalf("trial %d: alignGuess accepted a schedule missing %q", trial, sched.Channels[i])
		}
	}
}

// TestAlignGuessRejectsMalformed covers the degenerate shapes that used
// to panic or mis-seed: nil schedule, channel/amps length mismatch, and
// an empty channel.
func TestAlignGuessRejectsMalformed(t *testing.T) {
	sys := hamiltonian.XYTransmon(1, nil)
	if alignGuess(sys, nil) != nil {
		t.Error("nil schedule accepted")
	}
	if alignGuess(sys, &pulse.Schedule{Channels: []string{"d0.x"}, Amps: [][]float64{{1}, {2}}}) != nil {
		t.Error("channel/amps length mismatch accepted")
	}
	if alignGuess(sys, &pulse.Schedule{
		Channels: []string{"d0.x", "d0.y"},
		Amps:     [][]float64{{1, 2}, {}},
	}) != nil {
		t.Error("empty channel accepted")
	}
}

// TestWarmStartRaggedScheduleNoPanic reproduces the singleflight-leader
// panic: a stored schedule whose channels have unequal sample counts
// (possible after a snapshot merge) used to index out of range inside
// optimize. Ragged but complete schedules must now warm-start per
// channel; the optimization must simply run.
func TestWarmStartRaggedScheduleNoPanic(t *testing.T) {
	sys := hamiltonian.XYTransmon(1, nil)
	guess := &pulse.Schedule{
		SliceDt:  4,
		Channels: []string{"d0.x", "d0.y"},
		Amps:     [][]float64{{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}, {0.1, 0.2, 0.3}},
	}
	opts := Options{MaxIter: 20, Seed: 1, TargetFidelity: 2, InitialGuess: guess}
	res := OptimizeCtx(context.Background(), sys, quantum.MatX, 8, opts)
	if res == nil || res.Amps == nil {
		t.Fatal("ragged warm start produced no result")
	}
}

// TestWarmStartChannelMismatchSkipped pins the channel-identity bugfix:
// a guess whose channel *count* matches but whose names belong to a
// different system must be ignored (cold start), not applied by index.
func TestWarmStartChannelMismatchSkipped(t *testing.T) {
	sys := hamiltonian.XYTransmon(1, nil) // channels d0.x, d0.y
	wrong := &pulse.Schedule{
		SliceDt:  4,
		Channels: []string{"d3.x", "d3.y"}, // right count, wrong names
		Amps:     [][]float64{{9, 9, 9, 9}, {-9, -9, -9, -9}},
	}
	opts := Options{MaxIter: 15, Seed: 5, TargetFidelity: 2}
	cold := OptimizeCtx(context.Background(), sys, quantum.MatX, 8, opts)
	opts.InitialGuess = wrong
	got := OptimizeCtx(context.Background(), sys, quantum.MatX, 8, opts)
	if got.Fidelity != cold.Fidelity || got.Iters != cold.Iters {
		t.Fatalf("mismatched guess was not skipped: (fid %v, iters %d) vs cold (fid %v, iters %d)",
			got.Fidelity, got.Iters, cold.Fidelity, cold.Iters)
	}
}

// TestMinimumTimeProbeReuse checks that consecutive duration probes
// actually reuse cached propagators (the grape.probe_prop_reuse counter)
// and still produce a target-reaching schedule.
func TestMinimumTimeProbeReuse(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.WithMetrics(context.Background(), reg)
	sys := hamiltonian.XYTransmon(1, nil)
	opts := DefaultOptions()
	opts.MaxIter = 60
	sched, _, fid, err := MinimumTimeCtx(ctx, sys, quantum.MatX, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fid < opts.TargetFidelity {
		t.Fatalf("fidelity %v below target", fid)
	}
	if sched == nil || len(sched.Amps) == 0 {
		t.Fatal("no schedule")
	}
	if n := reg.Counter("grape.probe_prop_reuse").Value(); n == 0 {
		t.Error("no propagators were reused across duration probes")
	}
}

// TestHintSlicesSavesProbes: a duration prior equal to the known answer
// must reach the same minimal slice count with fewer probes.
func TestHintSlicesSavesProbes(t *testing.T) {
	sys := hamiltonian.XYTransmon(1, nil)
	base := DefaultOptions()
	base.MaxIter = 60

	run := func(opts Options) (float64, int64) {
		reg := obs.NewRegistry()
		ctx := obs.WithMetrics(context.Background(), reg)
		_, lat, _, err := MinimumTimeCtx(ctx, sys, quantum.MatX, opts)
		if err != nil {
			t.Fatal(err)
		}
		return lat, reg.Counter("grape.binsearch.probes").Value()
	}

	coldLat, coldProbes := run(base)
	hinted := base
	hinted.HintSlices = int(coldLat / base.SliceDt)
	hintLat, hintProbes := run(hinted)
	if hintLat != coldLat {
		t.Fatalf("hinted search changed the answer: %v vs %v", hintLat, coldLat)
	}
	if hintProbes >= coldProbes {
		t.Errorf("hint saved no probes: %d vs %d", hintProbes, coldProbes)
	}

	// A hint outside the bracket must clamp, not break the search.
	clamped := base
	clamped.HintSlices = clamped.MaxSlices * 4
	if lat, _ := run(clamped); lat != coldLat {
		t.Errorf("oversized hint changed the answer: %v vs %v", lat, coldLat)
	}
}
