package grape

import (
	"context"
	"sync"
	"testing"

	"paqoc/internal/hamiltonian"
	"paqoc/internal/quantum"
)

// TestParallelWorkersMatchSerial pins the parallel inner loop's central
// invariant: workers=N must reproduce workers=1 bit-for-bit (==, not
// approximately). The parallel phases only compute per-slice terms whose
// kernels and inputs are scheduling-independent, and the gradient-norm
// reduction always runs serially in the original order — so any
// divergence here means a worker raced or the reduction order drifted.
func TestParallelWorkersMatchSerial(t *testing.T) {
	for _, tc := range equivalenceCases() {
		for _, workers := range []int{2, 4, 7} {
			opts := Options{MaxIter: 60, Seed: 42, TargetFidelity: 0.9999}
			serial := OptimizeCtx(context.Background(), tc.sys, tc.target, tc.slices, opts)
			opts.Workers = workers
			par := OptimizeCtx(context.Background(), tc.sys, tc.target, tc.slices, opts)
			if par.Fidelity != serial.Fidelity {
				t.Fatalf("%s workers=%d: fidelity diverged: %v vs %v",
					tc.name, workers, par.Fidelity, serial.Fidelity)
			}
			if par.Iters != serial.Iters {
				t.Fatalf("%s workers=%d: iters diverged: %d vs %d",
					tc.name, workers, par.Iters, serial.Iters)
			}
			for k := range serial.Amps {
				for j := range serial.Amps[k] {
					if par.Amps[k][j] != serial.Amps[k][j] {
						t.Fatalf("%s workers=%d: amps[%d][%d] diverged: %v vs %v",
							tc.name, workers, k, j, par.Amps[k][j], serial.Amps[k][j])
					}
				}
			}
		}
	}
}

// TestParallelMinimumTimeMatchesSerial extends the bit-identity pin to a
// whole minimum-duration search, where probe seeding and propagator
// reuse interact with the worker pool.
func TestParallelMinimumTimeMatchesSerial(t *testing.T) {
	sys := hamiltonian.XYTransmon(1, nil)
	opts := DefaultOptions()
	opts.MaxIter = 60
	serialSched, serialLat, serialFid, err := MinimumTimeCtx(context.Background(), sys, quantum.MatX, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	parSched, parLat, parFid, err := MinimumTimeCtx(context.Background(), sys, quantum.MatX, opts)
	if err != nil {
		t.Fatal(err)
	}
	if parLat != serialLat || parFid != serialFid {
		t.Fatalf("minimum-time diverged: workers=4 (lat %v, fid %v) vs serial (lat %v, fid %v)",
			parLat, parFid, serialLat, serialFid)
	}
	for k := range serialSched.Amps {
		for j := range serialSched.Amps[k] {
			if parSched.Amps[k][j] != serialSched.Amps[k][j] {
				t.Fatalf("schedule amps[%d][%d] diverged", k, j)
			}
		}
	}
}

// TestParallelGradientRaceHammer drives several worker-pool optimizations
// concurrently so `go test -race` can observe the parallel propagator and
// gradient phases under contention (per-worker sub-arenas must share no
// scratch, and grads[k][j] writes must stay disjoint).
func TestParallelGradientRaceHammer(t *testing.T) {
	sys := hamiltonian.XYTransmon(2, [][2]int{{0, 1}})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			opts := Options{MaxIter: 25, Seed: seed, TargetFidelity: 2, Workers: 4}
			OptimizeCtx(context.Background(), sys, quantum.MatCX, 16, opts)
		}(int64(i))
	}
	wg.Wait()
}

// BenchmarkParallelGradient is the CI smoke for the parallel inner loop
// (run with -benchtime=1x): it exercises the worker-pool forward and
// gradient phases end to end.
func BenchmarkParallelGradient(b *testing.B) {
	sys := hamiltonian.XYTransmon(2, [][2]int{{0, 1}})
	opts := Options{MaxIter: 30, Seed: 3, TargetFidelity: 2, Workers: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OptimizeCtx(context.Background(), sys, quantum.MatCX, 16, opts)
	}
}
