package grape

import (
	"context"
	"testing"

	"paqoc/internal/hamiltonian"
	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
)

// testCases pairs small optimization problems with the slice counts used
// throughout the equivalence suite.
func equivalenceCases() []struct {
	name   string
	sys    *hamiltonian.System
	target *linalg.Matrix
	slices int
} {
	return []struct {
		name   string
		sys    *hamiltonian.System
		target *linalg.Matrix
		slices int
	}{
		{"x-1q-8", hamiltonian.XYTransmon(1, nil), quantum.MatX, 8},
		{"h-1q-8", hamiltonian.XYTransmon(1, nil), quantum.MatH, 8},
		{"cx-2q-12", hamiltonian.XYTransmon(2, [][2]int{{0, 1}}), quantum.MatCX, 12},
	}
}

// TestOptimizeMatchesReference pins the tentpole invariant: the arena-based
// zero-allocation path must reproduce the pre-arena value-returning loop
// bit-for-bit — ==, not approximately — for a fixed seed. Any reordering
// of floating-point operations breaks this test.
func TestOptimizeMatchesReference(t *testing.T) {
	for _, tc := range equivalenceCases() {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{MaxIter: 60, Seed: 42, TargetFidelity: 0.9999}
			ref := OptimizeReference(tc.sys, tc.target, tc.slices, opts)
			got := OptimizeCtx(context.Background(), tc.sys, tc.target, tc.slices, opts)
			if got.Fidelity != ref.Fidelity {
				t.Fatalf("fidelity diverged: arena %v reference %v", got.Fidelity, ref.Fidelity)
			}
			if got.Iters != ref.Iters {
				t.Fatalf("iters diverged: arena %d reference %d", got.Iters, ref.Iters)
			}
			if len(got.Amps) != len(ref.Amps) {
				t.Fatalf("amp channel count diverged: %d vs %d", len(got.Amps), len(ref.Amps))
			}
			for k := range ref.Amps {
				for j := range ref.Amps[k] {
					if got.Amps[k][j] != ref.Amps[k][j] {
						t.Fatalf("amps[%d][%d] diverged: arena %v reference %v",
							k, j, got.Amps[k][j], ref.Amps[k][j])
					}
				}
			}
		})
	}
}

// TestSharedArenaMatchesFresh drives one arena through a MinimumTime-style
// sequence of probe sizes (grow, shrink, regrow, shrink) and checks each
// result is bit-identical to a fresh arena's. This is the invariant that
// lets MinimumTimeCtx reuse buffers across binary-search probes.
func TestSharedArenaMatchesFresh(t *testing.T) {
	sys := hamiltonian.XYTransmon(2, [][2]int{{0, 1}})
	target := quantum.MatCX
	opts := Options{MaxIter: 30, Seed: 7, TargetFidelity: 2} // unreachable: full run
	ar := newArena()
	for _, slices := range []int{8, 4, 16, 4} {
		shared := optimize(context.Background(), sys, target, slices, opts, ar)
		fresh := OptimizeCtx(context.Background(), sys, target, slices, opts)
		if shared.Fidelity != fresh.Fidelity || shared.Iters != fresh.Iters {
			t.Fatalf("slices=%d: shared arena (fid %v, iters %d) != fresh (fid %v, iters %d)",
				slices, shared.Fidelity, shared.Iters, fresh.Fidelity, fresh.Iters)
		}
		for k := range fresh.Amps {
			for j := range fresh.Amps[k] {
				if shared.Amps[k][j] != fresh.Amps[k][j] {
					t.Fatalf("slices=%d: amps[%d][%d] diverged", slices, k, j)
				}
			}
		}
	}
}

// perIterAllocs measures the marginal heap allocations of one GRAPE
// iteration by differencing a long run against a short one, cancelling the
// fixed per-call setup cost. TargetFidelity 2 is unreachable (fidelity is
// ≤ 1), so both runs execute exactly MaxIter iterations.
func perIterAllocs(t *testing.T, run func(opts Options)) float64 {
	t.Helper()
	const extra = 200
	short := Options{MaxIter: 1, Seed: 3, TargetFidelity: 2}
	long := Options{MaxIter: 1 + extra, Seed: 3, TargetFidelity: 2}
	shortAllocs := testing.AllocsPerRun(3, func() { run(short) })
	longAllocs := testing.AllocsPerRun(3, func() { run(long) })
	return (longAllocs - shortAllocs) / extra
}

// TestOptimizeIterationAllocs encodes the headline acceptance criterion:
// the arena path must allocate at least 5× less per GRAPE iteration than
// the reference loop — and in absolute terms, (near) nothing.
func TestOptimizeIterationAllocs(t *testing.T) {
	sys := hamiltonian.XYTransmon(2, [][2]int{{0, 1}})
	target := quantum.MatCX
	const slices = 12

	refPerIter := perIterAllocs(t, func(opts Options) {
		OptimizeReference(sys, target, slices, opts)
	})
	arenaPerIter := perIterAllocs(t, func(opts Options) {
		OptimizeCtx(context.Background(), sys, target, slices, opts)
	})
	t.Logf("allocs/iteration: reference %.1f, arena %.2f", refPerIter, arenaPerIter)

	if arenaPerIter > 1 {
		t.Errorf("arena path allocates %.2f/iteration, want ≤ 1", arenaPerIter)
	}
	if refPerIter < 5*(arenaPerIter+1) {
		t.Errorf("allocation win too small: reference %.1f/iter vs arena %.2f/iter (need ≥5×)",
			refPerIter, arenaPerIter)
	}
}
