package grape

import (
	"context"
	"fmt"
	"time"

	"paqoc/internal/hamiltonian"
	"paqoc/internal/linalg"
	"paqoc/internal/obs"
	"paqoc/internal/pulse"
	"paqoc/internal/topology"
)

// Generator adapts GRAPE to the pulse.Generator interface used by PAQOC:
// it consolidates a customized gate into one unitary, consults the pulse
// database (exact and permuted hits return instantly; near misses warm the
// initial guess), and otherwise runs the minimum-time search.
type Generator struct {
	Opts Options
	DB   *pulse.DB
	// Topo optionally restricts which qubit pairs of a customized gate are
	// XY-coupled (the device coupling graph). When nil, every pair within
	// the group is coupled.
	Topo *topology.Topology
	// SimilarityDist bounds the similarity search for initial guesses; 0
	// disables warm starts.
	SimilarityDist float64
	// System optionally builds the block Hamiltonian for n qubits with the
	// given local coupling pairs — the hook device profiles use to supply
	// their control bounds and error terms (device.Profile.SystemBuilder).
	// When nil, the paper's platform (hamiltonian.XYTransmon) is used.
	System func(n int, pairs [][2]int) *hamiltonian.System
	// Remote optionally consults a cross-replica pulse source on local DB
	// misses (cluster.Remote): the key's owner replica is asked before
	// paying for optimization, and fresh results are write-through
	// published to it. Best-effort — peer failures fall back to local
	// generation.
	Remote pulse.Remote
}

// NewGenerator returns a GRAPE-backed generator with a fresh pulse DB.
func NewGenerator(opts Options) *Generator {
	return &Generator{Opts: opts, DB: pulse.NewDB(), SimilarityDist: 0.8}
}

// convergenceSampleEvery thins the live convergence stream: one event per
// this many optimizer iterations (plus the first and the target-reaching
// point) keeps a 300-iteration run to ~a dozen events on the job ring.
const convergenceSampleEvery = 25

var (
	_ pulse.Generator  = (*Generator)(nil)
	_ pulse.DBProvider = (*Generator)(nil)
)

// PulseDB exposes the backing pulse database (may be nil).
func (g *Generator) PulseDB() *pulse.DB { return g.DB }

// GenerateCtx produces pulses for one customized gate, with observability:
// a "grape.generate" span per customized gate and counters for database
// reuse (exact, permuted, warm start, singleflight dedup) versus fresh
// optimizations.
//
// Concurrent calls sharing one DB are safe and deduplicated: workers that
// request the same canonical unitary while another worker is optimizing it
// block on that run instead of repeating it (pulse.DB.Do).
func (g *Generator) GenerateCtx(ctx context.Context, cg *pulse.CustomGate, fidelityTarget float64) (*pulse.Generated, error) {
	reg := obs.MetricsFrom(ctx)
	ctx, span := obs.StartSpan(ctx, "grape.generate")
	defer span.End()
	span.SetAttr("gate", cg.Describe())
	span.SetAttr("qubits", cg.NumQubits())

	u, err := cg.Unitary()
	if err != nil {
		return nil, fmt.Errorf("grape: %v", err)
	}
	if g.DB == nil {
		return g.generateOrFetch(ctx, cg, u, fidelityTarget)
	}

	generate := func() (*pulse.Generated, error) { return g.generateOrFetch(ctx, cg, u, fidelityTarget) }
	gen, perm, outcome, err := g.DB.Do(u, generate)
	if err != nil {
		return nil, err
	}
	switch outcome {
	case pulse.OutcomeGenerated:
		return gen, nil
	case pulse.OutcomeDeduped:
		reg.Counter("pulse.db_dedups").Inc()
		span.SetAttr("db", "deduped")
	}
	out := *gen
	out.CacheHit = true
	out.Cost = 0
	if perm == nil {
		if outcome == pulse.OutcomeHit {
			reg.Counter("grape.db_hits").Inc()
			span.SetAttr("db", "exact")
		}
		return &out, nil
	}
	// Permuted hit (§V-B): the stored schedule realizes the permuted
	// unitary, so reuse requires relabelling the control channels. If the
	// permuted channels don't all exist (coupling graphs differ),
	// regenerate under this gate's own canonical key — still deduplicated
	// against concurrent workers holding the same exact key.
	if sched := remapSchedule(gen.Schedule, perm, g.couplings(cg)); sched != nil {
		out.Schedule = sched
		if outcome == pulse.OutcomePermuted {
			reg.Counter("grape.db_permuted_hits").Inc()
			span.SetAttr("db", "permuted")
		}
		return &out, nil
	}
	fresh, _, _, err := g.DB.DoExact(u, generate)
	return fresh, err
}

// generateOrFetch is the true-miss path, invoked at most once per
// canonical key when a DB coalesces callers: ask the key's owner replica
// first (a peer may already have paid for this optimization), and on a
// remote miss optimize locally and write-through-publish the result to
// the owner. Without a Remote this is exactly optimize.
func (g *Generator) generateOrFetch(ctx context.Context, cg *pulse.CustomGate, u *linalg.Matrix, fidelityTarget float64) (*pulse.Generated, error) {
	if g.Remote != nil {
		if got, ok := g.Remote.FetchPulse(ctx, u); ok {
			obs.MetricsFrom(ctx).Counter("grape.remote_hits").Inc()
			got.CacheHit = true
			got.Cost = 0
			return got, nil
		}
	}
	gen, err := g.optimize(ctx, cg, u, fidelityTarget)
	if err == nil && g.Remote != nil {
		g.Remote.PublishPulse(ctx, u, gen)
	}
	return gen, err
}

// optimize runs the warm-started minimum-time search for one unitary. It
// is invoked at most once per canonical key when a DB coalesces callers.
func (g *Generator) optimize(ctx context.Context, cg *pulse.CustomGate, u *linalg.Matrix, fidelityTarget float64) (*pulse.Generated, error) {
	reg := obs.MetricsFrom(ctx)
	opts := g.Opts
	opts.fill()
	if fidelityTarget > 0 {
		opts.TargetFidelity = fidelityTarget
	}
	// Larger groups navigate a bigger control landscape; give the
	// optimizer proportionally more iterations (3-qubit unitaries such as
	// Toffoli need roughly 3× the budget of a CX to converge).
	if n := cg.NumQubits(); n > 2 {
		opts.MaxIter *= n
	}
	sys := g.system(cg.NumQubits(), g.couplings(cg))
	if g.DB != nil && g.SimilarityDist > 0 {
		if e, _, ok := g.DB.Nearest(u, g.SimilarityDist); ok && e.Generated.Schedule != nil {
			// Adopt the guess only when every control channel of this
			// system exists in the stored schedule (matched by name): a
			// hit recorded under a different coupling graph or profile
			// must not seed drive amps onto a coupler channel. The
			// warm_starts counter moves with the check so it counts
			// guesses actually applied, not Nearest hits later rejected.
			if sched := e.Generated.Schedule; alignGuess(sys, sched) != nil {
				opts.InitialGuess = sched
				// The cached entry's duration is the best prior for the
				// minimum-time bracket (§V-B): similar unitaries need
				// similar pulse lengths.
				opts.HintSlices = sched.NumSlices()
				reg.Counter("grape.warm_starts").Inc()
			}
		}
	}

	// Live convergence streaming: when the context carries an event ring (a
	// server job with SSE subscribers), sample the optimizer's iterations
	// onto it — every convergenceSampleEvery-th point plus the first and any
	// target-reaching one, so the stream shows the curve without flooding
	// the bounded ring.
	if ring := obs.EventsFrom(ctx); ring != nil && opts.OnIteration == nil {
		gate := cg.Describe()
		targetFid := opts.TargetFidelity
		opts.OnIteration = func(p obs.ConvergencePoint) {
			if p.Iter == 1 || p.Iter%convergenceSampleEvery == 0 || p.Fidelity >= targetFid {
				ring.PublishConvergence(gate, p)
			}
		}
	}

	start := time.Now()
	reg.Counter("grape.generated").Inc()
	sched, latency, fid, err := MinimumTimeCtx(ctx, sys, u, opts)
	reg.HistogramVec(obs.StageMetric, obs.LatencyBuckets, "stage").
		WithLabelValues("grape").
		Observe(float64(time.Since(start)) / float64(time.Millisecond))
	if err != nil {
		return nil, err
	}
	return &pulse.Generated{
		Schedule: sched,
		Latency:  latency,
		Fidelity: fid,
		Error:    1 - fid,
		Cost:     time.Since(start).Seconds(),
	}, nil
}

// system builds the block Hamiltonian via the configured builder, or the
// paper's platform when none is set.
func (g *Generator) system(n int, pairs [][2]int) *hamiltonian.System {
	if g.System != nil {
		return g.System(n, pairs)
	}
	return hamiltonian.XYTransmon(n, pairs)
}

// couplings maps the group's physical-qubit adjacency onto local wires.
func (g *Generator) couplings(cg *pulse.CustomGate) [][2]int {
	n := cg.NumQubits()
	if g.Topo == nil {
		return hamiltonian.AllPairs(n)
	}
	var pairs [][2]int
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if g.Topo.Connected(cg.Qubits[a], cg.Qubits[b]) {
				pairs = append(pairs, [2]int{a, b})
			}
		}
	}
	if len(pairs) == 0 && n > 1 {
		// Disconnected groups cannot entangle; fall back to a chain so the
		// optimizer still has an interaction term (the framework should
		// never produce such groups, but stay robust).
		pairs = hamiltonian.LinearChain(n)
	}
	return pairs
}

// remapSchedule relabels a stored schedule's channels for a permuted-hit
// reuse: stored local qubit i plays the role of the new gate's local qubit
// perm[i]. The output channel order matches XYTransmon(n, pairs) for the
// new gate so it can be replayed directly on that system. Returns nil when
// a required channel does not exist in the stored schedule.
func remapSchedule(src *pulse.Schedule, perm []int, pairs [][2]int) *pulse.Schedule {
	if src == nil {
		return nil
	}
	byName := make(map[string][]float64, len(src.Channels))
	for k, name := range src.Channels {
		byName[name] = src.Amps[k]
	}
	// Build the target system's channel list.
	n := len(perm)
	sys := hamiltonian.XYTransmon(n, pairs)
	// inverse permutation: new qubit q ← stored qubit inv[q].
	inv := make([]int, n)
	for i, p := range perm {
		inv[p] = i
	}
	out := &pulse.Schedule{SliceDt: src.SliceDt}
	for _, c := range sys.Controls {
		var srcName string
		var q, a, b int
		switch {
		case scanChannel(c.Name, "d%d.x", &q):
			srcName = fmt.Sprintf("d%d.x", inv[q])
		case scanChannel(c.Name, "d%d.y", &q):
			srcName = fmt.Sprintf("d%d.y", inv[q])
		case scanChannel2(c.Name, &a, &b):
			sa, sb := inv[a], inv[b]
			if sa > sb {
				sa, sb = sb, sa
			}
			srcName = fmt.Sprintf("c%d.%d.xy", sa, sb)
		default:
			return nil
		}
		samples, ok := byName[srcName]
		if !ok {
			return nil
		}
		out.Channels = append(out.Channels, c.Name)
		out.Amps = append(out.Amps, append([]float64(nil), samples...))
	}
	return out
}

func scanChannel(name, format string, q *int) bool {
	var rest string
	k, err := fmt.Sscanf(name, format+"%s", q, &rest)
	if err == nil && k >= 1 && rest == "" {
		return true
	}
	// Sscanf with trailing %s fails on exact match; retry plain.
	k, err = fmt.Sscanf(name, format, q)
	return err == nil && k == 1 && fmt.Sprintf(format, *q) == name
}

func scanChannel2(name string, a, b *int) bool {
	k, err := fmt.Sscanf(name, "c%d.%d.xy", a, b)
	return err == nil && k == 2 && fmt.Sprintf("c%d.%d.xy", *a, *b) == name
}
