package grape

import (
	"context"
	"testing"

	"paqoc/internal/circuit"
	"paqoc/internal/hamiltonian"
	"paqoc/internal/obs"
	"paqoc/internal/pulse"
)

// fullSchedule builds a schedule carrying every control channel of
// XYTransmon(2, pairs), with per-channel distinguishable samples.
func fullSchedule(pairs [][2]int) *pulse.Schedule {
	sys := hamiltonian.XYTransmon(2, pairs)
	s := &pulse.Schedule{SliceDt: 1}
	for k, c := range sys.Controls {
		s.Channels = append(s.Channels, c.Name)
		s.Amps = append(s.Amps, []float64{float64(k)})
	}
	return s
}

// TestRemapScheduleSwapsChannels: under the swap permutation, the remapped
// schedule plays stored qubit 1's drives on qubit 0 and vice versa, and
// the symmetric coupling channel maps onto itself.
func TestRemapScheduleSwapsChannels(t *testing.T) {
	pairs := [][2]int{{0, 1}}
	src := fullSchedule(pairs)
	out := remapSchedule(src, []int{1, 0}, pairs)
	if out == nil {
		t.Fatal("remap of a complete schedule returned nil")
	}
	want := map[string]string{
		"d0.x":    "d1.x",
		"d0.y":    "d1.y",
		"d1.x":    "d0.x",
		"d1.y":    "d0.y",
		"c0.1.xy": "c0.1.xy",
	}
	srcAmp := map[string]float64{}
	for k, name := range src.Channels {
		srcAmp[name] = src.Amps[k][0]
	}
	for k, name := range out.Channels {
		if got, exp := out.Amps[k][0], srcAmp[want[name]]; got != exp {
			t.Errorf("channel %s carries amp %v, want %v (from stored %s)", name, got, exp, want[name])
		}
	}
}

// TestRemapScheduleMissingChannel: a stored schedule lacking a channel the
// permuted gate needs (coupling graphs differ between the two contexts)
// cannot be reused — remap must return nil, never a partial schedule.
func TestRemapScheduleMissingChannel(t *testing.T) {
	pairs := [][2]int{{0, 1}}
	src := fullSchedule(pairs)
	src.Channels = src.Channels[:len(src.Channels)-1] // drop c0.1.xy
	src.Amps = src.Amps[:len(src.Amps)-1]
	if out := remapSchedule(src, []int{1, 0}, pairs); out != nil {
		t.Fatalf("remap with a missing source channel = %+v, want nil", out)
	}
	if out := remapSchedule(nil, []int{1, 0}, pairs); out != nil {
		t.Fatal("remap of a nil schedule should be nil")
	}
	// Unknown channel name in the target system also refuses.
	weird := &pulse.Schedule{SliceDt: 1, Channels: []string{"q0.flux"}, Amps: [][]float64{{1}}}
	if out := remapSchedule(weird, []int{0}, nil); out != nil {
		t.Fatal("remap onto an unrecognized channel name should be nil")
	}
}

// TestPermutedHitMissingChannelRegenerates drives the fallback end to end:
// a permuted DB hit whose stored schedule cannot be remapped (a required
// channel is absent) must fall through to a fresh optimization under the
// gate's own canonical key — served complete, not reused broken.
func TestPermutedHitMissingChannelRegenerates(t *testing.T) {
	db := pulse.NewDB()
	gen := &Generator{Opts: DefaultOptions(), DB: db}

	// Plant an entry for cx(0,1) whose schedule only carries d0.x: the
	// permuted lookup for cx(1,0) will find it, and remapping will fail.
	cx01 := pulse.NewCustomGate([]circuit.Gate{{Name: "cx", Qubits: []int{0, 1}}})
	u01, err := cx01.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	db.Store(u01, &pulse.Generated{
		Schedule: &pulse.Schedule{SliceDt: 1, Channels: []string{"d0.x"}, Amps: [][]float64{{0.25}}},
		Latency:  5, Fidelity: 0.9999, Error: 1e-4,
	})

	reg := obs.NewRegistry()
	ctx := obs.WithMetrics(context.Background(), reg)
	cx10 := pulse.NewCustomGate([]circuit.Gate{{Name: "cx", Qubits: []int{1, 0}}})
	got, err := gen.GenerateCtx(ctx, cx10, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if got.CacheHit {
		t.Error("unremappable permuted hit must regenerate, not report a cache hit")
	}
	if n := reg.Counter("grape.generated").Value(); n != 1 {
		t.Errorf("grape.generated = %d, want exactly 1 fresh optimization", n)
	}
	want := hamiltonian.XYTransmon(2, hamiltonian.AllPairs(2))
	if len(got.Schedule.Channels) != len(want.Controls) {
		t.Errorf("regenerated schedule has %d channels, want the full %d", len(got.Schedule.Channels), len(want.Controls))
	}

	// The regeneration was stored under cx(1,0)'s own canonical key: the
	// same gate now hits exactly, without touching the planted entry.
	again, err := gen.GenerateCtx(ctx, cx10, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("second cx(1,0) should be an exact DB hit")
	}
	if n := reg.Counter("grape.generated").Value(); n != 1 {
		t.Errorf("grape.generated = %d after exact hit, want still 1", n)
	}
}
