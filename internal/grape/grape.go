// Package grape implements GRadient Ascent Pulse Engineering (Khaneja et
// al.; Leung et al. [31]) from scratch: piecewise-constant controls, exact
// slice propagators, the first-order fidelity gradient, ADAM updates
// (the optimizer the paper selects, §VI-d), amplitude clipping to hardware
// bounds, and a binary search for the minimum pulse duration achieving a
// target fidelity — which is exactly the latency PAQOC minimizes.
package grape

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"paqoc/internal/hamiltonian"
	"paqoc/internal/linalg"
	"paqoc/internal/obs"
	"paqoc/internal/pulse"
)

// Options configures the optimizer.
type Options struct {
	SliceDt        float64 // dt per slice (default 4)
	MaxIter        int     // ADAM iterations per duration trial (default 300)
	LearningRate   float64 // ADAM step size (default 0.003 rad/dt)
	TargetFidelity float64 // success threshold (default 0.999)
	Seed           int64   // RNG seed for the initial guess
	MinSlices      int     // binary-search lower bound (default 2)
	MaxSlices      int     // binary-search upper bound (default 128)
	InitialGuess   *pulse.Schedule
	// RecordConvergence captures a per-iteration fidelity / gradient-norm /
	// step-size trace in Result.Trace (one allocation per iteration; off on
	// the hot path by default).
	RecordConvergence bool
	// OnIteration, when non-nil, is invoked with every iteration's
	// convergence point — the streaming variant of RecordConvergence.
	OnIteration func(obs.ConvergencePoint)
}

// DefaultOptions returns the settings used across the evaluation.
func DefaultOptions() Options {
	return Options{
		SliceDt:        4,
		MaxIter:        300,
		LearningRate:   0.003,
		TargetFidelity: 0.999,
		MinSlices:      2,
		MaxSlices:      128,
	}
}

func (o *Options) fill() {
	if o.SliceDt == 0 {
		o.SliceDt = 4
	}
	if o.MaxIter == 0 {
		o.MaxIter = 300
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.003
	}
	if o.TargetFidelity == 0 {
		o.TargetFidelity = 0.999
	}
	if o.MinSlices == 0 {
		o.MinSlices = 2
	}
	if o.MaxSlices == 0 {
		o.MaxSlices = 128
	}
}

// Result of one fixed-duration optimization.
type Result struct {
	Amps     [][]float64 // Amps[k][j]: control k, slice j
	Fidelity float64
	Iters    int
	// Trace is the per-iteration convergence record, populated when
	// Options.RecordConvergence is set (nil otherwise).
	Trace *obs.ConvergenceTrace
}

// Optimize runs GRAPE for a fixed number of slices against the target
// unitary on the given system and returns the best controls found.
func Optimize(sys *hamiltonian.System, target *linalg.Matrix, slices int, opts Options) *Result {
	return OptimizeCtx(context.Background(), sys, target, slices, opts)
}

// OptimizeCtx is Optimize with observability: when the context carries a
// metrics registry, per-iteration counters (grape.iterations, grape.expm)
// and the gradient-norm histogram are updated.
func OptimizeCtx(ctx context.Context, sys *hamiltonian.System, target *linalg.Matrix, slices int, opts Options) *Result {
	opts.fill()
	reg := obs.MetricsFrom(ctx)
	iterCtr := reg.Counter("grape.iterations")
	expmCtr := reg.Counter("grape.expm")
	gradHist := reg.Histogram("grape.grad_norm", []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10})
	if target.Rows != sys.Dim {
		panic(fmt.Sprintf("grape: target dim %d does not match system dim %d", target.Rows, sys.Dim))
	}
	nc := len(sys.Controls)
	rng := rand.New(rand.NewSource(opts.Seed + int64(slices)))

	amps := make([][]float64, nc)
	for k := range amps {
		amps[k] = make([]float64, slices)
		for j := range amps[k] {
			amps[k][j] = sys.Controls[k].Bound * 0.2 * (rng.Float64()*2 - 1)
		}
	}
	if opts.InitialGuess != nil && len(opts.InitialGuess.Amps) == nc {
		// Warm start: resample the guess onto this slice count.
		src := opts.InitialGuess.Amps
		srcN := len(src[0])
		if srcN > 0 {
			for k := 0; k < nc; k++ {
				for j := 0; j < slices; j++ {
					amps[k][j] = src[k][j*srcN/slices]
				}
			}
		}
	}

	// ADAM state.
	m := make([][]float64, nc)
	v := make([][]float64, nc)
	for k := range m {
		m[k] = make([]float64, slices)
		v[k] = make([]float64, slices)
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	var trace *obs.ConvergenceTrace
	if opts.RecordConvergence {
		trace = &obs.ConvergenceTrace{}
	}
	best := &Result{Fidelity: -1, Trace: trace}
	dim := float64(sys.Dim)
	dt := opts.SliceDt

	for iter := 1; iter <= opts.MaxIter; iter++ {
		if ctx.Err() != nil {
			// Cancelled mid-optimization (a sibling worker failed or the
			// caller gave up): return the best point reached so the caller
			// can decide; MinimumTimeCtx surfaces the context error.
			return best
		}
		iterCtr.Inc()
		// Forward pass: slice propagators and cumulative products.
		props := make([]*linalg.Matrix, slices)
		fwd := make([]*linalg.Matrix, slices+1) // fwd[j] = U_j···U_1, fwd[0] = I
		fwd[0] = linalg.Identity(sys.Dim)
		sliceAmps := make([]float64, nc)
		for j := 0; j < slices; j++ {
			for k := 0; k < nc; k++ {
				sliceAmps[k] = amps[k][j]
			}
			props[j] = sys.Propagator(sliceAmps, dt)
			fwd[j+1] = props[j].Mul(fwd[j])
		}
		expmCtr.Add(int64(slices))
		overlap := linalg.TraceOverlap(target, fwd[slices]) // tr(V†·X_N)
		fid := (real(overlap)*real(overlap) + imag(overlap)*imag(overlap)) / (dim * dim)
		if fid > best.Fidelity {
			best.Fidelity = fid
			best.Iters = iter
			best.Amps = cloneAmps(amps)
			if fid >= opts.TargetFidelity {
				pt := obs.ConvergencePoint{Iter: iter, Fidelity: fid}
				trace.Record(pt)
				if opts.OnIteration != nil {
					opts.OnIteration(pt)
				}
				return best
			}
		}

		// Backward pass: C_j = V†·B_j with B_j = U_N···U_{j+1}.
		// ∂Φ/∂u_{k,j} = (2/d²)·Re[conj(g)·tr(C_j·(-i·dt·H_k)·X_j)]
		// where X_j = fwd[j+1]. Using cyclicity, tr(C·H·X) = tr((X·C)·H).
		c := target.Dagger() // C_N = V† (B_N = I)
		grads := make([][]float64, nc)
		for k := range grads {
			grads[k] = make([]float64, slices)
		}
		var gradSq float64
		for j := slices - 1; j >= 0; j-- {
			d := fwd[j+1].Mul(c) // X_j · C_j
			for k := 0; k < nc; k++ {
				t := traceProduct(d, sys.Controls[k].H)
				val := complex(0, -dt) * t
				g := 2 / (dim * dim) * (real(overlap)*real(val) + imag(overlap)*imag(val))
				grads[k][j] = g
				gradSq += g * g
			}
			c = c.Mul(props[j]) // C_{j-1} = C_j·U_j
		}
		gradNorm := math.Sqrt(gradSq)
		gradHist.Observe(gradNorm)

		// ADAM ascent step with clipping to hardware bounds.
		bc1 := 1 - math.Pow(beta1, float64(iter))
		bc2 := 1 - math.Pow(beta2, float64(iter))
		var maxStep float64
		for k := 0; k < nc; k++ {
			bound := sys.Controls[k].Bound
			for j := 0; j < slices; j++ {
				g := grads[k][j]
				m[k][j] = beta1*m[k][j] + (1-beta1)*g
				v[k][j] = beta2*v[k][j] + (1-beta2)*g*g
				step := opts.LearningRate * (m[k][j] / bc1) / (math.Sqrt(v[k][j]/bc2) + eps)
				amps[k][j] += step
				if s := math.Abs(step); s > maxStep {
					maxStep = s
				}
				if amps[k][j] > bound {
					amps[k][j] = bound
				} else if amps[k][j] < -bound {
					amps[k][j] = -bound
				}
			}
		}
		if trace != nil || opts.OnIteration != nil {
			pt := obs.ConvergencePoint{Iter: iter, Fidelity: fid, GradNorm: gradNorm, StepSize: maxStep}
			trace.Record(pt)
			if opts.OnIteration != nil {
				opts.OnIteration(pt)
			}
		}
	}
	return best
}

// traceProduct returns tr(A·B) without forming the product.
func traceProduct(a, b *linalg.Matrix) complex128 {
	var t complex128
	n := a.Rows
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			t += a.Data[i*n+k] * b.Data[k*n+i]
		}
	}
	return t
}

func cloneAmps(a [][]float64) [][]float64 {
	out := make([][]float64, len(a))
	for k := range a {
		out[k] = append([]float64(nil), a[k]...)
	}
	return out
}

// MinimumTime binary-searches the smallest slice count whose optimized
// fidelity reaches the target (§V-B: "the minimum duration of the control
// pulses of a customized gate by binary search"). It returns the winning
// schedule, its latency in dt, and the achieved fidelity.
func MinimumTime(sys *hamiltonian.System, target *linalg.Matrix, opts Options) (*pulse.Schedule, float64, float64, error) {
	return MinimumTimeCtx(context.Background(), sys, target, opts)
}

// MinimumTimeCtx is MinimumTime with observability: one span per duration
// probe ("grape.binsearch.probe", tagged with the slice count and achieved
// fidelity) under a "grape.binsearch" span, plus probe counters.
func MinimumTimeCtx(ctx context.Context, sys *hamiltonian.System, target *linalg.Matrix, opts Options) (*pulse.Schedule, float64, float64, error) {
	opts.fill()
	reg := obs.MetricsFrom(ctx)
	probeCtr := reg.Counter("grape.binsearch.probes")
	ctx, bsSpan := obs.StartSpan(ctx, "grape.binsearch")
	bsSpan.SetAttr("dim", sys.Dim)
	defer bsSpan.End()

	run := func(slices int) *Result {
		probeCtr.Inc()
		probeCtx, span := obs.StartSpan(ctx, "grape.binsearch.probe")
		res := OptimizeCtx(probeCtx, sys, target, slices, opts)
		span.SetAttr("slices", slices)
		span.SetAttr("fidelity", res.Fidelity)
		span.SetAttr("iters", res.Iters)
		span.End()
		return res
	}

	// Find a feasible upper bound by doubling. Each probe is bracketed by a
	// cancellation check so a cancelled fleet stops between (and, via
	// OptimizeCtx, inside) duration probes.
	lo, hi := opts.MinSlices, opts.MinSlices
	var hiRes *Result
	for {
		if err := ctx.Err(); err != nil {
			return nil, 0, 0, err
		}
		hiRes = run(hi)
		if err := ctx.Err(); err != nil {
			return nil, 0, 0, err
		}
		if hiRes.Fidelity >= opts.TargetFidelity {
			break
		}
		if hi >= opts.MaxSlices {
			return nil, 0, 0, fmt.Errorf("grape: fidelity %.6f below target %.6f at max duration %d slices",
				hiRes.Fidelity, opts.TargetFidelity, hi)
		}
		lo = hi + 1
		hi *= 2
		if hi > opts.MaxSlices {
			hi = opts.MaxSlices
		}
	}

	// Binary search in (lo-1, hi] for the smallest feasible slice count.
	bestSlices, bestRes := hi, hiRes
	for lo < hi {
		if err := ctx.Err(); err != nil {
			return nil, 0, 0, err
		}
		mid := (lo + hi) / 2
		res := run(mid)
		if res.Fidelity >= opts.TargetFidelity {
			bestSlices, bestRes = mid, res
			hi = mid
		} else {
			lo = mid + 1
		}
	}

	names := make([]string, len(sys.Controls))
	for k, c := range sys.Controls {
		names[k] = c.Name
	}
	sched := &pulse.Schedule{Channels: names, Amps: bestRes.Amps, SliceDt: opts.SliceDt}
	return sched, float64(bestSlices) * opts.SliceDt, bestRes.Fidelity, nil
}
