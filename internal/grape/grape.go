// Package grape implements GRadient Ascent Pulse Engineering (Khaneja et
// al.; Leung et al. [31]) from scratch: piecewise-constant controls, exact
// slice propagators, the first-order fidelity gradient, ADAM updates
// (the optimizer the paper selects, §VI-d), amplitude clipping to hardware
// bounds, and a binary search for the minimum pulse duration achieving a
// target fidelity — which is exactly the latency PAQOC minimizes.
//
// The inner loop runs on the destination-passing linalg kernels: one
// arena of propagator/gradient buffers is allocated per optimization
// call (and shared across a minimum-time search's duration probes), so
// ADAM iterations allocate nothing. OptimizeReference preserves the
// value-returning formulation as the bit-identity oracle.
package grape

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"paqoc/internal/hamiltonian"
	"paqoc/internal/linalg"
	"paqoc/internal/obs"
	"paqoc/internal/pulse"
)

// Options configures the optimizer.
type Options struct {
	SliceDt        float64 // dt per slice (default 4)
	MaxIter        int     // ADAM iterations per duration trial (default 300)
	LearningRate   float64 // ADAM step size (default 0.003 rad/dt)
	TargetFidelity float64 // success threshold (default 0.999)
	Seed           int64   // RNG seed for the initial guess
	MinSlices      int     // binary-search lower bound (default 2)
	MaxSlices      int     // binary-search upper bound (default 128)
	InitialGuess   *pulse.Schedule
	// Workers sets the goroutine count for the per-slice propagator and
	// gradient passes (0 or 1 runs them inline). Results are bit-identical
	// across worker counts: the parallel phases only compute per-slice
	// terms whose inputs and kernels do not depend on scheduling, and the
	// gradient-norm reduction always runs serially in the original order
	// (TestParallelWorkersMatchSerial pins this).
	Workers int
	// HintSlices, when positive, starts the minimum-time doubling bracket
	// at this slice count instead of MinSlices (clamped to [MinSlices,
	// MaxSlices]) — the duration prior carried by a near-miss cache hit.
	// Probes below a failed hint are skipped under the same monotonicity
	// assumption the binary search itself makes.
	HintSlices int
	// RecordConvergence captures a per-iteration fidelity / gradient-norm /
	// step-size trace in Result.Trace (one allocation per iteration; off on
	// the hot path by default).
	RecordConvergence bool
	// MaxTracePoints bounds the retained convergence trace per optimization
	// (obs.ConvergenceTrace.MaxPoints): 0 selects DefaultMaxTracePoints,
	// negative removes the bound. Dropped points are counted in the
	// "obs.convergence_dropped" metric so a long-running server can see
	// thinning happen.
	MaxTracePoints int
	// OnIteration, when non-nil, is invoked with every iteration's
	// convergence point — the streaming variant of RecordConvergence.
	OnIteration func(obs.ConvergencePoint)
}

// DefaultMaxTracePoints is the default convergence-trace cap: generous for
// one CLI run, bounded for a server recording traces on every compile.
const DefaultMaxTracePoints = 512

// DefaultOptions returns the settings used across the evaluation.
func DefaultOptions() Options {
	return Options{
		SliceDt:        4,
		MaxIter:        300,
		LearningRate:   0.003,
		TargetFidelity: 0.999,
		MinSlices:      2,
		MaxSlices:      128,
	}
}

func (o *Options) fill() {
	if o.SliceDt == 0 {
		o.SliceDt = 4
	}
	if o.MaxIter == 0 {
		o.MaxIter = 300
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.003
	}
	if o.TargetFidelity == 0 {
		o.TargetFidelity = 0.999
	}
	if o.MinSlices == 0 {
		o.MinSlices = 2
	}
	if o.MaxSlices == 0 {
		o.MaxSlices = 128
	}
}

// Result of one fixed-duration optimization.
type Result struct {
	Amps     [][]float64 // Amps[k][j]: control k, slice j
	Fidelity float64
	Iters    int
	// Trace is the per-iteration convergence record, populated when
	// Options.RecordConvergence is set (nil otherwise).
	Trace *obs.ConvergenceTrace
}

// arena holds the reusable buffers of the GRAPE inner loop for one
// optimization call — or, via MinimumTimeCtx, for a whole binary search,
// where every duration probe reuses the same storage (buffers grow to
// the largest slice count seen and shrink by reslicing). An arena is
// owned by a single goroutine and never escapes into a Result: best-so-
// far amplitudes are snapshotted into per-call storage.
type arena struct {
	dim int
	ws  *linalg.Workspace
	// props[j] is slice j's propagator; fwd[j] = U_j···U_1 (fwd[0] = I).
	props, fwd []*linalg.Matrix
	// c / cNext ping-pong the backward cumulative product; d holds
	// X_j·C_j; targetDag caches V† for the whole call.
	c, cNext, d, targetDag *linalg.Matrix
	sliceAmps              []float64
	amps, grads, m, v      [][]float64
	// bwd stores every backward cumulative product C_j for the parallel
	// gradient pass (the serial path ping-pongs c/cNext instead).
	bwd []*linalg.Matrix
	// workers holds per-goroutine sub-arenas (workspace, X_j·C_j buffer,
	// slice-amplitude staging) so parallel phases share no scratch.
	workers []*workerState

	// Cross-probe reuse, active only when MinimumTimeCtx sets
	// reuseProbes: seed carries the previous probe's best amplitudes
	// (seedN slices) as the next probe's resampled initial guess, and
	// when seedProps is set the active props bank realizes exactly those
	// amplitudes (the probe returned on the target-reached path, before
	// any ADAM update), so the next probe's first forward pass can copy
	// propagators instead of re-exponentiating. propsAlt is the second
	// propagator bank: the banks swap at probe start so the new probe
	// never clobbers entries the resampling still reads.
	reuseProbes bool
	seed        [][]float64
	seedN       int
	seedProps   bool
	propsAlt    []*linalg.Matrix
}

// workerState is one parallel worker's private scratch.
type workerState struct {
	ws        *linalg.Workspace
	d         *linalg.Matrix
	sliceAmps []float64
}

func newArena() *arena { return &arena{} }

// ensure sizes every buffer for a (dim, controls, slices, workers)
// problem, reusing prior storage where shapes allow.
func (ar *arena) ensure(dim, nc, slices, workers int) {
	if ar.dim != dim {
		ar.dim = dim
		ar.ws = linalg.NewWorkspace(dim)
		ar.c = linalg.New(dim, dim)
		ar.cNext = linalg.New(dim, dim)
		ar.d = linalg.New(dim, dim)
		ar.targetDag = linalg.New(dim, dim)
		ar.props, ar.fwd, ar.bwd = nil, nil, nil
		ar.workers = nil
		// Propagators cached for cross-probe reuse are dim-specific too.
		ar.propsAlt, ar.seed, ar.seedN, ar.seedProps = nil, nil, 0, false
	}
	for len(ar.props) < slices {
		ar.props = append(ar.props, linalg.New(dim, dim))
	}
	for len(ar.fwd) < slices+1 {
		ar.fwd = append(ar.fwd, linalg.New(dim, dim))
	}
	if cap(ar.sliceAmps) < nc {
		ar.sliceAmps = make([]float64, nc)
	}
	ar.sliceAmps = ar.sliceAmps[:nc]
	ar.amps = growRows(ar.amps, nc, slices)
	ar.grads = growRows(ar.grads, nc, slices)
	ar.m = growRows(ar.m, nc, slices)
	ar.v = growRows(ar.v, nc, slices)
	if workers > 1 {
		for len(ar.bwd) < slices {
			ar.bwd = append(ar.bwd, linalg.New(dim, dim))
		}
		for len(ar.workers) < workers {
			ar.workers = append(ar.workers, &workerState{
				ws: linalg.NewWorkspace(dim),
				d:  linalg.New(dim, dim),
			})
		}
		for _, st := range ar.workers {
			if cap(st.sliceAmps) < nc {
				st.sliceAmps = make([]float64, nc)
			}
			st.sliceAmps = st.sliceAmps[:nc]
		}
	}
}

func growRows(rows [][]float64, nc, slices int) [][]float64 {
	for len(rows) < nc {
		rows = append(rows, nil)
	}
	rows = rows[:nc]
	for k := range rows {
		if cap(rows[k]) < slices {
			rows[k] = make([]float64, slices)
		}
		rows[k] = rows[k][:slices]
	}
	return rows
}

// OptimizeCtx is the real optimizer entry point, with observability: when
// the context carries a metrics registry, per-iteration counters
// (grape.iterations, grape.expm) and the gradient-norm histogram are
// updated.
func OptimizeCtx(ctx context.Context, sys *hamiltonian.System, target *linalg.Matrix, slices int, opts Options) *Result {
	return optimize(ctx, sys, target, slices, opts, newArena())
}

// optimize is the allocation-free inner loop. All per-iteration storage
// lives in ar; numerical results are bit-identical to OptimizeReference
// (same operation order, only storage reuse — pinned by
// TestOptimizeMatchesReference).
func optimize(ctx context.Context, sys *hamiltonian.System, target *linalg.Matrix, slices int, opts Options, ar *arena) *Result {
	opts.fill()
	reg := obs.MetricsFrom(ctx)
	iterCtr := reg.Counter("grape.iterations")
	expmCtr := reg.Counter("grape.expm")
	reuseCtr := reg.Counter("grape.probe_prop_reuse")
	gradHist := reg.Histogram("grape.grad_norm", []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10})
	if target.Rows != sys.Dim {
		panic(fmt.Sprintf("grape: target dim %d does not match system dim %d", target.Rows, sys.Dim))
	}
	nc := len(sys.Controls)
	rng := rand.New(rand.NewSource(opts.Seed + int64(slices)))
	workers := opts.Workers
	if workers > slices {
		workers = slices
	}
	if workers < 1 {
		workers = 1
	}

	// Cross-probe propagator reuse (MinimumTimeCtx only): when the
	// previous probe's active props bank realizes exactly the seed
	// amplitudes, park it in propsAlt before ensure grows the new active
	// bank — resampled column j of this probe equals seed column
	// j*seedN/slices, so its propagator can be copied on iteration 1.
	var prevProps []*linalg.Matrix
	useProbeSeed := ar.reuseProbes && ar.dim == sys.Dim && ar.seedN > 0 && len(ar.seed) == nc
	if useProbeSeed && ar.seedProps {
		ar.props, ar.propsAlt = ar.propsAlt, ar.props
		prevProps = ar.propsAlt
	}
	ar.ensure(sys.Dim, nc, slices, workers)

	amps := ar.amps
	for k := range amps {
		for j := range amps[k] {
			amps[k][j] = sys.Controls[k].Bound * 0.2 * (rng.Float64()*2 - 1)
		}
	}
	if guess := alignGuess(sys, opts.InitialGuess); guess != nil {
		// Warm start: resample the guess onto this slice count, channel
		// by channel (per-channel lengths may differ after a snapshot
		// merge; alignGuess already rejected empty or missing channels).
		for k := 0; k < nc; k++ {
			src := guess[k]
			srcN := len(src)
			for j := 0; j < slices; j++ {
				amps[k][j] = src[j*srcN/slices]
			}
		}
	}
	if useProbeSeed {
		// The previous duration probe's best amplitudes are a better
		// starting point than any external guess: same system, same
		// unitary, one slice count over. Resample them on top.
		for k := 0; k < nc; k++ {
			src := ar.seed[k]
			for j := 0; j < slices; j++ {
				amps[k][j] = src[j*ar.seedN/slices]
			}
		}
	}

	// ADAM state (zeroed: the arena may carry a previous probe's moments).
	m, v := ar.m, ar.v
	for k := 0; k < nc; k++ {
		for j := 0; j < slices; j++ {
			m[k][j], v[k][j] = 0, 0
		}
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	var trace *obs.ConvergenceTrace
	if opts.RecordConvergence {
		cap := opts.MaxTracePoints
		if cap == 0 {
			cap = DefaultMaxTracePoints
		}
		if cap < 0 {
			cap = 0 // unbounded
		}
		trace = &obs.ConvergenceTrace{MaxPoints: cap}
		// Flush thinning losses to the registry on every return path.
		defer func() {
			if trace.DroppedCount > 0 {
				reg.Counter("obs.convergence_dropped").Add(int64(trace.DroppedCount))
			}
		}()
	}
	best := &Result{Fidelity: -1, Trace: trace}
	dim := float64(sys.Dim)
	dt := opts.SliceDt

	props, fwd := ar.props[:slices], ar.fwd[:slices+1]
	linalg.IdentityInto(fwd[0])
	linalg.DaggerInto(ar.targetDag, target) // V†, constant across iterations

	for iter := 1; iter <= opts.MaxIter; iter++ {
		if ctx.Err() != nil {
			// Cancelled mid-optimization (a sibling worker failed or the
			// caller gave up): return the best point reached so the caller
			// can decide; MinimumTimeCtx surfaces the context error.
			return best
		}
		iterCtr.Inc()
		// Forward pass: slice propagators, then the (order-dependent,
		// serial) cumulative products. On the first iteration after a
		// props-valid duration probe every propagator is a copy of the
		// previous probe's — each resampled amplitude column is bit-equal
		// to the column its cached propagator was exponentiated from.
		if iter == 1 && prevProps != nil {
			for j := 0; j < slices; j++ {
				props[j].CopyFrom(prevProps[j*ar.seedN/slices])
			}
			reuseCtr.Add(int64(slices))
		} else if workers > 1 {
			parallelFor(workers, slices, func(w, lo, hi int) {
				st := ar.workers[w]
				for j := lo; j < hi; j++ {
					for k := 0; k < nc; k++ {
						st.sliceAmps[k] = amps[k][j]
					}
					sys.PropagatorInto(props[j], st.sliceAmps, dt, st.ws)
				}
			})
			expmCtr.Add(int64(slices))
		} else {
			for j := 0; j < slices; j++ {
				for k := 0; k < nc; k++ {
					ar.sliceAmps[k] = amps[k][j]
				}
				sys.PropagatorInto(props[j], ar.sliceAmps, dt, ar.ws)
			}
			expmCtr.Add(int64(slices))
		}
		for j := 0; j < slices; j++ {
			linalg.MulInto(fwd[j+1], props[j], fwd[j])
		}
		overlap := linalg.TraceOverlap(target, fwd[slices]) // tr(V†·X_N)
		fid := (real(overlap)*real(overlap) + imag(overlap)*imag(overlap)) / (dim * dim)
		if fid > best.Fidelity {
			best.Fidelity = fid
			best.Iters = iter
			if best.Amps == nil {
				best.Amps = cloneAmps(amps)
			} else {
				copyAmps(best.Amps, amps)
			}
			if fid >= opts.TargetFidelity {
				if trace != nil || opts.OnIteration != nil {
					pt := obs.ConvergencePoint{Iter: iter, Fidelity: fid}
					trace.Record(pt)
					if opts.OnIteration != nil {
						opts.OnIteration(pt)
					}
				}
				if ar.reuseProbes {
					// Returning before the ADAM update means props still
					// realize exactly best.Amps: the next probe may both
					// seed from them and copy their propagators.
					ar.seed, ar.seedN, ar.seedProps = best.Amps, slices, true
				}
				return best
			}
		}

		// Backward pass: C_j = V†·B_j with B_j = U_N···U_{j+1}.
		// ∂Φ/∂u_{k,j} = (2/d²)·Re[conj(g)·tr(C_j·(-i·dt·H_k)·X_j)]
		// where X_j = fwd[j+1]. Using cyclicity, tr(C·H·X) = tr((X·C)·H).
		grads := ar.grads
		var gradSq float64
		if workers > 1 {
			// Parallel gradient: store every C_j (the chain itself is
			// order-dependent and stays serial), then fan the per-slice
			// terms out — grads[k][j] writes are disjoint across workers.
			// The norm reduction runs serially afterwards in the serial
			// path's exact order (j descending, k ascending), so the sum
			// is bit-identical regardless of worker count.
			bwd := ar.bwd[:slices]
			bwd[slices-1].CopyFrom(ar.targetDag)
			for j := slices - 1; j > 0; j-- {
				linalg.MulInto(bwd[j-1], bwd[j], props[j])
			}
			parallelFor(workers, slices, func(w, lo, hi int) {
				st := ar.workers[w]
				for j := lo; j < hi; j++ {
					linalg.MulInto(st.d, fwd[j+1], bwd[j])
					for k := 0; k < nc; k++ {
						t := traceProduct(st.d, sys.Controls[k].H)
						val := complex(0, -dt) * t
						grads[k][j] = 2 / (dim * dim) * (real(overlap)*real(val) + imag(overlap)*imag(val))
					}
				}
			})
			for j := slices - 1; j >= 0; j-- {
				for k := 0; k < nc; k++ {
					g := grads[k][j]
					gradSq += g * g
				}
			}
		} else {
			c, cNext := ar.c, ar.cNext
			c.CopyFrom(ar.targetDag) // C_N = V† (B_N = I)
			for j := slices - 1; j >= 0; j-- {
				linalg.MulInto(ar.d, fwd[j+1], c) // X_j · C_j
				for k := 0; k < nc; k++ {
					t := traceProduct(ar.d, sys.Controls[k].H)
					val := complex(0, -dt) * t
					g := 2 / (dim * dim) * (real(overlap)*real(val) + imag(overlap)*imag(val))
					grads[k][j] = g
					gradSq += g * g
				}
				linalg.MulInto(cNext, c, props[j]) // C_{j-1} = C_j·U_j
				c, cNext = cNext, c
			}
		}
		gradNorm := math.Sqrt(gradSq)
		gradHist.Observe(gradNorm)

		// ADAM ascent step with clipping to hardware bounds.
		bc1 := 1 - math.Pow(beta1, float64(iter))
		bc2 := 1 - math.Pow(beta2, float64(iter))
		var maxStep float64
		for k := 0; k < nc; k++ {
			bound := sys.Controls[k].Bound
			for j := 0; j < slices; j++ {
				g := grads[k][j]
				m[k][j] = beta1*m[k][j] + (1-beta1)*g
				v[k][j] = beta2*v[k][j] + (1-beta2)*g*g
				step := opts.LearningRate * (m[k][j] / bc1) / (math.Sqrt(v[k][j]/bc2) + eps)
				amps[k][j] += step
				if s := math.Abs(step); s > maxStep {
					maxStep = s
				}
				if amps[k][j] > bound {
					amps[k][j] = bound
				} else if amps[k][j] < -bound {
					amps[k][j] = -bound
				}
			}
		}
		if trace != nil || opts.OnIteration != nil {
			pt := obs.ConvergencePoint{Iter: iter, Fidelity: fid, GradNorm: gradNorm, StepSize: maxStep}
			trace.Record(pt)
			if opts.OnIteration != nil {
				opts.OnIteration(pt)
			}
		}
	}
	if ar.reuseProbes && best.Amps != nil {
		// Iteration budget exhausted: the amplitudes are still the best
		// seed for the next duration probe, but props were overwritten
		// by later iterations and no longer realize best.Amps.
		ar.seed, ar.seedN, ar.seedProps = best.Amps, slices, false
	}
	return best
}

// parallelFor splits [0, n) into one contiguous range per worker and
// runs f(w, lo, hi) on its own goroutine, blocking until all finish.
func parallelFor(workers, n int, f func(w, lo, hi int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			f(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// alignGuess maps a stored schedule's channels onto sys.Controls by
// name, returning per-control sample slices in control order. It
// returns nil — degrade to a cold start — when the schedule is nil or
// malformed (channel/amps length mismatch), when any control channel is
// missing from the schedule (e.g. a hit recorded under a different
// coupling graph or profile), or when a matched channel has no samples.
// Per-channel sample counts may legitimately differ after a snapshot
// merge; callers resample each channel by its own length.
func alignGuess(sys *hamiltonian.System, sched *pulse.Schedule) [][]float64 {
	if sched == nil || len(sched.Channels) != len(sched.Amps) {
		return nil
	}
	byName := make(map[string][]float64, len(sched.Channels))
	for i, name := range sched.Channels {
		byName[name] = sched.Amps[i]
	}
	out := make([][]float64, len(sys.Controls))
	for k, c := range sys.Controls {
		samples, ok := byName[c.Name]
		if !ok || len(samples) == 0 {
			return nil
		}
		out[k] = samples
	}
	return out
}

// traceProduct returns tr(A·B) without forming the product.
func traceProduct(a, b *linalg.Matrix) complex128 {
	var t complex128
	n := a.Rows
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			t += a.Data[i*n+k] * b.Data[k*n+i]
		}
	}
	return t
}

func cloneAmps(a [][]float64) [][]float64 {
	out := make([][]float64, len(a))
	for k := range a {
		out[k] = append([]float64(nil), a[k]...)
	}
	return out
}

// copyAmps copies src into the same-shaped dst.
func copyAmps(dst, src [][]float64) {
	for k := range src {
		copy(dst[k], src[k])
	}
}

// MinimumTimeCtx binary-searches the smallest slice count whose optimized
// fidelity reaches the target (§V-B: "the minimum duration of the control
// pulses of a customized gate by binary search"). It returns the winning
// schedule, its latency in dt, and the achieved fidelity, with
// observability: one
// span per duration probe ("grape.binsearch.probe", tagged with the slice
// count and achieved fidelity) under a "grape.binsearch" span, plus probe
// counters. All duration probes share one buffer arena, so the search
// allocates per distinct slice-count high-water mark, not per probe.
func MinimumTimeCtx(ctx context.Context, sys *hamiltonian.System, target *linalg.Matrix, opts Options) (*pulse.Schedule, float64, float64, error) {
	opts.fill()
	reg := obs.MetricsFrom(ctx)
	probeCtr := reg.Counter("grape.binsearch.probes")
	ctx, bsSpan := obs.StartSpan(ctx, "grape.binsearch")
	bsSpan.SetAttr("dim", sys.Dim)
	defer bsSpan.End()

	ar := newArena()
	// Consecutive probes optimize the same unitary on the same system:
	// carry each probe's best amplitudes into the next as a resampled
	// seed, and let target-reached probes donate their slice propagators.
	ar.reuseProbes = true
	run := func(slices int) *Result {
		probeCtr.Inc()
		probeCtx, span := obs.StartSpan(ctx, "grape.binsearch.probe")
		res := optimize(probeCtx, sys, target, slices, opts, ar)
		span.SetAttr("slices", slices)
		span.SetAttr("fidelity", res.Fidelity)
		span.SetAttr("iters", res.Iters)
		span.End()
		return res
	}

	// Find a feasible upper bound by doubling. Each probe is bracketed by a
	// cancellation check so a cancelled fleet stops between (and, via
	// OptimizeCtx, inside) duration probes. A HintSlices prior (typically
	// a near-miss cache hit's slice count) starts the bracket there
	// instead of MinSlices, skipping the doubling probes below it; the
	// binary search still descends to MinSlices afterwards, so minimality
	// is unchanged.
	start := opts.MinSlices
	if opts.HintSlices > 0 {
		start = opts.HintSlices
		if start < opts.MinSlices {
			start = opts.MinSlices
		}
		if start > opts.MaxSlices {
			start = opts.MaxSlices
		}
		bsSpan.SetAttr("hint", start)
	}
	lo, hi := opts.MinSlices, start
	var hiRes *Result
	for {
		if err := ctx.Err(); err != nil {
			return nil, 0, 0, err
		}
		hiRes = run(hi)
		if err := ctx.Err(); err != nil {
			return nil, 0, 0, err
		}
		if hiRes.Fidelity >= opts.TargetFidelity {
			break
		}
		if hi >= opts.MaxSlices {
			return nil, 0, 0, fmt.Errorf("grape: fidelity %.6f below target %.6f at max duration %d slices",
				hiRes.Fidelity, opts.TargetFidelity, hi)
		}
		lo = hi + 1
		hi *= 2
		if hi > opts.MaxSlices {
			hi = opts.MaxSlices
		}
	}

	// Binary search in (lo-1, hi] for the smallest feasible slice count.
	bestSlices, bestRes := hi, hiRes
	for lo < hi {
		if err := ctx.Err(); err != nil {
			return nil, 0, 0, err
		}
		mid := (lo + hi) / 2
		res := run(mid)
		if res.Fidelity >= opts.TargetFidelity {
			bestSlices, bestRes = mid, res
			hi = mid
		} else {
			lo = mid + 1
		}
	}

	names := make([]string, len(sys.Controls))
	for k, c := range sys.Controls {
		names[k] = c.Name
	}
	sched := &pulse.Schedule{Channels: names, Amps: bestRes.Amps, SliceDt: opts.SliceDt}
	return sched, float64(bestSlices) * opts.SliceDt, bestRes.Fidelity, nil
}
