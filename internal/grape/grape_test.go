package grape

import (
	"context"
	"testing"

	"paqoc/internal/circuit"
	"paqoc/internal/hamiltonian"
	"paqoc/internal/linalg"
	"paqoc/internal/pulse"
	"paqoc/internal/quantum"
	"paqoc/internal/topology"
)

func TestOptimizeXGate(t *testing.T) {
	sys := hamiltonian.XYTransmon(1, nil)
	r := OptimizeCtx(context.Background(), sys, quantum.MatX.Clone(), 8, DefaultOptions())
	if r.Fidelity < 0.999 {
		t.Errorf("X fidelity %.6f", r.Fidelity)
	}
}

func TestOptimizeRespectsBounds(t *testing.T) {
	sys := hamiltonian.XYTransmon(1, nil)
	r := OptimizeCtx(context.Background(), sys, quantum.MatH.Clone(), 8, DefaultOptions())
	for k, ch := range r.Amps {
		for _, a := range ch {
			if a > sys.Controls[k].Bound+1e-12 || a < -sys.Controls[k].Bound-1e-12 {
				t.Fatalf("amplitude %g exceeds bound %g", a, sys.Controls[k].Bound)
			}
		}
	}
}

func TestOptimizeFidelityMatchesReplay(t *testing.T) {
	// Replaying the returned schedule through the propagators must
	// reproduce the reported fidelity.
	sys := hamiltonian.XYTransmon(2, hamiltonian.LinearChain(2))
	target := quantum.MatCX.Clone()
	r := OptimizeCtx(context.Background(), sys, target, 24, DefaultOptions())
	u := linalg.Identity(4)
	amps := make([]float64, len(sys.Controls))
	for j := 0; j < 24; j++ {
		for k := range amps {
			amps[k] = r.Amps[k][j]
		}
		u = sys.Propagator(amps, 4).Mul(u)
	}
	if f := linalg.TraceFidelity(target, u); f < r.Fidelity-1e-6 {
		t.Errorf("replayed fidelity %.6f < reported %.6f", f, r.Fidelity)
	}
}

func TestMinimumTimeX(t *testing.T) {
	sys := hamiltonian.XYTransmon(1, nil)
	sched, latency, fid, err := MinimumTimeCtx(context.Background(), sys, quantum.MatX.Clone(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fid < 0.999 {
		t.Errorf("fidelity %.6f", fid)
	}
	// Quantum speed limit: a π rotation at the bounded drive needs
	// ≈ 22.5 dt; the binary search should land close to it (within one
	// doubling step of slack).
	if latency < 20 || latency > 48 {
		t.Errorf("X latency %g dt outside plausible window", latency)
	}
	if sched.Duration() != latency {
		t.Error("schedule duration disagrees with reported latency")
	}
}

func TestMinimumTimeInfeasible(t *testing.T) {
	sys := hamiltonian.XYTransmon(2, hamiltonian.LinearChain(2))
	opts := DefaultOptions()
	opts.MaxSlices = 2 // nowhere near enough for a CX
	if _, _, _, err := MinimumTimeCtx(context.Background(), sys, quantum.MatCX.Clone(), opts); err == nil {
		t.Error("expected infeasibility error")
	}
}

func TestFig2ShapeMergedBeatsSeparate(t *testing.T) {
	// The paper's Fig. 2: pulses for the consolidated H;CX unitary are
	// shorter than the H pulse plus the CX pulse stitched together
	// (110 dt vs 170 dt on their setup; we check the shape, not the
	// absolute numbers).
	opts := DefaultOptions()
	sys1 := hamiltonian.XYTransmon(1, nil)
	_, hLat, _, err := MinimumTimeCtx(context.Background(), sys1, quantum.MatH.Clone(), opts)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := hamiltonian.XYTransmon(2, hamiltonian.LinearChain(2))
	_, cxLat, _, err := MinimumTimeCtx(context.Background(), sys2, quantum.MatCX.Clone(), opts)
	if err != nil {
		t.Fatal(err)
	}
	merged := quantum.MatCX.Mul(quantum.MatH.Kron(quantum.MatI))
	_, mLat, _, err := MinimumTimeCtx(context.Background(), sys2, merged, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("H=%g dt, CX=%g dt, merged H+CX=%g dt", hLat, cxLat, mLat)
	if mLat >= hLat+cxLat {
		t.Errorf("merged latency %g not below stitched %g", mLat, hLat+cxLat)
	}
}

func TestGeneratorCacheHit(t *testing.T) {
	gen := NewGenerator(DefaultOptions())
	cg := pulse.NewCustomGate([]circuit.Gate{{Name: "h", Qubits: []int{0}}})
	first, err := gen.GenerateCtx(context.Background(), cg, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first generation should miss")
	}
	second, err := gen.GenerateCtx(context.Background(), cg, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second generation should hit the DB")
	}
	if second.Latency != first.Latency {
		t.Error("cached latency differs")
	}
}

func TestGeneratorPermutationHit(t *testing.T) {
	gen := NewGenerator(DefaultOptions())
	cx01 := pulse.NewCustomGate([]circuit.Gate{{Name: "cx", Qubits: []int{0, 1}}})
	if _, err := gen.GenerateCtx(context.Background(), cx01, 0.999); err != nil {
		t.Fatal(err)
	}
	// CX with control/target swapped is the same unitary with permuted
	// qubits and must be served from the DB (§V-B).
	cx10 := pulse.NewCustomGate([]circuit.Gate{{Name: "cx", Qubits: []int{1, 0}}})
	got, err := gen.GenerateCtx(context.Background(), cx10, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CacheHit {
		t.Error("permuted CX should hit the DB")
	}
}

func TestGeneratorTopologyCouplings(t *testing.T) {
	gen := NewGenerator(DefaultOptions())
	gen.Topo = topology.Line(3)
	cg := pulse.NewCustomGate([]circuit.Gate{
		{Name: "cx", Qubits: []int{0, 1}},
		{Name: "cx", Qubits: []int{1, 2}},
	})
	pairs := gen.couplings(cg)
	if len(pairs) != 2 {
		t.Errorf("line couplings = %v", pairs)
	}
	gen.Topo = nil
	if got := gen.couplings(cg); len(got) != 3 {
		t.Errorf("all-pairs couplings = %v", got)
	}
}

func TestGeneratorSymbolicGateFails(t *testing.T) {
	gen := NewGenerator(DefaultOptions())
	cg := pulse.NewCustomGate([]circuit.Gate{{Name: "rz", Symbol: "theta", Qubits: []int{0}}})
	if _, err := gen.GenerateCtx(context.Background(), cg, 0.999); err == nil {
		t.Error("expected error for symbolic gate")
	}
}

func TestWarmStartConverges(t *testing.T) {
	// A near-identical unitary should still generate fine when warm-started
	// from a stored neighbour.
	gen := NewGenerator(DefaultOptions())
	a := pulse.NewCustomGate([]circuit.Gate{{Name: "rx", Params: []float64{1.0}, Qubits: []int{0}}})
	if _, err := gen.GenerateCtx(context.Background(), a, 0.999); err != nil {
		t.Fatal(err)
	}
	b := pulse.NewCustomGate([]circuit.Gate{{Name: "rx", Params: []float64{1.1}, Qubits: []int{0}}})
	got, err := gen.GenerateCtx(context.Background(), b, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fidelity < 0.999 {
		t.Errorf("warm-started fidelity %.6f", got.Fidelity)
	}
}

func BenchmarkGrapeXGate(b *testing.B) {
	sys := hamiltonian.XYTransmon(1, nil)
	opts := DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OptimizeCtx(context.Background(), sys, quantum.MatX.Clone(), 8, opts)
	}
}

func BenchmarkGrapeCXMinimumTime(b *testing.B) {
	sys := hamiltonian.XYTransmon(2, hamiltonian.LinearChain(2))
	opts := DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := MinimumTimeCtx(context.Background(), sys, quantum.MatCX.Clone(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGRAPECompensatesZZCrosstalk(t *testing.T) {
	// §II-C: "Once the error terms are determined, we only have to update
	// Equation (1) and apply the same method." Pulses optimized against
	// the crosstalk-aware Hamiltonian must hit the fidelity target on it;
	// pulses optimized against the ideal model must do measurably worse
	// when replayed on the noisy hardware.
	if testing.Short() {
		t.Skip("crosstalk study is slow")
	}
	pairs := hamiltonian.LinearChain(2)
	noisy, err := hamiltonian.XYTransmon(2, pairs).WithZZCrosstalk(pairs, hamiltonian.TypicalZZCrosstalk*3)
	if err != nil {
		t.Fatal(err)
	}
	ideal := noisy.IdealTwin()
	target := quantum.MatCX.Clone()
	opts := DefaultOptions()

	// Naive pulses: calibrated on the ideal model, replayed on noisy.
	naiveSched, _, naiveFid, err := MinimumTimeCtx(context.Background(), ideal, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	replayed := linalg.Identity(4)
	amps := make([]float64, len(noisy.Controls))
	for j := 0; j < naiveSched.NumSlices(); j++ {
		for k := range amps {
			amps[k] = naiveSched.Amps[k][j]
		}
		replayed = noisy.Propagator(amps, naiveSched.SliceDt).Mul(replayed)
	}
	naiveOnNoisy := linalg.TraceFidelity(target, replayed)

	// Aware pulses: calibrated directly on the noisy model.
	_, _, awareFid, err := MinimumTimeCtx(context.Background(), noisy, target, opts)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("naive: %.6f calibrated, %.6f on hardware; aware: %.6f", naiveFid, naiveOnNoisy, awareFid)
	if awareFid < opts.TargetFidelity {
		t.Errorf("crosstalk-aware GRAPE missed target: %.6f", awareFid)
	}
	if naiveOnNoisy >= awareFid {
		t.Errorf("naive pulses (%.6f) should degrade below aware pulses (%.6f) under crosstalk",
			naiveOnNoisy, awareFid)
	}
}

func TestPermutedHitScheduleIsPhysical(t *testing.T) {
	// Regression: a permuted DB hit must return a schedule that actually
	// realizes the REQUESTED unitary (channels relabelled), not the stored
	// permuted one.
	gen := NewGenerator(DefaultOptions())
	cx01 := pulse.NewCustomGate([]circuit.Gate{{Name: "cx", Qubits: []int{0, 1}}})
	if _, err := gen.GenerateCtx(context.Background(), cx01, 0.999); err != nil {
		t.Fatal(err)
	}
	cx10 := pulse.NewCustomGate([]circuit.Gate{{Name: "cx", Qubits: []int{1, 0}}})
	got, err := gen.GenerateCtx(context.Background(), cx10, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CacheHit || got.Schedule == nil {
		t.Fatal("expected a permuted cache hit with a schedule")
	}
	want, err := cx10.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	sys := hamiltonian.XYTransmon(2, gen.couplings(cx10))
	u := linalg.Identity(4)
	amps := make([]float64, len(sys.Controls))
	for j := 0; j < got.Schedule.NumSlices(); j++ {
		for k := range amps {
			amps[k] = got.Schedule.Amps[k][j]
		}
		u = sys.Propagator(amps, got.Schedule.SliceDt).Mul(u)
	}
	if f := linalg.TraceFidelity(want, u); f < 0.999 {
		t.Errorf("remapped schedule realizes the wrong unitary: fidelity %.6f", f)
	}
}
