package pulsesim

import (
	"fmt"

	"paqoc/internal/linalg"
	"paqoc/internal/statevec"
)

// RealizedGate is one customized gate's realized local unitary (from a
// pulse simulation) together with the physical wires it acts on.
type RealizedGate struct {
	U     *linalg.Matrix
	Wires []int
}

// StateFidelity compares the state produced by a sequence of realized
// gates against the ideal sequence, starting from |0…0⟩ on n qubits. It
// uses the statevector backend, so it scales to the full 5×5-grid platform
// (up to statevec.MaxQubits), far past the dense-unitary process-fidelity
// limit. This is the large-circuit counterpart of CircuitSim.Fidelity.
func StateFidelity(n int, ideal, realized []RealizedGate) (float64, error) {
	if len(ideal) != len(realized) {
		return 0, fmt.Errorf("pulsesim: %d ideal vs %d realized gates", len(ideal), len(realized))
	}
	si, err := statevec.NewState(n)
	if err != nil {
		return 0, err
	}
	sr := si.Clone()
	for k := range ideal {
		if err := si.ApplyUnitary(ideal[k].U, ideal[k].Wires); err != nil {
			return 0, fmt.Errorf("pulsesim: ideal gate %d: %v", k, err)
		}
		if err := sr.ApplyUnitary(realized[k].U, realized[k].Wires); err != nil {
			return 0, fmt.Errorf("pulsesim: realized gate %d: %v", k, err)
		}
	}
	return statevec.Fidelity(si, sr)
}
