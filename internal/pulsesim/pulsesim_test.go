package pulsesim

import (
	"context"
	"math"
	"testing"

	"paqoc/internal/grape"
	"paqoc/internal/hamiltonian"
	"paqoc/internal/linalg"
	"paqoc/internal/pulse"
	"paqoc/internal/quantum"
)

func TestEvolveZeroScheduleIsIdentity(t *testing.T) {
	sys := hamiltonian.XYTransmon(1, nil)
	sched := &pulse.Schedule{
		Channels: []string{"a", "b"},
		Amps:     [][]float64{make([]float64, 5), make([]float64, 5)},
		SliceDt:  4,
	}
	u, err := EvolveCtx(context.Background(), sys, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(linalg.Identity(2), 1e-12) {
		t.Error("zero drive should evolve to identity")
	}
}

func TestEvolveChannelMismatch(t *testing.T) {
	sys := hamiltonian.XYTransmon(1, nil)
	sched := &pulse.Schedule{Amps: [][]float64{{0}}, SliceDt: 1}
	if _, err := EvolveCtx(context.Background(), sys, sched); err == nil {
		t.Error("expected channel-count error")
	}
}

func TestEvolveConstantXDrive(t *testing.T) {
	sys := hamiltonian.XYTransmon(1, nil)
	// π rotation split over 10 slices.
	slices := 10
	amp := hamiltonian.DriveBound
	dur := math.Pi / amp / float64(slices)
	sched := &pulse.Schedule{
		Channels: []string{"x", "y"},
		Amps:     [][]float64{constSlice(amp, slices), constSlice(0, slices)},
		SliceDt:  dur,
	}
	u, err := EvolveCtx(context.Background(), sys, sched)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.GlobalPhaseDistance(u, quantum.MatX); d > 1e-9 {
		t.Errorf("constant X drive distance to X gate: %g", d)
	}
}

func TestGrapePulseSimulatesToTarget(t *testing.T) {
	// End-to-end check: GRAPE's schedule, replayed through the simulator,
	// realizes the target within the reported fidelity.
	sys := hamiltonian.XYTransmon(2, hamiltonian.LinearChain(2))
	sched, _, fid, err := grape.MinimumTimeCtx(context.Background(), sys, quantum.MatCX.Clone(), grape.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	u, err := EvolveCtx(context.Background(), sys, sched)
	if err != nil {
		t.Fatal(err)
	}
	if got := GateFidelity(quantum.MatCX, u); got < fid-1e-6 {
		t.Errorf("simulated fidelity %.6f below reported %.6f", got, fid)
	}
}

func TestCircuitSimBell(t *testing.T) {
	sim, err := NewCircuitSim(2)
	if err != nil {
		t.Fatal(err)
	}
	sim.Apply(quantum.MatH, []int{0})
	sim.Apply(quantum.MatCX, []int{0, 1})
	ideal := quantum.MatCX.Mul(quantum.MatH.Kron(quantum.MatI))
	if f := sim.Fidelity(ideal); math.Abs(f-1) > 1e-10 {
		t.Errorf("perfect-gate circuit fidelity %g", f)
	}
}

func TestCircuitSimImperfectGate(t *testing.T) {
	sim, _ := NewCircuitSim(1)
	sim.Apply(quantum.RX(math.Pi*0.98), []int{0}) // slightly short X
	f := sim.Fidelity(quantum.MatX)
	if f > 0.9999 || f < 0.99 {
		t.Errorf("fidelity %g not in expected imperfect band", f)
	}
}

func TestCircuitSimBounds(t *testing.T) {
	if _, err := NewCircuitSim(0); err == nil {
		t.Error("0 qubits should fail")
	}
	if _, err := NewCircuitSim(13); err == nil {
		t.Error("13 qubits should fail")
	}
}

func TestESPProduct(t *testing.T) {
	gens := []*pulse.Generated{
		{Error: 0.01},
		{Error: 0.02},
	}
	want := 0.99 * 0.98
	if got := ESPCtx(context.Background(), gens); math.Abs(got-want) > 1e-12 {
		t.Errorf("ESP = %g, want %g", got, want)
	}
	if ESPCtx(context.Background(), nil) != 1 {
		t.Error("empty ESP should be 1")
	}
}

func TestTotalLatency(t *testing.T) {
	gens := []*pulse.Generated{{Latency: 10}, {Latency: 32}}
	if TotalLatency(gens) != 42 {
		t.Error("TotalLatency wrong")
	}
}

func TestDecoherenceFactor(t *testing.T) {
	if f := DecoherenceFactor(0, 1000); f != 1 {
		t.Errorf("zero latency factor %g", f)
	}
	f1 := DecoherenceFactor(1000, 1000)
	if math.Abs(f1-math.Exp(-1)) > 1e-12 {
		t.Errorf("factor %g", f1)
	}
	// Default T2 kicks in for non-positive t2.
	if DecoherenceFactor(100, 0) != DecoherenceFactor(100, DefaultT2) {
		t.Error("default T2 not applied")
	}
}

func TestModelFidelityMonotoneInLatency(t *testing.T) {
	gens := []*pulse.Generated{{Error: 0.001}}
	fShort := ModelFidelity(gens, 100, DefaultT2)
	fLong := ModelFidelity(gens, 5000, DefaultT2)
	if fShort <= fLong {
		t.Error("longer circuits must have lower modelled fidelity")
	}
}

func constSlice(v float64, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func BenchmarkEvolveCXSchedule(b *testing.B) {
	sys := hamiltonian.XYTransmon(2, hamiltonian.LinearChain(2))
	sched, _, _, err := grape.MinimumTimeCtx(context.Background(), sys, quantum.MatCX.Clone(), grape.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvolveCtx(context.Background(), sys, sched); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStateFidelityPerfectAndPerturbed(t *testing.T) {
	ideal := []RealizedGate{
		{U: quantum.MatH, Wires: []int{0}},
		{U: quantum.MatCX, Wires: []int{0, 1}},
		{U: quantum.MatCX, Wires: []int{1, 2}},
	}
	// Perfect realization.
	f, err := StateFidelity(3, ideal, ideal)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-12 {
		t.Errorf("perfect fidelity %g", f)
	}
	// Slightly wrong realization of the first gate.
	realized := append([]RealizedGate(nil), ideal...)
	realized[0] = RealizedGate{U: quantum.RY(math.Pi/2 + 0.05), Wires: []int{0}}
	f, err = StateFidelity(3, ideal, realized)
	if err != nil {
		t.Fatal(err)
	}
	if f > 0.9999 || f < 0.9 {
		t.Errorf("perturbed fidelity %g outside expected band", f)
	}
}

func TestStateFidelityWithGRAPEPulse(t *testing.T) {
	// The realized unitary of a simulated GRAPE CX must give state
	// fidelity at or above the process fidelity target.
	sys := hamiltonian.XYTransmon(2, hamiltonian.LinearChain(2))
	sched, _, fid, err := grape.MinimumTimeCtx(context.Background(), sys, quantum.MatCX.Clone(), grape.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	realizedCX, err := EvolveCtx(context.Background(), sys, sched)
	if err != nil {
		t.Fatal(err)
	}
	ideal := []RealizedGate{
		{U: quantum.MatH, Wires: []int{0}},
		{U: quantum.MatCX, Wires: []int{0, 1}},
	}
	realized := []RealizedGate{
		{U: quantum.MatH, Wires: []int{0}},
		{U: realizedCX, Wires: []int{0, 1}},
	}
	f, err := StateFidelity(4, ideal, realized) // embedded in a larger register
	if err != nil {
		t.Fatal(err)
	}
	if f < fid-0.01 {
		t.Errorf("state fidelity %g far below process fidelity %g", f, fid)
	}
}

func TestStateFidelityErrors(t *testing.T) {
	if _, err := StateFidelity(2, []RealizedGate{{U: quantum.MatH, Wires: []int{0}}}, nil); err == nil {
		t.Error("length mismatch should fail")
	}
	bad := []RealizedGate{{U: quantum.MatCX, Wires: []int{0}}}
	if _, err := StateFidelity(2, bad, bad); err == nil {
		t.Error("wire/dim mismatch should fail")
	}
}

func TestIdleDephasingNoGaps(t *testing.T) {
	// Back-to-back pulses on one qubit: no idle, factor 1.
	tl, err := pulse.BuildTimeline([][]int{{0}, {0}, {0}}, []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if f := IdleDephasing(tl, 1, 1000); f != 1 {
		t.Errorf("gapless chain factor %g", f)
	}
}

func TestIdleDephasingWithGap(t *testing.T) {
	// Qubit 1 waits while qubit 0 works: {0,1} → {0} → {0,1}.
	tl, err := pulse.BuildTimeline([][]int{{0, 1}, {0}, {0, 1}}, []float64{10, 100, 10})
	if err != nil {
		t.Fatal(err)
	}
	// Qubit 1: window 120, busy 20 → idle 100.
	want := math.Exp(-100.0 / 1000)
	if f := IdleDephasing(tl, 2, 1000); math.Abs(f-want) > 1e-12 {
		t.Errorf("factor %g, want %g", f, want)
	}
	// Untouched qubits contribute nothing.
	if f := IdleDephasing(tl, 5, 1000); math.Abs(f-want) > 1e-12 {
		t.Error("unused qubits should not add idle time")
	}
}
