// Package pulsesim is the QuTiP substitute (§II-C, Table II): it propagates
// piecewise-constant control schedules through the device Hamiltonian to
// obtain the realized unitary of each customized gate, accumulates those
// into a whole-circuit unitary, and evaluates circuit fidelity and the
// paper's ESP metric (Eq. 2).
//
// Propagation is done on each customized gate's local Hilbert space (≤ 3
// qubits) and then embedded into the circuit space — mathematically
// identical to full-space integration because the pulse Hamiltonian acts
// only on the group's qubits, and vastly cheaper.
package pulsesim

import (
	"context"
	"fmt"
	"math"
	"time"

	"paqoc/internal/hamiltonian"
	"paqoc/internal/linalg"
	"paqoc/internal/obs"
	"paqoc/internal/pulse"
	"paqoc/internal/quantum"
)

// DefaultT2 is the effective coherence time, in dt, used by the
// closed-system + exponential-dephasing fidelity model when schedules are
// synthetic (model-generated). 20000 dt ≈ 4.4 µs, a NISQ-era figure.
const DefaultT2 = 20000.0

// EvolveCtx multiplies the slice propagators of a schedule on the system
// it was generated for, returning the realized unitary. Observability: a
// "pulsesim.evolve" span per schedule and counters for time slices
// propagated and matrix exponentials computed (one per slice propagator).
// The slice loop runs on destination-passing kernels: one propagator and
// two state buffers are allocated up front and reused across all slices.
func EvolveCtx(ctx context.Context, sys *hamiltonian.System, sched *pulse.Schedule) (*linalg.Matrix, error) {
	if len(sched.Amps) != len(sys.Controls) {
		return nil, fmt.Errorf("pulsesim: schedule has %d channels, system has %d controls",
			len(sched.Amps), len(sys.Controls))
	}
	_, span := obs.StartSpan(ctx, "pulsesim.evolve")
	defer span.End()
	n := sched.NumSlices()
	span.SetAttr("slices", n)
	span.SetAttr("dim", sys.Dim)
	reg := obs.MetricsFrom(ctx)
	reg.Counter("pulsesim.slices").Add(int64(n))
	reg.Counter("pulsesim.expm").Add(int64(n))
	if reg != nil {
		stage := reg.HistogramVec(obs.StageMetric, obs.LatencyBuckets, "stage").WithLabelValues("pulsesim")
		start := time.Now()
		defer func() {
			stage.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		}()
	}
	u := linalg.Identity(sys.Dim)
	uNext := linalg.New(sys.Dim, sys.Dim)
	prop := linalg.New(sys.Dim, sys.Dim)
	ws := linalg.NewWorkspace(sys.Dim)
	amps := make([]float64, len(sys.Controls))
	for j := 0; j < n; j++ {
		if err := ctx.Err(); err != nil {
			// Cancelled mid-evolution (a sibling worker failed): each slice
			// costs a matrix exponential, so bail between slices rather
			// than finishing the schedule.
			return nil, err
		}
		for k := range amps {
			amps[k] = sched.Amps[k][j]
		}
		sys.PropagatorInto(prop, amps, sched.SliceDt, ws)
		linalg.MulInto(uNext, prop, u)
		u, uNext = uNext, u
	}
	return u, nil
}

// GateFidelity is the standard trace fidelity between the intended and the
// realized gate unitary.
func GateFidelity(target, realized *linalg.Matrix) float64 {
	return linalg.TraceFidelity(target, realized)
}

// CircuitSim accumulates realized gate unitaries into a whole-circuit
// unitary over NumQubits qubits.
type CircuitSim struct {
	NumQubits int
	u         *linalg.Matrix
}

// NewCircuitSim returns a simulator initialized to the identity. It caps
// the register at 12 qubits (4096-dim dense matrices) — enough for every
// Table II benchmark.
func NewCircuitSim(n int) (*CircuitSim, error) {
	if n <= 0 || n > 12 {
		return nil, fmt.Errorf("pulsesim: %d qubits outside supported range 1..12", n)
	}
	return &CircuitSim{NumQubits: n, u: linalg.Identity(1 << n)}, nil
}

// Apply multiplies in a gate unitary acting on the given wires.
func (s *CircuitSim) Apply(u *linalg.Matrix, wires []int) {
	s.u = quantum.Embed(u, wires, s.NumQubits).Mul(s.u)
}

// Unitary returns the accumulated circuit unitary.
func (s *CircuitSim) Unitary() *linalg.Matrix { return s.u }

// Fidelity compares the accumulated unitary against the ideal one.
func (s *CircuitSim) Fidelity(ideal *linalg.Matrix) float64 {
	return linalg.TraceFidelity(ideal, s.u)
}

// ESPCtx is the estimated success probability of Eq. (2): the product
// over customized gates of (1 - ε_i). Observability: counts
// evaluations and the gates they cover on the context's metrics registry.
func ESPCtx(ctx context.Context, gens []*pulse.Generated) float64 {
	reg := obs.MetricsFrom(ctx)
	reg.Counter("pulsesim.esp_evals").Inc()
	reg.Counter("pulsesim.esp_gates").Add(int64(len(gens)))
	esp := 1.0
	for _, g := range gens {
		esp *= 1 - g.Error
	}
	if esp < 0 {
		esp = 0
	}
	return esp
}

// TotalLatency sums pulse durations; with sequential stitching this bounds
// the circuit wall time, and it feeds the dephasing factor.
func TotalLatency(gens []*pulse.Generated) float64 {
	var t float64
	for _, g := range gens {
		t += g.Latency
	}
	return t
}

// DecoherenceFactor is the exponential dephasing survival for a circuit of
// the given critical-path latency: exp(-latency/t2).
func DecoherenceFactor(latencyDt, t2 float64) float64 {
	if t2 <= 0 {
		t2 = DefaultT2
	}
	return math.Exp(-latencyDt / t2)
}

// ModelFidelity is the quick-mode stand-in for a full pulse simulation
// when schedules are synthetic: coherent ESP times the dephasing factor of
// the circuit critical path. The heavier protocols are
// experiments.TableIINoisy (Kraus channels) and experiments.TableIIFull
// (real GRAPE schedules + Evolve).
func ModelFidelity(gens []*pulse.Generated, criticalPathDt, t2 float64) float64 {
	return ESPCtx(context.Background(), gens) * DecoherenceFactor(criticalPathDt, t2)
}

// IdleDephasing returns the survival factor for qubits idling between
// their pulses: for each qubit, the time between its first and last
// activity not covered by one of its own pulses counts as idle, and idle
// time dephases at 1/t2. This refines the critical-path-only model with
// the timeline's per-qubit gaps.
func IdleDephasing(tl *pulse.Timeline, numQubits int, t2 float64) float64 {
	if t2 <= 0 {
		t2 = DefaultT2
	}
	first := make([]float64, numQubits)
	last := make([]float64, numQubits)
	busy := make([]float64, numQubits)
	seen := make([]bool, numQubits)
	for _, e := range tl.Entries {
		for _, q := range e.Qubits {
			if q < 0 || q >= numQubits {
				continue
			}
			if !seen[q] || e.Start < first[q] {
				first[q] = e.Start
			}
			if !seen[q] || e.End > last[q] {
				last[q] = e.End
			}
			busy[q] += e.End - e.Start
			seen[q] = true
		}
	}
	var idle float64
	for q := 0; q < numQubits; q++ {
		if !seen[q] {
			continue
		}
		if gap := (last[q] - first[q]) - busy[q]; gap > 0 {
			idle += gap
		}
	}
	return math.Exp(-idle / t2)
}
