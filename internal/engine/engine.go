// Package engine is the concurrent compilation core shared by the pulse
// emission layers (internal/paqoc, internal/accqoc) and the experiment
// sweeps (internal/experiments): a bounded worker pool with context
// cancellation, first-error capture, and panic recovery, built on the
// standard library only.
//
// The pool is deliberately deterministic at workers ≤ 1: Go runs the task
// inline, in submission order, and skips remaining tasks after the first
// error — byte-for-byte the behaviour of the serial loops it replaced. At
// workers > 1, tasks run on at most `workers` goroutines; callers that need
// deterministic output collect results into pre-indexed slots (each task
// owns its index) and reduce them in submission order after Wait.
//
// When the context carries an obs metrics registry, the pool maintains the
// engine.inflight gauge (currently running tasks) and the engine.tasks
// counter.
package engine

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"paqoc/internal/obs"
)

// Group is a bounded worker pool bound to a context. Create one with
// WithContext; Go submits tasks and Wait joins them. A Group must not be
// reused after Wait returns.
type Group struct {
	ctx    context.Context
	cancel context.CancelFunc

	sem chan struct{} // nil in serial mode
	wg  sync.WaitGroup

	mu  sync.Mutex
	err error

	inflight *obs.Gauge
	tasks    *obs.Counter
	running  int64 // guarded by mu; mirrored into the gauge
}

// WithContext returns a Group running at most `workers` tasks concurrently
// and the context its tasks receive, which is cancelled on the first task
// error (or panic) and when Wait returns. workers ≤ 1 selects serial mode:
// tasks execute inline inside Go, in submission order.
func WithContext(ctx context.Context, workers int) (*Group, context.Context) {
	gctx, cancel := context.WithCancel(ctx)
	reg := obs.MetricsFrom(ctx)
	g := &Group{
		ctx:      gctx,
		cancel:   cancel,
		inflight: reg.Gauge("engine.inflight"),
		tasks:    reg.Counter("engine.tasks"),
	}
	if workers > 1 {
		g.sem = make(chan struct{}, workers)
	}
	return g, gctx
}

// Go submits one task. In serial mode the task runs before Go returns; in
// pooled mode Go blocks until a worker slot is free (bounding both
// concurrency and the scheduling backlog). After the group has recorded an
// error the task is dropped — the serial loops this replaces stop at the
// first error, and pooled callers are already being cancelled.
func (g *Group) Go(fn func(ctx context.Context) error) {
	if g.failed() {
		return
	}
	if g.sem == nil {
		g.run(fn)
		return
	}
	g.sem <- struct{}{}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() { <-g.sem }()
		if g.failed() {
			return
		}
		g.run(fn)
	}()
}

// Wait joins every submitted task, cancels the group context, and returns
// the first recorded error.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

func (g *Group) failed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err != nil
}

func (g *Group) run(fn func(ctx context.Context) error) {
	g.tasks.Inc()
	g.track(+1)
	defer g.track(-1)
	defer func() {
		if r := recover(); r != nil {
			g.fail(fmt.Errorf("engine: task panic: %v\n%s", r, debug.Stack()))
		}
	}()
	if err := fn(g.ctx); err != nil {
		g.fail(err)
	}
}

func (g *Group) fail(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
	g.cancel()
}

func (g *Group) track(delta int64) {
	g.mu.Lock()
	g.running += delta
	v := g.running
	g.mu.Unlock()
	g.inflight.Set(float64(v))
}

// ForEach runs fn(ctx, i) for every i in [0, n) on a bounded pool and
// returns the lowest-index error (not the temporally first), so the
// reported failure is deterministic for a fixed input regardless of worker
// count.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	g, _ := WithContext(ctx, workers)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		g.Go(func(ctx context.Context) error {
			errs[i] = fn(ctx, i)
			return errs[i]
		})
	}
	err := g.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return err
}
