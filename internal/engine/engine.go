// Package engine is the concurrent compilation core shared by the pulse
// emission layers (internal/paqoc, internal/accqoc) and the experiment
// sweeps (internal/experiments): a bounded worker pool with context
// cancellation, first-error capture, and panic recovery, built on the
// standard library only.
//
// The pool is deliberately deterministic at workers ≤ 1: Go runs the task
// inline, in submission order, and skips remaining tasks after the first
// error — byte-for-byte the behaviour of the serial loops it replaced. At
// workers > 1, tasks run on at most `workers` goroutines; callers that need
// deterministic output collect results into pre-indexed slots (each task
// owns its index) and reduce them in submission order after Wait.
//
// When the context carries an obs metrics registry, the pool maintains the
// engine.inflight and engine.active_workers gauges (currently running
// tasks), the engine.queued gauge (tasks blocked waiting for a worker
// slot), their .peak high-water marks, and the engine.tasks /
// engine.completed counters. All pools sharing one registry update the
// same instruments via atomic deltas, so the gauges reflect process-wide
// saturation even when several groups are live at once.
package engine

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"paqoc/internal/obs"
)

// Group is a bounded worker pool bound to a context. Create one with
// WithContext; Go submits tasks and Wait joins them. A Group must not be
// reused after Wait returns.
type Group struct {
	ctx    context.Context
	cancel context.CancelFunc

	sem chan struct{} // nil in serial mode
	wg  sync.WaitGroup

	mu  sync.Mutex
	err error

	inflight   *obs.Gauge // legacy name, same value as active
	active     *obs.Gauge
	activePeak *obs.Gauge
	queued     *obs.Gauge
	queuedPeak *obs.Gauge
	tasks      *obs.Counter
	completed  *obs.Counter
	taskMs     *obs.Histogram
}

// WithContext returns a Group running at most `workers` tasks concurrently
// and the context its tasks receive, which is cancelled on the first task
// error (or panic) and when Wait returns. workers ≤ 1 selects serial mode:
// tasks execute inline inside Go, in submission order.
func WithContext(ctx context.Context, workers int) (*Group, context.Context) {
	gctx, cancel := context.WithCancel(ctx)
	reg := obs.MetricsFrom(ctx)
	g := &Group{
		ctx:        gctx,
		cancel:     cancel,
		inflight:   reg.Gauge("engine.inflight"),
		active:     reg.Gauge("engine.active_workers"),
		activePeak: reg.Gauge("engine.active_workers.peak"),
		queued:     reg.Gauge("engine.queued"),
		queuedPeak: reg.Gauge("engine.queued.peak"),
		tasks:      reg.Counter("engine.tasks"),
		completed:  reg.Counter("engine.completed"),
		taskMs:     reg.Histogram("engine.task_ms", obs.LatencyBuckets),
	}
	if workers > 1 {
		g.sem = make(chan struct{}, workers)
	}
	return g, gctx
}

// Go submits one task. In serial mode the task runs before Go returns; in
// pooled mode Go blocks until a worker slot is free (bounding both
// concurrency and the scheduling backlog). After the group has recorded an
// error the task is dropped — the serial loops this replaces stop at the
// first error, and pooled callers are already being cancelled.
func (g *Group) Go(fn func(ctx context.Context) error) {
	if g.failed() {
		return
	}
	if g.sem == nil {
		g.run(fn)
		return
	}
	g.queuedPeak.Max(g.queued.Add(+1))
	g.sem <- struct{}{}
	g.queued.Add(-1)
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() { <-g.sem }()
		if g.failed() {
			return
		}
		g.run(fn)
	}()
}

// Wait joins every submitted task, cancels the group context, and returns
// the first recorded error.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

func (g *Group) failed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err != nil
}

func (g *Group) run(fn func(ctx context.Context) error) {
	g.tasks.Inc()
	g.track(+1)
	if g.taskMs != nil {
		start := time.Now()
		defer func() {
			g.taskMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		}()
	}
	defer g.completed.Inc()
	defer g.track(-1)
	defer func() {
		if r := recover(); r != nil {
			g.fail(fmt.Errorf("engine: task panic: %v\n%s", r, debug.Stack()))
		}
	}()
	if err := fn(g.ctx); err != nil {
		g.fail(err)
	}
}

func (g *Group) fail(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
	g.cancel()
}

// track adjusts the running-task gauges by atomic delta so groups sharing
// a registry compose: the gauges read as process-wide totals, not the last
// group's private count.
func (g *Group) track(delta float64) {
	g.inflight.Add(delta)
	g.activePeak.Max(g.active.Add(delta))
}

// ForEach runs fn(ctx, i) for every i in [0, n) on a bounded pool and
// returns the lowest-index error (not the temporally first), so the
// reported failure is deterministic for a fixed input regardless of worker
// count.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	g, _ := WithContext(ctx, workers)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		g.Go(func(ctx context.Context) error {
			errs[i] = fn(ctx, i)
			return errs[i]
		})
	}
	err := g.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return err
}
