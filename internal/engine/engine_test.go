package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"paqoc/internal/obs"
)

func TestSerialRunsInlineInOrder(t *testing.T) {
	g, _ := WithContext(context.Background(), 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		g.Go(func(ctx context.Context) error {
			order = append(order, i) // no lock: serial mode runs inline
			return nil
		})
		if len(order) != i+1 {
			t.Fatalf("task %d not run inline", i)
		}
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestSerialSkipsAfterFirstError(t *testing.T) {
	g, _ := WithContext(context.Background(), 0)
	ran := 0
	boom := errors.New("boom")
	g.Go(func(ctx context.Context) error { ran++; return nil })
	g.Go(func(ctx context.Context) error { ran++; return boom })
	g.Go(func(ctx context.Context) error { ran++; return nil })
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran != 2 {
		t.Fatalf("ran %d tasks after error, want 2 (stop at first error)", ran)
	}
}

func TestPooledBoundsConcurrency(t *testing.T) {
	const workers = 3
	g, _ := WithContext(context.Background(), workers)
	var cur, max atomic.Int64
	for i := 0; i < 20; i++ {
		g.Go(func(ctx context.Context) error {
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Errorf("observed %d concurrent tasks, cap is %d", m, workers)
	}
}

func TestFirstErrorCancelsContext(t *testing.T) {
	g, gctx := WithContext(context.Background(), 4)
	boom := errors.New("boom")
	started := make(chan struct{})
	g.Go(func(ctx context.Context) error {
		<-started
		return boom
	})
	g.Go(func(ctx context.Context) error {
		close(started)
		<-ctx.Done() // must be released by the sibling's failure
		return ctx.Err()
	})
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want first error", err)
	}
	if gctx.Err() == nil {
		t.Error("group context not cancelled after Wait")
	}
}

func TestPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g, _ := WithContext(context.Background(), workers)
		g.Go(func(ctx context.Context) error { panic("kaboom") })
		err := g.Wait()
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Errorf("workers=%d: panic not captured: %v", workers, err)
		}
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 8} {
		n := 50
		seen := make([]atomic.Int64, n)
		err := ForEach(context.Background(), workers, n, func(ctx context.Context, i int) error {
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, seen[i].Load())
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Index 7 fails first in time, index 2 fails later (but is already
	// running, so it cannot be dropped); the reported error must still be
	// index 2's, independent of completion timing.
	started := make(chan struct{})
	release := make(chan struct{})
	err := ForEach(context.Background(), 4, 10, func(ctx context.Context, i int) error {
		switch i {
		case 2:
			close(started)
			<-release
			return fmt.Errorf("err-2")
		case 7:
			<-started
			close(release)
			return fmt.Errorf("err-7")
		}
		return nil
	})
	if err == nil || err.Error() != "err-2" {
		t.Fatalf("err = %v, want err-2 (lowest index)", err)
	}
}

func TestMetricsGaugeAndCounter(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.WithMetrics(context.Background(), reg)
	g, _ := WithContext(ctx, 2)
	for i := 0; i < 6; i++ {
		g.Go(func(ctx context.Context) error { return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("engine.tasks").Value(); v != 6 {
		t.Errorf("engine.tasks = %d, want 6", v)
	}
	if v := reg.Gauge("engine.inflight").Value(); v != 0 {
		t.Errorf("engine.inflight = %v after Wait, want 0", v)
	}
	if v := reg.Counter("engine.completed").Value(); v != 6 {
		t.Errorf("engine.completed = %d, want 6", v)
	}
	for _, name := range []string{"engine.active_workers", "engine.queued"} {
		if v := reg.Gauge(name).Value(); v != 0 {
			t.Errorf("%s = %v after Wait, want 0", name, v)
		}
	}
	if v := reg.Gauge("engine.active_workers.peak").Value(); v < 1 || v > 2 {
		t.Errorf("engine.active_workers.peak = %v, want in [1,2]", v)
	}
}

// TestPoolHealthGaugesCompose checks that two concurrently live groups
// sharing a registry produce additive gauges: while both hold a running
// task, engine.active_workers reads 2, and it returns to 0 after both
// groups drain.
func TestPoolHealthGaugesCompose(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.WithMetrics(context.Background(), reg)
	g1, _ := WithContext(ctx, 2)
	g2, _ := WithContext(ctx, 2)
	bothRunning := make(chan struct{}, 2)
	release := make(chan struct{})
	task := func(ctx context.Context) error {
		bothRunning <- struct{}{}
		<-release
		return nil
	}
	g1.Go(task)
	g2.Go(task)
	<-bothRunning
	<-bothRunning
	if v := reg.Gauge("engine.active_workers").Value(); v != 2 {
		t.Errorf("engine.active_workers = %v with two live groups, want 2", v)
	}
	close(release)
	if err := g1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := g2.Wait(); err != nil {
		t.Fatal(err)
	}
	if v := reg.Gauge("engine.active_workers").Value(); v != 0 {
		t.Errorf("engine.active_workers = %v after both Waits, want 0", v)
	}
	if v := reg.Gauge("engine.active_workers.peak").Value(); v < 2 {
		t.Errorf("engine.active_workers.peak = %v, want ≥ 2", v)
	}
	if v := reg.Counter("engine.completed").Value(); v != 2 {
		t.Errorf("engine.completed = %d, want 2", v)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	// No metrics in the context: the pool must run fine on nil instruments.
	g, _ := WithContext(context.Background(), 2)
	ran := atomic.Int64{}
	for i := 0; i < 4; i++ {
		g.Go(func(ctx context.Context) error { ran.Add(1); return nil })
	}
	if err := g.Wait(); err != nil || ran.Load() != 4 {
		t.Fatalf("ran=%d err=%v", ran.Load(), err)
	}
}
