// Package bench generates the evaluation workloads: the seventeen Table I
// application benchmarks and the 150-circuit suite behind the §III-B
// latency observations. Algorithmic benchmarks (BV, Cuccaro adder, QFT,
// QAOA, supremacy, Simon, QPE, DNN ansatz, BB84) are constructed from
// their published circuit definitions; RevLib/ScaffCC reversible-logic
// benchmarks, whose original netlists are not redistributable here, are
// synthesized as seeded Toffoli networks matched to Table I's per-arity
// gate counts (see DESIGN.md, substitutions).
package bench

import (
	"math"
	"math/rand"

	"paqoc/internal/circuit"
)

// BV builds the Bernstein–Vazirani circuit over n data qubits plus one
// ancilla, for the given secret bit mask.
func BV(n int, secret []bool) *circuit.Circuit {
	c := circuit.New(n + 1)
	anc := n
	c.Add("x", anc)
	c.Add("h", anc)
	for q := 0; q < n; q++ {
		c.Add("h", q)
	}
	for q := 0; q < n; q++ {
		if q < len(secret) && secret[q] {
			c.Add("cx", q, anc)
		}
	}
	for q := 0; q < n; q++ {
		c.Add("h", q)
	}
	c.Add("h", anc) // return the ancilla to the computational basis
	return c
}

// CuccaroAdder builds the ripple-carry adder of Cuccaro et al. [13] over
// two bits-bit registers plus carry-in and carry-out ancillas
// (2·bits + 2 qubits). Register A occupies odd positions, B even, carry-in
// qubit 0, carry-out the last qubit — the MAJ/UMA ladder of the paper's
// Table III.
func CuccaroAdder(bits int) *circuit.Circuit {
	n := 2*bits + 2
	c := circuit.New(n)
	a := func(i int) int { return 2*i + 2 } // a[0..bits-1]
	b := func(i int) int { return 2*i + 1 } // b[0..bits-1]
	cin := 0
	cout := n - 1

	maj := func(x, y, z int) {
		c.Add("cx", z, y)
		c.Add("cx", z, x)
		c.Add("ccx", x, y, z)
	}
	uma := func(x, y, z int) {
		c.Add("ccx", x, y, z)
		c.Add("cx", z, x)
		c.Add("cx", x, y)
	}

	maj(cin, b(0), a(0))
	for i := 1; i < bits; i++ {
		maj(a(i-1), b(i), a(i))
	}
	c.Add("cx", a(bits-1), cout)
	for i := bits - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(cin, b(0), a(0))
	return c
}

// QFT builds the quantum Fourier transform on n qubits using H and
// controlled-U1 gates (no terminal swaps), matching Table I's accounting
// (16 one-qubit and 120 two-qubit gates at n = 16).
func QFT(n int) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Add("h", q)
		for t := q + 1; t < n; t++ {
			c.AddParam("cu1", []float64{math.Pi / math.Pow(2, float64(t-q))}, t, q)
		}
	}
	return c
}

// QAOAMaxcut builds one QAOA round for MaxCut on the complete graph K_n:
// H on all qubits, a CPHASE-style cost block (cx; rz; cx) per edge, and an
// RX mixer. At n = 10 this gives Table I's 65 one-qubit and 90 two-qubit
// gates.
func QAOAMaxcut(n int, gamma, beta float64) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Add("h", q)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			c.Add("cx", a, b)
			c.AddParam("rz", []float64{gamma}, b)
			c.Add("cx", a, b)
		}
	}
	for q := 0; q < n; q++ {
		c.AddParam("rx", []float64{2 * beta}, q)
	}
	return c
}

// QAOAMaxcutSymbolic is the parameterized variant used by the
// offline/online split: angles stay symbolic for mining.
func QAOAMaxcutSymbolic(n int) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Add("h", q)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			c.Add("cx", a, b)
			c.AddSymbolic("rz", "gamma", b)
			c.Add("cx", a, b)
		}
	}
	for q := 0; q < n; q++ {
		c.AddSymbolic("rx", "beta", q)
	}
	return c
}

// Supremacy builds a random-circuit-sampling benchmark in the style of
// Arute et al. [4] on a rows×cols grid: H everywhere, then cycles of
// nearest-neighbour CZ with random {sx, sy-like, t} one-qubit gates
// interleaved, then a closing H layer.
func Supremacy(rows, cols, cycles int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	c := circuit.New(n)
	id := func(r, col int) int { return r*cols + col }
	for q := 0; q < n; q++ {
		c.Add("h", q)
	}
	oneQ := []string{"sx", "t", "s"}
	for cyc := 0; cyc < cycles; cyc++ {
		// Alternate horizontal/vertical CZ sub-lattices.
		if cyc%2 == 0 {
			for r := 0; r < rows; r++ {
				for col := cyc / 2 % 2; col+1 < cols; col += 2 {
					c.Add("cz", id(r, col), id(r, col+1))
				}
			}
		} else {
			for r := cyc / 2 % 2; r+1 < rows; r += 2 {
				for col := 0; col < cols; col++ {
					c.Add("cz", id(r, col), id(r+1, col))
				}
			}
		}
		for q := 0; q < n; q++ {
			if rng.Intn(2) == 0 {
				c.Add(oneQ[rng.Intn(len(oneQ))], q)
			}
		}
	}
	for q := 0; q < n; q++ {
		c.Add("h", q)
	}
	return c
}

// Simon builds Simon's algorithm on 2n qubits for a hidden period s: an H
// layer, a two-to-one oracle (copy, period XORs, and an output-register
// scramble — any reversible post-processing keeps the oracle two-to-one),
// and a closing H layer. At n = 3 the construction matches Table I's 14
// one-qubit and 16 two-qubit gates.
func Simon(n int, period []bool) *circuit.Circuit {
	rng := rand.New(rand.NewSource(int64(n) * 7919))
	c := circuit.New(2 * n)
	for q := 0; q < n; q++ {
		c.Add("h", q)
	}
	// Oracle: copy the input register, XOR the period off qubit 0.
	twoQ := 0
	for q := 0; q < n; q++ {
		c.Add("cx", q, n+q)
		twoQ++
	}
	for q := 0; q < n; q++ {
		if q < len(period) && period[q] {
			c.Add("cx", 0, n+q)
			twoQ++
		}
	}
	// Reversible scramble of the output register up to Table I's density.
	oneQ := 2 * n
	for twoQ < 16 {
		a := n + rng.Intn(n)
		b := n + rng.Intn(n)
		for b == a {
			b = n + rng.Intn(n)
		}
		c.Add("cx", a, b)
		twoQ++
	}
	for oneQ < 14-n {
		c.Add("x", n+rng.Intn(n))
		oneQ++
	}
	for q := 0; q < n; q++ {
		c.Add("h", q)
	}
	return c
}

// QPE builds quantum phase estimation with counting counting-register
// qubits and one eigenstate qubit: controlled-U1 powers followed by the
// inverse QFT on the counting register.
func QPE(counting int, phase float64) *circuit.Circuit {
	n := counting + 1
	c := circuit.New(n)
	eigen := counting
	c.Add("x", eigen)
	for q := 0; q < counting; q++ {
		c.Add("h", q)
	}
	for q := 0; q < counting; q++ {
		c.AddParam("cu1", []float64{phase * math.Pow(2, float64(q))}, q, eigen)
	}
	// Inverse QFT (no swaps).
	for q := counting - 1; q >= 0; q-- {
		for t := counting - 1; t > q; t-- {
			c.AddParam("cu1", []float64{-math.Pi / math.Pow(2, float64(t-q))}, t, q)
		}
		c.Add("h", q)
	}
	return c
}

// DNN builds a dense variational "deep neural network" ansatz: blocks of
// per-qubit RX/RZ rotations followed by three all-pairs CX entangling
// passes. At n = 8 with 12 blocks this matches Table I's 192 one-qubit and
// 1008 two-qubit gates.
func DNN(n, blocks int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for blk := 0; blk < blocks; blk++ {
		for q := 0; q < n; q++ {
			c.AddParam("rx", []float64{rng.Float64() * 2 * math.Pi}, q)
		}
		for q := 0; q < n; q++ {
			c.AddParam("rz", []float64{rng.Float64() * 2 * math.Pi}, q)
		}
		for pass := 0; pass < 3; pass++ {
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					c.Add("cx", a, b)
				}
			}
		}
	}
	return c
}

// BB84 builds the BB84 state-preparation benchmark: each qubit gets a
// random bit (X) and a random basis (H) — one-qubit gates only, matching
// Table I's zero two-qubit count.
func BB84(n, gates int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for len(c.Gates) < gates {
		q := rng.Intn(n)
		if rng.Intn(2) == 0 {
			c.Add("x", q)
		}
		c.Add("h", q)
	}
	// Trim overshoot to the exact count.
	c.Gates = c.Gates[:gates]
	return c
}
