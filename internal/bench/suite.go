package bench

import (
	"math"
	"math/rand"

	"paqoc/internal/circuit"
)

// Spec describes one Table I application benchmark.
type Spec struct {
	Name        string
	Description string
	Qubits      int // paper-reported qubit count
	Paper1Q     int // paper-reported one-qubit gate count
	Paper2Q     int // paper-reported two-qubit gate count
	Build       func() *circuit.Circuit
}

// All returns the seventeen Table I benchmarks in paper order.
func All() []Spec {
	secret := make([]bool, 20)
	for i := range secret {
		secret[i] = true
	}
	return []Spec{
		{"mod5d2_64", "Toffoli network", 16, 28, 25,
			func() *circuit.Circuit { return RevLibStyle(16, 28, 25, 101) }},
		{"rd32_270", "Bit adder", 5, 48, 36,
			func() *circuit.Circuit { return RevLibStyle(5, 48, 36, 102) }},
		{"decod24-v1_41", "Binary decoder", 5, 47, 38,
			func() *circuit.Circuit { return RevLibStyle(5, 47, 38, 103) }},
		{"4gt10-v1_81", "4 greater than 10", 5, 82, 66,
			func() *circuit.Circuit { return RevLibStyle(5, 82, 66, 104) }},
		{"cnt3-5_179", "Ternary counter", 16, 90, 85,
			func() *circuit.Circuit { return RevLibStyle(16, 90, 85, 105) }},
		{"hwb4_49", "Hidden weighted bit", 5, 126, 107,
			func() *circuit.Circuit { return RevLibStyle(5, 126, 107, 106) }},
		{"ham7_104", "Hamming code", 16, 171, 149,
			func() *circuit.Circuit { return RevLibStyle(16, 171, 149, 107) }},
		{"majority_239", "Majority function", 16, 345, 267,
			func() *circuit.Circuit { return RevLibStyle(16, 345, 267, 108) }},
		{"bv", "Bernstein Vazirani", 21, 43, 20,
			func() *circuit.Circuit { return BV(20, secret) }},
		{"adder", "Cuccaro Adder", 18, 160, 107,
			func() *circuit.Circuit { return CuccaroAdder(8) }},
		{"qft", "QFT", 16, 16, 120,
			func() *circuit.Circuit { return QFT(16) }},
		{"qaoa", "QAOA", 10, 65, 90,
			func() *circuit.Circuit { return QAOAMaxcut(10, 0.731, 0.405) }},
		{"supre", "Supremacy", 25, 245, 100,
			func() *circuit.Circuit { return Supremacy(5, 5, 10, 109) }},
		{"simon", "Simon's algorithm", 6, 14, 16,
			func() *circuit.Circuit { return Simon(3, []bool{true, false, true}) }},
		{"qpe", "QPE", 9, 28, 33,
			func() *circuit.Circuit { return QPE(8, math.Pi/3) }},
		{"dnn", "Deep neural network", 8, 192, 1008,
			func() *circuit.Circuit { return DNN(8, 12, 110) }},
		{"bb84", "Crypto. proto", 8, 27, 0,
			func() *circuit.Circuit { return BB84(8, 27, 111) }},
	}
}

// ByName looks up a Table I benchmark.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Suite150 generates the 150-benchmark corpus behind the §III-B latency
// observations: small reversible-logic and algorithmic circuits spanning
// 3–8 qubits, deterministic per index.
func Suite150() []*circuit.Circuit {
	out := make([]*circuit.Circuit, 0, 150)
	for i := 0; i < 150; i++ {
		seed := int64(1000 + i)
		rng := rand.New(rand.NewSource(seed))
		switch i % 5 {
		case 0: // Toffoli network
			nq := 3 + rng.Intn(5)
			out = append(out, RevLibStyle(nq, 18+rng.Intn(60), 12+rng.Intn(40), seed))
		case 1: // QAOA round on a random graph
			nq := 4 + rng.Intn(4)
			out = append(out, qaoaRandomGraph(nq, rng))
		case 2: // QFT fragment
			out = append(out, QFT(3+rng.Intn(5)))
		case 3: // small adder
			out = append(out, CuccaroAdder(1+rng.Intn(3)))
		case 4: // dense rotation/entangle mix
			out = append(out, rotationMix(3+rng.Intn(5), 20+rng.Intn(60), rng))
		}
	}
	return out
}

func qaoaRandomGraph(n int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	gamma := rng.Float64() * math.Pi
	for q := 0; q < n; q++ {
		c.Add("h", q)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Intn(2) == 0 {
				continue
			}
			c.Add("cx", a, b)
			c.AddParam("rz", []float64{gamma}, b)
			c.Add("cx", a, b)
		}
	}
	for q := 0; q < n; q++ {
		c.AddParam("rx", []float64{rng.Float64() * math.Pi}, q)
	}
	return c
}

func rotationMix(n, gates int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	names := []string{"h", "t", "s", "x", "sx"}
	for len(c.Gates) < gates {
		switch rng.Intn(4) {
		case 0:
			c.AddParam("rz", []float64{rng.Float64() * 2 * math.Pi}, rng.Intn(n))
		case 1:
			c.Add(names[rng.Intn(len(names))], rng.Intn(n))
		default:
			a, b := rng.Intn(n), rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.Add("cx", a, b)
		}
	}
	return c
}
