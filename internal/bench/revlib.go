package bench

import (
	"math/rand"

	"paqoc/internal/circuit"
)

// RevLibStyle synthesizes a reversible-logic benchmark in the RevLib /
// ScaffCC mould: a seeded Toffoli network over nearest-ish qubits, lowered
// to universal basis gates and padded so the circuit has exactly oneQ
// one-qubit and twoQ two-qubit gates (Table I's published counts).
//
// The original RevLib netlists are not redistributable inside this
// repository; what the evaluation depends on is the *structure* of
// Toffoli networks — recurring CCX idioms over few qubits with long
// dependence chains — which this construction reproduces deterministically
// per benchmark name.
func RevLibStyle(nq, oneQ, twoQ int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(nq)
	rem1, rem2 := oneQ, twoQ

	pick3 := func() (int, int, int) {
		base := rng.Intn(nq)
		a := base
		b := (base + 1 + rng.Intn(2)) % nq
		for b == a {
			b = (b + 1) % nq
		}
		d := (base + 2 + rng.Intn(2)) % nq
		for d == a || d == b {
			d = (d + 1) % nq
		}
		return a, b, d
	}
	pick2 := func() (int, int) {
		a := rng.Intn(nq)
		b := (a + 1 + rng.Intn(2)) % nq
		for b == a {
			b = (b + 1) % nq
		}
		return a, b
	}

	// The lowered Toffoli idiom costs 9 one-qubit + 6 two-qubit gates.
	toffoli := func(a, b, d int) {
		c.Add("h", d)
		c.Add("cx", b, d)
		c.Add("tdg", d)
		c.Add("cx", a, d)
		c.Add("t", d)
		c.Add("cx", b, d)
		c.Add("tdg", d)
		c.Add("cx", a, d)
		c.Add("t", b)
		c.Add("t", d)
		c.Add("h", d)
		c.Add("cx", a, b)
		c.Add("t", a)
		c.Add("tdg", b)
		c.Add("cx", a, b)
	}

	for rem1 >= 9 && rem2 >= 6 {
		a, b, d := pick3()
		toffoli(a, b, d)
		rem1 -= 9
		rem2 -= 6
	}
	for rem2 > 0 {
		a, b := pick2()
		c.Add("cx", a, b)
		rem2--
	}
	names := []string{"x", "h", "t", "tdg", "s"}
	for rem1 > 0 {
		c.Add(names[rng.Intn(len(names))], rng.Intn(nq))
		rem1--
	}
	return c
}
