package bench

import (
	"math"
	"testing"

	"paqoc/internal/circuit"
	"paqoc/internal/linalg"
	"paqoc/internal/transpile"
)

func TestAllBenchmarksBuild(t *testing.T) {
	for _, s := range All() {
		c := s.Build()
		if c.NumQubits != s.Qubits {
			t.Errorf("%s: %d qubits, spec says %d", s.Name, c.NumQubits, s.Qubits)
		}
		if len(c.Gates) == 0 {
			t.Errorf("%s: empty circuit", s.Name)
		}
	}
}

func TestTableICountsWhereExact(t *testing.T) {
	// bv, qft, qaoa, dnn, bb84 and all RevLib-style benchmarks are
	// engineered to match Table I's universal-basis gate counts exactly.
	exact := map[string]bool{
		"mod5d2_64": true, "rd32_270": true, "decod24-v1_41": true,
		"4gt10-v1_81": true, "cnt3-5_179": true, "hwb4_49": true,
		"ham7_104": true, "majority_239": true,
		"bv": true, "qft": true, "qaoa": true, "dnn": true, "bb84": true,
	}
	for _, s := range All() {
		if !exact[s.Name] {
			continue
		}
		c := s.Build()
		one, two, three := c.CountByArity()
		if three != 0 {
			t.Errorf("%s: unexpected 3q gates", s.Name)
		}
		if one != s.Paper1Q || two != s.Paper2Q {
			t.Errorf("%s: counts %d/%d, paper %d/%d", s.Name, one, two, s.Paper1Q, s.Paper2Q)
		}
	}
}

func TestTableICountsBallpark(t *testing.T) {
	// The remaining algorithmic benchmarks must land within ~2× of the
	// paper's counts. Table I counts two-qubit library gates (cu1, cz)
	// directly, so only 3-qubit gates are lowered before counting.
	basis := transpile.UniversalBasis()
	for _, g := range []string{"cu1", "cp", "cz", "swap", "iswap", "crz"} {
		basis[g] = true
	}
	for _, s := range All() {
		c, err := transpile.Decompose(s.Build(), basis)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		one, two, _ := c.CountByArity()
		checkBallpark(t, s.Name+" 1q", one, s.Paper1Q)
		checkBallpark(t, s.Name+" 2q", two, s.Paper2Q)
	}
}

func checkBallpark(t *testing.T, what string, got, want int) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s: got %d, want 0", what, got)
		}
		return
	}
	ratio := float64(got) / float64(want)
	if ratio < 0.45 || ratio > 2.2 {
		t.Errorf("%s: got %d vs paper %d (ratio %.2f)", what, got, want, ratio)
	}
}

func TestBVCorrectness(t *testing.T) {
	// BV on a 3-bit secret: the data register must end in the secret.
	secret := []bool{true, false, true}
	c := BV(3, secret)
	u, err := c.Unitary(5)
	if err != nil {
		t.Fatal(err)
	}
	// Input |000>|1 after x,h...> — easier: simulate from |0000> since the
	// circuit includes ancilla prep.
	vec := make([]complex128, 16)
	vec[0] = 1
	vec = u.MulVec(vec)
	// Expected outcome: data register = 101, ancilla in |-> state.
	// Find the dominant basis states.
	var prob101 float64
	for idx, amp := range vec {
		p := real(amp)*real(amp) + imag(amp)*imag(amp)
		data := idx >> 1
		if data == 0b101 {
			prob101 += p
		}
	}
	if math.Abs(prob101-1) > 1e-9 {
		t.Errorf("BV measures secret with probability %g", prob101)
	}
}

func TestCuccaroAdderAddsCorrectly(t *testing.T) {
	// 2-bit adder: check a + b for all inputs via basis-state simulation.
	bits := 2
	c := CuccaroAdder(bits)
	u, err := c.Unitary(6)
	if err != nil {
		t.Fatal(err)
	}
	n := 2*bits + 2
	aQ := func(i int) int { return 2*i + 2 }
	bQ := func(i int) int { return 2*i + 1 }
	cout := n - 1
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			// Build input basis index (qubit 0 = MSB of the index).
			idx := 0
			setBit := func(q int, v int) {
				if v == 1 {
					idx |= 1 << (n - 1 - q)
				}
			}
			for i := 0; i < bits; i++ {
				setBit(aQ(i), a>>i&1)
				setBit(bQ(i), b>>i&1)
			}
			vec := make([]complex128, 1<<n)
			vec[idx] = 1
			out := u.MulVec(vec)
			// Locate the (single) output basis state.
			outIdx := -1
			for k, amp := range out {
				if real(amp)*real(amp)+imag(amp)*imag(amp) > 0.5 {
					outIdx = k
					break
				}
			}
			if outIdx < 0 {
				t.Fatal("adder output is not a basis state")
			}
			getBit := func(q int) int { return outIdx >> (n - 1 - q) & 1 }
			sum := 0
			for i := 0; i < bits; i++ {
				sum |= getBit(bQ(i)) << i
			}
			sum |= getBit(cout) << bits
			if sum != a+b {
				t.Fatalf("adder %d+%d = %d", a, b, sum)
			}
		}
	}
}

func TestQFTUnitaryMatrix(t *testing.T) {
	// QFT matrix elements: ω^{jk}/√N.
	c := QFT(3)
	u, err := c.Unitary(4)
	if err != nil {
		t.Fatal(err)
	}
	nStates := 8
	want := linalg.New(nStates, nStates)
	for j := 0; j < nStates; j++ {
		for k := 0; k < nStates; k++ {
			theta := 2 * math.Pi * float64(j) * float64(k) / float64(nStates)
			want.Set(j, k, complex(math.Cos(theta)/math.Sqrt(8), math.Sin(theta)/math.Sqrt(8)))
		}
	}
	// Standard QFT without terminal swaps produces the bit-reversed
	// transform; compare against the reversed-row variant.
	rev := linalg.New(nStates, nStates)
	for j := 0; j < nStates; j++ {
		r := int(reverseBits(uint(j), 3))
		for k := 0; k < nStates; k++ {
			rev.Set(j, k, want.At(r, k))
		}
	}
	if linalg.GlobalPhaseDistance(u, rev) > 1e-9 {
		t.Error("QFT(3) does not match the bit-reversed DFT matrix")
	}
}

func reverseBits(x uint, n int) uint {
	var r uint
	for i := 0; i < n; i++ {
		r = r<<1 | (x>>i)&1
	}
	return r
}

func TestQAOAStructure(t *testing.T) {
	c := QAOAMaxcut(10, 0.7, 0.4)
	one, two, _ := c.CountByArity()
	if one != 65 || two != 90 {
		t.Errorf("qaoa counts %d/%d, want 65/90", one, two)
	}
	sym := QAOAMaxcutSymbolic(4)
	hasSym := false
	for _, g := range sym.Gates {
		if g.IsSymbolic() {
			hasSym = true
		}
	}
	if !hasSym {
		t.Error("symbolic QAOA has no symbols")
	}
}

func TestSupremacyShape(t *testing.T) {
	c := Supremacy(5, 5, 10, 1)
	if c.NumQubits != 25 {
		t.Error("wrong qubit count")
	}
	_, two, _ := c.CountByArity()
	if two != 100 {
		t.Errorf("supremacy cz count = %d, want 100", two)
	}
}

func TestSimonPeriodStructure(t *testing.T) {
	c := Simon(3, []bool{true, true, false})
	if c.NumQubits != 6 {
		t.Error("wrong width")
	}
	if len(c.Gates) == 0 {
		t.Error("empty")
	}
}

func TestBB84OnlySingleQubit(t *testing.T) {
	c := BB84(8, 27, 7)
	one, two, three := c.CountByArity()
	if one != 27 || two != 0 || three != 0 {
		t.Errorf("bb84 counts %d/%d/%d", one, two, three)
	}
}

func TestRevLibStyleExactCounts(t *testing.T) {
	c := RevLibStyle(5, 126, 107, 42)
	one, two, three := c.CountByArity()
	if one != 126 || two != 107 || three != 0 {
		t.Errorf("counts %d/%d/%d, want 126/107/0", one, two, three)
	}
}

func TestSuite150Properties(t *testing.T) {
	suite := Suite150()
	if len(suite) != 150 {
		t.Fatalf("suite has %d circuits", len(suite))
	}
	for i, c := range suite {
		if c.NumQubits < 3 || c.NumQubits > 10 {
			t.Errorf("circuit %d: %d qubits out of range", i, c.NumQubits)
		}
		if len(c.Gates) == 0 {
			t.Errorf("circuit %d empty", i)
		}
	}
	// Determinism.
	again := Suite150()
	for i := range suite {
		if suite[i].String() != again[i].String() {
			t.Fatalf("suite circuit %d not deterministic", i)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("qft"); !ok {
		t.Error("qft missing")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("phantom benchmark")
	}
}

var _ = circuit.New

func BenchmarkBuildAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range All() {
			s.Build()
		}
	}
}
