// Package noise is a density-matrix simulator with amplitude-damping (T1)
// and pure-dephasing (T2) channels. It upgrades the scalar exp(-t/T2)
// fidelity model used by the quick-mode Table II: each customized gate is
// applied as a unitary, followed by per-qubit Kraus channels for the
// gate's pulse duration — the standard gate-based Lindblad approximation
// QuTiP-style evaluations use. Density matrices are dense, so the register
// is capped at 8 qubits (256×256), which covers every Table II benchmark's
// compacted working set.
package noise

import (
	"fmt"
	"math"
	"math/cmplx"

	"paqoc/internal/linalg"
)

// MaxQubits caps the density-matrix dimension (4^n scaling).
const MaxQubits = 8

// Params holds per-qubit coherence times in dt units.
type Params struct {
	T1 float64 // amplitude damping time; 0 disables the channel
	T2 float64 // total dephasing time (T2 ≤ 2·T1 physically); 0 disables
}

// NISQDefaults mirrors the platform used by pulsesim.DefaultT2.
func NISQDefaults() Params { return Params{T1: 40000, T2: 20000} }

// Density is an n-qubit density matrix ρ.
type Density struct {
	NumQubits int
	Rho       *linalg.Matrix
}

// NewDensity returns |0…0⟩⟨0…0|.
func NewDensity(n int) (*Density, error) {
	if n <= 0 || n > MaxQubits {
		return nil, fmt.Errorf("noise: %d qubits outside 1..%d", n, MaxQubits)
	}
	d := &Density{NumQubits: n, Rho: linalg.New(1<<n, 1<<n)}
	d.Rho.Set(0, 0, 1)
	return d, nil
}

// ApplyUnitary conjugates ρ by a k-qubit unitary on the given wires:
// ρ → U ρ U†, computed as per-column then per-row sub-block transforms in
// O(4^n·2^k) instead of two dense 8^n products.
func (d *Density) ApplyUnitary(u *linalg.Matrix, wires []int) error {
	if err := checkWires(d.NumQubits, u, wires); err != nil {
		return err
	}
	d.leftMul(u, wires)
	d.rightMulDagger(u, wires)
	return nil
}

// leftMul computes ρ ← (U on wires) ρ by transforming every column.
func (d *Density) leftMul(u *linalg.Matrix, wires []int) {
	dim := d.Rho.Rows
	k := len(wires)
	sub := 1 << k
	shift := make([]int, k)
	wireMask := 0
	for i, w := range wires {
		shift[i] = d.NumQubits - 1 - w
		wireMask |= 1 << shift[i]
	}
	idxs := make([]int, sub)
	amps := make([]complex128, sub)
	for base := 0; base < dim; base++ {
		if base&wireMask != 0 {
			continue
		}
		for s := 0; s < sub; s++ {
			idx := base
			for b := 0; b < k; b++ {
				if s>>(k-1-b)&1 == 1 {
					idx |= 1 << shift[b]
				}
			}
			idxs[s] = idx
		}
		for col := 0; col < dim; col++ {
			for s, idx := range idxs {
				amps[s] = d.Rho.Data[idx*dim+col]
			}
			for row := 0; row < sub; row++ {
				var acc complex128
				urow := u.Data[row*sub : (row+1)*sub]
				for s, a := range amps {
					if a != 0 {
						acc += urow[s] * a
					}
				}
				d.Rho.Data[idxs[row]*dim+col] = acc
			}
		}
	}
}

// rightMulDagger computes ρ ← ρ (U† on wires) by transforming every row
// with conj(U).
func (d *Density) rightMulDagger(u *linalg.Matrix, wires []int) {
	dim := d.Rho.Rows
	k := len(wires)
	sub := 1 << k
	shift := make([]int, k)
	wireMask := 0
	for i, w := range wires {
		shift[i] = d.NumQubits - 1 - w
		wireMask |= 1 << shift[i]
	}
	idxs := make([]int, sub)
	amps := make([]complex128, sub)
	for base := 0; base < dim; base++ {
		if base&wireMask != 0 {
			continue
		}
		for s := 0; s < sub; s++ {
			idx := base
			for b := 0; b < k; b++ {
				if s>>(k-1-b)&1 == 1 {
					idx |= 1 << shift[b]
				}
			}
			idxs[s] = idx
		}
		for row := 0; row < dim; row++ {
			rowBase := row * dim
			for s, idx := range idxs {
				amps[s] = d.Rho.Data[rowBase+idx]
			}
			for j := 0; j < sub; j++ {
				var acc complex128
				ujrow := u.Data[j*sub : (j+1)*sub]
				for s, a := range amps {
					if a != 0 {
						acc += a * cmplx.Conj(ujrow[s])
					}
				}
				d.Rho.Data[rowBase+idxs[j]] = acc
			}
		}
	}
}

// ApplyKraus applies a single-qubit Kraus channel {K_i} to qubit q:
// ρ → Σ_i K_i ρ K_i†, in O(4^n) per operator.
func (d *Density) ApplyKraus(ks []*linalg.Matrix, q int) error {
	if q < 0 || q >= d.NumQubits {
		return fmt.Errorf("noise: qubit %d out of range", q)
	}
	for _, k := range ks {
		if k.Rows != 2 || k.Cols != 2 {
			return fmt.Errorf("noise: Kraus operators must be 2x2")
		}
	}
	dim := d.Rho.Rows
	sh := d.NumQubits - 1 - q
	acc := make([]complex128, len(d.Rho.Data))
	for _, kop := range ks {
		// term = K ρ K†, elementwise over (i_q, j_q) blocks.
		for i := 0; i < dim; i++ {
			ib := i >> sh & 1
			for j := 0; j < dim; j++ {
				jb := j >> sh & 1
				var v complex128
				for a := 0; a < 2; a++ {
					ka := kop.At(ib, a)
					if ka == 0 {
						continue
					}
					ia := (i &^ (1 << sh)) | a<<sh
					for b := 0; b < 2; b++ {
						kb := kop.At(jb, b)
						if kb == 0 {
							continue
						}
						jbIdx := (j &^ (1 << sh)) | b<<sh
						v += ka * d.Rho.Data[ia*dim+jbIdx] * cmplx.Conj(kb)
					}
				}
				acc[i*dim+j] += v
			}
		}
	}
	copy(d.Rho.Data, acc)
	return nil
}

// Idle applies T1/T2 decay to every qubit for a duration (dt).
func (d *Density) Idle(duration float64, p Params) error {
	if duration <= 0 {
		return nil
	}
	for q := 0; q < d.NumQubits; q++ {
		if p.T1 > 0 {
			if err := d.ApplyKraus(AmplitudeDamping(1-math.Exp(-duration/p.T1)), q); err != nil {
				return err
			}
		}
		if gamma := dephasingProb(duration, p); gamma > 0 {
			if err := d.ApplyKraus(PhaseDamping(gamma), q); err != nil {
				return err
			}
		}
	}
	return nil
}

// dephasingProb converts T1/T2 into the pure-dephasing probability for a
// duration: 1/Tφ = 1/T2 − 1/(2·T1).
func dephasingProb(duration float64, p Params) float64 {
	if p.T2 <= 0 {
		return 0
	}
	rate := 1 / p.T2
	if p.T1 > 0 {
		rate -= 1 / (2 * p.T1)
	}
	if rate <= 0 {
		return 0
	}
	return 1 - math.Exp(-duration*rate)
}

// AmplitudeDamping returns the T1 channel with decay probability gamma.
func AmplitudeDamping(gamma float64) []*linalg.Matrix {
	g := clamp01(gamma)
	k0 := linalg.FromRows([][]complex128{
		{1, 0},
		{0, complex(math.Sqrt(1-g), 0)},
	})
	k1 := linalg.FromRows([][]complex128{
		{0, complex(math.Sqrt(g), 0)},
		{0, 0},
	})
	return []*linalg.Matrix{k0, k1}
}

// PhaseDamping returns the pure-dephasing channel with probability gamma.
func PhaseDamping(gamma float64) []*linalg.Matrix {
	g := clamp01(gamma)
	k0 := linalg.FromRows([][]complex128{
		{1, 0},
		{0, complex(math.Sqrt(1-g), 0)},
	})
	k1 := linalg.FromRows([][]complex128{
		{0, 0},
		{0, complex(math.Sqrt(g), 0)},
	})
	return []*linalg.Matrix{k0, k1}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Trace returns tr(ρ) — 1 for any CPTP evolution.
func (d *Density) Trace() float64 { return real(d.Rho.Trace()) }

// Purity returns tr(ρ²) ∈ (0, 1]; 1 for pure states.
func (d *Density) Purity() float64 { return real(d.Rho.Mul(d.Rho).Trace()) }

// StateFidelity returns ⟨ψ|ρ|ψ⟩ for a pure reference state.
func (d *Density) StateFidelity(psi []complex128) (float64, error) {
	if len(psi) != d.Rho.Rows {
		return 0, fmt.Errorf("noise: state length %d vs dim %d", len(psi), d.Rho.Rows)
	}
	rhoPsi := d.Rho.MulVec(psi)
	var f complex128
	for i := range psi {
		f += cmplx.Conj(psi[i]) * rhoPsi[i]
	}
	return real(f), nil
}

// Probability returns ⟨i|ρ|i⟩.
func (d *Density) Probability(i int) float64 { return real(d.Rho.At(i, i)) }

func checkWires(n int, u *linalg.Matrix, wires []int) error {
	k := len(wires)
	if u.Rows != 1<<k || u.Cols != 1<<k {
		return fmt.Errorf("noise: unitary dim %d for %d wires", u.Rows, k)
	}
	seen := map[int]bool{}
	for _, w := range wires {
		if w < 0 || w >= n || seen[w] {
			return fmt.Errorf("noise: bad wires %v", wires)
		}
		seen[w] = true
	}
	return nil
}

// TimedGate is one gate application with a pulse duration: the channel
// model applies the unitary and then duration-scaled decay on the gate's
// qubits (idle qubits decay too, handled by the caller's timeline).
type TimedGate struct {
	U        *linalg.Matrix
	Wires    []int
	Duration float64
}

// RunSequential plays timed gates one after another, applying decay on
// every qubit for each gate's duration (the sequential-stitch execution
// model). Returns the final density matrix.
func RunSequential(n int, gates []TimedGate, p Params) (*Density, error) {
	d, err := NewDensity(n)
	if err != nil {
		return nil, err
	}
	for i, g := range gates {
		if err := d.ApplyUnitary(g.U, g.Wires); err != nil {
			return nil, fmt.Errorf("noise: gate %d: %v", i, err)
		}
		if err := d.Idle(g.Duration, p); err != nil {
			return nil, err
		}
	}
	return d, nil
}
