package noise

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"paqoc/internal/quantum"
	"paqoc/internal/statevec"
)

func TestNewDensityBounds(t *testing.T) {
	if _, err := NewDensity(0); err == nil {
		t.Error("0 qubits should fail")
	}
	if _, err := NewDensity(MaxQubits + 1); err == nil {
		t.Error("oversized register should fail")
	}
	d, err := NewDensity(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Trace()-1) > 1e-12 || math.Abs(d.Purity()-1) > 1e-12 {
		t.Error("initial state should be pure with unit trace")
	}
}

func TestUnitaryEvolutionMatchesStatevector(t *testing.T) {
	// Without noise, the density matrix is |ψ⟩⟨ψ| of the statevector run.
	rng := rand.New(rand.NewSource(5))
	d, _ := NewDensity(3)
	s, _ := statevec.NewState(3)
	for i := 0; i < 10; i++ {
		a := rng.Intn(3)
		b := (a + 1 + rng.Intn(2)) % 3
		if err := d.ApplyUnitary(quantum.MatCX, []int{a, b}); err != nil {
			t.Fatal(err)
		}
		if err := s.ApplyUnitary(quantum.MatCX, []int{a, b}); err != nil {
			t.Fatal(err)
		}
		if err := d.ApplyUnitary(quantum.MatH, []int{a}); err != nil {
			t.Fatal(err)
		}
		if err := s.ApplyUnitary(quantum.MatH, []int{a}); err != nil {
			t.Fatal(err)
		}
	}
	f, err := d.StateFidelity(s.Amps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-9 {
		t.Errorf("noiseless density run deviates from statevector: fidelity %g", f)
	}
}

func TestAmplitudeDampingDecaysExcitedState(t *testing.T) {
	d, _ := NewDensity(1)
	d.ApplyUnitary(quantum.MatX, []int{0}) // |1>
	p := Params{T1: 1000, T2: 0}
	if err := d.Idle(1000, p); err != nil { // one T1
		t.Fatal(err)
	}
	// P(|1>) should be e^{-1}.
	if got := d.Probability(1); math.Abs(got-math.Exp(-1)) > 1e-9 {
		t.Errorf("P(1) = %g, want e^-1", got)
	}
	if math.Abs(d.Trace()-1) > 1e-9 {
		t.Error("trace not preserved")
	}
}

func TestDephasingKillsCoherence(t *testing.T) {
	d, _ := NewDensity(1)
	d.ApplyUnitary(quantum.MatH, []int{0}) // |+>
	if math.Abs(real(d.Rho.At(0, 1))-0.5) > 1e-12 {
		t.Fatal("coherence setup wrong")
	}
	if err := d.Idle(2000, Params{T2: 1000}); err != nil {
		t.Fatal(err)
	}
	// Off-diagonal decays, populations stay 1/2 each.
	if math.Abs(real(d.Rho.At(0, 0))-0.5) > 1e-9 {
		t.Error("dephasing changed populations")
	}
	if math.Abs(real(d.Rho.At(0, 1))) > 0.25 {
		t.Errorf("coherence %g should have decayed well below 0.5", real(d.Rho.At(0, 1)))
	}
	if d.Purity() > 0.99 {
		t.Error("state should be mixed after dephasing")
	}
}

func TestKrausChannelsAreTracePreserving(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, _ := NewDensity(2)
		d.ApplyUnitary(quantum.MatH, []int{0})
		d.ApplyUnitary(quantum.MatCX, []int{0, 1})
		g := rng.Float64()
		if err := d.ApplyKraus(AmplitudeDamping(g), rng.Intn(2)); err != nil {
			return false
		}
		if err := d.ApplyKraus(PhaseDamping(rng.Float64()), rng.Intn(2)); err != nil {
			return false
		}
		return math.Abs(d.Trace()-1) < 1e-9 && d.Purity() <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRunSequentialBellWithNoise(t *testing.T) {
	gates := []TimedGate{
		{U: quantum.MatH, Wires: []int{0}, Duration: 24},
		{U: quantum.MatCX, Wires: []int{0, 1}, Duration: 80},
	}
	ideal, _ := statevec.NewState(2)
	ideal.ApplyUnitary(quantum.MatH, []int{0})
	ideal.ApplyUnitary(quantum.MatCX, []int{0, 1})

	noiseless, err := RunSequential(2, gates, Params{})
	if err != nil {
		t.Fatal(err)
	}
	f0, _ := noiseless.StateFidelity(ideal.Amps)
	if math.Abs(f0-1) > 1e-9 {
		t.Errorf("noiseless fidelity %g", f0)
	}

	noisy, err := RunSequential(2, gates, NISQDefaults())
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := noisy.StateFidelity(ideal.Amps)
	if f1 >= f0 || f1 < 0.9 {
		t.Errorf("noisy fidelity %g outside expected band (below %g, above 0.9)", f1, f0)
	}
}

func TestLongerPulsesHurtMore(t *testing.T) {
	// The mechanism behind the paper's latency→fidelity story: the same
	// circuit with longer pulse durations must have lower fidelity.
	mk := func(scale float64) float64 {
		gates := []TimedGate{
			{U: quantum.MatH, Wires: []int{0}, Duration: 24 * scale},
			{U: quantum.MatCX, Wires: []int{0, 1}, Duration: 80 * scale},
			{U: quantum.MatCX, Wires: []int{1, 2}, Duration: 80 * scale},
		}
		ideal, _ := statevec.NewState(3)
		for _, g := range gates {
			ideal.ApplyUnitary(g.U, g.Wires)
		}
		d, err := RunSequential(3, gates, NISQDefaults())
		if err != nil {
			t.Fatal(err)
		}
		f, _ := d.StateFidelity(ideal.Amps)
		return f
	}
	short, long := mk(1), mk(5)
	if long >= short {
		t.Errorf("5× longer pulses should hurt fidelity: %g vs %g", long, short)
	}
}

func TestPhysicalityT2CappedByT1(t *testing.T) {
	// With T2 = 2·T1 exactly, pure dephasing vanishes.
	if got := dephasingProb(100, Params{T1: 500, T2: 1000}); got != 0 {
		t.Errorf("dephasing rate should be zero at T2 = 2T1, got %g", got)
	}
	if got := dephasingProb(100, Params{T1: 500, T2: 400}); got <= 0 {
		t.Error("dephasing expected for T2 < 2T1")
	}
}

func TestApplyErrors(t *testing.T) {
	d, _ := NewDensity(2)
	if err := d.ApplyUnitary(quantum.MatCX, []int{0}); err == nil {
		t.Error("dim mismatch should fail")
	}
	if err := d.ApplyKraus(AmplitudeDamping(0.1), 5); err == nil {
		t.Error("bad qubit should fail")
	}
	if _, err := d.StateFidelity(make([]complex128, 3)); err == nil {
		t.Error("length mismatch should fail")
	}
}

func BenchmarkRunSequential6Qubits(b *testing.B) {
	var gates []TimedGate
	for i := 0; i < 5; i++ {
		gates = append(gates, TimedGate{U: quantum.MatCX, Wires: []int{i, i + 1}, Duration: 80})
	}
	p := NISQDefaults()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunSequential(6, gates, p); err != nil {
			b.Fatal(err)
		}
	}
}
