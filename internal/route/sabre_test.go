package route

import (
	"math/rand"
	"testing"

	"paqoc/internal/circuit"
	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
	"paqoc/internal/topology"
)

func TestRouteAlreadyCompliant(t *testing.T) {
	c := circuit.New(3)
	c.Add("h", 0)
	c.Add("cx", 0, 1)
	c.Add("cx", 1, 2)
	res, err := Route(c, topology.Line(3), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Errorf("compliant circuit got %d swaps", res.SwapCount)
	}
	if len(res.Physical.Gates) != 3 {
		t.Errorf("gate count changed: %d", len(res.Physical.Gates))
	}
}

func TestRouteInsertsSwaps(t *testing.T) {
	c := circuit.New(3)
	c.Add("cx", 0, 2) // endpoints of a 3-qubit line: needs movement
	res, err := Route(c, topology.Line(3), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount == 0 {
		t.Error("expected at least one swap")
	}
	checkCompliance(t, res.Physical, topology.Line(3))
}

func TestRouteRejectsThreeQubitGates(t *testing.T) {
	c := circuit.New(3)
	c.Add("ccx", 0, 1, 2)
	if _, err := Route(c, topology.Line(3), DefaultOptions()); err == nil {
		t.Error("expected error for 3-qubit gate")
	}
}

func TestRouteRejectsOversizedCircuit(t *testing.T) {
	c := circuit.New(10)
	c.Add("h", 9)
	if _, err := Route(c, topology.Line(3), DefaultOptions()); err == nil {
		t.Error("expected size error")
	}
}

func TestRouteBadInitialMap(t *testing.T) {
	c := circuit.New(2)
	c.Add("cx", 0, 1)
	opts := DefaultOptions()
	opts.InitialMap = []int{0, 0} // duplicate
	if _, err := Route(c, topology.Line(2), opts); err == nil {
		t.Error("expected duplicate-map error")
	}
	opts.InitialMap = []int{0} // wrong length
	if _, err := Route(c, topology.Line(2), opts); err == nil {
		t.Error("expected length error")
	}
}

func TestRouteComplianceRandomOnGrid(t *testing.T) {
	topo := topology.Grid(3, 3)
	for seed := int64(0); seed < 10; seed++ {
		c := randomTwoQubitCircuit(seed, 9, 40)
		res, err := Route(c, topo, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		checkCompliance(t, res.Physical, topo)
	}
}

func TestRouteSemanticsPreserved(t *testing.T) {
	// The routed circuit, conjugated by the permutations implied by the
	// initial and final maps, must equal the logical unitary.
	topo := topology.Line(4)
	for seed := int64(0); seed < 8; seed++ {
		c := randomTwoQubitCircuit(seed, 4, 15)
		res, err := Route(c, topo, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		logical, err := c.Unitary(6)
		if err != nil {
			t.Fatal(err)
		}
		physical, err := res.Physical.Unitary(6)
		if err != nil {
			t.Fatal(err)
		}
		// physical · P_init = P_final · logical, where P_m maps logical
		// qubit l onto physical wire m[l].
		pInit := permutationUnitary(res.InitialMap, topo.NumQubits)
		pFinal := permutationUnitary(res.FinalMap, topo.NumQubits)
		left := physical.Mul(pInit)
		right := pFinal.Mul(logicalLifted(logical, topo.NumQubits, c.NumQubits))
		if linalg.GlobalPhaseDistance(left, right) > 1e-8 {
			t.Fatalf("seed %d: routed circuit is not semantically equivalent", seed)
		}
	}
}

func TestRouteFarApartOnGridTerminates(t *testing.T) {
	topo := topology.Grid(5, 5)
	c := circuit.New(25)
	// Repeatedly entangle opposite corners — a stress test for the
	// heuristic's livelock guard.
	for i := 0; i < 10; i++ {
		c.Add("cx", 0, 24)
		c.Add("cx", 4, 20)
	}
	res, err := Route(c, topo, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkCompliance(t, res.Physical, topo)
}

func checkCompliance(t *testing.T, c *circuit.Circuit, topo *topology.Topology) {
	t.Helper()
	for _, g := range c.Gates {
		if g.Arity() == 2 && !topo.Connected(g.Qubits[0], g.Qubits[1]) {
			t.Fatalf("gate %v violates topology", g)
		}
	}
}

// permutationUnitary builds the unitary that relocates logical qubit l to
// physical wire m[l] on an n-wire register (unmapped wires stay put).
func permutationUnitary(m []int, n int) *linalg.Matrix {
	// Build a full permutation perm[wire] = source wire.
	target := make([]int, n)
	for i := range target {
		target[i] = -1
	}
	for l, p := range m {
		target[p] = l
	}
	next := len(m)
	for p := 0; p < n; p++ {
		if target[p] == -1 {
			target[p] = next
			next++
		}
	}
	dim := 1 << n
	out := linalg.New(dim, dim)
	for col := 0; col < dim; col++ {
		row := 0
		for p := 0; p < n; p++ {
			bit := (col >> (n - 1 - target[p])) & 1
			row |= bit << (n - 1 - p)
		}
		out.Set(row, col, 1)
	}
	return out
}

// logicalLifted embeds a k-qubit unitary on the first k wires of n.
func logicalLifted(u *linalg.Matrix, n, k int) *linalg.Matrix {
	wires := make([]int, k)
	for i := range wires {
		wires[i] = i
	}
	return quantum.Embed(u, wires, n)
}

func randomTwoQubitCircuit(seed int64, nq, gates int) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(nq)
	for i := 0; i < gates; i++ {
		if rng.Intn(3) == 0 {
			c.Add("h", rng.Intn(nq))
		} else {
			a, b := rng.Intn(nq), rng.Intn(nq)
			for b == a {
				b = rng.Intn(nq)
			}
			c.Add("cx", a, b)
		}
	}
	return c
}

func BenchmarkRouteGrid5x5(b *testing.B) {
	topo := topology.Grid(5, 5)
	c := randomTwoQubitCircuit(7, 25, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Route(c, topo, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRouteBidirectionalNeverWorse(t *testing.T) {
	topo := topology.Grid(3, 3)
	improved := 0
	for seed := int64(0); seed < 12; seed++ {
		c := randomTwoQubitCircuit(seed, 9, 50)
		plain, err := Route(c, topo, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		bi, err := RouteBidirectional(c, topo, DefaultOptions(), 3)
		if err != nil {
			t.Fatal(err)
		}
		if bi.SwapCount > plain.SwapCount {
			t.Errorf("seed %d: bidirectional %d swaps > plain %d", seed, bi.SwapCount, plain.SwapCount)
		}
		if bi.SwapCount < plain.SwapCount {
			improved++
		}
		checkCompliance(t, bi.Physical, topo)
	}
	if improved == 0 {
		t.Error("bidirectional refinement never improved any seed; expected at least one win")
	}
}

func TestRouteBidirectionalSemantics(t *testing.T) {
	topo := topology.Line(4)
	c := randomTwoQubitCircuit(3, 4, 12)
	res, err := RouteBidirectional(c, topo, DefaultOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	logical, err := c.Unitary(6)
	if err != nil {
		t.Fatal(err)
	}
	physical, err := res.Physical.Unitary(6)
	if err != nil {
		t.Fatal(err)
	}
	left := physical.Mul(permutationUnitary(res.InitialMap, topo.NumQubits))
	right := permutationUnitary(res.FinalMap, topo.NumQubits).Mul(logicalLifted(logical, topo.NumQubits, c.NumQubits))
	if linalg.GlobalPhaseDistance(left, right) > 1e-8 {
		t.Error("bidirectional routing broke semantics")
	}
}
