// Package route implements SABRE-style qubit mapping and SWAP insertion
// (Li, Ding, Xie — ASPLOS 2019), the routing pass the paper's platform uses
// (§VI-c). It converts a logical circuit into a physical circuit that only
// applies two-qubit gates across coupled qubit pairs.
package route

import (
	"fmt"
	"sort"

	"paqoc/internal/circuit"
	"paqoc/internal/topology"
)

// Result is the outcome of routing: the physical circuit (with SWAPs
// inserted), the initial logical→physical mapping used, and the final
// mapping after all SWAPs.
type Result struct {
	Physical   *circuit.Circuit
	InitialMap []int // InitialMap[logical] = physical
	FinalMap   []int
	SwapCount  int
}

// Options tunes the router.
type Options struct {
	// ExtendedSize is the lookahead window (number of future 2q gates
	// considered beyond the front layer). 20 is the SABRE default regime.
	ExtendedSize int
	// ExtendedWeight scales the lookahead term in the SWAP score.
	ExtendedWeight float64
	// DecayFactor penalises re-swapping the same qubit in quick succession.
	DecayFactor float64
	// InitialMap overrides the identity initial mapping when non-nil.
	InitialMap []int
}

// DefaultOptions mirrors the published SABRE heuristics.
func DefaultOptions() Options {
	return Options{ExtendedSize: 20, ExtendedWeight: 0.5, DecayFactor: 0.001}
}

// Route maps a logical circuit onto the topology. The circuit may contain
// only 1- and 2-qubit gates (decompose 3-qubit gates first; see
// internal/transpile). The physical circuit has the topology's qubit count.
func Route(c *circuit.Circuit, topo *topology.Topology, opts Options) (*Result, error) {
	if c.NumQubits > topo.NumQubits {
		return nil, fmt.Errorf("route: circuit has %d qubits but device has %d", c.NumQubits, topo.NumQubits)
	}
	for _, g := range c.Gates {
		if g.Arity() > 2 {
			return nil, fmt.Errorf("route: gate %s has arity %d; decompose before routing", g.Name, g.Arity())
		}
	}
	if opts.ExtendedSize <= 0 {
		opts.ExtendedSize = 20
	}
	if opts.ExtendedWeight == 0 {
		opts.ExtendedWeight = 0.5
	}

	dist := topo.Distances()
	dag := circuit.BuildDAG(c)

	// l2p[logical] = physical, p2l inverse (-1 when unoccupied).
	l2p := make([]int, c.NumQubits)
	p2l := make([]int, topo.NumQubits)
	for i := range p2l {
		p2l[i] = -1
	}
	if opts.InitialMap != nil {
		if len(opts.InitialMap) != c.NumQubits {
			return nil, fmt.Errorf("route: initial map has %d entries, want %d", len(opts.InitialMap), c.NumQubits)
		}
		copy(l2p, opts.InitialMap)
	} else {
		for i := range l2p {
			l2p[i] = i
		}
	}
	for l, p := range l2p {
		if p < 0 || p >= topo.NumQubits || p2l[p] != -1 {
			return nil, fmt.Errorf("route: invalid initial map at logical %d", l)
		}
		p2l[p] = l
	}
	initial := append([]int(nil), l2p...)

	out := circuit.New(topo.NumQubits)
	remainingPreds := make([]int, dag.NumGates)
	for i, ps := range dag.Preds {
		remainingPreds[i] = len(ps)
	}
	var front []int
	for i := 0; i < dag.NumGates; i++ {
		if remainingPreds[i] == 0 {
			front = append(front, i)
		}
	}
	decay := make([]float64, topo.NumQubits)
	swaps := 0
	stall := 0

	execute := func(gi int) {
		g := c.Gates[gi]
		phys := make([]int, len(g.Qubits))
		for i, q := range g.Qubits {
			phys[i] = l2p[q]
		}
		ng := g.Clone()
		ng.Qubits = phys
		out.AddGate(ng)
		for _, s := range dag.Succs[gi] {
			remainingPreds[s]--
			if remainingPreds[s] == 0 {
				front = append(front, s)
			}
		}
	}

	applySwap := func(pa, pb int) {
		out.Add("swap", pa, pb)
		la, lb := p2l[pa], p2l[pb]
		p2l[pa], p2l[pb] = lb, la
		if la >= 0 {
			l2p[la] = pb
		}
		if lb >= 0 {
			l2p[lb] = pa
		}
		decay[pa] += opts.DecayFactor
		decay[pb] += opts.DecayFactor
		swaps++
	}

	for len(front) > 0 {
		// Execute every currently executable front gate. execute() appends
		// newly-unblocked successors to front, so drain into a snapshot.
		cur := front
		front = nil
		progressed := false
		for _, gi := range cur {
			g := c.Gates[gi]
			if g.Arity() == 1 || topo.Connected(l2p[g.Qubits[0]], l2p[g.Qubits[1]]) {
				execute(gi)
				progressed = true
			} else {
				front = append(front, gi)
			}
		}
		if progressed {
			stall = 0
			for i := range decay {
				decay[i] = 0
			}
			continue
		}
		if len(front) == 0 {
			break
		}

		// All front gates are blocked 2q gates: choose a SWAP.
		extended := lookahead(c, dag, remainingPreds, front, opts.ExtendedSize)
		candidates := swapCandidates(topo, c, front, l2p)
		if len(candidates) == 0 {
			return nil, fmt.Errorf("route: no swap candidates; topology disconnected?")
		}
		best := candidates[0]
		bestScore := swapScore(best, c, dist, l2p, p2l, front, extended, decay, opts)
		for _, cand := range candidates[1:] {
			if s := swapScore(cand, c, dist, l2p, p2l, front, extended, decay, opts); s < bestScore {
				best, bestScore = cand, s
			}
		}
		applySwap(best[0], best[1])

		// Livelock guard: if heuristics thrash, walk the first blocked gate's
		// qubits together along a shortest path.
		stall++
		if stall > 4*topo.NumQubits {
			g := c.Gates[front[0]]
			pa, pb := l2p[g.Qubits[0]], l2p[g.Qubits[1]]
			for !topo.Connected(pa, pb) {
				step := pa
				for _, nb := range topo.Neighbors(pa) {
					if dist[nb][pb] < dist[step][pb] {
						step = nb
					}
				}
				applySwap(pa, step)
				pa = step
			}
			stall = 0
		}
	}

	return &Result{Physical: out, InitialMap: initial, FinalMap: l2p, SwapCount: swaps}, nil
}

// lookahead collects up to size two-qubit gates that follow the front layer
// in dependence order (the SABRE extended set).
func lookahead(c *circuit.Circuit, dag *circuit.DAG, remainingPreds []int, front []int, size int) []int {
	var ext []int
	seen := make(map[int]bool)
	queue := append([]int(nil), front...)
	for len(queue) > 0 && len(ext) < size {
		v := queue[0]
		queue = queue[1:]
		for _, s := range dag.Succs[v] {
			if seen[s] {
				continue
			}
			seen[s] = true
			if c.Gates[s].Arity() == 2 {
				ext = append(ext, s)
			}
			queue = append(queue, s)
		}
	}
	return ext
}

// swapCandidates lists device edges touching any physical qubit involved in
// a blocked front gate.
func swapCandidates(topo *topology.Topology, c *circuit.Circuit, front []int, l2p []int) [][2]int {
	involved := make(map[int]bool)
	for _, gi := range front {
		for _, q := range c.Gates[gi].Qubits {
			involved[l2p[q]] = true
		}
	}
	seen := make(map[[2]int]bool)
	var out [][2]int
	for p := range involved {
		for _, nb := range topo.Neighbors(p) {
			e := [2]int{p, nb}
			if nb < p {
				e = [2]int{nb, p}
			}
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// swapScore evaluates the SABRE heuristic H for applying the given swap:
// front-layer distance sum plus weighted lookahead distance sum, scaled by
// the decay of the swapped qubits.
func swapScore(swap [2]int, c *circuit.Circuit, dist [][]int, l2p, p2l []int, front, extended []int, decay []float64, opts Options) float64 {
	// Build the trial mapping after the swap (logical view only).
	trial := func(l int) int {
		p := l2p[l]
		switch p {
		case swap[0]:
			return swap[1]
		case swap[1]:
			return swap[0]
		default:
			return p
		}
	}
	var frontSum float64
	for _, gi := range front {
		g := c.Gates[gi]
		frontSum += float64(dist[trial(g.Qubits[0])][trial(g.Qubits[1])])
	}
	frontSum /= float64(len(front))
	var extSum float64
	if len(extended) > 0 {
		for _, gi := range extended {
			g := c.Gates[gi]
			extSum += float64(dist[trial(g.Qubits[0])][trial(g.Qubits[1])])
		}
		extSum = opts.ExtendedWeight * extSum / float64(len(extended))
	}
	d := 1 + decay[swap[0]] + decay[swap[1]]
	return d * (frontSum + extSum)
}

// RouteBidirectional refines the initial layout with SABRE's
// forward–backward passes: the final mapping of a pass over the reversed
// circuit seeds the next forward pass. The best forward result (fewest
// SWAPs) across all passes is returned; with passes = 0 it degenerates to
// plain Route.
func RouteBidirectional(c *circuit.Circuit, topo *topology.Topology, opts Options, passes int) (*Result, error) {
	best, err := Route(c, topo, opts)
	if err != nil {
		return nil, err
	}
	rev := circuit.New(c.NumQubits)
	for i := len(c.Gates) - 1; i >= 0; i-- {
		rev.AddGate(c.Gates[i].Clone())
	}
	cur := best.FinalMap
	for p := 0; p < passes; p++ {
		o := opts
		o.InitialMap = cur
		back, err := Route(rev, topo, o)
		if err != nil {
			return nil, err
		}
		o.InitialMap = back.FinalMap
		fwd, err := Route(c, topo, o)
		if err != nil {
			return nil, err
		}
		if fwd.SwapCount < best.SwapCount {
			best = fwd
		}
		cur = fwd.FinalMap
	}
	return best, nil
}
