package miner

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"paqoc/internal/circuit"
	"paqoc/internal/device"
	"paqoc/internal/mining"
	"paqoc/internal/obs"
	"paqoc/internal/pulse"
)

// fakeGen is a deterministic stand-in for GRAPE: it stores an entry under
// the gate's canonical key (like the real generator's DB.Do path) and
// counts calls. Optional hooks make it slow or failing.
type fakeGen struct {
	db    *pulse.DB
	calls atomic.Int64
	delay time.Duration
	fail  bool
}

func (f *fakeGen) GenerateCtx(ctx context.Context, cg *pulse.CustomGate, fid float64) (*pulse.Generated, error) {
	f.calls.Add(1)
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if f.fail {
		return nil, fmt.Errorf("fake: optimization diverged")
	}
	u, err := cg.Unitary()
	if err != nil {
		return nil, err
	}
	g := &pulse.Generated{Latency: 40, Fidelity: fid}
	f.db.Store(u, g)
	return g, nil
}

func quiet() *obs.Logger { return obs.NewLogger(io.Discard, obs.LevelError) }

// swapCircuit carries one SWAP idiom (3 CX) — the canonical recurring
// pattern.
func swapCircuit() *circuit.Circuit {
	c := circuit.New(2)
	c.Add("cx", 0, 1)
	c.Add("cx", 1, 0)
	c.Add("cx", 0, 1)
	return c
}

func testBackend(t *testing.T) Backend {
	t.Helper()
	prof, err := device.Lookup("xy-grid-1x2")
	if err != nil {
		t.Fatal(err)
	}
	db := pulse.NewDB()
	db.SetFingerprint(prof.Fingerprint())
	return Backend{Profile: prof, DB: db}
}

func newTestMiner(t *testing.T, cfg Config, gen func(Backend) pulse.Generator) *Miner {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = quiet()
	}
	cfg.NewGenerator = gen
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m
}

// TestMinerPregeneratesFrequentPattern: observing the same pattern across
// enough requests pre-generates its pulse, protects the entry, and the
// status resource reports it.
func TestMinerPregeneratesFrequentPattern(t *testing.T) {
	b := testBackend(t)
	var fg *fakeGen
	cfg := Config{Mining: mining.Options{MinSupport: 3}, Budget: 32, Registry: obs.NewRegistry()}
	m := newTestMiner(t, cfg, func(bk Backend) pulse.Generator {
		fg = &fakeGen{db: bk.DB}
		return fg
	})

	for i := 0; i < 3; i++ {
		m.Observe(b, swapCircuit())
	}
	m.RunOnce(context.Background())

	if fg == nil || fg.calls.Load() == 0 {
		t.Fatal("no pulses pre-generated after 3 observations at MinSupport 3")
	}
	if got := cfg.Registry.Counter("miner.pregenerated").Value(); got == 0 {
		t.Error("miner.pregenerated stayed 0")
	}
	if got := cfg.Registry.Counter("miner.idle_runs").Value(); got != 1 {
		t.Errorf("miner.idle_runs = %d, want 1", got)
	}
	if b.DB.Len() == 0 {
		t.Fatal("pre-generated pulse not stored in the backend DB")
	}
	// The entry must be Protected: with MaxEntries 1 and a competing
	// store, ranked eviction must keep the pre-generated one.
	st := m.Status()
	if !st.Enabled || st.Pregenerated == 0 || st.PatternsTracked == 0 {
		t.Errorf("status = %+v, want enabled with pregenerated and tracked patterns", st)
	}
	if len(st.Backends) != 1 || st.Backends[0].Fingerprint != b.Profile.Fingerprint() {
		t.Fatalf("status backends = %+v", st.Backends)
	}
	if len(st.Backends[0].TopPatterns) == 0 || !st.Backends[0].TopPatterns[0].Pregenerated {
		t.Errorf("top pattern not marked pregenerated: %+v", st.Backends[0].TopPatterns)
	}
	if st.Backends[0].TopPatterns[0].Support != 3 {
		t.Errorf("top pattern support = %d, want 3", st.Backends[0].TopPatterns[0].Support)
	}

	// A second run must not regenerate the same pattern.
	calls := fg.calls.Load()
	m.RunOnce(context.Background())
	if fg.calls.Load() != calls {
		t.Error("second run regenerated an already pre-generated pattern")
	}
}

// TestMinerBusyQueueYields: a busy Idle() means no pre-generation at all,
// and flipping busy mid-run yields between pulses.
func TestMinerBusyQueueYields(t *testing.T) {
	b := testBackend(t)
	var busy atomic.Bool
	var fg *fakeGen
	reg := obs.NewRegistry()
	m := newTestMiner(t, Config{
		Mining:   mining.Options{MinSupport: 2},
		Registry: reg,
		Idle:     func() bool { return !busy.Load() },
		Budget:   8,
	}, func(bk Backend) pulse.Generator {
		fg = &fakeGen{db: bk.DB}
		return fg
	})

	busy.Store(true)
	for i := 0; i < 3; i++ {
		m.Observe(b, swapCircuit())
	}
	m.RunOnce(context.Background())
	if fg != nil && fg.calls.Load() != 0 {
		t.Fatal("pre-generated while the queue was busy")
	}
	if got := reg.Counter("miner.idle_runs").Value(); got != 0 {
		t.Errorf("busy run counted as idle (idle_runs=%d)", got)
	}
	// Corpus folding must proceed regardless of business.
	if got := reg.Gauge("miner.corpus_circuits").Value(); got != 3 {
		t.Errorf("corpus_circuits = %v, want 3 (folding must not depend on idleness)", got)
	}

	// Idle again: pre-generation proceeds, but a watcher flips the queue
	// busy as soon as the first pulse starts, so the run must yield before
	// a second one.
	busy.Store(false)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for fg.calls.Load() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		busy.Store(true)
	}()
	// Add a second frequent pattern so the worklist has ≥ 2 jobs.
	two := func() *circuit.Circuit {
		c := circuit.New(2)
		c.Add("h", 0)
		c.Add("cx", 0, 1)
		c.Add("h", 0)
		c.Add("cx", 0, 1)
		return c
	}
	for i := 0; i < 3; i++ {
		m.Observe(b, two())
	}
	fg.delay = 5 * time.Millisecond // give the watcher time to flip busy
	m.RunOnce(context.Background())
	<-done
	if fg.calls.Load() > 1 {
		// 1 is the expected yield point; 2+ means it ignored the busy flip.
		t.Errorf("generator ran %d times in a window that turned busy after the first", fg.calls.Load())
	}
	if got := reg.Counter("miner.yields").Value(); got == 0 {
		t.Error("miner.yields stayed 0 despite the busy flip mid-run")
	}
}

// TestMinerBudget bounds pulses per idle run.
func TestMinerBudget(t *testing.T) {
	b := testBackend(t)
	var fg *fakeGen
	m := newTestMiner(t, Config{
		Mining: mining.Options{MinSupport: 2},
		Budget: 1,
	}, func(bk Backend) pulse.Generator {
		fg = &fakeGen{db: bk.DB}
		return fg
	})
	// Several distinct frequent patterns.
	mk := func(n int) *circuit.Circuit {
		c := circuit.New(2)
		for i := 0; i < n; i++ {
			c.Add("cx", 0, 1)
			c.Add("h", 0)
		}
		return c
	}
	for i := 0; i < 3; i++ {
		m.Observe(b, mk(2))
		m.Observe(b, mk(3))
	}
	m.RunOnce(context.Background())
	if got := fg.calls.Load(); got != 1 {
		t.Errorf("budget 1 run generated %d pulses", got)
	}
	// Next run picks up where it left off.
	m.RunOnce(context.Background())
	if got := fg.calls.Load(); got != 2 {
		t.Errorf("second budget-1 run brought total to %d, want 2", got)
	}
}

// TestMinerFailedPatternNotRetried: a deterministic generation failure is
// recorded and the pattern is not retried every run.
func TestMinerFailedPatternNotRetried(t *testing.T) {
	b := testBackend(t)
	var fg *fakeGen
	m := newTestMiner(t, Config{Mining: mining.Options{MinSupport: 2}, Budget: 32},
		func(bk Backend) pulse.Generator {
			fg = &fakeGen{db: bk.DB, fail: true}
			return fg
		})
	for i := 0; i < 3; i++ {
		m.Observe(b, swapCircuit())
	}
	m.RunOnce(context.Background())
	calls := fg.calls.Load()
	if calls == 0 {
		t.Fatal("failing generator never called")
	}
	m.RunOnce(context.Background())
	if fg.calls.Load() != calls {
		t.Error("failed pattern retried on the next run")
	}
}

// TestMinerStopCancelsInflight: Stop during a slow pre-generation returns
// promptly because the generator context is cancelled.
func TestMinerStopCancelsInflight(t *testing.T) {
	b := testBackend(t)
	started := make(chan struct{}, 1)
	m := newTestMiner(t, Config{Mining: mining.Options{MinSupport: 2}, Interval: time.Hour},
		func(bk Backend) pulse.Generator {
			return genFunc(func(ctx context.Context, cg *pulse.CustomGate, fid float64) (*pulse.Generated, error) {
				select {
				case started <- struct{}{}:
				default:
				}
				<-ctx.Done() // hang until cancelled
				return nil, ctx.Err()
			})
		})
	for i := 0; i < 3; i++ {
		m.Observe(b, swapCircuit())
	}
	ranOnce := make(chan struct{})
	go func() {
		m.RunOnce(m.ctx)
		close(ranOnce)
	}()
	<-started
	stopDone := make(chan struct{})
	go func() {
		m.Stop()
		close(stopDone)
	}()
	select {
	case <-stopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not cancel the in-flight pre-generation")
	}
	<-ranOnce
	// Cancelled pattern stays eligible: no pregen record.
	st := m.Status()
	if st.Pregenerated != 0 {
		t.Errorf("cancelled run reported %d pregenerated", st.Pregenerated)
	}
}

type genFunc func(ctx context.Context, cg *pulse.CustomGate, fid float64) (*pulse.Generated, error)

func (f genFunc) GenerateCtx(ctx context.Context, cg *pulse.CustomGate, fid float64) (*pulse.Generated, error) {
	return f(ctx, cg, fid)
}

// TestMinerIngestDropsWhenFull: a full ingest queue drops rather than
// blocks, and counts the drop.
func TestMinerIngestDropsWhenFull(t *testing.T) {
	b := testBackend(t)
	reg := obs.NewRegistry()
	m := newTestMiner(t, Config{IngestDepth: 2, Registry: reg},
		func(bk Backend) pulse.Generator { return &fakeGen{db: bk.DB} })
	for i := 0; i < 5; i++ {
		m.Observe(b, swapCircuit()) // never drained: Start not called
	}
	if got := reg.Counter("miner.ingest_dropped").Value(); got != 3 {
		t.Errorf("ingest_dropped = %d, want 3 (depth 2, 5 observations)", got)
	}
}

// TestMinerCorpusBound: folding past CorpusMax evicts the oldest circuits.
func TestMinerCorpusBound(t *testing.T) {
	b := testBackend(t)
	reg := obs.NewRegistry()
	m := newTestMiner(t, Config{CorpusMax: 4, IngestDepth: 64, Registry: reg,
		Idle: func() bool { return false }}, // fold only
		func(bk Backend) pulse.Generator { return &fakeGen{db: bk.DB} })
	for i := 0; i < 10; i++ {
		m.Observe(b, swapCircuit())
	}
	m.RunOnce(context.Background())
	if got := reg.Gauge("miner.corpus_circuits").Value(); got != 4 {
		t.Errorf("corpus_circuits = %v, want CorpusMax 4", got)
	}
}

// TestMinerRejectsInvalidMiningOptions: the silent-clamp fix reaches the
// service construction path too.
func TestMinerRejectsInvalidMiningOptions(t *testing.T) {
	_, err := New(Config{Mining: mining.Options{MinSupport: -2}})
	if err == nil {
		t.Fatal("New accepted negative MinSupport")
	}
}

// TestMinerStatusDisabledFieldsZero: a fresh miner reports empty state
// without panicking.
func TestMinerStatusEmpty(t *testing.T) {
	m := newTestMiner(t, Config{}, func(bk Backend) pulse.Generator { return &fakeGen{db: bk.DB} })
	st := m.Status()
	if !st.Enabled || st.CorpusCircuits != 0 || len(st.Backends) != 0 {
		t.Errorf("empty miner status = %+v", st)
	}
}
