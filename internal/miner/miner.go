// Package miner is the offline APA mining service of §V-C, lifted from a
// per-compile pass to a standing background component: it watches the
// circuits a server compiles, maintains cross-request frequent-subcircuit
// statistics per backend fingerprint (an incremental mining.Table over a
// bounded corpus), and — only while the job queue is idle — pre-generates
// the top-coverage patterns' APA-basis pulses into the shared pulse
// database, marking them Protected so capacity eviction keeps them. With a
// cluster Remote attached, pre-generated pulses are write-through
// published to their rendezvous owner, so one replica's traffic warms the
// fleet.
//
// The economics mirror AccQOC's ahead-of-time pulse compilation, applied
// to program-aware patterns: the optimization cost is paid during idle
// capacity, and later requests whose APA blocks hit a pre-generated
// (exact or permuted) key skip their GRAPE cold start entirely.
package miner

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"paqoc/internal/api"
	"paqoc/internal/circuit"
	"paqoc/internal/device"
	"paqoc/internal/grape"
	"paqoc/internal/mining"
	"paqoc/internal/obs"
	"paqoc/internal/pulse"
)

// Backend bundles what the miner needs to serve one device profile: the
// profile itself, its fingerprint-namespaced pulse database, and the
// optional cross-replica pulse source (nil outside a cluster).
type Backend struct {
	Profile *device.Profile
	DB      *pulse.DB
	Remote  pulse.Remote
}

// Config sizes the mining service. Zero values select the documented
// defaults.
type Config struct {
	// Interval is the cadence of mining runs (fold observed circuits,
	// reconcile pre-generation hits, pre-generate during idle capacity).
	// Default 1m.
	Interval time.Duration
	// Mining bounds the pattern search; MinSupport applies to the
	// cross-request aggregate (a pattern once-per-circuit in three
	// requests has support 3). Invalid values are an error from New.
	Mining mining.Options
	// CorpusMax bounds the per-backend circuit corpus; past it the oldest
	// circuit's contributions are evicted from the pattern table. Default
	// 256.
	CorpusMax int
	// Budget caps pulses pre-generated per idle run, so one run cannot
	// monopolize the machine even when the queue stays idle. Default 4.
	Budget int
	// PregenTimeout is the per-pulse generation deadline. Default 60s.
	PregenTimeout time.Duration
	// FidelityTarget for pre-generated pulses. Default 0.999 (the same
	// target the compile path requests, so keys and entries line up).
	FidelityTarget float64
	// IngestDepth bounds the Observe channel; a full channel drops the
	// observation (and counts miner.ingest_dropped) rather than stalling
	// the compile path. Default 256.
	IngestDepth int
	// Idle reports whether the job queue is idle; pre-generation runs only
	// while it returns true and yields as soon as it stops. Nil means
	// always idle (tests, offline tools).
	Idle func() bool
	// NewGenerator builds the pulse generator for a backend. Nil selects
	// the real GRAPE generator wired like the server's compile path
	// (shared DB, topology-restricted couplings, profile Hamiltonian,
	// cluster write-through).
	NewGenerator func(b Backend) pulse.Generator
	// Registry receives the miner.* metric families (nil-safe).
	Registry *obs.Registry
	// Logger receives structured mining logs (default stderr at info).
	Logger *obs.Logger
}

func (c *Config) fill() {
	if c.Interval <= 0 {
		c.Interval = time.Minute
	}
	if c.CorpusMax <= 0 {
		c.CorpusMax = 256
	}
	if c.Budget <= 0 {
		c.Budget = 4
	}
	if c.PregenTimeout <= 0 {
		c.PregenTimeout = 60 * time.Second
	}
	if c.FidelityTarget <= 0 {
		c.FidelityTarget = 0.999
	}
	if c.IngestDepth <= 0 {
		c.IngestDepth = 256
	}
	if c.NewGenerator == nil {
		c.NewGenerator = defaultGenerator
	}
	if c.Logger == nil {
		c.Logger = obs.NewStderrLogger(obs.LevelInfo)
	}
}

// defaultGenerator mirrors the server compile path's GRAPE wiring, so the
// pulses the miner pre-generates land under exactly the keys compile-time
// APA blocks will look up.
func defaultGenerator(b Backend) pulse.Generator {
	g := grape.NewGenerator(grape.DefaultOptions())
	g.Topo = b.Profile.Topology()
	g.DB = b.DB
	g.System = b.Profile.SystemBuilder()
	g.Remote = b.Remote
	return g
}

// observed is one compile-path observation awaiting folding.
type observed struct {
	b Backend
	c *circuit.Circuit
}

// pregenEntry tracks one pre-generated pattern: the DB entry it produced
// and the last reconciled use count, so the delta since pre-generation is
// attributable to later requests (miner.pregen_hits).
type pregenEntry struct {
	entry *pulse.Entry // nil while a failed attempt cools down
	uses  int64
}

// backendState is the miner's per-backend-fingerprint slice: the bounded
// corpus ring, the incremental pattern table, and the pre-generation
// ledger.
type backendState struct {
	b      Backend
	gen    pulse.Generator
	table  *mining.Table
	nextID int
	ring   []int // live circuit ids, oldest first
	pregen map[string]*pregenEntry
}

// Miner is the background mining service. Create with New, launch with
// Start, feed with Observe from the compile path, stop with Stop.
type Miner struct {
	cfg    Config
	ingest chan observed

	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started atomic.Bool

	mu     sync.Mutex
	states map[string]*backendState // by backend fingerprint
	newGen func(Backend) pulse.Generator
}

// New validates the configuration and builds an idle miner. No goroutines
// run until Start.
func New(cfg Config) (*Miner, error) {
	if err := cfg.Mining.Validate(); err != nil {
		return nil, fmt.Errorf("miner: %w", err)
	}
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Miner{
		cfg:    cfg,
		ingest: make(chan observed, cfg.IngestDepth),
		ctx:    ctx,
		cancel: cancel,
		states: map[string]*backendState{},
		newGen: cfg.NewGenerator,
	}
	return m, nil
}

// SetGeneratorFactory swaps the pulse-generator factory. It must be called
// before Start; tests use it to substitute deterministic (slow, failing,
// instant) generators for GRAPE.
func (m *Miner) SetGeneratorFactory(f func(Backend) pulse.Generator) { m.newGen = f }

// Start launches the periodic mining loop.
func (m *Miner) Start() {
	if !m.started.CompareAndSwap(false, true) {
		return
	}
	m.wg.Add(1)
	go m.loop()
}

// Stop cancels any in-flight pre-generation (the generators are
// ctx-aware) and waits for the mining loop to exit. Safe to call more
// than once, and before Start.
func (m *Miner) Stop() {
	m.cancel()
	m.wg.Wait()
}

func (m *Miner) loop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-tick.C:
			m.RunOnce(m.ctx)
		}
	}
}

// Observe submits one compiled circuit (post-routing, physical form — the
// same form the compile path mines) for corpus ingestion. Non-blocking: a
// full ingest queue drops the observation and counts it, so the compile
// hot path never waits on the miner.
func (m *Miner) Observe(b Backend, c *circuit.Circuit) {
	if b.Profile == nil || b.DB == nil || c == nil || len(c.Gates) == 0 {
		return
	}
	select {
	case m.ingest <- observed{b: b, c: c}:
	default:
		m.counter("miner.ingest_dropped").Inc()
	}
}

// RunOnce executes one mining run: drain the ingest queue into the
// per-backend tables (evicting past the corpus bound), reconcile
// pre-generation hits, and — while the job queue is idle — pre-generate up
// to Budget top-coverage patterns. Exported so tests and offline tools
// can drive the miner deterministically; the Start loop calls it on every
// Interval tick.
func (m *Miner) RunOnce(ctx context.Context) {
	m.drainIngest(ctx)
	m.reconcileHits()
	m.updateGauges()
	m.pregenerate(ctx)
}

func (m *Miner) drainIngest(ctx context.Context) {
	for {
		select {
		case o := <-m.ingest:
			m.fold(ctx, o)
		default:
			return
		}
	}
}

// fold adds one observation to its backend's table, retiring the oldest
// corpus circuit past the bound.
func (m *Miner) fold(ctx context.Context, o observed) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fp := o.b.Profile.Fingerprint()
	st := m.states[fp]
	if st == nil {
		table, err := mining.NewTable(m.cfg.Mining)
		if err != nil {
			// Config.Mining was validated in New; this cannot happen.
			m.cfg.Logger.Error("miner: table", "error", err)
			return
		}
		st = &backendState{
			b:      o.b,
			gen:    m.newGen(o.b),
			table:  table,
			pregen: map[string]*pregenEntry{},
		}
		m.states[fp] = st
		m.cfg.Logger.Info("miner: tracking backend", "backend", o.b.Profile.Name, "fingerprint", fp)
	}
	id := st.nextID
	st.nextID++
	if err := st.table.Fold(ctx, id, o.c); err != nil {
		m.cfg.Logger.Error("miner: fold", "error", err)
		return
	}
	st.ring = append(st.ring, id)
	for len(st.ring) > m.cfg.CorpusMax {
		st.table.Evict(st.ring[0])
		st.ring = st.ring[1:]
	}
}

// reconcileHits folds each pre-generated entry's use-count delta into
// miner.pregen_hits: uses recorded since pre-generation are requests the
// warm entry served (exact, permuted, or dedup hits all count uses).
func (m *Miner) reconcileHits() {
	m.mu.Lock()
	defer m.mu.Unlock()
	hits := m.counter("miner.pregen_hits")
	for _, st := range m.states {
		for _, pe := range st.pregen {
			if pe.entry == nil {
				continue
			}
			if u := pe.entry.Uses(); u > pe.uses {
				hits.Add(u - pe.uses)
				pe.uses = u
			}
		}
	}
}

func (m *Miner) updateGauges() {
	m.mu.Lock()
	defer m.mu.Unlock()
	circuits, patterns := 0, 0
	for _, st := range m.states {
		circuits += st.table.Circuits()
		patterns += len(st.table.Patterns())
	}
	if r := m.cfg.Registry; r != nil {
		r.Gauge("miner.corpus_circuits").Set(float64(circuits))
		r.Gauge("miner.patterns_tracked").Set(float64(patterns))
	}
}

// pregenJob is one pattern scheduled for pre-generation, captured under
// the lock and executed outside it.
type pregenJob struct {
	fp  string
	sig string
	gen pulse.Generator
	db  *pulse.DB
	cg  *pulse.CustomGate
}

// pregenerate runs the low-priority lane: only while the queue is idle,
// at most Budget pulses, re-checking idleness before every pulse and
// yielding (miner.yields) the moment client work appears. Cancellation of
// ctx (server drain) aborts the in-flight optimization via the generator's
// context awareness.
func (m *Miner) pregenerate(ctx context.Context) {
	if ctx.Err() != nil {
		return
	}
	if m.cfg.Idle != nil && !m.cfg.Idle() {
		return // busy: not an idle run at all
	}
	jobs := m.pregenWorklist()
	m.counter("miner.idle_runs").Inc()
	if len(jobs) == 0 {
		return
	}
	for _, job := range jobs {
		if ctx.Err() != nil {
			return
		}
		if m.cfg.Idle != nil && !m.cfg.Idle() {
			m.counter("miner.yields").Inc()
			return
		}
		m.pregenOne(ctx, job)
	}
}

// pregenWorklist snapshots up to Budget not-yet-pre-generated patterns,
// best cross-request coverage first, across backends in deterministic
// fingerprint order.
func (m *Miner) pregenWorklist() []pregenJob {
	m.mu.Lock()
	defer m.mu.Unlock()
	fps := make([]string, 0, len(m.states))
	for fp := range m.states {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	var jobs []pregenJob
	for _, fp := range fps {
		st := m.states[fp]
		for _, p := range st.table.Patterns() {
			if len(jobs) >= m.cfg.Budget {
				return jobs
			}
			if _, done := st.pregen[p.Signature]; done {
				continue
			}
			jobs = append(jobs, pregenJob{
				fp:  fp,
				sig: p.Signature,
				gen: st.gen,
				db:  st.b.DB,
				cg:  pulse.NewCustomGate(p.Rep),
			})
		}
	}
	return jobs
}

// pregenOne pays one pattern's optimization cost ahead of any request:
// generate (DB-deduplicated, remote-fetched when a peer already has it,
// write-through published otherwise), then protect the entry so ranked
// eviction keeps the offline investment.
func (m *Miner) pregenOne(ctx context.Context, job pregenJob) {
	reg := m.cfg.Registry
	pctx, cancel := context.WithTimeout(ctx, m.cfg.PregenTimeout)
	defer cancel()
	if reg != nil {
		pctx = (&obs.Obs{Metrics: reg}).Attach(pctx)
	}
	start := time.Now()
	_, err := job.gen.GenerateCtx(pctx, job.cg, m.cfg.FidelityTarget)
	elapsed := time.Since(start)
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			// Drain: leave the pattern eligible for the next run.
			return
		}
		// A deterministic failure (or per-job timeout) is recorded so the
		// pattern is not retried every interval.
		m.cfg.Logger.Warn("miner: pregeneration failed",
			"pattern", job.sig, "gate", job.cg.Describe(), "error", err)
		m.recordPregen(job, nil)
		return
	}
	u, uerr := job.cg.Unitary()
	if uerr != nil {
		m.cfg.Logger.Warn("miner: pregenerated gate has no unitary", "error", uerr)
		return
	}
	job.db.Protect(u)
	e, _ := job.db.Peek(u)
	m.recordPregen(job, e)
	m.counter("miner.pregenerated").Inc()
	if reg != nil {
		reg.Histogram("miner.pregen_ms", obs.LatencyBuckets).
			Observe(float64(elapsed) / float64(time.Millisecond))
	}
	m.cfg.Logger.Info("miner: pregenerated APA pulse",
		"gate", job.cg.Describe(), "ms", elapsed.Milliseconds())
}

func (m *Miner) recordPregen(job pregenJob, e *pulse.Entry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.states[job.fp]
	if st == nil {
		return
	}
	pe := &pregenEntry{entry: e}
	if e != nil {
		pe.uses = e.Uses()
	}
	st.pregen[job.sig] = pe
}

// Status reports the miner's live state for GET /v1/mining/status,
// reconciling pregen hits first so the counters are fresh.
func (m *Miner) Status() api.MiningStatus {
	m.reconcileHits()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := api.MiningStatus{
		Enabled:    true,
		IntervalMs: m.cfg.Interval.Milliseconds(),
		MinSupport: m.effectiveMinSupport(),
		CorpusMax:  m.cfg.CorpusMax,
		Budget:     m.cfg.Budget,
	}
	if r := m.cfg.Registry; r != nil {
		out.Pregenerated = r.Counter("miner.pregenerated").Value()
		out.PregenHits = r.Counter("miner.pregen_hits").Value()
		out.IdleRuns = r.Counter("miner.idle_runs").Value()
		out.Yields = r.Counter("miner.yields").Value()
	}
	fps := make([]string, 0, len(m.states))
	for fp := range m.states {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	const topPatterns = 10
	for _, fp := range fps {
		st := m.states[fp]
		pats := st.table.Patterns()
		pregenCount := 0
		for _, pe := range st.pregen {
			if pe.entry != nil {
				pregenCount++
			}
		}
		bs := api.MiningBackendStatus{
			Backend:         st.b.Profile.Name,
			Fingerprint:     fp,
			CorpusCircuits:  st.table.Circuits(),
			PatternsTracked: len(pats),
			Pregenerated:    pregenCount,
		}
		for i, p := range pats {
			if i >= topPatterns {
				break
			}
			pe := st.pregen[p.Signature]
			bs.TopPatterns = append(bs.TopPatterns, api.MiningPattern{
				Signature:    p.Signature,
				GateCount:    p.GateCount,
				QubitCount:   p.QubitCount,
				Support:      p.Support,
				Circuits:     p.Circuits,
				Coverage:     p.Coverage(),
				Pregenerated: pe != nil && pe.entry != nil,
			})
		}
		out.CorpusCircuits += bs.CorpusCircuits
		out.PatternsTracked += bs.PatternsTracked
		out.Backends = append(out.Backends, bs)
	}
	return out
}

// effectiveMinSupport mirrors mining.Options.fill's default without
// mutating the stored options.
func (m *Miner) effectiveMinSupport() int {
	if m.cfg.Mining.MinSupport > 0 {
		return m.cfg.Mining.MinSupport
	}
	return mining.DefaultOptions().MinSupport
}

// counter is a nil-safe registry counter.
func (m *Miner) counter(name string) *obs.Counter {
	var r *obs.Registry
	if m.cfg.Registry != nil {
		r = m.cfg.Registry
	}
	return r.Counter(name)
}
