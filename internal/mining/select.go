package mining

import "paqoc/internal/circuit"

// Selection is one APA-basis gate choice: a pattern plus the disjoint,
// convex embeddings committed for replacement.
type Selection struct {
	Pattern Pattern
	Chosen  [][]int
}

// CoveredGates counts gates covered by this selection.
func (s *Selection) CoveredGates() int { return len(s.Chosen) * s.Pattern.GateCount }

// Select greedily chooses up to m APA-basis patterns by marginal coverage
// (§III-A: "we consider which frequent subcircuits to use based on its
// coverage of the circuit"). m < 0 removes the limit (the paper's
// paqoc(M=inf)); m == 0 selects nothing (paqoc(M=0)). Only convex
// embeddings — groupable as a single unit without outside dependences
// threading through — are committed.
func Select(c *circuit.Circuit, patterns []Pattern, m int, minSupport int) []Selection {
	if m == 0 {
		return nil
	}
	if minSupport <= 0 {
		minSupport = 2
	}
	dag := circuit.BuildDAG(c)
	covered := make([]bool, len(c.Gates))
	var out []Selection

	remaining := append([]Pattern(nil), patterns...)
	for m < 0 || len(out) < m {
		bestIdx := -1
		var bestChosen [][]int
		bestGain := 0
		for pi, p := range remaining {
			chosen := commitEmbeddings(c, dag, p.Embeddings, covered)
			if len(chosen) < minSupport {
				continue
			}
			gain := len(chosen) * p.GateCount
			if gain > bestGain || (gain == bestGain && bestIdx >= 0 && p.Signature < remaining[bestIdx].Signature) {
				bestIdx, bestChosen, bestGain = pi, chosen, gain
			}
		}
		if bestIdx < 0 {
			break
		}
		for _, emb := range bestChosen {
			for _, gi := range emb {
				covered[gi] = true
			}
		}
		out = append(out, Selection{Pattern: remaining[bestIdx], Chosen: bestChosen})
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return out
}

// TunedM returns the paper's paqoc(M=tuned) knob: the smallest M whose
// selections make APA-covered gates the majority of the circuit, or the
// maximum achievable M when even full selection cannot reach majority.
func TunedM(c *circuit.Circuit, patterns []Pattern, minSupport int) int {
	full := Select(c, patterns, -1, minSupport)
	covered := 0
	for mIdx, sel := range full {
		covered += sel.CoveredGates()
		if 2*covered > len(c.Gates) {
			return mIdx + 1
		}
	}
	return len(full)
}

// commitEmbeddings greedily picks pairwise-disjoint, convex embeddings
// avoiding already-covered gates.
func commitEmbeddings(c *circuit.Circuit, dag *circuit.DAG, embeds [][]int, covered []bool) [][]int {
	used := map[int]bool{}
	var out [][]int
	for _, emb := range embeds {
		ok := true
		for _, gi := range emb {
			if covered[gi] || used[gi] {
				ok = false
				break
			}
		}
		if !ok || !Convex(dag, emb) {
			continue
		}
		for _, gi := range emb {
			used[gi] = true
		}
		out = append(out, emb)
	}
	return out
}

// Convex reports whether the gate set can be executed as one unit: no
// dependence path leaves the set and re-enters it. emb must be sorted.
func Convex(dag *circuit.DAG, emb []int) bool {
	if len(emb) == 0 {
		return true
	}
	inSet := map[int]bool{}
	for _, gi := range emb {
		inSet[gi] = true
	}
	lo, hi := emb[0], emb[len(emb)-1]
	// Forward-mark outside gates in (lo, hi) reachable from the set; if any
	// marked outside gate feeds back into the set, the set is not convex.
	tainted := map[int]bool{}
	for v := lo; v <= hi; v++ {
		src := inSet[v] || tainted[v]
		if !src {
			continue
		}
		for _, s := range dag.Succs[v] {
			if s > hi {
				continue
			}
			if inSet[v] && !inSet[s] {
				tainted[s] = true
			} else if tainted[v] {
				if inSet[s] {
					return false
				}
				tainted[s] = true
			}
		}
	}
	return true
}
