package mining

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"paqoc/internal/circuit"
)

// buildRandomCircuit emits a pattern-rich random circuit: a mix of
// single-qubit gates, CX, and injected SWAP/CPHASE idioms (5-25
// operations) so cross-circuit frequent patterns exist.
func buildRandomCircuit(rng *rand.Rand) *circuit.Circuit {
	nq := 3 + rng.Intn(4)
	c := circuit.New(nq)
	nops := 5 + rng.Intn(21)
	for i := 0; i < nops; i++ {
		a := rng.Intn(nq)
		b := (a + 1 + rng.Intn(nq-1)) % nq
		switch rng.Intn(6) {
		case 0:
			c.Add("h", a)
		case 1:
			c.Add("t", a)
		case 2:
			c.Add("cx", a, b)
		case 3: // SWAP idiom
			c.Add("cx", a, b)
			c.Add("cx", b, a)
			c.Add("cx", a, b)
		case 4: // CPHASE idiom with a shared angle
			c.Add("cx", a, b)
			c.AddParam("rz", []float64{0.25}, b)
			c.Add("cx", a, b)
		case 5:
			c.Add("h", a)
			c.Add("cx", a, b)
		}
	}
	return c
}

func samePatterns(t *testing.T, got, want []CorpusPattern, step string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d patterns incrementally, %d batch", step, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Signature != w.Signature || g.Support != w.Support || g.Circuits != w.Circuits ||
			g.GateCount != w.GateCount || g.QubitCount != w.QubitCount {
			t.Fatalf("%s: pattern %d differs:\n  incr  %+v\n  batch %+v", step, i, g, w)
		}
		if len(g.Rep) != len(w.Rep) {
			t.Fatalf("%s: pattern %d rep lengths differ (%d vs %d)", step, i, len(g.Rep), len(w.Rep))
		}
		for k := range g.Rep {
			if g.Rep[k].String() != w.Rep[k].String() {
				t.Fatalf("%s: pattern %d rep gate %d differs: %s vs %s",
					step, i, k, g.Rep[k].String(), w.Rep[k].String())
			}
		}
	}
}

// TestTableMatchesBatch is the batch ≡ incremental pin: folding a random
// circuit stream — including corpus-cap evictions of the oldest circuits —
// produces exactly the pattern table MineCorpus computes from scratch over
// the live set, at every step.
func TestTableMatchesBatch(t *testing.T) {
	ctx := context.Background()
	opts := DefaultOptions()
	opts.MinSupport = 3 // cross-circuit: no single circuit need reach it
	const corpusCap = 6

	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tbl, err := NewTable(opts)
		if err != nil {
			t.Fatal(err)
		}
		live := map[int]*circuit.Circuit{} // id → circuit
		var order []int                    // fold order, oldest first
		for step := 0; step < 40; step++ {
			c := buildRandomCircuit(rng)
			id := step
			if err := tbl.Fold(ctx, id, c); err != nil {
				t.Fatal(err)
			}
			live[id] = c
			order = append(order, id)
			for len(order) > corpusCap { // corpus bound: evict oldest
				old := order[0]
				order = order[1:]
				tbl.Evict(old)
				delete(live, old)
			}

			// Batch reference over the live set in id order.
			var corpus []*circuit.Circuit
			for _, lid := range order {
				corpus = append(corpus, live[lid])
			}
			want, err := MineCorpus(ctx, corpus, opts)
			if err != nil {
				t.Fatal(err)
			}
			// MineCorpus ids are slice indices; live ids differ, but the
			// lowest-id rule picks the same (oldest) circuit either way, so
			// reps must agree too.
			samePatterns(t, tbl.Patterns(), want, fmt.Sprintf("seed %d step %d", seed, step))
			if tbl.Circuits() != len(corpus) {
				t.Fatalf("Circuits() = %d, want %d", tbl.Circuits(), len(corpus))
			}
		}
	}
}

// TestTableSingleCircuitMatchesMineCtx: over a one-circuit corpus the
// cross-request table degenerates to per-circuit mining — same signatures,
// supports, and coverage ranking as MineCtx.
func TestTableSingleCircuitMatchesMineCtx(t *testing.T) {
	ctx := context.Background()
	c := swapChain(4)
	opts := DefaultOptions()

	want, err := MineCtx(ctx, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := NewTable(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Fold(ctx, 0, c); err != nil {
		t.Fatal(err)
	}
	got := tbl.Patterns()
	if len(got) != len(want) {
		t.Fatalf("table has %d patterns, MineCtx %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Signature != want[i].Signature || got[i].Support != want[i].Support ||
			got[i].Coverage() != want[i].Coverage() {
			t.Fatalf("pattern %d: table (%s, %d) vs MineCtx (%s, %d)",
				i, got[i].Signature, got[i].Support, want[i].Signature, want[i].Support)
		}
	}
}

// TestTableCrossRequestSupport: a pattern occurring once per circuit never
// reaches MinSupport=3 within any single request but must surface once
// three requests carry it (support 3 = the ISSUE's aggregate rule).
func TestTableCrossRequestSupport(t *testing.T) {
	ctx := context.Background()
	opts := DefaultOptions()
	opts.MinSupport = 3
	tbl, err := NewTable(opts)
	if err != nil {
		t.Fatal(err)
	}
	one := func() *circuit.Circuit {
		c := circuit.New(2)
		c.Add("cx", 0, 1)
		c.Add("cx", 1, 0)
		c.Add("cx", 0, 1)
		return c
	}
	for i := 0; i < 2; i++ {
		if err := tbl.Fold(ctx, i, one()); err != nil {
			t.Fatal(err)
		}
	}
	if pats := tbl.Patterns(); len(pats) != 0 {
		t.Fatalf("2 occurrences must not reach MinSupport 3, got %d patterns", len(pats))
	}
	if err := tbl.Fold(ctx, 2, one()); err != nil {
		t.Fatal(err)
	}
	pats := tbl.Patterns()
	if len(pats) == 0 {
		t.Fatal("3 one-per-circuit occurrences must reach MinSupport 3")
	}
	if pats[0].Support != 3 || pats[0].Circuits != 3 {
		t.Fatalf("top pattern support=%d circuits=%d, want 3/3", pats[0].Support, pats[0].Circuits)
	}
}

func TestTableFoldDuplicateID(t *testing.T) {
	tbl, err := NewTable(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Fold(context.Background(), 7, swapChain(2)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Fold(context.Background(), 7, swapChain(2)); err == nil {
		t.Error("folding the same id twice must error")
	}
	tbl.Evict(99) // unknown id: no-op, must not panic
}

// TestOptionsValidate pins the fix for the silent-clamp bug: negative (and
// unusable) option values now error from every public entry point instead
// of being rewritten to defaults.
func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{MinSupport: -1},
		{MaxGates: -3},
		{MaxGates: 1},
		{MaxQubits: -2},
		{EnumLimit: -10},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate(%+v) = nil, want error", i, o)
		}
		if _, err := MineCtx(context.Background(), swapChain(2), o); err == nil {
			t.Errorf("case %d: MineCtx accepted invalid options", i)
		}
		if _, err := MineCorpus(context.Background(), nil, o); err == nil {
			t.Errorf("case %d: MineCorpus accepted invalid options", i)
		}
		if _, err := NewTable(o); err == nil {
			t.Errorf("case %d: NewTable accepted invalid options", i)
		}
	}
	// Zero still selects the defaults.
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options must stay valid (defaults): %v", err)
	}
}

// BenchmarkIncrementalMine measures the steady-state cost of folding one
// circuit into a warm table at the corpus cap (fold + evict), the per-
// request cost the miner service pays — contrast BenchmarkMineSwapChain's
// full batch re-mine.
func BenchmarkIncrementalMine(b *testing.B) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	const corpusCap = 64
	circuits := make([]*circuit.Circuit, corpusCap+1)
	for i := range circuits {
		circuits[i] = buildRandomCircuit(rng)
	}
	tbl, err := NewTable(DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < corpusCap; i++ {
		if err := tbl.Fold(ctx, i, circuits[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := corpusCap + i
		if err := tbl.Fold(ctx, id, circuits[id%len(circuits)]); err != nil {
			b.Fatal(err)
		}
		tbl.Evict(id - corpusCap)
		if i%100 == 0 {
			_ = tbl.Patterns()
		}
	}
}
