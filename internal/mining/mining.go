// Package mining implements the frequent-subcircuits miner of §III-A: it
// views the circuit as a labeled directed graph (nodes: gates labeled with
// operation + angle, symbolic for parameterized circuits; edges: shared
// qubits labeled with the operand roles on both ends, so control/target
// distinctions disambiguate look-alike patterns, Fig. 5), enumerates
// connected subcircuits up to a size cap, canonicalizes them, and counts
// recurrences. Selected patterns become APA-basis gates.
package mining

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"paqoc/internal/circuit"
	"paqoc/internal/obs"
)

// Options bounds the search.
type Options struct {
	MaxGates   int // pattern size cap (default 6)
	MaxQubits  int // the paper's maxN (default 3)
	MinSupport int // minimum disjoint occurrences (default 2)
	EnumLimit  int // safety cap on enumerated subcircuits (default 300000)
}

// DefaultOptions mirrors the paper's evaluation (maxN = 3).
func DefaultOptions() Options {
	return Options{MaxGates: 6, MaxQubits: 3, MinSupport: 2, EnumLimit: 300000}
}

// Validate rejects option values that fill used to clamp silently. Zero
// still means "use the default" for every field; anything negative — and a
// MaxGates of 1, which cannot hold a pattern (patterns have at least two
// gates) — is a caller error that the public entry points (MineCtx,
// MineCorpus, NewTable) now report instead of quietly rewriting.
func (o Options) Validate() error {
	switch {
	case o.MaxGates < 0:
		return fmt.Errorf("mining: MaxGates %d is negative (0 selects the default)", o.MaxGates)
	case o.MaxGates == 1:
		return fmt.Errorf("mining: MaxGates 1 cannot hold a pattern: patterns have at least 2 gates (0 selects the default)")
	case o.MaxQubits < 0:
		return fmt.Errorf("mining: MaxQubits %d is negative (0 selects the default)", o.MaxQubits)
	case o.MinSupport < 0:
		return fmt.Errorf("mining: MinSupport %d is negative (0 selects the default)", o.MinSupport)
	case o.EnumLimit < 0:
		return fmt.Errorf("mining: EnumLimit %d is negative (0 selects the default)", o.EnumLimit)
	}
	return nil
}

func (o *Options) fill() {
	if o.MaxGates == 0 {
		o.MaxGates = 6
	}
	if o.MaxQubits == 0 {
		o.MaxQubits = 3
	}
	if o.MinSupport == 0 {
		o.MinSupport = 2
	}
	if o.EnumLimit == 0 {
		o.EnumLimit = 300000
	}
}

// Pattern is one recurring subcircuit.
type Pattern struct {
	Signature  string
	GateCount  int
	QubitCount int
	// Embeddings are the gate-index sets realizing the pattern, sorted
	// ascending within each set; sets may overlap each other.
	Embeddings [][]int
	// Support is the size of a maximal greedy disjoint sub-family.
	Support int
}

// Coverage is the number of circuit gates covered by disjoint embeddings.
func (p *Pattern) Coverage() int { return p.Support * p.GateCount }

// MineCtx enumerates frequent subcircuits of the circuit, returning
// patterns with at least MinSupport disjoint occurrences and at least two
// gates, sorted by coverage (descending), ties by signature for
// determinism. Invalid options (Options.Validate) are an error.
// Observability: a "mining.enumerate" span around the
// connected-subcircuit walk and counters for subcircuits enumerated,
// extensions pruned by the qubit cap, pattern count, and whether the
// enumeration budget overflowed.
func MineCtx(ctx context.Context, c *circuit.Circuit, opts Options) ([]Pattern, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts.fill()
	reg := obs.MetricsFrom(ctx)
	bySig := enumerateBySig(ctx, c, opts)

	var out []Pattern
	for sig, embeds := range bySig {
		if len(embeds) < opts.MinSupport {
			continue
		}
		sortEmbeddings(embeds)
		disjoint := greedyDisjoint(embeds)
		if len(disjoint) < opts.MinSupport {
			continue
		}
		qs := map[int]bool{}
		for _, gi := range embeds[0] {
			for _, q := range c.Gates[gi].Qubits {
				qs[q] = true
			}
		}
		out = append(out, Pattern{
			Signature:  sig,
			GateCount:  len(embeds[0]),
			QubitCount: len(qs),
			Embeddings: embeds,
			Support:    len(disjoint),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coverage() != out[j].Coverage() {
			return out[i].Coverage() > out[j].Coverage()
		}
		return out[i].Signature < out[j].Signature
	})
	reg.Counter("mining.patterns").Add(int64(len(out)))
	return out, nil
}

// enumerateBySig runs the connected-subcircuit walk on one circuit and
// groups embeddings by canonical signature — the per-circuit primitive
// shared by MineCtx, MineCorpus, and the incremental Table, so all three
// agree on signatures by construction. opts must already be validated and
// filled.
func enumerateBySig(ctx context.Context, c *circuit.Circuit, opts Options) map[string][][]int {
	reg := obs.MetricsFrom(ctx)
	enum := newEnumerator(c, opts)
	enum.enumerated = reg.Counter("mining.subcircuits_enumerated")
	enum.pruned = reg.Counter("mining.pruned_qubit_cap")

	_, span := obs.StartSpan(ctx, "mining.enumerate")
	bySig := make(map[string][][]int)
	enum.run(func(set []int) {
		sig := enum.signature(set)
		bySig[sig] = append(bySig[sig], append([]int(nil), set...))
	})
	span.SetAttr("signatures", len(bySig))
	span.SetAttr("overflow", enum.overflow)
	span.End()
	if enum.overflow {
		reg.Counter("mining.enum_overflows").Inc()
	}
	return bySig
}

// enumerator walks connected gate sets.
type enumerator struct {
	c        *circuit.Circuit
	opts     Options
	adj      [][]int // undirected wire adjacency (immediate neighbours)
	budget   int
	overflow bool

	enumerated *obs.Counter // connected sets emitted (nil-safe)
	pruned     *obs.Counter // extensions rejected by the qubit cap
}

func newEnumerator(c *circuit.Circuit, opts Options) *enumerator {
	dag := circuit.BuildDAG(c)
	adj := make([][]int, len(c.Gates))
	for i := range adj {
		adj[i] = append(append([]int(nil), dag.Preds[i]...), dag.Succs[i]...)
		sort.Ints(adj[i])
	}
	return &enumerator{c: c, opts: opts, adj: adj, budget: opts.EnumLimit}
}

// run invokes emit for every connected gate set with 2..MaxGates gates and
// at most MaxQubits qubits, each set exactly once (standard connected-
// subgraph enumeration anchored at the minimum element).
func (e *enumerator) run(emit func([]int)) {
	n := len(e.c.Gates)
	for s := 0; s < n && !e.overflow; s++ {
		var cand []int
		for _, v := range e.adj[s] {
			if v > s {
				cand = append(cand, v)
			}
		}
		e.grow([]int{s}, cand, s, emit)
	}
}

func (e *enumerator) grow(sub, cand []int, anchor int, emit func([]int)) {
	if e.overflow {
		return
	}
	if len(sub) >= 2 {
		e.budget--
		if e.budget <= 0 {
			e.overflow = true
			return
		}
		sorted := append([]int(nil), sub...)
		sort.Ints(sorted)
		e.enumerated.Inc()
		emit(sorted)
	}
	if len(sub) >= e.opts.MaxGates {
		return
	}
	inSub := make(map[int]bool, len(sub))
	for _, v := range sub {
		inSub[v] = true
	}
	for i, v := range cand {
		if e.qubitsWith(sub, v) > e.opts.MaxQubits {
			e.pruned.Inc()
			continue
		}
		// New candidate list: remaining candidates plus v's unseen
		// neighbours above the anchor.
		next := append([]int(nil), cand[i+1:]...)
		seen := make(map[int]bool, len(next))
		for _, x := range next {
			seen[x] = true
		}
		for _, x := range cand[:i+1] {
			seen[x] = true
		}
		for _, nb := range e.adj[v] {
			if nb > anchor && !inSub[nb] && !seen[nb] {
				next = append(next, nb)
				seen[nb] = true
			}
		}
		child := make([]int, len(sub)+1)
		copy(child, sub)
		child[len(sub)] = v
		e.grow(child, next, anchor, emit)
	}
}

func (e *enumerator) qubitsWith(sub []int, extra int) int {
	qs := map[int]bool{}
	for _, gi := range sub {
		for _, q := range e.c.Gates[gi].Qubits {
			qs[q] = true
		}
	}
	for _, q := range e.c.Gates[extra].Qubits {
		qs[q] = true
	}
	return len(qs)
}

// signature canonicalizes a gate set: a deterministic topological order of
// the induced wire structure with local qubit renaming by first
// appearance. Each entry records the gate label and its operand wires, so
// control/target roles (the paper's edge labels) are captured exactly.
func (e *enumerator) signature(set []int) string {
	// Induced per-qubit gate order.
	inSet := make(map[int]bool, len(set))
	for _, gi := range set {
		inSet[gi] = true
	}
	perQubit := map[int][]int{}
	for _, gi := range set { // set sorted ascending = program order
		for _, q := range e.c.Gates[gi].Qubits {
			perQubit[q] = append(perQubit[q], gi)
		}
	}
	// Induced dependence counts.
	preds := make(map[int]int, len(set))
	succs := make(map[int][]int, len(set))
	for _, chain := range perQubit {
		for k := 0; k+1 < len(chain); k++ {
			u, v := chain[k], chain[k+1]
			preds[v]++
			succs[u] = append(succs[u], v)
		}
	}

	ready := make([]int, 0, len(set))
	for _, gi := range set {
		if preds[gi] == 0 {
			ready = append(ready, gi)
		}
	}
	localQ := map[int]int{}
	nextQ := 0
	var parts []string
	key := func(gi int) string {
		g := e.c.Gates[gi]
		ids := make([]string, len(g.Qubits))
		for i, q := range g.Qubits {
			if id, ok := localQ[q]; ok {
				ids[i] = fmt.Sprint(id)
			} else {
				ids[i] = "?" // not yet named: compares equal across embeddings
			}
		}
		return g.Label() + ":" + strings.Join(ids, ",")
	}
	for len(ready) > 0 {
		// Deterministic choice: minimal canonical key, ties by index.
		best := 0
		bestKey := key(ready[0])
		for i := 1; i < len(ready); i++ {
			if k := key(ready[i]); k < bestKey || (k == bestKey && ready[i] < ready[best]) {
				best, bestKey = i, k
			}
		}
		gi := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		g := e.c.Gates[gi]
		ids := make([]string, len(g.Qubits))
		for i, q := range g.Qubits {
			if _, ok := localQ[q]; !ok {
				localQ[q] = nextQ
				nextQ++
			}
			ids[i] = fmt.Sprint(localQ[q])
		}
		parts = append(parts, g.Label()+":"+strings.Join(ids, ","))
		for _, s := range succs[gi] {
			preds[s]--
			if preds[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return strings.Join(parts, "|")
}

func sortEmbeddings(embeds [][]int) {
	sort.Slice(embeds, func(i, j int) bool {
		a, b := embeds[i], embeds[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// greedyDisjoint picks a maximal prefix-greedy family of pairwise-disjoint
// embeddings.
func greedyDisjoint(embeds [][]int) [][]int {
	used := map[int]bool{}
	var out [][]int
	for _, e := range embeds {
		ok := true
		for _, gi := range e {
			if used[gi] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, gi := range e {
			used[gi] = true
		}
		out = append(out, e)
	}
	return out
}
