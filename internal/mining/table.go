package mining

import (
	"context"
	"fmt"
	"sort"

	"paqoc/internal/circuit"
)

// CorpusPattern is one recurring subcircuit aggregated across a corpus of
// circuits: the cross-request view the offline miner (internal/miner)
// ranks for pre-generation. Support sums each circuit's greedy-disjoint
// occurrence count, so a pattern appearing once in each of three requests
// has Support 3 — cross-request frequency counts even when no single
// circuit would reach MinSupport on its own.
type CorpusPattern struct {
	Signature  string
	GateCount  int
	QubitCount int
	// Support is the total number of disjoint occurrences across the
	// corpus (the sum of per-circuit greedy-disjoint counts).
	Support int
	// Circuits is how many distinct corpus circuits contain the pattern.
	Circuits int
	// Rep is a representative realization on local wires 0..QubitCount-1
	// (the first sorted embedding of the lowest-id live circuit containing
	// the pattern), suitable for pulse.NewCustomGate. Every embedding of
	// the signature realizes the same unitary up to a local-wire
	// permutation, which the pulse DB's permuted-key lookup absorbs.
	Rep []circuit.Gate
}

// Coverage is the number of corpus gates covered by disjoint embeddings —
// the cross-request ranking key.
func (p *CorpusPattern) Coverage() int { return p.Support * p.GateCount }

// sigStat is one circuit's contribution to a signature: the per-circuit
// facts Fold records so Evict can subtract them exactly.
type sigStat struct {
	gateCount  int
	qubitCount int
	support    int // greedy-disjoint occurrences within this circuit (>= 1)
	rep        []circuit.Gate
}

// mineStats enumerates one circuit and reduces it to per-signature stats
// with no MinSupport filtering: every signature keeps its disjoint count
// (>= 1), because a pattern rare in one circuit may be frequent across the
// corpus. opts must already be validated and filled.
func mineStats(ctx context.Context, c *circuit.Circuit, opts Options) map[string]sigStat {
	bySig := enumerateBySig(ctx, c, opts)
	out := make(map[string]sigStat, len(bySig))
	for sig, embeds := range bySig {
		sortEmbeddings(embeds)
		disjoint := greedyDisjoint(embeds)
		out[sig] = sigStat{
			gateCount:  len(embeds[0]),
			qubitCount: countQubits(c, embeds[0]),
			support:    len(disjoint),
			rep:        localGates(c, embeds[0]),
		}
	}
	return out
}

func countQubits(c *circuit.Circuit, embed []int) int {
	qs := map[int]bool{}
	for _, gi := range embed {
		for _, q := range c.Gates[gi].Qubits {
			qs[q] = true
		}
	}
	return len(qs)
}

// localGates extracts an embedding's gates re-indexed onto local wires
// 0..k-1 in sorted-physical-qubit order — the same renumbering
// pulse.NewCustomGate applies, so a CustomGate built from the result keys
// the pulse DB identically to an APA block built from the embedding.
func localGates(c *circuit.Circuit, embed []int) []circuit.Gate {
	qset := map[int]bool{}
	for _, gi := range embed {
		for _, q := range c.Gates[gi].Qubits {
			qset[q] = true
		}
	}
	qs := make([]int, 0, len(qset))
	for q := range qset {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	idx := make(map[int]int, len(qs))
	for i, q := range qs {
		idx[q] = i
	}
	out := make([]circuit.Gate, len(embed))
	for i, gi := range embed { // embed is sorted ascending = program order
		g := c.Gates[gi].Clone()
		for j, q := range g.Qubits {
			g.Qubits[j] = idx[q]
		}
		out[i] = g
	}
	return out
}

// Table maintains cross-circuit frequent-subcircuit statistics
// incrementally: Fold adds one circuit's per-signature contributions,
// Evict subtracts them again when the corpus bound retires the circuit,
// and Patterns reduces the live aggregate. Folding a stream of circuits
// produces exactly the table batch MineCorpus computes over the same live
// set (pinned by TestTableMatchesBatch) — the add/subtract bookkeeping is
// lossless because every per-circuit contribution is retained.
//
// A Table is not safe for concurrent use; the owning service serializes
// access (internal/miner folds from a single goroutine).
type Table struct {
	opts Options
	// perCircuit retains each live circuit's full contribution, keyed by
	// the caller-assigned circuit id.
	perCircuit map[int]map[string]sigStat
	// agg is the running cross-circuit sum per signature.
	agg map[string]*aggStat
}

type aggStat struct {
	gateCount  int
	qubitCount int
	support    int
	circuits   int
}

// NewTable builds an empty incremental pattern table. Invalid options are
// an error (Options.Validate); zero fields select the defaults.
func NewTable(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts.fill()
	return &Table{
		opts:       opts,
		perCircuit: map[int]map[string]sigStat{},
		agg:        map[string]*aggStat{},
	}, nil
}

// Circuits returns the number of live (folded, not evicted) circuits.
func (t *Table) Circuits() int { return len(t.perCircuit) }

// Fold mines one circuit and adds its contributions to the table. id is
// the caller's handle for a later Evict; folding an id twice is an error
// (evict it first).
func (t *Table) Fold(ctx context.Context, id int, c *circuit.Circuit) error {
	if _, ok := t.perCircuit[id]; ok {
		return fmt.Errorf("mining: circuit %d already folded", id)
	}
	stats := mineStats(ctx, c, t.opts)
	t.perCircuit[id] = stats
	for sig, st := range stats {
		a := t.agg[sig]
		if a == nil {
			a = &aggStat{gateCount: st.gateCount, qubitCount: st.qubitCount}
			t.agg[sig] = a
		}
		a.support += st.support
		a.circuits++
	}
	return nil
}

// Evict removes a previously folded circuit's contributions. Unknown ids
// are a no-op, so callers can evict unconditionally.
func (t *Table) Evict(id int) {
	stats, ok := t.perCircuit[id]
	if !ok {
		return
	}
	delete(t.perCircuit, id)
	for sig, st := range stats {
		a := t.agg[sig]
		a.support -= st.support
		a.circuits--
		if a.circuits == 0 {
			delete(t.agg, sig)
		}
	}
}

// Patterns reduces the live aggregate: signatures whose total cross-
// circuit Support reaches MinSupport, sorted by Coverage descending with
// the signature as the deterministic tie-break. Each pattern's Rep comes
// from the lowest-id live circuit containing it, so the choice is
// independent of fold/evict order.
func (t *Table) Patterns() []CorpusPattern {
	// Lowest live id per signature, for deterministic representatives.
	minID := make(map[string]int, len(t.agg))
	for id, stats := range t.perCircuit {
		for sig := range stats {
			if cur, ok := minID[sig]; !ok || id < cur {
				minID[sig] = id
			}
		}
	}
	out := make([]CorpusPattern, 0, len(t.agg))
	for sig, a := range t.agg {
		if a.support < t.opts.MinSupport {
			continue
		}
		out = append(out, CorpusPattern{
			Signature:  sig,
			GateCount:  a.gateCount,
			QubitCount: a.qubitCount,
			Support:    a.support,
			Circuits:   a.circuits,
			Rep:        t.perCircuit[minID[sig]][sig].rep,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coverage() != out[j].Coverage() {
			return out[i].Coverage() > out[j].Coverage()
		}
		return out[i].Signature < out[j].Signature
	})
	return out
}

// MineCorpus batch-mines a corpus: every circuit is enumerated from
// scratch and the per-signature stats are summed in one pass. It is the
// reference the incremental Table is pinned against — Fold/Evict sequences
// ending in the same live set must reproduce this output exactly. Circuit
// ids are the slice indices (for Rep determinism).
func MineCorpus(ctx context.Context, circuits []*circuit.Circuit, opts Options) ([]CorpusPattern, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts.fill()
	agg := map[string]*aggStat{}
	rep := map[string][]circuit.Gate{}
	for _, c := range circuits { // ascending index = ascending id
		for sig, st := range mineStats(ctx, c, opts) {
			a := agg[sig]
			if a == nil {
				a = &aggStat{gateCount: st.gateCount, qubitCount: st.qubitCount}
				agg[sig] = a
				rep[sig] = st.rep // first circuit containing it = lowest id
			}
			a.support += st.support
			a.circuits++
		}
	}
	out := make([]CorpusPattern, 0, len(agg))
	for sig, a := range agg {
		if a.support < opts.MinSupport {
			continue
		}
		out = append(out, CorpusPattern{
			Signature:  sig,
			GateCount:  a.gateCount,
			QubitCount: a.qubitCount,
			Support:    a.support,
			Circuits:   a.circuits,
			Rep:        rep[sig],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coverage() != out[j].Coverage() {
			return out[i].Coverage() > out[j].Coverage()
		}
		return out[i].Signature < out[j].Signature
	})
	return out, nil
}
