package mining

import (
	"context"
	"math"
	"strings"
	"testing"

	"paqoc/internal/circuit"
)

// mustMine is MineCtx for tests that treat option errors as fatal.
func mustMine(tb testing.TB, c *circuit.Circuit, opts Options) []Pattern {
	tb.Helper()
	patterns, err := MineCtx(context.Background(), c, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return patterns
}

// swapChain builds the bv-style pattern: repeated SWAPs lowered to 3 CX.
func swapChain(reps int) *circuit.Circuit {
	c := circuit.New(reps + 1)
	for i := 0; i < reps; i++ {
		c.Add("cx", i, i+1)
		c.Add("cx", i+1, i)
		c.Add("cx", i, i+1)
	}
	return c
}

func TestMineFindsSwapPattern(t *testing.T) {
	c := swapChain(4)
	patterns := mustMine(t, c, DefaultOptions())
	if len(patterns) == 0 {
		t.Fatal("no patterns found")
	}
	// The top-coverage pattern should be the 3-CX SWAP idiom (12 of 12
	// gates covered).
	top := patterns[0]
	if top.GateCount != 3 || top.QubitCount != 2 {
		t.Errorf("top pattern has %d gates on %d qubits, want 3 gates on 2 qubits (sig %q)",
			top.GateCount, top.QubitCount, top.Signature)
	}
	if top.Support != 4 {
		t.Errorf("support = %d, want 4", top.Support)
	}
}

func TestMineControlTargetDisambiguation(t *testing.T) {
	// Fig. 5: cx;rz-on-target vs cx;rz-on-control look similar but must be
	// distinct patterns.
	c := circuit.New(6)
	for i := 0; i < 6; i += 2 {
		c.Add("cx", i, i+1)
		c.AddParam("rz", []float64{0.5}, i+1) // on target
	}
	patterns := mustMine(t, c, DefaultOptions())
	var sigTarget string
	for _, p := range patterns {
		if p.GateCount == 2 && p.Support == 3 {
			sigTarget = p.Signature
		}
	}
	if sigTarget == "" {
		t.Fatal("cx;rz(target) pattern not found")
	}

	c2 := circuit.New(6)
	for i := 0; i < 6; i += 2 {
		c2.Add("cx", i, i+1)
		c2.AddParam("rz", []float64{0.5}, i) // on control
	}
	patterns2 := mustMine(t, c2, DefaultOptions())
	var sigControl string
	for _, p := range patterns2 {
		if p.GateCount == 2 && p.Support == 3 {
			sigControl = p.Signature
		}
	}
	if sigControl == "" {
		t.Fatal("cx;rz(control) pattern not found")
	}
	if sigControl == sigTarget {
		t.Error("control/target patterns must have distinct signatures")
	}
}

func TestMineAngleSensitivity(t *testing.T) {
	// rz(0.5) and rz(0.7) must not be conflated; symbolic gates with the
	// same symbol must be.
	c := circuit.New(4)
	c.Add("cx", 0, 1)
	c.AddParam("rz", []float64{0.5}, 1)
	c.Add("cx", 2, 3)
	c.AddParam("rz", []float64{0.7}, 3)
	if got := mustMine(t, c, DefaultOptions()); len(got) != 0 {
		t.Errorf("different angles should not form a frequent pattern: %v", got)
	}

	s := circuit.New(4)
	s.Add("cx", 0, 1)
	s.AddSymbolic("rz", "theta", 1)
	s.Add("cx", 2, 3)
	s.AddSymbolic("rz", "theta", 3)
	if got := mustMine(t, s, DefaultOptions()); len(got) == 0 {
		t.Error("matching symbolic angles should form a pattern")
	}
}

func TestMineQubitPermutationInvariance(t *testing.T) {
	// The same pattern on different physical qubits must share a
	// signature (local renaming).
	c := circuit.New(6)
	c.Add("h", 0)
	c.Add("cx", 0, 1)
	c.Add("h", 4)
	c.Add("cx", 4, 5)
	patterns := mustMine(t, c, DefaultOptions())
	found := false
	for _, p := range patterns {
		if p.GateCount == 2 && p.Support == 2 {
			found = true
		}
	}
	if !found {
		t.Error("h;cx on disjoint wire pairs should match")
	}
}

func TestMineRespectsQubitCap(t *testing.T) {
	c := circuit.New(8)
	for i := 0; i+3 < 8; i += 4 {
		c.Add("cx", i, i+1)
		c.Add("cx", i+1, i+2)
		c.Add("cx", i+2, i+3)
	}
	opts := DefaultOptions()
	opts.MaxQubits = 3
	for _, p := range mustMine(t, c, opts) {
		if p.QubitCount > 3 {
			t.Errorf("pattern exceeds qubit cap: %q on %d qubits", p.Signature, p.QubitCount)
		}
	}
}

func TestMineRespectsGateCap(t *testing.T) {
	c := swapChain(5)
	opts := DefaultOptions()
	opts.MaxGates = 2
	for _, p := range mustMine(t, c, opts) {
		if p.GateCount > 2 {
			t.Errorf("pattern exceeds gate cap: %d", p.GateCount)
		}
	}
}

func TestMineCPhasePattern(t *testing.T) {
	// qaoa's CPHASE idiom: cx; rz; cx (Table III).
	c := circuit.New(6)
	gamma := 0.731
	for _, p := range [][2]int{{0, 1}, {2, 3}, {4, 5}, {1, 2}} {
		c.Add("cx", p[0], p[1])
		c.AddParam("rz", []float64{gamma}, p[1])
		c.Add("cx", p[0], p[1])
	}
	patterns := mustMine(t, c, DefaultOptions())
	if len(patterns) == 0 {
		t.Fatal("no patterns")
	}
	top := patterns[0]
	if top.GateCount != 3 || top.Support != 4 {
		t.Errorf("expected the CPHASE idiom with support 4, got %d gates support %d (%q)",
			top.GateCount, top.Support, top.Signature)
	}
	if !strings.Contains(top.Signature, "rz(0.731)") {
		t.Errorf("signature should carry the angle: %q", top.Signature)
	}
}

func TestSupportCountsAreExact(t *testing.T) {
	// Overlapping occurrences must not inflate support: h;h;h has two
	// overlapping h;h embeddings but only 1 disjoint pair... actually 3 h
	// gates give embeddings {0,1},{1,2}; disjoint family = {0,1} only.
	c := circuit.New(1)
	c.Add("h", 0)
	c.Add("h", 0)
	c.Add("h", 0)
	opts := DefaultOptions()
	opts.MinSupport = 1
	patterns := mustMine(t, c, opts)
	for _, p := range patterns {
		if p.GateCount == 2 && p.Support != 1 {
			t.Errorf("h;h support = %d, want 1 (disjoint)", p.Support)
		}
	}
}

func TestConvex(t *testing.T) {
	c := circuit.New(2)
	c.Add("cx", 0, 1) // 0
	c.Add("h", 0)     // 1
	c.Add("cx", 0, 1) // 2
	dag := circuit.BuildDAG(c)
	if Convex(dag, []int{0, 2}) {
		t.Error("{0,2} threads through outside gate 1: not convex")
	}
	if !Convex(dag, []int{0, 1}) || !Convex(dag, []int{1, 2}) || !Convex(dag, []int{0, 1, 2}) {
		t.Error("contiguous sets should be convex")
	}
}

func TestSelectCoverageGreedy(t *testing.T) {
	c := swapChain(4) // 12 gates, all covered by the SWAP pattern
	patterns := mustMine(t, c, DefaultOptions())
	sels := Select(c, patterns, 1, 2)
	if len(sels) != 1 {
		t.Fatalf("selections = %d", len(sels))
	}
	if got := sels[0].CoveredGates(); got != 12 {
		t.Errorf("covered = %d, want 12", got)
	}
	// Chosen embeddings must be pairwise disjoint.
	seen := map[int]bool{}
	for _, emb := range sels[0].Chosen {
		for _, gi := range emb {
			if seen[gi] {
				t.Fatal("overlapping committed embeddings")
			}
			seen[gi] = true
		}
	}
}

func TestSelectMZero(t *testing.T) {
	c := swapChain(3)
	if got := Select(c, mustMine(t, c, DefaultOptions()), 0, 2); got != nil {
		t.Error("M=0 must select nothing")
	}
}

func TestSelectUnlimited(t *testing.T) {
	// Two distinct frequent patterns: SWAP idiom and h;h pairs.
	c := circuit.New(6)
	for i := 0; i < 2; i++ {
		base := i * 3
		c.Add("cx", base, base+1)
		c.Add("cx", base+1, base)
		c.Add("cx", base, base+1)
	}
	c.Add("h", 2)
	c.Add("t", 2)
	c.Add("h", 5)
	c.Add("t", 5)
	patterns := mustMine(t, c, DefaultOptions())
	limited := Select(c, patterns, 1, 2)
	unlimited := Select(c, patterns, -1, 2)
	if len(unlimited) <= len(limited) {
		t.Errorf("M=inf should select more patterns: %d vs %d", len(unlimited), len(limited))
	}
}

func TestTunedM(t *testing.T) {
	c := swapChain(4)
	patterns := mustMine(t, c, DefaultOptions())
	m := TunedM(c, patterns, 2)
	if m != 1 {
		t.Errorf("TunedM = %d, want 1 (one pattern covers everything)", m)
	}
	empty := circuit.New(2)
	empty.Add("h", 0)
	if got := TunedM(empty, mustMine(t, empty, DefaultOptions()), 2); got != 0 {
		t.Errorf("TunedM on patternless circuit = %d, want 0", got)
	}
}

func TestMineDeterminism(t *testing.T) {
	c := swapChain(4)
	a := mustMine(t, c, DefaultOptions())
	b := mustMine(t, c, DefaultOptions())
	if len(a) != len(b) {
		t.Fatal("nondeterministic pattern count")
	}
	for i := range a {
		if a[i].Signature != b[i].Signature || a[i].Support != b[i].Support {
			t.Fatal("nondeterministic mining output")
		}
	}
}

func TestMineEnumLimitGraceful(t *testing.T) {
	c := swapChain(6)
	opts := DefaultOptions()
	opts.EnumLimit = 50
	// Must not hang or panic; may return fewer patterns.
	_ = mustMine(t, c, opts)
}

func TestMineEmptyAndTinyCircuits(t *testing.T) {
	if got := mustMine(t, circuit.New(3), DefaultOptions()); len(got) != 0 {
		t.Error("empty circuit should have no patterns")
	}
	one := circuit.New(2)
	one.Add("cx", 0, 1)
	if got := mustMine(t, one, DefaultOptions()); len(got) != 0 {
		t.Error("single gate cannot recur")
	}
}

var _ = math.Pi

func BenchmarkMineSwapChain(b *testing.B) {
	c := swapChain(12)
	opts := DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustMine(b, c, opts)
	}
}
