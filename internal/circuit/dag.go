package circuit

import (
	"fmt"
	"strings"
)

// DAG is the gate dependence graph of a circuit: node i is Gates[i], and
// there is an edge u→v when v is the next gate after u on some shared
// qubit. Only immediate per-wire successors are stored, which is exactly
// the dependence structure the criticality analysis (§V-A) needs.
type DAG struct {
	NumGates int
	Succs    [][]int // Succs[i]: gates immediately depending on gate i
	Preds    [][]int // Preds[i]: gates gate i immediately depends on
}

// BuildDAG constructs the dependence DAG of a circuit.
func BuildDAG(c *Circuit) *DAG {
	sets := make([][]int, len(c.Gates))
	for i, g := range c.Gates {
		sets[i] = g.Qubits
	}
	return BuildQubitDAG(c.NumQubits, sets)
}

// BuildQubitDAG constructs a dependence DAG over any sequence of
// qubit-using operations (gates, or merged blocks in the PAQOC engine):
// operation i depends on the most recent earlier operation touching each of
// its qubits.
func BuildQubitDAG(numQubits int, qubitSets [][]int) *DAG {
	n := len(qubitSets)
	d := &DAG{
		NumGates: n,
		Succs:    make([][]int, n),
		Preds:    make([][]int, n),
	}
	last := make([]int, numQubits)
	for i := range last {
		last[i] = -1
	}
	for i, qs := range qubitSets {
		seen := make(map[int]bool)
		for _, q := range qs {
			if p := last[q]; p >= 0 && !seen[p] {
				d.Succs[p] = append(d.Succs[p], i)
				d.Preds[i] = append(d.Preds[i], p)
				seen[p] = true
			}
			last[q] = i
		}
	}
	return d
}

// TopoOrder returns a topological order of the gates. Because circuits are
// stored in a valid linear extension, this is simply 0..n-1, but the method
// verifies acyclicity as a safety check and is used by property tests.
func (d *DAG) TopoOrder() []int {
	indeg := make([]int, d.NumGates)
	for _, ss := range d.Succs {
		for _, s := range ss {
			indeg[s]++
		}
	}
	queue := make([]int, 0, d.NumGates)
	for i, deg := range indeg {
		if deg == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, d.NumGates)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, s := range d.Succs[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != d.NumGates {
		panic("circuit: dependence graph has a cycle")
	}
	return order
}

// LongestPathTo computes, for each gate, the weighted longest path from any
// source ending at (and including) that gate. weight[i] is the latency of
// gate i.
func (d *DAG) LongestPathTo(weight []float64) []float64 {
	dist := make([]float64, d.NumGates)
	for _, v := range d.TopoOrder() {
		best := 0.0
		for _, p := range d.Preds[v] {
			if dist[p] > best {
				best = dist[p]
			}
		}
		dist[v] = best + weight[v]
	}
	return dist
}

// LongestPathFrom computes, for each gate, the weighted longest path
// starting at (and including) that gate to any sink. This is CP(X)+L(X) in
// the paper's notation.
func (d *DAG) LongestPathFrom(weight []float64) []float64 {
	order := d.TopoOrder()
	dist := make([]float64, d.NumGates)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		best := 0.0
		for _, s := range d.Succs[v] {
			if dist[s] > best {
				best = dist[s]
			}
		}
		dist[v] = best + weight[v]
	}
	return dist
}

// CriticalPathLength returns the weighted critical-path length of the whole
// circuit.
func (d *DAG) CriticalPathLength(weight []float64) float64 {
	var mx float64
	for _, v := range d.LongestPathTo(weight) {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// OnCriticalPath marks every gate that lies on at least one weighted
// critical path.
func (d *DAG) OnCriticalPath(weight []float64) []bool {
	to := d.LongestPathTo(weight)
	from := d.LongestPathFrom(weight)
	total := d.CriticalPathLength(weight)
	on := make([]bool, d.NumGates)
	const eps = 1e-9
	for i := 0; i < d.NumGates; i++ {
		// to[i] includes weight[i]; from[i] includes weight[i] too.
		if to[i]+from[i]-weight[i] >= total-eps {
			on[i] = true
		}
	}
	return on
}

// Reaches reports whether there is a directed path from u to v (u ≠ v).
// Used to reject merges that would create dependence cycles.
func (d *DAG) Reaches(u, v int) bool {
	if u == v {
		return true
	}
	seen := make([]bool, d.NumGates)
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range d.Succs[x] {
			if s == v {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// DOT renders the dependence DAG in Graphviz format, labelling each node
// with its gate string. Useful for inspecting merge decisions.
func (d *DAG) DOT(labels []string) string {
	var b strings.Builder
	b.WriteString("digraph circuit {\n  rankdir=LR;\n")
	for i := 0; i < d.NumGates; i++ {
		label := fmt.Sprintf("g%d", i)
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i, label)
	}
	for u, ss := range d.Succs {
		for _, s := range ss {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", u, s)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
