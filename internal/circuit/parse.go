package circuit

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the text circuit format produced by Circuit.String:
//
//	qubits <n>
//	<gate>[(<p1>,<p2>…)] <q0> <q1> …
//
// Parameters may be numeric or a single symbolic name. Lines starting with
// '#' and blank lines are ignored. The format is a deliberately small
// QASM-like dialect sufficient for the benchmark suite.
func Parse(src string) (*Circuit, error) {
	var c *Circuit
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "qubits" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("circuit: line %d: qubits wants one argument", lineNo+1)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("circuit: line %d: bad qubit count %q", lineNo+1, fields[1])
			}
			c = New(n)
			continue
		}
		if c == nil {
			return nil, fmt.Errorf("circuit: line %d: gate before qubits declaration", lineNo+1)
		}
		g, err := parseGate(fields)
		if err != nil {
			return nil, fmt.Errorf("circuit: line %d: %v", lineNo+1, err)
		}
		if err := safeAdd(c, g); err != nil {
			return nil, fmt.Errorf("circuit: line %d: %v", lineNo+1, err)
		}
	}
	if c == nil {
		return nil, fmt.Errorf("circuit: no qubits declaration")
	}
	return c, nil
}

func parseGate(fields []string) (Gate, error) {
	head := fields[0]
	g := Gate{}
	if open := strings.IndexByte(head, '('); open >= 0 {
		if !strings.HasSuffix(head, ")") {
			return g, fmt.Errorf("unterminated parameter list in %q", head)
		}
		g.Name = head[:open]
		inner := head[open+1 : len(head)-1]
		for _, tok := range strings.Split(inner, ",") {
			tok = strings.TrimSpace(tok)
			if v, err := strconv.ParseFloat(tok, 64); err == nil {
				g.Params = append(g.Params, v)
			} else if len(g.Params) == 0 && g.Symbol == "" {
				g.Symbol = tok
			} else {
				return g, fmt.Errorf("bad parameter %q", tok)
			}
		}
	} else {
		g.Name = head
	}
	for _, f := range fields[1:] {
		q, err := strconv.Atoi(f)
		if err != nil {
			return g, fmt.Errorf("bad qubit %q", f)
		}
		g.Qubits = append(g.Qubits, q)
	}
	if len(g.Qubits) == 0 {
		return g, fmt.Errorf("gate %q has no qubits", g.Name)
	}
	return g, nil
}

// safeAdd converts AddGate's validation panics into errors for the parser.
func safeAdd(c *Circuit, g Gate) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	c.AddGate(g)
	return nil
}
