package circuit

import (
	"fmt"
	"strings"
)

// RenderASCII draws the circuit as a wire diagram, one row per qubit and
// one column group per dependence layer:
//
//	q0: ─ H ─●───────
//	q1: ─────X───●───
//	q2: ─────────X───
//
// Controls render as ●, CX/CCX targets as X, other multi-qubit operands by
// the gate name. Intended for small circuits (examples and debugging);
// wide circuits wrap at the caller's discretion.
func (c *Circuit) RenderASCII() string {
	if len(c.Gates) == 0 {
		return "(empty circuit)\n"
	}
	// Assign each gate to a layer (ASAP schedule).
	level := make([]int, c.NumQubits)
	layerOf := make([]int, len(c.Gates))
	layers := 0
	for i, g := range c.Gates {
		mx := 0
		for _, q := range g.Qubits {
			if level[q] > mx {
				mx = level[q]
			}
		}
		layerOf[i] = mx
		for _, q := range g.Qubits {
			level[q] = mx + 1
		}
		if mx+1 > layers {
			layers = mx + 1
		}
	}

	// Column width per layer: widest cell label within the layer.
	width := make([]int, layers)
	cell := func(g Gate, pos int) string {
		controlled := false
		switch g.Name {
		case "cx", "ccx", "toffoli", "cz", "cp", "cphase", "cu1", "crz", "ccz", "cswap":
			controlled = true
		}
		if controlled && pos < len(g.Qubits)-1 {
			return "●"
		}
		switch g.Name {
		case "cx", "ccx", "toffoli":
			return "X"
		case "cz", "ccz":
			return "Z"
		case "swap", "cswap":
			return "x"
		}
		label := strings.ToUpper(g.Name)
		if g.Symbol != "" {
			label += "(" + g.Symbol + ")"
		} else if len(g.Params) == 1 {
			label += fmt.Sprintf("(%.2g)", g.Params[0])
		}
		return label
	}
	for i, g := range c.Gates {
		for pos := range g.Qubits {
			if w := len([]rune(cell(g, pos))); w > width[layerOf[i]] {
				width[layerOf[i]] = w
			}
		}
	}

	// Paint the grid.
	grid := make([][]string, c.NumQubits)
	for q := range grid {
		grid[q] = make([]string, layers)
	}
	vertical := make([][]bool, c.NumQubits) // draws │ between control/target rows
	for q := range vertical {
		vertical[q] = make([]bool, layers)
	}
	for i, g := range c.Gates {
		l := layerOf[i]
		lo, hi := g.Qubits[0], g.Qubits[0]
		for _, q := range g.Qubits {
			if q < lo {
				lo = q
			}
			if q > hi {
				hi = q
			}
		}
		for pos, q := range g.Qubits {
			grid[q][l] = cell(g, pos)
		}
		for q := lo + 1; q < hi; q++ {
			if grid[q][l] == "" {
				vertical[q][l] = true
			}
		}
	}

	var b strings.Builder
	for q := 0; q < c.NumQubits; q++ {
		fmt.Fprintf(&b, "q%-2d: ", q)
		for l := 0; l < layers; l++ {
			s := grid[q][l]
			pad := width[l] - len([]rune(s))
			switch {
			case s != "":
				b.WriteString("─" + s + strings.Repeat("─", pad+1))
			case vertical[q][l]:
				b.WriteString("─│" + strings.Repeat("─", pad+1))
			default:
				b.WriteString(strings.Repeat("─", width[l]+2))
			}
		}
		b.WriteString("─\n")
	}
	return b.String()
}
