package circuit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
)

func bell() *Circuit {
	c := New(2)
	c.Add("h", 0)
	c.Add("cx", 0, 1)
	return c
}

func TestAddValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(2).Add("cx", 0, 2) },  // out of range
		func() { New(2).Add("cx", 1, 1) },  // duplicate
		func() { New(2).Add("cx", 0) },     // wrong arity
		func() { New(2).Add("h", 0, 1) },   // wrong arity
		func() { New(2).Add("cx", -1, 0) }, // negative
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDepth(t *testing.T) {
	c := New(3)
	if c.Depth() != 0 {
		t.Error("empty circuit depth should be 0")
	}
	c.Add("h", 0)
	c.Add("h", 1)
	c.Add("h", 2)
	if c.Depth() != 1 {
		t.Errorf("parallel H depth = %d, want 1", c.Depth())
	}
	c.Add("cx", 0, 1)
	c.Add("cx", 1, 2)
	if c.Depth() != 3 {
		t.Errorf("depth = %d, want 3", c.Depth())
	}
}

func TestCountByArity(t *testing.T) {
	c := New(4)
	c.Add("h", 0).Add("x", 1).Add("cx", 0, 1).Add("ccx", 0, 1, 2)
	o, tw, th := c.CountByArity()
	if o != 2 || tw != 1 || th != 1 {
		t.Errorf("counts = %d,%d,%d", o, tw, th)
	}
}

func TestUnitaryBell(t *testing.T) {
	u, err := bell().Unitary(5)
	if err != nil {
		t.Fatal(err)
	}
	vec := u.MulVec([]complex128{1, 0, 0, 0})
	s := 1 / math.Sqrt2
	if math.Abs(real(vec[0])-s) > 1e-12 || math.Abs(real(vec[3])-s) > 1e-12 {
		t.Errorf("Bell vector %v", vec)
	}
}

func TestUnitaryCapAndSymbolErrors(t *testing.T) {
	big := New(12)
	big.Add("h", 0)
	if _, err := big.Unitary(10); err == nil {
		t.Error("expected cap error")
	}
	sym := New(1)
	sym.AddSymbolic("rz", "theta", 0)
	if _, err := sym.Unitary(5); err == nil {
		t.Error("expected symbolic error")
	}
}

func TestBind(t *testing.T) {
	c := New(1)
	c.AddSymbolic("rz", "a", 0)
	c.AddSymbolic("rz", "b", 0)
	bound := c.Bind(map[string]float64{"a": 1.5})
	if bound.Gates[0].IsSymbolic() || bound.Gates[0].Params[0] != 1.5 {
		t.Error("a not bound")
	}
	if !bound.Gates[1].IsSymbolic() {
		t.Error("b should remain symbolic")
	}
	if !c.Gates[0].IsSymbolic() {
		t.Error("Bind must not mutate the original")
	}
}

func TestLabels(t *testing.T) {
	g := Gate{Name: "rz", Params: []float64{math.Pi / 2}, Qubits: []int{0}}
	if got := g.Label(); got != "rz(1.5708)" {
		t.Errorf("Label = %q", got)
	}
	s := Gate{Name: "rz", Symbol: "theta", Qubits: []int{0}}
	if got := s.Label(); got != "rz(theta)" {
		t.Errorf("symbolic Label = %q", got)
	}
	plain := Gate{Name: "cx", Qubits: []int{1, 2}}
	if plain.Label() != "cx" || plain.String() != "cx 1 2" {
		t.Errorf("plain = %q / %q", plain.Label(), plain.String())
	}
}

func TestRoundTripParse(t *testing.T) {
	c := New(3)
	c.Add("h", 0)
	c.AddParam("rz", []float64{0.25}, 1)
	c.Add("cx", 0, 2)
	c.AddSymbolic("rx", "g1", 2)
	got, err := Parse(c.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != c.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", got.String(), c.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"h 0",                     // gate before qubits
		"qubits 0",                // invalid count
		"qubits 2\ncx 0 5",        // out of range
		"qubits 2\nrz(abc,def) 0", // two symbols
		"qubits 2\nrz(0.5 0",      // unterminated params
		"qubits 2\nh",             // no qubits
		"qubits 2\ncx 0 x",        // bad qubit token
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	c, err := Parse("# header\n\nqubits 2\n# mid\nh 0\ncx 0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 2 {
		t.Errorf("got %d gates", len(c.Gates))
	}
}

func TestDAGStructure(t *testing.T) {
	c := New(3)
	c.Add("h", 0)     // 0
	c.Add("h", 1)     // 1
	c.Add("cx", 0, 1) // 2 depends on 0,1
	c.Add("cx", 1, 2) // 3 depends on 2
	c.Add("h", 0)     // 4 depends on 2
	d := BuildDAG(c)
	wantPreds := [][]int{nil, nil, {0, 1}, {2}, {2}}
	for i, want := range wantPreds {
		if len(d.Preds[i]) != len(want) {
			t.Fatalf("gate %d preds = %v, want %v", i, d.Preds[i], want)
		}
		for j := range want {
			if d.Preds[i][j] != want[j] {
				t.Fatalf("gate %d preds = %v, want %v", i, d.Preds[i], want)
			}
		}
	}
}

func TestDAGNoDuplicateEdgeForTwoSharedQubits(t *testing.T) {
	c := New(2)
	c.Add("cx", 0, 1)
	c.Add("cx", 1, 0) // shares BOTH qubits with gate 0
	d := BuildDAG(c)
	if len(d.Preds[1]) != 1 {
		t.Errorf("expected single dependence edge, got %v", d.Preds[1])
	}
}

func TestTopoOrderIsLinearExtension(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuit(seed, 5, 30)
		d := BuildDAG(c)
		pos := make([]int, d.NumGates)
		for idx, v := range d.TopoOrder() {
			pos[v] = idx
		}
		for u, ss := range d.Succs {
			for _, s := range ss {
				if pos[u] >= pos[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCriticalPathUnitWeights(t *testing.T) {
	c := New(3)
	c.Add("h", 0)
	c.Add("cx", 0, 1)
	c.Add("cx", 1, 2)
	d := BuildDAG(c)
	w := []float64{1, 1, 1}
	if got := d.CriticalPathLength(w); got != 3 {
		t.Errorf("CP = %g, want 3", got)
	}
	if got := float64(c.Depth()); got != 3 {
		t.Errorf("Depth = %g", got)
	}
}

func TestCriticalPathWeighted(t *testing.T) {
	// Two parallel chains; the heavier one is critical.
	c := New(4)
	c.Add("h", 0)     // 0: weight 10
	c.Add("h", 1)     // 1: weight 1
	c.Add("cx", 2, 3) // 2: weight 2
	d := BuildDAG(c)
	w := []float64{10, 1, 2}
	if got := d.CriticalPathLength(w); got != 10 {
		t.Errorf("CP = %g, want 10", got)
	}
	on := d.OnCriticalPath(w)
	if !on[0] || on[1] || on[2] {
		t.Errorf("OnCriticalPath = %v", on)
	}
}

func TestOnCriticalPathChain(t *testing.T) {
	c := New(2)
	c.Add("h", 0)
	c.Add("cx", 0, 1)
	c.Add("h", 1)
	c.Add("x", 0) // off-critical if weights make the h-chain longer
	d := BuildDAG(c)
	w := []float64{5, 5, 5, 1}
	on := d.OnCriticalPath(w)
	if !on[0] || !on[1] || !on[2] {
		t.Error("chain should be critical")
	}
	if on[3] {
		t.Error("light x gate should be off the critical path")
	}
}

func TestReaches(t *testing.T) {
	c := New(3)
	c.Add("h", 0)     // 0
	c.Add("cx", 0, 1) // 1
	c.Add("cx", 1, 2) // 2
	c.Add("h", 2)     // 3
	c.Add("x", 0)     // 4 (depends on 1)
	d := BuildDAG(c)
	if !d.Reaches(0, 3) {
		t.Error("0 should reach 3")
	}
	if d.Reaches(3, 0) {
		t.Error("3 should not reach 0")
	}
	if d.Reaches(4, 2) {
		t.Error("4 should not reach 2")
	}
}

func TestLongestPathFromMatchesTo(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuit(seed, 4, 25)
		if len(c.Gates) == 0 {
			return true
		}
		d := BuildDAG(c)
		w := make([]float64, len(c.Gates))
		rng := rand.New(rand.NewSource(seed ^ 0x5a))
		for i := range w {
			w[i] = 1 + rng.Float64()*9
		}
		// Max over LongestPathTo == max over LongestPathFrom == CP length.
		var mxTo, mxFrom float64
		for _, v := range d.LongestPathTo(w) {
			mxTo = math.Max(mxTo, v)
		}
		for _, v := range d.LongestPathFrom(w) {
			mxFrom = math.Max(mxFrom, v)
		}
		cp := d.CriticalPathLength(w)
		return math.Abs(mxTo-cp) < 1e-9 && math.Abs(mxFrom-cp) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := bell()
	cl := c.Clone()
	cl.Gates[0].Name = "x"
	cl.Gates[1].Qubits[0] = 1
	if c.Gates[0].Name != "h" || c.Gates[1].Qubits[0] != 0 {
		t.Error("Clone shares storage with original")
	}
}

func TestUsedQubits(t *testing.T) {
	c := New(10)
	c.Add("cx", 7, 2)
	c.Add("h", 5)
	got := c.UsedQubits()
	if len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 7 {
		t.Errorf("UsedQubits = %v", got)
	}
}

func TestCircuitUnitaryMatchesManualComposition(t *testing.T) {
	c := New(2)
	c.Add("h", 0)
	c.Add("cx", 0, 1)
	c.Add("h", 1)
	u, err := c.Unitary(5)
	if err != nil {
		t.Fatal(err)
	}
	manual := quantum.SequenceUnitary(2, []quantum.EmbeddedOp{
		{U: quantum.MatH, Wires: []int{0}},
		{U: quantum.MatCX, Wires: []int{0, 1}},
		{U: quantum.MatH, Wires: []int{1}},
	})
	if !u.Equal(manual, 1e-12) {
		t.Error("unitary mismatch")
	}
	if !u.IsUnitary(1e-10) {
		t.Error("circuit unitary not unitary")
	}
}

func TestStringContainsHeader(t *testing.T) {
	if !strings.HasPrefix(bell().String(), "qubits 2\n") {
		t.Error("missing qubits header")
	}
}

// randomCircuit builds an arbitrary well-formed circuit for property tests.
func randomCircuit(seed int64, nq, gates int) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := New(nq)
	names1 := []string{"h", "x", "t", "s"}
	for i := 0; i < gates; i++ {
		if rng.Intn(2) == 0 {
			c.Add(names1[rng.Intn(len(names1))], rng.Intn(nq))
		} else {
			a := rng.Intn(nq)
			b := rng.Intn(nq)
			for b == a {
				b = rng.Intn(nq)
			}
			c.Add("cx", a, b)
		}
	}
	return c
}

var _ = linalg.Identity // keep import for doc examples

func BenchmarkBuildDAG(b *testing.B) {
	c := randomCircuit(1, 16, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildDAG(c)
	}
}

func BenchmarkCriticalPath(b *testing.B) {
	c := randomCircuit(2, 16, 500)
	d := BuildDAG(c)
	w := make([]float64, len(c.Gates))
	for i := range w {
		w[i] = float64(i%7) + 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.OnCriticalPath(w)
	}
}

func TestRenderASCII(t *testing.T) {
	c := New(3)
	c.Add("h", 0)
	c.Add("cx", 0, 2)
	c.AddParam("rz", []float64{0.5}, 1)
	out := c.RenderASCII()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 wire rows, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "H") || !strings.Contains(lines[0], "●") {
		t.Errorf("q0 row missing H/control: %q", lines[0])
	}
	if !strings.Contains(lines[2], "X") {
		t.Errorf("q2 row missing target: %q", lines[2])
	}
	if !strings.Contains(lines[1], "│") {
		t.Errorf("q1 row missing vertical connector: %q", lines[1])
	}
	if New(2).RenderASCII() != "(empty circuit)\n" {
		t.Error("empty render wrong")
	}
}

func FuzzParse(f *testing.F) {
	f.Add("qubits 3\nh 0\ncx 0 1\nrz(0.5) 2\n")
	f.Add("qubits 1\nrz(theta) 0\n")
	f.Add("# comment\nqubits 2\nswap 0 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return
		}
		// A successful parse must round-trip.
		again, err := Parse(c.String())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.String() != c.String() {
			t.Fatal("round trip not idempotent")
		}
	})
}

func TestDAGDOT(t *testing.T) {
	c := bell()
	d := BuildDAG(c)
	labels := []string{"h 0", "cx 0 1"}
	dot := d.DOT(labels)
	for _, want := range []string{"digraph circuit", `n0 [label="h 0"]`, "n0 -> n1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Missing labels fall back to indices.
	if !strings.Contains(d.DOT(nil), `n1 [label="g1"]`) {
		t.Error("fallback labels missing")
	}
}

func TestCompact(t *testing.T) {
	c := New(10)
	c.Add("h", 7)
	c.Add("cx", 7, 2)
	cc, remap := c.Compact()
	if cc.NumQubits != 2 {
		t.Fatalf("compact width = %d", cc.NumQubits)
	}
	if remap[2] != 0 || remap[7] != 1 {
		t.Errorf("remap = %v", remap)
	}
	if cc.Gates[1].Qubits[0] != 1 || cc.Gates[1].Qubits[1] != 0 {
		t.Errorf("gate remap wrong: %v", cc.Gates[1])
	}
	// Empty circuit compacts to a 1-qubit shell.
	e, _ := New(5).Compact()
	if e.NumQubits != 1 || len(e.Gates) != 0 {
		t.Error("empty compact wrong")
	}
}
